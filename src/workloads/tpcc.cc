#include "workloads/tpcc.h"

#include "common/logging.h"

namespace kona {

TpccWorkload::TpccWorkload(WorkloadContext &context,
                           const Params &params)
    : Workload(context), params_(params), rng_(params.seed)
{
    KONA_ASSERT(params_.items > 0 && params_.customers > 0 &&
                    params_.districts > 0,
                "empty TPC-C tables");
}

void
TpccWorkload::setup()
{
    itemZipf_ = std::make_unique<ZipfGenerator>(params_.items, 0.8,
                                                rng_);
    MemoryInterface &mem = context_.mem();

    itemPrice_ = context_.alloc(params_.items * 8, cacheLineSize);
    stockQty_ = context_.alloc(params_.items * 4, cacheLineSize);
    stockYtd_ = context_.alloc(params_.items * 8, cacheLineSize);
    custBalance_ = context_.alloc(params_.customers * 8, cacheLineSize);
    custYtd_ = context_.alloc(params_.customers * 8, cacheLineSize);
    distNextOid_ = context_.alloc(params_.districts * 8, cacheLineSize);
    distYtd_ = context_.alloc(params_.districts * 8, cacheLineSize);
    orderCust_ = context_.alloc(params_.maxOrders * 4, cacheLineSize);
    orderDist_ = context_.alloc(params_.maxOrders * 4, cacheLineSize);
    orderDate_ = context_.alloc(params_.maxOrders * 8, cacheLineSize);
    std::uint64_t lineCap = params_.maxOrders * maxLines;
    olItem_ = context_.alloc(lineCap * 4, cacheLineSize);
    olQty_ = context_.alloc(lineCap * 4, cacheLineSize);
    olAmount_ = context_.alloc(lineCap * 8, cacheLineSize);

    for (std::uint32_t i = 0; i < params_.items; ++i) {
        mem.store<double>(itemPrice_ + i * 8,
                          1.0 + static_cast<double>(i % 100));
        mem.store<std::uint32_t>(stockQty_ + i * 4, 100);
        mem.store<std::uint64_t>(stockYtd_ + i * 8, 0);
    }
    for (std::uint32_t c = 0; c < params_.customers; ++c) {
        mem.store<double>(custBalance_ + c * 8, 0.0);
        mem.store<double>(custYtd_ + c * 8, 0.0);
    }
    for (std::uint32_t d = 0; d < params_.districts; ++d) {
        mem.store<std::uint64_t>(distNextOid_ + d * 8, 0);
        mem.store<double>(distYtd_ + d * 8, 0.0);
    }
}

void
TpccWorkload::newOrder()
{
    if (orderCount_ >= params_.maxOrders) {
        return;   // append columns full; keep the mix running
    }
    MemoryInterface &mem = context_.mem();
    std::uint32_t d = static_cast<std::uint32_t>(
        rng_.below(params_.districts));
    std::uint32_t c = static_cast<std::uint32_t>(
        rng_.below(params_.customers));

    // Take the district's next order id (scattered 8B read + write).
    auto oid = mem.load<std::uint64_t>(distNextOid_ + d * 8);
    mem.store<std::uint64_t>(distNextOid_ + d * 8, oid + 1);

    // Read customer credit info.
    (void)mem.load<double>(custBalance_ + c * 8);

    // Insert the order row (sequential appends into three columns).
    std::uint64_t row = orderCount_;
    mem.store<std::uint32_t>(orderCust_ + row * 4, c);
    mem.store<std::uint32_t>(orderDist_ + row * 4, d);
    mem.store<std::uint64_t>(orderDate_ + row * 8, orderCount_);

    std::uint32_t lines = static_cast<std::uint32_t>(
        5 + rng_.below(11));   // 5..15 per the spec
    double totalAmount = 0.0;
    for (std::uint32_t l = 0; l < lines; ++l) {
        auto item = static_cast<std::uint32_t>(itemZipf_->next());
        double price = mem.load<double>(itemPrice_ + item * 8);
        auto qty = mem.load<std::uint32_t>(stockQty_ + item * 4);
        std::uint32_t take = 1 + static_cast<std::uint32_t>(
            rng_.below(5));
        std::uint32_t newQty = qty >= take ? qty - take : qty + 91;
        mem.store<std::uint32_t>(stockQty_ + item * 4, newQty);
        auto ytd = mem.load<std::uint64_t>(stockYtd_ + item * 8);
        mem.store<std::uint64_t>(stockYtd_ + item * 8, ytd + take);

        std::uint64_t lrow = lineCount_ + l;
        mem.store<std::uint32_t>(olItem_ + lrow * 4, item);
        mem.store<std::uint32_t>(olQty_ + lrow * 4, take);
        mem.store<double>(olAmount_ + lrow * 8, price * take);
        totalAmount += price * take;
    }
    lineCount_ += lines;
    ++orderCount_;

    // District year-to-date revenue (scattered 8B read-modify-write).
    double ytd = mem.load<double>(distYtd_ + d * 8);
    mem.store<double>(distYtd_ + d * 8, ytd + totalAmount);
}

void
TpccWorkload::payment()
{
    MemoryInterface &mem = context_.mem();
    std::uint32_t c = static_cast<std::uint32_t>(
        rng_.below(params_.customers));
    std::uint32_t d = static_cast<std::uint32_t>(
        rng_.below(params_.districts));
    double amount = 1.0 + rng_.uniform() * 500.0;

    double balance = mem.load<double>(custBalance_ + c * 8);
    mem.store<double>(custBalance_ + c * 8, balance - amount);
    double cytd = mem.load<double>(custYtd_ + c * 8);
    mem.store<double>(custYtd_ + c * 8, cytd + amount);
    double dytd = mem.load<double>(distYtd_ + d * 8);
    mem.store<double>(distYtd_ + d * 8, dytd + amount);
    ++payments_;
}

void
TpccWorkload::orderStatus()
{
    if (orderCount_ == 0)
        return;
    MemoryInterface &mem = context_.mem();
    std::uint64_t row = rng_.below(orderCount_);
    (void)mem.load<std::uint32_t>(orderCust_ + row * 4);
    (void)mem.load<std::uint32_t>(orderDist_ + row * 4);
    (void)mem.load<std::uint64_t>(orderDate_ + row * 8);
    // Scan a window of recent order lines (sequential reads).
    std::uint64_t start = row * 10 < lineCount_ ? row * 10 : 0;
    std::uint64_t end = std::min<std::uint64_t>(start + 10, lineCount_);
    for (std::uint64_t l = start; l < end; ++l) {
        (void)mem.load<std::uint32_t>(olItem_ + l * 4);
        (void)mem.load<double>(olAmount_ + l * 8);
    }
}

std::uint64_t
TpccWorkload::run(std::uint64_t ops)
{
    KONA_ASSERT(itemPrice_ != 0, "run before setup");
    for (std::uint64_t i = 0; i < ops; ++i) {
        double dice = rng_.uniform();
        if (dice < 0.45)
            newOrder();
        else if (dice < 0.88)
            payment();
        else
            orderStatus();
    }
    return ops;
}

std::size_t
TpccWorkload::footprintBytes() const
{
    if (itemPrice_ == 0)
        return 0;
    return params_.items * (8 + 4 + 8) + params_.customers * 16 +
           params_.districts * 16 + params_.maxOrders * (4 + 4 + 8) +
           params_.maxOrders * maxLines * (4 + 4 + 8);
}

bool
TpccWorkload::checkConsistency()
{
    MemoryInterface &mem = context_.mem();
    std::uint64_t total = 0;
    for (std::uint32_t d = 0; d < params_.districts; ++d)
        total += mem.load<std::uint64_t>(distNextOid_ + d * 8);
    return total == orderCount_;
}

} // namespace kona
