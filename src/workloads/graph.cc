#include "workloads/graph.h"

#include <algorithm>

#include "common/logging.h"

namespace kona {

namespace {

/**
 * Per-vertex property record, one cache line like GraphLab's vertex
 * data (value + scratch fields + version). Updates rewrite the whole
 * record; the scheduler flag lives in a separate packed array.
 */
struct VertexRecord
{
    double value;
    double delta;
    std::uint32_t version;
    std::uint32_t pad[11];
};
static_assert(sizeof(VertexRecord) == cacheLineSize);

/** Multiplicative stride that scatters vertex execution order the way
 *  GraphLab's async scheduler does (no sequential sweeps). */
constexpr std::uint64_t schedulerStride = 2654435761ULL;

} // namespace

CsrGraph::CsrGraph(WorkloadContext &context, std::uint32_t vertices,
                   std::uint32_t avgDegree, std::uint64_t seed)
    : context_(context), vertices_(vertices)
{
    KONA_ASSERT(vertices > 1, "graph needs >= 2 vertices");
    Rng rng(seed);
    ZipfGenerator zipf(vertices, 0.6, rng);

    // Build the CSR host-side, then store it once (dataset load).
    std::vector<std::uint64_t> offsets(vertices + 1, 0);
    std::vector<std::uint32_t> neighbors;
    neighbors.reserve(static_cast<std::size_t>(vertices) * avgDegree);
    for (std::uint32_t v = 0; v < vertices; ++v) {
        std::uint32_t degree = static_cast<std::uint32_t>(
            1 + rng.below(2 * avgDegree));
        offsets[v] = neighbors.size();
        for (std::uint32_t i = 0; i < degree; ++i) {
            auto u = static_cast<std::uint32_t>(zipf.next());
            if (u == v)
                u = (u + 1) % vertices;
            neighbors.push_back(u);
        }
    }
    offsets[vertices] = neighbors.size();
    edges_ = neighbors.size();

    offsets_ = context_.alloc((vertices_ + 1) * sizeof(std::uint64_t),
                              cacheLineSize);
    neighbors_ = context_.alloc(edges_ * sizeof(std::uint32_t),
                                cacheLineSize);
    context_.mem().write(offsets_, offsets.data(),
                         offsets.size() * sizeof(std::uint64_t));
    context_.mem().write(neighbors_, neighbors.data(),
                         neighbors.size() * sizeof(std::uint32_t));
}

std::uint32_t
CsrGraph::degree(std::uint32_t v)
{
    auto begin = context_.mem().load<std::uint64_t>(
        offsets_ + v * sizeof(std::uint64_t));
    auto end = context_.mem().load<std::uint64_t>(
        offsets_ + (v + 1) * sizeof(std::uint64_t));
    return static_cast<std::uint32_t>(end - begin);
}

std::uint32_t
CsrGraph::neighbor(std::uint32_t v, std::uint32_t i)
{
    auto begin = context_.mem().load<std::uint64_t>(
        offsets_ + v * sizeof(std::uint64_t));
    return context_.mem().load<std::uint32_t>(
        neighbors_ + (begin + i) * sizeof(std::uint32_t));
}

std::size_t
CsrGraph::footprintBytes() const
{
    return (vertices_ + 1) * sizeof(std::uint64_t) +
           edges_ * sizeof(std::uint32_t);
}

GraphWorkload::GraphWorkload(WorkloadContext &context,
                             const Params &params)
    : Workload(context), params_(params), rng_(params.seed)
{
}

std::string
GraphWorkload::name() const
{
    switch (params_.algorithm) {
      case GraphAlgorithm::PageRank: return "pagerank";
      case GraphAlgorithm::Coloring: return "graph-coloring";
      case GraphAlgorithm::ConnectedComponents:
        return "connected-components";
      case GraphAlgorithm::LabelPropagation: return "label-propagation";
    }
    return "graph";
}

void
GraphWorkload::setup()
{
    graph_ = std::make_unique<CsrGraph>(context_, params_.vertices,
                                        params_.avgDegree,
                                        params_.seed);
    std::size_t recordBytes = params_.vertices * sizeof(VertexRecord);
    values_ = context_.alloc(recordBytes, cacheLineSize);
    nextValues_ = params_.algorithm == GraphAlgorithm::PageRank
        ? context_.alloc(recordBytes, cacheLineSize) : 0;
    schedFlags_ = context_.alloc(params_.vertices *
                                 sizeof(std::uint32_t), cacheLineSize);

    for (std::uint32_t v = 0; v < params_.vertices; ++v) {
        VertexRecord record{};
        switch (params_.algorithm) {
          case GraphAlgorithm::PageRank:
            record.value = 1.0;
            break;
          case GraphAlgorithm::Coloring:
          case GraphAlgorithm::ConnectedComponents:
            record.value = static_cast<double>(v);
            break;
          case GraphAlgorithm::LabelPropagation:
            // Seed a bounded label space (communities), so neighbor
            // agreement exists from the start and labels keep
            // propagating gradually.
            record.value = static_cast<double>(v % 16);
            break;
        }
        context_.mem().store(values_ + v * sizeof(VertexRecord),
                             record);
    }
}

double
GraphWorkload::vertexValue(std::uint32_t v)
{
    auto record = context_.mem().load<VertexRecord>(
        values_ + v * sizeof(VertexRecord));
    return record.value;
}

void
GraphWorkload::runVertex(std::uint32_t v)
{
    MemoryInterface &mem = context_.mem();
    std::uint32_t degree = graph_->degree(v);
    // Cap the gather like GraphLab's factorized vertex programs do.
    std::uint32_t fanIn = std::min<std::uint32_t>(degree, 32);

    auto self = mem.load<VertexRecord>(values_ +
                                       v * sizeof(VertexRecord));
    double newValue = self.value;

    switch (params_.algorithm) {
      case GraphAlgorithm::PageRank: {
        double sum = 0.0;
        for (std::uint32_t i = 0; i < fanIn; ++i) {
            std::uint32_t u = graph_->neighbor(v, i);
            auto record = mem.load<VertexRecord>(
                values_ + u * sizeof(VertexRecord));
            std::uint32_t du = graph_->degree(u);
            sum += record.value / std::max<std::uint32_t>(du, 1);
        }
        newValue = 0.15 + 0.85 * sum;
        break;
      }
      case GraphAlgorithm::Coloring: {
        // Greedy: smallest color unused by the gathered neighbors.
        std::uint64_t used = 0;
        for (std::uint32_t i = 0; i < fanIn; ++i) {
            std::uint32_t u = graph_->neighbor(v, i);
            auto record = mem.load<VertexRecord>(
                values_ + u * sizeof(VertexRecord));
            auto color = static_cast<std::uint64_t>(record.value);
            if (color < 64)
                used |= 1ULL << color;
        }
        std::uint32_t color = 0;
        while (color < 64 && ((used >> color) & 1ULL))
            ++color;
        newValue = static_cast<double>(color);
        break;
      }
      case GraphAlgorithm::ConnectedComponents: {
        double best = self.value;
        for (std::uint32_t i = 0; i < fanIn; ++i) {
            std::uint32_t u = graph_->neighbor(v, i);
            auto record = mem.load<VertexRecord>(
                values_ + u * sizeof(VertexRecord));
            best = std::min(best, record.value);
        }
        newValue = best;
        break;
      }
      case GraphAlgorithm::LabelPropagation: {
        // Adopt the smallest label at least two neighbors agree on (a
        // cheap deterministic stand-in for the mode). Requiring
        // agreement slows convergence, so updates keep trickling in —
        // the sparse scattered writes behind LP's high amplification.
        double best = self.value;
        std::uint32_t agree = 0;
        for (std::uint32_t i = 0; i < fanIn; ++i) {
            std::uint32_t u = graph_->neighbor(v, i);
            auto record = mem.load<VertexRecord>(
                values_ + u * sizeof(VertexRecord));
            if (record.value < best) {
                best = record.value;
                agree = 1;
            } else if (record.value == best) {
                ++agree;
            }
        }
        if (agree >= 2)
            newValue = best;
        break;
      }
    }

    bool changed = newValue != self.value;
    bool pageRank = params_.algorithm == GraphAlgorithm::PageRank;
    if (changed || pageRank) {
        self.delta = newValue - self.value;
        self.value = newValue;
        self.version += 1;
        Addr target = pageRank ? nextValues_ : values_;
        mem.store(target + v * sizeof(VertexRecord), self);
        // The scheduler re-arms the vertex's task flag on updates.
        mem.store<std::uint32_t>(
            schedFlags_ + v * sizeof(std::uint32_t), self.version);
    }
}

std::uint64_t
GraphWorkload::run(std::uint64_t ops)
{
    KONA_ASSERT(graph_ != nullptr, "run before setup");
    for (std::uint64_t i = 0; i < ops; ++i) {
        // Async-scheduler execution order: a coprime stride scatters
        // vertex activations across the whole array.
        auto v = static_cast<std::uint32_t>(
            (static_cast<std::uint64_t>(cursor_) * schedulerStride +
             sweeps_) % params_.vertices);
        runVertex(v);
        if (++cursor_ >= params_.vertices) {
            cursor_ = 0;
            ++sweeps_;
            if (params_.algorithm == GraphAlgorithm::PageRank) {
                // Swap the double buffers; copy next -> current.
                std::swap(values_, nextValues_);
            }
        }
    }
    return ops;
}

std::size_t
GraphWorkload::footprintBytes() const
{
    if (!graph_)
        return 0;
    std::size_t recordBytes = params_.vertices * sizeof(VertexRecord);
    std::size_t total = graph_->footprintBytes() + recordBytes +
                        params_.vertices * sizeof(std::uint32_t);
    if (params_.algorithm == GraphAlgorithm::PageRank)
        total += recordBytes;
    return total;
}

} // namespace kona
