/**
 * @file
 * A Redis-like in-memory data-structure store.
 *
 * KvStore is an open-addressing hash table whose bucket array and
 * values both live in simulated memory; values are allocated from the
 * workload heap one by one, so a random workload scatters small writes
 * across the heap (the 31X amplification pattern of Table 2) while a
 * sequential workload marches through memory (the 2.8X pattern).
 *
 * The Seq variant mirrors sequential-insert locality: keys map to
 * consecutive buckets (as a real allocator + sequential dict fill
 * would lay them out), so both metadata and values are written in
 * address order.
 */

#ifndef KONA_WORKLOADS_KV_STORE_H
#define KONA_WORKLOADS_KV_STORE_H

#include <optional>
#include <vector>

#include "workloads/workload.h"

namespace kona {

/** Key layout policies. */
enum class KvPattern : std::uint8_t
{
    Uniform,    ///< hashed buckets, uniform random key choice (Rand)
    Sequential, ///< identity buckets, keys visited in order (Seq)
};

/** Open-addressing (linear probing) hash table in simulated memory. */
class KvStore
{
  public:
    /**
     * @param context Memory + allocator.
     * @param capacity Bucket count (power of two).
     * @param hashed False = identity bucket mapping (sequential mode).
     */
    KvStore(WorkloadContext &context, std::size_t capacity, bool hashed);

    /** Insert or overwrite @p key with @p value. */
    void set(std::uint64_t key, const std::uint8_t *value,
             std::uint32_t length);

    /** Fetch @p key into @p out (resized). @return found. */
    bool get(std::uint64_t key, std::vector<std::uint8_t> &out);

    /** Remove @p key. @return true when it existed. */
    bool erase(std::uint64_t key);

    std::size_t size() const { return live_; }
    std::size_t capacity() const { return capacity_; }
    std::size_t footprintBytes() const;

  private:
    /** On-heap bucket record (stored in simulated memory). */
    struct Bucket
    {
        std::uint64_t key;
        Addr valueAddr;
        std::uint32_t valueLen;
        std::uint32_t state;   ///< 0 empty, 1 live, 2 tombstone
    };

    std::uint64_t bucketIndex(std::uint64_t key) const;
    Addr bucketAddr(std::uint64_t index) const
    {
        return table_ + index * sizeof(Bucket);
    }

    /** Probe for @p key; returns bucket index of the live entry. */
    std::optional<std::uint64_t> find(std::uint64_t key);

    WorkloadContext &context_;
    std::size_t capacity_;
    bool hashed_;
    Addr table_;
    std::size_t live_ = 0;
    std::size_t valueBytes_ = 0;
};

/** The Redis workload pair of §2: Redis-Rand and Redis-Seq. */
class KvWorkload : public Workload
{
  public:
    struct Params
    {
        std::size_t numKeys = 100000;
        std::uint32_t valueSize = 100;   ///< memtier-style small values
        KvPattern pattern = KvPattern::Uniform;
        double setFraction = 0.5;        ///< SET share of the op mix
        std::uint64_t seed = 42;
    };

    KvWorkload(WorkloadContext &context, const Params &params);

    std::string name() const override;
    void setup() override;
    std::uint64_t run(std::uint64_t ops) override;
    std::size_t footprintBytes() const override;

    std::uint64_t opsExecuted() const { return opsExecuted_; }

    /** Verify every key round-trips through the store (integrity). */
    bool verifyAll();

  private:
    void fillValue(std::uint64_t key, std::vector<std::uint8_t> &out);
    std::uint64_t nextKey(bool isSet);

    Params params_;
    Rng rng_;
    std::unique_ptr<KvStore> store_;
    std::uint64_t seqCursor_ = 0;
    std::uint64_t opsExecuted_ = 0;
    std::vector<std::uint8_t> valueScratch_;
};

} // namespace kona

#endif // KONA_WORKLOADS_KV_STORE_H
