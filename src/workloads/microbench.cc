#include "workloads/microbench.h"

#include "common/logging.h"

namespace kona {

OnePerPageWorkload::OnePerPageWorkload(WorkloadContext &context,
                                       const Params &params)
    : Workload(context), params_(params), rng_(params.seed)
{
    KONA_ASSERT(params_.regionBytes >= pageSize, "region too small");
}

void
OnePerPageWorkload::setup()
{
    region_ = context_.alloc(params_.regionBytes, pageSize);
    pages_ = params_.regionBytes / pageSize;
}

bool
OnePerPageWorkload::finished() const
{
    return pass_ >= params_.passes;
}

std::uint64_t
OnePerPageWorkload::run(std::uint64_t ops)
{
    KONA_ASSERT(region_ != 0, "run before setup");
    std::uint64_t executed = 0;
    while (executed < ops && !finished()) {
        Addr page = region_ + cursor_ * pageSize;
        // A line chosen per page (deterministic scatter inside the
        // page so lines differ page to page).
        unsigned line = static_cast<unsigned>(
            (cursor_ * 29 + pass_ * 7) % linesPerPage);
        Addr addr = page + line * cacheLineSize;

        auto value = context_.mem().load<std::uint64_t>(addr);
        context_.mem().store<std::uint64_t>(addr, value + cursor_ + 1);

        ++touched_;
        ++executed;
        if (++cursor_ >= pages_) {
            cursor_ = 0;
            ++pass_;
        }
    }
    return executed;
}

std::vector<unsigned>
contiguousLines(unsigned n)
{
    KONA_ASSERT(n >= 1 && n <= linesPerPage, "bad line count");
    std::vector<unsigned> lines;
    lines.reserve(n);
    for (unsigned i = 0; i < n; ++i)
        lines.push_back(i);
    return lines;
}

std::vector<unsigned>
alternateLines(unsigned n)
{
    KONA_ASSERT(n >= 1 && n <= linesPerPage / 2, "bad line count");
    std::vector<unsigned> lines;
    lines.reserve(n);
    for (unsigned i = 0; i < n; ++i)
        lines.push_back(i * 2);
    return lines;
}

} // namespace kona
