/**
 * @file
 * A VoltDB-like in-memory column store running a TPC-C-style mix
 * (NewOrder / Payment / OrderStatus).
 *
 * Tables are columnar arrays in simulated memory: transactional
 * updates scatter small writes across the stock, customer and district
 * columns, while order insertion appends sequentially to the order and
 * order-line columns — the blend behind VoltDB's 3.7X amplification
 * in Table 2.
 */

#ifndef KONA_WORKLOADS_TPCC_H
#define KONA_WORKLOADS_TPCC_H

#include "workloads/workload.h"

namespace kona {

/** TPC-C-style transaction mix on a column store. */
class TpccWorkload : public Workload
{
  public:
    struct Params
    {
        std::uint32_t items = 20000;
        std::uint32_t customers = 30000;
        std::uint32_t districts = 100;
        /** Capacity of the order/order-line append columns. */
        std::uint64_t maxOrders = 200000;
        std::uint64_t seed = 13;
    };

    TpccWorkload(WorkloadContext &context, const Params &params);

    std::string name() const override { return "voltdb-tpcc"; }
    void setup() override;
    std::uint64_t run(std::uint64_t ops) override;
    std::size_t footprintBytes() const override;

    std::uint64_t ordersPlaced() const { return orderCount_; }
    std::uint64_t paymentsMade() const { return payments_; }

    /** Consistency check: sum of district next-order-ids == orders. */
    bool checkConsistency();

  private:
    void newOrder();
    void payment();
    void orderStatus();

    Params params_;
    Rng rng_;
    std::unique_ptr<ZipfGenerator> itemZipf_;

    // Columns (simulated-memory base addresses).
    Addr itemPrice_ = 0;       ///< double[items]
    Addr stockQty_ = 0;        ///< uint32[items]
    Addr stockYtd_ = 0;        ///< uint64[items]
    Addr custBalance_ = 0;     ///< double[customers]
    Addr custYtd_ = 0;         ///< double[customers]
    Addr distNextOid_ = 0;     ///< uint64[districts]
    Addr distYtd_ = 0;         ///< double[districts]
    Addr orderCust_ = 0;       ///< uint32[maxOrders]
    Addr orderDist_ = 0;       ///< uint32[maxOrders]
    Addr orderDate_ = 0;       ///< uint64[maxOrders]
    Addr olItem_ = 0;          ///< uint32[maxOrders * maxLines]
    Addr olQty_ = 0;           ///< uint32[maxOrders * maxLines]
    Addr olAmount_ = 0;        ///< double[maxOrders * maxLines]

    static constexpr std::uint32_t maxLines = 15;

    std::uint64_t orderCount_ = 0;
    std::uint64_t lineCount_ = 0;
    std::uint64_t payments_ = 0;
};

} // namespace kona

#endif // KONA_WORKLOADS_TPCC_H
