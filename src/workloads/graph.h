/**
 * @file
 * GraphLab-like graph analytics over a CSR graph in simulated memory.
 *
 * Four algorithms from the paper's evaluation: PageRank, Graph
 * Coloring, Connected Components, Label Propagation. The CSR arrays
 * (offsets, neighbors) are read with scattered gathers; the per-vertex
 * property array receives the writes. PageRank writes every vertex per
 * sweep; the propagation algorithms write only vertices whose value
 * changes, plus a per-vertex scheduler flag (GraphLab's scheduling
 * metadata), which is what produces mid-range dirty amplification.
 */

#ifndef KONA_WORKLOADS_GRAPH_H
#define KONA_WORKLOADS_GRAPH_H

#include <vector>

#include "workloads/workload.h"

namespace kona {

/** The four GraphLab benchmarks from Table 2. */
enum class GraphAlgorithm : std::uint8_t
{
    PageRank,
    Coloring,
    ConnectedComponents,
    LabelPropagation,
};

/** A synthetic power-law graph in CSR form, in simulated memory. */
class CsrGraph
{
  public:
    /**
     * Build a random graph with @p vertices and about @p avgDegree
     * out-edges per vertex. Edge endpoints are skewed (Zipf) to mimic
     * power-law degree distributions of real graph datasets.
     */
    CsrGraph(WorkloadContext &context, std::uint32_t vertices,
             std::uint32_t avgDegree, std::uint64_t seed);

    std::uint32_t vertexCount() const { return vertices_; }
    std::uint64_t edgeCount() const { return edges_; }

    /** Degree of @p v (reads the offsets array). */
    std::uint32_t degree(std::uint32_t v);

    /** Read the @p i-th out-neighbor of @p v. */
    std::uint32_t neighbor(std::uint32_t v, std::uint32_t i);

    std::size_t footprintBytes() const;

  private:
    WorkloadContext &context_;
    std::uint32_t vertices_;
    std::uint64_t edges_;
    Addr offsets_;    ///< uint64[vertices + 1]
    Addr neighbors_;  ///< uint32[edges]
};

/** One of the four analytics kernels, executed in vertex steps. */
class GraphWorkload : public Workload
{
  public:
    struct Params
    {
        GraphAlgorithm algorithm = GraphAlgorithm::PageRank;
        std::uint32_t vertices = 200000;
        std::uint32_t avgDegree = 8;
        std::uint64_t seed = 7;
    };

    GraphWorkload(WorkloadContext &context, const Params &params);

    std::string name() const override;
    void setup() override;

    /** One op = one vertex program execution. Sweeps wrap around. */
    std::uint64_t run(std::uint64_t ops) override;

    std::size_t footprintBytes() const override;

    /** Completed full sweeps over the vertex set. */
    std::uint64_t sweeps() const { return sweeps_; }

    /** Vertex values (for convergence checks in tests). */
    double vertexValue(std::uint32_t v);

  private:
    void runVertex(std::uint32_t v);

    Params params_;
    Rng rng_;
    std::unique_ptr<CsrGraph> graph_;
    Addr values_;      ///< double[vertices] (rank / color / comp / label)
    Addr nextValues_;  ///< double[vertices] (PageRank double buffer)
    Addr schedFlags_;  ///< uint32[vertices] scheduler metadata
    std::uint32_t cursor_ = 0;
    std::uint64_t sweeps_ = 0;
};

} // namespace kona

#endif // KONA_WORKLOADS_GRAPH_H
