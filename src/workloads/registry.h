/**
 * @file
 * Workload registry: builds any of the paper's nine Table 2 workloads
 * by name with footprints scaled for tractable simulation. Benches and
 * examples iterate makeAll() to cover the full suite.
 */

#ifndef KONA_WORKLOADS_REGISTRY_H
#define KONA_WORKLOADS_REGISTRY_H

#include <memory>
#include <string>
#include <vector>

#include "workloads/workload.h"

namespace kona {

/** Scale factor for workload footprints (1.0 = the repo defaults). */
struct WorkloadScale
{
    double factor = 1.0;
};

/** The nine Table 2 workload names, in the paper's row order. */
const std::vector<std::string> &table2WorkloadNames();

/**
 * Instantiate workload @p name ("redis-rand", "redis-seq",
 * "linear-regression", "histogram", "pagerank", "graph-coloring",
 * "connected-components", "label-propagation", "voltdb-tpcc").
 * Fatal on unknown names.
 */
std::unique_ptr<Workload> makeWorkload(const std::string &name,
                                       WorkloadContext &context,
                                       const WorkloadScale &scale = {});

/** Reasonable per-workload op budget for one measurement window. */
std::uint64_t defaultWindowOps(const std::string &name);

/** Number of measurement windows covering the workload's active
 *  phase (propagation algorithms converge, so measuring far past
 *  convergence would skew the per-window averages). */
std::size_t defaultWindowCount(const std::string &name);

} // namespace kona

#endif // KONA_WORKLOADS_REGISTRY_H
