/**
 * @file
 * Metis-style in-memory MapReduce kernels: Linear Regression and
 * Histogram (Table 2's 40GB workloads, scaled down).
 *
 * Both stream a large input array (map phase) and write much smaller
 * intermediate results: per-chunk partial records appended
 * sequentially plus scattered updates to a shared reduction table —
 * the streaming, low-reuse pattern behind Fig 8b's flat AMAT curve
 * and Table 2's ~2-4X amplification.
 */

#ifndef KONA_WORKLOADS_METIS_H
#define KONA_WORKLOADS_METIS_H

#include "workloads/workload.h"

namespace kona {

/** Which Metis kernel to run. */
enum class MetisKernel : std::uint8_t { LinearRegression, Histogram };

/** Streaming map-reduce workload. */
class MetisWorkload : public Workload
{
  public:
    struct Params
    {
        MetisKernel kernel = MetisKernel::LinearRegression;
        /** Input elements (8B each for linreg pairs, 1B for pixels). */
        std::size_t inputElements = 4 * 1024 * 1024;
        /** Elements consumed per map task (one op = one task). */
        std::size_t chunkElements = 4096;
        std::uint64_t seed = 11;
    };

    MetisWorkload(WorkloadContext &context, const Params &params);

    std::string name() const override;
    void setup() override;
    std::uint64_t run(std::uint64_t ops) override;
    std::size_t footprintBytes() const override;

    /** Regression slope / histogram checksum (for validation). */
    double result();

  private:
    void mapChunkLinReg(std::size_t chunk);
    void mapChunkHistogram(std::size_t chunk);
    void reducePhase();

    Params params_;
    Rng rng_;

    static constexpr std::size_t workerCount = 4;

    Addr input_ = 0;          ///< the big streamed dataset
    Addr partials_ = 0;       ///< per-chunk partial results (appended)
    Addr reduceTable_ = 0;    ///< shared reduction table (scattered)
    Addr workerTable_ = 0;    ///< per-worker intermediate columns
    std::size_t chunkCount_ = 0;
    std::size_t cursor_ = 0;
    bool reduced_ = false;
};

} // namespace kona

#endif // KONA_WORKLOADS_METIS_H
