/**
 * @file
 * Microbenchmark access patterns used by the paper's Figs 7 and 11:
 *
 *  - OnePerPageWorkload: "read and write 1 cache-line in every page"
 *    over a large region (Fig 7's per-thread kernel);
 *  - dirtyPattern helpers producing N contiguous or alternate dirty
 *    cache-lines per page (Fig 11's eviction kernel).
 */

#ifndef KONA_WORKLOADS_MICROBENCH_H
#define KONA_WORKLOADS_MICROBENCH_H

#include <vector>

#include "workloads/workload.h"

namespace kona {

/** Fig 7 kernel: touch one line per page over the whole region. */
class OnePerPageWorkload : public Workload
{
  public:
    struct Params
    {
        std::size_t regionBytes = 64 * MiB;  ///< 4GB in the paper
        std::size_t passes = 1;              ///< full sweeps to perform
        std::uint64_t seed = 3;
    };

    OnePerPageWorkload(WorkloadContext &context, const Params &params);

    std::string name() const override { return "one-per-page"; }
    void setup() override;

    /** One op = read+write one line of one page; 0 when done. */
    std::uint64_t run(std::uint64_t ops) override;

    std::size_t footprintBytes() const override
    {
        return params_.regionBytes;
    }

    std::uint64_t pagesTouched() const { return touched_; }
    bool finished() const;

  private:
    Params params_;
    Rng rng_;
    Addr region_ = 0;
    std::uint64_t pages_ = 0;
    std::uint64_t cursor_ = 0;
    std::uint64_t pass_ = 0;
    std::uint64_t touched_ = 0;
};

/** Line indices for N contiguous dirty lines starting at line 0. */
std::vector<unsigned> contiguousLines(unsigned n);

/** Line indices for N alternate (every other) dirty lines. */
std::vector<unsigned> alternateLines(unsigned n);

} // namespace kona

#endif // KONA_WORKLOADS_MICROBENCH_H
