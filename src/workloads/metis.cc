#include "workloads/metis.h"

#include <cmath>

#include "common/logging.h"

namespace kona {

namespace {

/** Cache-line aligned per-chunk partial record (Metis pads per-task
 *  output buffers to avoid false sharing). */
struct LinRegPartial
{
    double sx, sy, sxx, sxy;
    std::uint64_t n;
    std::uint8_t pad[24];
};
static_assert(sizeof(LinRegPartial) == cacheLineSize);

/** One intermediate key-value entry of the histogram kernel. */
struct HistEntry
{
    std::uint32_t bin;
    std::uint32_t count;
    std::uint64_t chunk;
};
static_assert(sizeof(HistEntry) == 16);

constexpr std::size_t histBins = 256;

} // namespace

MetisWorkload::MetisWorkload(WorkloadContext &context,
                             const Params &params)
    : Workload(context), params_(params), rng_(params.seed)
{
    KONA_ASSERT(params_.inputElements >= params_.chunkElements,
                "input smaller than one chunk");
}

std::string
MetisWorkload::name() const
{
    return params_.kernel == MetisKernel::LinearRegression
        ? "linear-regression" : "histogram";
}

void
MetisWorkload::setup()
{
    chunkCount_ = params_.inputElements / params_.chunkElements;
    cursor_ = 0;
    reduced_ = false;

    std::size_t elemSize =
        params_.kernel == MetisKernel::LinearRegression ? 8 : 1;
    std::size_t inputBytes = params_.inputElements * elemSize;
    input_ = context_.alloc(inputBytes, pageSize);

    // Generate the dataset host-side and load it in page chunks.
    std::vector<std::uint8_t> buffer(pageSize);
    for (std::size_t off = 0; off < inputBytes; off += pageSize) {
        std::size_t chunk = std::min(pageSize, inputBytes - off);
        if (params_.kernel == MetisKernel::LinearRegression) {
            // (x, y) float pairs around y = 3x + noise.
            auto *floats = reinterpret_cast<float *>(buffer.data());
            for (std::size_t i = 0; i + 1 < chunk / 4; i += 2) {
                float x = static_cast<float>(rng_.uniform() * 100.0);
                float noise = static_cast<float>(rng_.uniform() - 0.5);
                floats[i] = x;
                floats[i + 1] = 3.0f * x + noise;
            }
        } else {
            // Zipf-skewed pixels so chunks hit a subset of bins.
            for (std::size_t i = 0; i < chunk; ++i) {
                buffer[i] = static_cast<std::uint8_t>(
                    rng_.next() % histBins);
            }
        }
        context_.mem().write(input_ + off, buffer.data(), chunk);
    }

    if (params_.kernel == MetisKernel::LinearRegression) {
        partials_ = context_.alloc(chunkCount_ * sizeof(LinRegPartial),
                                   pageSize);
        reduceTable_ = context_.alloc(sizeof(LinRegPartial), pageSize);
        // Per-worker intermediate tables (Metis hashes map output into
        // per-core buffers): chunk results round-robin over workers,
        // so each worker's column fills slowly — partially-dirty pages.
        workerTable_ = context_.alloc(
            workerCount * (chunkCount_ / workerCount + 1) *
                sizeof(LinRegPartial),
            pageSize);
    } else {
        partials_ = context_.alloc(chunkCount_ * sizeof(std::uint64_t),
                                   pageSize);
        // Intermediate KV area: per bin, one entry slot per chunk.
        reduceTable_ = context_.alloc(
            histBins * chunkCount_ * sizeof(HistEntry), pageSize);
    }
}

void
MetisWorkload::mapChunkLinReg(std::size_t chunk)
{
    MemoryInterface &mem = context_.mem();
    Addr base = input_ + chunk * params_.chunkElements * 8;

    LinRegPartial partial{};
    for (std::size_t i = 0; i < params_.chunkElements; ++i) {
        float x = mem.load<float>(base + i * 8);
        float y = mem.load<float>(base + i * 8 + 4);
        partial.sx += x;
        partial.sy += y;
        partial.sxx += static_cast<double>(x) * x;
        partial.sxy += static_cast<double>(x) * y;
        partial.n += 1;
    }
    mem.store(partials_ + chunk * sizeof(LinRegPartial), partial);

    // Emit the chunk's intermediate record into its worker's column.
    std::size_t worker = chunk % workerCount;
    std::size_t slot = chunk / workerCount;
    std::size_t slotsPerWorker = chunkCount_ / workerCount + 1;
    mem.store(workerTable_ +
                  (worker * slotsPerWorker + slot) *
                      sizeof(LinRegPartial),
              partial);
}

void
MetisWorkload::mapChunkHistogram(std::size_t chunk)
{
    MemoryInterface &mem = context_.mem();
    Addr base = input_ + chunk * params_.chunkElements;

    std::uint32_t counts[histBins] = {};
    std::uint8_t pixels[512];
    std::size_t remaining = params_.chunkElements;
    Addr cursor = base;
    std::uint64_t checksum = 0;
    while (remaining > 0) {
        std::size_t batch = std::min(remaining, sizeof(pixels));
        mem.read(cursor, pixels, batch);
        for (std::size_t i = 0; i < batch; ++i) {
            ++counts[pixels[i]];
            checksum += pixels[i];
        }
        cursor += batch;
        remaining -= batch;
    }
    mem.store<std::uint64_t>(partials_ + chunk * sizeof(std::uint64_t),
                             checksum);

    // Emit one intermediate KV entry per bin seen in this chunk; each
    // bin's entries form a per-bin column, so writes scatter across
    // the table but stay contiguous within a bin across chunks.
    for (std::size_t bin = 0; bin < histBins; ++bin) {
        if (counts[bin] == 0)
            continue;
        HistEntry entry{static_cast<std::uint32_t>(bin), counts[bin],
                        chunk};
        Addr slot = reduceTable_ +
                    (bin * chunkCount_ + chunk) * sizeof(HistEntry);
        mem.store(slot, entry);
    }
}

std::uint64_t
MetisWorkload::run(std::uint64_t ops)
{
    KONA_ASSERT(input_ != 0, "run before setup");
    std::uint64_t executed = 0;
    while (executed < ops && cursor_ < chunkCount_) {
        if (params_.kernel == MetisKernel::LinearRegression)
            mapChunkLinReg(cursor_);
        else
            mapChunkHistogram(cursor_);
        ++cursor_;
        ++executed;
    }
    if (executed < ops && !reduced_) {
        reducePhase();
        reduced_ = true;
        ++executed;
    }
    return executed;
}

void
MetisWorkload::reducePhase()
{
    MemoryInterface &mem = context_.mem();
    if (params_.kernel == MetisKernel::LinearRegression) {
        LinRegPartial total{};
        for (std::size_t c = 0; c < chunkCount_; ++c) {
            auto partial = mem.load<LinRegPartial>(
                partials_ + c * sizeof(LinRegPartial));
            total.sx += partial.sx;
            total.sy += partial.sy;
            total.sxx += partial.sxx;
            total.sxy += partial.sxy;
            total.n += partial.n;
        }
        mem.store(reduceTable_, total);
    }
    // The histogram reduce is a read-mostly pass over the KV columns;
    // its result is recomputed on demand in result().
}

double
MetisWorkload::result()
{
    MemoryInterface &mem = context_.mem();
    if (params_.kernel == MetisKernel::LinearRegression) {
        auto total = mem.load<LinRegPartial>(reduceTable_);
        double n = static_cast<double>(total.n);
        if (n == 0)
            return 0.0;
        double denom = n * total.sxx - total.sx * total.sx;
        if (denom == 0.0)
            return 0.0;
        return (n * total.sxy - total.sx * total.sy) / denom;
    }
    std::uint64_t checksum = 0;
    for (std::size_t c = 0; c < chunkCount_; ++c) {
        checksum += mem.load<std::uint64_t>(
            partials_ + c * sizeof(std::uint64_t));
    }
    return static_cast<double>(checksum);
}

std::size_t
MetisWorkload::footprintBytes() const
{
    if (input_ == 0)
        return 0;
    std::size_t elemSize =
        params_.kernel == MetisKernel::LinearRegression ? 8 : 1;
    std::size_t total = params_.inputElements * elemSize;
    if (params_.kernel == MetisKernel::LinearRegression) {
        total += chunkCount_ * sizeof(LinRegPartial) +
                 sizeof(LinRegPartial);
    } else {
        total += chunkCount_ * sizeof(std::uint64_t) +
                 histBins * chunkCount_ * sizeof(HistEntry);
    }
    return total;
}

} // namespace kona
