#include "workloads/kv_store.h"

#include "common/logging.h"

namespace kona {

KvStore::KvStore(WorkloadContext &context, std::size_t capacity,
                 bool hashed)
    : context_(context), capacity_(capacity), hashed_(hashed)
{
    KONA_ASSERT((capacity & (capacity - 1)) == 0,
                "capacity must be a power of two");
    table_ = context_.alloc(capacity_ * sizeof(Bucket),
                            cacheLineSize);
    // Zero the bucket states (allocated memory reads as zero in the
    // plain backing store, but runtimes may recycle addresses).
    Bucket empty{};
    for (std::size_t i = 0; i < capacity_; ++i)
        context_.mem().store(bucketAddr(i), empty);
}

std::uint64_t
KvStore::bucketIndex(std::uint64_t key) const
{
    if (!hashed_)
        return key & (capacity_ - 1);
    // splitmix64 finalizer as the hash.
    std::uint64_t z = key + 0x9e3779b97f4a7c15ULL;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    z = z ^ (z >> 31);
    return z & (capacity_ - 1);
}

std::optional<std::uint64_t>
KvStore::find(std::uint64_t key)
{
    std::uint64_t index = bucketIndex(key);
    for (std::size_t probe = 0; probe < capacity_; ++probe) {
        Bucket bucket = context_.mem().load<Bucket>(bucketAddr(index));
        if (bucket.state == 0)
            return std::nullopt;
        if (bucket.state == 1 && bucket.key == key)
            return index;
        index = (index + 1) & (capacity_ - 1);
    }
    return std::nullopt;
}

void
KvStore::set(std::uint64_t key, const std::uint8_t *value,
             std::uint32_t length)
{
    std::uint64_t index = bucketIndex(key);
    std::optional<std::uint64_t> tombstone;
    for (std::size_t probe = 0; probe < capacity_; ++probe) {
        Bucket bucket = context_.mem().load<Bucket>(bucketAddr(index));
        if (bucket.state == 1 && bucket.key == key) {
            // Overwrite. Reuse the value buffer when it still fits.
            if (bucket.valueLen >= length) {
                context_.mem().write(bucket.valueAddr, value, length);
                if (bucket.valueLen != length) {
                    bucket.valueLen = length;
                    context_.mem().store(bucketAddr(index), bucket);
                }
            } else {
                context_.release(bucket.valueAddr);
                bucket.valueAddr = context_.alloc(length);
                bucket.valueLen = length;
                context_.mem().write(bucket.valueAddr, value, length);
                context_.mem().store(bucketAddr(index), bucket);
            }
            return;
        }
        if (bucket.state == 2 && !tombstone.has_value())
            tombstone = index;
        if (bucket.state == 0) {
            std::uint64_t slot = tombstone.value_or(index);
            Bucket fresh;
            fresh.key = key;
            fresh.valueAddr = context_.alloc(length);
            fresh.valueLen = length;
            fresh.state = 1;
            context_.mem().write(fresh.valueAddr, value, length);
            context_.mem().store(bucketAddr(slot), fresh);
            ++live_;
            valueBytes_ += length;
            return;
        }
        index = (index + 1) & (capacity_ - 1);
    }
    fatal("KvStore full: ", live_, " live entries in ", capacity_,
          " buckets");
}

bool
KvStore::get(std::uint64_t key, std::vector<std::uint8_t> &out)
{
    auto index = find(key);
    if (!index.has_value())
        return false;
    Bucket bucket = context_.mem().load<Bucket>(bucketAddr(*index));
    out.resize(bucket.valueLen);
    context_.mem().read(bucket.valueAddr, out.data(), bucket.valueLen);
    return true;
}

bool
KvStore::erase(std::uint64_t key)
{
    auto index = find(key);
    if (!index.has_value())
        return false;
    Bucket bucket = context_.mem().load<Bucket>(bucketAddr(*index));
    context_.release(bucket.valueAddr);
    valueBytes_ -= bucket.valueLen;
    bucket.state = 2;
    bucket.valueAddr = 0;
    bucket.valueLen = 0;
    context_.mem().store(bucketAddr(*index), bucket);
    --live_;
    return true;
}

std::size_t
KvStore::footprintBytes() const
{
    return capacity_ * sizeof(Bucket) + valueBytes_;
}

KvWorkload::KvWorkload(WorkloadContext &context, const Params &params)
    : Workload(context), params_(params), rng_(params.seed)
{
    KONA_ASSERT(params_.numKeys > 0, "empty key space");
}

std::string
KvWorkload::name() const
{
    return params_.pattern == KvPattern::Uniform ? "redis-rand"
                                                 : "redis-seq";
}

void
KvWorkload::fillValue(std::uint64_t key,
                      std::vector<std::uint8_t> &out)
{
    out.resize(params_.valueSize);
    // Deterministic value derived from the key + a version counter so
    // overwrites actually change bytes (snapshot diffs must see them).
    std::uint64_t stamp = key * 0x9e3779b97f4a7c15ULL + opsExecuted_;
    for (std::size_t i = 0; i < out.size(); ++i)
        out[i] = static_cast<std::uint8_t>(stamp >> ((i % 8) * 8)) ^
                 static_cast<std::uint8_t>(i);
}

std::uint64_t
KvWorkload::nextKey(bool isSet)
{
    if (params_.pattern == KvPattern::Sequential) {
        if (isSet) {
            std::uint64_t key = seqCursor_;
            seqCursor_ = (seqCursor_ + 1) % params_.numKeys;
            return key;
        }
        // Sequential readers trail the writer (memtier's seq mode):
        // GETs revisit recently written keys instead of punching
        // read-only holes into the write stream.
        std::uint64_t back = 1 + rng_.below(64);
        return (seqCursor_ + params_.numKeys - back) %
               params_.numKeys;
    }
    return rng_.below(params_.numKeys);
}

void
KvWorkload::setup()
{
    std::size_t buckets = 1;
    while (buckets < params_.numKeys * 2)
        buckets <<= 1;
    store_ = std::make_unique<KvStore>(
        context_, buckets, params_.pattern == KvPattern::Uniform);

    // Initial load: insert every key once, in key order (a bulk load
    // or an AOF replay would do the same).
    for (std::uint64_t key = 0; key < params_.numKeys; ++key) {
        fillValue(key, valueScratch_);
        store_->set(key, valueScratch_.data(),
                    static_cast<std::uint32_t>(valueScratch_.size()));
    }
}

std::uint64_t
KvWorkload::run(std::uint64_t ops)
{
    KONA_ASSERT(store_ != nullptr, "run before setup");
    for (std::uint64_t i = 0; i < ops; ++i) {
        bool isSet = rng_.chance(params_.setFraction);
        std::uint64_t key = nextKey(isSet);
        if (isSet) {
            fillValue(key, valueScratch_);
            store_->set(key, valueScratch_.data(),
                        static_cast<std::uint32_t>(
                            valueScratch_.size()));
        } else {
            store_->get(key, valueScratch_);
        }
        ++opsExecuted_;
    }
    return ops;
}

std::size_t
KvWorkload::footprintBytes() const
{
    return store_ ? store_->footprintBytes() : 0;
}

bool
KvWorkload::verifyAll()
{
    std::vector<std::uint8_t> value;
    for (std::uint64_t key = 0; key < params_.numKeys; ++key) {
        if (!store_->get(key, value))
            return false;
        if (value.size() != params_.valueSize)
            return false;
    }
    return true;
}

} // namespace kona
