#include "workloads/registry.h"

#include "common/logging.h"
#include "workloads/graph.h"
#include "workloads/kv_store.h"
#include "workloads/metis.h"
#include "workloads/tpcc.h"

namespace kona {

const std::vector<std::string> &
table2WorkloadNames()
{
    static const std::vector<std::string> names = {
        "redis-rand",
        "redis-seq",
        "linear-regression",
        "histogram",
        "pagerank",
        "graph-coloring",
        "connected-components",
        "label-propagation",
        "voltdb-tpcc",
    };
    return names;
}

std::unique_ptr<Workload>
makeWorkload(const std::string &name, WorkloadContext &context,
             const WorkloadScale &scale)
{
    auto scaled = [&scale](std::size_t n) {
        auto v = static_cast<std::size_t>(
            static_cast<double>(n) * scale.factor);
        return std::max<std::size_t>(v, 1);
    };

    if (name == "redis-rand" || name == "redis-seq") {
        KvWorkload::Params params;
        params.numKeys = scaled(100000);
        params.valueSize = 100;
        params.pattern = name == "redis-rand" ? KvPattern::Uniform
                                              : KvPattern::Sequential;
        // memtier-style mixed load; the Seq workload is write-heavy
        // (a bulk load / AOF replay pattern).
        params.setFraction = name == "redis-rand" ? 0.5 : 0.9;
        return std::make_unique<KvWorkload>(context, params);
    }
    if (name == "linear-regression" || name == "histogram") {
        MetisWorkload::Params params;
        params.kernel = name == "histogram"
            ? MetisKernel::Histogram : MetisKernel::LinearRegression;
        params.inputElements = name == "histogram"
            ? scaled(16 * 1024 * 1024) : scaled(4 * 1024 * 1024);
        params.chunkElements = name == "histogram" ? 16384 : 4096;
        return std::make_unique<MetisWorkload>(context, params);
    }
    if (name == "pagerank" || name == "graph-coloring" ||
        name == "connected-components" ||
        name == "label-propagation") {
        GraphWorkload::Params params;
        if (name == "pagerank")
            params.algorithm = GraphAlgorithm::PageRank;
        else if (name == "graph-coloring")
            params.algorithm = GraphAlgorithm::Coloring;
        else if (name == "connected-components")
            params.algorithm = GraphAlgorithm::ConnectedComponents;
        else
            params.algorithm = GraphAlgorithm::LabelPropagation;
        params.vertices = static_cast<std::uint32_t>(scaled(200000));
        params.avgDegree = 8;
        return std::make_unique<GraphWorkload>(context, params);
    }
    if (name == "voltdb-tpcc") {
        TpccWorkload::Params params;
        params.items = static_cast<std::uint32_t>(scaled(20000));
        params.customers = static_cast<std::uint32_t>(scaled(30000));
        params.maxOrders = scaled(200000);
        return std::make_unique<TpccWorkload>(context, params);
    }
    fatal("unknown workload '", name, "'");
}

std::uint64_t
defaultWindowOps(const std::string &name)
{
    // Window sizes chosen so a window dirties a few percent of the
    // footprint, mirroring the paper's 10-second real-time windows.
    if (name == "redis-rand" || name == "redis-seq")
        return 5000;
    if (name == "linear-regression")
        return 64;    // one op = one 4096-element map task
    if (name == "histogram")
        return 64;
    if (name == "voltdb-tpcc")
        return 4000;
    if (name == "pagerank")
        return 60000; // dense sweeps: wider windows, denser pages
    return 40000;     // graph workloads: one op = one vertex program
}

std::size_t
defaultWindowCount(const std::string &name)
{
    if (name == "graph-coloring" || name == "connected-components" ||
        name == "label-propagation") {
        return 8;   // ~1.5 sweeps: the active (pre-convergence) phase
    }
    return 14;
}

} // namespace kona
