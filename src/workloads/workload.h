/**
 * @file
 * Workload scaffolding.
 *
 * The paper evaluates real applications (Redis, GraphLab, Metis,
 * VoltDB) under Pin instrumentation. Those applications and traces are
 * not available offline, so src/workloads provides in-repo models that
 * perform the same computations over the same data-structure shapes in
 * simulated memory — every load/store flows through a MemoryInterface,
 * which is exactly what the paper's instrumentation captured.
 *
 * Workloads run in steps so drivers can insert measurement windows
 * (the paper uses 10-second windows; we use operation-count windows).
 */

#ifndef KONA_WORKLOADS_WORKLOAD_H
#define KONA_WORKLOADS_WORKLOAD_H

#include <functional>
#include <memory>
#include <string>

#include "common/rng.h"
#include "mem/memory_interface.h"
#include "mem/region_allocator.h"

namespace kona {

/**
 * The environment a workload runs in: a memory to load/store through
 * and an allocator carving simulated addresses. Backed either by a
 * RemoteMemoryRuntime (end-to-end runs) or by a plain BackingStore +
 * RegionAllocator (trace-analysis runs).
 */
class WorkloadContext
{
  public:
    using AllocFn = std::function<Addr(std::size_t, std::size_t)>;
    using FreeFn = std::function<void(Addr)>;

    WorkloadContext(MemoryInterface &mem, AllocFn alloc, FreeFn release)
        : mem_(&mem), alloc_(std::move(alloc)),
          release_(std::move(release))
    {}

    MemoryInterface &mem() { return *mem_; }

    Addr
    alloc(std::size_t size, std::size_t align = 16)
    {
        return alloc_(size, align);
    }

    void release(Addr addr) { release_(addr); }

  private:
    MemoryInterface *mem_;
    AllocFn alloc_;
    FreeFn release_;
};

/** A stepwise-executable application model. */
class Workload
{
  public:
    explicit Workload(WorkloadContext &context) : context_(context) {}
    virtual ~Workload() = default;

    virtual std::string name() const = 0;

    /** Allocate and populate the data structures. */
    virtual void setup() = 0;

    /**
     * Execute up to @p ops operations.
     * @return Operations actually executed; 0 means the workload has
     *         finished (finite workloads only).
     */
    virtual std::uint64_t run(std::uint64_t ops) = 0;

    /** Approximate resident data footprint in bytes (after setup). */
    virtual std::size_t footprintBytes() const = 0;

  protected:
    WorkloadContext &context_;
};

} // namespace kona

#endif // KONA_WORKLOADS_WORKLOAD_H
