/**
 * @file
 * Fabric: the simulated RoCE switch connecting compute and memory
 * nodes. It owns per-node backing stores' registration namespace and
 * the link cost/failure model; QueuePairs execute verbs against it.
 *
 * The cost model is deliberately simple and calibrated to the paper's
 * measured numbers (4KB op ~ 3us on CX5/100Gbps):
 *
 *     cost(op)        = rdmaBaseNs + bytes * rdmaPipelinedPerKbNs/1024
 *     cost(linked op) = rdmaLinkedOpNs + the same wire term
 *
 * Linked (chained) work requests amortize the doorbell and DMA setup,
 * which is the batching optimization of §5.1.
 */

#ifndef KONA_NET_FABRIC_H
#define KONA_NET_FABRIC_H

#include <cstdint>
#include <unordered_map>

#include "common/latency.h"
#include "common/logging.h"
#include "common/types.h"
#include "mem/backing_store.h"
#include "telemetry/metric_registry.h"

namespace kona {

class FaultInjector;

/** A registered memory region on some node. */
struct MemoryRegion
{
    std::uint32_t key = 0;
    NodeId node = 0;
    Addr base = 0;
    std::size_t length = 0;

    bool
    covers(Addr addr, std::size_t size) const
    {
        // Subtraction-only bounds check: `addr + size` can wrap for
        // addresses near the top of the 64-bit space and falsely pass.
        return addr >= base && size <= length && addr - base <= length - size;
    }
};

/** The rack network. */
class Fabric
{
  public:
    /** @param scope Telemetry scope for "bytes_moved"/"ops_executed". */
    explicit Fabric(const LatencyConfig &latency = {},
                    MetricScope scope = {})
        : latency_(latency), scope_(std::move(scope)),
          bytesMoved_(scope_.counter("bytes_moved")),
          opsExecuted_(scope_.counter("ops_executed"))
    {}

    /** Attach @p store as the physical memory of node @p node. */
    void attachNode(NodeId node, BackingStore *store);

    BackingStore &nodeStore(NodeId node);
    bool hasNode(NodeId node) const { return stores_.count(node) != 0; }

    /**
     * Register [base, base+length) of @p node's memory for RDMA.
     * @return The region key used in work requests.
     */
    MemoryRegion registerRegion(NodeId node, Addr base,
                                std::size_t length);

    /** Drop a registration. */
    void deregisterRegion(std::uint32_t key);

    /** Look up a registration; fatal if unknown. */
    const MemoryRegion &region(std::uint32_t key) const;

    const LatencyConfig &latency() const { return latency_; }

    /** Inject extra one-way delay on every op touching @p node. */
    void setNodeDelay(NodeId node, Tick extraNs);

    /** Mark @p node unreachable (ops fail) or reachable again. */
    void setNodeDown(NodeId node, bool down);

    Tick nodeDelay(NodeId node) const;
    bool nodeDown(NodeId node) const;

    /**
     * Plug a fault model into the fabric; every verb consults it.
     * Pass nullptr to detach. The fabric does not own the injector.
     */
    void setFaultInjector(FaultInjector *injector);
    FaultInjector *faultInjector() const { return injector_; }

    std::uint64_t bytesTransferred() const { return bytesMoved_.value(); }
    std::uint64_t opsExecuted() const { return opsExecuted_.value(); }

    /** Internal accounting hooks used by QueuePair. */
    void accountTransfer(std::uint64_t bytes)
    {
        bytesMoved_.add(bytes);
        opsExecuted_.add();
    }

  private:
    LatencyConfig latency_;
    MetricScope scope_;
    std::unordered_map<NodeId, BackingStore *> stores_;
    std::unordered_map<std::uint32_t, MemoryRegion> regions_;
    std::unordered_map<NodeId, Tick> delays_;
    std::unordered_map<NodeId, bool> down_;
    FaultInjector *injector_ = nullptr;
    std::uint32_t nextKey_ = 1;
    Counter &bytesMoved_;
    Counter &opsExecuted_;
};

} // namespace kona

#endif // KONA_NET_FABRIC_H
