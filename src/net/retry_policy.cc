#include "net/retry_policy.h"

namespace kona {

Tick
RetryState::backoff(SimClock &clock)
{
    double jitter = 1.0 + policy_.jitterFraction * rng_.uniform();
    Tick charged = static_cast<Tick>(
        static_cast<double>(nextBackoffNs_) * jitter);
    clock.advance(charged);
    spentNs_ += charged;
    ++attempts_;
    if (retriesCounter_ != nullptr)
        retriesCounter_->add();
    if (backoffHist_ != nullptr)
        backoffHist_->record(static_cast<double>(charged));

    double grown = static_cast<double>(nextBackoffNs_) *
                   policy_.backoffMultiplier;
    nextBackoffNs_ = static_cast<Tick>(grown);
    if (nextBackoffNs_ > policy_.maxBackoffNs)
        nextBackoffNs_ = policy_.maxBackoffNs;
    return charged;
}

} // namespace kona
