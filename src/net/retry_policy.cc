#include "net/retry_policy.h"

#include <limits>

namespace kona {

namespace {

/**
 * Convert a double-domain tick count back to Tick, saturating instead
 * of invoking the UB of an out-of-range float-to-integer cast. Large
 * attempt counts against a large maxBackoffNs can push the exponential
 * schedule past 2^63 in the double domain; the schedule must pin to
 * the ceiling, not wrap to a tiny wait.
 */
Tick
saturatingTicks(double ns)
{
    // The largest double exactly representable below 2^64.
    constexpr double tickLimit = 18446744073709549568.0;
    if (!(ns < tickLimit))
        return std::numeric_limits<Tick>::max();
    if (ns <= 0.0)
        return 0;
    return static_cast<Tick>(ns);
}

} // namespace

Tick
RetryState::backoff(SimClock &clock)
{
    double jitter = 1.0 + policy_.jitterFraction * rng_.uniform();
    Tick charged = saturatingTicks(
        static_cast<double>(nextBackoffNs_) * jitter);
    clock.advance(charged);
    spentNs_ = charged > std::numeric_limits<Tick>::max() - spentNs_
                   ? std::numeric_limits<Tick>::max()
                   : spentNs_ + charged;
    ++attempts_;
    if (retriesCounter_ != nullptr)
        retriesCounter_->add();
    if (backoffHist_ != nullptr)
        backoffHist_->record(static_cast<double>(charged));

    double grown = static_cast<double>(nextBackoffNs_) *
                   policy_.backoffMultiplier;
    nextBackoffNs_ = saturatingTicks(grown);
    if (nextBackoffNs_ > policy_.maxBackoffNs)
        nextBackoffNs_ = policy_.maxBackoffNs;
    return charged;
}

} // namespace kona
