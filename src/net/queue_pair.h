/**
 * @file
 * QueuePair and CompletionQueue: the one-sided RDMA verbs the Kona
 * runtime uses (§5.1's optimizations are all modelled):
 *
 *  - batching/linking multiple reads or writes into one chained post;
 *  - unsignaled completions (only the final WR of a batch signals);
 *  - optional inline data for tiny payloads (cheaper, no DMA fetch);
 *  - data really moves between the local host buffer and the remote
 *    node's BackingStore, so integrity is testable end-to-end.
 */

#ifndef KONA_NET_QUEUE_PAIR_H
#define KONA_NET_QUEUE_PAIR_H

#include <cstdint>
#include <deque>
#include <span>
#include <vector>

#include "common/sim_clock.h"
#include "net/fabric.h"

namespace kona {

/**
 * One-sided verb opcodes. Inval is the coherence control opcode: a
 * tiny send into the target node's registered mailbox region, used for
 * directory invalidations and acquire/release RPCs. On the wire it
 * behaves like a small write (it lands payload bytes remotely and pays
 * the same base + wire cost), so fault injection — drops, partitions,
 * degrade delays, flaps — applies to coherence traffic exactly as it
 * does to data traffic. NAK injection stays Write-only: control
 * messages carry no CL-log CRC, so a corrupted Inval is modelled as a
 * transport-level drop instead.
 */
enum class RdmaOpcode : std::uint8_t { Read, Write, Inval };

/** A work request. Local buffers are host memory (registered buffers). */
struct WorkRequest
{
    std::uint64_t wrId = 0;
    RdmaOpcode opcode = RdmaOpcode::Write;
    void *localBuf = nullptr;           ///< source (Write) or dest (Read)
    std::uint32_t remoteKey = 0;        ///< registered remote region
    Addr remoteAddr = 0;                ///< absolute address on the node
    std::size_t length = 0;
    bool signaled = true;
    bool inlineData = false;            ///< copy into the WQE (tiny only)
};

/** Completion status. */
enum class WcStatus : std::uint8_t
{
    Success,
    RemoteUnreachable, ///< node marked down; op never left the NIC
    Timeout,           ///< link unresponsive; issuer waited out a timer
    Dropped,           ///< op lost in flight (or failed the ICRC check)
};

/** A completion entry. */
struct WorkCompletion
{
    std::uint64_t wrId = 0;
    WcStatus status = WcStatus::Success;
    Tick completeAt = 0;   ///< simulated time the CQE became visible
};

/**
 * Outcome of a post/postLinked doorbell. cqesPushed tells the caller
 * exactly how many CQEs this doorbell put on the CQ (success CQEs for
 * signaled WRs, or the one error CQE of a failed post), so error paths
 * no longer have to infer how much to drain.
 */
struct PostResult
{
    WcStatus status = WcStatus::Success;
    std::size_t cqesPushed = 0;

    bool ok() const { return status == WcStatus::Success; }
    explicit operator bool() const { return ok(); }
};

/** Completion queue: CQEs in completion order. */
class CompletionQueue
{
  public:
    void push(const WorkCompletion &wc) { entries_.push_back(wc); }

    bool empty() const { return entries_.empty(); }
    std::size_t depth() const { return entries_.size(); }

    /** Pop the oldest CQE; caller checks empty() first. */
    WorkCompletion pop();

  private:
    std::deque<WorkCompletion> entries_;
};

/**
 * A reliable-connected queue pair from a local node to a remote node.
 * Verbs execute functionally at post time; their simulated latency is
 * charged to the supplied SimClock and recorded in the CQE timestamp.
 */
class QueuePair
{
  public:
    /** @param scope Telemetry scope for "posted_ops"/"posted_bytes". */
    QueuePair(Fabric &fabric, NodeId localNode, NodeId remoteNode,
              CompletionQueue &cq, MetricScope scope = {});

    /**
     * Post a single work request.
     * @param clock The issuing thread's clock; only the posting overhead
     *              is charged synchronously, the transfer completes at
     *              the CQE timestamp.
     * @return A failed status if the op never landed (node down, drop,
     *         timeout); an error CQE is pushed and counted in
     *         cqesPushed so the caller can drain it.
     */
    PostResult post(const WorkRequest &wr, SimClock &clock);

    /**
     * Post a chain of linked work requests as one doorbell. Only WRs
     * with signaled=true produce CQEs; the paper's eviction path signals
     * only the last WR of a batch. A mid-chain failure pushes one error
     * CQE carrying the failing WR's id.
     */
    PostResult postLinked(std::span<const WorkRequest> wrs,
                          SimClock &clock);

    NodeId remoteNode() const { return remoteNode_; }

    std::uint64_t postedOps() const { return postedOps_.value(); }
    std::uint64_t postedBytes() const { return postedBytes_.value(); }

  private:
    /** Execute the data movement; returns transfer cost in ns. */
    double executeOne(const WorkRequest &wr, bool linked);

    /** Flip the injector-chosen bit of a landed write's payload. */
    void applyCorruption(const WorkRequest &wr,
                         const struct FaultDecision &fd);

    Fabric &fabric_;
    NodeId localNode_;
    NodeId remoteNode_;
    CompletionQueue &cq_;
    MetricScope scope_;
    Counter &postedOps_;
    Counter &postedBytes_;
};

/**
 * Poller: drains completion queues, charging polling overhead and
 * advancing the caller past CQE timestamps (the KLib Poller component).
 */
class Poller
{
  public:
    explicit Poller(const LatencyConfig &latency) : latency_(latency) {}

    /**
     * Busy-poll @p cq until a CQE arrives, charge poll cost, return it.
     * The clock is advanced to at least the CQE's completion time.
     */
    WorkCompletion waitOne(CompletionQueue &cq, SimClock &clock);

    /**
     * Charge the poll cost of an already-popped CQE to @p clock (the
     * async eviction engine pops CQEs itself to route them to their
     * in-flight shipments, then charges each shipment's own timeline).
     */
    void complete(const WorkCompletion &wc, SimClock &clock);

    /** Drain up to @p max CQEs without blocking semantics. */
    std::vector<WorkCompletion> drain(CompletionQueue &cq,
                                      SimClock &clock,
                                      std::size_t max = ~std::size_t(0));

  private:
    const LatencyConfig &latency_;
};

} // namespace kona

#endif // KONA_NET_QUEUE_PAIR_H
