/**
 * @file
 * FaultInjector: a deterministic, seed-driven fault model for the
 * simulated fabric (§4.5's reliability concerns made testable).
 *
 * The binary up/down switch of Fabric::setNodeDown only exercises one
 * failure shape. Real disaggregated racks also see partial failures:
 * dropped packets, transient error bursts, tail-latency spikes,
 * payload corruption past the transport's checks, and links that flap.
 * The injector scripts all of these per node so fault workloads are
 * reproducible from a seed:
 *
 *   FaultInjector fi(seed);
 *   fi.profile(2).flapPeriodOps = 500;   // flap node 2 every 500 ops
 *   fi.profile(2).flapDownOps = 20;      // ...down for 20 ops each time
 *   fi.profile(3).dropProbability = 0.02;
 *   fabric.setFaultInjector(&fi);
 *
 * Every verb QueuePair executes consults the injector once per work
 * request, so mid-chain failure of linked batches falls out naturally:
 * earlier WRs of the chain have landed, later ones never execute.
 *
 * Corruption semantics mirror real RDMA: corrupted *reads* and wire-
 * corrupted packets are caught by the transport's ICRC and surface as
 * WcStatus::Dropped (data never applied); corrupted *writes* model
 * end-host DMA corruption — the payload lands with a flipped bit and
 * the completion still reports Success. Only an end-to-end check (the
 * CL log's CRC32) can catch those.
 */

#ifndef KONA_NET_FAULT_INJECTOR_H
#define KONA_NET_FAULT_INJECTOR_H

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/rng.h"
#include "common/stats.h"
#include "common/types.h"
#include "net/queue_pair.h"
#include "telemetry/metric_registry.h"

namespace kona {

class Fabric;

/** Per-node scripted fault profile. All fields default to "no fault". */
struct NodeFaultProfile
{
    /** Probability an op is silently dropped (WcStatus::Dropped). */
    double dropProbability = 0.0;

    /** Probability of payload corruption. Writes land with one bit
     *  flipped (Success status); reads are caught by the transport
     *  and surface as Dropped. */
    double corruptProbability = 0.0;

    /** Probability of a tail-latency spike of @ref spikeNs. */
    double spikeProbability = 0.0;
    Tick spikeNs = 200'000;             ///< +200us on the tail

    /** Simulated time a timed-out op holds the issuer hostage. */
    Tick timeoutNs = 1'000'000;

    /** Link flapping: every @ref flapPeriodOps ops on this node the
     *  link goes down for the next @ref flapDownOps ops (Timeout). */
    std::uint64_t flapPeriodOps = 0;
    std::uint64_t flapDownOps = 0;

    /** Transient error bursts: every @ref burstPeriodOps ops, the next
     *  @ref burstLength ops are dropped back to back. */
    std::uint64_t burstPeriodOps = 0;
    std::uint64_t burstLength = 0;

    /** Permanent failure: at op number @ref failAtOp the node dies for
     *  good (the injector marks it down on the fabric). 0 = never. */
    std::uint64_t failAtOp = 0;

    // --- gray (non-fail-stop) failure modes --------------------------

    /** Degraded link / straggler node: constant extra latency added to
     *  every op that completes. The node keeps answering — just
     *  slowly — which is exactly what a binary up/down model misses. */
    Tick degradeDelayNs = 0;

    /** NAK-rate inflation: probability a *write* payload is corrupted
     *  in a way only the end-to-end CRC catches (the CL log NAKs and
     *  retransmits). Reads are untouched, so the mode isolates the
     *  receiver-verify path without perturbing the fetch path. */
    double nakProbability = 0.0;

    /** One-directional partial partition: ops *from* these source
     *  nodes to this node time out, while every other source still
     *  reaches it (and this node's own outbound traffic is governed by
     *  the sources' profiles, not this list). */
    std::vector<NodeId> blockedSources;
};

/** What the injector decided for one work request. */
struct FaultDecision
{
    WcStatus status = WcStatus::Success;
    Tick extraLatencyNs = 0;       ///< added to the op's completion time
    bool corruptPayload = false;   ///< flip a payload bit after landing
    std::size_t corruptOffset = 0; ///< byte to corrupt (< wr.length)
    std::uint8_t corruptMask = 0;  ///< XOR mask for the corrupted byte
};

/** Deterministic per-node fault model plugged into the Fabric. */
class FaultInjector
{
  public:
    /** @param scope Telemetry scope for the injected-fault counters. */
    explicit FaultInjector(std::uint64_t seed = 0xfa17ULL,
                           MetricScope scope = {})
        : seed_(seed), scope_(std::move(scope)),
          drops_(scope_.counter("drops_injected")),
          timeouts_(scope_.counter("timeouts_injected")),
          corrupt_(scope_.counter("corruptions_injected")),
          spikes_(scope_.counter("spikes_injected")),
          degrades_(scope_.counter("degrades_injected")),
          nakSeeds_(scope_.counter("naks_seeded")),
          partitionBlocks_(scope_.counter("partition_blocks"))
    {}

    /** Sentinel source for callers that predate source-aware faults;
     *  it never matches a blockedSources entry. */
    static constexpr NodeId anySource = ~NodeId(0);

    /** Mutable fault profile of @p node (created on first use). */
    NodeFaultProfile &profile(NodeId node) { return profiles_[node]; }

    /** Reset @p node's profile to "no fault" (schedule counters keep
     *  advancing so later windows stay aligned with the op index). */
    void clearProfile(NodeId node) { profiles_.erase(node); }

    /** Called by Fabric::setFaultInjector. */
    void bind(Fabric *fabric) { fabric_ = fabric; }

    /**
     * Decide the fate of one work request from @p source against
     * @p target. Advances the target's op counter (flap/burst/fail
     * schedules key off it).
     */
    FaultDecision decide(NodeId source, NodeId target, RdmaOpcode opcode,
                         std::size_t length);

    /** Back-compat overload for source-oblivious callers: partitions
     *  never match, every other mode behaves identically. */
    FaultDecision
    decide(NodeId target, RdmaOpcode opcode, std::size_t length)
    {
        return decide(anySource, target, opcode, length);
    }

    std::uint64_t opsSeen(NodeId node) const;

    std::uint64_t dropsInjected() const { return drops_.value(); }
    std::uint64_t timeoutsInjected() const { return timeouts_.value(); }
    std::uint64_t corruptionsInjected() const { return corrupt_.value(); }
    std::uint64_t spikesInjected() const { return spikes_.value(); }
    std::uint64_t degradesInjected() const { return degrades_.value(); }
    std::uint64_t naksSeeded() const { return nakSeeds_.value(); }
    std::uint64_t partitionBlocks() const
    {
        return partitionBlocks_.value();
    }

  private:
    /**
     * Per-(source, target) counter-based RNG stream. A single stateful
     * generator shared across pairs would entangle every consumer: the
     * draw one op sees would depend on how ops from *other* compute
     * nodes interleaved globally, which no thread count can replay.
     * With one stream per pair, an op's draws depend only on how many
     * ops that pair issued before it — per-shard state the parallel
     * engine already keeps deterministic (DESIGN.md §16).
     */
    CounterRng &stream(NodeId source, NodeId target);

    std::uint64_t seed_;
    MetricScope scope_;
    Fabric *fabric_ = nullptr;
    std::unordered_map<NodeId, NodeFaultProfile> profiles_;
    std::unordered_map<NodeId, std::uint64_t> opCounts_;
    std::unordered_map<std::uint64_t, CounterRng> streams_;

    Counter &drops_;
    Counter &timeouts_;
    Counter &corrupt_;
    Counter &spikes_;
    Counter &degrades_;
    Counter &nakSeeds_;
    Counter &partitionBlocks_;
};

} // namespace kona

#endif // KONA_NET_FAULT_INJECTOR_H
