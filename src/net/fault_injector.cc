#include "net/fault_injector.h"

#include "net/fabric.h"

namespace kona {

FaultDecision
FaultInjector::decide(NodeId node, RdmaOpcode opcode, std::size_t length)
{
    FaultDecision decision;
    auto it = profiles_.find(node);
    if (it == profiles_.end())
        return decision;
    const NodeFaultProfile &profile = it->second;
    std::uint64_t op = opCounts_[node]++;

    // Scheduled (deterministic) faults first: permanent death, link
    // flap windows, error bursts. They key off the op index so a
    // scenario like "flap node 2 every 500 ops" replays exactly.
    if (profile.failAtOp != 0 && op + 1 >= profile.failAtOp) {
        if (fabric_ != nullptr)
            fabric_->setNodeDown(node, true);
        decision.status = WcStatus::Timeout;
        decision.extraLatencyNs = profile.timeoutNs;
        timeouts_.add();
        return decision;
    }
    if (profile.flapPeriodOps != 0 && profile.flapDownOps != 0 &&
        op % profile.flapPeriodOps < profile.flapDownOps) {
        decision.status = WcStatus::Timeout;
        decision.extraLatencyNs = profile.timeoutNs;
        timeouts_.add();
        return decision;
    }
    if (profile.burstPeriodOps != 0 && profile.burstLength != 0 &&
        op % profile.burstPeriodOps < profile.burstLength) {
        decision.status = WcStatus::Dropped;
        drops_.add();
        return decision;
    }

    // Probabilistic faults, drawn from the injector's own seeded RNG.
    if (profile.dropProbability > 0.0 &&
        rng_.chance(profile.dropProbability)) {
        decision.status = WcStatus::Dropped;
        drops_.add();
        return decision;
    }
    if (profile.corruptProbability > 0.0 && length > 0 &&
        rng_.chance(profile.corruptProbability)) {
        corrupt_.add();
        if (opcode == RdmaOpcode::Read) {
            // The transport's ICRC catches corrupted responses; the
            // issuer sees a drop, never the bad bytes.
            decision.status = WcStatus::Dropped;
            return decision;
        }
        decision.corruptPayload = true;
        decision.corruptOffset =
            static_cast<std::size_t>(rng_.below(length));
        decision.corruptMask =
            static_cast<std::uint8_t>(1u << rng_.below(8));
    }
    if (profile.spikeProbability > 0.0 &&
        rng_.chance(profile.spikeProbability)) {
        decision.extraLatencyNs += profile.spikeNs;
        spikes_.add();
    }
    return decision;
}

std::uint64_t
FaultInjector::opsSeen(NodeId node) const
{
    auto it = opCounts_.find(node);
    return it == opCounts_.end() ? 0 : it->second;
}

} // namespace kona
