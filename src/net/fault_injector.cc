#include "net/fault_injector.h"

#include <algorithm>

#include "net/fabric.h"

namespace kona {

CounterRng &
FaultInjector::stream(NodeId source, NodeId target)
{
    std::uint64_t id = (static_cast<std::uint64_t>(source) << 32) |
                       static_cast<std::uint64_t>(target);
    auto it = streams_.find(id);
    if (it == streams_.end())
        it = streams_.emplace(id, CounterRng(seed_, id)).first;
    return it->second;
}

FaultDecision
FaultInjector::decide(NodeId source, NodeId target, RdmaOpcode opcode,
                      std::size_t length)
{
    FaultDecision decision;
    auto it = profiles_.find(target);
    if (it == profiles_.end())
        return decision;
    const NodeFaultProfile &profile = it->second;
    std::uint64_t op = opCounts_[target]++;

    // Scheduled (deterministic) faults first: permanent death, partial
    // partitions, link flap windows, error bursts. They key off the op
    // index (or the source id) so a scenario like "flap node 2 every
    // 500 ops" replays exactly.
    if (profile.failAtOp != 0 && op + 1 >= profile.failAtOp) {
        if (fabric_ != nullptr)
            fabric_->setNodeDown(target, true);
        decision.status = WcStatus::Timeout;
        decision.extraLatencyNs = profile.timeoutNs;
        timeouts_.add();
        return decision;
    }
    if (!profile.blockedSources.empty() &&
        std::find(profile.blockedSources.begin(),
                  profile.blockedSources.end(),
                  source) != profile.blockedSources.end()) {
        // One-directional partition: this source cannot reach the
        // target, but the target is otherwise alive and reachable.
        decision.status = WcStatus::Timeout;
        decision.extraLatencyNs = profile.timeoutNs;
        partitionBlocks_.add();
        timeouts_.add();
        return decision;
    }
    if (profile.flapPeriodOps != 0 && profile.flapDownOps != 0 &&
        op % profile.flapPeriodOps < profile.flapDownOps) {
        decision.status = WcStatus::Timeout;
        decision.extraLatencyNs = profile.timeoutNs;
        timeouts_.add();
        return decision;
    }
    if (profile.burstPeriodOps != 0 && profile.burstLength != 0 &&
        op % profile.burstPeriodOps < profile.burstLength) {
        decision.status = WcStatus::Dropped;
        drops_.add();
        return decision;
    }

    // Probabilistic faults, drawn from the (source, target) pair's own
    // counter-based stream: the draws an op sees depend only on how
    // many ops this pair issued before it, never on how other pairs'
    // traffic interleaved globally.
    CounterRng &rng = stream(source, target);
    if (profile.dropProbability > 0.0 &&
        rng.chance(profile.dropProbability)) {
        decision.status = WcStatus::Dropped;
        drops_.add();
        return decision;
    }
    if (profile.corruptProbability > 0.0 && length > 0 &&
        rng.chance(profile.corruptProbability)) {
        corrupt_.add();
        if (opcode != RdmaOpcode::Write) {
            // The transport's ICRC catches corrupted responses and
            // corrupted coherence control messages (Inval carries no
            // CL-log CRC of its own); the issuer sees a drop, never
            // the bad bytes.
            decision.status = WcStatus::Dropped;
            return decision;
        }
        decision.corruptPayload = true;
        decision.corruptOffset =
            static_cast<std::size_t>(rng.below(length));
        decision.corruptMask =
            static_cast<std::uint8_t>(1u << rng.below(8));
    }
    if (profile.nakProbability > 0.0 && length > 0 &&
        opcode == RdmaOpcode::Write && !decision.corruptPayload &&
        rng.chance(profile.nakProbability)) {
        // NAK inflation: end-host corruption on writes only, caught by
        // the CL log's CRC at the receiver, never by the transport.
        decision.corruptPayload = true;
        decision.corruptOffset =
            static_cast<std::size_t>(rng.below(length));
        decision.corruptMask =
            static_cast<std::uint8_t>(1u << rng.below(8));
        nakSeeds_.add();
    }
    if (profile.spikeProbability > 0.0 &&
        rng.chance(profile.spikeProbability)) {
        decision.extraLatencyNs += profile.spikeNs;
        spikes_.add();
    }
    if (profile.degradeDelayNs != 0) {
        // Straggler: the op completes, just late, every time.
        decision.extraLatencyNs += profile.degradeDelayNs;
        degrades_.add();
    }
    return decision;
}

std::uint64_t
FaultInjector::opsSeen(NodeId node) const
{
    auto it = opCounts_.find(node);
    return it == opCounts_.end() ? 0 : it->second;
}

} // namespace kona
