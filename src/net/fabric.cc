#include "net/fabric.h"

#include "net/fault_injector.h"

namespace kona {

void
Fabric::attachNode(NodeId node, BackingStore *store)
{
    KONA_ASSERT(store != nullptr, "null backing store");
    KONA_ASSERT(stores_.count(node) == 0, "node ", node,
                " already attached");
    stores_[node] = store;
}

BackingStore &
Fabric::nodeStore(NodeId node)
{
    auto it = stores_.find(node);
    KONA_ASSERT(it != stores_.end(), "unknown node ", node);
    return *it->second;
}

MemoryRegion
Fabric::registerRegion(NodeId node, Addr base, std::size_t length)
{
    KONA_ASSERT(stores_.count(node) != 0, "unknown node ", node);
    KONA_ASSERT(length > 0, "empty region");
    MemoryRegion mr;
    mr.key = nextKey_++;
    mr.node = node;
    mr.base = base;
    mr.length = length;
    regions_[mr.key] = mr;
    return mr;
}

void
Fabric::deregisterRegion(std::uint32_t key)
{
    // Deregistering an unknown key is a caller bug during teardown, but
    // not worth dying for — failover paths may legitimately race a
    // region's owner going away. Complain loudly and carry on.
    if (regions_.erase(key) != 1)
        warn("deregisterRegion: unknown region key ", key, " (no-op)");
}

const MemoryRegion &
Fabric::region(std::uint32_t key) const
{
    auto it = regions_.find(key);
    if (it == regions_.end())
        fatal("work request references unregistered region key ", key);
    return it->second;
}

void
Fabric::setNodeDelay(NodeId node, Tick extraNs)
{
    delays_[node] = extraNs;
}

void
Fabric::setNodeDown(NodeId node, bool down)
{
    down_[node] = down;
}

Tick
Fabric::nodeDelay(NodeId node) const
{
    auto it = delays_.find(node);
    return it == delays_.end() ? 0 : it->second;
}

bool
Fabric::nodeDown(NodeId node) const
{
    auto it = down_.find(node);
    return it != down_.end() && it->second;
}

void
Fabric::setFaultInjector(FaultInjector *injector)
{
    injector_ = injector;
    if (injector != nullptr)
        injector->bind(this);
}

} // namespace kona
