/**
 * @file
 * ShardGate: the conservative-lookahead synchronizer of the parallel
 * simulation engine (DESIGN.md §16 "Parallel simulation").
 *
 * The rack is partitioned into shards — one per compute node (its
 * KonaRuntime, FPGA, caches, prefetcher, tiering engine) — plus the
 * passive shared-state shard (Controller, DirectoryService, memory-node
 * backing stores, FaultInjector) that only ever executes inside gated
 * sections. Shard threads simulate freely over shard-private state and
 * enter the gate for every cross-shard interaction: remote fetches,
 * eviction shipments, directory/coherence operations, slab allocation,
 * failure recovery. The gate grants sections one at a time, in the
 * canonical order of their EventKeys (timestamp, shard id, sequence
 * number), so the sequence of shared-state mutations is bit-identical
 * no matter how many OS threads execute the shards.
 *
 * The grant rule is conservative lookahead: a section with key K runs
 * only when every other shard's published lower bound exceeds K. A
 * shard's lower bound is its own key while it waits or executes, +inf
 * once finished, and otherwise the monotone stamp bound it publishes
 * as its clocks advance (clock mode) or the promised stamp of its next
 * scripted section (scripted mode, used by the litmus replayer). Bound
 * publications are lock-free stores; wakeups are throttled to the
 * lookahead horizon derived from the minimum fabric wire latency —
 * finer-grained bounds could not unblock a waiter any earlier than one
 * wire traversal anyway.
 *
 * Sections are re-entrant per THREAD, not per shard: the grant rule
 * admits at most one executing section at a time, so any section the
 * section-holding thread opens — a governed miss nesting a fetch, or a
 * cross-shard call like a directory invalidation flushing the PEER's
 * dirty line through the peer's eviction handler — is a depth bump on
 * the executing section, serialized under its key. A nested enter from
 * the owning thread must never wait (it would deadlock against
 * itself). Worker concurrency is throttled by a run-token semaphore —
 * `--threads=N` admits N shards at a time over any number of shards,
 * and N=1 is the sequential reference schedule the bit-identity tests
 * compare against. Nothing in enter/leave/publish allocates, keeping
 * the PR 5 zero-steady-state-allocation property intact.
 */

#ifndef KONA_NET_SHARD_GATE_H
#define KONA_NET_SHARD_GATE_H

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "common/shard_clock.h"
#include "net/spsc_ring.h"

namespace kona {

class SimClock;

/** What a gated section did, for the canonical event log. */
enum class GateEvent : std::uint8_t
{
    Fetch,      ///< remote page fetch (demand/prefetch/tier)
    Evict,      ///< eviction submit/poll/drain/pump/flush
    Coherence,  ///< directory acquire/release/invalidate
    Control,    ///< slab allocation, health sweep, recovery
    Scripted,   ///< externally scheduled op (litmus replay)
};

/** One executed cross-shard event in the canonical log. */
struct GateRecord
{
    EventKey key;
    GateEvent kind = GateEvent::Fetch;
};

/** Epoch/barrier synchronizer over a fixed set of shards. */
class ShardGate
{
  public:
    /**
     * @param shards      Shard count (compute nodes / programs).
     * @param concurrency Run tokens: shards allowed to execute
     *                    simultaneously (clamped to [1, shards]).
     * @param horizon     Lookahead horizon in sim-ns (wakeup throttle;
     *                    use conservativeHorizon(fabric.latency())).
     * @param ringCapacity Canonical-log ring slots per shard.
     */
    ShardGate(std::size_t shards, unsigned concurrency, Tick horizon,
              std::size_t ringCapacity = 1 << 15);

    std::size_t shardCount() const { return shards_.size(); }
    unsigned concurrency() const { return concurrency_; }
    Tick horizon() const { return horizon_; }

    /**
     * Put @p shard in scripted mode: its sections carry externally
     * assigned stamps and each leave() promises the next section's
     * stamp, replacing clock-driven bound publication. @p firstStamp
     * is the stamp of its first section (shardDoneStamp when none).
     */
    void setScripted(std::uint32_t shard, Tick firstStamp);

    /** Shard thread lifecycle: acquire a run token before simulating. */
    void beginShard(std::uint32_t shard);

    /** Shard finished: bound becomes +inf, token is released. */
    void endShard(std::uint32_t shard);

    /**
     * Publish @p shard's monotone stamp lower bound (clock mode). Call
     * once per application access with max(app, background) time; the
     * store is lock-free and wakeups are horizon-throttled.
     */
    void
    publishBound(std::uint32_t shard, Tick stamp)
    {
        std::atomic<Tick> &bound = bounds_[shard];
        if (stamp <= bound.load(std::memory_order_relaxed))
            return;
        bound.store(stamp, std::memory_order_release);
        if (waiters_.load(std::memory_order_acquire) == 0)
            return;
        if (stamp - lastNotify_[shard] < horizon_)
            return;
        lastNotify_[shard] = stamp;
        std::lock_guard<std::mutex> lock(mu_);
        cv_.notify_all();
    }

    /**
     * Open a cross-shard section stamped @p stamp (clamped to the
     * shard's monotone stamp sequence), blocking until the section's
     * key is globally minimal. Re-entrant: an enter from the thread
     * that already holds the executing section — same shard or a
     * cross-shard call made on its behalf — is a depth bump. The run
     * token is released while blocked.
     */
    void enter(std::uint32_t shard, Tick stamp, GateEvent kind);

    /**
     * Close the current section. Scripted shards must pass the stamp
     * of their next section via @p nextStamp (shardDoneStamp when no
     * more follow); clock shards ignore it.
     */
    void leave(std::uint32_t shard, Tick nextStamp = 0);

    /** Sections executed (outermost enters granted). */
    std::uint64_t eventsExecuted() const
    {
        return events_.load(std::memory_order_relaxed);
    }

    /**
     * Drain every shard's event ring and return the canonical log,
     * sorted by key. Call from the driver after shards quiesce.
     */
    std::vector<GateRecord> drainRecords();

    /** Canonical-log records lost to full rings. */
    std::uint64_t recordsDropped() const;

  private:
    struct Shard
    {
        bool scripted = false;
        bool finished = false;
        bool waiting = false;
        bool executing = false;
        EventKey key;
        GateEvent kind = GateEvent::Fetch;
        Tick nextStamp = 0;       ///< scripted: promised next stamp
        ShardClock clock;
        std::unique_ptr<SpscRing<GateRecord>> ring;
    };

    /** Lower bound on @p s's next (or current) section key. */
    EventKey lowerBoundLocked(const Shard &s, std::size_t i) const;

    /** Whether @p me's key is the global minimum. */
    bool isMinimalLocked(std::size_t me) const;

    void acquireTokenLocked(std::unique_lock<std::mutex> &lock);
    void releaseTokenLocked();

    mutable std::mutex mu_;
    std::condition_variable cv_;       ///< grant / bound advancement
    std::condition_variable tokenCv_;  ///< run-token availability

    std::vector<Shard> shards_;
    /** Clock-mode published bounds (single writer: the shard). */
    std::unique_ptr<std::atomic<Tick>[]> bounds_;
    /** Last bound that triggered a wakeup (own-thread only). */
    std::vector<Tick> lastNotify_;

    std::atomic<int> waiters_{0};
    std::atomic<std::uint64_t> events_{0};
    unsigned concurrency_;
    unsigned tokens_;
    Tick horizon_;

    /** The one executing section (sections fully serialize): which
     *  shard opened it, the thread that owns it, and its nest depth. */
    std::uint32_t ownerShard_ = 0;
    std::thread::id ownerThread_;
    int depth_ = 0;
};

/**
 * RAII section over an optional gate: components hold a bound
 * GateEndpoint and open sections only when a parallel driver attached
 * one — the sequential engine keeps its zero-overhead path (one
 * predicted branch per potential section).
 */
class GateEndpoint
{
  public:
    GateEndpoint() = default;

    /** Attach to @p gate as @p shard, stamping sections with the max
     *  of the two clocks (pass the same pair for every endpoint of a
     *  shard so its stamp sequence is monotone). Null gate detaches. */
    void
    bind(ShardGate *gate, std::uint32_t shard, const SimClock *appClock,
         const SimClock *backgroundClock)
    {
        gate_ = gate;
        shard_ = shard;
        app_ = appClock;
        background_ = backgroundClock;
    }

    bool active() const { return gate_ != nullptr; }
    ShardGate *gate() const { return gate_; }
    std::uint32_t shard() const { return shard_; }

    Tick stamp() const;

    /** Publish the shard's current bound (call between sections). */
    void
    publish() const
    {
        if (gate_ != nullptr)
            gate_->publishBound(shard_, stamp());
    }

  private:
    ShardGate *gate_ = nullptr;
    std::uint32_t shard_ = 0;
    const SimClock *app_ = nullptr;
    const SimClock *background_ = nullptr;
};

/** Scoped gated section; no-op when the endpoint is detached. */
class ShardSection
{
  public:
    ShardSection(const GateEndpoint &ep, GateEvent kind)
        : gate_(ep.gate()), shard_(ep.shard())
    {
        if (gate_ != nullptr)
            gate_->enter(shard_, ep.stamp(), kind);
    }

    ShardSection(const ShardSection &) = delete;
    ShardSection &operator=(const ShardSection &) = delete;

    ~ShardSection()
    {
        if (gate_ != nullptr)
            gate_->leave(shard_);
    }

  private:
    ShardGate *gate_;
    std::uint32_t shard_;
};

} // namespace kona

#endif // KONA_NET_SHARD_GATE_H
