#include "net/queue_pair.h"

#include "common/logging.h"
#include "net/fault_injector.h"

namespace kona {

WorkCompletion
CompletionQueue::pop()
{
    KONA_ASSERT(!entries_.empty(), "pop from empty CQ");
    WorkCompletion wc = entries_.front();
    entries_.pop_front();
    return wc;
}

QueuePair::QueuePair(Fabric &fabric, NodeId localNode, NodeId remoteNode,
                     CompletionQueue &cq, MetricScope scope)
    : fabric_(fabric), localNode_(localNode), remoteNode_(remoteNode),
      cq_(cq), scope_(std::move(scope)),
      postedOps_(scope_.counter("posted_ops")),
      postedBytes_(scope_.counter("posted_bytes"))
{
    KONA_ASSERT(fabric.hasNode(remoteNode), "QP to unknown node ",
                remoteNode);
}

double
QueuePair::executeOne(const WorkRequest &wr, bool linked)
{
    KONA_ASSERT(wr.localBuf != nullptr || wr.length == 0,
                "work request without a local buffer");
    const MemoryRegion &mr = fabric_.region(wr.remoteKey);
    KONA_ASSERT(mr.node == remoteNode_,
                "region key belongs to a different node");
    if (!mr.covers(wr.remoteAddr, wr.length))
        fatal("RDMA access outside registered region: addr ",
              wr.remoteAddr, " len ", wr.length);

    BackingStore &remote = fabric_.nodeStore(remoteNode_);
    if (wr.opcode == RdmaOpcode::Read) {
        remote.read(wr.remoteAddr, wr.localBuf, wr.length);
    } else {
        // Write and Inval both land payload bytes remotely; Inval's
        // payload is a coherence control message in the mailbox region.
        remote.write(wr.remoteAddr, wr.localBuf, wr.length);
    }
    fabric_.accountTransfer(wr.length);
    postedOps_.add();
    postedBytes_.add(wr.length);

    const LatencyConfig &lat = fabric_.latency();
    double base = linked ? lat.rdmaLinkedOpNs : lat.rdmaBaseNs;
    if (wr.inlineData && wr.opcode != RdmaOpcode::Read &&
        wr.length <= lat.rdmaInlineThreshold) {
        // Inline payloads skip the DMA fetch of the local buffer but
        // still cross the wire; the paper found this unhelpful at 64B+
        // sizes, which the model reflects via a small constant saving.
        base = std::max(0.0, base - 100.0);
    }
    double wire = static_cast<double>(wr.length) *
                  lat.rdmaPipelinedPerKbNs / 1024.0;
    return base + wire + static_cast<double>(
        fabric_.nodeDelay(remoteNode_));
}

void
QueuePair::applyCorruption(const WorkRequest &wr, const FaultDecision &fd)
{
    // End-host DMA corruption: the write completed "successfully" but
    // one payload bit flipped on its way into remote memory. Only an
    // end-to-end check (the CL log's CRC) can see this.
    KONA_ASSERT(fd.corruptOffset < wr.length, "corrupt offset past end");
    BackingStore &remote = fabric_.nodeStore(remoteNode_);
    std::uint8_t byte = 0;
    Addr target = wr.remoteAddr + fd.corruptOffset;
    remote.read(target, &byte, 1);
    byte ^= fd.corruptMask;
    remote.write(target, &byte, 1);
}

PostResult
QueuePair::post(const WorkRequest &wr, SimClock &clock)
{
    if (fabric_.nodeDown(remoteNode_)) {
        cq_.push({wr.wrId, WcStatus::RemoteUnreachable, clock.now()});
        return {WcStatus::RemoteUnreachable, 1};
    }
    FaultDecision fd;
    if (FaultInjector *fi = fabric_.faultInjector())
        fd = fi->decide(localNode_, remoteNode_, wr.opcode, wr.length);
    if (fd.status != WcStatus::Success) {
        // Dropped/timed-out ops never touch remote memory; the issuer
        // eats the injected delay (e.g. a retransmission timer).
        cq_.push({wr.wrId, fd.status, clock.now() + fd.extraLatencyNs});
        return {fd.status, 1};
    }
    double cost = executeOne(wr, /*linked=*/false);
    if (fd.corruptPayload)
        applyCorruption(wr, fd);
    Tick done = clock.now() + static_cast<Tick>(cost) + fd.extraLatencyNs;
    if (wr.signaled)
        cq_.push({wr.wrId, WcStatus::Success, done});
    return {WcStatus::Success, wr.signaled ? std::size_t(1) : 0};
}

PostResult
QueuePair::postLinked(std::span<const WorkRequest> wrs, SimClock &clock)
{
    if (wrs.empty())
        return {WcStatus::Success, 0};
    if (fabric_.nodeDown(remoteNode_)) {
        cq_.push({wrs.back().wrId, WcStatus::RemoteUnreachable,
                  clock.now()});
        return {WcStatus::RemoteUnreachable, 1};
    }
    // The first WR of a chain pays the full doorbell; subsequent linked
    // WRs pay only the marginal cost. Ops within a chain pipeline, so
    // completion time accumulates their costs serially on the wire.
    FaultInjector *fi = fabric_.faultInjector();
    double total = 0.0;
    Tick extra = 0;
    bool first = true;
    for (const WorkRequest &wr : wrs) {
        FaultDecision fd;
        if (fi != nullptr)
            fd = fi->decide(localNode_, remoteNode_, wr.opcode,
                            wr.length);
        extra += fd.extraLatencyNs;
        if (fd.status != WcStatus::Success) {
            // Mid-chain failure: earlier WRs of the chain have already
            // landed; this WR and everything linked after it never
            // execute. The error CQE carries the failing WR's id so the
            // issuer can tell where the chain broke.
            cq_.push({wr.wrId, fd.status,
                      clock.now() + static_cast<Tick>(total) + extra});
            return {fd.status, 1};
        }
        total += executeOne(wr, /*linked=*/!first);
        if (fd.corruptPayload)
            applyCorruption(wr, fd);
        first = false;
    }
    Tick done = clock.now() + static_cast<Tick>(total) + extra;
    std::size_t pushed = 0;
    for (const WorkRequest &wr : wrs) {
        if (wr.signaled) {
            cq_.push({wr.wrId, WcStatus::Success, done});
            ++pushed;
        }
    }
    return {WcStatus::Success, pushed};
}

WorkCompletion
Poller::waitOne(CompletionQueue &cq, SimClock &clock)
{
    KONA_ASSERT(!cq.empty(),
                "waitOne on an empty CQ: nothing in flight");
    WorkCompletion wc = cq.pop();
    complete(wc, clock);
    return wc;
}

void
Poller::complete(const WorkCompletion &wc, SimClock &clock)
{
    clock.advanceTo(wc.completeAt);
    clock.advance(static_cast<Tick>(latency_.rdmaCompletionNs));
}

std::vector<WorkCompletion>
Poller::drain(CompletionQueue &cq, SimClock &clock, std::size_t max)
{
    std::vector<WorkCompletion> out;
    while (!cq.empty() && out.size() < max)
        out.push_back(waitOne(cq, clock));
    return out;
}

} // namespace kona
