/**
 * @file
 * SpscRing: a fixed-capacity, lock-free single-producer single-consumer
 * ring. The parallel simulation engine gives every shard one ring into
 * the driver: the shard thread appends a record for each cross-shard
 * event it executes (producer), and the driver merges the per-shard
 * streams into the canonical event log (consumer). Capacity is fixed at
 * construction so the steady state never allocates — the same rule the
 * PR 5 hot path enforces with --strict-alloc.
 */

#ifndef KONA_NET_SPSC_RING_H
#define KONA_NET_SPSC_RING_H

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/logging.h"

namespace kona {

/** Lock-free SPSC ring over @p T. One producer thread, one consumer. */
template <typename T>
class SpscRing
{
  public:
    explicit SpscRing(std::size_t capacity = 1024)
        : slots_(capacity + 1)
    {
        KONA_ASSERT(capacity > 0, "SpscRing needs capacity");
    }

    /** Producer side. @return false (and count the drop) when full. */
    bool
    push(const T &value)
    {
        std::size_t head = head_.load(std::memory_order_relaxed);
        std::size_t next = advance(head);
        if (next == tail_.load(std::memory_order_acquire)) {
            dropped_.fetch_add(1, std::memory_order_relaxed);
            return false;
        }
        slots_[head] = value;
        head_.store(next, std::memory_order_release);
        return true;
    }

    /** Consumer side. @return false when the ring is empty. */
    bool
    pop(T &out)
    {
        std::size_t tail = tail_.load(std::memory_order_relaxed);
        if (tail == head_.load(std::memory_order_acquire))
            return false;
        out = slots_[tail];
        tail_.store(advance(tail), std::memory_order_release);
        return true;
    }

    /** Records the producer failed to push (ring full). */
    std::uint64_t
    dropped() const
    {
        return dropped_.load(std::memory_order_relaxed);
    }

    std::size_t capacity() const { return slots_.size() - 1; }

  private:
    std::size_t
    advance(std::size_t i) const
    {
        return i + 1 == slots_.size() ? 0 : i + 1;
    }

    std::vector<T> slots_;
    std::atomic<std::size_t> head_{0};
    std::atomic<std::size_t> tail_{0};
    std::atomic<std::uint64_t> dropped_{0};
};

} // namespace kona

#endif // KONA_NET_SPSC_RING_H
