/**
 * @file
 * RetryPolicy: the one retry discipline shared by every remote-memory
 * path — the FPGA fetch path (KonaRuntime), the VM baselines'
 * fault/writeback paths, and the EvictionHandler's log shipping.
 *
 * Before this existed each path hand-rolled its own loop (fixed
 * backoff, ad-hoc attempt caps, or an immediate fatal). The shared
 * policy is exponential backoff with additive jitter and a total
 * simulated-time deadline: backoff never undershoots the configured
 * base (so tests can lower-bound charged time), jitter decorrelates
 * retry storms, and the deadline bounds how long an outage can hold
 * the application hostage before escalating.
 */

#ifndef KONA_NET_RETRY_POLICY_H
#define KONA_NET_RETRY_POLICY_H

#include <cstdint>

#include "common/rng.h"
#include "common/sim_clock.h"
#include "common/types.h"
#include "telemetry/metric_registry.h"

namespace kona {

/** Tunable retry discipline (per subsystem, usually per config). */
struct RetryPolicy
{
    Tick initialBackoffNs = 20'000;    ///< first backoff (20us)
    double backoffMultiplier = 2.0;    ///< exponential growth factor
    Tick maxBackoffNs = 2'000'000;     ///< backoff ceiling (2ms)
    /** Additive jitter: each backoff is scaled by a uniform factor in
     *  [1, 1 + jitterFraction], never below the deterministic base. */
    double jitterFraction = 0.2;
    std::size_t maxAttempts = 16;      ///< retry budget (0 = none)
    /** Total backoff budget in simulated ns; 0 disables the deadline. */
    Tick deadlineNs = 0;
};

/** Progress of one retried operation under a policy. */
class RetryState
{
  public:
    RetryState(const RetryPolicy &policy, std::uint64_t seed)
        : policy_(policy), rng_(seed), nextBackoffNs_(
              policy.initialBackoffNs)
    {}

    /** Whether the policy allows another retry. */
    bool
    shouldRetry() const
    {
        if (attempts_ >= policy_.maxAttempts)
            return false;
        if (policy_.deadlineNs != 0 && spentNs_ >= policy_.deadlineNs)
            return false;
        return true;
    }

    /**
     * Attach telemetry sinks; every backoff() bumps @p retries and
     * records the charged wait in @p backoffNs. Either may be null.
     */
    void
    bindTelemetry(Counter *retries, LatencyHistogram *backoffNs)
    {
        retriesCounter_ = retries;
        backoffHist_ = backoffNs;
    }

    /** Charge the next backoff to @p clock and advance the schedule.
     *  @return The backoff charged, in ns. */
    Tick backoff(SimClock &clock);

    std::size_t attempts() const { return attempts_; }
    Tick spentNs() const { return spentNs_; }

  private:
    const RetryPolicy &policy_;
    Rng rng_;
    Tick nextBackoffNs_;
    std::size_t attempts_ = 0;
    Tick spentNs_ = 0;
    Counter *retriesCounter_ = nullptr;
    LatencyHistogram *backoffHist_ = nullptr;
};

} // namespace kona

#endif // KONA_NET_RETRY_POLICY_H
