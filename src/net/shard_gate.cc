#include "net/shard_gate.h"

#include <algorithm>
#include <chrono>

#include "common/logging.h"
#include "common/sim_clock.h"

namespace kona {

ShardGate::ShardGate(std::size_t shards, unsigned concurrency,
                     Tick horizon, std::size_t ringCapacity)
    : shards_(shards),
      bounds_(std::make_unique<std::atomic<Tick>[]>(shards)),
      lastNotify_(shards, 0),
      concurrency_(std::clamp<unsigned>(
          concurrency, 1u, static_cast<unsigned>(shards))),
      tokens_(concurrency_), horizon_(horizon > 0 ? horizon : 1)
{
    KONA_ASSERT(shards > 0, "gate over zero shards");
    for (std::size_t i = 0; i < shards; ++i) {
        bounds_[i].store(0, std::memory_order_relaxed);
        shards_[i].ring =
            std::make_unique<SpscRing<GateRecord>>(ringCapacity);
    }
}

Tick
GateEndpoint::stamp() const
{
    Tick t = app_ != nullptr ? app_->now() : 0;
    if (background_ != nullptr && background_->now() > t)
        t = background_->now();
    return t;
}

void
ShardGate::setScripted(std::uint32_t shard, Tick firstStamp)
{
    std::lock_guard<std::mutex> lock(mu_);
    Shard &s = shards_.at(shard);
    s.scripted = true;
    s.nextStamp = firstStamp;
    cv_.notify_all();
}

void
ShardGate::beginShard(std::uint32_t shard)
{
    std::unique_lock<std::mutex> lock(mu_);
    KONA_ASSERT(!shards_.at(shard).finished, "shard restarted");
    acquireTokenLocked(lock);
}

void
ShardGate::endShard(std::uint32_t shard)
{
    std::lock_guard<std::mutex> lock(mu_);
    Shard &s = shards_.at(shard);
    KONA_ASSERT(!s.executing, "shard finished inside a section");
    s.finished = true;
    bounds_[shard].store(shardDoneStamp, std::memory_order_release);
    releaseTokenLocked();
    cv_.notify_all();
}

EventKey
ShardGate::lowerBoundLocked(const Shard &s, std::size_t i) const
{
    if (s.finished)
        return {shardDoneStamp, static_cast<std::uint32_t>(i), 0};
    if (s.waiting || s.executing)
        return s.key;
    Tick bound;
    if (s.scripted) {
        bound = s.nextStamp;
    } else {
        bound = std::max(s.clock.last(),
                         bounds_[i].load(std::memory_order_acquire));
    }
    return {bound, static_cast<std::uint32_t>(i),
            s.clock.seqWatermark()};
}

bool
ShardGate::isMinimalLocked(std::size_t me) const
{
    const EventKey &key = shards_[me].key;
    for (std::size_t i = 0; i < shards_.size(); ++i) {
        if (i == me)
            continue;
        if (lowerBoundLocked(shards_[i], i) < key)
            return false;
    }
    return true;
}

void
ShardGate::acquireTokenLocked(std::unique_lock<std::mutex> &lock)
{
    while (tokens_ == 0)
        tokenCv_.wait(lock);
    --tokens_;
}

void
ShardGate::releaseTokenLocked()
{
    ++tokens_;
    tokenCv_.notify_one();
}

void
ShardGate::enter(std::uint32_t shard, Tick stamp, GateEvent kind)
{
    std::unique_lock<std::mutex> lock(mu_);
    if (depth_ > 0 && ownerThread_ == std::this_thread::get_id()) {
        // Nested section opened by the executing section's own thread
        // — same shard, or a cross-shard call made on its behalf (a
        // directory invalidation flushing the peer's dirty line
        // through the peer's eviction handler). Already serialized
        // under the outer key; waiting here would self-deadlock.
        ++depth_;
        return;
    }
    Shard &s = shards_.at(shard);
    if (s.scripted) {
        KONA_ASSERT(stamp >= s.nextStamp,
                    "scripted section stamp ", stamp,
                    " below the promised bound ", s.nextStamp);
    }
    s.key = {s.clock.clamp(stamp), shard, s.clock.nextSeq()};
    s.kind = kind;
    s.waiting = true;
    waiters_.fetch_add(1, std::memory_order_acq_rel);
    // Free the run token so a blocked shard never starves the shard
    // whose event is globally next.
    releaseTokenLocked();
    while (!isMinimalLocked(shard)) {
        // The horizon-throttled publish path can defer a wakeup by one
        // horizon of sim time; the timed wait is a safety net, not the
        // signalling mechanism.
        cv_.wait_for(lock, std::chrono::milliseconds(2));
    }
    acquireTokenLocked(lock);
    waiters_.fetch_sub(1, std::memory_order_acq_rel);
    s.waiting = false;
    s.executing = true;
    ownerShard_ = shard;
    ownerThread_ = std::this_thread::get_id();
    depth_ = 1;
    events_.fetch_add(1, std::memory_order_relaxed);
}

void
ShardGate::leave(std::uint32_t shard, Tick nextStamp)
{
    std::lock_guard<std::mutex> lock(mu_);
    KONA_ASSERT(depth_ > 0, "leave() outside a section");
    KONA_ASSERT(ownerThread_ == std::this_thread::get_id(),
                "leave() from a thread that does not own the section");
    if (--depth_ > 0)
        return;
    // The outermost leave comes from the section's opener.
    KONA_ASSERT(shard == ownerShard_,
                "outermost leave() for shard ", shard,
                " but the section belongs to shard ", ownerShard_);
    Shard &s = shards_[ownerShard_];
    s.executing = false;
    s.ring->push({s.key, s.kind});
    if (s.scripted) {
        s.nextStamp = std::max(nextStamp, s.key.stamp);
    } else {
        // The section's stamp is a sound bound on the shard's future
        // events; fresher clock-driven bounds follow via publish().
        std::atomic<Tick> &bound = bounds_[ownerShard_];
        if (s.clock.last() > bound.load(std::memory_order_relaxed))
            bound.store(s.clock.last(), std::memory_order_release);
    }
    cv_.notify_all();
}

std::vector<GateRecord>
ShardGate::drainRecords()
{
    std::vector<GateRecord> all;
    for (Shard &s : shards_) {
        GateRecord r;
        while (s.ring->pop(r))
            all.push_back(r);
    }
    std::sort(all.begin(), all.end(),
              [](const GateRecord &a, const GateRecord &b) {
                  return a.key < b.key;
              });
    return all;
}

std::uint64_t
ShardGate::recordsDropped() const
{
    std::uint64_t n = 0;
    for (const Shard &s : shards_)
        n += s.ring->dropped();
    return n;
}

} // namespace kona
