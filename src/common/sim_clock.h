/**
 * @file
 * SimClock: the simulated time base.
 *
 * The reproduction does not run a full discrete-event engine; like the
 * paper's own KCacheSim, it uses cost accounting. Every component charges
 * the latency of the operations it models to a SimClock. Logical threads
 * (Fig 7) each own a clock; a run's completion time is the max across
 * thread clocks plus any serialized background work.
 */

#ifndef KONA_COMMON_SIM_CLOCK_H
#define KONA_COMMON_SIM_CLOCK_H

#include <algorithm>

#include "common/types.h"

namespace kona {

/** Accumulates simulated nanoseconds. */
class SimClock
{
  public:
    SimClock() = default;

    /** Current simulated time in ns. */
    Tick now() const { return now_; }

    /** Charge @p ns of simulated latency. */
    void advance(Tick ns) { now_ += ns; }

    /** Jump forward to @p t if @p t is in the future (sync points). */
    void advanceTo(Tick t) { now_ = std::max(now_, t); }

    /** Reset to time zero. */
    void reset() { now_ = 0; }

  private:
    Tick now_ = 0;
};

} // namespace kona

#endif // KONA_COMMON_SIM_CLOCK_H
