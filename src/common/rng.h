/**
 * @file
 * Deterministic pseudo-random number generation.
 *
 * All randomness in the reproduction flows through Rng so that every
 * experiment is reproducible from a seed. The generator is xoshiro256**,
 * seeded through splitmix64 as its authors recommend.
 */

#ifndef KONA_COMMON_RNG_H
#define KONA_COMMON_RNG_H

#include <cstdint>

#include "common/logging.h"

namespace kona {

/** Deterministic 64-bit PRNG (xoshiro256**). */
class Rng
{
  public:
    explicit Rng(std::uint64_t seed = 0x4b6f6e6121ULL)
    {
        // splitmix64 expansion of the seed into the four-word state.
        std::uint64_t x = seed;
        for (auto &word : state_) {
            x += 0x9e3779b97f4a7c15ULL;
            std::uint64_t z = x;
            z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
            z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
            word = z ^ (z >> 31);
        }
    }

    /** Next raw 64-bit value. */
    std::uint64_t
    next()
    {
        std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
        std::uint64_t t = state_[1] << 17;
        state_[2] ^= state_[0];
        state_[3] ^= state_[1];
        state_[1] ^= state_[2];
        state_[0] ^= state_[3];
        state_[2] ^= t;
        state_[3] = rotl(state_[3], 45);
        return result;
    }

    /** Uniform integer in [0, bound). @p bound must be nonzero. */
    std::uint64_t
    below(std::uint64_t bound)
    {
        KONA_ASSERT(bound != 0, "Rng::below(0)");
        // Lemire's nearly-divisionless bounded generation.
        std::uint64_t x = next();
        __uint128_t m = static_cast<__uint128_t>(x) * bound;
        auto lo = static_cast<std::uint64_t>(m);
        if (lo < bound) {
            std::uint64_t threshold = -bound % bound;
            while (lo < threshold) {
                x = next();
                m = static_cast<__uint128_t>(x) * bound;
                lo = static_cast<std::uint64_t>(m);
            }
        }
        return static_cast<std::uint64_t>(m >> 64);
    }

    /** Uniform integer in [lo, hi] inclusive. */
    std::uint64_t
    range(std::uint64_t lo, std::uint64_t hi)
    {
        KONA_ASSERT(lo <= hi, "Rng::range empty");
        return lo + below(hi - lo + 1);
    }

    /** Uniform double in [0, 1). */
    double
    uniform()
    {
        return static_cast<double>(next() >> 11) * 0x1.0p-53;
    }

    /** Bernoulli trial with probability @p p of true. */
    bool chance(double p) { return uniform() < p; }

  private:
    static std::uint64_t
    rotl(std::uint64_t x, int k)
    {
        return (x << k) | (x >> (64 - k));
    }

    std::uint64_t state_[4];
};

/**
 * Counter-based PRNG: output i of stream s under seed k is the pure
 * function mix(k, s, i). Unlike a stateful generator shared between
 * components, two CounterRng streams can never perturb each other —
 * stream s sees the same sequence no matter how its draws interleave
 * with draws from other streams, which is the property the parallel
 * simulation engine needs so thread count cannot change any random
 * sequence (DESIGN.md "Parallel simulation"). The mixer is the
 * splitmix64 finalizer over a Weyl-sequenced counter, applied twice so
 * seed, stream and counter bits all avalanche.
 */
class CounterRng
{
  public:
    explicit CounterRng(std::uint64_t seed = 0x4b6f6e6121ULL,
                        std::uint64_t stream = 0)
        : key_(mix(mix(seed + 0x9e3779b97f4a7c15ULL) ^
                   (stream * 0xda942042e4dd58b5ULL)))
    {}

    /** Output @p i of this stream, without disturbing the counter. */
    std::uint64_t
    at(std::uint64_t i) const
    {
        return mix(key_ + i * 0x9e3779b97f4a7c15ULL);
    }

    /** Next raw 64-bit value (output counter_, then advance). */
    std::uint64_t next() { return at(counter_++); }

    /** Uniform integer in [0, bound). @p bound must be nonzero. */
    std::uint64_t
    below(std::uint64_t bound)
    {
        KONA_ASSERT(bound != 0, "CounterRng::below(0)");
        __uint128_t m = static_cast<__uint128_t>(next()) * bound;
        return static_cast<std::uint64_t>(m >> 64);
    }

    /** Uniform integer in [lo, hi] inclusive. */
    std::uint64_t
    range(std::uint64_t lo, std::uint64_t hi)
    {
        KONA_ASSERT(lo <= hi, "CounterRng::range empty");
        return lo + below(hi - lo + 1);
    }

    /** Uniform double in [0, 1). */
    double
    uniform()
    {
        return static_cast<double>(next() >> 11) * 0x1.0p-53;
    }

    /** Bernoulli trial with probability @p p of true. */
    bool chance(double p) { return uniform() < p; }

    /** Draws consumed so far (the next output index). */
    std::uint64_t counter() const { return counter_; }

  private:
    static std::uint64_t
    mix(std::uint64_t z)
    {
        z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
        z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
        return z ^ (z >> 31);
    }

    std::uint64_t key_;
    std::uint64_t counter_ = 0;
};

/**
 * Zipfian key-popularity generator (Gray et al.), used by the KV and
 * TPC-C workloads to model skewed access without external traces.
 */
class ZipfGenerator
{
  public:
    /** Draw from [0, n) with skew @p theta (0 = uniform, ~0.99 = hot). */
    ZipfGenerator(std::uint64_t n, double theta, Rng &rng);

    std::uint64_t next();

  private:
    double zeta(std::uint64_t n, double theta) const;

    std::uint64_t n_;
    double theta_;
    double alpha_;
    double zetan_;
    double eta_;
    Rng &rng_;
};

} // namespace kona

#endif // KONA_COMMON_RNG_H
