/**
 * @file
 * Status and error reporting in the gem5 tradition: inform() for normal
 * status, warn() for suspicious-but-survivable conditions, fatal() for
 * user errors (bad configuration), panic() for internal invariant
 * violations.
 *
 * fatal() and panic() throw typed exceptions instead of exiting so the
 * test suite can assert on them; the provided main() helpers in the
 * benches catch and report them.
 */

#ifndef KONA_COMMON_LOGGING_H
#define KONA_COMMON_LOGGING_H

#include <cstdio>
#include <sstream>
#include <stdexcept>
#include <string>

namespace kona {

/** Thrown by fatal(): the simulation cannot continue due to user error. */
class FatalError : public std::runtime_error
{
  public:
    explicit FatalError(const std::string &msg) : std::runtime_error(msg) {}
};

/** Thrown by panic(): an internal invariant of the simulator broke. */
class PanicError : public std::logic_error
{
  public:
    explicit PanicError(const std::string &msg) : std::logic_error(msg) {}
};

namespace detail {

void emit(const char *level, const std::string &msg);

/** Run the crash hook (flight-recorder dumps) before throwing. */
void notifyCrash();

template <typename... Args>
std::string
format(Args &&...args)
{
    std::ostringstream oss;
    (oss << ... << args);
    return oss.str();
}

} // namespace detail

/** Report normal operating status to the user. */
template <typename... Args>
void
inform(Args &&...args)
{
    detail::emit("info", detail::format(std::forward<Args>(args)...));
}

/** Verbose diagnostics, printed only under KONA_LOG_LEVEL=debug. */
template <typename... Args>
void
debugLog(Args &&...args)
{
    detail::emit("debug", detail::format(std::forward<Args>(args)...));
}

/** Report a condition that might indicate a problem but is survivable. */
template <typename... Args>
void
warn(Args &&...args)
{
    detail::emit("warn", detail::format(std::forward<Args>(args)...));
}

/** Abort the simulation due to a user-caused condition. */
template <typename... Args>
[[noreturn]] void
fatal(Args &&...args)
{
    std::string msg = detail::format(std::forward<Args>(args)...);
    detail::emit("fatal", msg);
    detail::notifyCrash();
    throw FatalError(msg);
}

/** Abort the simulation due to an internal bug. */
template <typename... Args>
[[noreturn]] void
panic(Args &&...args)
{
    std::string msg = detail::format(std::forward<Args>(args)...);
    detail::emit("panic", msg);
    detail::notifyCrash();
    throw PanicError(msg);
}

/** Silence inform/warn output (benches use this to keep tables clean). */
void setQuietLogging(bool on);

/**
 * Minimum level emit() prints: "quiet" (only fatal/panic), "warn",
 * "info" (the default) or "debug". Initialized from the KONA_LOG_LEVEL
 * environment variable on first use; telemetry-heavy runs and CI set
 * KONA_LOG_LEVEL=quiet to silence inform() chatter. Unknown strings
 * are ignored.
 */
void setLogLevel(const std::string &level);

/**
 * Hook invoked by fatal()/panic() before the exception is thrown.
 * TraceSession installs a hook that dumps every flight recorder with a
 * configured crash-dump path. Pass nullptr to uninstall.
 */
void setCrashHook(void (*hook)());

/** panic() unless @p cond holds. Cheap enough to keep in release builds. */
#define KONA_ASSERT(cond, ...)                                            \
    do {                                                                  \
        if (!(cond)) {                                                    \
            ::kona::panic("assertion failed: ", #cond, " ", __VA_ARGS__); \
        }                                                                 \
    } while (0)

} // namespace kona

#endif // KONA_COMMON_LOGGING_H
