#include "common/logging.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <mutex>

namespace kona {
namespace detail {

namespace {

std::mutex emitMutex;
bool quiet = false;
void (*crashHook)() = nullptr;

/** Severity ranks; a message prints when its rank <= the level rank. */
enum Rank : int
{
    RankQuiet = 0,   ///< only fatal/panic
    RankWarn = 1,
    RankInfo = 2,
    RankDebug = 3,
};

int
rankOf(const char *level)
{
    if (std::strcmp(level, "debug") == 0)
        return RankDebug;
    if (std::strcmp(level, "info") == 0)
        return RankInfo;
    if (std::strcmp(level, "warn") == 0)
        return RankWarn;
    if (std::strcmp(level, "quiet") == 0)
        return RankQuiet;
    return -1;
}

int &
levelRank()
{
    // Initialized from the environment once; setLogLevel overrides.
    static int rank = [] {
        const char *env = std::getenv("KONA_LOG_LEVEL");
        int r = env != nullptr ? rankOf(env) : -1;
        return r >= 0 ? r : static_cast<int>(RankInfo);
    }();
    return rank;
}

} // namespace

void
emit(const char *level, const std::string &msg)
{
    std::lock_guard<std::mutex> guard(emitMutex);
    if (quiet)
        return;
    // fatal/panic always print; other levels honor KONA_LOG_LEVEL.
    int rank = rankOf(level);
    if (rank >= 0 && rank > levelRank())
        return;
    std::fprintf(stderr, "kona: %s: %s\n", level, msg.c_str());
}

void
notifyCrash()
{
    // Re-entrancy guard: a hook that itself panics must not recurse.
    static thread_local bool dumping = false;
    if (crashHook == nullptr || dumping)
        return;
    dumping = true;
    crashHook();
    dumping = false;
}

} // namespace detail

/** Silence inform/warn output (used by benches to keep tables clean). */
void
setQuietLogging(bool on)
{
    detail::quiet = on;
}

void
setLogLevel(const std::string &level)
{
    int rank = detail::rankOf(level.c_str());
    if (rank >= 0)
        detail::levelRank() = rank;
}

void
setCrashHook(void (*hook)())
{
    detail::crashHook = hook;
}

} // namespace kona
