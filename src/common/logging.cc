#include "common/logging.h"

#include <cstdio>
#include <mutex>

namespace kona {
namespace detail {

namespace {
std::mutex emitMutex;
bool quiet = false;
} // namespace

void
emit(const char *level, const std::string &msg)
{
    std::lock_guard<std::mutex> guard(emitMutex);
    if (quiet)
        return;
    std::fprintf(stderr, "kona: %s: %s\n", level, msg.c_str());
}

} // namespace detail

/** Silence inform/warn output (used by benches to keep tables clean). */
void
setQuietLogging(bool on)
{
    detail::quiet = on;
}

} // namespace kona
