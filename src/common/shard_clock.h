/**
 * @file
 * Event ordering primitives for the parallel simulation engine
 * (DESIGN.md §16 "Parallel simulation").
 *
 * Each shard — one per compute node, plus the passive shared-state
 * shard the gate serializes — stamps every cross-shard interaction
 * with an EventKey (timestamp, shard id, per-shard sequence number).
 * Keys are totally ordered lexicographically and each shard's key
 * sequence is strictly increasing, so the set of executed events has
 * exactly one sorted merge: the canonical order the ShardGate grants,
 * independent of how many OS threads execute the shards.
 *
 * ShardClock tracks the monotone stamp lower bound one shard publishes
 * while it simulates freely between cross-shard events; the lookahead
 * horizon (derived from the minimum fabric wire latency) throttles how
 * often that publication wakes waiting shards.
 */

#ifndef KONA_COMMON_SHARD_CLOCK_H
#define KONA_COMMON_SHARD_CLOCK_H

#include <compare>
#include <cstdint>
#include <limits>

#include "common/latency.h"
#include "common/types.h"

namespace kona {

/** Canonical identity of one cross-shard event. */
struct EventKey
{
    Tick stamp = 0;          ///< sim-time of the interaction
    std::uint32_t shard = 0; ///< issuing shard (tie-break 1)
    std::uint64_t seq = 0;   ///< per-shard sequence (tie-break 2)

    auto operator<=>(const EventKey &) const = default;
};

/** Stamp lower bound of a shard that can issue no further events. */
inline constexpr Tick shardDoneStamp =
    std::numeric_limits<Tick>::max();

/**
 * Conservative lookahead horizon: no cross-shard interaction can take
 * effect sooner than one minimum-latency fabric traversal, so bound
 * publications finer than this cannot unblock a waiter any earlier.
 * Used by the gate to throttle wakeups, never to delay an event.
 */
inline Tick
conservativeHorizon(const LatencyConfig &lat)
{
    Tick h = static_cast<Tick>(lat.rdmaBaseNs);
    if (lat.rdmaCompletionNs > 0 &&
        static_cast<Tick>(lat.rdmaCompletionNs) < h)
        h = static_cast<Tick>(lat.rdmaCompletionNs);
    return h > 0 ? h : 1;
}

/**
 * Per-shard stamp bookkeeping: the monotone clamp applied to every
 * stamp a shard proposes (component clocks can momentarily read lower
 * than an earlier section's stamp — e.g. a background-clock eviction
 * after an app-clock fetch — and the canonical order needs per-shard
 * monotonicity, not cross-clock agreement).
 */
class ShardClock
{
  public:
    /** Clamp @p stamp to this shard's monotone stamp sequence. */
    Tick
    clamp(Tick stamp)
    {
        if (stamp < last_)
            stamp = last_;
        last_ = stamp;
        return stamp;
    }

    Tick last() const { return last_; }
    std::uint64_t nextSeq() { return seq_++; }
    std::uint64_t seqWatermark() const { return seq_; }

  private:
    Tick last_ = 0;
    std::uint64_t seq_ = 0;
};

} // namespace kona

#endif // KONA_COMMON_SHARD_CLOCK_H
