#include "common/rng.h"

#include <cmath>

namespace kona {

ZipfGenerator::ZipfGenerator(std::uint64_t n, double theta, Rng &rng)
    : n_(n), theta_(theta), rng_(rng)
{
    KONA_ASSERT(n > 0, "ZipfGenerator needs a nonempty key space");
    KONA_ASSERT(theta >= 0.0 && theta < 1.0, "theta must be in [0, 1)");
    zetan_ = zeta(n_, theta_);
    double zeta2 = zeta(2, theta_);
    alpha_ = 1.0 / (1.0 - theta_);
    eta_ = (1.0 - std::pow(2.0 / static_cast<double>(n_), 1.0 - theta_)) /
           (1.0 - zeta2 / zetan_);
}

double
ZipfGenerator::zeta(std::uint64_t n, double theta) const
{
    double sum = 0.0;
    for (std::uint64_t i = 1; i <= n; ++i)
        sum += 1.0 / std::pow(static_cast<double>(i), theta);
    return sum;
}

std::uint64_t
ZipfGenerator::next()
{
    if (theta_ == 0.0)
        return rng_.below(n_);

    double u = rng_.uniform();
    double uz = u * zetan_;
    if (uz < 1.0)
        return 0;
    if (uz < 1.0 + std::pow(0.5, theta_))
        return 1;
    auto v = static_cast<std::uint64_t>(
        static_cast<double>(n_) *
        std::pow(eta_ * u - eta_ + 1.0, alpha_));
    return v >= n_ ? n_ - 1 : v;
}

} // namespace kona
