#include "common/stats.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace kona {

void
IntDistribution::record(std::uint64_t value, std::uint64_t weight)
{
    buckets_[value] += weight;
    samples_ += weight;
    weightedSum_ += value * weight;
}

double
IntDistribution::mean() const
{
    if (samples_ == 0)
        return 0.0;
    return static_cast<double>(weightedSum_) /
           static_cast<double>(samples_);
}

double
IntDistribution::cdfAt(std::uint64_t v) const
{
    if (samples_ == 0)
        return 0.0;
    std::uint64_t below = 0;
    for (const auto &[value, count] : buckets_) {
        if (value > v)
            break;
        below += count;
    }
    return static_cast<double>(below) / static_cast<double>(samples_);
}

std::uint64_t
IntDistribution::quantile(double q) const
{
    KONA_ASSERT(q > 0.0 && q <= 1.0, "quantile out of range");
    KONA_ASSERT(samples_ > 0, "quantile of empty distribution");
    auto target = static_cast<std::uint64_t>(
        std::ceil(q * static_cast<double>(samples_)));
    std::uint64_t running = 0;
    for (const auto &[value, count] : buckets_) {
        running += count;
        if (running >= target)
            return value;
    }
    return buckets_.rbegin()->first;
}

std::vector<std::pair<std::uint64_t, double>>
IntDistribution::cdfPoints(std::uint64_t lo, std::uint64_t hi) const
{
    std::vector<std::pair<std::uint64_t, double>> points;
    points.reserve(hi - lo + 1);
    std::uint64_t running = 0;
    auto it = buckets_.begin();
    // Account for any mass below the printed range first.
    while (it != buckets_.end() && it->first < lo) {
        running += it->second;
        ++it;
    }
    for (std::uint64_t v = lo; v <= hi; ++v) {
        while (it != buckets_.end() && it->first == v) {
            running += it->second;
            ++it;
        }
        double frac = samples_ == 0
            ? 0.0
            : static_cast<double>(running) / static_cast<double>(samples_);
        points.emplace_back(v, frac);
    }
    return points;
}

double
WindowedSeries::mean() const
{
    if (values_.empty())
        return 0.0;
    double sum = 0.0;
    for (double v : values_)
        sum += v;
    return sum / static_cast<double>(values_.size());
}

double
WindowedSeries::trimmedMean(std::size_t skipFront,
                            std::size_t skipBack) const
{
    if (values_.size() <= skipFront + skipBack)
        return 0.0;
    double sum = 0.0;
    std::size_t n = 0;
    for (std::size_t i = skipFront; i < values_.size() - skipBack; ++i) {
        sum += values_[i];
        ++n;
    }
    return sum / static_cast<double>(n);
}

double
WindowedSeries::min() const
{
    if (values_.empty())
        return 0.0;
    return *std::min_element(values_.begin(), values_.end());
}

double
WindowedSeries::max() const
{
    if (values_.empty())
        return 0.0;
    return *std::max_element(values_.begin(), values_.end());
}

double
geometricMean(const std::vector<double> &values)
{
    if (values.empty())
        return 0.0;
    double logSum = 0.0;
    for (double v : values) {
        KONA_ASSERT(v > 0.0, "geometricMean needs positive values");
        logSum += std::log(v);
    }
    return std::exp(logSum / static_cast<double>(values.size()));
}

} // namespace kona
