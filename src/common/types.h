/**
 * @file
 * Fundamental type aliases and geometry constants shared by every
 * subsystem of the Kona reproduction.
 *
 * The whole simulator speaks in terms of three address spaces:
 *  - application virtual addresses (Addr),
 *  - fake physical addresses inside VFMem exposed by the coherent
 *    FPGA (also Addr; the FPGA owns the mapping),
 *  - remote addresses on a memory node (RemoteAddr = node id + offset).
 */

#ifndef KONA_COMMON_TYPES_H
#define KONA_COMMON_TYPES_H

#include <cstddef>
#include <cstdint>

namespace kona {

/** A (virtual or fake-physical) byte address. */
using Addr = std::uint64_t;

/** Simulated time in nanoseconds. */
using Tick = std::uint64_t;

/** Identifier of a node in the rack (compute or memory node). */
using NodeId = std::uint32_t;

/** Identifier of a coarse-grained remote memory slab. */
using SlabId = std::uint32_t;

/** Geometry of the memory system. All sizes in bytes. */
constexpr std::size_t cacheLineSize = 64;
constexpr std::size_t pageSize = 4096;
constexpr std::size_t hugePageSize = 2 * 1024 * 1024;
constexpr std::size_t linesPerPage = pageSize / cacheLineSize;   // 64

constexpr std::size_t KiB = 1024;
constexpr std::size_t MiB = 1024 * KiB;
constexpr std::size_t GiB = 1024 * MiB;

/** An invalid/unmapped address sentinel. */
constexpr Addr invalidAddr = ~static_cast<Addr>(0);

/** Round @p addr down to the enclosing unit of size @p unit (power of 2). */
constexpr Addr
alignDown(Addr addr, std::size_t unit)
{
    return addr & ~static_cast<Addr>(unit - 1);
}

/** Round @p addr up to the next multiple of @p unit (power of 2). */
constexpr Addr
alignUp(Addr addr, std::size_t unit)
{
    return (addr + unit - 1) & ~static_cast<Addr>(unit - 1);
}

/** Page number containing @p addr. */
constexpr Addr
pageNumber(Addr addr)
{
    return addr / pageSize;
}

/** Cache-line index of @p addr within its 4KB page, in [0, 64). */
constexpr unsigned
lineInPage(Addr addr)
{
    return static_cast<unsigned>((addr % pageSize) / cacheLineSize);
}

/** Whether the access [addr, addr+size) stays within one cache line. */
constexpr bool
withinOneLine(Addr addr, std::size_t size)
{
    return alignDown(addr, cacheLineSize) ==
           alignDown(addr + size - 1, cacheLineSize);
}

/** Kind of a memory access observed by the instrumentation layer. */
enum class AccessType : std::uint8_t { Read, Write };

/** An address on a remote memory node. */
struct RemoteAddr
{
    NodeId node = 0;
    Addr offset = 0;

    bool operator==(const RemoteAddr &other) const = default;
};

} // namespace kona

#endif // KONA_COMMON_TYPES_H
