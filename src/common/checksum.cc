#include "common/checksum.h"

#include <array>

namespace kona {

namespace {

constexpr std::array<std::uint32_t, 256>
makeCrcTable()
{
    std::array<std::uint32_t, 256> table{};
    for (std::uint32_t i = 0; i < 256; ++i) {
        std::uint32_t c = i;
        for (int bit = 0; bit < 8; ++bit)
            c = (c & 1) ? (0xedb88320u ^ (c >> 1)) : (c >> 1);
        table[i] = c;
    }
    return table;
}

constexpr std::array<std::uint32_t, 256> crcTable = makeCrcTable();

} // namespace

std::uint32_t
crc32(const void *data, std::size_t len, std::uint32_t seed)
{
    const auto *bytes = static_cast<const std::uint8_t *>(data);
    std::uint32_t c = seed ^ 0xffffffffu;
    for (std::size_t i = 0; i < len; ++i)
        c = crcTable[(c ^ bytes[i]) & 0xffu] ^ (c >> 8);
    return c ^ 0xffffffffu;
}

} // namespace kona
