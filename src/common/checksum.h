/**
 * @file
 * End-to-end integrity checksums. The CL-log protocol (rack/cl_log.h)
 * stamps every record with a CRC32 so the memory-node receiver can
 * detect payload corruption that the transport's own checks missed
 * (DMA bit flips, landing-area scribbles) — the FaRM-style end-to-end
 * check the paper's log design presumes.
 */

#ifndef KONA_COMMON_CHECKSUM_H
#define KONA_COMMON_CHECKSUM_H

#include <cstddef>
#include <cstdint>

namespace kona {

/**
 * CRC32 (IEEE 802.3 polynomial, reflected) over @p len bytes.
 * Pass a previous return value as @p seed to checksum discontiguous
 * buffers as one logical stream.
 */
std::uint32_t crc32(const void *data, std::size_t len,
                    std::uint32_t seed = 0);

} // namespace kona

#endif // KONA_COMMON_CHECKSUM_H
