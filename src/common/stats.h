/**
 * @file
 * Statistics primitives used across the reproduction: scalar counters,
 * integer-bucket distributions with CDF extraction (Figs 2 and 3), and
 * per-window time series (Fig 9 and Table 2's windowed measurement).
 */

#ifndef KONA_COMMON_STATS_H
#define KONA_COMMON_STATS_H

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace kona {

/** A monotonically increasing named counter. */
class Counter
{
  public:
    Counter() = default;

    void add(std::uint64_t n = 1) { value_ += n; }
    std::uint64_t value() const { return value_; }
    void reset() { value_ = 0; }

  private:
    std::uint64_t value_ = 0;
};

/**
 * Distribution over small integer values (e.g. "number of accessed
 * cache-lines in a page", always in [0, 64]). Stores exact bucket counts.
 */
class IntDistribution
{
  public:
    void record(std::uint64_t value, std::uint64_t weight = 1);

    std::uint64_t samples() const { return samples_; }
    std::uint64_t totalWeight() const { return samples_; }

    /** Mean of the recorded values. */
    double mean() const;

    /** Fraction of samples with value <= @p v (the CDF at v). */
    double cdfAt(std::uint64_t v) const;

    /** Smallest value v with cdfAt(v) >= @p q, for q in (0, 1]. */
    std::uint64_t quantile(double q) const;

    /**
     * Materialize CDF points (value, cumulative fraction) for every
     * value in [lo, hi], suitable for printing a figure series.
     */
    std::vector<std::pair<std::uint64_t, double>>
    cdfPoints(std::uint64_t lo, std::uint64_t hi) const;

    const std::map<std::uint64_t, std::uint64_t> &buckets() const
    {
        return buckets_;
    }

  private:
    std::map<std::uint64_t, std::uint64_t> buckets_;
    std::uint64_t samples_ = 0;
    std::uint64_t weightedSum_ = 0;
};

/**
 * A per-window scalar series: the Fig 9 experiment reports dirty-data
 * amplification per 1-second window; Table 2 averages over windows.
 */
class WindowedSeries
{
  public:
    void append(double value) { values_.push_back(value); }

    std::size_t windows() const { return values_.size(); }
    const std::vector<double> &values() const { return values_; }

    /** Arithmetic mean over all windows; 0 when empty. */
    double mean() const;

    /** Mean skipping the first @p skipFront and last @p skipBack windows.
     *  The paper drops the teardown window from the reported averages. */
    double trimmedMean(std::size_t skipFront, std::size_t skipBack) const;

    /** Smallest window value; 0 when the series is empty. */
    double min() const;
    /** Largest window value; 0 when the series is empty. */
    double max() const;

  private:
    std::vector<double> values_;
};

/** Geometric mean of a vector of positive ratios. */
double geometricMean(const std::vector<double> &values);

/**
 * Fault-tolerance snapshot of a runtime and its rack (§4.5): how often
 * the recovery machinery fired and whether the system is currently
 * operating with less redundancy than configured.
 */
struct ReliabilityStats
{
    std::uint64_t retries = 0;           ///< backoff retries, all paths
    std::uint64_t retransmits = 0;       ///< CL logs re-sent (drop/NAK)
    std::uint64_t checksumFailures = 0;  ///< corrupt CL logs NAKed
    std::uint64_t replicaPromotions = 0; ///< fail-overs to a replica
    std::uint64_t nodesFailed = 0;       ///< permanent node losses seen
    std::uint64_t slabsRebuilt = 0;      ///< replacement copies created
    std::uint64_t slabsLost = 0;         ///< no surviving copy existed
    bool degraded = false;               ///< running below redundancy
};

} // namespace kona

#endif // KONA_COMMON_STATS_H
