/**
 * @file
 * The calibrated latency table (DESIGN.md §5). Every simulated cost in
 * the reproduction is drawn from one LatencyConfig instance so that
 * experiments can perturb a single knob (e.g. remote fetch latency per
 * baseline personality) without touching component code.
 *
 * Values come from the paper's own measurements (§2.1, §6): a 4KB RDMA
 * op is ~3us, an Infiniswap remote fetch ~40us, LegoOS ~10us, FMem is
 * ~1.5X slower than CMem (NUMA-like), eviction under Infiniswap >32us.
 */

#ifndef KONA_COMMON_LATENCY_H
#define KONA_COMMON_LATENCY_H

#include "common/types.h"

namespace kona {

/** All simulated latencies, in nanoseconds unless noted. */
struct LatencyConfig
{
    // CPU cache hierarchy hit latencies (Skylake-class @2.2GHz).
    double l1HitNs = 1.8;
    double l2HitNs = 5.5;
    double l3HitNs = 18.0;

    // Memory latencies.
    double cmemNs = 90.0;      ///< locally attached DRAM
    double fmemNs = 135.0;     ///< FPGA-attached DRAM over coherent link

    // Network / RDMA model: cost(op) = base + bytes at line rate.
    // The base term absorbs NIC processing and fabric latency (a lone
    // 4KB op lands at ~3us, matching the paper's testbed); payload
    // serialization runs at ~100Gbps regardless of batching, and
    // linked WRs amortize the base down to a marginal doorbell cost.
    double rdmaBaseNs = 2680.0;        ///< per-op NIC + fabric overhead
    double rdmaLinkedOpNs = 150.0;     ///< marginal cost of a linked WR
    double rdmaPipelinedPerKbNs = 80.0; ///< wire time per KB (~100Gbps)
    double rdmaCompletionNs = 250.0;   ///< polling a signaled completion
    std::uint32_t rdmaInlineThreshold = 220; ///< bytes; inline cutoff

    // Local data movement (AVX-accelerated memcpy to RDMA buffers).
    double copyPerKbNs = 30.0;
    double copySetupNs = 100.0;   ///< per-page gather setup (cache miss)
    double copyPerRunNs = 20.0;   ///< per contiguous run within a page

    // Virtual-memory costs charged by VmRuntime.
    double minorFaultNs = 2500.0;   ///< mprotect-style WP fault service
    double uffdWpFaultNs = 4500.0;  ///< userfaultfd WP fault round trip
    double majorFaultExtraNs = 4000.0; ///< fault path on a remote fetch
    double tlbShootdownNs = 4000.0;
    double pteUpdateNs = 300.0;

    // Remote fetch latencies per personality, including their software
    // stacks, as measured by the paper on real hardware.
    double konaRemoteFetchNs = 3000.0;      ///< no fault, RDMA only
    double konaVmRemoteFetchNs = 10500.0;   ///< userfaultfd path
    double legoOsRemoteFetchNs = 10000.0;
    double infiniswapRemoteFetchNs = 40000.0;

    // Eviction-side costs.
    /// Extra per-page reclaim cost of Infiniswap's block-device swap
    /// path (bio layer, kswapd bookkeeping); §2.1 measures the whole
    /// eviction at >32us even though the RDMA write is ~3us.
    double infiniswapEvictionOverheadNs = 24000.0;
    double bitmapScanPerPageNs = 55.0; ///< scan a 64-bit dirty mask
    double logUnpackPerLineNs = 4.0;   ///< receiver writes one line home
    double logCrcPerKbNs = 90.0;       ///< receiver-side CRC32 verify
    double ackNs = 1800.0;             ///< one-way ack (or NAK) message

    // FPGA-side costs.
    double fmemLookupNs = 20.0;   ///< FMem set-associative tag check
    double vfmemDirectoryNs = 25.0; ///< directory request handling
};

/** Baseline personalities for VmRuntime (see core/vm_runtime.h). */
enum class VmPersonality
{
    KonaVm,     ///< userfaultfd-based runtime, same algorithms as Kona
    LegoOs,     ///< disaggregated OS, 10us remote fetch
    Infiniswap, ///< block-device swap path, 40us remote fetch
};

/** Remote fetch latency for @p p under config @p cfg. */
inline double
remoteFetchNs(const LatencyConfig &cfg, VmPersonality p)
{
    switch (p) {
      case VmPersonality::KonaVm: return cfg.konaVmRemoteFetchNs;
      case VmPersonality::LegoOs: return cfg.legoOsRemoteFetchNs;
      case VmPersonality::Infiniswap: return cfg.infiniswapRemoteFetchNs;
    }
    return cfg.konaVmRemoteFetchNs;
}

} // namespace kona

#endif // KONA_COMMON_LATENCY_H
