#include "mem/page_snapshot.h"

#include <cstring>

#include "common/logging.h"

namespace kona {

void
PageSnapshotStore::capture(Addr pn, MemoryInterface &mem)
{
    PageCopy &copy = snapshots_[pn];
    mem.read(pn * pageSize, copy.data(), pageSize);
}

void
PageSnapshotStore::release(Addr pn)
{
    snapshots_.erase(pn);
}

std::uint64_t
PageSnapshotStore::diffLines(Addr pn, MemoryInterface &mem) const
{
    auto it = snapshots_.find(pn);
    if (it == snapshots_.end())
        return 0;

    PageCopy current;
    mem.read(pn * pageSize, current.data(), pageSize);

    std::uint64_t mask = 0;
    for (unsigned line = 0; line < linesPerPage; ++line) {
        std::size_t off = line * cacheLineSize;
        if (std::memcmp(current.data() + off,
                        it->second.data() + off, cacheLineSize) != 0) {
            mask |= 1ULL << line;
        }
    }
    return mask;
}

std::uint64_t
PageSnapshotStore::diffAndRefresh(Addr pn, MemoryInterface &mem)
{
    auto it = snapshots_.find(pn);
    if (it == snapshots_.end()) {
        capture(pn, mem);
        return 0;
    }

    PageCopy current;
    mem.read(pn * pageSize, current.data(), pageSize);

    std::uint64_t mask = 0;
    for (unsigned line = 0; line < linesPerPage; ++line) {
        std::size_t off = line * cacheLineSize;
        if (std::memcmp(current.data() + off,
                        it->second.data() + off, cacheLineSize) != 0) {
            mask |= 1ULL << line;
        }
    }
    it->second = current;
    return mask;
}

const std::uint8_t *
PageSnapshotStore::data(Addr pn) const
{
    auto it = snapshots_.find(pn);
    KONA_ASSERT(it != snapshots_.end(), "no snapshot for page ", pn);
    return it->second.data();
}

} // namespace kona
