#include "mem/tlb.h"

#include "common/logging.h"

namespace kona {

Tlb::Tlb(std::size_t entries) : capacity_(entries)
{
    KONA_ASSERT(entries > 0, "TLB needs at least one entry");
}

bool
Tlb::lookup(Addr vpn)
{
    auto it = map_.find(vpn);
    if (it == map_.end()) {
        misses_.add();
        return false;
    }
    lru_.splice(lru_.begin(), lru_, it->second);
    hits_.add();
    return true;
}

void
Tlb::insert(Addr vpn)
{
    auto it = map_.find(vpn);
    if (it != map_.end()) {
        lru_.splice(lru_.begin(), lru_, it->second);
        return;
    }
    if (map_.size() >= capacity_) {
        Addr victim = lru_.back();
        lru_.pop_back();
        map_.erase(victim);
    }
    lru_.push_front(vpn);
    map_[vpn] = lru_.begin();
}

void
Tlb::invalidatePage(Addr vpn)
{
    auto it = map_.find(vpn);
    if (it != map_.end()) {
        lru_.erase(it->second);
        map_.erase(it);
    }
    invalidations_.add();
}

void
Tlb::invalidateAll()
{
    lru_.clear();
    map_.clear();
    flushes_.add();
}

} // namespace kona
