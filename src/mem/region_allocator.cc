#include "mem/region_allocator.h"

#include "common/logging.h"

namespace kona {

RegionAllocator::RegionAllocator(Addr base, std::size_t size)
    : base_(base), totalSize_(size)
{
    KONA_ASSERT(size > 0, "empty region");
    insertFree(base, size);
}

std::optional<Addr>
RegionAllocator::allocate(std::size_t size, std::size_t alignment)
{
    KONA_ASSERT(size > 0, "zero-size allocation");
    KONA_ASSERT((alignment & (alignment - 1)) == 0,
                "alignment must be a power of two");

    // Best fit via the size index: walk candidates from the smallest
    // chunk that could possibly fit; alignment padding can disqualify
    // a candidate, in which case the next-larger chunk is tried. The
    // padding is at most alignment-1 bytes, so this terminates fast.
    for (auto it = freeBySize_.lower_bound(size);
         it != freeBySize_.end(); ++it) {
        Addr chunkAddr = it->second;
        std::size_t chunkSize = it->first;
        Addr start = alignUp(chunkAddr, alignment);
        std::size_t pad = start - chunkAddr;
        if (pad + size > chunkSize)
            continue;

        eraseFree(chunkAddr, chunkSize);
        if (pad > 0)
            insertFree(chunkAddr, pad);
        std::size_t tail = chunkSize - pad - size;
        if (tail > 0)
            insertFree(start + size, tail);

        live_[start] = size;
        bytesInUse_ += size;
        return start;
    }
    return std::nullopt;
}

void
RegionAllocator::deallocate(Addr addr)
{
    auto it = live_.find(addr);
    KONA_ASSERT(it != live_.end(), "deallocate of unknown address ",
                addr);
    std::size_t size = it->second;
    live_.erase(it);
    bytesInUse_ -= size;
    coalesceInsert(addr, size);
}

void
RegionAllocator::insertFree(Addr addr, std::size_t size)
{
    freeByAddr_[addr] = size;
    freeBySize_.emplace(size, addr);
}

void
RegionAllocator::eraseFree(Addr addr, std::size_t size)
{
    freeByAddr_.erase(addr);
    auto [lo, hi] = freeBySize_.equal_range(size);
    for (auto it = lo; it != hi; ++it) {
        if (it->second == addr) {
            freeBySize_.erase(it);
            return;
        }
    }
    panic("size index out of sync at ", addr);
}

void
RegionAllocator::coalesceInsert(Addr addr, std::size_t size)
{
    // Coalesce with successor.
    auto next = freeByAddr_.lower_bound(addr);
    if (next != freeByAddr_.end() && addr + size == next->first) {
        std::size_t nextSize = next->second;
        eraseFree(next->first, nextSize);
        size += nextSize;
    }
    // Coalesce with predecessor.
    next = freeByAddr_.lower_bound(addr);
    if (next != freeByAddr_.begin()) {
        auto prev = std::prev(next);
        if (prev->first + prev->second == addr) {
            Addr prevAddr = prev->first;
            std::size_t prevSize = prev->second;
            eraseFree(prevAddr, prevSize);
            addr = prevAddr;
            size += prevSize;
        }
    }
    insertFree(addr, size);
}

std::size_t
RegionAllocator::allocationSize(Addr addr) const
{
    auto it = live_.find(addr);
    KONA_ASSERT(it != live_.end(), "unknown allocation ", addr);
    return it->second;
}

void
RegionAllocator::extend(std::size_t size)
{
    KONA_ASSERT(size > 0, "empty extension");
    Addr oldEnd = base_ + totalSize_;
    totalSize_ += size;
    coalesceInsert(oldEnd, size);
}

bool
RegionAllocator::checkInvariants() const
{
    if (freeByAddr_.size() != freeBySize_.size())
        return false;
    std::size_t freeSum = 0;
    Addr prevEnd = 0;
    bool first = true;
    for (const auto &[addr, size] : freeByAddr_) {
        if (size == 0)
            return false;
        if (!first && addr < prevEnd)
            return false;            // overlap
        if (!first && addr == prevEnd)
            return false;            // should have been coalesced
        prevEnd = addr + size;
        first = false;
        freeSum += size;
        // Each address chunk must appear in the size index.
        auto [lo, hi] = freeBySize_.equal_range(size);
        bool found = false;
        for (auto it = lo; it != hi; ++it)
            found |= it->second == addr;
        if (!found)
            return false;
    }
    std::size_t liveSum = 0;
    for (const auto &[addr, size] : live_)
        liveSum += size;
    return freeSum + liveSum == totalSize_;
}

} // namespace kona
