/**
 * @file
 * BackingStore: a flat, sparsely populated simulated DRAM.
 *
 * Pages are materialized on first touch so that multi-GB simulated
 * address spaces cost only what is actually used. This models both CMem
 * on the compute node and the DRAM of memory nodes.
 */

#ifndef KONA_MEM_BACKING_STORE_H
#define KONA_MEM_BACKING_STORE_H

#include <memory>
#include <unordered_map>
#include <vector>

#include "common/types.h"
#include "mem/memory_interface.h"

namespace kona {

/** Sparse page-granularity byte store. Zero-filled on first touch. */
class BackingStore : public MemoryInterface
{
  public:
    /** @param capacity Maximum legal address + 1 (checked on access). */
    explicit BackingStore(std::size_t capacity);

    void read(Addr addr, void *buf, std::size_t size) override;
    void write(Addr addr, const void *buf, std::size_t size) override;

    std::size_t capacity() const { return capacity_; }

    /** Number of pages materialized so far (resident footprint). */
    std::size_t residentPages() const { return pages_.size(); }

    /**
     * Direct pointer to the byte backing @p addr, materializing the
     * page. Valid only up to the end of that page; used by zero-copy
     * paths (RDMA MRs, snapshot diffs).
     */
    std::uint8_t *pagePointer(Addr addr);

    /** Whether the page containing @p addr has been materialized. */
    bool pageResident(Addr addr) const;

    /** Discard the page containing @p addr (reads as zero afterwards). */
    void dropPage(Addr addr) { pages_.erase(pageNumber(addr)); }

  private:
    std::uint8_t *pageFor(Addr addr);

    std::size_t capacity_;
    std::unordered_map<Addr, std::unique_ptr<std::uint8_t[]>> pages_;
};

} // namespace kona

#endif // KONA_MEM_BACKING_STORE_H
