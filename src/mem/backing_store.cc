#include "mem/backing_store.h"

#include <cstring>

#include "common/logging.h"

namespace kona {

BackingStore::BackingStore(std::size_t capacity) : capacity_(capacity)
{
    KONA_ASSERT(capacity > 0, "empty backing store");
}

std::uint8_t *
BackingStore::pageFor(Addr addr)
{
    Addr pn = pageNumber(addr);
    auto it = pages_.find(pn);
    if (it == pages_.end()) {
        auto page = std::make_unique<std::uint8_t[]>(pageSize);
        std::memset(page.get(), 0, pageSize);
        it = pages_.emplace(pn, std::move(page)).first;
    }
    return it->second.get();
}

void
BackingStore::read(Addr addr, void *buf, std::size_t size)
{
    KONA_ASSERT(addr + size <= capacity_,
                "read past end of backing store at ", addr);
    auto *out = static_cast<std::uint8_t *>(buf);
    while (size > 0) {
        std::size_t offset = addr % pageSize;
        std::size_t chunk = std::min(size, pageSize - offset);
        Addr pn = pageNumber(addr);
        auto it = pages_.find(pn);
        if (it == pages_.end()) {
            std::memset(out, 0, chunk);   // untouched pages read as zero
        } else {
            std::memcpy(out, it->second.get() + offset, chunk);
        }
        addr += chunk;
        out += chunk;
        size -= chunk;
    }
}

void
BackingStore::write(Addr addr, const void *buf, std::size_t size)
{
    KONA_ASSERT(addr + size <= capacity_,
                "write past end of backing store at ", addr);
    const auto *in = static_cast<const std::uint8_t *>(buf);
    while (size > 0) {
        std::size_t offset = addr % pageSize;
        std::size_t chunk = std::min(size, pageSize - offset);
        std::memcpy(pageFor(addr) + offset, in, chunk);
        addr += chunk;
        in += chunk;
        size -= chunk;
    }
}

std::uint8_t *
BackingStore::pagePointer(Addr addr)
{
    KONA_ASSERT(addr < capacity_, "pagePointer past end");
    return pageFor(addr) + (addr % pageSize);
}

bool
BackingStore::pageResident(Addr addr) const
{
    return pages_.count(pageNumber(addr)) != 0;
}

} // namespace kona
