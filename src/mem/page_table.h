/**
 * @file
 * A single-level simulated page table with the protection machinery the
 * virtual-memory baselines depend on: present bits (fetch faults),
 * write-protection (dirty tracking faults), and dirty/accessed bits.
 *
 * Kona itself keeps pages permanently present and writable in VFMem;
 * the VM baselines flip these bits constantly — that asymmetry is the
 * core of the paper.
 */

#ifndef KONA_MEM_PAGE_TABLE_H
#define KONA_MEM_PAGE_TABLE_H

#include <cstdint>
#include <optional>
#include <unordered_map>

#include "common/stats.h"
#include "common/types.h"

namespace kona {

/** One page table entry. */
struct PageTableEntry
{
    Addr physPage = invalidAddr; ///< physical page number
    bool present = false;
    bool writable = true;
    bool dirty = false;
    bool accessed = false;
};

/** Outcome of a translation attempt. */
enum class TranslationResult : std::uint8_t
{
    Ok,             ///< translation succeeded
    NotPresent,     ///< page not mapped or present bit clear (major fault)
    WriteProtected, ///< write hit a read-only page (minor fault)
};

/** Virtual page number -> PageTableEntry map with fault semantics. */
class PageTable
{
  public:
    PageTable() = default;

    /**
     * Map virtual page @p vpn to physical page @p ppn.
     * @param writable Initial write permission.
     */
    void map(Addr vpn, Addr ppn, bool writable = true);

    /** Remove the mapping for @p vpn entirely. */
    void unmap(Addr vpn);

    /** Clear the present bit but keep the entry (eviction). */
    void markNotPresent(Addr vpn);

    /** Set the present bit (fetch completed). */
    void markPresent(Addr vpn);

    /** Clear write permission on @p vpn (dirty-tracking re-arm). */
    void writeProtect(Addr vpn);

    /** Grant write permission and mark dirty (minor fault service). */
    void enableWrite(Addr vpn);

    /** Clear the dirty bit (after writeback). */
    void clearDirty(Addr vpn);

    /**
     * Translate an access to virtual page @p vpn.
     * Sets accessed/dirty bits on success.
     */
    TranslationResult translate(Addr vpn, AccessType type);

    /** Entry lookup without side effects. */
    const PageTableEntry *entry(Addr vpn) const;

    bool mapped(Addr vpn) const { return entries_.count(vpn) != 0; }
    std::size_t size() const { return entries_.size(); }

    /** Number of PTE modifications performed (cost accounting). */
    std::uint64_t pteUpdates() const { return pteUpdates_.value(); }

  private:
    PageTableEntry &entryRef(Addr vpn);

    std::unordered_map<Addr, PageTableEntry> entries_;
    Counter pteUpdates_;
};

} // namespace kona

#endif // KONA_MEM_PAGE_TABLE_H
