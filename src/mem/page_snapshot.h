/**
 * @file
 * PageSnapshotStore: copies of page contents used by KTracker and by
 * Kona's emulated dirty tracking (§5): "for each page that is fetched
 * from remote memory, we create a copy of the page that is used by the
 * eviction thread to determine which cache-lines have changed".
 */

#ifndef KONA_MEM_PAGE_SNAPSHOT_H
#define KONA_MEM_PAGE_SNAPSHOT_H

#include <array>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/types.h"
#include "mem/memory_interface.h"

namespace kona {

/** Keeps byte-exact copies of pages and diffs them at line granularity. */
class PageSnapshotStore
{
  public:
    /** Snapshot the current contents of page @p pn read from @p mem. */
    void capture(Addr pn, MemoryInterface &mem);

    /** Drop the snapshot of page @p pn. */
    void release(Addr pn);

    bool has(Addr pn) const { return snapshots_.count(pn) != 0; }
    std::size_t size() const { return snapshots_.size(); }

    /**
     * Compare page @p pn in @p mem against its snapshot.
     * @return 64-bit mask of cache-lines whose bytes differ; 0 when the
     *         page is unchanged or was never captured.
     */
    std::uint64_t diffLines(Addr pn, MemoryInterface &mem) const;

    /**
     * Diff and refresh: returns the changed-line mask and updates the
     * snapshot to the current contents (KTracker's per-window cycle).
     */
    std::uint64_t diffAndRefresh(Addr pn, MemoryInterface &mem);

    /** Raw snapshot bytes for page @p pn (must exist). */
    const std::uint8_t *data(Addr pn) const;

  private:
    using PageCopy = std::array<std::uint8_t, pageSize>;
    std::unordered_map<Addr, PageCopy> snapshots_;
};

} // namespace kona

#endif // KONA_MEM_PAGE_SNAPSHOT_H
