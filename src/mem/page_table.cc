#include "mem/page_table.h"

#include "common/logging.h"

namespace kona {

void
PageTable::map(Addr vpn, Addr ppn, bool writable)
{
    PageTableEntry &pte = entries_[vpn];
    pte.physPage = ppn;
    pte.present = true;
    pte.writable = writable;
    pte.dirty = false;
    pte.accessed = false;
    pteUpdates_.add();
}

void
PageTable::unmap(Addr vpn)
{
    entries_.erase(vpn);
    pteUpdates_.add();
}

PageTableEntry &
PageTable::entryRef(Addr vpn)
{
    auto it = entries_.find(vpn);
    KONA_ASSERT(it != entries_.end(), "no PTE for vpn ", vpn);
    return it->second;
}

void
PageTable::markNotPresent(Addr vpn)
{
    entryRef(vpn).present = false;
    pteUpdates_.add();
}

void
PageTable::markPresent(Addr vpn)
{
    entryRef(vpn).present = true;
    pteUpdates_.add();
}

void
PageTable::writeProtect(Addr vpn)
{
    entryRef(vpn).writable = false;
    pteUpdates_.add();
}

void
PageTable::enableWrite(Addr vpn)
{
    PageTableEntry &pte = entryRef(vpn);
    pte.writable = true;
    pte.dirty = true;
    pteUpdates_.add();
}

void
PageTable::clearDirty(Addr vpn)
{
    entryRef(vpn).dirty = false;
    pteUpdates_.add();
}

TranslationResult
PageTable::translate(Addr vpn, AccessType type)
{
    auto it = entries_.find(vpn);
    if (it == entries_.end() || !it->second.present)
        return TranslationResult::NotPresent;

    PageTableEntry &pte = it->second;
    if (type == AccessType::Write && !pte.writable)
        return TranslationResult::WriteProtected;

    pte.accessed = true;
    if (type == AccessType::Write)
        pte.dirty = true;
    return TranslationResult::Ok;
}

const PageTableEntry *
PageTable::entry(Addr vpn) const
{
    auto it = entries_.find(vpn);
    return it == entries_.end() ? nullptr : &it->second;
}

} // namespace kona
