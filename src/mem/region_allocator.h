/**
 * @file
 * RegionAllocator: a free-list allocator over a contiguous range of
 * simulated addresses.
 *
 * Two users: AllocLib carves application objects out of VFMem-mapped
 * slabs with it (the "local memory allocator" of §4.4), and memory
 * nodes carve registered DRAM into slabs for the rack controller.
 *
 * The allocator keeps all metadata host-side (no headers inside the
 * simulated heap) so that the workloads' access patterns contain only
 * their own data — important for the amplification measurements.
 */

#ifndef KONA_MEM_REGION_ALLOCATOR_H
#define KONA_MEM_REGION_ALLOCATOR_H

#include <cstdint>
#include <map>
#include <optional>
#include <unordered_map>

#include "common/types.h"

namespace kona {

/** Best-fit free-list allocator with coalescing. */
class RegionAllocator
{
  public:
    /** Manage [base, base+size). */
    RegionAllocator(Addr base, std::size_t size);

    /**
     * Allocate @p size bytes aligned to @p alignment (power of two).
     * @return Address, or nullopt if the region is exhausted.
     */
    std::optional<Addr> allocate(std::size_t size,
                                 std::size_t alignment = 16);

    /** Free a previous allocation. @p addr must be a returned address. */
    void deallocate(Addr addr);

    /** Size of the live allocation at @p addr. */
    std::size_t allocationSize(Addr addr) const;

    /** Grow the managed region by appending [end, end+size). */
    void extend(std::size_t size);

    std::size_t bytesInUse() const { return bytesInUse_; }
    std::size_t bytesFree() const { return totalSize_ - bytesInUse_; }
    std::size_t totalSize() const { return totalSize_; }
    Addr base() const { return base_; }
    Addr end() const { return base_ + totalSize_; }
    std::size_t liveAllocations() const { return live_.size(); }

    /** Invariant check: free chunks disjoint, coalesced, sizes add up. */
    bool checkInvariants() const;

  private:
    /** Add a free chunk to both indices (no coalescing). */
    void insertFree(Addr addr, std::size_t size);
    /** Remove a known free chunk from both indices. */
    void eraseFree(Addr addr, std::size_t size);
    /** Insert a free chunk, merging with adjacent free chunks. */
    void coalesceInsert(Addr addr, std::size_t size);

    Addr base_;
    std::size_t totalSize_;
    std::size_t bytesInUse_ = 0;

    /** Free chunks by address (for coalescing). addr -> size. */
    std::map<Addr, std::size_t> freeByAddr_;
    /** Free chunks by size (for best-fit in O(log n)). */
    std::multimap<std::size_t, Addr> freeBySize_;
    /** Live allocations. addr -> size actually reserved. */
    std::unordered_map<Addr, std::size_t> live_;
};

} // namespace kona

#endif // KONA_MEM_REGION_ALLOCATOR_H
