/**
 * @file
 * MemoryInterface: the byte-addressable access abstraction every layer
 * of the reproduction speaks.
 *
 * Workloads issue loads and stores through a MemoryInterface exactly the
 * way the paper's emulation instruments application reads and writes.
 * Implementations include the raw DRAM backing store, the Kona runtime,
 * the virtual-memory baseline runtimes, and the trace-capturing wrapper.
 */

#ifndef KONA_MEM_MEMORY_INTERFACE_H
#define KONA_MEM_MEMORY_INTERFACE_H

#include <cstring>
#include <type_traits>

#include "common/types.h"

namespace kona {

/** Abstract byte-addressable memory with typed load/store helpers. */
class MemoryInterface
{
  public:
    virtual ~MemoryInterface() = default;

    /** Copy @p size bytes at simulated address @p addr into @p buf. */
    virtual void read(Addr addr, void *buf, std::size_t size) = 0;

    /** Copy @p size bytes from @p buf to simulated address @p addr. */
    virtual void write(Addr addr, const void *buf, std::size_t size) = 0;

    /** Typed load of a trivially copyable T. */
    template <typename T>
    T
    load(Addr addr)
    {
        static_assert(std::is_trivially_copyable_v<T>);
        T value;
        read(addr, &value, sizeof(T));
        return value;
    }

    /** Typed store of a trivially copyable T. */
    template <typename T>
    void
    store(Addr addr, const T &value)
    {
        static_assert(std::is_trivially_copyable_v<T>);
        write(addr, &value, sizeof(T));
    }
};

} // namespace kona

#endif // KONA_MEM_MEMORY_INTERFACE_H
