/**
 * @file
 * DirtyLineBitmap: per-4KB-page 64-bit masks of dirty cache-lines.
 *
 * This is the data structure the coherent FPGA maintains from observed
 * writebacks (track-local-data) and the Eviction Handler scans to build
 * the CL log. One bit per 64-byte line, 64 lines per page.
 */

#ifndef KONA_MEM_DIRTY_BITMAP_H
#define KONA_MEM_DIRTY_BITMAP_H

#include <bit>
#include <cstdint>
#include <unordered_map>

#include "common/types.h"

namespace kona {

/** Sparse map of page number -> dirty-line mask. */
class DirtyLineBitmap
{
  public:
    /** Mark all cache-lines overlapped by [addr, addr+size) dirty. */
    void
    markRange(Addr addr, std::size_t size)
    {
        if (size == 0)
            return;
        Addr first = alignDown(addr, cacheLineSize);
        Addr last = alignDown(addr + size - 1, cacheLineSize);
        for (Addr line = first; line <= last; line += cacheLineSize)
            markLine(line);
    }

    /** Mark the single cache-line containing @p addr dirty. */
    void
    markLine(Addr addr)
    {
        masks_[pageNumber(addr)] |= 1ULL << lineInPage(addr);
    }

    /** Dirty mask for page @p pn (0 if clean/untracked). */
    std::uint64_t
    pageMask(Addr pn) const
    {
        auto it = masks_.find(pn);
        return it == masks_.end() ? 0 : it->second;
    }

    bool pageDirty(Addr pn) const { return pageMask(pn) != 0; }

    /** Number of dirty lines in page @p pn. */
    unsigned
    dirtyLines(Addr pn) const
    {
        return static_cast<unsigned>(std::popcount(pageMask(pn)));
    }

    /**
     * OR @p mask back into page @p pn's mask. The pipelined eviction
     * path clears a page's mask when it packs the lines into a CL log;
     * if the shipment later fails terminally, the packed mask is
     * restored here so those lines are not silently lost.
     */
    void
    orMask(Addr pn, std::uint64_t mask)
    {
        if (mask != 0)
            masks_[pn] |= mask;
    }

    /** Forget page @p pn (after writeback). Returns old mask. */
    std::uint64_t
    clearPage(Addr pn)
    {
        auto it = masks_.find(pn);
        if (it == masks_.end())
            return 0;
        std::uint64_t mask = it->second;
        masks_.erase(it);
        return mask;
    }

    void clearAll() { masks_.clear(); }

    /** Total dirty lines across all pages. */
    std::uint64_t
    totalDirtyLines() const
    {
        std::uint64_t total = 0;
        for (const auto &[pn, mask] : masks_)
            total += std::popcount(mask);
        return total;
    }

    std::uint64_t totalDirtyBytes() const
    {
        return totalDirtyLines() * cacheLineSize;
    }

    std::size_t dirtyPages() const { return masks_.size(); }

    const std::unordered_map<Addr, std::uint64_t> &pages() const
    {
        return masks_;
    }

  private:
    std::unordered_map<Addr, std::uint64_t> masks_;
};

/**
 * Count the contiguous dirty segments in a 64-bit line mask, the metric
 * behind Fig 3 and the CL-log aggregation efficiency.
 */
inline unsigned
segmentCount(std::uint64_t mask)
{
    // A segment starts at every set bit whose lower neighbour is clear.
    return static_cast<unsigned>(std::popcount(mask & ~(mask << 1)));
}

} // namespace kona

#endif // KONA_MEM_DIRTY_BITMAP_H
