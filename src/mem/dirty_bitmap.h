/**
 * @file
 * DirtyLineBitmap: per-4KB-page 64-bit masks of dirty cache-lines.
 *
 * This is the data structure the coherent FPGA maintains from observed
 * writebacks (track-local-data) and the Eviction Handler scans to build
 * the CL log. One bit per 64-byte line, 64 lines per page.
 *
 * Two hot-path refinements (see DESIGN.md "Simulator performance"):
 * the total dirty-line count is maintained incrementally (popcount
 * deltas on every mutation) so totalDirtyLines()/totalDirtyBytes() —
 * called on the eviction path and by telemetry export — are O(1); and
 * a one-entry memo of the last page touched short-circuits the hash
 * probe for the common run of writebacks landing in one page.
 */

#ifndef KONA_MEM_DIRTY_BITMAP_H
#define KONA_MEM_DIRTY_BITMAP_H

#include <bit>
#include <cstdint>
#include <unordered_map>

#include "common/types.h"

namespace kona {

/** Sparse map of page number -> dirty-line mask. */
class DirtyLineBitmap
{
  public:
    /** Mark all cache-lines overlapped by [addr, addr+size) dirty. */
    void
    markRange(Addr addr, std::size_t size)
    {
        if (size == 0)
            return;
        Addr firstLine = alignDown(addr, cacheLineSize) / cacheLineSize;
        Addr lastLine =
            alignDown(addr + size - 1, cacheLineSize) / cacheLineSize;
        // One mask OR per page instead of one markLine per line.
        for (Addr pn = firstLine / linesPerPage;
             pn <= lastLine / linesPerPage; ++pn) {
            Addr lo = pn == firstLine / linesPerPage
                          ? firstLine % linesPerPage
                          : 0;
            Addr hi = pn == lastLine / linesPerPage
                          ? lastLine % linesPerPage
                          : linesPerPage - 1;
            std::uint64_t mask = hi - lo == 63
                                     ? ~std::uint64_t{0}
                                     : ((std::uint64_t{1}
                                         << (hi - lo + 1)) -
                                        1)
                                           << lo;
            orMask(pn, mask);
        }
    }

    /** Mark the single cache-line containing @p addr dirty. */
    void
    markLine(Addr addr)
    {
        std::uint64_t *mask = maskFor(pageNumber(addr));
        std::uint64_t bit = 1ULL << lineInPage(addr);
        if ((*mask & bit) == 0) {
            *mask |= bit;
            ++dirtyLineCount_;
        }
    }

    /** Dirty mask for page @p pn (0 if clean/untracked). */
    std::uint64_t
    pageMask(Addr pn) const
    {
        if (memoPn_ == pn && memoMask_ != nullptr)
            return *memoMask_;
        auto it = masks_.find(pn);
        return it == masks_.end() ? 0 : it->second;
    }

    bool pageDirty(Addr pn) const { return pageMask(pn) != 0; }

    /** Number of dirty lines in page @p pn. */
    unsigned
    dirtyLines(Addr pn) const
    {
        return static_cast<unsigned>(std::popcount(pageMask(pn)));
    }

    /**
     * OR @p mask back into page @p pn's mask. The pipelined eviction
     * path clears a page's mask when it packs the lines into a CL log;
     * if the shipment later fails terminally, the packed mask is
     * restored here so those lines are not silently lost.
     */
    void
    orMask(Addr pn, std::uint64_t mask)
    {
        if (mask == 0)
            return;
        std::uint64_t *slot = maskFor(pn);
        dirtyLineCount_ += static_cast<std::uint64_t>(
            std::popcount(mask & ~*slot));
        *slot |= mask;
    }

    /** Forget page @p pn (after writeback). Returns old mask. */
    std::uint64_t
    clearPage(Addr pn)
    {
        auto it = masks_.find(pn);
        if (it == masks_.end())
            return 0;
        std::uint64_t mask = it->second;
        dirtyLineCount_ -=
            static_cast<std::uint64_t>(std::popcount(mask));
        // erase invalidates references into the map; drop the memo.
        memoMask_ = nullptr;
        memoPn_ = invalidAddr;
        masks_.erase(it);
        return mask;
    }

    void
    clearAll()
    {
        masks_.clear();
        dirtyLineCount_ = 0;
        memoMask_ = nullptr;
        memoPn_ = invalidAddr;
    }

    /** Total dirty lines across all pages (O(1)). */
    std::uint64_t totalDirtyLines() const { return dirtyLineCount_; }

    std::uint64_t totalDirtyBytes() const
    {
        return totalDirtyLines() * cacheLineSize;
    }

    std::size_t dirtyPages() const { return masks_.size(); }

    const std::unordered_map<Addr, std::uint64_t> &pages() const
    {
        return masks_;
    }

  private:
    /**
     * Mutable mask slot for @p pn, creating it if needed. The memo is
     * safe because unordered_map references survive insertions; only
     * erase() (clearPage/clearAll) invalidates it, and both drop it.
     */
    std::uint64_t *
    maskFor(Addr pn)
    {
        if (memoPn_ == pn && memoMask_ != nullptr)
            return memoMask_;
        memoPn_ = pn;
        memoMask_ = &masks_[pn];
        return memoMask_;
    }

    std::unordered_map<Addr, std::uint64_t> masks_;
    std::uint64_t dirtyLineCount_ = 0;
    Addr memoPn_ = invalidAddr;
    std::uint64_t *memoMask_ = nullptr;
};

/**
 * Count the contiguous dirty segments in a 64-bit line mask, the metric
 * behind Fig 3 and the CL-log aggregation efficiency.
 */
inline unsigned
segmentCount(std::uint64_t mask)
{
    // A segment starts at every set bit whose lower neighbour is clear.
    return static_cast<unsigned>(std::popcount(mask & ~(mask << 1)));
}

} // namespace kona

#endif // KONA_MEM_DIRTY_BITMAP_H
