/**
 * @file
 * A TLB model. The virtual-memory baselines pay for it dearly: every
 * write-protection change and every eviction invalidates entries and,
 * on multi-core runs, triggers shootdown IPIs whose cost the runtimes
 * charge via LatencyConfig::tlbShootdownNs. Kona never changes page
 * permissions after setup, so its TLB entries are never shot down.
 */

#ifndef KONA_MEM_TLB_H
#define KONA_MEM_TLB_H

#include <cstdint>
#include <list>
#include <unordered_map>

#include "common/stats.h"
#include "common/types.h"

namespace kona {

/** Fully associative LRU TLB over virtual page numbers. */
class Tlb
{
  public:
    /** @param entries Capacity in translations (e.g. 1536 for L2 STLB). */
    explicit Tlb(std::size_t entries = 1536);

    /** Look up @p vpn; true on hit. Updates recency and counters. */
    bool lookup(Addr vpn);

    /** Install a translation for @p vpn, evicting LRU if full. */
    void insert(Addr vpn);

    /** Invalidate one page (invlpg). Counts an invalidation. */
    void invalidatePage(Addr vpn);

    /** Invalidate everything (full flush / context switch). */
    void invalidateAll();

    std::uint64_t hits() const { return hits_.value(); }
    std::uint64_t misses() const { return misses_.value(); }
    std::uint64_t invalidations() const { return invalidations_.value(); }
    std::uint64_t flushes() const { return flushes_.value(); }
    std::size_t occupancy() const { return map_.size(); }

  private:
    std::size_t capacity_;
    std::list<Addr> lru_;   // front = most recent
    std::unordered_map<Addr, std::list<Addr>::iterator> map_;
    Counter hits_;
    Counter misses_;
    Counter invalidations_;
    Counter flushes_;
};

} // namespace kona

#endif // KONA_MEM_TLB_H
