/**
 * @file
 * The cache-line log (CL log) wire format — the FaRM-style ring-buffer
 * log Kona uses to ship dirty cache-lines to memory nodes (§4.4).
 *
 * A log is a byte buffer of back-to-back records:
 *
 *   +-------------------+----------------------+
 *   | ClLogEntryHeader  |  lineCount * 64 bytes|
 *   +-------------------+----------------------+
 *
 * Each record carries one run of contiguous dirty cache-lines with the
 * remote address of the first line. Aggregating runs (even from
 * different pages) into one buffer lets the eviction path issue a
 * single large RDMA write instead of many small ones.
 */

#ifndef KONA_RACK_CL_LOG_H
#define KONA_RACK_CL_LOG_H

#include <cstdint>
#include <cstring>
#include <vector>

#include "common/logging.h"
#include "common/types.h"

namespace kona {

/** Header of one CL-log record. */
struct ClLogEntryHeader
{
    Addr remoteAddr;          ///< home of the first line in the run
    std::uint32_t lineCount;  ///< number of contiguous lines following
};

/** Builder/parser for CL logs in a caller-provided byte buffer. */
class ClLogWriter
{
  public:
    explicit ClLogWriter(std::vector<std::uint8_t> &buffer)
        : buffer_(buffer)
    {
        buffer_.clear();
    }

    /**
     * Append a run of @p lineCount contiguous cache-lines whose bytes
     * are at @p lines (host memory), homed at @p remoteAddr.
     */
    void
    appendRun(Addr remoteAddr, const std::uint8_t *lines,
              std::uint32_t lineCount)
    {
        KONA_ASSERT(lineCount > 0, "empty CL-log run");
        ClLogEntryHeader header{remoteAddr, lineCount};
        std::size_t off = buffer_.size();
        buffer_.resize(off + sizeof(header) +
                       static_cast<std::size_t>(lineCount) *
                           cacheLineSize);
        std::memcpy(buffer_.data() + off, &header, sizeof(header));
        std::memcpy(buffer_.data() + off + sizeof(header), lines,
                    static_cast<std::size_t>(lineCount) * cacheLineSize);
        ++runs_;
        lines_ += lineCount;
    }

    std::size_t sizeBytes() const { return buffer_.size(); }
    std::uint32_t runs() const { return runs_; }
    std::uint64_t lines() const { return lines_; }

  private:
    std::vector<std::uint8_t> &buffer_;
    std::uint32_t runs_ = 0;
    std::uint64_t lines_ = 0;
};

/** Iterates the records of a serialized CL log. */
class ClLogReader
{
  public:
    ClLogReader(const std::uint8_t *data, std::size_t size)
        : data_(data), size_(size)
    {}

    bool atEnd() const { return offset_ >= size_; }

    /** Read the next record; payload points into the log buffer. */
    ClLogEntryHeader
    next(const std::uint8_t *&payload)
    {
        KONA_ASSERT(offset_ + sizeof(ClLogEntryHeader) <= size_,
                    "truncated CL log header");
        ClLogEntryHeader header;
        std::memcpy(&header, data_ + offset_, sizeof(header));
        offset_ += sizeof(header);
        std::size_t bytes =
            static_cast<std::size_t>(header.lineCount) * cacheLineSize;
        KONA_ASSERT(offset_ + bytes <= size_, "truncated CL log payload");
        payload = data_ + offset_;
        offset_ += bytes;
        return header;
    }

  private:
    const std::uint8_t *data_;
    std::size_t size_;
    std::size_t offset_ = 0;
};

} // namespace kona

#endif // KONA_RACK_CL_LOG_H
