/**
 * @file
 * The cache-line log (CL log) wire format — the FaRM-style ring-buffer
 * log Kona uses to ship dirty cache-lines to memory nodes (§4.4).
 *
 * A log is a byte buffer of back-to-back records:
 *
 *   +-------------------+----------------------+
 *   | ClLogEntryHeader  |  lineCount * 64 bytes|
 *   +-------------------+----------------------+
 *
 * Each record carries one run of contiguous dirty cache-lines with the
 * remote address of the first line. Aggregating runs (even from
 * different pages) into one buffer lets the eviction path issue a
 * single large RDMA write instead of many small ones.
 *
 * Every record carries a CRC32 over its address, line count and
 * payload. RDMA's ICRC only protects the wire; corruption introduced by
 * the end hosts' DMA engines (or anything between the checksummed hops)
 * is invisible to the transport. The memory node verifies each record
 * before applying any of a log's lines and NAKs the whole log on a
 * mismatch, at which point the eviction path retransmits it.
 */

#ifndef KONA_RACK_CL_LOG_H
#define KONA_RACK_CL_LOG_H

#include <cstdint>
#include <cstring>
#include <vector>

#include "common/checksum.h"
#include "common/logging.h"
#include "common/types.h"

namespace kona {

/** Header of one CL-log record. 16 bytes on the wire. */
struct ClLogEntryHeader
{
    Addr remoteAddr;          ///< home of the first line in the run
    std::uint32_t lineCount;  ///< number of contiguous lines following
    std::uint32_t crc = 0;    ///< CRC32 over addr, lineCount and payload
};

/**
 * Worst-case log bytes one 4 KiB page can contribute: a 64-bit dirty
 * mask decomposes into at most 32 runs (alternating dirty/clean
 * lines), each paying one header, plus at most the full page of line
 * payload. Senders size batches against the landing-area ring slot
 * with this bound so an append can never overflow the slot.
 */
inline constexpr std::size_t clLogWorstBytesPerPage =
    (linesPerPage / 2) * sizeof(ClLogEntryHeader) + pageSize;

/** CRC32 of one record: covers the addressing fields and the payload. */
inline std::uint32_t
clLogRecordCrc(Addr remoteAddr, std::uint32_t lineCount,
               const std::uint8_t *payload)
{
    std::uint32_t c = crc32(&remoteAddr, sizeof(remoteAddr));
    c = crc32(&lineCount, sizeof(lineCount), c);
    return crc32(payload,
                 static_cast<std::size_t>(lineCount) * cacheLineSize, c);
}

/** Builder/parser for CL logs in a caller-provided byte buffer. */
class ClLogWriter
{
  public:
    /**
     * @param buffer Destination byte buffer (cleared on construction).
     * @param maxBytes Reject appends that would grow the log past this
     *                 size; 0 means unbounded.
     */
    explicit ClLogWriter(std::vector<std::uint8_t> &buffer,
                         std::size_t maxBytes = 0)
        : buffer_(buffer), maxBytes_(maxBytes)
    {
        buffer_.clear();
    }

    /**
     * Append a run of @p lineCount contiguous cache-lines whose bytes
     * are at @p lines (host memory), homed at @p remoteAddr.
     * @return false (buffer untouched) if the record would push the log
     *         past the configured maximum size.
     */
    bool
    appendRun(Addr remoteAddr, const std::uint8_t *lines,
              std::uint32_t lineCount)
    {
        KONA_ASSERT(lineCount > 0, "empty CL-log run");
        std::size_t payloadBytes =
            static_cast<std::size_t>(lineCount) * cacheLineSize;
        std::size_t off = buffer_.size();
        if (maxBytes_ != 0 &&
            off + sizeof(ClLogEntryHeader) + payloadBytes > maxBytes_) {
            ++rejected_;
            return false;
        }
        ClLogEntryHeader header{remoteAddr, lineCount,
                                clLogRecordCrc(remoteAddr, lineCount,
                                               lines)};
        buffer_.resize(off + sizeof(header) + payloadBytes);
        std::memcpy(buffer_.data() + off, &header, sizeof(header));
        std::memcpy(buffer_.data() + off + sizeof(header), lines,
                    payloadBytes);
        ++runs_;
        lines_ += lineCount;
        return true;
    }

    std::size_t sizeBytes() const { return buffer_.size(); }
    std::size_t maxBytes() const { return maxBytes_; }
    std::uint32_t runs() const { return runs_; }
    std::uint64_t lines() const { return lines_; }
    std::uint32_t rejectedRuns() const { return rejected_; }

  private:
    std::vector<std::uint8_t> &buffer_;
    std::size_t maxBytes_;
    std::uint32_t runs_ = 0;
    std::uint64_t lines_ = 0;
    std::uint32_t rejected_ = 0;
};

/** Iterates the records of a serialized CL log. */
class ClLogReader
{
  public:
    ClLogReader(const std::uint8_t *data, std::size_t size)
        : data_(data), size_(size)
    {}

    bool atEnd() const { return offset_ >= size_; }

    /** Read the next record; payload points into the log buffer. */
    ClLogEntryHeader
    next(const std::uint8_t *&payload)
    {
        ClLogEntryHeader header;
        KONA_ASSERT(tryNext(header, payload), "truncated CL log record");
        return header;
    }

    /**
     * Non-throwing variant for logs that may be corrupt: a flipped bit
     * in a header can make lineCount nonsense, so a receiver must be
     * able to reject the log instead of dying on it.
     * @return false (no state consumed) if the remaining bytes cannot
     *         hold a structurally valid record.
     */
    bool
    tryNext(ClLogEntryHeader &header, const std::uint8_t *&payload)
    {
        if (offset_ + sizeof(ClLogEntryHeader) > size_)
            return false;
        std::memcpy(&header, data_ + offset_, sizeof(header));
        std::size_t bytes =
            static_cast<std::size_t>(header.lineCount) * cacheLineSize;
        if (header.lineCount == 0 ||
            bytes / cacheLineSize != header.lineCount ||
            offset_ + sizeof(header) + bytes < offset_ ||
            offset_ + sizeof(header) + bytes > size_) {
            return false;
        }
        offset_ += sizeof(header);
        payload = data_ + offset_;
        offset_ += bytes;
        return true;
    }

  private:
    const std::uint8_t *data_;
    std::size_t size_;
    std::size_t offset_ = 0;
};

} // namespace kona

#endif // KONA_RACK_CL_LOG_H
