/**
 * @file
 * ParallelDriver: run one program per compute node of a MultiRack on
 * its own OS thread under the ShardGate's conservative-lookahead
 * synchronization (DESIGN.md §16 "Parallel simulation").
 *
 * Each compute node — its KonaRuntime, FPGA, caches, prefetcher and
 * tiering engine — is one shard. Shared rack state (Controller,
 * DirectoryService, memory-node backing stores, FaultInjector) is
 * only ever touched inside gated sections, which the gate grants in
 * the canonical EventKey order, so the run is bit-identical to the
 * sequential engine regardless of `threads`:
 *
 *   ParallelDriver driver(rack, threads);
 *   driver.run([&](std::size_t shard, KonaRuntime &rt) {
 *       ... the shard's whole program: reads/writes on rt ...
 *   });
 *
 * `threads` is a concurrency cap, not a thread count: the driver
 * always spawns one thread per shard and throttles admission with the
 * gate's run tokens, so threads=1 executes the exact sequential
 * reference schedule through the same machinery.
 */

#ifndef KONA_RACK_PARALLEL_DRIVER_H
#define KONA_RACK_PARALLEL_DRIVER_H

#include <functional>
#include <vector>

#include "net/shard_gate.h"
#include "rack/multi_rack.h"

namespace kona {

/** Parallel per-compute-node program runner over a MultiRack. */
class ParallelDriver
{
  public:
    /**
     * Bind every runtime of @p rack to a fresh gate. @p threads is
     * the number of shards allowed to execute concurrently (clamped
     * to [1, runtimeCount]); the lookahead horizon derives from the
     * fabric's minimum wire latency.
     */
    ParallelDriver(MultiRack &rack, unsigned threads);

    /** Detaches the gate from every runtime. */
    ~ParallelDriver();

    ParallelDriver(const ParallelDriver &) = delete;
    ParallelDriver &operator=(const ParallelDriver &) = delete;

    /**
     * Run @p program(shard, runtime) once per compute node, each on
     * its own thread, and join. A program's exception is rethrown
     * (the first by shard index) after every thread has joined.
     * Callable repeatedly only on fresh drivers — shards cannot
     * restart once finished.
     */
    void
    run(const std::function<void(std::size_t, KonaRuntime &)> &program);

    ShardGate &gate() { return gate_; }

    /** Canonical cross-shard event log (drain after run()). */
    std::vector<GateRecord> canonicalLog() { return gate_.drainRecords(); }

  private:
    MultiRack &rack_;
    ShardGate gate_;
};

} // namespace kona

#endif // KONA_RACK_PARALLEL_DRIVER_H
