#include "rack/parallel_driver.h"

#include <exception>
#include <thread>

namespace kona {

ParallelDriver::ParallelDriver(MultiRack &rack, unsigned threads)
    : rack_(rack),
      gate_(rack.runtimeCount(), threads,
            conservativeHorizon(rack.fabric().latency()))
{
    for (std::size_t i = 0; i < rack_.runtimeCount(); ++i)
        rack_.runtime(i).setShardGate(&gate_,
                                      static_cast<std::uint32_t>(i));
}

ParallelDriver::~ParallelDriver()
{
    for (std::size_t i = 0; i < rack_.runtimeCount(); ++i)
        rack_.runtime(i).setShardGate(nullptr);
}

void
ParallelDriver::run(
    const std::function<void(std::size_t, KonaRuntime &)> &program)
{
    std::size_t shards = rack_.runtimeCount();
    std::vector<std::exception_ptr> errors(shards);
    std::vector<std::thread> workers;
    workers.reserve(shards);
    for (std::size_t i = 0; i < shards; ++i) {
        workers.emplace_back([this, i, &program, &errors] {
            auto shard = static_cast<std::uint32_t>(i);
            gate_.beginShard(shard);
            try {
                program(i, rack_.runtime(i));
            } catch (...) {
                errors[i] = std::current_exception();
            }
            // endShard even on failure: a shard that silently
            // vanished would deadlock every waiter behind its bound.
            gate_.endShard(shard);
        });
    }
    for (std::thread &t : workers)
        t.join();
    for (std::exception_ptr &e : errors) {
        if (e)
            std::rethrow_exception(e);
    }
}

} // namespace kona
