#include "rack/memory_node.h"

#include "common/logging.h"

namespace kona {

MemoryNode::MemoryNode(Fabric &fabric, NodeId id, std::size_t capacity,
                       std::size_t logArea, MetricScope scope)
    : fabric_(fabric), id_(id), scope_(std::move(scope)),
      store_(std::make_unique<BackingStore>(capacity)),
      slabs_(logArea, capacity - logArea),
      linesReceived_(scope_.counter("lines_received")),
      logsRejected_(scope_.counter("logs_rejected")),
      unpackNs_(scope_.histogram("unpack_ns"))
{
    KONA_ASSERT(capacity > logArea,
                "memory node smaller than its log area");
    fabric_.attachNode(id_, store_.get());
    slabRegion_ = fabric_.registerRegion(id_, logArea,
                                         capacity - logArea);
    logRegion_ = fabric_.registerRegion(id_, 0, logArea);
}

std::optional<Addr>
MemoryNode::allocateSlab(std::size_t size)
{
    return slabs_.allocate(size, pageSize);
}

void
MemoryNode::freeSlab(Addr addr)
{
    slabs_.deallocate(addr);
}

LogReceiptStats
MemoryNode::receiveLog(Addr logOffset, std::size_t logBytes)
{
    KONA_ASSERT(logOffset + logBytes <= logRegion_.length,
                "log outside the landing area");
    LogReceiptStats stats;

    // Pull the serialized log out of the landing area, then distribute.
    std::vector<std::uint8_t> log(logBytes);
    store_->read(logRegion_.base + logOffset, log.data(), logBytes);

    const LatencyConfig &lat = fabric_.latency();
    stats.unpackNs += lat.logCrcPerKbNs *
                      static_cast<double>(logBytes) / 1024.0;

    // Pass 1: verify every record before applying anything. A corrupt
    // header can also destroy the framing of everything after it, so a
    // partially-applied log is never acceptable — NAK the whole thing
    // and let the sender retransmit.
    ClLogReader verify(log.data(), log.size());
    while (!verify.atEnd()) {
        ClLogEntryHeader header;
        const std::uint8_t *payload = nullptr;
        if (!verify.tryNext(header, payload) ||
            clLogRecordCrc(header.remoteAddr, header.lineCount,
                           payload) != header.crc) {
            stats.ok = false;
            stats.corruptRecords += 1;
            logsRejected_.add();
            warn("memory node ", id_, ": NAK corrupt CL log (",
                 logBytes, " bytes)");
            return stats;
        }
    }

    // Pass 2: the log checks out; distribute the lines home.
    ClLogReader reader(log.data(), log.size());
    while (!reader.atEnd()) {
        const std::uint8_t *payload = nullptr;
        ClLogEntryHeader header = reader.next(payload);
        store_->write(header.remoteAddr, payload,
                      static_cast<std::size_t>(header.lineCount) *
                          cacheLineSize);
        stats.runs += 1;
        stats.lines += header.lineCount;
        stats.unpackNs += lat.logUnpackPerLineNs * header.lineCount;
    }
    linesReceived_.add(stats.lines);
    unpackNs_.record(stats.unpackNs);
    return stats;
}

} // namespace kona
