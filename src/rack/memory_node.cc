#include "rack/memory_node.h"

#include "common/logging.h"

namespace kona {

MemoryNode::MemoryNode(Fabric &fabric, NodeId id, std::size_t capacity,
                       std::size_t logArea)
    : fabric_(fabric), id_(id),
      store_(std::make_unique<BackingStore>(capacity)),
      slabs_(logArea, capacity - logArea)
{
    KONA_ASSERT(capacity > logArea,
                "memory node smaller than its log area");
    fabric_.attachNode(id_, store_.get());
    slabRegion_ = fabric_.registerRegion(id_, logArea,
                                         capacity - logArea);
    logRegion_ = fabric_.registerRegion(id_, 0, logArea);
}

std::optional<Addr>
MemoryNode::allocateSlab(std::size_t size)
{
    return slabs_.allocate(size, pageSize);
}

void
MemoryNode::freeSlab(Addr addr)
{
    slabs_.deallocate(addr);
}

LogReceiptStats
MemoryNode::receiveLog(Addr logOffset, std::size_t logBytes)
{
    KONA_ASSERT(logOffset + logBytes <= logRegion_.length,
                "log outside the landing area");
    LogReceiptStats stats;

    // Pull the serialized log out of the landing area, then distribute.
    std::vector<std::uint8_t> log(logBytes);
    store_->read(logRegion_.base + logOffset, log.data(), logBytes);

    ClLogReader reader(log.data(), log.size());
    const LatencyConfig &lat = fabric_.latency();
    while (!reader.atEnd()) {
        const std::uint8_t *payload = nullptr;
        ClLogEntryHeader header = reader.next(payload);
        store_->write(header.remoteAddr, payload,
                      static_cast<std::size_t>(header.lineCount) *
                          cacheLineSize);
        stats.runs += 1;
        stats.lines += header.lineCount;
        stats.unpackNs += lat.logUnpackPerLineNs * header.lineCount;
    }
    linesReceived_ += stats.lines;
    return stats;
}

} // namespace kona
