/**
 * @file
 * MultiRack: a rack with several compute nodes running KonaRuntime
 * instances over one pool of shared memory nodes, kept coherent by a
 * Controller-hosted DirectoryService.
 *
 * This is the harness the coherence litmus suite and bench_coherence
 * run on: it wires one Fabric, one Controller, one FaultInjector (so
 * drops, gray degradation and partial partitions hit data AND
 * coherence traffic), N memory nodes and M compute nodes, attaches
 * every runtime to the directory, and maps named shared regions at
 * identical VFMem bases across all runtimes.
 */

#ifndef KONA_RACK_MULTI_RACK_H
#define KONA_RACK_MULTI_RACK_H

#include <memory>
#include <string>
#include <vector>

#include "coherence/directory.h"
#include "core/kona_runtime.h"
#include "net/fault_injector.h"
#include "rack/memory_node.h"

namespace kona {

/** Configuration of a multi-compute-node rack. */
struct MultiRackConfig
{
    std::size_t computeNodes = 2;
    std::size_t memoryNodes = 3;
    std::size_t memoryBytes = 64 * MiB;  ///< DRAM per memory node
    std::size_t slabSize = 1 * MiB;
    std::size_t logAreaBytes = 4 * MiB;

    /** Runtime configuration cloned into every compute node. */
    KonaConfig runtime;
    DirectoryConfig directory;

    std::uint64_t faultSeed = 0xfa17ULL;
};

/** N compute nodes + M memory nodes + directory, fully wired. */
class MultiRack
{
  public:
    /** First compute-node id; memory nodes are 1..memoryNodes. */
    static constexpr NodeId firstComputeNode = 101;

    explicit MultiRack(const MultiRackConfig &config = {},
                       MetricScope scope = {});

    /**
     * Map the named shared region into every runtime and return its
     * (identical) VFMem base. Fatal if the runtimes' windows diverge.
     */
    Addr mapShared(const std::string &name, std::size_t bytes);

    KonaRuntime &runtime(std::size_t i) { return *runtimes_.at(i); }
    std::size_t runtimeCount() const { return runtimes_.size(); }

    Fabric &fabric() { return fabric_; }
    Controller &controller() { return controller_; }
    DirectoryService &directory() { return *directory_; }
    FaultInjector &faults() { return faults_; }
    MemoryNode &memoryNode(std::size_t i) { return *nodes_.at(i); }
    std::size_t memoryNodeCount() const { return nodes_.size(); }

    /** The registry all rack components share. */
    const std::shared_ptr<MetricRegistry> &metrics() const
    {
        return scope_.registry();
    }

  private:
    MetricScope scope_;
    Fabric fabric_;
    Controller controller_;
    FaultInjector faults_;
    std::vector<std::unique_ptr<MemoryNode>> nodes_;
    std::unique_ptr<DirectoryService> directory_;
    std::vector<std::unique_ptr<KonaRuntime>> runtimes_;
};

} // namespace kona

#endif // KONA_RACK_MULTI_RACK_H
