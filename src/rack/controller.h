/**
 * @file
 * Controller: the centralized rack controller of §4.1. Memory nodes
 * register the pools they expose; compute-node Resource Managers ask
 * it for coarse-grained slabs off the application's critical path.
 *
 * The controller is also the rack's health authority (§4.5): compute
 * nodes report per-op outcomes, a run of consecutive failures marks a
 * node Failed, and rebuildReplicas() restores the configured redundancy
 * by re-replicating every slab the dead node held from its surviving
 * copies onto healthy nodes. Draining supports graceful decommission:
 * a Draining node takes no new slabs while evacuateNode() migrates its
 * existing ones away.
 */

#ifndef KONA_RACK_CONTROLLER_H
#define KONA_RACK_CONTROLLER_H

#include <optional>
#include <unordered_map>
#include <vector>

#include "common/types.h"
#include "rack/memory_node.h"
#include "telemetry/metric_registry.h"

namespace kona {

/** A slab grant handed to a compute node. */
struct SlabGrant
{
    SlabId slab = 0;
    RemoteAddr where;           ///< node + offset of the slab base
    std::size_t size = 0;
    std::uint32_t regionKey = 0; ///< RDMA key covering the slab
};

/** Controller-side view of a memory node's availability. */
enum class NodeHealth : std::uint8_t
{
    Healthy,  ///< taking traffic and new slabs
    Draining, ///< serving existing slabs; no new placements
    Failed,   ///< declared dead; data must be rebuilt elsewhere
};

/**
 * One translation entry's placement, lent to the controller for
 * rebuild/evacuation. The pointers alias the owner's (e.g.
 * RemoteTranslation's) live grants so the controller can rewrite
 * placements in place without the rack layer knowing about the FPGA.
 */
struct PlacementRef
{
    SlabGrant *primary = nullptr;
    std::vector<SlabGrant> *replicas = nullptr;
};

/** Outcome of one rebuild or evacuation sweep. */
struct RebuildReport
{
    std::uint64_t slabsScanned = 0;   ///< copies found on the lost node
    std::uint64_t slabsRebuilt = 0;   ///< replacement copies created
    std::uint64_t slabsLost = 0;      ///< no surviving copy existed
    std::uint64_t slabsUnrebuilt = 0; ///< survivors exist, no room to copy
    std::uint64_t primariesPromoted = 0; ///< replicas taking over primary
    std::uint64_t bytesCopied = 0;
};

/** Centralized slab allocator over the registered memory nodes. */
class Controller
{
  public:
    /** Default slab granularity; the paper uses large slabs. */
    static constexpr std::size_t defaultSlabSize = 4 * MiB;

    /** Consecutive op failures before a node is declared Failed. */
    static constexpr std::uint32_t defaultFailureThreshold = 5;

    /** @param scope Telemetry scope for the allocation/heal counters. */
    explicit Controller(std::size_t slabSize = defaultSlabSize,
                        MetricScope scope = {});

    /** A memory node exposes its pool to applications. */
    void registerNode(MemoryNode &node);

    /** Stop placing new slabs on @p node (decommission). */
    void removeNode(NodeId node);

    /**
     * Allocate one slab, preferring the healthy node with the most free
     * space (simple balancing). Fatal when the rack is out of memory.
     */
    SlabGrant allocateSlab();

    /**
     * Like allocateSlab but skips nodes in @p avoid (so a rebuilt copy
     * never lands next to another copy of the same data); returns
     * nullopt instead of dying when no eligible node has room.
     */
    std::optional<SlabGrant>
    allocateSlabAvoiding(const std::vector<NodeId> &avoid);

    /** Return a slab to its node. No-op if the node has failed. */
    void freeSlab(const SlabGrant &grant);

    /** The registered memory node @p id (fatal if unknown). */
    MemoryNode &node(NodeId id) const;

    /** Ids of every registered node (any health), unordered. */
    std::vector<NodeId> nodeIds() const;

    std::size_t slabSize() const { return slabSize_; }
    std::size_t nodeCount() const { return nodes_.size(); }
    std::size_t healthyNodeCount() const;
    std::uint64_t slabsAllocated() const
    {
        return slabsAllocated_.value();
    }

    /** Total free bytes across all healthy registered nodes. */
    std::size_t totalFree() const;

    // --- failure detection ------------------------------------------

    /** A compute node saw an op against @p node fail (drop/timeout). */
    void reportOpFailure(NodeId node);

    /** A compute node saw an op against @p node succeed. */
    void reportOpSuccess(NodeId node);

    /** Declare @p node dead immediately (e.g. fabric says it's down). */
    void markFailed(NodeId node);

    /** Stop new placements on @p node ahead of decommission. */
    void drainNode(NodeId node);

    NodeHealth health(NodeId node) const;

    /** Nodes newly declared Failed since the last call (clears them). */
    std::vector<NodeId> takeNewlyFailed();

    /** Whether takeNewlyFailed() would return anything (no copy). */
    bool hasNewlyFailed() const { return !newlyFailed_.empty(); }

    void setFailureThreshold(std::uint32_t n) { failureThreshold_ = n; }

    // --- self-healing -----------------------------------------------

    /**
     * Restore redundancy after @p lost failed permanently: for every
     * placement with a copy on the lost node, promote a surviving
     * replica to primary if the primary died, then create replacement
     * copies on healthy nodes (avoiding nodes that already hold a copy
     * of the same slab), copying the bytes from a survivor.
     */
    RebuildReport rebuildReplicas(NodeId lost,
                                  std::vector<PlacementRef> &placements);

    /**
     * Graceful decommission: migrate every copy held by the (live,
     * Draining) node @p node onto other healthy nodes, freeing the
     * originals, so the node can be removed without data loss.
     */
    RebuildReport evacuateNode(NodeId node,
                               std::vector<PlacementRef> &placements);

    std::uint64_t nodesFailed() const { return nodesFailed_.value(); }
    std::uint64_t slabsRebuilt() const { return slabsRebuilt_.value(); }
    std::uint64_t slabsLost() const { return slabsLost_.value(); }
    std::uint64_t bytesCopied() const { return bytesCopied_.value(); }

  private:
    RebuildReport migrate(NodeId from, bool sourceAlive,
                          std::vector<PlacementRef> &placements);

    /** Re-home one dead/draining copy; true on success. */
    bool rehomeCopy(SlabGrant &grant, const SlabGrant &source,
                    bool sourceAlive,
                    const std::vector<NodeId> &occupied,
                    RebuildReport &report);

    std::size_t slabSize_;
    MetricScope scope_;
    std::unordered_map<NodeId, MemoryNode *> nodes_;
    std::unordered_map<NodeId, NodeHealth> health_;
    std::unordered_map<NodeId, std::uint32_t> consecFailures_;
    std::vector<NodeId> newlyFailed_;
    std::uint32_t failureThreshold_ = defaultFailureThreshold;
    SlabId nextSlab_ = 1;
    Counter &slabsAllocated_;
    Counter &nodesFailed_;
    Counter &slabsRebuilt_;
    Counter &slabsLost_;
    Counter &bytesCopied_;
};

} // namespace kona

#endif // KONA_RACK_CONTROLLER_H
