/**
 * @file
 * Controller: the centralized rack controller of §4.1. Memory nodes
 * register the pools they expose; compute-node Resource Managers ask
 * it for coarse-grained slabs off the application's critical path.
 */

#ifndef KONA_RACK_CONTROLLER_H
#define KONA_RACK_CONTROLLER_H

#include <unordered_map>
#include <vector>

#include "common/types.h"
#include "rack/memory_node.h"

namespace kona {

/** A slab grant handed to a compute node. */
struct SlabGrant
{
    SlabId slab = 0;
    RemoteAddr where;           ///< node + offset of the slab base
    std::size_t size = 0;
    std::uint32_t regionKey = 0; ///< RDMA key covering the slab
};

/** Centralized slab allocator over the registered memory nodes. */
class Controller
{
  public:
    /** Default slab granularity; the paper uses large slabs. */
    static constexpr std::size_t defaultSlabSize = 4 * MiB;

    explicit Controller(std::size_t slabSize = defaultSlabSize);

    /** A memory node exposes its pool to applications. */
    void registerNode(MemoryNode &node);

    /** Stop placing new slabs on @p node (decommission). */
    void removeNode(NodeId node);

    /**
     * Allocate one slab, preferring the node with the most free space
     * (simple balancing). Fatal when the rack is out of memory.
     */
    SlabGrant allocateSlab();

    /** Return a slab to its node. */
    void freeSlab(const SlabGrant &grant);

    /** The registered memory node @p id (fatal if unknown). */
    MemoryNode &node(NodeId id) const;

    std::size_t slabSize() const { return slabSize_; }
    std::size_t nodeCount() const { return nodes_.size(); }
    std::uint64_t slabsAllocated() const { return slabsAllocated_; }

    /** Total free bytes across all registered nodes. */
    std::size_t totalFree() const;

  private:
    std::size_t slabSize_;
    std::unordered_map<NodeId, MemoryNode *> nodes_;
    SlabId nextSlab_ = 1;
    std::uint64_t slabsAllocated_ = 0;
};

} // namespace kona

#endif // KONA_RACK_CONTROLLER_H
