/**
 * @file
 * Controller: the centralized rack controller of §4.1. Memory nodes
 * register the pools they expose; compute-node Resource Managers ask
 * it for coarse-grained slabs off the application's critical path.
 *
 * The controller is also the rack's health authority (§4.5): compute
 * nodes report per-op outcomes, a run of consecutive failures marks a
 * node Failed, and rebuildReplicas() restores the configured redundancy
 * by re-replicating every slab the dead node held from its surviving
 * copies onto healthy nodes. Draining supports graceful decommission:
 * a Draining node takes no new slabs while evacuateNode() migrates its
 * existing ones away.
 */

#ifndef KONA_RACK_CONTROLLER_H
#define KONA_RACK_CONTROLLER_H

#include <atomic>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/types.h"
#include "policy/placement_policy.h"
#include "rack/memory_node.h"
#include "telemetry/event_journal.h"
#include "telemetry/metric_registry.h"

namespace kona {

class DirectoryService;

/** A slab grant handed to a compute node. */
struct SlabGrant
{
    SlabId slab = 0;
    RemoteAddr where;           ///< node + offset of the slab base
    std::size_t size = 0;
    std::uint32_t regionKey = 0; ///< RDMA key covering the slab
};

/**
 * Controller-side view of a memory node's availability. Gray failures
 * move a node along Healthy -> Suspect -> Quarantined -> Readmitted ->
 * Healthy driven by the health score; the planned states Draining and
 * Joining support graceful decommission and hot-add; Failed is the
 * fail-stop terminal state (rebuild elsewhere).
 */
enum class NodeHealth : std::uint8_t
{
    Healthy,     ///< taking traffic and new slabs
    Suspect,     ///< degraded score: reads hedge to replicas
    Quarantined, ///< no primary reads, no new placements; writes to
                 ///< existing copies continue so data stays current
    Readmitted,  ///< recovered from quarantine, on probation
    Joining,     ///< hot-added: being warmed/rebalanced onto; no
                 ///< primary traffic until the join completes
    Draining,    ///< serving existing slabs; no new placements
    Failed,      ///< declared dead; data must be rebuilt elsewhere
};

/**
 * Tunables of the EWMA health scorer. Per-op outcomes (success,
 * failure/timeout, NAK) fold into a badness EWMA and fetch latencies
 * into a latency EWMA; the score is the worse of the two, and
 * threshold crossings drive the membership state machine. Defaults are
 * deliberately conservative (minSamples keeps a short burst from
 * tripping transitions) so the fail-stop detector's consecutive-failure
 * threshold still fires first on a truly dead node.
 */
struct HealthPolicy
{
    double ewmaAlpha = 0.15;           ///< weight of a new observation
    double suspectThreshold = 0.5;     ///< score at/above -> Suspect
    double quarantineThreshold = 0.85; ///< Suspect score -> Quarantined
    double recoverThreshold = 0.15;    ///< score at/below -> recover
    Tick latencyBudgetNs = 40'000;     ///< fetch EWMA considered healthy
    double latencySlack = 4.0;         ///< budget multiple scoring 1.0
    std::uint32_t minSamples = 16;     ///< observations before moving
    std::uint32_t readmitProbation = 32; ///< clean ops to exit probation
};

/**
 * One translation entry's placement, lent to the controller for
 * rebuild/evacuation. The pointers alias the owner's (e.g.
 * RemoteTranslation's) live grants so the controller can rewrite
 * placements in place without the rack layer knowing about the FPGA.
 */
struct PlacementRef
{
    SlabGrant *primary = nullptr;
    std::vector<SlabGrant> *replicas = nullptr;
};

/** Outcome of one rebuild or evacuation sweep. */
struct RebuildReport
{
    std::uint64_t slabsScanned = 0;   ///< copies found on the lost node
    std::uint64_t slabsRebuilt = 0;   ///< replacement copies created
    std::uint64_t slabsLost = 0;      ///< no surviving copy existed
    std::uint64_t slabsUnrebuilt = 0; ///< survivors exist, no room to copy
    std::uint64_t primariesPromoted = 0; ///< replicas taking over primary
    std::uint64_t bytesCopied = 0;
};

/** Centralized slab allocator over the registered memory nodes. */
class Controller
{
  public:
    /** Default slab granularity; the paper uses large slabs. */
    static constexpr std::size_t defaultSlabSize = 4 * MiB;

    /** Consecutive op failures before a node is declared Failed. */
    static constexpr std::uint32_t defaultFailureThreshold = 5;

    /**
     * @param scope Telemetry scope for the allocation/heal counters.
     * @param placementPolicy Slab placement policy spec (free, first,
     *        rr, health — see src/policy/placement_policy.h).
     */
    explicit Controller(std::size_t slabSize = defaultSlabSize,
                        MetricScope scope = {},
                        const std::string &placementPolicy = "free");

    /** A memory node exposes its pool to applications. */
    void registerNode(MemoryNode &node);

    /** Stop placing new slabs on @p node (decommission). */
    void removeNode(NodeId node);

    /**
     * Allocate one slab as described by @p req: among the nodes that
     * take placements, have room, and are not in req.avoid, the
     * configured PlacementPolicy picks the target. req.pinTo bypasses
     * both the policy and the health filter (rebalance targets
     * Joining nodes). Returns nullopt when nothing fits — unless
     * req.required, which makes that fatal.
     */
    std::optional<SlabGrant> allocateSlab(const PlacementRequest &req);

    /** Swap the placement policy ("policy", no argument). */
    void setPlacementPolicy(const std::string &spec);

    /** Name of the active placement policy ("free", "rr"...). */
    std::string placementPolicyName() const
    {
        return placement_->name();
    }

    /** Return a slab to its node. No-op if the node has failed. */
    void freeSlab(const SlabGrant &grant);

    /** The registered memory node @p id (fatal if unknown). */
    MemoryNode &node(NodeId id) const;

    /** Ids of every registered node (any health), unordered. */
    std::vector<NodeId> nodeIds() const;

    std::size_t slabSize() const { return slabSize_; }
    std::size_t nodeCount() const { return nodes_.size(); }
    std::size_t healthyNodeCount() const;
    std::uint64_t slabsAllocated() const
    {
        return slabsAllocated_.value();
    }

    /** Total free bytes across all healthy registered nodes. */
    std::size_t totalFree() const;

    // --- failure detection ------------------------------------------

    /** A compute node saw an op against @p node fail (drop/timeout). */
    void reportOpFailure(NodeId node);

    /** A compute node saw an op against @p node succeed. */
    void reportOpSuccess(NodeId node);

    /** Declare @p node dead immediately (e.g. fabric says it's down). */
    void markFailed(NodeId node);

    /** Stop new placements on @p node ahead of decommission. */
    void drainNode(NodeId node);

    NodeHealth health(NodeId node) const;

    /** Nodes newly declared Failed since the last call (clears them). */
    std::vector<NodeId> takeNewlyFailed();

    /**
     * Whether takeNewlyFailed() would return anything. An atomic
     * mirror of the pending list: compute-node shards poll this once
     * per access without entering the gate, so the parallel engine
     * needs the read to be race-free against another shard's gated
     * markFailed()/takeNewlyFailed().
     */
    bool
    hasNewlyFailed() const
    {
        return newlyFailedFlag_.load(std::memory_order_acquire);
    }

    void setFailureThreshold(std::uint32_t n) { failureThreshold_ = n; }

    /**
     * Journal every membership event (health transitions, removals,
     * drain/join lifecycle) into @p journal. nullptr detaches.
     */
    void setJournal(EventJournal *journal) { journal_ = journal; }
    EventJournal *journal() const { return journal_; }

    /**
     * The inter-node coherence directory hosted at this controller
     * (§4.1 places rack-global metadata here). The controller does not
     * own the service; MultiRack wires it so compute nodes can find
     * the rack's directory through the controller they already hold.
     * nullptr on single-writer racks.
     */
    void hostDirectory(DirectoryService *directory)
    {
        directory_ = directory;
    }
    DirectoryService *directory() const { return directory_; }

    // --- gray-failure health scoring --------------------------------

    void setHealthPolicy(const HealthPolicy &p) { healthPolicy_ = p; }
    const HealthPolicy &healthPolicy() const { return healthPolicy_; }

    /** A demand fetch against @p node succeeded in @p latencyNs. */
    void observeFetch(NodeId node, Tick latencyNs);

    /** The receiver NAKed a payload to @p node (CRC failure). */
    void observeNak(NodeId node);

    /** An op against @p node timed out (counts like a failure). */
    void observeTimeout(NodeId node);

    /** Current [0, 1] health score of @p node (0 = pristine). */
    double healthScore(NodeId node) const;

    /**
     * Monotone epoch bumped on every membership transition. Consumers
     * (runtime, eviction, prefetch) compare epochs to notice that the
     * rack's shape changed under them.
     */
    std::uint64_t membershipEpoch() const { return membershipEpoch_; }

    /** Whether @p node may receive new slab placements. */
    bool
    takesPlacements(NodeId node) const
    {
        NodeHealth h = health(node);
        return h == NodeHealth::Healthy || h == NodeHealth::Readmitted;
    }

    /**
     * Whether reads should prefer another replica over @p node. True
     * for Suspect (hedge), Quarantined, Joining (not warmed yet) and
     * Failed nodes; Draining still serves its existing slabs.
     */
    bool
    avoidForReads(NodeId node) const
    {
        NodeHealth h = health(node);
        return h == NodeHealth::Suspect ||
               h == NodeHealth::Quarantined ||
               h == NodeHealth::Joining || h == NodeHealth::Failed;
    }

    // --- elastic membership -----------------------------------------

    /**
     * Hot-add: register @p node in the Joining state. It takes no
     * placements or primary reads until completeJoin(); warm it first
     * via rebalanceOnto().
     */
    void joinNode(MemoryNode &node);

    /** Promote a Joining node to Healthy (warm-up finished). */
    void completeJoin(NodeId node);

    /**
     * Warm a hot-added node: migrate copies from the most-loaded live
     * nodes onto @p target until it carries its fair share, copying
     * bytes control-plane and rewriting the placements in place (same
     * contract as rebuildReplicas/evacuateNode).
     */
    RebuildReport rebalanceOnto(NodeId target,
                                std::vector<PlacementRef> &placements);

    // --- self-healing -----------------------------------------------

    /**
     * Restore redundancy after @p lost failed permanently: for every
     * placement with a copy on the lost node, promote a surviving
     * replica to primary if the primary died, then create replacement
     * copies on healthy nodes (avoiding nodes that already hold a copy
     * of the same slab), copying the bytes from a survivor.
     */
    RebuildReport rebuildReplicas(NodeId lost,
                                  std::vector<PlacementRef> &placements);

    /**
     * Graceful decommission: migrate every copy held by the (live,
     * Draining) node @p node onto other healthy nodes, freeing the
     * originals, so the node can be removed without data loss.
     */
    RebuildReport evacuateNode(NodeId node,
                               std::vector<PlacementRef> &placements);

    std::uint64_t nodesFailed() const { return nodesFailed_.value(); }
    std::uint64_t slabsRebuilt() const { return slabsRebuilt_.value(); }
    std::uint64_t slabsLost() const { return slabsLost_.value(); }
    std::uint64_t bytesCopied() const { return bytesCopied_.value(); }
    std::uint64_t nodesSuspected() const
    {
        return nodesSuspected_.value();
    }
    std::uint64_t nodesQuarantined() const
    {
        return nodesQuarantined_.value();
    }
    std::uint64_t nodesReadmitted() const
    {
        return nodesReadmitted_.value();
    }

  private:
    /** EWMA state behind one node's health score. */
    struct HealthScore
    {
        double badness = 0.0;     ///< EWMA of bad-op indicators
        double latencyNs = 0.0;   ///< EWMA of demand-fetch latency
        std::uint64_t samples = 0;
        std::uint32_t probation = 0; ///< clean ops left in Readmitted
    };

    RebuildReport migrate(NodeId from, bool sourceAlive,
                          std::vector<PlacementRef> &placements);

    /** Re-home one dead/draining copy; true on success. */
    bool rehomeCopy(SlabGrant &grant, const SlabGrant &source,
                    bool sourceAlive,
                    const std::vector<NodeId> &occupied,
                    RebuildReport &report);

    /** Assemble the grant for a slab carved out of @p node. */
    SlabGrant grantFrom(MemoryNode *node);

    /** Fold one observation into @p node's score, then re-evaluate
     *  the membership state machine. */
    void recordSample(NodeId node, double badness,
                      std::optional<Tick> latencyNs);

    /** Score from the current EWMA state. */
    double scoreOf(const HealthScore &s) const;

    /** Move @p node to @p to, bumping the membership epoch. */
    void transition(NodeId node, NodeHealth to, const char *reason);

    std::size_t slabSize_;
    MetricScope scope_;
    std::unique_ptr<PlacementPolicy> placement_;
    /** Scratch for allocateSlab (parallel: candidateNodes_[i] backs
     *  candidates_[i]); members so repeated allocations reuse them. */
    std::vector<PlacementCandidate> candidates_;
    std::vector<MemoryNode *> candidateNodes_;
    std::unordered_map<NodeId, MemoryNode *> nodes_;
    std::unordered_map<NodeId, NodeHealth> health_;
    std::unordered_map<NodeId, std::uint32_t> consecFailures_;
    std::unordered_map<NodeId, HealthScore> scores_;
    std::vector<NodeId> newlyFailed_;
    std::atomic<bool> newlyFailedFlag_{false};
    std::uint32_t failureThreshold_ = defaultFailureThreshold;
    HealthPolicy healthPolicy_;
    std::uint64_t membershipEpoch_ = 1;
    SlabId nextSlab_ = 1;
    EventJournal *journal_ = nullptr;
    DirectoryService *directory_ = nullptr;
    Counter &slabsAllocated_;
    Counter &nodesFailed_;
    Counter &slabsRebuilt_;
    Counter &slabsLost_;
    Counter &bytesCopied_;
    Counter &nodesSuspected_;
    Counter &nodesQuarantined_;
    Counter &nodesReadmitted_;
    Counter &nodesJoined_;
    Gauge &epochGauge_;
};

} // namespace kona

#endif // KONA_RACK_CONTROLLER_H
