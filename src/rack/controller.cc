#include "rack/controller.h"

#include "common/logging.h"

namespace kona {

Controller::Controller(std::size_t slabSize) : slabSize_(slabSize)
{
    KONA_ASSERT(slabSize >= pageSize && slabSize % pageSize == 0,
                "slab size must be a positive multiple of the page size");
}

void
Controller::registerNode(MemoryNode &node)
{
    KONA_ASSERT(nodes_.count(node.id()) == 0, "node ", node.id(),
                " already registered");
    nodes_[node.id()] = &node;
}

void
Controller::removeNode(NodeId node)
{
    KONA_ASSERT(nodes_.erase(node) == 1, "unknown node ", node);
}

SlabGrant
Controller::allocateSlab()
{
    MemoryNode *best = nullptr;
    for (auto &[id, node] : nodes_) {
        if (node->bytesFree() < slabSize_)
            continue;
        if (best == nullptr || node->bytesFree() > best->bytesFree())
            best = node;
    }
    if (best == nullptr)
        fatal("rack out of disaggregated memory (", nodes_.size(),
              " nodes, need ", slabSize_, " bytes)");

    auto offset = best->allocateSlab(slabSize_);
    KONA_ASSERT(offset.has_value(), "node free-space accounting broke");

    SlabGrant grant;
    grant.slab = nextSlab_++;
    grant.where = {best->id(), *offset};
    grant.size = slabSize_;
    grant.regionKey = best->slabRegion().key;
    ++slabsAllocated_;
    return grant;
}

void
Controller::freeSlab(const SlabGrant &grant)
{
    auto it = nodes_.find(grant.where.node);
    KONA_ASSERT(it != nodes_.end(), "slab frees to unknown node ",
                grant.where.node);
    it->second->freeSlab(grant.where.offset);
}

MemoryNode &
Controller::node(NodeId id) const
{
    auto it = nodes_.find(id);
    if (it == nodes_.end())
        fatal("unknown memory node ", id);
    return *it->second;
}

std::size_t
Controller::totalFree() const
{
    std::size_t total = 0;
    for (const auto &[id, node] : nodes_)
        total += node->bytesFree();
    return total;
}

} // namespace kona
