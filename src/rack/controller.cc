#include "rack/controller.h"

#include <algorithm>
#include <utility>

#include "common/logging.h"

namespace kona {

Controller::Controller(std::size_t slabSize, MetricScope scope)
    : slabSize_(slabSize), scope_(std::move(scope)),
      slabsAllocated_(scope_.counter("slabs_allocated")),
      nodesFailed_(scope_.counter("nodes_failed")),
      slabsRebuilt_(scope_.counter("slabs_rebuilt")),
      slabsLost_(scope_.counter("slabs_lost")),
      bytesCopied_(scope_.counter("bytes_copied"))
{
    KONA_ASSERT(slabSize >= pageSize && slabSize % pageSize == 0,
                "slab size must be a positive multiple of the page size");
}

void
Controller::registerNode(MemoryNode &node)
{
    KONA_ASSERT(nodes_.count(node.id()) == 0, "node ", node.id(),
                " already registered");
    nodes_[node.id()] = &node;
}

void
Controller::removeNode(NodeId node)
{
    KONA_ASSERT(nodes_.erase(node) == 1, "unknown node ", node);
    health_.erase(node);
    consecFailures_.erase(node);
}

std::optional<SlabGrant>
Controller::allocateSlabAvoiding(const std::vector<NodeId> &avoid)
{
    MemoryNode *best = nullptr;
    for (auto &[id, node] : nodes_) {
        if (health(id) != NodeHealth::Healthy)
            continue;
        if (std::find(avoid.begin(), avoid.end(), id) != avoid.end())
            continue;
        if (node->bytesFree() < slabSize_)
            continue;
        if (best == nullptr || node->bytesFree() > best->bytesFree())
            best = node;
    }
    if (best == nullptr)
        return std::nullopt;

    auto offset = best->allocateSlab(slabSize_);
    KONA_ASSERT(offset.has_value(), "node free-space accounting broke");

    SlabGrant grant;
    grant.slab = nextSlab_++;
    grant.where = {best->id(), *offset};
    grant.size = slabSize_;
    grant.regionKey = best->slabRegion().key;
    slabsAllocated_.add();
    return grant;
}

SlabGrant
Controller::allocateSlab()
{
    auto grant = allocateSlabAvoiding({});
    if (!grant.has_value())
        fatal("rack out of disaggregated memory (", nodes_.size(),
              " nodes, need ", slabSize_, " bytes)");
    return *grant;
}

void
Controller::freeSlab(const SlabGrant &grant)
{
    // A failed node took its slabs' backing with it; there is nothing
    // left to return to the pool.
    if (health(grant.where.node) == NodeHealth::Failed)
        return;
    auto it = nodes_.find(grant.where.node);
    KONA_ASSERT(it != nodes_.end(), "slab frees to unknown node ",
                grant.where.node);
    it->second->freeSlab(grant.where.offset);
}

MemoryNode &
Controller::node(NodeId id) const
{
    auto it = nodes_.find(id);
    if (it == nodes_.end())
        fatal("unknown memory node ", id);
    return *it->second;
}

std::vector<NodeId>
Controller::nodeIds() const
{
    std::vector<NodeId> ids;
    ids.reserve(nodes_.size());
    for (const auto &[id, node] : nodes_)
        ids.push_back(id);
    return ids;
}

std::size_t
Controller::healthyNodeCount() const
{
    std::size_t n = 0;
    for (const auto &[id, node] : nodes_)
        n += health(id) == NodeHealth::Healthy ? 1 : 0;
    return n;
}

std::size_t
Controller::totalFree() const
{
    std::size_t total = 0;
    for (const auto &[id, node] : nodes_) {
        if (health(id) != NodeHealth::Failed)
            total += node->bytesFree();
    }
    return total;
}

void
Controller::reportOpFailure(NodeId node)
{
    if (health(node) == NodeHealth::Failed)
        return;
    if (++consecFailures_[node] >= failureThreshold_)
        markFailed(node);
}

void
Controller::reportOpSuccess(NodeId node)
{
    consecFailures_[node] = 0;
}

void
Controller::markFailed(NodeId node)
{
    if (health(node) == NodeHealth::Failed)
        return;
    health_[node] = NodeHealth::Failed;
    consecFailures_[node] = 0;
    newlyFailed_.push_back(node);
    nodesFailed_.add();
    warn("controller: memory node ", node, " declared failed");
}

void
Controller::drainNode(NodeId node)
{
    KONA_ASSERT(nodes_.count(node) == 1, "unknown node ", node);
    KONA_ASSERT(health(node) != NodeHealth::Failed,
                "cannot drain an already-failed node");
    health_[node] = NodeHealth::Draining;
    inform("controller: draining memory node ", node);
}

NodeHealth
Controller::health(NodeId node) const
{
    auto it = health_.find(node);
    return it == health_.end() ? NodeHealth::Healthy : it->second;
}

std::vector<NodeId>
Controller::takeNewlyFailed()
{
    return std::exchange(newlyFailed_, {});
}

RebuildReport
Controller::rebuildReplicas(NodeId lost,
                            std::vector<PlacementRef> &placements)
{
    markFailed(lost);
    RebuildReport report = migrate(lost, /*sourceAlive=*/false,
                                   placements);
    inform("controller: rebuild after node ", lost, " loss: ",
           report.slabsRebuilt, " rebuilt, ", report.primariesPromoted,
           " promoted, ", report.slabsLost, " lost, ",
           report.slabsUnrebuilt, " unrebuilt");
    return report;
}

RebuildReport
Controller::evacuateNode(NodeId node,
                         std::vector<PlacementRef> &placements)
{
    if (health(node) == NodeHealth::Healthy)
        drainNode(node);
    KONA_ASSERT(health(node) == NodeHealth::Draining,
                "evacuating a node that is not draining");
    RebuildReport report = migrate(node, /*sourceAlive=*/true,
                                   placements);
    inform("controller: evacuated node ", node, ": ",
           report.slabsRebuilt, " slabs migrated, ",
           report.slabsUnrebuilt, " stuck");
    return report;
}

RebuildReport
Controller::migrate(NodeId from, bool sourceAlive,
                    std::vector<PlacementRef> &placements)
{
    RebuildReport report;
    for (PlacementRef &p : placements) {
        KONA_ASSERT(p.primary != nullptr && p.replicas != nullptr,
                    "placement ref without grants");
        std::vector<SlabGrant *> copies;
        copies.push_back(p.primary);
        for (SlabGrant &r : *p.replicas)
            copies.push_back(&r);

        auto onFrom = [from](const SlabGrant *g) {
            return g->where.node == from;
        };
        if (std::none_of(copies.begin(), copies.end(), onFrom))
            continue;

        // If the primary died with the node, a surviving replica takes
        // over as primary before anything is copied.
        if (onFrom(p.primary) && !sourceAlive) {
            SlabGrant *survivor = nullptr;
            for (SlabGrant &r : *p.replicas) {
                if (r.where.node != from &&
                    health(r.where.node) != NodeHealth::Failed) {
                    survivor = &r;
                    break;
                }
            }
            if (survivor == nullptr) {
                // Every copy died with the node: the data is gone.
                report.slabsScanned += 1;
                report.slabsLost += 1;
                slabsLost_.add();
                warn("slab ", p.primary->slab,
                     " lost with node ", from, ": no surviving copy");
                continue;
            }
            std::swap(*p.primary, *survivor);
            report.primariesPromoted += 1;
        }

        for (SlabGrant *g : copies) {
            if (!onFrom(g))
                continue;
            report.slabsScanned += 1;

            // Source of truth for the new copy: the grant itself when
            // the node is merely draining, else any surviving copy.
            const SlabGrant *source = nullptr;
            if (sourceAlive) {
                source = g;
            } else {
                for (SlabGrant *s : copies) {
                    if (s != g && s->where.node != from &&
                        health(s->where.node) != NodeHealth::Failed) {
                        source = s;
                        break;
                    }
                }
            }
            if (source == nullptr) {
                report.slabsLost += 1;
                slabsLost_.add();
                continue;
            }

            // Never co-locate two copies of the same slab.
            std::vector<NodeId> occupied{from};
            for (SlabGrant *s : copies) {
                if (s != g)
                    occupied.push_back(s->where.node);
            }
            rehomeCopy(*g, *source, sourceAlive, occupied, report);
        }
    }
    return report;
}

bool
Controller::rehomeCopy(SlabGrant &grant, const SlabGrant &source,
                       bool sourceAlive,
                       const std::vector<NodeId> &occupied,
                       RebuildReport &report)
{
    auto replacement = allocateSlabAvoiding(occupied);
    if (!replacement.has_value()) {
        report.slabsUnrebuilt += 1;
        warn("no healthy node has room to re-home slab ", grant.slab,
             "; redundancy stays degraded");
        return false;
    }

    // Control-plane copy between the nodes' stores; the simulation does
    // not charge application time for background rebuild traffic.
    std::vector<std::uint8_t> bytes(grant.size);
    node(source.where.node).store().read(source.where.offset,
                                         bytes.data(), bytes.size());
    node(replacement->where.node).store().write(replacement->where.offset,
                                                bytes.data(),
                                                bytes.size());
    if (sourceAlive)
        node(grant.where.node).freeSlab(grant.where.offset);

    replacement->slab = grant.slab;  // identity follows the data
    replacement->size = grant.size;
    grant = *replacement;
    report.slabsRebuilt += 1;
    report.bytesCopied += bytes.size();
    slabsRebuilt_.add();
    bytesCopied_.add(bytes.size());
    return true;
}

} // namespace kona
