#include "rack/controller.h"

#include <algorithm>
#include <utility>

#include "common/logging.h"

namespace kona {

Controller::Controller(std::size_t slabSize, MetricScope scope,
                       const std::string &placementPolicy)
    : slabSize_(slabSize), scope_(std::move(scope)),
      placement_(makePlacementPolicy(placementPolicy)),
      slabsAllocated_(scope_.counter("slabs_allocated")),
      nodesFailed_(scope_.counter("nodes_failed")),
      slabsRebuilt_(scope_.counter("slabs_rebuilt")),
      slabsLost_(scope_.counter("slabs_lost")),
      bytesCopied_(scope_.counter("bytes_copied")),
      nodesSuspected_(scope_.counter("nodes_suspected")),
      nodesQuarantined_(scope_.counter("nodes_quarantined")),
      nodesReadmitted_(scope_.counter("nodes_readmitted")),
      nodesJoined_(scope_.counter("nodes_joined")),
      epochGauge_(scope_.gauge("membership_epoch"))
{
    epochGauge_.set(static_cast<double>(membershipEpoch_));
    KONA_ASSERT(slabSize >= pageSize && slabSize % pageSize == 0,
                "slab size must be a positive multiple of the page size");
}

void
Controller::registerNode(MemoryNode &node)
{
    KONA_ASSERT(nodes_.count(node.id()) == 0, "node ", node.id(),
                " already registered");
    nodes_[node.id()] = &node;
}

void
Controller::removeNode(NodeId node)
{
    KONA_ASSERT(nodes_.erase(node) == 1, "unknown node ", node);
    health_.erase(node);
    consecFailures_.erase(node);
    scores_.erase(node);
    ++membershipEpoch_;
    epochGauge_.set(static_cast<double>(membershipEpoch_));
    if (journal_ != nullptr)
        journal_->record(JournalKind::NodeRemoved, node, 0, 0,
                         membershipEpoch_);
}

SlabGrant
Controller::grantFrom(MemoryNode *node)
{
    auto offset = node->allocateSlab(slabSize_);
    KONA_ASSERT(offset.has_value(), "node free-space accounting broke");
    SlabGrant grant;
    grant.slab = nextSlab_++;
    grant.where = {node->id(), *offset};
    grant.size = slabSize_;
    grant.regionKey = node->slabRegion().key;
    slabsAllocated_.add();
    return grant;
}

std::optional<SlabGrant>
Controller::allocateSlab(const PlacementRequest &req)
{
    MemoryNode *chosen = nullptr;
    if (req.pinTo.has_value()) {
        // Pinned placement (rebalance target): bypasses the policy
        // and the health filter — a Joining node must be able to
        // receive slabs before it takes traffic.
        auto it = nodes_.find(*req.pinTo);
        KONA_ASSERT(it != nodes_.end(), "unknown node ", *req.pinTo);
        if (it->second->bytesFree() >= slabSize_)
            chosen = it->second;
    } else {
        candidates_.clear();
        candidateNodes_.clear();
        for (auto &[id, node] : nodes_) {
            if (!takesPlacements(id))
                continue;
            if (std::find(req.avoid.begin(), req.avoid.end(), id) !=
                req.avoid.end())
                continue;
            if (node->bytesFree() < slabSize_)
                continue;
            auto sit = scores_.find(id);
            candidates_.push_back(
                {id, node->bytesFree(),
                 sit == scores_.end() ? 0.0 : scoreOf(sit->second),
                 health(id) == NodeHealth::Readmitted});
            candidateNodes_.push_back(node);
        }
        if (!candidates_.empty()) {
            std::size_t picked = placement_->choose(
                candidates_.data(), candidates_.size(), req);
            KONA_ASSERT(picked < candidates_.size(),
                        "placement policy picked out of range");
            chosen = candidateNodes_[picked];
        }
    }
    if (chosen == nullptr) {
        if (req.required)
            fatal("rack out of disaggregated memory (", nodes_.size(),
                  " nodes, need ", slabSize_, " bytes)");
        return std::nullopt;
    }
    return grantFrom(chosen);
}

void
Controller::setPlacementPolicy(const std::string &spec)
{
    placement_ = makePlacementPolicy(spec);
}

void
Controller::freeSlab(const SlabGrant &grant)
{
    // A failed node took its slabs' backing with it; there is nothing
    // left to return to the pool.
    if (health(grant.where.node) == NodeHealth::Failed)
        return;
    auto it = nodes_.find(grant.where.node);
    KONA_ASSERT(it != nodes_.end(), "slab frees to unknown node ",
                grant.where.node);
    it->second->freeSlab(grant.where.offset);
}

MemoryNode &
Controller::node(NodeId id) const
{
    auto it = nodes_.find(id);
    if (it == nodes_.end())
        fatal("unknown memory node ", id);
    return *it->second;
}

std::vector<NodeId>
Controller::nodeIds() const
{
    std::vector<NodeId> ids;
    ids.reserve(nodes_.size());
    for (const auto &[id, node] : nodes_)
        ids.push_back(id);
    return ids;
}

std::size_t
Controller::healthyNodeCount() const
{
    std::size_t n = 0;
    for (const auto &[id, node] : nodes_)
        n += takesPlacements(id) ? 1 : 0;
    return n;
}

std::size_t
Controller::totalFree() const
{
    std::size_t total = 0;
    for (const auto &[id, node] : nodes_) {
        if (health(id) != NodeHealth::Failed)
            total += node->bytesFree();
    }
    return total;
}

void
Controller::reportOpFailure(NodeId node)
{
    if (health(node) == NodeHealth::Failed)
        return;
    if (++consecFailures_[node] >= failureThreshold_) {
        markFailed(node);
        return;
    }
    recordSample(node, 1.0, std::nullopt);
}

void
Controller::reportOpSuccess(NodeId node)
{
    consecFailures_[node] = 0;
    recordSample(node, 0.0, std::nullopt);
}

void
Controller::observeFetch(NodeId node, Tick latencyNs)
{
    recordSample(node, 0.0, latencyNs);
}

void
Controller::observeNak(NodeId node)
{
    // A NAK is softer evidence than a timeout: the node answered, the
    // payload just failed its end-to-end check.
    recordSample(node, 0.75, std::nullopt);
}

void
Controller::observeTimeout(NodeId node)
{
    recordSample(node, 1.0, std::nullopt);
}

double
Controller::scoreOf(const HealthScore &s) const
{
    const HealthPolicy &p = healthPolicy_;
    double latencyScore = 0.0;
    double budget = static_cast<double>(p.latencyBudgetNs);
    if (budget > 0.0 && s.latencyNs > budget && p.latencySlack > 1.0) {
        latencyScore = std::min(
            1.0, (s.latencyNs / budget - 1.0) / (p.latencySlack - 1.0));
    }
    return std::max(s.badness, latencyScore);
}

double
Controller::healthScore(NodeId node) const
{
    auto it = scores_.find(node);
    return it == scores_.end() ? 0.0 : scoreOf(it->second);
}

void
Controller::recordSample(NodeId node, double badness,
                         std::optional<Tick> latencyNs)
{
    NodeHealth h = health(node);
    if (h == NodeHealth::Failed)
        return;

    const HealthPolicy &p = healthPolicy_;
    HealthScore &s = scores_[node];
    s.badness += p.ewmaAlpha * (badness - s.badness);
    if (latencyNs.has_value()) {
        s.latencyNs += p.ewmaAlpha *
                       (static_cast<double>(*latencyNs) - s.latencyNs);
    }
    ++s.samples;
    if (s.samples < p.minSamples)
        return;

    double score = scoreOf(s);
    switch (h) {
    case NodeHealth::Healthy:
        if (score >= p.suspectThreshold) {
            nodesSuspected_.add();
            transition(node, NodeHealth::Suspect, "score degraded");
        }
        break;
    case NodeHealth::Suspect:
        if (score >= p.quarantineThreshold) {
            nodesQuarantined_.add();
            transition(node, NodeHealth::Quarantined,
                       "score collapsed");
        } else if (score <= p.recoverThreshold) {
            transition(node, NodeHealth::Healthy, "score recovered");
        }
        break;
    case NodeHealth::Quarantined:
        if (score <= p.recoverThreshold) {
            s.probation = p.readmitProbation;
            nodesReadmitted_.add();
            transition(node, NodeHealth::Readmitted,
                       "score recovered; on probation");
        }
        break;
    case NodeHealth::Readmitted:
        if (badness >= 1.0) {
            nodesSuspected_.add();
            transition(node, NodeHealth::Suspect,
                       "failed while on probation");
        } else if (s.probation > 0 && --s.probation == 0) {
            transition(node, NodeHealth::Healthy, "probation served");
        }
        break;
    case NodeHealth::Joining:
    case NodeHealth::Draining:
    case NodeHealth::Failed:
        break; // planned/terminal states: not score-driven
    }
}

void
Controller::transition(NodeId node, NodeHealth to, const char *reason)
{
    const NodeHealth from = health(node);
    health_[node] = to;
    ++membershipEpoch_;
    epochGauge_.set(static_cast<double>(membershipEpoch_));
    if (journal_ != nullptr) {
        journal_->record(JournalKind::HealthTransition, node,
                         static_cast<std::uint64_t>(from),
                         static_cast<std::uint64_t>(to),
                         membershipEpoch_);
    }
    static const char *names[] = {"healthy",     "suspect",
                                  "quarantined", "readmitted",
                                  "joining",     "draining",
                                  "failed"};
    inform("controller: node ", node, " -> ",
           names[static_cast<std::size_t>(to)], " (", reason,
           "), epoch ", membershipEpoch_);
}

void
Controller::markFailed(NodeId node)
{
    if (health(node) == NodeHealth::Failed)
        return;
    consecFailures_[node] = 0;
    scores_.erase(node);
    newlyFailed_.push_back(node);
    newlyFailedFlag_.store(true, std::memory_order_release);
    nodesFailed_.add();
    transition(node, NodeHealth::Failed, "declared dead");
    warn("controller: memory node ", node, " declared failed");
}

void
Controller::drainNode(NodeId node)
{
    KONA_ASSERT(nodes_.count(node) == 1, "unknown node ", node);
    KONA_ASSERT(health(node) != NodeHealth::Failed,
                "cannot drain an already-failed node");
    transition(node, NodeHealth::Draining, "operator drain");
    if (journal_ != nullptr)
        journal_->record(JournalKind::DrainStart, node, 0, 0,
                         membershipEpoch_);
    inform("controller: draining memory node ", node);
}

void
Controller::joinNode(MemoryNode &node)
{
    registerNode(node);
    nodesJoined_.add();
    transition(node.id(), NodeHealth::Joining, "hot-add");
    if (journal_ != nullptr)
        journal_->record(JournalKind::JoinStart, node.id(), 0, 0,
                         membershipEpoch_);
}

void
Controller::completeJoin(NodeId node)
{
    KONA_ASSERT(health(node) == NodeHealth::Joining,
                "completeJoin on a node that is not joining");
    scores_[node] = {};
    transition(node, NodeHealth::Healthy, "warm-up complete");
    if (journal_ != nullptr)
        journal_->record(JournalKind::JoinComplete, node, 0, 0,
                         membershipEpoch_);
}

NodeHealth
Controller::health(NodeId node) const
{
    auto it = health_.find(node);
    return it == health_.end() ? NodeHealth::Healthy : it->second;
}

std::vector<NodeId>
Controller::takeNewlyFailed()
{
    newlyFailedFlag_.store(false, std::memory_order_release);
    return std::exchange(newlyFailed_, {});
}

RebuildReport
Controller::rebuildReplicas(NodeId lost,
                            std::vector<PlacementRef> &placements)
{
    markFailed(lost);
    RebuildReport report = migrate(lost, /*sourceAlive=*/false,
                                   placements);
    inform("controller: rebuild after node ", lost, " loss: ",
           report.slabsRebuilt, " rebuilt, ", report.primariesPromoted,
           " promoted, ", report.slabsLost, " lost, ",
           report.slabsUnrebuilt, " unrebuilt");
    return report;
}

RebuildReport
Controller::evacuateNode(NodeId node,
                         std::vector<PlacementRef> &placements)
{
    if (health(node) == NodeHealth::Healthy)
        drainNode(node);
    KONA_ASSERT(health(node) == NodeHealth::Draining,
                "evacuating a node that is not draining");
    RebuildReport report = migrate(node, /*sourceAlive=*/true,
                                   placements);
    inform("controller: evacuated node ", node, ": ",
           report.slabsRebuilt, " slabs migrated, ",
           report.slabsUnrebuilt, " stuck");
    return report;
}

RebuildReport
Controller::migrate(NodeId from, bool sourceAlive,
                    std::vector<PlacementRef> &placements)
{
    RebuildReport report;
    for (PlacementRef &p : placements) {
        KONA_ASSERT(p.primary != nullptr && p.replicas != nullptr,
                    "placement ref without grants");
        std::vector<SlabGrant *> copies;
        copies.push_back(p.primary);
        for (SlabGrant &r : *p.replicas)
            copies.push_back(&r);

        auto onFrom = [from](const SlabGrant *g) {
            return g->where.node == from;
        };
        if (std::none_of(copies.begin(), copies.end(), onFrom))
            continue;

        // If the primary died with the node, a surviving replica takes
        // over as primary before anything is copied.
        if (onFrom(p.primary) && !sourceAlive) {
            SlabGrant *survivor = nullptr;
            for (SlabGrant &r : *p.replicas) {
                if (r.where.node != from &&
                    health(r.where.node) != NodeHealth::Failed) {
                    survivor = &r;
                    break;
                }
            }
            if (survivor == nullptr) {
                // Every copy died with the node: the data is gone.
                report.slabsScanned += 1;
                report.slabsLost += 1;
                slabsLost_.add();
                warn("slab ", p.primary->slab,
                     " lost with node ", from, ": no surviving copy");
                continue;
            }
            std::swap(*p.primary, *survivor);
            report.primariesPromoted += 1;
        }

        for (SlabGrant *g : copies) {
            if (!onFrom(g))
                continue;
            report.slabsScanned += 1;

            // Source of truth for the new copy: the grant itself when
            // the node is merely draining, else any surviving copy.
            const SlabGrant *source = nullptr;
            if (sourceAlive) {
                source = g;
            } else {
                for (SlabGrant *s : copies) {
                    if (s != g && s->where.node != from &&
                        health(s->where.node) != NodeHealth::Failed) {
                        source = s;
                        break;
                    }
                }
            }
            if (source == nullptr) {
                report.slabsLost += 1;
                slabsLost_.add();
                continue;
            }

            // Never co-locate two copies of the same slab.
            std::vector<NodeId> occupied{from};
            for (SlabGrant *s : copies) {
                if (s != g)
                    occupied.push_back(s->where.node);
            }
            rehomeCopy(*g, *source, sourceAlive, occupied, report);
        }
    }
    return report;
}

RebuildReport
Controller::rebalanceOnto(NodeId target,
                          std::vector<PlacementRef> &placements)
{
    KONA_ASSERT(nodes_.count(target) == 1, "unknown node ", target);
    RebuildReport report;

    // Flatten every copy, tallying the per-node load (copies are
    // uniform slabs, so a count is a byte load).
    std::vector<SlabGrant *> copies;
    std::vector<const PlacementRef *> owner;
    std::unordered_map<NodeId, std::size_t> load;
    for (const PlacementRef &p : placements) {
        KONA_ASSERT(p.primary != nullptr && p.replicas != nullptr,
                    "placement ref without grants");
        copies.push_back(p.primary);
        owner.push_back(&p);
        for (SlabGrant &r : *p.replicas) {
            copies.push_back(&r);
            owner.push_back(&p);
        }
    }
    for (SlabGrant *g : copies)
        ++load[g->where.node];

    std::size_t liveNodes = 0;
    for (const auto &[id, node] : nodes_)
        liveNodes += health(id) != NodeHealth::Failed ? 1 : 0;
    std::size_t fairShare =
        liveNodes == 0 ? 0 : copies.size() / liveNodes;

    // Repeatedly move one copy from the most-loaded donor until the
    // target carries its fair share (or no donor can give one up).
    while (load[target] < fairShare) {
        NodeId donor = target;
        std::size_t donorLoad = 0;
        for (const auto &[id, n] : load) {
            if (id != target && n > donorLoad &&
                health(id) != NodeHealth::Failed) {
                donor = id;
                donorLoad = n;
            }
        }
        if (donor == target || donorLoad <= load[target] + 1)
            break;   // nothing left worth moving

        // Pick a donor copy whose siblings avoid the target (never
        // co-locate two copies of the same slab).
        SlabGrant *pick = nullptr;
        for (std::size_t i = 0; i < copies.size(); ++i) {
            if (copies[i]->where.node != donor)
                continue;
            bool siblingOnTarget =
                owner[i]->primary->where.node == target;
            for (const SlabGrant &r : *owner[i]->replicas)
                siblingOnTarget |= r.where.node == target;
            if (!siblingOnTarget) {
                pick = copies[i];
                break;
            }
        }
        if (pick == nullptr) {
            // Every copy on this donor has a sibling on the target;
            // a second donor cannot fix that, stop here.
            break;
        }

        auto replacement = allocateSlab({.pinTo = target});
        if (!replacement.has_value()) {
            report.slabsUnrebuilt += 1;
            break;   // target is full: the rebalance is as far as it goes
        }
        report.slabsScanned += 1;
        std::vector<std::uint8_t> bytes(pick->size);
        node(pick->where.node)
            .store()
            .read(pick->where.offset, bytes.data(), bytes.size());
        node(target).store().write(replacement->where.offset,
                                   bytes.data(), bytes.size());
        node(pick->where.node).freeSlab(pick->where.offset);
        replacement->slab = pick->slab;   // identity follows the data
        replacement->size = pick->size;
        *pick = *replacement;
        --load[donor];
        ++load[target];
        report.slabsRebuilt += 1;
        report.bytesCopied += bytes.size();
        slabsRebuilt_.add();
        bytesCopied_.add(bytes.size());
    }
    inform("controller: rebalanced ", report.slabsRebuilt,
           " slab(s) onto node ", target);
    return report;
}

bool
Controller::rehomeCopy(SlabGrant &grant, const SlabGrant &source,
                       bool sourceAlive,
                       const std::vector<NodeId> &occupied,
                       RebuildReport &report)
{
    auto replacement = allocateSlab({.avoid = occupied});
    if (!replacement.has_value()) {
        report.slabsUnrebuilt += 1;
        warn("no healthy node has room to re-home slab ", grant.slab,
             "; redundancy stays degraded");
        return false;
    }

    // Control-plane copy between the nodes' stores; the simulation does
    // not charge application time for background rebuild traffic.
    std::vector<std::uint8_t> bytes(grant.size);
    node(source.where.node).store().read(source.where.offset,
                                         bytes.data(), bytes.size());
    node(replacement->where.node).store().write(replacement->where.offset,
                                                bytes.data(),
                                                bytes.size());
    if (sourceAlive)
        node(grant.where.node).freeSlab(grant.where.offset);

    replacement->slab = grant.slab;  // identity follows the data
    replacement->size = grant.size;
    grant = *replacement;
    report.slabsRebuilt += 1;
    report.bytesCopied += bytes.size();
    slabsRebuilt_.add();
    bytesCopied_.add(bytes.size());
    return true;
}

} // namespace kona
