/**
 * @file
 * MemoryNode: a disaggregated memory server. It owns DRAM, registers a
 * pool with the rack Controller, carves that pool into slabs on demand,
 * and runs the Cache-line Log Receiver that unpacks CL logs shipped by
 * compute nodes and distributes the lines to their home addresses.
 */

#ifndef KONA_RACK_MEMORY_NODE_H
#define KONA_RACK_MEMORY_NODE_H

#include <memory>

#include "common/latency.h"
#include "common/sim_clock.h"
#include "mem/backing_store.h"
#include "mem/region_allocator.h"
#include "net/fabric.h"
#include "rack/cl_log.h"
#include "telemetry/metric_registry.h"

namespace kona {

/** Result of unpacking one CL log on the memory node. */
struct LogReceiptStats
{
    bool ok = true;         ///< false = log NAKed, no line was applied
    std::uint64_t runs = 0;
    std::uint64_t lines = 0;
    std::uint64_t corruptRecords = 0;  ///< CRC or framing failures seen
    double unpackNs = 0.0;  ///< receiver-thread time to verify+distribute
};

/** A memory server in the rack. */
class MemoryNode
{
  public:
    /**
     * @param fabric The rack network this node attaches to.
     * @param id Node identifier (must be unique on the fabric).
     * @param capacity DRAM capacity in bytes.
     * @param logArea Bytes reserved at offset 0 for incoming CL logs.
     * @param scope Telemetry scope for the receiver counters and the
     *              per-log "unpack_ns" histogram.
     */
    MemoryNode(Fabric &fabric, NodeId id, std::size_t capacity,
               std::size_t logArea = 4 * MiB, MetricScope scope = {});

    NodeId id() const { return id_; }
    std::size_t capacity() const { return store_->capacity(); }
    BackingStore &store() { return *store_; }

    /** RDMA registration of the whole slab area (one-time setup). */
    const MemoryRegion &slabRegion() const { return slabRegion_; }

    /**
     * RDMA registration of the log landing area. The pipelined
     * eviction engine carves this into a ring of equal slots (one
     * in-flight CL log per slot); a sender with depth N writes slot
     * k's log at logRegion().base + k * logSlotBytes(N) and calls
     * receiveLog with the matching offset.
     */
    const MemoryRegion &logRegion() const { return logRegion_; }

    /** Bytes of one landing-area ring slot when carved into @p slots. */
    std::size_t
    logSlotBytes(std::size_t slots) const
    {
        KONA_ASSERT(slots > 0, "log ring needs >= 1 slot");
        std::size_t bytes = logRegion_.length / slots;
        KONA_ASSERT(bytes > 0, "log landing area too small for ", slots,
                    " ring slots");
        return bytes;
    }

    /** Carve a slab of @p size bytes; nullopt when the pool is full. */
    std::optional<Addr> allocateSlab(std::size_t size);

    /** Return a slab to the pool. */
    void freeSlab(Addr addr);

    std::size_t bytesInUse() const { return slabs_.bytesInUse(); }
    std::size_t bytesFree() const { return slabs_.bytesFree(); }

    /**
     * Cache-line Log Receiver: parse the log that a compute node just
     * RDMA-wrote into [logRegion().base + logOffset, +logBytes) and
     * write every line to its home address. Models the receiver
     * thread's per-line cost.
     *
     * Integrity: every record's CRC32 is verified BEFORE any line of
     * the log is applied. A mismatch (or unparseable framing) NAKs the
     * whole log — stats.ok is false, remote memory is untouched, and
     * the sender is expected to retransmit.
     */
    LogReceiptStats receiveLog(Addr logOffset, std::size_t logBytes);

    std::uint64_t linesReceived() const { return linesReceived_.value(); }
    std::uint64_t logsRejected() const { return logsRejected_.value(); }

  private:
    Fabric &fabric_;
    NodeId id_;
    MetricScope scope_;
    std::unique_ptr<BackingStore> store_;
    RegionAllocator slabs_;
    MemoryRegion slabRegion_;
    MemoryRegion logRegion_;
    Counter &linesReceived_;
    Counter &logsRejected_;
    LatencyHistogram &unpackNs_;
};

} // namespace kona

#endif // KONA_RACK_MEMORY_NODE_H
