/**
 * @file
 * MultiRack wiring. Order matters: memory nodes attach to the fabric
 * before the directory (whose mailboxes claim node ids) and before
 * the runtimes (whose FPGAs open queue pairs to the memory nodes).
 */

#include "rack/multi_rack.h"

#include "common/logging.h"

namespace kona {

MultiRack::MultiRack(const MultiRackConfig &config, MetricScope scope)
    : scope_(std::move(scope)),
      fabric_(LatencyConfig{}, scope_.sub("fabric")),
      controller_(config.slabSize, scope_.sub("rack")),
      faults_(config.faultSeed, scope_.sub("faults"))
{
    KONA_ASSERT(config.computeNodes >= 1, "need at least one compute node");
    KONA_ASSERT(config.memoryNodes >= 1, "need at least one memory node");
    KONA_ASSERT(config.directory.directoryNode > config.memoryNodes &&
                    (config.directory.directoryNode < firstComputeNode ||
                     config.directory.directoryNode >=
                         firstComputeNode + config.computeNodes),
                "directory node id collides with rack nodes");

    // Fault model first so even setup traffic is subject to it once
    // callers script profiles; it injects nothing until configured.
    fabric_.setFaultInjector(&faults_);

    for (NodeId id = 1; id <= config.memoryNodes; ++id) {
        nodes_.push_back(std::make_unique<MemoryNode>(
            fabric_, id, config.memoryBytes, config.logAreaBytes,
            scope_.sub("rack.node" + std::to_string(id))));
        controller_.registerNode(*nodes_.back());
    }

    directory_ = std::make_unique<DirectoryService>(
        fabric_, controller_, config.directory, scope_.sub("dir"));

    for (std::size_t i = 0; i < config.computeNodes; ++i) {
        NodeId id = firstComputeNode + static_cast<NodeId>(i);
        // Runtimes self-prefix their scope with "cn<id>", so sharing
        // the rack registry is collision-free by construction.
        runtimes_.push_back(std::make_unique<KonaRuntime>(
            fabric_, controller_, id, config.runtime,
            scope_.sub("kona")));
        runtimes_.back()->attachCoherence(*directory_);
    }
}

Addr
MultiRack::mapShared(const std::string &name, std::size_t bytes)
{
    Addr base = invalidAddr;
    for (auto &rt : runtimes_) {
        Addr b = rt->mapSharedRegion(name, bytes);
        if (base == invalidAddr) {
            base = b;
        } else if (b != base) {
            fatal("shared region '", name, "' mapped at diverging "
                  "VFMem bases (", base, " vs ", b,
                  "); configure the runtimes identically");
        }
    }
    return base;
}

} // namespace kona
