#include "tools/kcachesim.h"

#include "common/logging.h"

namespace kona {

namespace {

/** Wire time of a 4KB transfer — the measured per-personality fetch
 *  latencies embed one, which remoteBaseNs must exclude. */
double
wire4k(const LatencyConfig &lat)
{
    return 4096.0 * lat.rdmaPipelinedPerKbNs / 1024.0;
}

} // namespace

AmatModel
konaModel(const LatencyConfig &lat)
{
    return {"Kona", lat.fmemNs, lat.konaRemoteFetchNs - wire4k(lat),
            lat.rdmaPipelinedPerKbNs};
}

AmatModel
konaMainModel(const LatencyConfig &lat)
{
    return {"Kona-main", lat.cmemNs,
            lat.konaRemoteFetchNs - wire4k(lat), lat.rdmaPipelinedPerKbNs};
}

AmatModel
legoOsModel(const LatencyConfig &lat)
{
    return {"LegoOS", lat.cmemNs,
            lat.legoOsRemoteFetchNs - wire4k(lat), lat.rdmaPipelinedPerKbNs};
}

AmatModel
infiniswapModel(const LatencyConfig &lat)
{
    return {"Infiniswap", lat.cmemNs,
            lat.infiniswapRemoteFetchNs - wire4k(lat),
            lat.rdmaPipelinedPerKbNs};
}

AmatModel
konaVmModel(const LatencyConfig &lat)
{
    return {"Kona-VM", lat.cmemNs,
            lat.konaVmRemoteFetchNs - wire4k(lat), lat.rdmaPipelinedPerKbNs};
}

KCacheSim::KCacheSim(const HierarchyConfig &cpu,
                     std::vector<DramCacheSpec> variants,
                     const LatencyConfig &lat)
    : cpu_(cpu), specs_(std::move(variants)), lat_(lat)
{
    KONA_ASSERT(!specs_.empty(), "KCacheSim needs >= 1 DRAM cache");
    for (const DramCacheSpec &spec : specs_) {
        CacheConfig cfg;
        cfg.name = spec.label;
        cfg.sizeBytes = spec.sizeBytes;
        cfg.associativity = spec.associativity;
        cfg.blockSize = spec.blockSize;
        dramCaches_.push_back(std::make_unique<SetAssocCache>(cfg));
    }
    cpuHits_.assign(cpu_.numLevels(), 0);
    dramHits_.assign(specs_.size(), 0);
}

void
KCacheSim::record(const AccessRecord &access)
{
    if (access.size == 0)
        return;
    Addr first = alignDown(access.addr, cacheLineSize);
    Addr last = alignDown(access.addr + access.size - 1, cacheLineSize);
    for (Addr line = first; line <= last; line += cacheLineSize) {
        ++lineAccesses_;
        int level = cpu_.accessOne(line, access.type);
        if (level >= 0) {
            ++cpuHits_[static_cast<std::size_t>(level)];
            continue;
        }
        ++llcMisses_;
        // The miss stream feeds every DRAM-cache variant in parallel.
        CacheEviction scratch;
        for (std::size_t v = 0; v < dramCaches_.size(); ++v) {
            CacheOutcome outcome = dramCaches_[v]->access(
                line, access.type, scratch);
            if (outcome == CacheOutcome::Hit)
                ++dramHits_[v];
        }
    }
}

double
KCacheSim::dramMissRate(std::size_t variant) const
{
    if (llcMisses_ == 0)
        return 0.0;
    return static_cast<double>(remoteAccesses(variant)) /
           static_cast<double>(llcMisses_);
}

double
KCacheSim::amat(std::size_t variant, const AmatModel &model) const
{
    KONA_ASSERT(variant < dramCaches_.size(), "no such variant");
    if (lineAccesses_ == 0)
        return 0.0;

    // Cumulative per-level latencies: a hit at level i pays the lookup
    // of every level above it.
    double levels[3] = {lat_.l1HitNs, lat_.l2HitNs, lat_.l3HitNs};
    double totalNs = 0.0;
    double cumulative = 0.0;
    for (std::size_t i = 0; i < cpu_.numLevels() && i < 3; ++i) {
        cumulative += levels[i];
        totalNs += cumulative * static_cast<double>(cpuHits_[i]);
    }

    double dramHitCost = cumulative + model.localCacheNs;
    double remoteCost =
        cumulative + model.remoteNs(specs_[variant].blockSize);
    totalNs += dramHitCost * static_cast<double>(dramHits_[variant]);
    totalNs += remoteCost *
               static_cast<double>(remoteAccesses(variant));
    return totalNs / static_cast<double>(lineAccesses_);
}

} // namespace kona
