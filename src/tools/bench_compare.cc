#include "tools/bench_compare.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <iomanip>
#include <ostream>
#include <sstream>

namespace kona {

namespace {

/**
 * Minimal recursive-descent parser for the registry dump shape:
 * {"counters": {k: n}, "gauges": {k: n}, "histograms": {k: {f: n}}}.
 * Tolerant of any nesting of objects with string keys and numeric
 * leaves; arrays and non-numeric leaves are rejected (the dump never
 * contains them).
 */
struct JsonCursor
{
    const std::string &text;
    std::size_t pos = 0;
    std::string error;

    explicit JsonCursor(const std::string &t) : text(t) {}

    void skipWs()
    {
        while (pos < text.size() &&
               std::isspace(static_cast<unsigned char>(text[pos])))
            ++pos;
    }

    bool fail(const std::string &what)
    {
        std::ostringstream oss;
        oss << what << " at offset " << pos;
        error = oss.str();
        return false;
    }

    bool expect(char c)
    {
        skipWs();
        if (pos >= text.size() || text[pos] != c)
            return fail(std::string("expected '") + c + "'");
        ++pos;
        return true;
    }

    bool parseString(std::string &out)
    {
        skipWs();
        if (pos >= text.size() || text[pos] != '"')
            return fail("expected string");
        ++pos;
        out.clear();
        while (pos < text.size() && text[pos] != '"') {
            char c = text[pos++];
            if (c == '\\' && pos < text.size()) {
                char esc = text[pos++];
                switch (esc) {
                  case 'n': out += '\n'; break;
                  case 't': out += '\t'; break;
                  case 'r': out += '\r'; break;
                  case 'u':
                    // Registry names are ASCII; keep the escape as-is.
                    out += "\\u";
                    break;
                  default: out += esc; break;
                }
            } else {
                out += c;
            }
        }
        if (pos >= text.size())
            return fail("unterminated string");
        ++pos; // closing quote
        return true;
    }

    bool parseNumber(double &out)
    {
        skipWs();
        const char *start = text.c_str() + pos;
        char *end = nullptr;
        out = std::strtod(start, &end);
        if (end == start)
            return fail("expected number");
        pos += static_cast<std::size_t>(end - start);
        return true;
    }

    /** Object whose leaves land in @p out under "<prefix><key>". */
    bool parseObject(const std::string &prefix,
                     std::map<std::string, double> &out)
    {
        if (!expect('{'))
            return false;
        skipWs();
        if (pos < text.size() && text[pos] == '}') {
            ++pos;
            return true;
        }
        while (true) {
            std::string key;
            if (!parseString(key) || !expect(':'))
                return false;
            skipWs();
            if (pos < text.size() && text[pos] == '{') {
                if (!parseObject(prefix + key + ".", out))
                    return false;
            } else {
                double value = 0.0;
                if (!parseNumber(value))
                    return false;
                out[prefix + key] = value;
            }
            skipWs();
            if (pos < text.size() && text[pos] == ',') {
                ++pos;
                continue;
            }
            return expect('}');
        }
    }
};

const char *
directionName(CompareDirection d)
{
    switch (d) {
    case CompareDirection::HigherBetter: return "higher";
    case CompareDirection::LowerBetter: return "lower";
    case CompareDirection::Band: return "band";
    case CompareDirection::Exact: return "exact";
    case CompareDirection::Ignore: return "ignore";
    }
    return "?";
}

const CompareRule *
firstMatch(const std::vector<CompareRule> &rules,
           const std::string &key)
{
    for (const CompareRule &rule : rules) {
        if (globMatch(rule.pattern, key))
            return &rule;
    }
    return nullptr;
}

/** Classify one present-on-both-sides metric under @p rule. */
CompareStatus
classify(const CompareRule &rule, double baseline, double current,
         double &relDelta)
{
    double denom = std::fabs(baseline);
    relDelta = denom > 0.0 ? (current - baseline) / denom
               : current == baseline ? 0.0
                                     : std::copysign(HUGE_VAL,
                                                     current - baseline);
    double regression = 0.0; // positive = worse, in relative units
    switch (rule.direction) {
    case CompareDirection::HigherBetter:
        regression = -relDelta;
        break;
    case CompareDirection::LowerBetter:
        regression = relDelta;
        break;
    case CompareDirection::Band:
        regression = std::fabs(relDelta);
        break;
    case CompareDirection::Exact:
        // Tolerance is absolute for exact rules (default 0).
        return std::fabs(current - baseline) > rule.failTol
                   ? CompareStatus::Fail
                   : CompareStatus::Pass;
    case CompareDirection::Ignore:
        return CompareStatus::Pass;
    }
    if (regression > rule.failTol)
        return CompareStatus::Fail;
    if (regression > rule.warnTol)
        return CompareStatus::Warn;
    return CompareStatus::Pass;
}

} // namespace

bool
parseMetricsJson(const std::string &text,
                 std::map<std::string, double> &out, std::string *error)
{
    JsonCursor cursor(text);
    std::map<std::string, double> parsed;
    if (!cursor.parseObject("", parsed)) {
        if (error != nullptr)
            *error = cursor.error;
        return false;
    }
    out = std::move(parsed);
    return true;
}

bool
globMatch(const std::string &pattern, const std::string &key)
{
    // Iterative glob with single-star backtracking ('*' spans dots).
    std::size_t p = 0, k = 0;
    std::size_t starP = std::string::npos, starK = 0;
    while (k < key.size()) {
        if (p < pattern.size() &&
            (pattern[p] == key[k] || pattern[p] == '?')) {
            ++p;
            ++k;
        } else if (p < pattern.size() && pattern[p] == '*') {
            starP = p++;
            starK = k;
        } else if (starP != std::string::npos) {
            p = starP + 1;
            k = ++starK;
        } else {
            return false;
        }
    }
    while (p < pattern.size() && pattern[p] == '*')
        ++p;
    return p == pattern.size();
}

bool
parseCompareRules(const std::string &text,
                  std::vector<CompareRule> &out, std::string *error)
{
    std::vector<CompareRule> rules;
    std::istringstream is(text);
    std::string line;
    std::size_t lineNo = 0;
    while (std::getline(is, line)) {
        ++lineNo;
        std::size_t hash = line.find('#');
        if (hash != std::string::npos)
            line.erase(hash);
        std::istringstream fields(line);
        CompareRule rule;
        std::string direction;
        if (!(fields >> rule.pattern))
            continue; // blank / comment-only line
        if (!(fields >> direction)) {
            if (error != nullptr)
                *error = "line " + std::to_string(lineNo) +
                         ": missing direction";
            return false;
        }
        if (direction == "higher")
            rule.direction = CompareDirection::HigherBetter;
        else if (direction == "lower")
            rule.direction = CompareDirection::LowerBetter;
        else if (direction == "band")
            rule.direction = CompareDirection::Band;
        else if (direction == "exact")
            rule.direction = CompareDirection::Exact;
        else if (direction == "ignore")
            rule.direction = CompareDirection::Ignore;
        else {
            if (error != nullptr)
                *error = "line " + std::to_string(lineNo) +
                         ": unknown direction \"" + direction + "\"";
            return false;
        }
        rule.failTol = 0.0;
        if (rule.direction != CompareDirection::Ignore &&
            !(fields >> rule.failTol) &&
            rule.direction != CompareDirection::Exact) {
            if (error != nullptr)
                *error = "line " + std::to_string(lineNo) +
                         ": missing tolerance";
            return false;
        }
        fields.clear();
        if (!(fields >> rule.warnTol))
            rule.warnTol = rule.failTol / 2.0;
        rules.push_back(std::move(rule));
    }
    out = std::move(rules);
    return true;
}

CompareReport
compareMetrics(const std::map<std::string, double> &baseline,
               const std::map<std::string, double> &current,
               const std::vector<CompareRule> &rules)
{
    CompareReport report;
    for (const auto &[key, baseValue] : baseline) {
        const CompareRule *rule = firstMatch(rules, key);
        if (rule == nullptr ||
            rule->direction == CompareDirection::Ignore) {
            ++report.ignored;
            continue;
        }
        CompareFinding f;
        f.key = key;
        f.baseline = baseValue;
        f.rule = rule;
        auto it = current.find(key);
        if (it == current.end()) {
            f.status = CompareStatus::Missing;
            ++report.failed;
        } else {
            f.current = it->second;
            f.status = classify(*rule, baseValue, it->second,
                                f.relDelta);
            switch (f.status) {
            case CompareStatus::Pass: ++report.passed; break;
            case CompareStatus::Warn: ++report.warned; break;
            default: ++report.failed; break;
            }
        }
        report.findings.push_back(std::move(f));
    }
    // A gated metric appearing only in the current run means the
    // baseline is stale: flag it so the refresh is deliberate.
    for (const auto &[key, value] : current) {
        if (baseline.count(key) > 0)
            continue;
        const CompareRule *rule = firstMatch(rules, key);
        if (rule == nullptr ||
            rule->direction == CompareDirection::Ignore) {
            ++report.ignored;
            continue;
        }
        CompareFinding f;
        f.key = key;
        f.current = value;
        f.rule = rule;
        f.status = CompareStatus::Missing;
        ++report.failed;
        report.findings.push_back(std::move(f));
    }
    return report;
}

void
printCompareReport(std::ostream &os, const CompareReport &report,
                   bool verbose)
{
    for (const CompareFinding &f : report.findings) {
        if (!verbose && f.status == CompareStatus::Pass)
            continue;
        const char *label = f.status == CompareStatus::Pass   ? "PASS"
                            : f.status == CompareStatus::Warn ? "WARN"
                            : f.status == CompareStatus::Fail
                                ? "FAIL"
                                : "MISSING";
        os << std::left << std::setw(8) << label << std::right << f.key
           << ": baseline " << f.baseline << ", current " << f.current;
        if (f.status != CompareStatus::Missing) {
            char delta[64];
            std::snprintf(delta, sizeof(delta), "%+.1f%%",
                          f.relDelta * 100.0);
            os << " (" << delta << ", "
               << directionName(f.rule != nullptr
                                    ? f.rule->direction
                                    : CompareDirection::Band)
               << " tol "
               << (f.rule != nullptr ? f.rule->failTol : 0.0) << ")";
        }
        os << "\n";
    }
    os << report.passed << " passed, " << report.warned << " warned, "
       << report.failed << " failed, " << report.ignored
       << " ungated\n";
}

} // namespace kona
