/**
 * @file
 * KTracker (§5, Fig 6): the emulation tool for dirty data tracking.
 *
 * It "attaches" to a running workload (as a TraceSink on its
 * instrumented memory), snapshots the tracked pages every window, and
 * diffs the contents at window end to find the dirty cache-lines —
 * exactly the paper's ptrace + memcmp methodology.
 *
 * It simultaneously models the write-protection alternative: pages are
 * re-protected at every window boundary, and the first write to each
 * protected page charges a minor-fault. Comparing the two accumulated
 * application times in the same run gives Fig 10's speedup, and the
 * per-window 4KB-vs-line amplification ratio gives Fig 9.
 */

#ifndef KONA_TOOLS_KTRACKER_H
#define KONA_TOOLS_KTRACKER_H

#include <unordered_map>
#include <unordered_set>

#include "cache/hierarchy.h"
#include "common/latency.h"
#include "common/stats.h"
#include "mem/page_snapshot.h"
#include "trace/access_trace.h"

namespace kona {

/** Per-window KTracker measurement. */
struct KTrackerWindow
{
    std::uint64_t dirtyPages = 0;
    std::uint64_t dirtyLines = 0;
    std::uint64_t writeFaults = 0;   ///< WP-mode faults this window
    double ampRatio = 0.0;           ///< (4KB bytes) / (line bytes)
};

/** Snapshot-diff dirty tracker with a write-protect comparison mode. */
class KTracker : public TraceSink
{
  public:
    /**
     * @param mem The memory the workload runs on (diff source).
     * @param lat Latency table for the cost accounting.
     * @param backgroundNsPerRecord Non-traced application work
     *        (instruction execution, stack traffic) attributed to
     *        each traced access; it dilutes the fault overhead the
     *        way a real application's compute does.
     */
    KTracker(MemoryInterface &mem, const LatencyConfig &lat = {},
             double backgroundNsPerRecord = 150.0);

    /** Register a tracked region (the workload's heap, per maps). */
    void trackRegion(Addr base, std::size_t length);

    // TraceSink
    void record(const AccessRecord &access) override;
    void endWindow() override;

    const std::vector<KTrackerWindow> &windowResults() const
    {
        return windows_;
    }

    /** Application time under cache-line (coherence) tracking, ns. */
    double appTimeClNs() const { return appTimeClNs_; }

    /** Application time under 4KB write-protect tracking, ns. */
    double appTimeWpNs() const { return appTimeWpNs_; }

    /** Fig 10: percent speedup of CL tracking over write-protect. */
    double
    speedupPercent() const
    {
        if (appTimeClNs_ == 0.0)
            return 0.0;
        return (appTimeWpNs_ - appTimeClNs_) / appTimeClNs_ * 100.0;
    }

    /** Tracker-side diff cost (the emulation overhead of §6.3), ns. */
    double trackerOverheadNs() const { return trackerNs_; }

    std::uint64_t totalDirtyLines() const { return totalDirtyLines_; }
    std::uint64_t totalDirtyPages() const { return totalDirtyPages_; }
    std::uint64_t totalWriteFaults() const { return totalFaults_; }

  private:
    bool tracked(Addr addr) const;

    MemoryInterface &mem_;
    LatencyConfig lat_;
    double backgroundNsPerRecord_;
    CacheHierarchy hierarchy_;   ///< base application time model
    std::array<double, 8> levelLatencyNs_{};

    /** Tracked address ranges (base -> length). */
    std::map<Addr, std::size_t> regions_;

    PageSnapshotStore snapshots_;
    /** Pages accessed in the current window (diff set). */
    std::unordered_set<Addr> touchedPages_;
    /** WP mode: pages whose protection was already dropped. */
    std::unordered_set<Addr> unprotected_;

    std::vector<KTrackerWindow> windows_;
    double appTimeClNs_ = 0.0;
    double appTimeWpNs_ = 0.0;
    double trackerNs_ = 0.0;
    std::uint64_t totalDirtyLines_ = 0;
    std::uint64_t totalDirtyPages_ = 0;
    std::uint64_t totalFaults_ = 0;
    std::uint64_t windowFaults_ = 0;
};

} // namespace kona

#endif // KONA_TOOLS_KTRACKER_H
