/**
 * @file
 * bench_compare: regression gating over --metrics-json exports.
 *
 * Every bench writes its headline numbers as "result.*" gauges into a
 * BENCH_*.json registry dump (see bench/bench_util.h). This library
 * diffs such a dump against a checked-in baseline under per-metric
 * tolerance rules, so CI can turn "the numbers moved" into a red X
 * instead of a silently drifting artifact.
 *
 * The registry dump is flattened to dotted keys:
 *   counters.<name>              counter value
 *   gauges.<name>                gauge value
 *   histograms.<name>.<field>    count / sum / mean / p50 / p95 / p99
 *                                / max
 *
 * Rules come from a plain-text file (bench/baselines/compare.rules),
 * one rule per line, first match wins:
 *   <glob> <direction> <fail-tol> [<warn-tol>]
 * where <glob> matches flattened keys with '*' (any run, including
 * dots) and '?' (one char), and <direction> is one of
 *   higher  regression = value dropped by more than fail-tol
 *           (relative); improvements never fail
 *   lower   regression = value rose by more than fail-tol (relative);
 *           improvements never fail
 *   band    |relative delta| > fail-tol fails in either direction
 *           (for deterministic simulated metrics)
 *   exact   |absolute delta| > fail-tol fails (fail-tol defaults to 0;
 *           use for invariants like allocs_per_access = 0)
 *   ignore  never compared (explicitly ungated)
 * <warn-tol> defaults to half of <fail-tol>. Keys matching no rule are
 * not gated. A key present in the baseline but missing from the
 * current run (or vice versa) fails when it matches a non-ignore rule:
 * losing a gated metric is itself a regression.
 */

#ifndef KONA_TOOLS_BENCH_COMPARE_H
#define KONA_TOOLS_BENCH_COMPARE_H

#include <iosfwd>
#include <map>
#include <string>
#include <vector>

namespace kona {

/** Parse a MetricRegistry::writeJson dump into flattened key/value
 *  pairs. Returns false (and sets @p error) on malformed input. */
bool parseMetricsJson(const std::string &text,
                      std::map<std::string, double> &out,
                      std::string *error = nullptr);

/** '*' spans any run (including '.'), '?' one char, else literal. */
bool globMatch(const std::string &pattern, const std::string &key);

enum class CompareDirection
{
    HigherBetter,
    LowerBetter,
    Band,
    Exact,
    Ignore,
};

/** One line of the rules file. */
struct CompareRule
{
    std::string pattern;
    CompareDirection direction = CompareDirection::Band;
    double failTol = 0.0;
    double warnTol = 0.0;
};

/** Parse a rules file body. Returns false + @p error on a bad line. */
bool parseCompareRules(const std::string &text,
                       std::vector<CompareRule> &out,
                       std::string *error = nullptr);

enum class CompareStatus
{
    Pass,
    Warn,    ///< moved past warn-tol but within fail-tol
    Fail,    ///< regression past fail-tol
    Missing, ///< gated key absent on one side (counts as Fail)
};

/** Verdict for one gated metric. */
struct CompareFinding
{
    std::string key;
    double baseline = 0.0;
    double current = 0.0;
    double relDelta = 0.0; ///< (current - baseline) / |baseline|
    CompareStatus status = CompareStatus::Pass;
    const CompareRule *rule = nullptr;
};

/** Everything one comparison produced. */
struct CompareReport
{
    std::vector<CompareFinding> findings; ///< gated keys, input order
    std::size_t passed = 0;
    std::size_t warned = 0;
    std::size_t failed = 0;  ///< includes Missing
    std::size_t ignored = 0; ///< keys matching no rule or an ignore rule

    bool ok() const { return failed == 0; }
};

/** Compare @p current against @p baseline under @p rules. */
CompareReport
compareMetrics(const std::map<std::string, double> &baseline,
               const std::map<std::string, double> &current,
               const std::vector<CompareRule> &rules);

/** Human-readable table: every warn/fail finding plus a summary line.
 *  @p verbose also lists passing findings. */
void printCompareReport(std::ostream &os, const CompareReport &report,
                        bool verbose = false);

} // namespace kona

#endif // KONA_TOOLS_BENCH_COMPARE_H
