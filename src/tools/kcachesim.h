/**
 * @file
 * KCacheSim (§5): the Cachegrind-style simulator behind Fig 8.
 *
 * It drives every access through a CPU cache hierarchy and feeds the
 * LLC miss stream into one or more DRAM-cache variants (different
 * sizes, block sizes, associativities — all simulated in one workload
 * pass). From the resulting hit/miss profile it computes the average
 * memory access time of each system:
 *
 *   Kona       — DRAM cache is FMem (NUMA latency), remote access is a
 *                faultless RDMA fetch (~3us);
 *   Kona-main  — like Kona but caching in CMem (no NUMA penalty);
 *   LegoOS     — DRAM cache in CMem, remote fetch 10us (fault incl.);
 *   Infiniswap — DRAM cache in CMem, remote fetch 40us;
 *   Kona-VM    — DRAM cache in CMem, remote fetch ~10.5us.
 *
 * The model is conservative exactly the way the paper's is: a page
 * fault is modelled purely as extra transfer latency.
 */

#ifndef KONA_TOOLS_KCACHESIM_H
#define KONA_TOOLS_KCACHESIM_H

#include <memory>
#include <string>
#include <vector>

#include "cache/hierarchy.h"
#include "common/latency.h"
#include "trace/access_trace.h"

namespace kona {

/** One simulated DRAM-cache configuration. */
struct DramCacheSpec
{
    std::string label;
    std::size_t sizeBytes = 16 * MiB;
    std::size_t blockSize = pageSize;
    std::size_t associativity = 4;
};

/** Latency model of one system evaluated over the miss profile. */
struct AmatModel
{
    std::string name;
    double localCacheNs;   ///< DRAM-cache hit (FMem or CMem)
    double remoteBaseNs;   ///< fetch cost excluding the wire transfer
    double remotePerKbNs;  ///< wire cost per KB of the fetched block

    /** Full remote-fetch latency for a given block size. */
    double
    remoteNs(std::size_t blockSize) const
    {
        return remoteBaseNs +
               static_cast<double>(blockSize) * remotePerKbNs /
                   1024.0;
    }
};

/** Build the paper's standard system models from a latency table. */
AmatModel konaModel(const LatencyConfig &lat);
AmatModel konaMainModel(const LatencyConfig &lat);
AmatModel legoOsModel(const LatencyConfig &lat);
AmatModel infiniswapModel(const LatencyConfig &lat);
AmatModel konaVmModel(const LatencyConfig &lat);

/** Per-variant hit/miss profile and AMAT extraction. */
class KCacheSim : public TraceSink
{
  public:
    KCacheSim(const HierarchyConfig &cpu,
              std::vector<DramCacheSpec> variants,
              const LatencyConfig &lat = {});

    // TraceSink
    void record(const AccessRecord &access) override;

    /** Line accesses simulated so far. */
    std::uint64_t lineAccesses() const { return lineAccesses_; }

    /** Hits at CPU level @p i (cumulative over the run). */
    std::uint64_t cpuHits(std::size_t i) const { return cpuHits_[i]; }

    /** LLC misses (== accesses reaching the DRAM-cache variants). */
    std::uint64_t llcMisses() const { return llcMisses_; }

    std::uint64_t dramHits(std::size_t variant) const
    {
        return dramHits_[variant];
    }
    std::uint64_t remoteAccesses(std::size_t variant) const
    {
        return llcMisses_ - dramHits_[variant];
    }

    /** DRAM-cache miss rate of @p variant relative to LLC misses. */
    double dramMissRate(std::size_t variant) const;

    /**
     * Average memory access time (ns) of @p model using the DRAM
     * cache profile of variant @p variant.
     */
    double amat(std::size_t variant, const AmatModel &model) const;

    std::size_t variantCount() const { return dramCaches_.size(); }
    const DramCacheSpec &variantSpec(std::size_t i) const
    {
        return specs_[i];
    }

  private:
    CacheHierarchy cpu_;
    std::vector<DramCacheSpec> specs_;
    std::vector<std::unique_ptr<SetAssocCache>> dramCaches_;
    LatencyConfig lat_;

    std::uint64_t lineAccesses_ = 0;
    std::vector<std::uint64_t> cpuHits_;
    std::uint64_t llcMisses_ = 0;
    std::vector<std::uint64_t> dramHits_;
};

} // namespace kona

#endif // KONA_TOOLS_KCACHESIM_H
