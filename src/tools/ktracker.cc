#include "tools/ktracker.h"

#include <bit>

#include "common/logging.h"

namespace kona {

KTracker::KTracker(MemoryInterface &mem, const LatencyConfig &lat,
                   double backgroundNsPerRecord)
    : mem_(mem), lat_(lat),
      backgroundNsPerRecord_(backgroundNsPerRecord),
      hierarchy_(HierarchyConfig{})
{
    double levels[3] = {lat_.l1HitNs, lat_.l2HitNs, lat_.l3HitNs};
    double running = 0.0;
    for (std::size_t i = 0; i < 3; ++i) {
        running += levels[i];
        levelLatencyNs_[i] = running;
    }
    levelLatencyNs_[3] = running;
}

void
KTracker::trackRegion(Addr base, std::size_t length)
{
    KONA_ASSERT(length > 0, "empty tracked region");
    regions_[base] = length;
}

bool
KTracker::tracked(Addr addr) const
{
    auto it = regions_.upper_bound(addr);
    if (it == regions_.begin())
        return false;
    --it;
    return addr - it->first < it->second;
}

void
KTracker::record(const AccessRecord &access)
{
    if (access.size == 0)
        return;

    // Base application time: identical under either tracking scheme.
    Addr first = alignDown(access.addr, cacheLineSize);
    Addr last = alignDown(access.addr + access.size - 1, cacheLineSize);
    // Per-record overhead plus per-byte compute: an application that
    // reads a buffer also spends instructions consuming it.
    double baseNs = backgroundNsPerRecord_ +
                    static_cast<double>(access.size) * 1.0;
    for (Addr line = first; line <= last; line += cacheLineSize) {
        int level = hierarchy_.accessOne(line, access.type);
        std::size_t idx = level >= 0 ? static_cast<std::size_t>(level)
                                     : 3;
        baseNs += levelLatencyNs_[idx];
        if (level < 0)
            baseNs += lat_.cmemNs;
    }
    appTimeClNs_ += baseNs;
    appTimeWpNs_ += baseNs;

    if (!tracked(access.addr))
        return;

    Addr firstPn = pageNumber(access.addr);
    Addr lastPn = pageNumber(access.addr + access.size - 1);
    for (Addr pn = firstPn; pn <= lastPn; ++pn) {
        touchedPages_.insert(pn);
        // First write-touch of an unsnapshotted page: capture the
        // pre-write contents as the diff baseline (record() fires
        // before the store executes).
        if (access.type == AccessType::Write && !snapshots_.has(pn))
            snapshots_.capture(pn, mem_);
        if (access.type == AccessType::Write &&
            unprotected_.insert(pn).second) {
            // WP mode: first write to a protected page faults.
            appTimeWpNs_ += lat_.minorFaultNs;
            ++windowFaults_;
            ++totalFaults_;
        }
    }
}

void
KTracker::endWindow()
{
    KTrackerWindow window;
    window.writeFaults = windowFaults_;
    windowFaults_ = 0;

    // Diff every page accessed this window against its snapshot.
    for (Addr pn : touchedPages_) {
        std::uint64_t mask = snapshots_.diffAndRefresh(pn, mem_);
        // The diff itself is tracker-side emulation overhead: reading
        // 2 x 4KB and comparing (§6.3 measures this at 60% slowdown).
        trackerNs_ += 2.0 * static_cast<double>(pageSize) *
                      lat_.copyPerKbNs / 1024.0;
        if (mask != 0) {
            ++window.dirtyPages;
            window.dirtyLines += std::popcount(mask);
        }
    }

    if (window.dirtyLines > 0) {
        window.ampRatio =
            static_cast<double>(window.dirtyPages * pageSize) /
            static_cast<double>(window.dirtyLines * cacheLineSize);
    }
    totalDirtyLines_ += window.dirtyLines;
    totalDirtyPages_ += window.dirtyPages;

    // WP mode re-arms protection on the pages that were written; the
    // PTE updates and the TLB flush stall the application.
    if (!unprotected_.empty()) {
        appTimeWpNs_ +=
            static_cast<double>(unprotected_.size()) * lat_.pteUpdateNs +
            lat_.tlbShootdownNs;
    }
    unprotected_.clear();
    touchedPages_.clear();
    windows_.push_back(window);
}

} // namespace kona
