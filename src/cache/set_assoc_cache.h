/**
 * @file
 * SetAssocCache: a write-back, write-allocate, LRU set-associative
 * cache model with configurable block size.
 *
 * It plays two roles in the reproduction:
 *  - levels of the CPU cache hierarchy (64B blocks), whose misses and
 *    writebacks are the coherence events the FPGA observes;
 *  - the FMem page cache on the FPGA (4KB blocks, 4-way), and the
 *    KCacheSim DRAM-cache level swept over block sizes in Fig 8d.
 *
 * Storage is a single flat array of numSets * associativity way
 * slots. Each set owns a contiguous slice; its valid ways occupy a
 * prefix of the slice in LRU order (slot 0 = MRU). With the small
 * associativities we model (<= 16), a shift-down on hit beats the
 * pointer chasing of a per-set std::list, and no access ever touches
 * the heap. See DESIGN.md "Simulator performance".
 */

#ifndef KONA_CACHE_SET_ASSOC_CACHE_H
#define KONA_CACHE_SET_ASSOC_CACHE_H

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/stats.h"
#include "common/types.h"
#include "telemetry/metric_registry.h"

namespace kona {

/** Geometry of one cache. */
struct CacheConfig
{
    std::string name = "cache";
    std::size_t sizeBytes = 32 * KiB;
    std::size_t associativity = 8;
    std::size_t blockSize = cacheLineSize;
};

/**
 * A block leaving the cache. Access paths produce at most one victim
 * per operation (a hit evicts nothing; a fill replaces exactly one
 * way), so the single-eviction out-param below is exhaustive — see
 * DESIGN.md "Simulator performance" for why this is an invariant.
 */
struct CacheEviction
{
    Addr blockAddr = 0;   ///< block-aligned address
    bool dirty = false;
    bool valid = false;   ///< whether a victim was produced at all
};

/** Result of one access. */
enum class CacheOutcome : std::uint8_t { Hit, Miss };

/** Write-back write-allocate LRU set-associative cache. */
class SetAssocCache
{
  public:
    /** @param scope Telemetry scope this cache registers "hits",
     *         "misses" and "writebacks" under (private when omitted). */
    explicit SetAssocCache(const CacheConfig &config,
                           MetricScope scope = {});

    /**
     * Access the block containing @p addr.
     * On a miss the block is allocated; @p eviction reports the victim
     * (eviction.valid == false when nothing was displaced).
     */
    CacheOutcome access(Addr addr, AccessType type,
                        CacheEviction &eviction);

    /**
     * Insert a block without an access (fill from a writeback arriving
     * from an inner level); marks it dirty. @p eviction as access().
     */
    void fillDirty(Addr addr, CacheEviction &eviction);

    /** Whether the block containing @p addr is cached (no side effects). */
    bool contains(Addr addr) const;

    /**
     * Whether any block overlapping 4KB page @p pn is cached (no side
     * effects, no LRU update). Lets snoopPage() skip levels that hold
     * nothing of the page.
     */
    bool holdsLineOfPage(Addr pn) const;

    /**
     * Remove the block containing @p addr (snoop / back-invalidate).
     * @return The dirty flag if the block was present.
     */
    std::optional<bool> invalidateBlock(Addr addr);

    /** Evict everything; victims go to @p evictions (cold path). */
    void flushAll(std::vector<CacheEviction> &evictions);

    const CacheConfig &config() const { return config_; }
    std::uint64_t hits() const { return hits_.value(); }
    std::uint64_t misses() const { return misses_.value(); }
    std::uint64_t writebacks() const { return writebacks_.value(); }
    std::uint64_t accesses() const { return hits() + misses(); }
    double
    missRate() const
    {
        std::uint64_t a = accesses();
        return a == 0 ? 0.0
                      : static_cast<double>(misses()) /
                            static_cast<double>(a);
    }
    std::size_t numSets() const { return numSets_; }

    /** Valid prefixes sized <= associativity; tags unique per set. */
    bool checkInvariants() const;

  private:
    struct Way
    {
        Addr tag;       ///< block number (addr / blockSize)
        bool dirty;
    };

    std::size_t setIndex(Addr blockNum) const
    {
        return static_cast<std::size_t>(blockNum % numSets_);
    }

    /** Start of set @p s's slice in ways_. */
    Way *setBase(std::size_t s) { return ways_.data() + s * config_.associativity; }
    const Way *setBase(std::size_t s) const
    {
        return ways_.data() + s * config_.associativity;
    }

    CacheConfig config_;
    MetricScope scope_;
    std::size_t numSets_;
    /** numSets * associativity slots; set s owns
     *  [s*assoc, s*assoc + used_[s]) in LRU order, MRU first. */
    std::vector<Way> ways_;
    std::vector<std::uint32_t> used_;
    Counter &hits_;
    Counter &misses_;
    Counter &writebacks_;
};

} // namespace kona

#endif // KONA_CACHE_SET_ASSOC_CACHE_H
