/**
 * @file
 * SetAssocCache: a write-back, write-allocate, LRU set-associative
 * cache model with configurable block size.
 *
 * It plays two roles in the reproduction:
 *  - levels of the CPU cache hierarchy (64B blocks), whose misses and
 *    writebacks are the coherence events the FPGA observes;
 *  - the FMem page cache on the FPGA (4KB blocks, 4-way), and the
 *    KCacheSim DRAM-cache level swept over block sizes in Fig 8d.
 */

#ifndef KONA_CACHE_SET_ASSOC_CACHE_H
#define KONA_CACHE_SET_ASSOC_CACHE_H

#include <cstdint>
#include <list>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/stats.h"
#include "common/types.h"
#include "telemetry/metric_registry.h"

namespace kona {

/** Geometry of one cache. */
struct CacheConfig
{
    std::string name = "cache";
    std::size_t sizeBytes = 32 * KiB;
    std::size_t associativity = 8;
    std::size_t blockSize = cacheLineSize;
};

/** A block leaving the cache. */
struct CacheEviction
{
    Addr blockAddr = 0;   ///< block-aligned address
    bool dirty = false;
};

/** Result of one access. */
enum class CacheOutcome : std::uint8_t { Hit, Miss };

/** Write-back write-allocate LRU set-associative cache. */
class SetAssocCache
{
  public:
    /** @param scope Telemetry scope this cache registers "hits",
     *         "misses" and "writebacks" under (private when omitted). */
    explicit SetAssocCache(const CacheConfig &config,
                           MetricScope scope = {});

    /**
     * Access the block containing @p addr.
     * On a miss the block is allocated; a victim, if any, is appended
     * to @p evictions (at most one per access).
     */
    CacheOutcome access(Addr addr, AccessType type,
                        std::vector<CacheEviction> &evictions);

    /**
     * Insert a block without an access (fill from a writeback arriving
     * from an inner level); marks it dirty.
     */
    void fillDirty(Addr addr, std::vector<CacheEviction> &evictions);

    /** Whether the block containing @p addr is cached (no side effects). */
    bool contains(Addr addr) const;

    /**
     * Remove the block containing @p addr (snoop / back-invalidate).
     * @return The dirty flag if the block was present.
     */
    std::optional<bool> invalidateBlock(Addr addr);

    /** Evict everything; dirty victims go to @p evictions. */
    void flushAll(std::vector<CacheEviction> &evictions);

    const CacheConfig &config() const { return config_; }
    std::uint64_t hits() const { return hits_.value(); }
    std::uint64_t misses() const { return misses_.value(); }
    std::uint64_t writebacks() const { return writebacks_.value(); }
    std::uint64_t accesses() const { return hits() + misses(); }
    double
    missRate() const
    {
        std::uint64_t a = accesses();
        return a == 0 ? 0.0
                      : static_cast<double>(misses()) /
                            static_cast<double>(a);
    }
    std::size_t numSets() const { return numSets_; }

    /** LRU lists sized <= associativity; tags unique per set. */
    bool checkInvariants() const;

  private:
    struct Way
    {
        Addr tag;       ///< block number (addr / blockSize)
        bool dirty;
    };
    /** One set: LRU-ordered ways, front = most recent. */
    using Set = std::list<Way>;

    std::size_t setIndex(Addr blockNum) const
    {
        return static_cast<std::size_t>(blockNum % numSets_);
    }

    CacheConfig config_;
    MetricScope scope_;
    std::size_t numSets_;
    std::vector<Set> sets_;
    Counter &hits_;
    Counter &misses_;
    Counter &writebacks_;
};

} // namespace kona

#endif // KONA_CACHE_SET_ASSOC_CACHE_H
