#include "cache/hierarchy.h"

#include <cctype>

#include "common/logging.h"

namespace kona {

HierarchyConfig
HierarchyConfig::scaled()
{
    HierarchyConfig cfg;
    cfg.levels = {
        {"L1d", 8 * KiB, 8, cacheLineSize},
        {"L2", 64 * KiB, 16, cacheLineSize},
        {"L3", 512 * KiB, 16, cacheLineSize},
    };
    return cfg;
}

namespace {

/** Registry-friendly scope segment for a level name ("L1d" -> "l1d"). */
std::string
levelScopeName(const std::string &name)
{
    std::string out = name;
    for (char &c : out)
        c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
    return out;
}

} // namespace

CacheHierarchy::CacheHierarchy(const HierarchyConfig &config,
                               MetricScope scope)
    : scope_(std::move(scope)),
      memRequests_(scope_.counter("mem_requests")),
      memWritebacks_(scope_.counter("mem_writebacks"))
{
    KONA_ASSERT(!config.levels.empty(), "hierarchy needs >= 1 level");
    for (const CacheConfig &level : config.levels) {
        KONA_ASSERT(level.blockSize == cacheLineSize,
                    "CPU cache levels must use 64B lines");
        levels_.push_back(std::make_unique<SetAssocCache>(
            level, scope_.sub(levelScopeName(level.name))));
    }
}

void
CacheHierarchy::access(Addr addr, std::size_t size, AccessType type)
{
    if (size == 0)
        return;
    Addr first = alignDown(addr, cacheLineSize);
    Addr last = alignDown(addr + size - 1, cacheLineSize);
    for (Addr line = first; line <= last; line += cacheLineSize)
        accessLine(line, type);
}

void
CacheHierarchy::accessLine(Addr lineAddr, AccessType type)
{
    accessOne(lineAddr, type);
}

int
CacheHierarchy::accessOne(Addr lineAddr, AccessType type)
{
    lineAddr = alignDown(lineAddr, cacheLineSize);
    CacheEviction ev;
    for (std::size_t i = 0; i < levels_.size(); ++i) {
        CacheOutcome outcome = levels_[i]->access(lineAddr, type, ev);
        if (ev.valid && ev.dirty)
            propagateWriteback(i, ev.blockAddr);
        if (outcome == CacheOutcome::Hit) {
            // Inner-level hit: a write makes the line dirty there; the
            // writeback will propagate when it is evicted.
            return static_cast<int>(i);
        }
    }
    // Miss at every level: the request reaches memory.
    memRequests_.add();
    if (listener_)
        listener_->onLineRequest(lineAddr, type);
    return -1;
}

void
CacheHierarchy::propagateWriteback(std::size_t from, Addr blockAddr)
{
    // Walk outward one level at a time: each fill displaces at most
    // one victim, and only a dirty victim keeps propagating. Falling
    // off the last level is a memory writeback.
    CacheEviction ev;
    for (std::size_t next = from + 1; next < levels_.size(); ++next) {
        levels_[next]->fillDirty(blockAddr, ev);
        if (!ev.valid || !ev.dirty)
            return;
        blockAddr = ev.blockAddr;
    }
    memWritebacks_.add();
    if (listener_)
        listener_->onWriteback(blockAddr);
}

void
CacheHierarchy::snoopLine(Addr addr)
{
    snoopLineLevels(addr, ~std::uint32_t{0});
}

void
CacheHierarchy::snoopLineLevels(Addr addr, std::uint32_t levelMask)
{
    bool dirtyAnywhere = false;
    for (std::size_t i = 0; i < levels_.size(); ++i) {
        if ((levelMask & (std::uint32_t{1} << i)) == 0)
            continue;
        auto dirty = levels_[i]->invalidateBlock(addr);
        if (dirty.has_value() && *dirty)
            dirtyAnywhere = true;
    }
    if (dirtyAnywhere) {
        memWritebacks_.add();
        if (listener_)
            listener_->onWriteback(alignDown(addr, cacheLineSize));
    }
}

void
CacheHierarchy::invalidateLine(Addr addr)
{
    for (auto &level : levels_)
        level->invalidateBlock(addr);
}

void
CacheHierarchy::snoopPage(Addr pn)
{
    // Batched early-out: probe each level once for the whole page and
    // only walk the 64 lines through levels that hold something. On
    // the eviction path most snooped pages are long gone from the CPU
    // caches, so this usually returns after the probe.
    std::uint32_t levelMask = 0;
    for (std::size_t i = 0; i < levels_.size(); ++i) {
        if (levels_[i]->holdsLineOfPage(pn))
            levelMask |= std::uint32_t{1} << i;
    }
    if (levelMask == 0)
        return;
    Addr base = pn * pageSize;
    for (unsigned line = 0; line < linesPerPage; ++line)
        snoopLineLevels(base + line * cacheLineSize, levelMask);
}

void
CacheHierarchy::flushAll()
{
    // Flush inner levels first so their dirty victims merge into outer
    // levels before those are flushed.
    for (std::size_t i = 0; i < levels_.size(); ++i) {
        flushScratch_.clear();
        levels_[i]->flushAll(flushScratch_);
        for (const CacheEviction &ev : flushScratch_) {
            if (ev.dirty)
                propagateWriteback(i, ev.blockAddr);
        }
    }
}

} // namespace kona
