#include "cache/hierarchy.h"

#include <cctype>

#include "common/logging.h"

namespace kona {

HierarchyConfig
HierarchyConfig::scaled()
{
    HierarchyConfig cfg;
    cfg.levels = {
        {"L1d", 8 * KiB, 8, cacheLineSize},
        {"L2", 64 * KiB, 16, cacheLineSize},
        {"L3", 512 * KiB, 16, cacheLineSize},
    };
    return cfg;
}

namespace {

/** Registry-friendly scope segment for a level name ("L1d" -> "l1d"). */
std::string
levelScopeName(const std::string &name)
{
    std::string out = name;
    for (char &c : out)
        c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
    return out;
}

} // namespace

CacheHierarchy::CacheHierarchy(const HierarchyConfig &config,
                               MetricScope scope)
    : scope_(std::move(scope)),
      memRequests_(scope_.counter("mem_requests")),
      memWritebacks_(scope_.counter("mem_writebacks"))
{
    KONA_ASSERT(!config.levels.empty(), "hierarchy needs >= 1 level");
    for (const CacheConfig &level : config.levels) {
        KONA_ASSERT(level.blockSize == cacheLineSize,
                    "CPU cache levels must use 64B lines");
        levels_.push_back(std::make_unique<SetAssocCache>(
            level, scope_.sub(levelScopeName(level.name))));
    }
}

void
CacheHierarchy::access(Addr addr, std::size_t size, AccessType type)
{
    if (size == 0)
        return;
    Addr first = alignDown(addr, cacheLineSize);
    Addr last = alignDown(addr + size - 1, cacheLineSize);
    for (Addr line = first; line <= last; line += cacheLineSize)
        accessLine(line, type);
}

void
CacheHierarchy::accessLine(Addr lineAddr, AccessType type)
{
    accessOne(lineAddr, type);
}

int
CacheHierarchy::accessOne(Addr lineAddr, AccessType type)
{
    lineAddr = alignDown(lineAddr, cacheLineSize);
    std::vector<CacheEviction> evictions;
    for (std::size_t i = 0; i < levels_.size(); ++i) {
        evictions.clear();
        CacheOutcome outcome = levels_[i]->access(lineAddr, type,
                                                  evictions);
        for (const CacheEviction &ev : evictions) {
            if (ev.dirty)
                propagateWriteback(i, ev.blockAddr);
        }
        if (outcome == CacheOutcome::Hit) {
            // Inner-level hit: a write makes the line dirty there; the
            // writeback will propagate when it is evicted.
            return static_cast<int>(i);
        }
    }
    // Miss at every level: the request reaches memory.
    memRequests_.add();
    if (listener_)
        listener_->onLineRequest(lineAddr, type);
    return -1;
}

void
CacheHierarchy::propagateWriteback(std::size_t from, Addr blockAddr)
{
    std::size_t next = from + 1;
    if (next >= levels_.size()) {
        memWritebacks_.add();
        if (listener_)
            listener_->onWriteback(blockAddr);
        return;
    }
    std::vector<CacheEviction> evictions;
    levels_[next]->fillDirty(blockAddr, evictions);
    for (const CacheEviction &ev : evictions) {
        if (ev.dirty)
            propagateWriteback(next, ev.blockAddr);
    }
}

void
CacheHierarchy::snoopLine(Addr addr)
{
    bool dirtyAnywhere = false;
    for (auto &level : levels_) {
        auto dirty = level->invalidateBlock(addr);
        if (dirty.has_value() && *dirty)
            dirtyAnywhere = true;
    }
    if (dirtyAnywhere) {
        memWritebacks_.add();
        if (listener_)
            listener_->onWriteback(alignDown(addr, cacheLineSize));
    }
}

void
CacheHierarchy::invalidateLine(Addr addr)
{
    for (auto &level : levels_)
        level->invalidateBlock(addr);
}

void
CacheHierarchy::snoopPage(Addr pn)
{
    Addr base = pn * pageSize;
    for (unsigned line = 0; line < linesPerPage; ++line)
        snoopLine(base + line * cacheLineSize);
}

void
CacheHierarchy::flushAll()
{
    // Flush inner levels first so their dirty victims merge into outer
    // levels before those are flushed.
    for (std::size_t i = 0; i < levels_.size(); ++i) {
        std::vector<CacheEviction> evictions;
        levels_[i]->flushAll(evictions);
        for (const CacheEviction &ev : evictions) {
            if (ev.dirty)
                propagateWriteback(i, ev.blockAddr);
        }
    }
}

} // namespace kona
