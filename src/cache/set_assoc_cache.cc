#include "cache/set_assoc_cache.h"

#include <unordered_set>

#include "common/logging.h"

namespace kona {

SetAssocCache::SetAssocCache(const CacheConfig &config,
                             MetricScope scope)
    : config_(config), scope_(std::move(scope)),
      hits_(scope_.counter("hits")),
      misses_(scope_.counter("misses")),
      writebacks_(scope_.counter("writebacks"))
{
    KONA_ASSERT(config.blockSize > 0 &&
                    (config.blockSize & (config.blockSize - 1)) == 0,
                "block size must be a power of two");
    KONA_ASSERT(config.associativity > 0, "associativity must be > 0");
    KONA_ASSERT(config.sizeBytes % (config.blockSize *
                                    config.associativity) == 0,
                "cache size must be a multiple of way size for ",
                config.name);
    numSets_ = config.sizeBytes / (config.blockSize *
                                   config.associativity);
    KONA_ASSERT(numSets_ > 0, "cache too small for its geometry");
    ways_.resize(numSets_ * config.associativity);
    used_.assign(numSets_, 0);
}

CacheOutcome
SetAssocCache::access(Addr addr, AccessType type,
                      CacheEviction &eviction)
{
    Addr blockNum = addr / config_.blockSize;
    std::size_t s = setIndex(blockNum);
    Way *set = setBase(s);
    std::size_t used = used_[s];

    for (std::size_t i = 0; i < used; ++i) {
        if (set[i].tag == blockNum) {
            Way hit = set[i];
            if (type == AccessType::Write)
                hit.dirty = true;
            for (std::size_t j = i; j > 0; --j)
                set[j] = set[j - 1];
            set[0] = hit;
            hits_.add();
            eviction.valid = false;
            return CacheOutcome::Hit;
        }
    }

    misses_.add();
    if (used >= config_.associativity) {
        const Way &victim = set[config_.associativity - 1];
        if (victim.dirty)
            writebacks_.add();
        eviction = {victim.tag * config_.blockSize, victim.dirty, true};
        used = config_.associativity - 1;
    } else {
        eviction.valid = false;
        used_[s] = static_cast<std::uint32_t>(used + 1);
    }
    for (std::size_t j = used; j > 0; --j)
        set[j] = set[j - 1];
    set[0] = {blockNum, type == AccessType::Write};
    return CacheOutcome::Miss;
}

void
SetAssocCache::fillDirty(Addr addr, CacheEviction &eviction)
{
    Addr blockNum = addr / config_.blockSize;
    std::size_t s = setIndex(blockNum);
    Way *set = setBase(s);
    std::size_t used = used_[s];

    for (std::size_t i = 0; i < used; ++i) {
        if (set[i].tag == blockNum) {
            for (std::size_t j = i; j > 0; --j)
                set[j] = set[j - 1];
            set[0] = {blockNum, true};
            eviction.valid = false;
            return;
        }
    }
    if (used >= config_.associativity) {
        const Way &victim = set[config_.associativity - 1];
        if (victim.dirty)
            writebacks_.add();
        eviction = {victim.tag * config_.blockSize, victim.dirty, true};
        used = config_.associativity - 1;
    } else {
        eviction.valid = false;
        used_[s] = static_cast<std::uint32_t>(used + 1);
    }
    for (std::size_t j = used; j > 0; --j)
        set[j] = set[j - 1];
    set[0] = {blockNum, true};
}

bool
SetAssocCache::contains(Addr addr) const
{
    Addr blockNum = addr / config_.blockSize;
    std::size_t s = setIndex(blockNum);
    const Way *set = setBase(s);
    std::size_t used = used_[s];
    for (std::size_t i = 0; i < used; ++i) {
        if (set[i].tag == blockNum)
            return true;
    }
    return false;
}

bool
SetAssocCache::holdsLineOfPage(Addr pn) const
{
    Addr firstBlock = pn * pageSize / config_.blockSize;
    std::size_t count = config_.blockSize < pageSize
                            ? pageSize / config_.blockSize
                            : 1;
    for (std::size_t k = 0; k < count; ++k) {
        Addr blockNum = firstBlock + k;
        const Way *set = setBase(setIndex(blockNum));
        std::size_t used = used_[setIndex(blockNum)];
        for (std::size_t i = 0; i < used; ++i) {
            if (set[i].tag == blockNum)
                return true;
        }
    }
    return false;
}

std::optional<bool>
SetAssocCache::invalidateBlock(Addr addr)
{
    Addr blockNum = addr / config_.blockSize;
    std::size_t s = setIndex(blockNum);
    Way *set = setBase(s);
    std::size_t used = used_[s];
    for (std::size_t i = 0; i < used; ++i) {
        if (set[i].tag == blockNum) {
            bool dirty = set[i].dirty;
            for (std::size_t j = i; j + 1 < used; ++j)
                set[j] = set[j + 1];
            used_[s] = static_cast<std::uint32_t>(used - 1);
            return dirty;
        }
    }
    return std::nullopt;
}

void
SetAssocCache::flushAll(std::vector<CacheEviction> &evictions)
{
    for (std::size_t s = 0; s < numSets_; ++s) {
        const Way *set = setBase(s);
        std::size_t used = used_[s];
        for (std::size_t i = 0; i < used; ++i) {
            if (set[i].dirty)
                writebacks_.add();
            evictions.push_back({set[i].tag * config_.blockSize,
                                 set[i].dirty, true});
        }
        used_[s] = 0;
    }
}

bool
SetAssocCache::checkInvariants() const
{
    for (std::size_t s = 0; s < numSets_; ++s) {
        std::size_t used = used_[s];
        if (used > config_.associativity)
            return false;
        const Way *set = setBase(s);
        std::unordered_set<Addr> tags;
        for (std::size_t i = 0; i < used; ++i) {
            if (!tags.insert(set[i].tag).second)
                return false;      // duplicate tag in a set
            if (setIndex(set[i].tag) != s)
                return false;      // tag hashed to the wrong set
        }
    }
    return true;
}

} // namespace kona
