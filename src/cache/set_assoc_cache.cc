#include "cache/set_assoc_cache.h"

#include <unordered_set>

#include "common/logging.h"

namespace kona {

SetAssocCache::SetAssocCache(const CacheConfig &config,
                             MetricScope scope)
    : config_(config), scope_(std::move(scope)),
      hits_(scope_.counter("hits")),
      misses_(scope_.counter("misses")),
      writebacks_(scope_.counter("writebacks"))
{
    KONA_ASSERT(config.blockSize > 0 &&
                    (config.blockSize & (config.blockSize - 1)) == 0,
                "block size must be a power of two");
    KONA_ASSERT(config.associativity > 0, "associativity must be > 0");
    KONA_ASSERT(config.sizeBytes % (config.blockSize *
                                    config.associativity) == 0,
                "cache size must be a multiple of way size for ",
                config.name);
    numSets_ = config.sizeBytes / (config.blockSize *
                                   config.associativity);
    KONA_ASSERT(numSets_ > 0, "cache too small for its geometry");
    sets_.resize(numSets_);
}

CacheOutcome
SetAssocCache::access(Addr addr, AccessType type,
                      std::vector<CacheEviction> &evictions)
{
    Addr blockNum = addr / config_.blockSize;
    Set &set = sets_[setIndex(blockNum)];

    for (auto it = set.begin(); it != set.end(); ++it) {
        if (it->tag == blockNum) {
            if (type == AccessType::Write)
                it->dirty = true;
            set.splice(set.begin(), set, it);
            hits_.add();
            return CacheOutcome::Hit;
        }
    }

    misses_.add();
    if (set.size() >= config_.associativity) {
        const Way &victim = set.back();
        if (victim.dirty)
            writebacks_.add();
        evictions.push_back({victim.tag * config_.blockSize,
                             victim.dirty});
        set.pop_back();
    }
    set.push_front({blockNum, type == AccessType::Write});
    return CacheOutcome::Miss;
}

void
SetAssocCache::fillDirty(Addr addr, std::vector<CacheEviction> &evictions)
{
    Addr blockNum = addr / config_.blockSize;
    Set &set = sets_[setIndex(blockNum)];

    for (auto it = set.begin(); it != set.end(); ++it) {
        if (it->tag == blockNum) {
            it->dirty = true;
            set.splice(set.begin(), set, it);
            return;
        }
    }
    if (set.size() >= config_.associativity) {
        const Way &victim = set.back();
        if (victim.dirty)
            writebacks_.add();
        evictions.push_back({victim.tag * config_.blockSize,
                             victim.dirty});
        set.pop_back();
    }
    set.push_front({blockNum, true});
}

bool
SetAssocCache::contains(Addr addr) const
{
    Addr blockNum = addr / config_.blockSize;
    const Set &set = sets_[setIndex(blockNum)];
    for (const Way &way : set) {
        if (way.tag == blockNum)
            return true;
    }
    return false;
}

std::optional<bool>
SetAssocCache::invalidateBlock(Addr addr)
{
    Addr blockNum = addr / config_.blockSize;
    Set &set = sets_[setIndex(blockNum)];
    for (auto it = set.begin(); it != set.end(); ++it) {
        if (it->tag == blockNum) {
            bool dirty = it->dirty;
            set.erase(it);
            return dirty;
        }
    }
    return std::nullopt;
}

void
SetAssocCache::flushAll(std::vector<CacheEviction> &evictions)
{
    for (Set &set : sets_) {
        for (const Way &way : set) {
            if (way.dirty)
                writebacks_.add();
            evictions.push_back({way.tag * config_.blockSize, way.dirty});
        }
        set.clear();
    }
}

bool
SetAssocCache::checkInvariants() const
{
    for (std::size_t i = 0; i < sets_.size(); ++i) {
        const Set &set = sets_[i];
        if (set.size() > config_.associativity)
            return false;
        std::unordered_set<Addr> tags;
        for (const Way &way : set) {
            if (!tags.insert(way.tag).second)
                return false;      // duplicate tag in a set
            if (setIndex(way.tag) != i)
                return false;      // tag hashed to the wrong set
        }
    }
    return true;
}

} // namespace kona
