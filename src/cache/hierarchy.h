/**
 * @file
 * CacheHierarchy: a multi-level cache model that exposes exactly the
 * two memory-side coherence events Kona's hardware primitives need:
 *
 *  - onLineRequest: a cache-line request escaped the hierarchy and
 *    reached the memory controller / VFMem directory (cache-remote-data);
 *  - onWriteback: a dirty line was written back to memory
 *    (track-local-data).
 *
 * The model is non-inclusive: a dirty victim of level i is filled into
 * level i+1; a dirty victim of the last level is a memory writeback.
 * snoopLine() force-flushes a line from every level, modelling the
 * FPGA snooping the CPU caches before it evicts a page (§4.4).
 */

#ifndef KONA_CACHE_HIERARCHY_H
#define KONA_CACHE_HIERARCHY_H

#include <memory>
#include <vector>

#include "cache/set_assoc_cache.h"
#include "common/stats.h"
#include "common/types.h"

namespace kona {

/** Memory-side observer of the coherence traffic (the FPGA directory). */
class MemorySideListener
{
  public:
    virtual ~MemorySideListener() = default;

    /** A line request reached memory (LLC miss). */
    virtual void onLineRequest(Addr lineAddr, AccessType type) = 0;

    /** A dirty line was written back to memory. */
    virtual void onWriteback(Addr lineAddr) = 0;
};

/** Geometry for a whole CPU hierarchy. */
struct HierarchyConfig
{
    std::vector<CacheConfig> levels = {
        {"L1d", 32 * KiB, 8, cacheLineSize},
        {"L2", 1 * MiB, 16, cacheLineSize},
        {"L3", 8 * MiB, 16, cacheLineSize},
    };

    /** A smaller hierarchy for MB-scale workloads, keeping the same
     *  L1:L2:L3 shape so miss-rate structure is preserved. */
    static HierarchyConfig scaled();
};

/** Multi-level write-back hierarchy with coherence event callbacks. */
class CacheHierarchy
{
  public:
    /** @param scope Telemetry scope; each level registers under
     *         "<scope>.<level-name>" and the hierarchy itself registers
     *         "mem_requests"/"mem_writebacks". */
    explicit CacheHierarchy(const HierarchyConfig &config = {},
                            MetricScope scope = {});

    /** Attach the memory-side observer (may be null). */
    void setListener(MemorySideListener *listener)
    {
        listener_ = listener;
    }

    /**
     * Simulate an access of @p size bytes at @p addr, splitting across
     * cache-lines. Emits line requests and writebacks to the listener.
     */
    void access(Addr addr, std::size_t size, AccessType type);

    /**
     * Simulate one line access and report where it hit.
     * @return The level index (0 = L1) that supplied the line, or -1
     *         when the request reached memory.
     */
    int accessOne(Addr lineAddr, AccessType type);

    /**
     * Flush the line containing @p addr from every level (snoop).
     * A dirty copy generates an onWriteback event.
     */
    void snoopLine(Addr addr);

    /** Snoop all 64 lines of 4KB page @p pn. */
    void snoopPage(Addr pn);

    /**
     * Drop the line containing @p addr from every level WITHOUT a
     * writeback event. Used when a fill must be rolled back (the
     * memory-side fetch failed and the line never really arrived).
     */
    void invalidateLine(Addr addr);

    /** Flush the entire hierarchy (end of run). */
    void flushAll();

    std::size_t numLevels() const { return levels_.size(); }
    const SetAssocCache &level(std::size_t i) const { return *levels_[i]; }

    /** Line requests that reached memory. */
    std::uint64_t memoryRequests() const { return memRequests_.value(); }
    /** Dirty-line writebacks that reached memory. */
    std::uint64_t memoryWritebacks() const
    {
        return memWritebacks_.value();
    }

  private:
    void accessLine(Addr lineAddr, AccessType type);
    /** Push a dirty victim of level @p from downwards (iterative). */
    void propagateWriteback(std::size_t from, Addr blockAddr);
    /** snoopLine restricted to levels whose bit is set in @p levelMask. */
    void snoopLineLevels(Addr addr, std::uint32_t levelMask);

    MetricScope scope_;
    std::vector<std::unique_ptr<SetAssocCache>> levels_;
    MemorySideListener *listener_ = nullptr;
    /** Reused by flushAll(); the per-access paths never allocate. */
    std::vector<CacheEviction> flushScratch_;
    Counter &memRequests_;
    Counter &memWritebacks_;
};

} // namespace kona

#endif // KONA_CACHE_HIERARCHY_H
