#include "core/eviction_handler.h"

#include <algorithm>
#include <array>
#include <bit>
#include <cstring>

#include "common/logging.h"
#include "rack/cl_log.h"

namespace kona {

namespace {

/** A run of contiguous dirty lines within a page. */
struct LineRun
{
    unsigned firstLine;
    unsigned count;
};

/** Fixed-size run scratch: 64 bits hold at most 32 distinct runs. */
using LineRuns = std::array<LineRun, linesPerPage / 2>;

/** Decompose a 64-bit dirty mask into contiguous runs (no heap). */
std::size_t
runsOf(std::uint64_t mask, LineRuns &runs)
{
    std::size_t count = 0;
    unsigned line = 0;
    while (line < linesPerPage) {
        if (((mask >> line) & 1ULL) == 0) {
            ++line;
            continue;
        }
        unsigned start = line;
        while (line < linesPerPage && ((mask >> line) & 1ULL))
            ++line;
        runs[count++] = {start, line - start};
    }
    return count;
}

} // namespace

EvictionHandler::EvictionHandler(Fabric &fabric, CoherentFpga &fpga,
                                 CacheHierarchy &hierarchy,
                                 Controller &controller,
                                 EvictionConfig config, MetricScope scope)
    : fabric_(fabric), fpga_(fpga), hierarchy_(hierarchy),
      controller_(controller), config_(config), scope_(std::move(scope)),
      retryPolicy_(config.retry.value_or(RetryPolicy{})),
      poller_(fabric.latency()),
      trace_(config.trace),
      pagesEvicted_(scope_.counter("pages_evicted")),
      silent_(scope_.counter("silent_evictions")),
      lines_(scope_.counter("dirty_lines_written")),
      wireBytes_(scope_.counter("bytes_on_wire")),
      retries_(scope_.counter("retry_backoffs")),
      retransmits_(scope_.counter("log_retransmits")),
      naks_(scope_.counter("checksum_naks")),
      ringStalls_(scope_.counter("stall_ring_full")),
      refetches_(scope_.counter("refetch_inflight")),
      conflictStalls_(scope_.counter("stall_page_conflict")),
      evacuateStalls_(scope_.counter("stall_evacuate_drain")),
      staleMarks_(scope_.counter("evictions_stale_marked")),
      inflight_(scope_.gauge("inflight")),
      retryBackoffNs_(scope_.histogram("retry_backoff_ns")),
      batchNs_(scope_.histogram("batch_ns"))
{
    KONA_ASSERT(config_.pipelineDepth > 0,
                "pipelineDepth must be >= 1");
}

EvictionHandler::NodeRing &
EvictionHandler::ringFor(NodeId node)
{
    auto [it, inserted] = rings_.try_emplace(node);
    if (inserted) {
        NodeRing &ring = it->second;
        ring.slots = std::max<std::size_t>(1, config_.pipelineDepth);
        ring.slotBytes =
            controller_.node(node).logSlotBytes(ring.slots);
        ring.owner.assign(ring.slots, 0);
    }
    return it->second;
}

QueuePair &
EvictionHandler::qpTo(NodeId node)
{
    auto it = qps_.find(node);
    if (it == qps_.end()) {
        it = qps_.emplace(node,
                          std::make_unique<QueuePair>(
                              fabric_, fpga_.nodeId(), node, cq_,
                              scope_.sub("qp" + std::to_string(node))))
                 .first;
    }
    return *it->second;
}

std::size_t
EvictionHandler::batchPageLimit() const
{
    // Bound one shipment so a worst-case (fully dirty, maximally
    // fragmented) batch still fits one ring slot of every node's log
    // landing area. FullPage mode bypasses the landing area and keeps
    // the historical cap.
    std::size_t limit = 256;
    if (config_.mode != EvictionMode::ClLog)
        return limit;
    std::size_t depth = std::max<std::size_t>(1, config_.pipelineDepth);
    for (NodeId id : controller_.nodeIds()) {
        std::size_t slotBytes =
            controller_.node(id).logSlotBytes(depth);
        limit = std::min(
            limit, std::max<std::size_t>(
                       1, slotBytes / clLogWorstBytesPerPage));
    }
    return limit;
}

void
EvictionHandler::record(const char *name, Tick ts, Tick dur,
                        std::uint32_t tid, std::vector<TraceArg> args)
{
    TraceEvent ev;
    ev.name = name;
    ev.cat = "evict";
    ev.ts = ts;
    ev.dur = dur;
    ev.tid = tid;
    ev.args = std::move(args);
    trace_->record(std::move(ev));
}

void
EvictionHandler::waitUntil(SimClock &clock, Tick until)
{
    if (until <= clock.now())
        return;
    breakdown_.waitNs += static_cast<double>(until - clock.now());
    clock.advanceTo(until);
}

void
EvictionHandler::awaitPageIdle(Addr vpn, SimClock &clock)
{
    while (true) {
        reapCq();
        finalizeDue(clock.now());
        auto it = inflightPage_.find(vpn);
        if (it == inflightPage_.end())
            return;
        std::uint64_t batchId = it->second;
        conflictStalls_.add();
        auto next = earliestDoneAt([batchId](const Shipment &s) {
            return s.batchId == batchId;
        });
        KONA_ASSERT(next.has_value(),
                    "in-flight page ", vpn, " has no live shipment");
        waitUntil(clock, *next);
    }
}

BatchTicket
EvictionHandler::submit(const EvictionRequest &req, SimClock &clock)
{
    if (req.vpns.empty())
        return {};

    // Cross-shard section: shipments post on the fabric, occupy
    // memory-node landing rings and report into the Controller.
    ShardSection section(gate_, GateEvent::Evict);

    // Chunk so a worst-case batch fits one landing-area ring slot on
    // every node; the ticket of the last chunk is returned (drain()
    // remains the barrier covering all of them).
    std::size_t limit = batchPageLimit();
    if (req.vpns.size() > limit) {
        BatchTicket last;
        for (std::size_t i = 0; i < req.vpns.size(); i += limit) {
            EvictionRequest chunk;
            chunk.vpns.assign(
                req.vpns.begin() + static_cast<std::ptrdiff_t>(i),
                req.vpns.begin() + static_cast<std::ptrdiff_t>(
                                       std::min(i + limit,
                                                req.vpns.size())));
            last = submit(chunk, clock);
        }
        return last;
    }

    const LatencyConfig &lat = fpga_.latency();

    // Fence conflicts first: a page already on the wire must land (or
    // fail) before this batch may pack a fresh snapshot of it.
    for (Addr vpn : req.vpns)
        awaitPageIdle(vpn, clock);

    std::uint64_t batchId = nextBatchId_++;
    Batch &batch = batches_[batchId];
    batch.id = batchId;
    batch.start = clock.now();
    batch.requested = req.vpns.size();
    batch.lane = traceLane_;

    // Phase 1: snoop CPU caches and read the dirty masks. Clean pages
    // drop silently; remote memory already holds their bytes.
    {
        Span scan(trace_, clock, "bitmap_scan", "evict", traceLane_);
        for (Addr vpn : req.vpns) {
            if (!fpga_.pageResident(vpn))
                continue;
            hierarchy_.snoopPage(vpn);
            clock.advance(static_cast<Tick>(lat.bitmapScanPerPageNs));
            breakdown_.bitmapNs += lat.bitmapScanPerPageNs;
            // Stale lines ride along: a copy that missed an earlier
            // shipment is freshened by the next eviction of the page.
            std::uint64_t mask = fpga_.dirtyMask(vpn) |
                                 fpga_.staleLines(vpn);
            if (mask == 0) {
                fpga_.dropPage(vpn);
                silent_.add();
                pagesEvicted_.add();
            } else {
                batch.pages.push_back({vpn, mask});
            }
        }
        scan.arg("dirty_pages", batch.pages.size());
    }
    if (batch.pages.empty()) {
        batch.open = false;
        batch.lastDone = clock.now();
        finalizeBatch(batch);
        batches_.erase(batchId);
        return {batchId};
    }

    // Phase 2: build one payload per destination node. The registered-
    // buffer copy is paid once per run (or page); replicas reuse the
    // aggregated bytes. Packing captures a snapshot: the dirty mask is
    // cleared here and the page fenced, so a write while the log is in
    // flight re-dirties it and finalize re-queues the page.
    struct NodePayload
    {
        std::vector<std::uint8_t> log;       ///< ClLog mode
        std::unique_ptr<ClLogWriter> writer; ///< builds + checksums log
        std::vector<WorkRequest> chain;      ///< FullPage mode
        std::vector<std::unique_ptr<std::vector<std::uint8_t>>>
            pageCopies;                      ///< FullPage staging
    };
    std::map<NodeId, NodePayload> perNode;

    Span packSpan(trace_, clock, "pack", "evict", traceLane_);
    double copyCost = 0.0;
    for (const PackedPage &page : batch.pages) {
        const std::uint8_t *frame = fpga_.framePointer(page.vpn);
        auto copies = fpga_.translation().translateAll(page.vpn *
                                                       pageSize);
        LineRuns runs;
        std::size_t runCount = runsOf(page.mask, runs);

        if (config_.mode == EvictionMode::ClLog) {
            // Gathering a page's dirty lines costs one page lookup,
            // a little work per contiguous run, and the byte copy
            // (the hardware prefetcher streams within runs).
            std::uint64_t bytes =
                static_cast<std::uint64_t>(std::popcount(page.mask)) *
                cacheLineSize;
            copyCost += lat.copySetupNs +
                        static_cast<double>(runCount) *
                            lat.copyPerRunNs +
                        static_cast<double>(bytes) * lat.copyPerKbNs /
                            1024.0;
        } else {
            copyCost += lat.copySetupNs +
                        static_cast<double>(pageSize) *
                            lat.copyPerKbNs / 1024.0;
        }

        for (const RemoteLocation &loc : copies) {
            batch.homes[page.vpn].push_back(loc.node);
            NodePayload &payload = perNode[loc.node];
            if (config_.mode == EvictionMode::ClLog) {
                if (!payload.writer) {
                    // Cap the log at one ring slot so an oversized
                    // shipment is rejected at append time.
                    payload.writer = std::make_unique<ClLogWriter>(
                        payload.log,
                        ringFor(loc.node).slotBytes);
                }
                for (std::size_t r = 0; r < runCount; ++r) {
                    const LineRun &run = runs[r];
                    bool fits = payload.writer->appendRun(
                        loc.addr + static_cast<Addr>(run.firstLine) *
                                       cacheLineSize,
                        frame + static_cast<std::size_t>(
                                    run.firstLine) * cacheLineSize,
                        run.count);
                    if (!fits)
                        fatal("CL log batch for node ", loc.node,
                              " exceeds its landing-area ring slot (",
                              payload.writer->maxBytes(),
                              " bytes at pipelineDepth ",
                              config_.pipelineDepth, ")");
                }
            } else {
                payload.pageCopies.push_back(
                    std::make_unique<std::vector<std::uint8_t>>(
                        frame, frame + pageSize));
                WorkRequest wr;
                wr.wrId = nextWrId_++;
                wr.opcode = RdmaOpcode::Write;
                wr.localBuf = payload.pageCopies.back()->data();
                wr.remoteKey = loc.regionKey;
                wr.remoteAddr = loc.addr;
                wr.length = pageSize;
                wr.signaled = false;
                payload.chain.push_back(wr);
            }
        }

        // Snapshot taken: further writes re-dirty the mask and the
        // fence keeps the frame out of victim selection until finalize.
        fpga_.clearDirty(page.vpn);
        fpga_.setEvictionInFlight(page.vpn, true);
        inflightPage_[page.vpn] = batchId;
    }
    clock.advance(static_cast<Tick>(copyCost));
    breakdown_.copyNs += copyCost;
    packSpan.arg("nodes", perNode.size());
    packSpan.end();

    // Phase 3: post one shipment per destination node into its ring
    // slot. Only slot acquisition can block the caller (counted); the
    // wire, unpack and ack proceed on each shipment's own timeline.
    for (auto &[nodeId, payload] : perNode) {
        if (fabric_.nodeDown(nodeId)) {
            controller_.reportOpFailure(nodeId);
            continue;
        }

        NodeRing &ring = ringFor(nodeId);
        auto freeSlot = [&ring]() -> int {
            for (std::size_t i = 0; i < ring.slots; ++i) {
                if (ring.owner[i] == 0)
                    return static_cast<int>(i);
            }
            return -1;
        };
        int slot = freeSlot();
        while (slot < 0) {
            // Backpressure: every slot holds an in-flight log. Fall
            // back to blocking on the oldest completion on this node.
            ringStalls_.add();
            if (config_.journal != nullptr)
                config_.journal->record(JournalKind::RingFullStall,
                                        nodeId, batchId);
            auto next = earliestDoneAt([nodeId](const Shipment &s) {
                return s.node == nodeId;
            });
            KONA_ASSERT(next.has_value(),
                        "full ring with no live shipment on node ",
                        nodeId);
            waitUntil(clock, *next);
            finalizeDue(clock.now());
            slot = freeSlot();
        }

        Shipment &s =
            shipments_.emplace_back(retryPolicy_, retrySeed_++);
        s.id = nextShipmentId_++;
        s.batchId = batchId;
        s.node = nodeId;
        s.slot = static_cast<std::size_t>(slot);
        s.clLog = config_.mode == EvictionMode::ClLog;
        if (s.clLog) {
            s.log = std::move(payload.log);
        } else {
            if (payload.chain.empty()) {
                shipments_.pop_back();
                continue;
            }
            payload.chain.back().signaled = true;
            s.chain = std::move(payload.chain);
            s.pageCopies = std::move(payload.pageCopies);
        }
        s.retry.bindTelemetry(&retries_, &retryBackoffNs_);
        ring.owner[s.slot] = s.id;
        s.timeline.advanceTo(clock.now());
        s.attrStart = s.timeline.now();
        postShipment(s);
        ++batch.outstanding;
        inflight_.set(static_cast<double>(shipments_.size()));
        reapCq();
    }

    batch.open = false;
    if (batch.outstanding == 0) {
        batch.lastDone = std::max(batch.lastDone, clock.now());
        finalizeBatch(batch);
        batches_.erase(batchId);
    }
    return {batchId};
}

void
EvictionHandler::postShipment(Shipment &s)
{
    NodeRing &ring = ringFor(s.node);
    MemoryNode &node = controller_.node(s.node);
    // One link per node: a shipment's wire time starts only when the
    // previous transfer to that node has left the NIC.
    const Tick parked = s.timeline.now();
    s.timeline.advanceTo(ring.wireFreeAt);
    s.comp[EvictComponent::Queueing] += s.timeline.now() - parked;
    s.wireStart = s.timeline.now();
    ++s.sends;
    if (s.clLog) {
        WorkRequest wr;
        wr.wrId = nextWrId_++;
        wr.opcode = RdmaOpcode::Write;
        wr.localBuf = s.log.data();
        wr.remoteKey = node.logRegion().key;
        wr.remoteAddr = node.logRegion().base +
                        static_cast<Addr>(s.slot) * ring.slotBytes;
        wr.length = s.log.size();
        wrOwner_[wr.wrId] = &s;
        PostResult posted = qpTo(s.node).post(wr, s.timeline);
        KONA_ASSERT(posted.cqesPushed == 1,
                    "eviction post must push exactly one CQE");
    } else {
        for (const WorkRequest &wr : s.chain)
            wrOwner_[wr.wrId] = &s;
        PostResult posted = qpTo(s.node).postLinked(s.chain,
                                                    s.timeline);
        KONA_ASSERT(posted.cqesPushed == 1,
                    "eviction doorbell must push exactly one CQE");
    }
}

void
EvictionHandler::reapCq()
{
    while (!cq_.empty())
        handleCompletion(cq_.pop());
}

void
EvictionHandler::handleCompletion(const WorkCompletion &wc)
{
    auto owner = wrOwner_.find(wc.wrId);
    KONA_ASSERT(owner != wrOwner_.end(),
                "eviction CQE for unknown work request ", wc.wrId);
    Shipment &s = *owner->second;
    wrOwner_.erase(owner);

    const LatencyConfig &lat = fpga_.latency();
    NodeRing &ring = ringFor(s.node);
    std::uint32_t lane = batches_.at(s.batchId).lane;
    poller_.complete(wc, s.timeline);
    ring.wireFreeAt = std::max(ring.wireFreeAt, wc.completeAt);
    breakdown_.rdmaNs +=
        static_cast<double>(s.timeline.now() - s.wireStart);
    s.comp[EvictComponent::Wire] += s.timeline.now() - s.wireStart;

    if (wc.status != WcStatus::Success) {
        // Dropped or timed out: the payload never landed. A node the
        // health scorer already quarantined gets one attempt per batch
        // (so recovery evidence keeps flowing) but no retry storm —
        // its missed copies are stale-marked at finalize instead.
        controller_.reportOpFailure(s.node);
        if (fabric_.nodeDown(s.node) || !s.retry.shouldRetry() ||
            controller_.health(s.node) == NodeHealth::Quarantined) {
            settleShipment(s, false);
            return;
        }
        const Tick backoffStart = s.timeline.now();
        s.retry.backoff(s.timeline);
        s.comp[EvictComponent::Retry] += s.timeline.now() - backoffStart;
        postShipment(s);
        return;
    }

    // The attempt's wire time is latency evidence for the gray-failure
    // scorer: a straggler node that only ever receives evictions (its
    // slabs hold no read-hot primaries) would otherwise never attract
    // a latency sample and could not reach Suspect.
    controller_.observeFetch(s.node, wc.completeAt - s.wireStart);

    std::size_t bytes =
        s.clLog ? s.log.size() : s.chain.size() * pageSize;
    if (tracing()) {
        record("wire", s.wireStart, s.timeline.now() - s.wireStart,
               lane,
               {{"node", std::to_string(s.node), false},
                {"bytes", std::to_string(bytes), false},
                {"send", std::to_string(s.sends), false}});
    }

    if (!s.clLog) {
        wireBytes_.add(bytes);
        controller_.reportOpSuccess(s.node);
        settleShipment(s, true);
        return;
    }

    // The Cache-line Log Receiver verifies every record's CRC before
    // distributing; a NAK means the payload was corrupted past the
    // transport's checks — retransmit the slot. One receiver thread
    // per node serializes unpacks (recvFreeAt).
    MemoryNode &node = controller_.node(s.node);
    const Tick recvWaitStart = s.timeline.now();
    Tick unpackStart = std::max(s.timeline.now(), ring.recvFreeAt);
    LogReceiptStats receipt = node.receiveLog(
        static_cast<Addr>(s.slot) * ring.slotBytes, s.log.size());
    Tick unpackDur = static_cast<Tick>(receipt.unpackNs);
    ring.recvFreeAt = unpackStart + unpackDur;
    s.timeline.advanceTo(ring.recvFreeAt);
    s.comp[EvictComponent::Queueing] += unpackStart - recvWaitStart;
    s.comp[EvictComponent::Unpack] += s.timeline.now() - unpackStart;
    breakdown_.unpackNs += receipt.unpackNs;
    Tick ackStart = s.timeline.now();
    s.timeline.advance(static_cast<Tick>(lat.ackNs));
    s.comp[EvictComponent::Ack] += s.timeline.now() - ackStart;
    if (tracing()) {
        record("unpack", unpackStart, unpackDur,
               traceNodeThread(s.node),
               {{"lines", std::to_string(receipt.lines), false},
                {"runs", std::to_string(receipt.runs), false},
                {"ok", receipt.ok ? "true" : "false", true}});
        record("ack", ackStart, s.timeline.now() - ackStart, lane,
               {{"node", std::to_string(s.node), false}});
    }
    wireBytes_.add(s.log.size());
    if (!receipt.ok) {
        naks_.add();
        controller_.observeNak(s.node);
        if (!s.retry.shouldRetry()) {
            settleShipment(s, false);
            return;
        }
        const Tick backoffStart = s.timeline.now();
        s.retry.backoff(s.timeline);
        s.comp[EvictComponent::Retry] += s.timeline.now() - backoffStart;
        postShipment(s);
        return;
    }
    controller_.reportOpSuccess(s.node);
    settleShipment(s, true);
}

void
EvictionHandler::settleShipment(Shipment &s, bool succeeded)
{
    s.acked = true;
    s.succeeded = succeeded;
    s.doneAt = s.timeline.now();
    retransmits_.add(s.sends - 1);
    shipAttr_.record(s.doneAt - s.attrStart, s.comp.data(),
                     EvictComponent::Other);
    if (!succeeded && config_.journal != nullptr)
        config_.journal->record(JournalKind::RetriesExhausted, s.node,
                                s.batchId, s.sends);
}

std::size_t
EvictionHandler::finalizeDue(Tick now)
{
    std::size_t batchesFinalized = 0;
    for (auto it = shipments_.begin(); it != shipments_.end();) {
        Shipment &s = *it;
        if (!s.acked || s.doneAt > now) {
            ++it;
            continue;
        }
        NodeRing &ring = ringFor(s.node);
        if (ring.owner[s.slot] == s.id)
            ring.owner[s.slot] = 0;
        // Unsignaled chain WRs never produce CQEs; purge their
        // ownership entries before the shipment dies.
        for (const WorkRequest &wr : s.chain)
            wrOwner_.erase(wr.wrId);
        Batch &batch = batches_.at(s.batchId);
        if (s.succeeded)
            batch.reached.push_back(s.node);
        batch.lastDone = std::max(batch.lastDone, s.doneAt);
        --batch.outstanding;
        bool batchDone = batch.outstanding == 0 && !batch.open;
        std::uint64_t batchId = s.batchId;
        it = shipments_.erase(it);
        inflight_.set(static_cast<double>(shipments_.size()));
        if (batchDone) {
            finalizeBatch(batches_.at(batchId));
            batches_.erase(batchId);
            ++batchesFinalized;
        }
    }
    return batchesFinalized;
}

void
EvictionHandler::finalizeBatch(Batch &batch)
{
    // Drop every page whose data reached at least one copy; restore
    // the packed mask of pages that reached none (their lines must
    // ship again later); re-queue pages written while in flight.
    for (const PackedPage &page : batch.pages) {
        fpga_.setEvictionInFlight(page.vpn, false);
        inflightPage_.erase(page.vpn);
        bool safe = false;
        for (NodeId home : batch.homes[page.vpn]) {
            bool reached = false;
            for (NodeId ok : batch.reached)
                reached |= home == ok;
            if (reached) {
                safe = true;
                // The shipped mask included every previously-stale
                // line of the page, so this copy is fresh again.
                fpga_.clearStaleHome(page.vpn, home);
            } else if (!fabric_.nodeDown(home) &&
                       controller_.health(home) != NodeHealth::Failed) {
                // A dead home is fine to miss: the rebuild re-copies
                // it from a survivor. A *live* home that missed
                // (retries exhausted against a gray-failing link) now
                // holds stale bytes — mark the copy so reads skip it
                // and the page's next eviction re-ships these lines.
                fpga_.markStaleHome(page.vpn, home, page.mask);
                staleMarks_.add();
                if (config_.journal != nullptr)
                    config_.journal->record(JournalKind::StaleHomeMark,
                                            home, page.vpn, page.mask);
            }
        }
        if (!safe) {
            warn("eviction of page ", page.vpn,
                 " failed: all replicas down; keeping it resident");
            fpga_.orDirtyMask(page.vpn, page.mask);
            continue;
        }
        if (fpga_.dirtyMask(page.vpn) != 0) {
            // Fenced write landed while the log was on the wire: the
            // shipped snapshot is stale for those lines. Keep the page
            // resident and re-queue it instead of losing the write.
            refetches_.add();
            requeue_.insert(page.vpn);
            continue;
        }
        lines_.add(std::popcount(page.mask));
        fpga_.dropPage(page.vpn);
        pagesEvicted_.add();
    }
    Tick end = std::max(batch.lastDone, batch.start);
    batchNs_.record(static_cast<double>(end - batch.start));
    if (tracing()) {
        record("evict_batch", batch.start, end - batch.start,
               batch.lane,
               {{"pages", std::to_string(batch.requested), false},
                {"dirty_pages", std::to_string(batch.pages.size()),
                 false}});
    }
}

std::size_t
EvictionHandler::poll(const SimClock &clock)
{
    // Gated: reaping can retransmit (fabric post) and finalizing can
    // drop governed pages (directory release via the FPGA drop hook).
    ShardSection section(gate_, GateEvent::Evict);
    reapCq();
    return finalizeDue(clock.now());
}

void
EvictionHandler::drain(SimClock &clock)
{
    ShardSection section(gate_, GateEvent::Evict);
    while (true) {
        reapCq();
        finalizeDue(clock.now());
        if (shipments_.empty()) {
            if (requeue_.empty())
                return;
            // Pages re-dirtied while in flight go around again until
            // the engine is quiescent.
            EvictionRequest again;
            again.vpns.assign(requeue_.begin(), requeue_.end());
            requeue_.clear();
            submit(again, clock);
            continue;
        }
        auto next =
            earliestDoneAt([](const Shipment &) { return true; });
        KONA_ASSERT(next.has_value(), "unreaped eviction shipment");
        waitUntil(clock, *next);
        finalizeDue(clock.now());
    }
}

void
EvictionHandler::drainNode(NodeId node, SimClock &clock)
{
    ShardSection section(gate_, GateEvent::Evict);
    while (true) {
        reapCq();
        finalizeDue(clock.now());
        auto next = earliestDoneAt([node](const Shipment &s) {
            return s.node == node;
        });
        if (!next.has_value())
            return;
        evacuateStalls_.add();
        waitUntil(clock, *next);
        finalizeDue(clock.now());
    }
}

bool
EvictionHandler::complete(BatchTicket ticket) const
{
    return ticket.valid() && batches_.find(ticket.id) == batches_.end();
}

void
EvictionHandler::evictPage(Addr vpn, SimClock &clock)
{
    evictBatch({vpn}, clock);
}

void
EvictionHandler::evictBatch(const std::vector<Addr> &vpns,
                            SimClock &clock)
{
    EvictionRequest req;
    req.vpns = vpns;
    submit(req, clock);
    drain(clock);
}

bool
EvictionHandler::flushPage(Addr vpn, SimClock &clock)
{
    ShardSection section(gate_, GateEvent::Evict);
    // Targeted barrier for coherence invalidations: ship this page and
    // wait for it alone, leaving unrelated in-flight shipments (and
    // their timelines) untouched. A few rounds bound the case where a
    // fenced write re-dirtied the page while its log was on the wire;
    // in the invalidation path the holder is stalled, so one round is
    // the norm.
    for (int round = 0; round < 4 && fpga_.pageResident(vpn); ++round) {
        EvictionRequest req;
        req.vpns.push_back(vpn);
        submit(req, clock);
        awaitPageIdle(vpn, clock);
        // Any re-queue entry is ours now: the next round (or the fact
        // that the page dropped) supersedes it.
        requeue_.erase(vpn);
    }
    return !fpga_.pageResident(vpn);
}

void
EvictionHandler::pump(SimClock &backgroundClock, std::size_t freeWays)
{
    // Caller-provided-buffer protocol: the common every-set-has-room
    // case costs one counting pass and no writes; when the store owes
    // more victims than the warm buffer holds, grow once and re-ask.
    std::size_t owed = fpga_.backgroundVictims(
        freeWays, victimBuf_.data(), victimBuf_.size());
    if (owed == 0)
        return;
    if (owed > victimBuf_.size()) {
        victimBuf_.resize(owed);
        owed = fpga_.backgroundVictims(freeWays, victimBuf_.data(),
                                       victimBuf_.size());
    }
    pumpVpns_.clear();
    for (std::size_t i = 0; i < owed && i < victimBuf_.size(); ++i)
        pumpVpns_.push_back(victimBuf_[i].vfmemPage);
    // Background work renders on its own trace lane.
    std::uint32_t prevLane = traceLane_;
    traceLane_ = traceBackgroundThread;
    evictBatch(pumpVpns_, backgroundClock);
    traceLane_ = prevLane;
}

} // namespace kona
