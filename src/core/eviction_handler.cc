#include "core/eviction_handler.h"

#include <bit>
#include <cstring>
#include <map>
#include <memory>

#include "common/logging.h"
#include "rack/cl_log.h"

namespace kona {

namespace {

/** A run of contiguous dirty lines within a page. */
struct LineRun
{
    unsigned firstLine;
    unsigned count;
};

/** Decompose a 64-bit dirty mask into contiguous runs. */
std::vector<LineRun>
runsOf(std::uint64_t mask)
{
    std::vector<LineRun> runs;
    unsigned line = 0;
    while (line < linesPerPage) {
        if (((mask >> line) & 1ULL) == 0) {
            ++line;
            continue;
        }
        unsigned start = line;
        while (line < linesPerPage && ((mask >> line) & 1ULL))
            ++line;
        runs.push_back({start, line - start});
    }
    return runs;
}

} // namespace

EvictionHandler::EvictionHandler(Fabric &fabric, CoherentFpga &fpga,
                                 CacheHierarchy &hierarchy,
                                 Controller &controller,
                                 EvictionMode mode, MetricScope scope)
    : fabric_(fabric), fpga_(fpga), hierarchy_(hierarchy),
      controller_(controller), mode_(mode), scope_(std::move(scope)),
      pagesEvicted_(scope_.counter("pages_evicted")),
      silent_(scope_.counter("silent_evictions")),
      lines_(scope_.counter("dirty_lines_written")),
      wireBytes_(scope_.counter("bytes_on_wire")),
      retries_(scope_.counter("retry_backoffs")),
      retransmits_(scope_.counter("log_retransmits")),
      naks_(scope_.counter("checksum_naks")),
      retryBackoffNs_(scope_.histogram("retry_backoff_ns")),
      batchNs_(scope_.histogram("batch_ns"))
{
}

void
EvictionHandler::evictPage(Addr vpn, SimClock &clock)
{
    evictBatch({vpn}, clock);
}

void
EvictionHandler::evictBatch(const std::vector<Addr> &vpns,
                            SimClock &clock)
{
    // Bound one shipment so a worst-case (fully dirty) batch still
    // fits in the memory nodes' log landing areas.
    constexpr std::size_t batchLimit = 256;
    if (vpns.size() > batchLimit) {
        for (std::size_t i = 0; i < vpns.size(); i += batchLimit) {
            std::vector<Addr> chunk(
                vpns.begin() + i,
                vpns.begin() + std::min(i + batchLimit, vpns.size()));
            evictBatch(chunk, clock);
        }
        return;
    }

    const LatencyConfig &lat = fpga_.latency();

    Span batchSpan(trace_, clock, "evict_batch", "evict", traceLane_);
    batchSpan.arg("pages", vpns.size());
    Tick batchStart = clock.now();

    // Phase 1: snoop CPU caches and read the dirty masks. Clean pages
    // drop silently; remote memory already holds their bytes.
    struct DirtyPage
    {
        Addr vpn;
        std::uint64_t mask;
    };
    std::vector<DirtyPage> dirty;
    {
        Span scan(trace_, clock, "bitmap_scan", "evict", traceLane_);
        for (Addr vpn : vpns) {
            if (!fpga_.pageResident(vpn))
                continue;
            hierarchy_.snoopPage(vpn);
            clock.advance(static_cast<Tick>(lat.bitmapScanPerPageNs));
            breakdown_.bitmapNs += lat.bitmapScanPerPageNs;
            std::uint64_t mask = fpga_.dirtyMask(vpn);
            if (mask == 0) {
                fpga_.dropPage(vpn);
                silent_.add();
                pagesEvicted_.add();
            } else {
                dirty.push_back({vpn, mask});
            }
        }
        scan.arg("dirty_pages", dirty.size());
    }
    batchSpan.arg("dirty_pages", dirty.size());
    if (dirty.empty()) {
        batchNs_.record(static_cast<double>(clock.now() - batchStart));
        return;
    }

    // Phase 2: build one payload per destination node. The registered-
    // buffer copy is paid once per run (or page); replicas reuse the
    // aggregated bytes.
    struct NodePayload
    {
        std::vector<std::uint8_t> log;      ///< ClLog mode
        std::unique_ptr<ClLogWriter> writer; ///< builds + checksums log
        std::vector<WorkRequest> chain;     ///< FullPage mode
        std::vector<std::unique_ptr<std::vector<std::uint8_t>>>
            pageCopies;                     ///< FullPage staging
    };
    std::map<NodeId, NodePayload> perNode;
    std::map<Addr, std::vector<NodeId>> homesOf;

    Span packSpan(trace_, clock, "pack", "evict", traceLane_);
    double copyCost = 0.0;
    for (const DirtyPage &page : dirty) {
        const std::uint8_t *frame = fpga_.framePointer(page.vpn);
        auto copies = fpga_.translation().translateAll(page.vpn *
                                                       pageSize);
        std::vector<LineRun> runs = runsOf(page.mask);

        if (mode_ == EvictionMode::ClLog) {
            // Gathering a page's dirty lines costs one page lookup,
            // a little work per contiguous run, and the byte copy
            // (the hardware prefetcher streams within runs).
            std::uint64_t bytes =
                static_cast<std::uint64_t>(std::popcount(page.mask)) *
                cacheLineSize;
            copyCost += lat.copySetupNs +
                        static_cast<double>(runs.size()) *
                            lat.copyPerRunNs +
                        static_cast<double>(bytes) * lat.copyPerKbNs /
                            1024.0;
        } else {
            copyCost += lat.copySetupNs +
                        static_cast<double>(pageSize) *
                            lat.copyPerKbNs / 1024.0;
        }

        for (const RemoteLocation &loc : copies) {
            homesOf[page.vpn].push_back(loc.node);
            NodePayload &payload = perNode[loc.node];
            if (mode_ == EvictionMode::ClLog) {
                if (!payload.writer) {
                    // Cap the log at the node's landing area so an
                    // oversized shipment is rejected at append time.
                    payload.writer = std::make_unique<ClLogWriter>(
                        payload.log,
                        controller_.node(loc.node).logRegion().length);
                }
                for (const LineRun &run : runs) {
                    bool fits = payload.writer->appendRun(
                        loc.addr + static_cast<Addr>(run.firstLine) *
                                       cacheLineSize,
                        frame + static_cast<std::size_t>(
                                    run.firstLine) * cacheLineSize,
                        run.count);
                    if (!fits)
                        fatal("CL log batch for node ", loc.node,
                              " exceeds its landing area (",
                              payload.writer->maxBytes(), " bytes)");
                }
            } else {
                payload.pageCopies.push_back(
                    std::make_unique<std::vector<std::uint8_t>>(
                        frame, frame + pageSize));
                WorkRequest wr;
                wr.wrId = nextWrId_++;
                wr.opcode = RdmaOpcode::Write;
                wr.localBuf = payload.pageCopies.back()->data();
                wr.remoteKey = loc.regionKey;
                wr.remoteAddr = loc.addr;
                wr.length = pageSize;
                wr.signaled = false;
                payload.chain.push_back(wr);
            }
        }
    }
    clock.advance(static_cast<Tick>(copyCost));
    breakdown_.copyNs += copyCost;
    packSpan.arg("nodes", perNode.size());
    packSpan.end();

    // Phase 3: ship every node's payload in parallel; the batch
    // completes when the slowest destination acks.
    Tick start = clock.now();
    Tick maxEnd = start;
    double maxRdma = 0.0;
    double maxAck = 0.0;
    std::vector<NodeId> reached;

    bool tracing = trace_ != nullptr && trace_->enabled();
    auto record = [this](const char *name, Tick ts, Tick dur,
                         std::uint32_t tid,
                         std::vector<TraceArg> args) {
        TraceEvent ev;
        ev.name = name;
        ev.cat = "evict";
        ev.ts = ts;
        ev.dur = dur;
        ev.tid = tid;
        ev.args = std::move(args);
        trace_->record(std::move(ev));
    };

    for (auto &[nodeId, payload] : perNode) {
        if (fabric_.nodeDown(nodeId)) {
            controller_.reportOpFailure(nodeId);
            continue;
        }
        MemoryNode &node = controller_.node(nodeId);
        SimClock branch;
        branch.advanceTo(start);

        if (mode_ == EvictionMode::ClLog) {
            QueuePair &qp = fpga_.qpTo(nodeId);
            RetryState retry(retryPolicy_, retrySeed_++);
            retry.bindTelemetry(&retries_, &retryBackoffNs_);
            bool shipped = false;
            std::uint64_t sends = 0;
            while (true) {
                WorkRequest wr;
                wr.wrId = nextWrId_++;
                wr.opcode = RdmaOpcode::Write;
                wr.localBuf = payload.log.data();
                wr.remoteKey = node.logRegion().key;
                wr.remoteAddr = node.logRegion().base;
                wr.length = payload.log.size();
                ++sends;
                Tick wireStart = branch.now();
                if (!qp.post(wr, branch)) {
                    // Dropped or timed out: the log never landed.
                    fpga_.poller().waitOne(fpga_.cq(), branch);
                    controller_.reportOpFailure(nodeId);
                    if (fabric_.nodeDown(nodeId) || !retry.shouldRetry())
                        break;
                    retry.backoff(branch);
                    continue;
                }
                fpga_.poller().waitOne(fpga_.cq(), branch);
                if (tracing) {
                    record("wire", wireStart, branch.now() - wireStart,
                           traceLane_,
                           {{"node", std::to_string(nodeId), false},
                            {"bytes",
                             std::to_string(payload.log.size()), false},
                            {"send", std::to_string(sends), false}});
                }
                double rdmaPart = static_cast<double>(branch.now() -
                                                      start);
                // The Cache-line Log Receiver verifies every record's
                // CRC before distributing; a NAK means the payload was
                // corrupted past the transport's checks — retransmit.
                Tick unpackStart = branch.now();
                LogReceiptStats receipt =
                    node.receiveLog(0, payload.log.size());
                branch.advance(static_cast<Tick>(receipt.unpackNs +
                                                 lat.ackNs));
                if (tracing) {
                    Tick unpackDur =
                        static_cast<Tick>(receipt.unpackNs);
                    record("unpack", unpackStart, unpackDur,
                           traceNodeThread(nodeId),
                           {{"lines", std::to_string(receipt.lines),
                             false},
                            {"runs", std::to_string(receipt.runs),
                             false},
                            {"ok", receipt.ok ? "true" : "false",
                             true}});
                    record("ack", unpackStart + unpackDur,
                           branch.now() - (unpackStart + unpackDur),
                           traceLane_,
                           {{"node", std::to_string(nodeId), false}});
                }
                wireBytes_.add(payload.log.size());
                if (!receipt.ok) {
                    naks_.add();
                    if (!retry.shouldRetry())
                        break;
                    retry.backoff(branch);
                    continue;
                }
                controller_.reportOpSuccess(nodeId);
                maxAck = std::max(maxAck,
                                  static_cast<double>(branch.now() -
                                                      start) - rdmaPart);
                maxRdma = std::max(maxRdma, rdmaPart);
                shipped = true;
                break;
            }
            retransmits_.add(sends - 1);
            if (!shipped)
                continue;
        } else {
            if (payload.chain.empty())
                continue;
            payload.chain.back().signaled = true;
            QueuePair &qp = fpga_.qpTo(nodeId);
            RetryState retry(retryPolicy_, retrySeed_++);
            retry.bindTelemetry(&retries_, &retryBackoffNs_);
            bool shipped = false;
            std::uint64_t sends = 0;
            while (true) {
                // A mid-chain failure fails the whole doorbell; pages
                // are idempotent writes, so replaying the entire chain
                // after backoff is safe.
                ++sends;
                Tick wireStart = branch.now();
                if (!qp.postLinked(payload.chain, branch)) {
                    fpga_.poller().waitOne(fpga_.cq(), branch);
                    controller_.reportOpFailure(nodeId);
                    if (fabric_.nodeDown(nodeId) || !retry.shouldRetry())
                        break;
                    retry.backoff(branch);
                    continue;
                }
                fpga_.poller().waitOne(fpga_.cq(), branch);
                if (tracing) {
                    record("wire", wireStart, branch.now() - wireStart,
                           traceLane_,
                           {{"node", std::to_string(nodeId), false},
                            {"bytes",
                             std::to_string(payload.chain.size() *
                                            pageSize), false},
                            {"send", std::to_string(sends), false}});
                }
                controller_.reportOpSuccess(nodeId);
                maxRdma = std::max(maxRdma,
                                   static_cast<double>(branch.now() -
                                                       start));
                wireBytes_.add(payload.chain.size() * pageSize);
                shipped = true;
                break;
            }
            retransmits_.add(sends - 1);
            if (!shipped)
                continue;
        }
        reached.push_back(nodeId);
        maxEnd = std::max(maxEnd, branch.now());
    }

    clock.advanceTo(maxEnd);
    breakdown_.rdmaNs += maxRdma;
    breakdown_.ackNs += maxAck;

    // Phase 4: drop every page whose data reached at least one copy.
    for (const DirtyPage &page : dirty) {
        bool safe = false;
        for (NodeId home : homesOf[page.vpn]) {
            for (NodeId ok : reached)
                safe |= home == ok;
        }
        if (!safe) {
            warn("eviction of page ", page.vpn,
                 " failed: all replicas down; keeping it resident");
            continue;
        }
        lines_.add(std::popcount(page.mask));
        fpga_.clearDirty(page.vpn);
        fpga_.dropPage(page.vpn);
        pagesEvicted_.add();
    }
    batchNs_.record(static_cast<double>(clock.now() - batchStart));
}

void
EvictionHandler::pump(SimClock &backgroundClock, std::size_t freeWays)
{
    std::vector<FMemCache::Victim> victims =
        fpga_.backgroundVictims(freeWays);
    if (victims.empty())
        return;
    std::vector<Addr> vpns;
    vpns.reserve(victims.size());
    for (const FMemCache::Victim &victim : victims)
        vpns.push_back(victim.vfmemPage);
    // Background work renders on its own trace lane.
    std::uint32_t prevLane = traceLane_;
    traceLane_ = traceBackgroundThread;
    evictBatch(vpns, backgroundClock);
    traceLane_ = prevLane;
}

} // namespace kona
