#include "core/kona_runtime.h"

#include "coherence/agent.h"
#include "common/logging.h"
#include "telemetry/time_series.h"

namespace kona {

namespace {

/**
 * Resolve the eviction engine's config from the runtime's: inherit the
 * shared retry policy when none was set, and always wire the runtime's
 * own trace session and event journal.
 */
EvictionConfig
resolvedEvictionConfig(const KonaConfig &config, TraceSession &trace,
                       EventJournal &journal)
{
    EvictionConfig evict = config.evict;
    if (!evict.retry.has_value())
        evict.retry = config.retry;
    evict.trace = &trace;
    evict.journal = &journal;
    return evict;
}

} // namespace

KonaRuntime::KonaRuntime(Fabric &fabric, Controller &controller,
                         NodeId computeNode, const KonaConfig &config,
                         MetricScope scope)
    : fabric_(fabric), controller_(controller),
      computeNode_(computeNode), config_(config),
      // Per-runtime metric namespace: several runtimes can share one
      // registry (multi-compute-node racks) without colliding.
      scope_(scope.sub("cn" + std::to_string(computeNode))),
      fpga_(fabric, computeNode, config.fpga, scope_.sub("fpga")),
      hierarchy_(config.hierarchy, scope_.sub("hierarchy")),
      evictor_(fabric, fpga_, hierarchy_, controller,
               resolvedEvictionConfig(config, trace_, journal_),
               scope_.sub("evict")),
      vfmemCursor_(config.fpga.vfmemBase),
      reads_(scope_.counter("reads")),
      writes_(scope_.counter("writes")),
      bytesRead_(scope_.counter("bytes_read")),
      bytesWritten_(scope_.counter("bytes_written")),
      outageRetries_(scope_.counter("outage_retries")),
      rebuildPromotions_(scope_.counter("rebuild_promotions")),
      outageBackoffNs_(scope_.histogram("outage_backoff_ns"))
{
    // The journal timestamps on the app clock and mirrors into the
    // trace as instants; its dropped-event count (and the trace ring's)
    // are registry metrics so exports expose flight-recorder loss.
    journal_.setClock(&appClock_);
    journal_.setTraceSession(&trace_);
    journal_.bindCounters(&scope_.counter("journal.events_recorded"),
                          &scope_.counter("journal.events_dropped"));
    trace_.bindDroppedCounter(&scope_.counter("trace.dropped_events"));
    controller_.setJournal(&journal_);
    fpga_.setMissAttribution(&missAttr_);

    hierarchy_.setListener(&fpga_);
    fpga_.setTraceSession(&trace_);
    fpga_.setEvictionCallback(
        [this](const FMemCache::Victim &victim, SimClock &clock) {
            evictor_.evictPage(victim.vfmemPage, clock);
        });
    // Every fetch-path observation feeds the Controller's failure
    // detector (fail-stop) and its EWMA health scorer (gray failure):
    // enough consecutive failures declare the node dead and
    // checkRackHealth() triggers the rebuild; a drifting latency or
    // badness EWMA moves the node through Suspect/Quarantined instead.
    fpga_.setHealthReporter([this](NodeId node, bool ok,
                                   Tick latencyNs) {
        if (ok) {
            controller_.reportOpSuccess(node);
            controller_.observeFetch(node, latencyNs);
        } else {
            controller_.reportOpFailure(node);
        }
    });
    // Reads hedge away from nodes the membership state machine says
    // to avoid (Suspect/Quarantined/Joining), even though the fabric
    // still reaches them.
    fpga_.setMembershipProbe([this](NodeId node) {
        return controller_.avoidForReads(node);
    });

    // Hot/cold tiering: an EWMA heat map over the VFMem window, fed
    // by the FPGA's access stream and pumped on the eviction cadence.
    // Promotions go through tierPromote (never evicting, never
    // touching governed pages); demotions ride the async eviction
    // pipeline exactly like background capacity evictions.
    TieringConfig tierCfg = parseTieringSpec(config_.tiering);
    if (tierCfg.enabled) {
        tiering_ = std::make_unique<TieringEngine>(
            pageNumber(config_.fpga.vfmemBase),
            config_.fpga.vfmemSize / pageSize, tierCfg,
            scope_.sub("tier"));
        demoteReq_.vpns.reserve(tierCfg.maxDemotesPerPump);
        tiering_->setHooks(
            [this](Addr vpn, Tick issueTick) {
                return fpga_.tierPromote(vpn, issueTick);
            },
            [this](const Addr *vpns, std::size_t n) {
                demoteReq_.vpns.clear();
                for (std::size_t i = 0; i < n; ++i) {
                    // submit() blocks on pages already in flight;
                    // a cold page's earlier shipment covers it.
                    if (fpga_.evictionInFlight(vpns[i]))
                        continue;
                    // Governed pages demote only through the
                    // coherence protocol's own drop path.
                    if (agent_ != nullptr && agent_->governs(vpns[i]))
                        continue;
                    demoteReq_.vpns.push_back(vpns[i]);
                }
                if (!demoteReq_.vpns.empty())
                    evictor_.submit(demoteReq_, backgroundClock_);
            },
            [this](Addr vpn) { return fpga_.pageResident(vpn); },
            [this] {
                return static_cast<double>(
                           fpga_.fmem().pagesResident()) /
                       static_cast<double>(fpga_.fmem().frames());
            });
        fpga_.setTieringEngine(tiering_.get());
    }

    // Cumulative hit latencies: a hit at level i pays every level
    // above it (the AMAT structure KCacheSim uses).
    const LatencyConfig &lat = fabric_.latency();
    double levels[3] = {lat.l1HitNs, lat.l2HitNs, lat.l3HitNs};
    double running = 0.0;
    std::size_t n = std::min<std::size_t>(hierarchy_.numLevels(), 3);
    for (std::size_t i = 0; i < n; ++i) {
        running += levels[i];
        levelLatencyNs_[i] = running;
    }
    levelLatencyNs_[n] = running;   // cost before entering memory

    // Pre-map the first slab so the heap exists (the Resource Manager
    // allocates remote memory proactively, off the critical path).
    mapNewSlab();
}

KonaRuntime::~KonaRuntime()
{
    // The Controller outlives runtimes and may be shared between them;
    // only clear the binding if it still points at our journal.
    if (controller_.journal() == &journal_)
        controller_.setJournal(nullptr);
}

void
KonaRuntime::attachCoherence(DirectoryService &directory)
{
    KONA_ASSERT(agent_ == nullptr, "coherence already attached");
    agent_ = std::make_unique<CoherenceAgent>(
        directory, computeNode_, fpga_, hierarchy_, evictor_,
        config_.retry, scope_.sub("coherence"));
    coherenceDir_ = &directory;
    directory.attachPeer(computeNode_, *agent_);
    // Any drop of a governed page — remote invalidation or ordinary
    // capacity eviction — releases this node's directory rights, and
    // the prefetcher is kept away from governed pages (a speculative
    // fetch without rights could resurrect a stale copy).
    fpga_.setDropHook([this](Addr vpn) { agent_->onPageDropped(vpn); });
    fpga_.setPageGovernor(
        [this](Addr vpn) { return agent_->governs(vpn); });
    // A gate bound before the agent existed propagates to it now.
    agent_->setGateEndpoint(gate_);
}

void
KonaRuntime::setShardGate(ShardGate *gate, std::uint32_t shard)
{
    gate_.bind(gate, shard, &appClock_, &backgroundClock_);
    // One endpoint per shard, copied into every component that can
    // open a section: all of a shard's sections share the same stamp
    // function (max of the two clocks), which keeps the published
    // bound sound for every later section.
    fpga_.setGateEndpoint(gate_);
    evictor_.setGateEndpoint(gate_);
    if (agent_ != nullptr)
        agent_->setGateEndpoint(gate_);
}

Addr
KonaRuntime::mapSharedRegion(const std::string &name, std::size_t bytes)
{
    KONA_ASSERT(agent_ != nullptr,
                "attachCoherence() before mapSharedRegion()");
    const DirectoryService::SharedRegion &region =
        coherenceDir_->sharedRegion(name, bytes,
                                    config_.replicationFactor);

    Addr base = vfmemCursor_;
    for (const MappedSlab &slab : region.slabs) {
        std::size_t slabSize = slab.primary.size;
        if (vfmemCursor_ + slabSize >
            config_.fpga.vfmemBase + config_.fpga.vfmemSize) {
            fatal("VFMem window exhausted mapping shared region '",
                  name, "'");
        }
        fpga_.translation().addSlab(vfmemCursor_, slab.primary,
                                    slab.replicas, /*shared=*/true);
        Addr firstVpn = pageNumber(vfmemCursor_);
        Addr pages = slabSize / pageSize;
        for (Addr i = 0; i < pages; ++i)
            pageTable_.map(firstVpn + i, firstVpn + i, /*writable=*/true);
        vfmemCursor_ += slabSize;
    }
    agent_->addGovernedRange(base, region.bytes);
    return base;
}

void
KonaRuntime::exportAttribution()
{
    missAttr_.exportGauges(scope_.sub("miss.attr"));
    evictor_.shipmentAttribution().exportGauges(
        scope_.sub("evict.attr"));
}

void
KonaRuntime::mapNewSlab()
{
    // Slab allocation mutates the Controller's shared placement state.
    ShardSection section(gate_, GateEvent::Control);

    std::size_t slabSize = controller_.slabSize();
    if (vfmemCursor_ + slabSize >
        config_.fpga.vfmemBase + config_.fpga.vfmemSize) {
        fatal("VFMem window exhausted: cannot map another slab");
    }

    SlabGrant primary =
        *controller_.allocateSlab(PlacementRequest{.required = true});
    std::vector<SlabGrant> replicas;
    for (std::size_t i = 0; i < config_.replicationFactor; ++i)
        replicas.push_back(*controller_.allocateSlab(
            PlacementRequest{.copyIndex = i + 1, .required = true}));
    fpga_.translation().addSlab(vfmemCursor_, primary,
                                std::move(replicas));

    // All pages become present and writable now and never change:
    // Kona "logically pre-populates" the mapping, which is what kills
    // page faults and TLB shootdowns on the data path.
    Addr firstVpn = pageNumber(vfmemCursor_);
    Addr pages = slabSize / pageSize;
    for (Addr i = 0; i < pages; ++i)
        pageTable_.map(firstVpn + i, firstVpn + i, /*writable=*/true);

    if (heap_ == nullptr) {
        heap_ = std::make_unique<RegionAllocator>(vfmemCursor_,
                                                  slabSize);
    } else {
        heap_->extend(slabSize);
    }
    vfmemCursor_ += slabSize;
}

void
KonaRuntime::ensureHeap(std::size_t need)
{
    while (heap_->bytesFree() < need)
        mapNewSlab();
}

Addr
KonaRuntime::allocate(std::size_t size, std::size_t align)
{
    KONA_ASSERT(size > 0, "zero-byte allocation");
    ensureHeap(size + align);
    auto addr = heap_->allocate(size, align);
    while (!addr.has_value()) {
        // Fragmentation can defeat bytesFree(); map more and retry.
        mapNewSlab();
        addr = heap_->allocate(size, align);
    }
    return *addr;
}

void
KonaRuntime::deallocate(Addr addr)
{
    heap_->deallocate(addr);
}

void
KonaRuntime::simulateAccess(Addr addr, std::size_t size,
                            AccessType type)
{
    KONA_ASSERT(fpga_.inVFMem(addr) &&
                    fpga_.inVFMem(addr + size - 1),
                "access outside VFMem at ", addr);

    Addr first = alignDown(addr, cacheLineSize);
    Addr last = alignDown(addr + size - 1, cacheLineSize);
    for (Addr line = first; line <= last; line += cacheLineSize) {
        // Inter-node coherence: hold directory rights before the line
        // is served. Detached runtimes pay one predicted branch.
        if (agent_)
            agent_->ensureAccess(line, type, appClock_);
        int level = hierarchy_.accessOne(line, type);
        if (level >= 0) {
            appClock_.advance(static_cast<Tick>(
                levelLatencyNs_[static_cast<std::size_t>(level)]));
            continue;
        }
        appClock_.advance(static_cast<Tick>(
            levelLatencyNs_[hierarchy_.numLevels()]));
        Span miss(&trace_, appClock_, "miss", "miss");
        miss.arg("addr", line);
        miss.arg("bytes", static_cast<std::uint64_t>(cacheLineSize));
        missAttr_.begin(appClock_.now());
        ServeStatus status = fpga_.serveLine(line, type, appClock_);
        if (status != ServeStatus::RemoteUnavailable) {
            missAttr_.end(appClock_.now(), MissComponent::Other);
            continue;
        }
        RetryState retry(config_.retry, retrySeed_++);
        retry.bindTelemetry(&outageRetries_, &outageBackoffNs_);
        while (status == ServeStatus::RemoteUnavailable) {
            // The fill never happened: roll the line back out of the
            // simulated caches so a retry misses to memory again.
            hierarchy_.invalidateLine(line);
            if (config_.failurePolicy == FailurePolicy::Fatal ||
                !retry.shouldRetry()) {
                fatal("remote memory unreachable for VFMem line ",
                      line, "; resolve the network outage and "
                      "restart");
            }
            // §4.5: report the failure and wait for the outage to
            // resolve, then retry the fetch.
            std::size_t attempt = retry.attempts();
            Tick backoffStart = appClock_.now();
            retry.backoff(appClock_);
            missAttr_.charge(MissComponent::Retry,
                             appClock_.now() - backoffStart);
            if (outageObserver_)
                outageObserver_(attempt);
            // The outage may have pushed a node over the failure
            // threshold; rebuilding re-homes its slabs so the retry
            // can succeed against a healthy placement.
            checkRackHealth();
            hierarchy_.accessOne(line, type);
            status = fpga_.serveLine(line, type, appClock_);
        }
        missAttr_.end(appClock_.now(), MissComponent::Other);
        miss.arg("retries", retry.attempts());
    }
}

bool
KonaRuntime::spanResident(Addr addr, std::size_t size) const
{
    Addr firstVpn = pageNumber(addr);
    Addr lastVpn = pageNumber(addr + size - 1);
    for (Addr vpn = firstVpn; vpn <= lastVpn; ++vpn) {
        if (!fpga_.pageResident(vpn))
            return false;
    }
    return true;
}

void
KonaRuntime::ensureSpan(Addr addr, std::size_t size, AccessType type)
{
    // A multi-page access can have an earlier page force-evicted by a
    // set conflict while a later page is being fetched; re-simulate
    // until the whole span is simultaneously resident. Eviction
    // snoops a page's lines out of the CPU caches, so the re-fetch
    // misses and goes through serveLine again (a real re-fetch the
    // application would also pay for).
    for (int attempt = 0; attempt < 8; ++attempt) {
        simulateAccess(addr, size, type);
        if (spanResident(addr, size))
            return;
    }
    fatal("access at ", addr, " size ", size,
          " cannot keep its pages simultaneously resident; FMem is "
          "too small or too low-associative for this access");
}

void
KonaRuntime::read(Addr addr, void *buf, std::size_t size)
{
    if (size == 0)
        return;
    checkRackHealth();
    ensureSpan(addr, size, AccessType::Read);
    fpga_.readBytes(addr, buf, size);
    reads_.add();
    bytesRead_.add(size);

    if (++accessesSincePump_ >= config_.evict.pumpPeriod) {
        accessesSincePump_ = 0;
        // Evictor first so a fresh promotion is never the very next
        // pump's victim: promoted pages carry zero touches until the
        // first demand hit, which scan/lfu would otherwise reap
        // before the page had any chance to prove itself.
        evictor_.pump(backgroundClock_, config_.evict.freeWays);
        if (tiering_ != nullptr)
            tiering_->pump(appClock_.now());
    }
    if (sampler_ != nullptr)
        sampler_->onTick(appClock_.now());
    // Parallel engine: advertise this shard's new stamp lower bound.
    gate_.publish();
}

void
KonaRuntime::write(Addr addr, const void *buf, std::size_t size)
{
    if (size == 0)
        return;
    checkRackHealth();
    ensureSpan(addr, size, AccessType::Write);
    fpga_.writeBytes(addr, buf, size);
    writes_.add();
    bytesWritten_.add(size);

    // Emulated track-local-data (§5): in lieu of real coherence
    // hardware the instrumentation marks the written lines directly;
    // the simulated hierarchy's writebacks mark the same lines when
    // they drain, so the mask is a superset-correct union.
    fpga_.markDirtyRange(addr, size);

    if (++accessesSincePump_ >= config_.evict.pumpPeriod) {
        accessesSincePump_ = 0;
        // Evictor first so a fresh promotion is never the very next
        // pump's victim: promoted pages carry zero touches until the
        // first demand hit, which scan/lfu would otherwise reap
        // before the page had any chance to prove itself.
        evictor_.pump(backgroundClock_, config_.evict.freeWays);
        if (tiering_ != nullptr)
            tiering_->pump(appClock_.now());
    }
    if (sampler_ != nullptr)
        sampler_->onTick(appClock_.now());
    // Parallel engine: advertise this shard's new stamp lower bound.
    gate_.publish();
}

void
KonaRuntime::writebackAll()
{
    hierarchy_.flushAll();
    evictor_.evictBatch(fpga_.fmem().residentPages(),
                        backgroundClock_);
}

Tick
KonaRuntime::elapsed() const
{
    Tick t = appClock_.now();
    t = std::max(t, backgroundClock_.now());
    t = std::max(t, fpga_.backgroundTime());
    return t;
}

RuntimeStats
KonaRuntime::stats() const
{
    RuntimeStats s;
    s.reads = reads_.value();
    s.writes = writes_.value();
    s.bytesRead = bytesRead_.value();
    s.bytesWritten = bytesWritten_.value();
    s.remoteFetches = fpga_.remoteFetches();
    s.pagesEvicted = evictor_.pagesEvicted();
    s.silentEvictions = evictor_.silentEvictions();
    s.dirtyLinesWritten = evictor_.dirtyLinesWritten();
    s.evictionBytesOnWire = evictor_.bytesOnWire();
    s.retries = totalRetries();
    s.retransmits = totalRetransmits();
    s.replicaPromotions = totalPromotions();
    return s;
}

std::vector<PlacementRef>
KonaRuntime::collectPlacements()
{
    // The refs alias MappedSlab values inside RemoteTranslation's map,
    // which are stable across the Controller's in-place rewrites.
    std::vector<PlacementRef> refs;
    fpga_.translation().forEachSlab([&refs](MappedSlab &slab) {
        // Shared-region placements are owned by the DirectoryService
        // registry (identical across every mapping runtime); a
        // per-runtime rewrite would desynchronize the copies.
        if (slab.shared)
            return;
        refs.push_back({&slab.primary, &slab.replicas});
    });
    return refs;
}

void
KonaRuntime::checkRackHealth()
{
    // Fast path: this runs on every read()/write(), and rack failures
    // are rare — hasNewlyFailed() is an atomic flag precisely so the
    // parallel engine can poll it without entering the gate.
    if (!controller_.hasNewlyFailed())
        return;
    ShardSection section(gate_, GateEvent::Control);
    for (NodeId node : controller_.takeNewlyFailed())
        recoverFromNodeFailure(node);
}

RebuildReport
KonaRuntime::recoverFromNodeFailure(NodeId node)
{
    ShardSection section(gate_, GateEvent::Control);
    // Fence the node before touching placements so no path (fetch,
    // eviction, rebuild source selection) talks to it again.
    fabric_.setNodeDown(node, true);
    auto placements = collectPlacements();
    RebuildReport report = controller_.rebuildReplicas(node, placements);
    rebuildPromotions_.add(report.primariesPromoted);
    degraded_ = report.slabsLost > 0 || report.slabsUnrebuilt > 0;
    if (report.slabsLost > 0) {
        warn("node ", node, " loss destroyed ", report.slabsLost,
             " slab(s) with no surviving copy; replicationFactor was "
             "too low");
    }
    return report;
}

RebuildReport
KonaRuntime::decommissionNode(NodeId node)
{
    ShardSection section(gate_, GateEvent::Control);
    // Stop new placements first, then wait out every in-flight CL-log
    // shipment addressed to the node: evacuation frees and rewrites
    // its slabs, and a log landing after the rewrite would scribble on
    // reused memory (the evacuate x async-eviction race).
    if (controller_.health(node) != NodeHealth::Draining)
        controller_.drainNode(node);
    evictor_.drainNode(node, backgroundClock_);
    auto placements = collectPlacements();
    RebuildReport report = controller_.evacuateNode(node, placements);
    if (report.slabsUnrebuilt == 0) {
        controller_.removeNode(node);
        inform("node ", node, " decommissioned");
    } else {
        warn("node ", node, " still holds ", report.slabsUnrebuilt,
             " slab(s); decommission incomplete");
    }
    return report;
}

RebuildReport
KonaRuntime::hotAddNode(MemoryNode &node)
{
    ShardSection section(gate_, GateEvent::Control);
    // Register in the Joining state (no placements, no primary reads),
    // quiesce the eviction engine — the rebalance migrates copies off
    // arbitrary donors, so every in-flight shipment must land before
    // placements move — then warm the newcomer with its fair share of
    // existing copies and promote it to Healthy.
    controller_.joinNode(node);
    evictor_.drain(backgroundClock_);
    auto placements = collectPlacements();
    RebuildReport report =
        controller_.rebalanceOnto(node.id(), placements);
    controller_.completeJoin(node.id());
    inform("node ", node.id(), " hot-added: ", report.slabsRebuilt,
           " slab(s) rebalanced onto it");
    return report;
}

ReliabilityStats
KonaRuntime::reliability() const
{
    ReliabilityStats r;
    r.retries = totalRetries();
    r.retransmits = totalRetransmits();
    r.checksumFailures = evictor_.checksumNaks();
    r.replicaPromotions = totalPromotions();
    r.nodesFailed = controller_.nodesFailed();
    r.slabsRebuilt = controller_.slabsRebuilt();
    r.slabsLost = controller_.slabsLost();
    r.degraded = degraded_;
    return r;
}

} // namespace kona
