/**
 * @file
 * KonaRuntime: the coherence-based remote memory runtime (§4).
 *
 * The three remote-memory operations map to hardware primitives:
 *  - fetch: a CPU cache miss to VFMem becomes an FPGA directory
 *    request; no page fault ever fires because every VFMem page is
 *    mapped present and writable at allocation time and stays that way;
 *  - track: dirty cache-lines are recorded by the FPGA from observed
 *    writebacks, decoupled from the page size;
 *  - evict: the EvictionHandler ships only dirty lines in a CL log,
 *    off the critical path via a background pump.
 *
 * The KLib pieces of Fig 4 appear as: ResourceManager = the slab
 * mapping logic in ensureHeap(); AllocLib = allocate()/deallocate();
 * Caching Handler = CoherentFpga::serveLine; Dirty Data Tracker =
 * CoherentFpga::onWriteback; Eviction Handler = EvictionHandler;
 * Poller = net Poller used by the FPGA and eviction paths.
 */

#ifndef KONA_CORE_KONA_RUNTIME_H
#define KONA_CORE_KONA_RUNTIME_H

#include <array>
#include <functional>
#include <memory>

#include "cache/hierarchy.h"
#include "common/stats.h"
#include "core/eviction_handler.h"
#include "core/runtime.h"
#include "fpga/coherent_fpga.h"
#include "mem/page_table.h"
#include "mem/region_allocator.h"
#include "net/retry_policy.h"
#include "policy/tiering_engine.h"
#include "rack/controller.h"
#include "telemetry/attribution.h"
#include "telemetry/event_journal.h"
#include "telemetry/metric_registry.h"
#include "telemetry/trace_session.h"

namespace kona {

class CoherenceAgent;
class DirectoryService;

/** What to do when every replica of a page is unreachable (§4.5). */
enum class FailurePolicy : std::uint8_t
{
    Fatal,      ///< raise the outage to the application immediately
    WaitRetry,  ///< back off and retry — "wait until the network
                ///< delay or outage is resolved"
};

/** Configuration of the whole Kona stack on a compute node. */
struct KonaConfig
{
    FpgaConfig fpga;
    HierarchyConfig hierarchy;

    FailurePolicy failurePolicy = FailurePolicy::Fatal;
    /**
     * WaitRetry: the shared backoff discipline (also handed to the
     * EvictionHandler for its retransmit loop). initialBackoffNs is
     * the first wait; maxAttempts bounds retries before escalating.
     */
    RetryPolicy retry{.initialBackoffNs = 100'000, .maxAttempts = 64};

    /** Extra remote copies per slab (§4.5 replication; 0 = none). */
    std::size_t replicationFactor = 0;

    /**
     * Eviction engine configuration (mode, pipeline depth, pump
     * cadence). Leave evict.retry unset to inherit `retry` above;
     * evict.trace is overridden with the runtime's own session.
     */
    EvictionConfig evict;

    /**
     * Hot/cold tiering policy spec "policy[:n]": off or ewma (see
     * src/policy/tiering_engine.h). When enabled, the runtime keeps
     * an EWMA heat map over VFMem and pumps promotions/demotions on
     * the eviction cadence; metrics land under "<scope>.cn<id>.tier".
     */
    std::string tiering = "off";
};

/** The Kona software runtime. */
class KonaRuntime : public RemoteMemoryRuntime
{
  public:
    /**
     * @param scope Telemetry scope. The runtime prefixes it with its
     *         compute-node id ("<scope>.cn<id>") so several runtimes
     *         sharing one MetricRegistry never collide; subsystems
     *         then register under "<scope>.cn<id>.fpga",
     *         ".hierarchy", ".evict", and the runtime's own counters
     *         directly under "<scope>.cn<id>".
     */
    KonaRuntime(Fabric &fabric, Controller &controller,
                NodeId computeNode, const KonaConfig &config = {},
                MetricScope scope = {});
    ~KonaRuntime() override;

    // MemoryInterface
    void read(Addr addr, void *buf, std::size_t size) override;
    void write(Addr addr, const void *buf, std::size_t size) override;

    // RemoteMemoryRuntime
    Addr allocate(std::size_t size, std::size_t align = 16) override;
    void deallocate(Addr addr) override;
    void writebackAll() override;
    Tick elapsed() const override;
    RuntimeStats stats() const override;
    std::string name() const override { return "Kona"; }

    const KonaConfig &config() const { return config_; }
    CoherentFpga &fpga() { return fpga_; }

    /** The hot/cold tiering engine; nullptr when tiering is "off". */
    TieringEngine *tieringEngine() { return tiering_.get(); }
    CacheHierarchy &hierarchy() { return hierarchy_; }
    EvictionHandler &evictionHandler() { return evictor_; }
    SimClock &appClock() { return appClock_; }
    SimClock &backgroundClock() { return backgroundClock_; }
    const PageTable &pageTable() const { return pageTable_; }

    /** Simulated time spent on the critical path so far. */
    Tick appTime() const { return appClock_.now(); }

    /**
     * WaitRetry policy: hook invoked once per backoff period while an
     * outage persists (tests and operator tooling use it to observe
     * or resolve the outage). Return value ignored.
     */
    void setOutageObserver(std::function<void(std::size_t attempt)> cb)
    {
        outageObserver_ = std::move(cb);
    }

    std::uint64_t outageRetries() const { return outageRetries_.value(); }

    /**
     * Poll the Controller's failure detector and run rebuilds for any
     * node newly declared dead. Called automatically on the access
     * path; exposed so tests and operator tooling can force a sweep.
     */
    void checkRackHealth();

    /**
     * Self-healing (§4.5): fence @p node, promote replicas whose
     * primary died with it, and re-replicate every affected slab onto
     * surviving healthy nodes.
     */
    RebuildReport recoverFromNodeFailure(NodeId node);

    /**
     * Graceful decommission: drain @p node (both new placements at the
     * Controller and in-flight eviction shipments addressed to it),
     * migrate all of its slabs to other healthy nodes, and deregister
     * it once empty.
     */
    RebuildReport decommissionNode(NodeId node);

    /**
     * Elastic hot-add: register @p node as Joining, quiesce eviction,
     * rebalance existing copies onto it until it carries its fair
     * share, then promote it to Healthy so it starts taking placements
     * and primary traffic.
     */
    RebuildReport hotAddNode(MemoryNode &node);

    // --- inter-node coherence (multi-compute-node racks) -------------

    /**
     * Join the rack's coherence protocol: embed a CoherenceAgent,
     * register this runtime as a peer at @p directory, and wire the
     * FPGA's page-drop hook so any drop of a governed page (remote
     * invalidation or capacity eviction) releases directory rights.
     * Must be called before mapSharedRegion(); single-node runtimes
     * that never call it pay nothing on the access path.
     */
    void attachCoherence(DirectoryService &directory);

    /**
     * Map the named coherence-shared region into this runtime's VFMem
     * window and put it under the agent's governance. Every runtime
     * mapping the region gets the identical remote placement (the
     * DirectoryService registry owns it); with identically-configured
     * runtimes the returned VFMem base is identical too, so litmus
     * harnesses can use one address across nodes. The region is not
     * part of the private heap: allocate() never hands out its pages.
     */
    Addr mapSharedRegion(const std::string &name, std::size_t bytes);

    /** The embedded protocol endpoint; nullptr until attached. */
    CoherenceAgent *coherenceAgent() const { return agent_.get(); }

    NodeId computeNode() const { return computeNode_; }

    /** True while the rack holds less redundancy than configured. */
    bool degraded() const { return degraded_; }

    /** Fault-tolerance counters across all of this runtime's paths. */
    ReliabilityStats reliability() const;

    /** The registry all of this runtime's metrics live in. */
    const std::shared_ptr<MetricRegistry> &metrics() const
    {
        return scope_.registry();
    }

    TraceSession *traceSession() override { return &trace_; }
    EventJournal *eventJournal() override { return &journal_; }
    EventJournal &journal() { return journal_; }

    /** Tick @p sampler once per read()/write() on the app clock. */
    void setTimeSeriesSampler(TimeSeriesSampler *sampler) override
    {
        sampler_ = sampler;
    }

    /**
     * Join a parallel simulation as shard @p shard of @p gate
     * (DESIGN.md §16): every cross-shard interaction of this runtime —
     * remote fetches, eviction shipments, directory/coherence ops,
     * slab allocation, failure recovery — becomes a gated section
     * stamped max(appClock, backgroundClock), and each access
     * publishes that stamp as the shard's lower bound. nullptr
     * detaches (sequential mode, zero overhead on the access path).
     */
    void setShardGate(ShardGate *gate, std::uint32_t shard = 0);

    /** This runtime's gate binding (detached unless setShardGate). */
    const GateEndpoint &gateEndpoint() const { return gate_; }

    /**
     * Exact end-to-end attribution of every completed demand miss
     * (sum of MissComponent buckets == miss ns, with any unbracketed
     * residual in "other") plus a slowest-1% breakdown.
     */
    const LatencyAttribution &missAttribution() const
    {
        return missAttr_;
    }

    /**
     * Publish the miss and eviction-shipment attributions as gauges
     * ("<scope>.miss.attr.*", "<scope>.evict.attr.*") so --metrics-json
     * exports carry the breakdown. Call before exporting.
     */
    void exportAttribution();

  private:
    // Single source for the counters RuntimeStats and ReliabilityStats
    // both report; the two snapshots can never diverge.
    std::uint64_t
    totalRetries() const
    {
        return outageRetries_.value() + evictor_.retryBackoffs();
    }
    std::uint64_t totalRetransmits() const
    {
        return evictor_.logRetransmits();
    }
    std::uint64_t
    totalPromotions() const
    {
        return fpga_.replicaPromotions() + rebuildPromotions_.value();
    }
    /** Simulate the hierarchy + FPGA path for one access. */
    void simulateAccess(Addr addr, std::size_t size, AccessType type);

    /** Whether every page of [addr, addr+size) is in FMem. */
    bool spanResident(Addr addr, std::size_t size) const;

    /** Simulate until the whole span is simultaneously resident. */
    void ensureSpan(Addr addr, std::size_t size, AccessType type);

    /** Map new slabs until the heap can satisfy @p need bytes. */
    void ensureHeap(std::size_t need);

    /** Map one fresh slab at the VFMem cursor. */
    void mapNewSlab();

    /** Lend every slab's placement to the Controller for rewriting. */
    std::vector<PlacementRef> collectPlacements();

    Fabric &fabric_;
    Controller &controller_;
    NodeId computeNode_;
    KonaConfig config_;
    MetricScope scope_;
    TraceSession trace_;
    EventJournal journal_;
    CoherentFpga fpga_;
    CacheHierarchy hierarchy_;
    EvictionHandler evictor_;
    PageTable pageTable_;

    std::unique_ptr<RegionAllocator> heap_;
    std::unique_ptr<TieringEngine> tiering_;
    /** Reused demotion batch so tiering pumps never allocate. */
    EvictionRequest demoteReq_;
    std::unique_ptr<CoherenceAgent> agent_;
    DirectoryService *coherenceDir_ = nullptr;
    Addr vfmemCursor_;

    SimClock appClock_;
    SimClock backgroundClock_;
    GateEndpoint gate_;
    LatencyAttribution missAttr_{MissComponent::names,
                                 MissComponent::Count};
    TimeSeriesSampler *sampler_ = nullptr;
    std::size_t accessesSincePump_ = 0;
    std::uint64_t retrySeed_ = 0x4b6fULL;
    bool degraded_ = false;

    /** Cumulative latency of a hit at each level, then memory entry. */
    std::array<double, 8> levelLatencyNs_{};

    std::function<void(std::size_t)> outageObserver_;

    Counter &reads_;
    Counter &writes_;
    Counter &bytesRead_;
    Counter &bytesWritten_;
    Counter &outageRetries_;
    Counter &rebuildPromotions_;
    LatencyHistogram &outageBackoffNs_;
};

} // namespace kona

#endif // KONA_CORE_KONA_RUNTIME_H
