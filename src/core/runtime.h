/**
 * @file
 * RemoteMemoryRuntime: the application-facing contract shared by Kona
 * and the virtual-memory baselines.
 *
 * Applications (the workloads in src/workloads) interact with remote
 * memory exactly the way the paper's instrumented applications do:
 * they allocate through AllocLib-style calls and issue loads/stores
 * through the MemoryInterface, never seeing which bytes are local and
 * which are disaggregated.
 */

#ifndef KONA_CORE_RUNTIME_H
#define KONA_CORE_RUNTIME_H

#include <string>

#include "common/sim_clock.h"
#include "common/types.h"
#include "mem/memory_interface.h"

namespace kona {

class EventJournal;
class TimeSeriesSampler;
class TraceSession;

/** Cross-runtime statistics snapshot. */
struct RuntimeStats
{
    std::uint64_t reads = 0;
    std::uint64_t writes = 0;
    std::uint64_t bytesRead = 0;
    std::uint64_t bytesWritten = 0;

    std::uint64_t remoteFetches = 0;     ///< pages pulled from the rack
    std::uint64_t majorFaults = 0;       ///< fetch page faults (VM only)
    std::uint64_t minorFaults = 0;       ///< write-protect faults (VM only)
    std::uint64_t tlbShootdowns = 0;     ///< (VM only)

    std::uint64_t pagesEvicted = 0;
    std::uint64_t silentEvictions = 0;   ///< clean pages dropped
    std::uint64_t dirtyLinesWritten = 0; ///< lines shipped at eviction
    std::uint64_t evictionBytesOnWire = 0;

    std::uint64_t retries = 0;           ///< backoff retries, all paths
    std::uint64_t retransmits = 0;       ///< payloads re-sent (drop/NAK)
    std::uint64_t replicaPromotions = 0; ///< fetch fail-overs (§4.5)

    /** Amplification of eviction traffic: wire bytes / dirty bytes. */
    double
    evictionAmplification() const
    {
        std::uint64_t dirtyBytes = dirtyLinesWritten * cacheLineSize;
        if (dirtyBytes == 0)
            return 0.0;
        return static_cast<double>(evictionBytesOnWire) /
               static_cast<double>(dirtyBytes);
    }
};

/** A transparent remote-memory runtime. */
class RemoteMemoryRuntime : public MemoryInterface
{
  public:
    /**
     * AllocLib entry point: allocate @p size bytes of (transparently
     * remote) memory. Fatal when the rack is exhausted.
     */
    virtual Addr allocate(std::size_t size, std::size_t align = 16) = 0;

    /** Release an allocation. */
    virtual void deallocate(Addr addr) = 0;

    /**
     * Flush everything dirty back to the rack (end of run / shutdown).
     * Afterwards the memory nodes hold a byte-exact image.
     */
    virtual void writebackAll() = 0;

    /** Simulated time consumed on the application's critical path. */
    virtual Tick elapsed() const = 0;

    /** Runtime statistics snapshot. */
    virtual RuntimeStats stats() const = 0;

    virtual std::string name() const = 0;

    /**
     * The runtime's span tracer (enable() it to start recording);
     * nullptr when the runtime is not instrumented.
     */
    virtual TraceSession *traceSession() { return nullptr; }

    /**
     * The runtime's structured event journal (health transitions,
     * membership changes, eviction give-ups); nullptr when the runtime
     * does not keep one.
     */
    virtual EventJournal *eventJournal() { return nullptr; }

    /**
     * Tick @p sampler from the runtime's access loop so it can close
     * sim-time windows. Pass nullptr to detach. Default: unsupported.
     */
    virtual void setTimeSeriesSampler(TimeSeriesSampler *sampler)
    {
        (void)sampler;
    }
};

} // namespace kona

#endif // KONA_CORE_RUNTIME_H
