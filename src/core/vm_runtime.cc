#include "core/vm_runtime.h"

#include "common/logging.h"
#include "telemetry/time_series.h"

namespace kona {

VmRuntime::VmRuntime(Fabric &fabric, Controller &controller,
                     NodeId computeNode, const VmConfig &config,
                     MetricScope scope)
    : fabric_(fabric), controller_(controller),
      computeNode_(computeNode), config_(config),
      scope_(std::move(scope)),
      hierarchy_(config.hierarchy, scope_.sub("hierarchy")),
      cmem_(config.windowBase + config.windowSize),
      windowCursor_(config.windowBase), poller_(fabric.latency()),
      rdmaBuffer_(pageSize),
      reads_(scope_.counter("reads")),
      writes_(scope_.counter("writes")),
      bytesRead_(scope_.counter("bytes_read")),
      bytesWritten_(scope_.counter("bytes_written")),
      majorFaults_(scope_.counter("major_faults")),
      minorFaults_(scope_.counter("minor_faults")),
      tlbShootdowns_(scope_.counter("tlb_shootdowns")),
      pagesEvicted_(scope_.counter("pages_evicted")),
      silentEvictions_(scope_.counter("silent_evictions")),
      wireBytes_(scope_.counter("bytes_on_wire")),
      retries_(scope_.counter("fault_retries")),
      promotions_(scope_.counter("replica_promotions")),
      majorFaultNs_(scope_.histogram("major_fault_ns"))
{
    KONA_ASSERT(config.localCachePages > 0, "empty local cache");

    const LatencyConfig &lat = fabric_.latency();
    double levels[3] = {lat.l1HitNs, lat.l2HitNs, lat.l3HitNs};
    double running = 0.0;
    std::size_t n = std::min<std::size_t>(hierarchy_.numLevels(), 3);
    for (std::size_t i = 0; i < n; ++i) {
        running += levels[i];
        levelLatencyNs_[i] = running;
    }
    levelLatencyNs_[n] = running;

    mapNewSlab();
}

std::string
VmRuntime::name() const
{
    switch (config_.personality) {
      case VmPersonality::KonaVm:
        return config_.writeProtectTracking ? "Kona-VM" : "Kona-VM-NoWP";
      case VmPersonality::LegoOs: return "LegoOS";
      case VmPersonality::Infiniswap: return "Infiniswap";
    }
    return "VM";
}

QueuePair &
VmRuntime::qpTo(NodeId node)
{
    auto it = qps_.find(node);
    if (it == qps_.end()) {
        it = qps_.emplace(node,
                          std::make_unique<QueuePair>(
                              fabric_, computeNode_, node, cq_,
                              scope_.sub("qp" + std::to_string(node))))
                 .first;
    }
    return *it->second;
}

void
VmRuntime::mapNewSlab()
{
    std::size_t slabSize = controller_.slabSize();
    if (windowCursor_ + slabSize >
        config_.windowBase + config_.windowSize) {
        fatal("VM window exhausted: cannot map another slab");
    }

    SlabGrant primary =
        *controller_.allocateSlab(PlacementRequest{.required = true});
    std::vector<SlabGrant> replicas;
    for (std::size_t i = 0; i < config_.replicationFactor; ++i)
        replicas.push_back(*controller_.allocateSlab(
            PlacementRequest{.copyIndex = i + 1, .required = true}));
    translation_.addSlab(windowCursor_, primary, std::move(replicas));

    // Pages are mapped but not present: the first touch of each page
    // will raise a major fault — the defining cost of this family.
    Addr firstVpn = pageNumber(windowCursor_);
    Addr pages = slabSize / pageSize;
    for (Addr i = 0; i < pages; ++i) {
        pageTable_.map(firstVpn + i, firstVpn + i, true);
        pageTable_.markNotPresent(firstVpn + i);
    }

    if (heap_ == nullptr) {
        heap_ = std::make_unique<RegionAllocator>(windowCursor_,
                                                  slabSize);
    } else {
        heap_->extend(slabSize);
    }
    windowCursor_ += slabSize;
}

void
VmRuntime::ensureHeap(std::size_t need)
{
    while (heap_->bytesFree() < need)
        mapNewSlab();
}

Addr
VmRuntime::allocate(std::size_t size, std::size_t align)
{
    KONA_ASSERT(size > 0, "zero-byte allocation");
    ensureHeap(size + align);
    auto addr = heap_->allocate(size, align);
    while (!addr.has_value()) {
        mapNewSlab();
        addr = heap_->allocate(size, align);
    }
    return *addr;
}

void
VmRuntime::deallocate(Addr addr)
{
    heap_->deallocate(addr);
}

void
VmRuntime::touchLru(Addr vpn)
{
    auto it = lruMap_.find(vpn);
    KONA_ASSERT(it != lruMap_.end(), "LRU touch of non-resident page");
    lruList_.splice(lruList_.begin(), lruList_, it->second);
}

void
VmRuntime::majorFault(Addr vpn)
{
    majorFaults_.add();
    Span span(&trace_, appClock_, "major_fault", "fault");
    span.arg("vpn", vpn);
    Tick faultStart = appClock_.now();
    const LatencyConfig &lat = fabric_.latency();

    // Make room first (the fault handler needs a free local frame).
    if (lruList_.size() >= config_.localCachePages)
        evictOne();

    // Fetch the page. The personality's measured fault-to-data latency
    // already includes its software stack and the RDMA transfer, so it
    // is charged as one critical-path cost; the functional transfer
    // below uses a scratch clock to avoid double charging.
    appClock_.advance(static_cast<Tick>(
        remoteFetchNs(lat, config_.personality)));

    // Fetch from the primary, fail over to replicas, and back off and
    // retry when every copy is misbehaving. A replica is promoted only
    // when every earlier copy sits on a node that is actually down —
    // a transient drop should not reshuffle the placement.
    SimClock scratch;
    RetryState retry(config_.retry, retrySeed_++);
    retry.bindTelemetry(&retries_, nullptr);
    bool fetched = false;
    while (!fetched) {
        auto copies = translation_.translateAll(vpn * pageSize);
        for (std::size_t i = 0; i < copies.size() && !fetched; ++i) {
            const RemoteLocation &loc = copies[i];
            if (fabric_.nodeDown(loc.node)) {
                controller_.reportOpFailure(loc.node);
                continue;
            }
            WorkRequest wr;
            wr.wrId = nextWrId_++;
            wr.opcode = RdmaOpcode::Read;
            wr.localBuf = rdmaBuffer_.data();
            wr.remoteKey = loc.regionKey;
            wr.remoteAddr = loc.addr;
            wr.length = pageSize;
            PostResult posted = qpTo(loc.node).post(wr, scratch);
            if (!posted.ok()) {
                poller_.drain(cq_, scratch, posted.cqesPushed);
                controller_.reportOpFailure(loc.node);
                continue;
            }
            poller_.waitOne(cq_, scratch);
            controller_.reportOpSuccess(loc.node);
            if (i > 0) {
                bool earlierAllDown = true;
                for (std::size_t j = 0; j < i; ++j)
                    earlierAllDown &= fabric_.nodeDown(copies[j].node);
                if (earlierAllDown) {
                    translation_.promoteReplica(vpn * pageSize, i - 1);
                    promotions_.add();
                    warn(name(), ": failed over page ", vpn,
                         " to node ", loc.node);
                }
            }
            fetched = true;
        }
        if (fetched)
            break;
        if (!retry.shouldRetry()) {
            fatal("remote memory unreachable for page ", vpn,
                  ": every copy is down or failing");
        }
        retry.backoff(appClock_);
    }
    cmem_.write(vpn * pageSize, rdmaBuffer_.data(), pageSize);

    // Install the translation; with dirty tracking enabled the page
    // comes up write-protected so the first store minor-faults.
    pageTable_.map(vpn, vpn, !config_.writeProtectTracking);
    if (config_.writeProtectTracking)
        pageTable_.writeProtect(vpn);
    appClock_.advance(static_cast<Tick>(lat.pteUpdateNs));

    lruList_.push_front(vpn);
    lruMap_[vpn] = lruList_.begin();
    span.arg("retries", retry.attempts());
    majorFaultNs_.record(static_cast<double>(appClock_.now() -
                                             faultStart));
}

void
VmRuntime::minorFault(Addr vpn)
{
    minorFaults_.add();
    Span span(&trace_, appClock_, "minor_fault", "fault");
    span.arg("vpn", vpn);
    const LatencyConfig &lat = fabric_.latency();
    // Kona-VM resolves write-protect faults through userfaultfd,
    // which costs a user-space round trip; the kernel-path baselines
    // service them in the kernel fault handler.
    double cost = config_.personality == VmPersonality::KonaVm
        ? lat.uffdWpFaultNs : lat.minorFaultNs;
    appClock_.advance(static_cast<Tick>(cost));
    pageTable_.enableWrite(vpn);
}

void
VmRuntime::ensureAccess(Addr vpn, AccessType type)
{
    const LatencyConfig &lat = fabric_.latency();

    if (!tlb_.lookup(vpn)) {
        appClock_.advance(static_cast<Tick>(lat.pteUpdateNs)); // walk
        tlb_.insert(vpn);
    }

    for (int spins = 0; spins < 4; ++spins) {
        switch (pageTable_.translate(vpn, type)) {
          case TranslationResult::Ok:
            touchLru(vpn);
            return;
          case TranslationResult::NotPresent:
            majorFault(vpn);
            break;
          case TranslationResult::WriteProtected:
            minorFault(vpn);
            break;
        }
    }
    panic("page ", vpn, " still faulting after major+minor service");
}

void
VmRuntime::ensureRange(Addr addr, std::size_t size, AccessType type)
{
    Addr firstVpn = pageNumber(addr);
    Addr lastVpn = pageNumber(addr + size - 1);
    std::size_t spanned = static_cast<std::size_t>(lastVpn - firstVpn) +
                          1;
    if (spanned > config_.localCachePages) {
        fatal("access spans ", spanned,
              " pages but the local cache holds only ",
              config_.localCachePages);
    }

    // Faulting in a later page can evict an earlier one; iterate until
    // the whole span is simultaneously present.
    for (;;) {
        bool stable = true;
        for (Addr vpn = firstVpn; vpn <= lastVpn; ++vpn) {
            const PageTableEntry *pte = pageTable_.entry(vpn);
            bool ok = pte != nullptr && pte->present &&
                      (type == AccessType::Read || pte->writable ||
                       !config_.writeProtectTracking);
            if (!ok) {
                ensureAccess(vpn, type);
                stable = false;
            } else {
                // Keep the whole span hot so LRU prefers other victims.
                if (pageTable_.translate(vpn, type) ==
                    TranslationResult::Ok) {
                    touchLru(vpn);
                }
            }
        }
        if (stable)
            return;
    }
}

void
VmRuntime::evictOne()
{
    KONA_ASSERT(!lruList_.empty(), "eviction with empty cache");
    Addr vpn = lruList_.back();
    lruList_.pop_back();
    lruMap_.erase(vpn);

    const LatencyConfig &lat = fabric_.latency();
    const PageTableEntry *pte = pageTable_.entry(vpn);
    KONA_ASSERT(pte != nullptr && pte->present, "LRU page not mapped");

    // Without write-protect tracking, every page must be assumed dirty.
    bool dirty = config_.writeProtectTracking ? pte->dirty : true;

    if (dirty) {
        SimClock &evClock = config_.backgroundEviction
            ? backgroundClock_ : appClock_;
        if (config_.personality == VmPersonality::Infiniswap) {
            // The block-device swap path adds heavy per-page costs
            // beyond the RDMA write itself (§2.1: >32us observed).
            evClock.advance(static_cast<Tick>(
                lat.infiniswapEvictionOverheadNs));
        }
        writebackPage(vpn, evClock);
        pageTable_.clearDirty(vpn);
    } else {
        silentEvictions_.add();
    }

    // Unmapping requires a PTE update and a TLB shootdown; the IPIs
    // stall the application regardless of who runs the eviction.
    pageTable_.markNotPresent(vpn);
    tlb_.invalidatePage(vpn);
    tlbShootdowns_.add();
    appClock_.advance(static_cast<Tick>(lat.tlbShootdownNs +
                                        lat.pteUpdateNs));

    cmem_.dropPage(vpn * pageSize);
    pagesEvicted_.add();
}

void
VmRuntime::writebackPage(Addr vpn, SimClock &clock)
{
    std::uint32_t lane = &clock == &backgroundClock_
                             ? traceBackgroundThread
                             : traceAppThread;
    Span span(&trace_, clock, "writeback_page", "evict", lane);
    span.arg("vpn", vpn);
    span.arg("bytes", static_cast<std::uint64_t>(pageSize));
    const LatencyConfig &lat = fabric_.latency();

    // Copy the page into the RDMA-registered buffer (the cost Fig 11's
    // idealized no-copy baselines omit).
    clock.advance(static_cast<Tick>(
        lat.copySetupNs +
        static_cast<double>(pageSize) * lat.copyPerKbNs / 1024.0));
    cmem_.read(vpn * pageSize, rdmaBuffer_.data(), pageSize);

    // Write to every reachable copy; if the whole placement is
    // misbehaving, back off and retry rather than dying on a transient
    // outage. Idempotent page writes make the replay safe.
    RetryState retry(config_.retry, retrySeed_++);
    retry.bindTelemetry(&retries_, nullptr);
    Tick maxEnd = clock.now();
    for (;;) {
        auto copies = translation_.translateAll(vpn * pageSize);
        Tick start = clock.now();
        maxEnd = start;
        bool any = false;
        for (const RemoteLocation &loc : copies) {
            if (fabric_.nodeDown(loc.node)) {
                controller_.reportOpFailure(loc.node);
                continue;
            }
            SimClock branch;
            branch.advanceTo(start);
            WorkRequest wr;
            wr.wrId = nextWrId_++;
            wr.opcode = RdmaOpcode::Write;
            wr.localBuf = rdmaBuffer_.data();
            wr.remoteKey = loc.regionKey;
            wr.remoteAddr = loc.addr;
            wr.length = pageSize;
            PostResult posted = qpTo(loc.node).post(wr, branch);
            if (!posted.ok()) {
                poller_.drain(cq_, branch, posted.cqesPushed);
                controller_.reportOpFailure(loc.node);
                continue;
            }
            poller_.waitOne(cq_, branch);
            controller_.reportOpSuccess(loc.node);
            wireBytes_.add(pageSize);
            maxEnd = std::max(maxEnd, branch.now());
            any = true;
        }
        if (any)
            break;
        if (!retry.shouldRetry())
            fatal("page writeback failed: all replicas unreachable");
        retry.backoff(clock);
    }
    clock.advanceTo(maxEnd);
}

void
VmRuntime::read(Addr addr, void *buf, std::size_t size)
{
    if (size == 0)
        return;
    ensureRange(addr, size, AccessType::Read);

    Addr first = alignDown(addr, cacheLineSize);
    Addr last = alignDown(addr + size - 1, cacheLineSize);
    for (Addr line = first; line <= last; line += cacheLineSize) {
        int level = hierarchy_.accessOne(line, AccessType::Read);
        std::size_t idx = level >= 0 ? static_cast<std::size_t>(level)
                                     : hierarchy_.numLevels();
        appClock_.advance(static_cast<Tick>(levelLatencyNs_[idx]));
        if (level < 0) {
            appClock_.advance(static_cast<Tick>(
                fabric_.latency().cmemNs));
        }
    }

    cmem_.read(addr, buf, size);
    reads_.add();
    bytesRead_.add(size);
    if (sampler_ != nullptr)
        sampler_->onTick(appClock_.now());
}

void
VmRuntime::write(Addr addr, const void *buf, std::size_t size)
{
    if (size == 0)
        return;
    ensureRange(addr, size, AccessType::Write);

    Addr first = alignDown(addr, cacheLineSize);
    Addr last = alignDown(addr + size - 1, cacheLineSize);
    for (Addr line = first; line <= last; line += cacheLineSize) {
        int level = hierarchy_.accessOne(line, AccessType::Write);
        std::size_t idx = level >= 0 ? static_cast<std::size_t>(level)
                                     : hierarchy_.numLevels();
        appClock_.advance(static_cast<Tick>(levelLatencyNs_[idx]));
        if (level < 0) {
            appClock_.advance(static_cast<Tick>(
                fabric_.latency().cmemNs));
        }
    }

    cmem_.write(addr, buf, size);
    writes_.add();
    bytesWritten_.add(size);
    if (sampler_ != nullptr)
        sampler_->onTick(appClock_.now());
}

void
VmRuntime::writebackAll()
{
    while (!lruList_.empty())
        evictOne();
}

Tick
VmRuntime::elapsed() const
{
    return std::max(appClock_.now(), backgroundClock_.now());
}

RuntimeStats
VmRuntime::stats() const
{
    RuntimeStats s;
    s.reads = reads_.value();
    s.writes = writes_.value();
    s.bytesRead = bytesRead_.value();
    s.bytesWritten = bytesWritten_.value();
    s.remoteFetches = majorFaults_.value();
    s.majorFaults = majorFaults_.value();
    s.minorFaults = minorFaults_.value();
    s.tlbShootdowns = tlbShootdowns_.value();
    s.pagesEvicted = pagesEvicted_.value();
    s.silentEvictions = silentEvictions_.value();
    s.evictionBytesOnWire = wireBytes_.value();
    s.retries = retries_.value();
    s.replicaPromotions = promotions_.value();
    return s;
}

} // namespace kona
