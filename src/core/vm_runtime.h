/**
 * @file
 * VmRuntime: the virtual-memory-based remote memory baseline (§2).
 *
 * It implements the three remote-memory operations the way Infiniswap,
 * LegoOS and Kona-VM do:
 *  - fetch: first touch of a non-present page raises a major fault;
 *    the handler RDMA-reads the page into the local DRAM cache. The
 *    personality's measured end-to-end fault latency (40us Infiniswap,
 *    10us LegoOS, 10.5us userfaultfd Kona-VM) is charged to the app.
 *  - track: pages are mapped read-only after fetch; the first write
 *    raises a minor (write-protect) fault that marks the page dirty.
 *  - evict: the LRU page is written back at 4KB granularity (dirty
 *    data amplification!), its PTE cleared, and the TLB shot down —
 *    the shootdown stalls the application.
 *
 * Kona-VM uses the same caching/eviction algorithms as Kona, making
 * the Kona-vs-Kona-VM comparison isolate page faults + granularity,
 * exactly as §6.1 argues.
 */

#ifndef KONA_CORE_VM_RUNTIME_H
#define KONA_CORE_VM_RUNTIME_H

#include <list>
#include <memory>
#include <unordered_map>

#include "cache/hierarchy.h"
#include "core/runtime.h"
#include "fpga/remote_translation.h"
#include "mem/backing_store.h"
#include "mem/page_table.h"
#include "mem/region_allocator.h"
#include "mem/tlb.h"
#include "net/queue_pair.h"
#include "net/retry_policy.h"
#include "rack/controller.h"
#include "telemetry/metric_registry.h"
#include "telemetry/trace_session.h"

namespace kona {

/** Configuration of a virtual-memory baseline runtime. */
struct VmConfig
{
    VmPersonality personality = VmPersonality::KonaVm;

    /** Capacity of the local DRAM page cache, in pages. */
    std::size_t localCachePages = 16384;

    /** Write-protect pages to track dirty data. The NoWP variant of
     *  Fig 7 sets this false: one fault less per page, but every
     *  evicted page must be written back (tracking is impossible). */
    bool writeProtectTracking = true;

    /** Charge eviction writebacks to a background clock (kswapd-like)
     *  instead of the application. TLB shootdowns always hit the app. */
    bool backgroundEviction = true;

    HierarchyConfig hierarchy;
    std::size_t replicationFactor = 0;

    /** Shared retry discipline for the fault and writeback paths. */
    RetryPolicy retry{.initialBackoffNs = 100'000, .maxAttempts = 16};

    Addr windowBase = 0x200000000000ULL;
    std::size_t windowSize = 16 * GiB;
};

/** Page-based remote memory runtime (the baseline family). */
class VmRuntime : public RemoteMemoryRuntime
{
  public:
    /** @param scope Telemetry scope; the CPU hierarchy registers under
     *         "<scope>.hierarchy", QPs under "<scope>.qp<node>". */
    VmRuntime(Fabric &fabric, Controller &controller, NodeId computeNode,
              const VmConfig &config = {}, MetricScope scope = {});

    // MemoryInterface
    void read(Addr addr, void *buf, std::size_t size) override;
    void write(Addr addr, const void *buf, std::size_t size) override;

    // RemoteMemoryRuntime
    Addr allocate(std::size_t size, std::size_t align = 16) override;
    void deallocate(Addr addr) override;
    void writebackAll() override;
    Tick elapsed() const override;
    RuntimeStats stats() const override;
    std::string name() const override;

    const VmConfig &config() const { return config_; }
    SimClock &appClock() { return appClock_; }
    const PageTable &pageTable() const { return pageTable_; }
    const Tlb &tlb() const { return tlb_; }
    std::size_t residentPages() const { return lruList_.size(); }
    std::uint64_t faultRetries() const { return retries_.value(); }
    std::uint64_t replicaPromotions() const
    {
        return promotions_.value();
    }

    TraceSession *traceSession() override { return &trace_; }

    /** Tick @p sampler once per read()/write() on the app clock. */
    void setTimeSeriesSampler(TimeSeriesSampler *sampler) override
    {
        sampler_ = sampler;
    }

  private:
    /** Fault/translate until the access to @p vpn is permitted. */
    void ensureAccess(Addr vpn, AccessType type);

    /** Ensure every page of [addr, addr+size) is simultaneously
     *  resident and accessible (multi-page accesses can otherwise
     *  evict each other's pages mid-flight). */
    void ensureRange(Addr addr, std::size_t size, AccessType type);

    /** Major fault: fetch @p vpn from remote into the local cache. */
    void majorFault(Addr vpn);

    /** Minor fault: drop write-protection, mark the page dirty. */
    void minorFault(Addr vpn);

    /** Evict the LRU page to make room. */
    void evictOne();

    /** Write page @p vpn back to every remote copy. */
    void writebackPage(Addr vpn, SimClock &clock);

    /** Move @p vpn to the MRU position. */
    void touchLru(Addr vpn);

    void mapNewSlab();
    void ensureHeap(std::size_t need);

    QueuePair &qpTo(NodeId node);

    Fabric &fabric_;
    Controller &controller_;
    NodeId computeNode_;
    VmConfig config_;
    MetricScope scope_;
    TraceSession trace_;

    CacheHierarchy hierarchy_;
    PageTable pageTable_;
    Tlb tlb_;
    BackingStore cmem_;            ///< local DRAM cache (by vaddr)
    RemoteTranslation translation_;

    std::unique_ptr<RegionAllocator> heap_;
    Addr windowCursor_;

    /** LRU order of resident pages; front = most recent. */
    std::list<Addr> lruList_;
    std::unordered_map<Addr, std::list<Addr>::iterator> lruMap_;

    CompletionQueue cq_;
    Poller poller_;
    std::unordered_map<NodeId, std::unique_ptr<QueuePair>> qps_;
    std::vector<std::uint8_t> rdmaBuffer_;

    SimClock appClock_;
    SimClock backgroundClock_;
    TimeSeriesSampler *sampler_ = nullptr;
    std::array<double, 8> levelLatencyNs_{};

    Counter &reads_;
    Counter &writes_;
    Counter &bytesRead_;
    Counter &bytesWritten_;
    Counter &majorFaults_;
    Counter &minorFaults_;
    Counter &tlbShootdowns_;
    Counter &pagesEvicted_;
    Counter &silentEvictions_;
    Counter &wireBytes_;
    Counter &retries_;
    Counter &promotions_;
    LatencyHistogram &majorFaultNs_;
    std::uint64_t nextWrId_ = 0x20000000;
    std::uint64_t retrySeed_ = 0x76edULL;
};

} // namespace kona

#endif // KONA_CORE_VM_RUNTIME_H
