/**
 * @file
 * EvictionHandler: Kona's third remote-memory operation (§4.4, "Evicting
 * dirty data"). It monitors FMem utilization, picks victims, snoops
 * their lines out of the CPU caches, and ships only the dirty
 * cache-lines in a FaRM-style CL log that a receiver thread on the
 * memory node unpacks. Clean pages are evicted silently, and batches
 * aggregate dirty lines from many pages into one log per destination
 * node ("even from different pages", §6.4).
 *
 * Two movement modes exercise the paper's "choose the data movement
 * size between page and cache-line granularity" principle:
 *  - ClLog: dirty lines aggregated into a log (Kona proper);
 *  - FullPage: whole-page RDMA writes (what Kona-VM is forced to do),
 *    linked into one chain per destination node.
 *
 * The engine is a pipelined, request-oriented design: submit() packs a
 * batch and posts one shipment per destination node into a ring of
 * landing-area slots (pipelineDepth slots per node), then returns —
 * batch k+1 packs while k and k-1 are on the wire or being unpacked.
 * poll() reaps finished shipments without blocking; drain() blocks
 * until everything (including NAK retransmits and re-dirtied requeues)
 * has landed. evictPage()/evictBatch() remain as synchronous wrappers
 * (submit + drain), so pipelineDepth = 1 reproduces the historical
 * fully synchronous behaviour exactly. Pages stay resident and fenced
 * in the FPGA while their log is in flight; a write to a fenced page
 * re-dirties it and the engine re-queues it rather than losing lines.
 */

#ifndef KONA_CORE_EVICTION_HANDLER_H
#define KONA_CORE_EVICTION_HANDLER_H

#include <list>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <unordered_map>
#include <vector>

#include "fpga/coherent_fpga.h"
#include "net/retry_policy.h"
#include "rack/controller.h"
#include "telemetry/attribution.h"
#include "telemetry/event_journal.h"
#include "telemetry/metric_registry.h"
#include "telemetry/trace_session.h"

namespace kona {

/** Eviction data-movement granularity. */
enum class EvictionMode : std::uint8_t { ClLog, FullPage };

/**
 * Static configuration of the eviction engine. Replaces the old
 * post-construction setters (setMode/setRetryPolicy/setTraceSession);
 * embed in KonaConfig as `evict`.
 */
struct EvictionConfig
{
    /** Data-movement granularity. */
    EvictionMode mode = EvictionMode::ClLog;

    /**
     * Ring slots carved out of each memory node's log landing area =
     * in-flight shipments allowed per node. 1 reproduces the fully
     * synchronous engine; larger depths overlap packing with wire and
     * receiver-unpack time.
     */
    std::size_t pipelineDepth = 1;

    /** Accesses between background eviction pumps. */
    std::size_t pumpPeriod = 256;

    /** Free ways per FMem set the background pump maintains. */
    std::size_t freeWays = 1;

    /**
     * Retry discipline for shipping payloads (drops, NAKs). nullopt
     * inherits KonaConfig::retry when embedded there (a default-
     * constructed policy otherwise).
     */
    std::optional<RetryPolicy> retry;

    /** Span tracer for the eviction path (KonaRuntime wires its own). */
    TraceSession *trace = nullptr;

    /** Event journal for stale-home marks, retries-exhausted give-ups
     *  and ring-full stalls (KonaRuntime wires its own). */
    EventJournal *journal = nullptr;
};

/**
 * Time breakdown of the eviction path (Fig 11c). The components
 * overlap once pipelineDepth > 1 (wire/unpack of batch k run under the
 * pack of batch k+1), so totalNs() can exceed the wall-clock time the
 * sender was actually blocked; waitNs alone is the sender-side stall.
 */
struct EvictionBreakdown
{
    double bitmapNs = 0.0;   ///< scanning dirty masks
    double copyNs = 0.0;     ///< copying lines into the RDMA buffer
    double rdmaNs = 0.0;     ///< posting + wire time (sum of shipments)
    double unpackNs = 0.0;   ///< receiver-thread verify + distribute
    double waitNs = 0.0;     ///< sender blocked (ring full, drain, ack)

    double
    totalNs() const
    {
        return bitmapNs + copyNs + rdmaNs + unpackNs + waitNs;
    }
};

/** A batch of pages handed to submit(). */
struct EvictionRequest
{
    std::vector<Addr> vpns;   ///< VFMem page numbers to evict
};

/**
 * Handle to one submitted batch. submit() on an oversized request
 * chunks internally and returns the last chunk's ticket; drain() is
 * the completion barrier that covers every outstanding batch.
 */
struct BatchTicket
{
    std::uint64_t id = 0;
    bool valid() const { return id != 0; }
};

/** Kona's eviction engine. */
class EvictionHandler
{
  public:
    /** @param scope Telemetry scope for the eviction counters. */
    EvictionHandler(Fabric &fabric, CoherentFpga &fpga,
                    CacheHierarchy &hierarchy, Controller &controller,
                    EvictionConfig config = {}, MetricScope scope = {});

    // --- asynchronous request API ------------------------------------

    /**
     * Pack @p req and post one shipment per destination node, blocking
     * only while a needed ring slot is busy (counted in
     * ringFullStalls) or a requested page's previous shipment is still
     * in flight. Only scan + pack cost is charged to @p clock; wire,
     * unpack and ack time accrue on the shipments' own timelines.
     */
    BatchTicket submit(const EvictionRequest &req, SimClock &clock);

    /**
     * Reap finished shipments without blocking: finalize every batch
     * whose last shipment completed at or before @p clock's now.
     * @return Batches finalized by this call.
     */
    std::size_t poll(const SimClock &clock);

    /**
     * Block until every in-flight shipment acked (advancing @p clock
     * to each completion; the waits are charged to waitNs) and every
     * page re-dirtied while in flight has been re-submitted and
     * landed.
     */
    void drain(SimClock &clock);

    /**
     * Targeted barrier: block until no in-flight shipment targets
     * @p node. Required before evacuating/rebalancing away from a
     * live node — an in-flight CL log addressed to the old placement
     * must land before the Controller frees and rewrites it, or the
     * late write lands on reused memory. Each wait is counted in
     * evacuateDrainStalls(). Pages re-dirtied in flight stay queued
     * (they re-ship against the rewritten placement later).
     */
    void drainNode(NodeId node, SimClock &clock);

    /** Whether @p ticket's batch has been finalized. */
    bool complete(BatchTicket ticket) const;

    // --- synchronous wrappers ----------------------------------------

    /**
     * Evict VFMem page @p vpn: snoop CPU caches, write dirty lines (or
     * the full page) to every remote copy, drop the page from FMem.
     * Synchronous wrapper: submit + drain.
     */
    void evictPage(Addr vpn, SimClock &clock);

    /**
     * Evict a batch of pages together: one CL log (or one linked WR
     * chain) per destination node, one ack per node. Synchronous
     * wrapper: submit + drain.
     */
    void evictBatch(const std::vector<Addr> &vpns, SimClock &clock);

    /**
     * Background sweep: keep @p freeWays ways free in every FMem set,
     * charging the work to the background clock so it stays off the
     * application's critical path.
     */
    void pump(SimClock &backgroundClock, std::size_t freeWays = 1);

    /**
     * Targeted flush for a remote coherence invalidation: ship @p vpn's
     * dirty lines and wait until *that page* (and only that page) has
     * settled, without draining unrelated in-flight shipments the way
     * evictPage()'s drain() barrier would. If the page was clean it
     * drops silently; if every home was unreachable it stays resident.
     * @return true when the page is gone from FMem (ownership can
     *         transfer), false when the writeback could not land.
     */
    bool flushPage(Addr vpn, SimClock &clock);

    // --- configuration ------------------------------------------------

    const EvictionConfig &evictionConfig() const { return config_; }
    EvictionMode mode() const { return config_.mode; }

    /**
     * Parallel engine: every public entry point (submit/poll/drain/
     * drainNode/flushPage/pump) becomes a gated cross-shard section —
     * shipments post on the fabric, land in memory-node rings and
     * report into the Controller. Sections nest (pump -> submit is a
     * depth bump). Default endpoint = sequential mode, zero overhead.
     */
    void setGateEndpoint(const GateEndpoint &ep) { gate_ = ep; }
    std::size_t pipelineDepth() const { return config_.pipelineDepth; }
    const RetryPolicy &retryPolicy() const { return retryPolicy_; }

    // --- statistics ---------------------------------------------------

    std::uint64_t pagesEvicted() const { return pagesEvicted_.value(); }
    std::uint64_t silentEvictions() const { return silent_.value(); }
    std::uint64_t dirtyLinesWritten() const { return lines_.value(); }
    std::uint64_t bytesOnWire() const { return wireBytes_.value(); }
    std::uint64_t retryBackoffs() const { return retries_.value(); }
    std::uint64_t logRetransmits() const { return retransmits_.value(); }
    std::uint64_t checksumNaks() const { return naks_.value(); }
    /** Times submit() blocked because a node's slot ring was full. */
    std::uint64_t ringFullStalls() const { return ringStalls_.value(); }
    /** Pages re-queued because they were written while in flight. */
    std::uint64_t inflightRefetches() const { return refetches_.value(); }
    /** Times submit() waited for a page's previous shipment. */
    std::uint64_t pageConflictStalls() const
    {
        return conflictStalls_.value();
    }
    /** Times drainNode() had to wait out an in-flight shipment before
     *  an evacuation/rebalance could safely rewrite placements. */
    std::uint64_t evacuateDrainStalls() const
    {
        return evacuateStalls_.value();
    }
    /** Copies marked stale because a *live* home missed the shipment
     *  (retries exhausted against a gray link). The page still drops —
     *  at least one fresh copy landed — but reads skip the stale home
     *  and the page's next eviction re-ships the missed lines. */
    std::uint64_t staleCopyMarks() const
    {
        return staleMarks_.value();
    }
    /** Shipments currently on the wire or awaiting finalize. */
    std::size_t inflightShipments() const { return shipments_.size(); }
    const EvictionBreakdown &breakdown() const { return breakdown_; }
    void resetBreakdown() { breakdown_ = {}; }

    /** Exact per-shipment latency attribution (queueing / wire /
     *  unpack / ack / retry on each shipment's own timeline, sum ==
     *  submission-to-settle) with a slowest-1% table. */
    const LatencyAttribution &shipmentAttribution() const
    {
        return shipAttr_;
    }

  private:
    /** One page's packed contribution to an in-flight batch. */
    struct PackedPage
    {
        Addr vpn;
        std::uint64_t mask;   ///< dirty mask captured (and cleared) at pack
    };

    /** An in-flight batch: pages + the shipments carrying them. */
    struct Batch
    {
        std::uint64_t id = 0;
        std::vector<PackedPage> pages;
        std::map<Addr, std::vector<NodeId>> homes;
        std::vector<NodeId> reached;   ///< nodes whose shipment landed
        std::size_t outstanding = 0;   ///< unfinalized shipments
        bool open = true;              ///< submit() still posting
        Tick start = 0;
        Tick lastDone = 0;
        std::size_t requested = 0;     ///< pages asked (trace arg)
        std::uint32_t lane = traceAppThread;
    };

    /** One payload on the wire to one node (one ring slot). */
    struct Shipment
    {
        Shipment(const RetryPolicy &policy, std::uint64_t seed)
            : retry(policy, seed)
        {}

        std::uint64_t id = 0;
        std::uint64_t batchId = 0;
        NodeId node = 0;
        std::size_t slot = 0;
        bool clLog = true;
        std::vector<std::uint8_t> log;        ///< ClLog payload
        std::vector<WorkRequest> chain;       ///< FullPage doorbell
        std::vector<std::unique_ptr<std::vector<std::uint8_t>>>
            pageCopies;                       ///< FullPage staging
        SimClock timeline;    ///< this shipment's logical thread
        RetryState retry;
        std::uint64_t sends = 0;
        Tick wireStart = 0;
        Tick attrStart = 0;   ///< timeline at submission (attribution)
        /** Per-component ns on this shipment's timeline, indexed by
         *  EvictComponent; settles into shipmentAttribution(). */
        std::array<Tick, LatencyAttribution::maxComponents> comp{};
        Tick doneAt = 0;      ///< ack time (valid once acked)
        bool acked = false;   ///< outcome decided, awaiting finalize
        bool succeeded = false;
    };

    /** Per-node landing-area ring + serialization points. */
    struct NodeRing
    {
        std::size_t slots = 1;
        std::size_t slotBytes = 0;
        std::vector<std::uint64_t> owner;   ///< shipment id, 0 = free
        Tick wireFreeAt = 0;   ///< the node's link frees up
        Tick recvFreeAt = 0;   ///< the node's receiver thread frees up
    };

    NodeRing &ringFor(NodeId node);
    QueuePair &qpTo(NodeId node);

    /** Largest batch whose worst-case log fits every node's ring slot. */
    std::size_t batchPageLimit() const;

    /** Post (or re-post) @p s's payload on its own timeline. */
    void postShipment(Shipment &s);

    /** Consume every pending CQE, deciding shipment outcomes. */
    void reapCq();

    /** Route one CQE to its shipment (wire done / retransmit / fail). */
    void handleCompletion(const WorkCompletion &wc);

    /** Terminal outcome for @p s; finalize happens at its doneAt. */
    void settleShipment(Shipment &s, bool succeeded);

    /** Finalize every acked shipment with doneAt <= @p now. */
    std::size_t finalizeDue(Tick now);

    /** Drop/keep/requeue the pages of a fully-acked batch. */
    void finalizeBatch(Batch &batch);

    /** Earliest doneAt among in-flight shipments passing @p pred. */
    template <typename Pred>
    std::optional<Tick>
    earliestDoneAt(Pred pred) const
    {
        std::optional<Tick> best;
        for (const Shipment &s : shipments_) {
            if (!pred(s))
                continue;
            if (!best.has_value() || s.doneAt < *best)
                best = s.doneAt;
        }
        return best;
    }

    /** Advance @p clock to @p until, charging the wait to waitNs. */
    void waitUntil(SimClock &clock, Tick until);

    /** Block until no in-flight shipment still covers @p vpn. */
    void awaitPageIdle(Addr vpn, SimClock &clock);

    /** Record a manual trace event (explicit ts/dur, any lane). */
    void record(const char *name, Tick ts, Tick dur, std::uint32_t tid,
                std::vector<TraceArg> args);
    bool tracing() const { return trace_ != nullptr && trace_->enabled(); }

    Fabric &fabric_;
    CoherentFpga &fpga_;
    CacheHierarchy &hierarchy_;
    Controller &controller_;
    GateEndpoint gate_;
    EvictionConfig config_;
    MetricScope scope_;
    RetryPolicy retryPolicy_;

    CompletionQueue cq_;
    Poller poller_;
    std::map<NodeId, std::unique_ptr<QueuePair>> qps_;
    std::map<NodeId, NodeRing> rings_;

    std::list<Shipment> shipments_;
    std::unordered_map<std::uint64_t, Shipment *> wrOwner_;
    std::map<std::uint64_t, Batch> batches_;
    std::unordered_map<Addr, std::uint64_t> inflightPage_;
    std::set<Addr> requeue_;   ///< re-dirtied while in flight

    /** pump() scratch, reused so the steady state never allocates. */
    std::vector<FMemCache::Victim> victimBuf_;
    std::vector<Addr> pumpVpns_;

    std::uint64_t nextWrId_ = 0x10000000;
    std::uint64_t nextBatchId_ = 1;
    std::uint64_t nextShipmentId_ = 1;
    std::uint64_t retrySeed_ = 0x5eedULL;

    TraceSession *trace_ = nullptr;
    std::uint32_t traceLane_ = traceAppThread;
    Counter &pagesEvicted_;
    Counter &silent_;
    Counter &lines_;
    Counter &wireBytes_;
    Counter &retries_;
    Counter &retransmits_;
    Counter &naks_;
    Counter &ringStalls_;
    Counter &refetches_;
    Counter &conflictStalls_;
    Counter &evacuateStalls_;
    Counter &staleMarks_;
    Gauge &inflight_;
    LatencyHistogram &retryBackoffNs_;
    LatencyHistogram &batchNs_;
    EvictionBreakdown breakdown_;
    LatencyAttribution shipAttr_{EvictComponent::names,
                                 EvictComponent::Count};
};

} // namespace kona

#endif // KONA_CORE_EVICTION_HANDLER_H
