/**
 * @file
 * EvictionHandler: Kona's third remote-memory operation (§4.4, "Evicting
 * dirty data"). It monitors FMem utilization, picks victims, snoops
 * their lines out of the CPU caches, and ships only the dirty
 * cache-lines in a FaRM-style CL log that a receiver thread on the
 * memory node unpacks. Clean pages are evicted silently, and batches
 * aggregate dirty lines from many pages into one log per destination
 * node ("even from different pages", §6.4).
 *
 * Two movement modes exercise the paper's "choose the data movement
 * size between page and cache-line granularity" principle:
 *  - ClLog: dirty lines aggregated into a log (Kona proper);
 *  - FullPage: whole-page RDMA writes (what Kona-VM is forced to do),
 *    linked into one chain per destination node.
 */

#ifndef KONA_CORE_EVICTION_HANDLER_H
#define KONA_CORE_EVICTION_HANDLER_H

#include <vector>

#include "fpga/coherent_fpga.h"
#include "net/retry_policy.h"
#include "rack/controller.h"
#include "telemetry/metric_registry.h"
#include "telemetry/trace_session.h"

namespace kona {

/** Eviction data-movement granularity. */
enum class EvictionMode : std::uint8_t { ClLog, FullPage };

/** Time breakdown of the eviction path (Fig 11c). */
struct EvictionBreakdown
{
    double bitmapNs = 0.0;   ///< scanning dirty masks
    double copyNs = 0.0;     ///< copying lines into the RDMA buffer
    double rdmaNs = 0.0;     ///< posting + wire time
    double ackNs = 0.0;      ///< receiver unpack + ack wait

    double
    totalNs() const
    {
        return bitmapNs + copyNs + rdmaNs + ackNs;
    }
};

/** Kona's eviction engine. */
class EvictionHandler
{
  public:
    /** @param scope Telemetry scope for the eviction counters. */
    EvictionHandler(Fabric &fabric, CoherentFpga &fpga,
                    CacheHierarchy &hierarchy, Controller &controller,
                    EvictionMode mode, MetricScope scope = {});

    /**
     * Evict VFMem page @p vpn: snoop CPU caches, write dirty lines (or
     * the full page) to every remote copy, drop the page from FMem.
     * All critical-path cost is charged to @p clock.
     */
    void evictPage(Addr vpn, SimClock &clock);

    /**
     * Evict a batch of pages together: one CL log (or one linked WR
     * chain) per destination node, one ack per node.
     */
    void evictBatch(const std::vector<Addr> &vpns, SimClock &clock);

    /**
     * Background sweep: keep @p freeWays ways free in every FMem set,
     * charging the work to the background clock so it stays off the
     * application's critical path.
     */
    void pump(SimClock &backgroundClock, std::size_t freeWays = 1);

    EvictionMode mode() const { return mode_; }
    void setMode(EvictionMode mode) { mode_ = mode; }

    /** Retry discipline for shipping payloads (drops, NAKs). */
    void setRetryPolicy(const RetryPolicy &policy)
    {
        retryPolicy_ = policy;
    }
    const RetryPolicy &retryPolicy() const { return retryPolicy_; }

    std::uint64_t pagesEvicted() const { return pagesEvicted_.value(); }
    std::uint64_t silentEvictions() const { return silent_.value(); }
    std::uint64_t dirtyLinesWritten() const { return lines_.value(); }
    std::uint64_t bytesOnWire() const { return wireBytes_.value(); }
    std::uint64_t retryBackoffs() const { return retries_.value(); }
    std::uint64_t logRetransmits() const { return retransmits_.value(); }
    std::uint64_t checksumNaks() const { return naks_.value(); }
    const EvictionBreakdown &breakdown() const { return breakdown_; }
    void resetBreakdown() { breakdown_ = {}; }

    /** Attach a span tracer to the eviction path (nullptr detaches). */
    void setTraceSession(TraceSession *trace) { trace_ = trace; }

  private:
    Fabric &fabric_;
    CoherentFpga &fpga_;
    CacheHierarchy &hierarchy_;
    Controller &controller_;
    EvictionMode mode_;
    MetricScope scope_;
    RetryPolicy retryPolicy_;

    std::uint64_t nextWrId_ = 0x10000000;
    std::uint64_t retrySeed_ = 0x5eedULL;

    TraceSession *trace_ = nullptr;
    std::uint32_t traceLane_ = traceAppThread;
    Counter &pagesEvicted_;
    Counter &silent_;
    Counter &lines_;
    Counter &wireBytes_;
    Counter &retries_;
    Counter &retransmits_;
    Counter &naks_;
    LatencyHistogram &retryBackoffNs_;
    LatencyHistogram &batchNs_;
    EvictionBreakdown breakdown_;
};

} // namespace kona

#endif // KONA_CORE_EVICTION_HANDLER_H
