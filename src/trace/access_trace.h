/**
 * @file
 * Access tracing: the reproduction's stand-in for Intel Pin (§2.1).
 *
 * Workloads run against a TracingMemory that forwards every load and
 * store to the real MemoryInterface underneath (a raw BackingStore for
 * analysis runs, or a full runtime for end-to-end runs) while feeding
 * one or more TraceSinks that compute the paper's metrics online.
 */

#ifndef KONA_TRACE_ACCESS_TRACE_H
#define KONA_TRACE_ACCESS_TRACE_H

#include <vector>

#include "common/types.h"
#include "mem/memory_interface.h"

namespace kona {

/** One observed memory access. */
struct AccessRecord
{
    Addr addr = 0;
    std::uint32_t size = 0;
    AccessType type = AccessType::Read;
};

/** Consumer of an access stream. */
class TraceSink
{
  public:
    virtual ~TraceSink() = default;

    virtual void record(const AccessRecord &access) = 0;

    /** Close the current measurement window (10s windows in §2.1). */
    virtual void endWindow() {}
};

/** Instrumented memory: forwards accesses and notifies the sinks. */
class TracingMemory : public MemoryInterface
{
  public:
    explicit TracingMemory(MemoryInterface &backing)
        : backing_(backing)
    {}

    void addSink(TraceSink *sink) { sinks_.push_back(sink); }

    // Sinks are notified BEFORE the access executes, exactly like a
    // Pin instrumentation callback: KTracker relies on this to capture
    // pre-write page snapshots.
    void
    read(Addr addr, void *buf, std::size_t size) override
    {
        AccessRecord rec{addr, static_cast<std::uint32_t>(size),
                         AccessType::Read};
        for (TraceSink *sink : sinks_)
            sink->record(rec);
        backing_.read(addr, buf, size);
    }

    void
    write(Addr addr, const void *buf, std::size_t size) override
    {
        AccessRecord rec{addr, static_cast<std::uint32_t>(size),
                         AccessType::Write};
        for (TraceSink *sink : sinks_)
            sink->record(rec);
        backing_.write(addr, buf, size);
    }

    /** Signal a window boundary to every sink. */
    void
    endWindow()
    {
        for (TraceSink *sink : sinks_)
            sink->endWindow();
    }

    MemoryInterface &backing() { return backing_; }

  private:
    MemoryInterface &backing_;
    std::vector<TraceSink *> sinks_;
};

/** A sink that simply retains the records (tests, replay). */
class RecordingSink : public TraceSink
{
  public:
    void
    record(const AccessRecord &access) override
    {
        records_.push_back(access);
    }

    const std::vector<AccessRecord> &records() const { return records_; }
    void clear() { records_.clear(); }

  private:
    std::vector<AccessRecord> records_;
};

} // namespace kona

#endif // KONA_TRACE_ACCESS_TRACE_H
