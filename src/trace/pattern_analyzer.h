/**
 * @file
 * AccessPatternAnalyzer: computes, per measurement window,
 *
 *  - dirty data amplification at 4KB-page, 2MB-page and 64B-line
 *    tracking granularity against unique bytes written (Table 2, Fig 9);
 *  - the distribution of accessed cache-lines per page (Fig 2);
 *  - the distribution of contiguous accessed-line segment lengths
 *    within pages (Fig 3).
 *
 * This reproduces the paper's Pin-based methodology: execution is split
 * into windows and behaviour measured online in each window.
 */

#ifndef KONA_TRACE_PATTERN_ANALYZER_H
#define KONA_TRACE_PATTERN_ANALYZER_H

#include <bitset>
#include <unordered_map>
#include <unordered_set>

#include "common/stats.h"
#include "common/types.h"
#include "trace/access_trace.h"

namespace kona {

/** Per-window amplification sample at the three granularities. */
struct AmplificationSample
{
    std::uint64_t uniqueBytesWritten = 0;
    double amp4k = 0.0;
    double amp2m = 0.0;
    double ampLine = 0.0;
};

/** Online analyzer of the three §2 access-pattern metrics. */
class AccessPatternAnalyzer : public TraceSink
{
  public:
    AccessPatternAnalyzer() = default;

    void record(const AccessRecord &access) override;
    void endWindow() override;

    /** Windows seen so far (closed via endWindow()). */
    std::size_t windows() const { return samples_.size(); }

    const std::vector<AmplificationSample> &samples() const
    {
        return samples_;
    }

    /**
     * Mean amplification over windows with writes. The paper drops the
     * teardown window; pass skipBack=1 to do the same.
     */
    AmplificationSample meanAmplification(std::size_t skipFront = 0,
                                          std::size_t skipBack = 0)
        const;

    /** Fig 2: accessed lines per touched page, per access type. */
    const IntDistribution &linesPerPageDist(AccessType type) const
    {
        return type == AccessType::Read ? readLinesPerPage_
                                        : writeLinesPerPage_;
    }

    /** Fig 3: contiguous accessed-line segment lengths. */
    const IntDistribution &segmentLengths(AccessType type) const
    {
        return type == AccessType::Read ? readSegments_
                                        : writeSegments_;
    }

  private:
    struct PageState
    {
        std::uint64_t readLines = 0;   ///< mask of lines read
        std::uint64_t writeLines = 0;  ///< mask of lines written
        /** Byte-accurate dirty map for unique-bytes accounting. */
        std::bitset<pageSize> dirtyBytes;
    };

    std::unordered_map<Addr, PageState> pages_;     ///< current window
    std::unordered_set<Addr> dirtyHugePages_;       ///< 2MB units

    std::vector<AmplificationSample> samples_;
    IntDistribution readLinesPerPage_;
    IntDistribution writeLinesPerPage_;
    IntDistribution readSegments_;
    IntDistribution writeSegments_;
};

} // namespace kona

#endif // KONA_TRACE_PATTERN_ANALYZER_H
