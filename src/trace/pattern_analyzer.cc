#include "trace/pattern_analyzer.h"

#include <bit>

namespace kona {

namespace {

/** Record every maximal run of set bits in @p mask into @p dist. */
void
recordSegments(std::uint64_t mask, IntDistribution &dist)
{
    unsigned line = 0;
    while (line < linesPerPage) {
        if (((mask >> line) & 1ULL) == 0) {
            ++line;
            continue;
        }
        unsigned start = line;
        while (line < linesPerPage && ((mask >> line) & 1ULL))
            ++line;
        dist.record(line - start);
    }
}

} // namespace

void
AccessPatternAnalyzer::record(const AccessRecord &access)
{
    if (access.size == 0)
        return;
    Addr addr = access.addr;
    std::size_t remaining = access.size;

    while (remaining > 0) {
        Addr pn = pageNumber(addr);
        std::size_t offset = addr % pageSize;
        std::size_t chunk = std::min(remaining, pageSize - offset);
        PageState &page = pages_[pn];

        // Line mask covered by this chunk.
        unsigned firstLine = static_cast<unsigned>(offset /
                                                   cacheLineSize);
        unsigned lastLine = static_cast<unsigned>(
            (offset + chunk - 1) / cacheLineSize);
        std::uint64_t mask;
        if (lastLine - firstLine + 1 >= linesPerPage) {
            mask = ~0ULL;
        } else {
            mask = ((1ULL << (lastLine - firstLine + 1)) - 1)
                   << firstLine;
        }

        if (access.type == AccessType::Read) {
            page.readLines |= mask;
        } else {
            page.writeLines |= mask;
            for (std::size_t i = 0; i < chunk; ++i)
                page.dirtyBytes.set(offset + i);
            dirtyHugePages_.insert(addr / hugePageSize);
        }

        addr += chunk;
        remaining -= chunk;
    }
}

void
AccessPatternAnalyzer::endWindow()
{
    AmplificationSample sample;
    std::uint64_t dirtyPages4k = 0;
    std::uint64_t dirtyLines = 0;

    for (const auto &[pn, page] : pages_) {
        if (page.readLines != 0) {
            readLinesPerPage_.record(std::popcount(page.readLines));
            recordSegments(page.readLines, readSegments_);
        }
        if (page.writeLines != 0) {
            writeLinesPerPage_.record(std::popcount(page.writeLines));
            recordSegments(page.writeLines, writeSegments_);
            ++dirtyPages4k;
            dirtyLines += std::popcount(page.writeLines);
            sample.uniqueBytesWritten += page.dirtyBytes.count();
        }
    }

    if (sample.uniqueBytesWritten > 0) {
        double bytes =
            static_cast<double>(sample.uniqueBytesWritten);
        sample.amp4k = static_cast<double>(dirtyPages4k * pageSize) /
                       bytes;
        sample.amp2m = static_cast<double>(dirtyHugePages_.size() *
                                           hugePageSize) / bytes;
        sample.ampLine = static_cast<double>(dirtyLines *
                                             cacheLineSize) / bytes;
    }
    samples_.push_back(sample);

    pages_.clear();
    dirtyHugePages_.clear();
}

AmplificationSample
AccessPatternAnalyzer::meanAmplification(std::size_t skipFront,
                                         std::size_t skipBack) const
{
    AmplificationSample mean;
    if (samples_.size() <= skipFront + skipBack)
        return mean;

    std::size_t n = 0;
    for (std::size_t i = skipFront; i < samples_.size() - skipBack;
         ++i) {
        const AmplificationSample &s = samples_[i];
        if (s.uniqueBytesWritten == 0)
            continue;   // windows without writes carry no signal
        mean.uniqueBytesWritten += s.uniqueBytesWritten;
        mean.amp4k += s.amp4k;
        mean.amp2m += s.amp2m;
        mean.ampLine += s.ampLine;
        ++n;
    }
    if (n > 0) {
        mean.amp4k /= static_cast<double>(n);
        mean.amp2m /= static_cast<double>(n);
        mean.ampLine /= static_cast<double>(n);
    }
    return mean;
}

} // namespace kona
