#include "policy/victim_policy.h"

#include <cstdlib>

#include "common/logging.h"

namespace kona {

namespace {

struct ParsedSpec
{
    std::string policy;
    std::size_t arg = 0;   ///< 0 = policy default
    bool hasArg = false;
    bool valid = false;
};

ParsedSpec
parseSpec(const std::string &spec)
{
    ParsedSpec parsed;
    std::string::size_type colon = spec.find(':');
    parsed.policy = spec.substr(0, colon);
    parsed.valid = true;
    if (colon == std::string::npos)
        return parsed;
    std::string arg = spec.substr(colon + 1);
    if (arg.empty() ||
        arg.find_first_not_of("0123456789") != std::string::npos) {
        parsed.valid = false;
        return parsed;
    }
    parsed.arg = static_cast<std::size_t>(
        std::strtoull(arg.c_str(), nullptr, 10));
    parsed.hasArg = true;
    parsed.valid = parsed.arg > 0;
    return parsed;
}

/** The paper's behavior: the coldest candidate. Candidates arrive MRU
 *  first, so this is simply the last one — bit-identical to the PR 5
 *  flat-array walk. */
class LruVictimPolicy final : public VictimPolicy
{
  public:
    std::string name() const override { return "lru"; }

    std::size_t pick(const VictimView *, std::size_t n) const override
    {
        return n - 1;
    }
};

/** Fewest demand touches wins; colder candidate breaks ties, so an
 *  untouched streaming page always leaves before an equally-cold page
 *  that was re-referenced. */
class LfuVictimPolicy final : public VictimPolicy
{
  public:
    std::string name() const override { return "lfu"; }

    std::size_t pick(const VictimView *candidates,
                     std::size_t n) const override
    {
        std::size_t best = 0;
        for (std::size_t i = 1; i < n; ++i)
            if (candidates[i].touches <= candidates[best].touches)
                best = i;
        return best;
    }
};

/** Scan-resistant: evict the coldest candidate that never proved
 *  itself (fewer than @p threshold touches), so a sequential scan
 *  cycles through probationary ways without displacing the hot set.
 *  When every candidate is proven, fall back to plain LRU. */
class ScanVictimPolicy final : public VictimPolicy
{
  public:
    explicit ScanVictimPolicy(std::size_t threshold)
        : threshold_(static_cast<std::uint32_t>(threshold))
    {}

    std::string name() const override
    {
        return "scan:" + std::to_string(threshold_);
    }

    std::size_t pick(const VictimView *candidates,
                     std::size_t n) const override
    {
        for (std::size_t i = n; i-- > 0;)
            if (candidates[i].touches < threshold_)
                return i;
        return n - 1;
    }

  private:
    std::uint32_t threshold_;
};

/** Writeback-batching: prefer the coldest dirty candidate so its
 *  lines ship while the eviction pipeline is touching the page
 *  anyway; clean sets degrade to LRU. */
class DirtyFirstVictimPolicy final : public VictimPolicy
{
  public:
    std::string name() const override { return "dirty"; }

    std::size_t pick(const VictimView *candidates,
                     std::size_t n) const override
    {
        for (std::size_t i = n; i-- > 0;)
            if (candidates[i].dirty)
                return i;
        return n - 1;
    }

    bool wantsDirty() const override { return true; }
};

} // namespace

std::unique_ptr<VictimPolicy>
makeVictimPolicy(const std::string &spec)
{
    ParsedSpec p = parseSpec(spec);
    if (!p.valid)
        fatal("bad victim spec \"", spec,
              "\": expected policy[:arg] with arg >= 1");
    if (p.hasArg && p.policy != "scan")
        fatal("victim policy \"", p.policy, "\" takes no argument");
    if (p.policy.empty() || p.policy == "lru")
        return std::make_unique<LruVictimPolicy>();
    if (p.policy == "lfu")
        return std::make_unique<LfuVictimPolicy>();
    if (p.policy == "scan")
        return std::make_unique<ScanVictimPolicy>(
            p.arg != 0 ? p.arg : 2);
    if (p.policy == "dirty")
        return std::make_unique<DirtyFirstVictimPolicy>();
    fatal("unknown victim policy \"", p.policy,
          "\"; known: lru lfu scan dirty");
}

bool
knownVictimPolicy(const std::string &spec)
{
    ParsedSpec p = parseSpec(spec);
    if (!p.valid)
        return false;
    if (p.hasArg && p.policy != "scan")
        return false;
    return p.policy.empty() || p.policy == "lru" ||
           p.policy == "lfu" || p.policy == "scan" ||
           p.policy == "dirty";
}

const std::vector<std::string> &
victimPolicyNames()
{
    static const std::vector<std::string> names = {"lru", "lfu",
                                                   "scan", "dirty"};
    return names;
}

} // namespace kona
