#include "policy/placement_policy.h"

#include "common/logging.h"

namespace kona {

namespace {

/** The original behavior: strictly-most-free, first-seen wins ties —
 *  bit-identical to the old allocateSlabAvoiding() walk because the
 *  Controller hands candidates over in the same membership order. */
class MostFreePlacementPolicy final : public PlacementPolicy
{
  public:
    std::string name() const override { return "free"; }

    std::size_t choose(const PlacementCandidate *candidates,
                       std::size_t n,
                       const PlacementRequest &) override
    {
        std::size_t best = 0;
        for (std::size_t i = 1; i < n; ++i)
            if (candidates[i].bytesFree > candidates[best].bytesFree)
                best = i;
        return best;
    }
};

/** Lowest node id: packs slabs densely so later nodes stay empty and
 *  cheap to drain. */
class FirstFitPlacementPolicy final : public PlacementPolicy
{
  public:
    std::string name() const override { return "first"; }

    std::size_t choose(const PlacementCandidate *candidates,
                       std::size_t n,
                       const PlacementRequest &) override
    {
        std::size_t best = 0;
        for (std::size_t i = 1; i < n; ++i)
            if (candidates[i].node < candidates[best].node)
                best = i;
        return best;
    }
};

/** Round-robin by node id: the smallest eligible id above the last
 *  grant, wrapping. Spreads slabs (and rebuild fan-out) evenly even
 *  when node sizes differ. */
class RoundRobinPlacementPolicy final : public PlacementPolicy
{
  public:
    std::string name() const override { return "rr"; }

    std::size_t choose(const PlacementCandidate *candidates,
                       std::size_t n,
                       const PlacementRequest &) override
    {
        std::size_t above = npos;   // smallest id > cursor
        std::size_t lowest = 0;     // smallest id overall (wrap)
        for (std::size_t i = 0; i < n; ++i) {
            if (candidates[i].node < candidates[lowest].node)
                lowest = i;
            if (candidates[i].node > cursor_ &&
                (above == npos ||
                 candidates[i].node < candidates[above].node))
                above = i;
        }
        std::size_t picked = above != npos ? above : lowest;
        cursor_ = candidates[picked].node;
        return picked;
    }

  private:
    static constexpr std::size_t npos = static_cast<std::size_t>(-1);

    /** Node id of the previous grant; 0 is below every real id. */
    NodeId cursor_ = 0;
};

/** Free space discounted by the EWMA failure score (and halved on
 *  probation): shaky nodes keep serving what they have but absorb
 *  fewer new slabs. Lowest id breaks ties for determinism. */
class HealthAwarePlacementPolicy final : public PlacementPolicy
{
  public:
    std::string name() const override { return "health"; }

    std::size_t choose(const PlacementCandidate *candidates,
                       std::size_t n,
                       const PlacementRequest &) override
    {
        std::size_t best = 0;
        double bestWeight = weight(candidates[0]);
        for (std::size_t i = 1; i < n; ++i) {
            double w = weight(candidates[i]);
            if (w > bestWeight ||
                (w == bestWeight &&
                 candidates[i].node < candidates[best].node)) {
                best = i;
                bestWeight = w;
            }
        }
        return best;
    }

  private:
    static double weight(const PlacementCandidate &c)
    {
        double score = c.healthScore < 1.0 ? c.healthScore : 1.0;
        double w = static_cast<double>(c.bytesFree) * (1.0 - score);
        return c.probation ? w * 0.5 : w;
    }
};

} // namespace

std::unique_ptr<PlacementPolicy>
makePlacementPolicy(const std::string &spec)
{
    if (spec.find(':') != std::string::npos)
        fatal("bad placement spec \"", spec,
              "\": placement policies take no argument");
    if (spec.empty() || spec == "free")
        return std::make_unique<MostFreePlacementPolicy>();
    if (spec == "first")
        return std::make_unique<FirstFitPlacementPolicy>();
    if (spec == "rr")
        return std::make_unique<RoundRobinPlacementPolicy>();
    if (spec == "health")
        return std::make_unique<HealthAwarePlacementPolicy>();
    fatal("unknown placement policy \"", spec,
          "\"; known: free first rr health");
}

bool
knownPlacementPolicy(const std::string &spec)
{
    if (spec.find(':') != std::string::npos)
        return false;
    return spec.empty() || spec == "free" || spec == "first" ||
           spec == "rr" || spec == "health";
}

const std::vector<std::string> &
placementPolicyNames()
{
    static const std::vector<std::string> names = {"free", "first",
                                                   "rr", "health"};
    return names;
}

} // namespace kona
