/**
 * @file
 * VictimPolicy: pluggable within-set replacement for the FMem tag
 * store. PR 5 flattened FMemCache into a recency-ordered array; this
 * turns "slot used-1 is the victim" from the API into one policy
 * (LRU) among several, selected by a spec string "policy[:arg]" the
 * same way the prefetch engine is.
 *
 * A policy is pure selection: FMemCache builds the candidate view —
 * resident, un-fenced ways of one set, MRU first — and the policy
 * picks an index. Fencing (eviction in flight), coherence governance
 * and the full-set fallback all stay in FMemCache, so every policy
 * inherits the same safety rules.
 *
 * Policies (spec strings):
 *   lru             least-recently-used (the paper's behavior; default)
 *   lfu             fewest demand touches, recency as tie-break
 *   scan[:t]        scan-resistant (2Q/CLOCK-Pro flavored): prefer the
 *                   coldest way with fewer than t touches (default 2),
 *                   so one-shot scan pages leave before the hot set
 *   dirty           prefer the coldest dirty way so writebacks batch
 *                   with eviction; clean-LRU when nothing is dirty
 */

#ifndef KONA_POLICY_VICTIM_POLICY_H
#define KONA_POLICY_VICTIM_POLICY_H

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/types.h"

namespace kona {

/** One eviction candidate as the tag store presents it to a policy. */
struct VictimView
{
    Addr vpn;              ///< VFMem page number
    std::size_t frame;     ///< frame it occupies
    std::uint32_t recency; ///< 0 = MRU; higher = colder
    std::uint32_t touches; ///< demand touches since fill (saturating)
    bool dirty;            ///< has unwritten lines (via dirty probe)
    bool speculative;      ///< speculative fill, never demand-touched
};

/** Within-set victim selection over a candidate view. */
class VictimPolicy
{
  public:
    virtual ~VictimPolicy() = default;

    /** Human-readable policy name ("scan:2"). */
    virtual std::string name() const = 0;

    /**
     * Pick the victim among @p n >= 1 candidates ordered MRU first
     * (candidates[i].recency increases with i). Returns an index in
     * [0, n).
     */
    virtual std::size_t pick(const VictimView *candidates,
                             std::size_t n) const = 0;

    /**
     * Whether pick() reads the dirty bit. The tag store only pays for
     * the dirty-line probe when a policy asks for it, keeping the
     * default LRU path byte-for-byte as cheap as before.
     */
    virtual bool wantsDirty() const { return false; }
};

/**
 * Build the policy described by @p spec ("policy[:arg]", see the file
 * comment). Unknown names or malformed args are fatal(). Never
 * returns nullptr: "lru" is a real policy, not an off switch.
 */
std::unique_ptr<VictimPolicy> makeVictimPolicy(const std::string &spec);

/** Whether @p spec parses; for CLI validation. */
bool knownVictimPolicy(const std::string &spec);

/** The policy names, for usage strings. */
const std::vector<std::string> &victimPolicyNames();

} // namespace kona

#endif // KONA_POLICY_VICTIM_POLICY_H
