/**
 * @file
 * TieringEngine: the hot/cold layer between FMem and remote memory
 * (FluidMem-style; see PAPERS.md "Memory Disaggregation: Advances and
 * Open Challenges"). The prefetchers react to the access stream one
 * miss at a time; the tiering engine keeps a per-page EWMA heat map
 * of the whole VFMem range and acts on it from the background pump:
 * hot-but-remote pages are promoted into FMem ahead of demand, cold
 * resident pages are demoted through the async eviction pipeline once
 * cache pressure justifies it.
 *
 * The engine is policy only. It talks to the stack through four
 * hooks — promote, demote, residency, pressure — wired by
 * KonaRuntime, and it never touches the heap after construction:
 * the heat map is one flat array indexed by page, the demote batch
 * is a preallocated buffer, and the pump walks a bounded cursor
 * window per call. That keeps `--strict-alloc` green with tiering on.
 *
 * Promotions are speculative fills, but they are NOT prefetches: the
 * FPGA tags them with their own fill origin so first-touch/eviction
 * attribution lands in kona.tier.promoted_useful/_wasted instead of
 * polluting fpga.prefetch.*.
 *
 * Spec strings ("policy[:arg]", like --prefetch=):
 *   off             no tiering (parse yields enabled = false; default)
 *   ewma[:n]        EWMA-heat tiering, at most n promotions per pump
 *                   (default 32)
 */

#ifndef KONA_POLICY_TIERING_ENGINE_H
#define KONA_POLICY_TIERING_ENGINE_H

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "common/types.h"
#include "telemetry/metric_registry.h"

namespace kona {

/** Knobs for the EWMA tiering policy. */
struct TieringConfig
{
    bool enabled = false;

    /** Promotion fetches issued per pump() call, max. */
    std::size_t maxPromotesPerPump = 32;

    /** Demotions submitted per pump() call, max. */
    std::size_t maxDemotesPerPump = 8;

    /** Effective heat at/above which a remote page is promoted. */
    double hotThreshold = 4.0;

    /** Effective heat at/below which a resident page may demote. */
    double coldThreshold = 0.5;

    /** EWMA half-life: heat halves every this many sim-ns untouched.
     *  Sized so a hot page survives several pump revolutions of the
     *  scan cursor — too short and every page is cold by the time the
     *  cursor returns to it. */
    Tick halfLifeNs = 2'000'000;

    /** A resident page must idle this long before demotion. */
    Tick minResidencyNs = 500'000;

    /** Demote only when resident/frames >= this (else FMem has room
     *  to spare and eviction-by-demotion is pure overhead). */
    double pressureWatermark = 0.85;

    /** Heat-map entries examined per pump() (cursor wraps). */
    std::size_t scanWindow = 4096;
};

/**
 * Parse @p spec into a TieringConfig ("off" | "ewma[:n]"). Unknown
 * names or malformed args are fatal().
 */
TieringConfig parseTieringSpec(const std::string &spec);

/** Whether @p spec parses (including "off"); for CLI validation. */
bool knownTieringPolicy(const std::string &spec);

/** The policy names, for usage strings. */
const std::vector<std::string> &tieringPolicyNames();

/** EWMA-heat promotion/demotion over one VFMem page range. */
class TieringEngine
{
  public:
    /** Issue a promotion fetch; false when it could not be issued
     *  (page resident/governed/unmapped or its set has no room). */
    using PromoteFn = std::function<bool(Addr vpn, Tick issueTick)>;

    /** Submit @p n pages for asynchronous demotion. */
    using DemoteFn = std::function<void(const Addr *vpns,
                                        std::size_t n)>;

    /** Whether @p vpn currently sits in FMem. */
    using ResidentFn = std::function<bool(Addr vpn)>;

    /** FMem occupancy in [0, 1]. */
    using PressureFn = std::function<double()>;

    /**
     * @param basePage First VFMem page number tracked.
     * @param numPages Pages tracked (heat map size).
     * @param config   Thresholds and batch limits.
     * @param scope    Telemetry scope for kona.tier.*.
     */
    TieringEngine(Addr basePage, std::size_t numPages,
                  const TieringConfig &config, MetricScope scope = {});

    void setHooks(PromoteFn promote, DemoteFn demote,
                  ResidentFn resident, PressureFn pressure);

    /**
     * Account one page-granular access at sim time @p now: decay the
     * page's heat to now, add one. Pure array math — called from
     * serveLine on hits and misses alike.
     */
    void observe(Addr vpn, Tick now);

    /**
     * One background step: scan the next window of the heat map,
     * promote hot remote pages (up to maxPromotesPerPump) and, when
     * FMem pressure is at the watermark, demote cold resident pages
     * (up to maxDemotesPerPump) as one batch.
     */
    void pump(Tick now);

    /** First demand touch of a promoted page: the promotion paid off. */
    void onPromotedUseful(Addr vpn, Tick leadNs);

    /** A promoted page left FMem untouched: wasted fetch + eviction. */
    void onPromotedWasted(Addr vpn);

    /** Effective (decayed-to-now) heat of @p vpn; for tests. */
    double heatOf(Addr vpn, Tick now) const;

    const TieringConfig &config() const { return config_; }

    std::uint64_t promoted() const { return promoted_.value(); }
    std::uint64_t demoted() const { return demoted_.value(); }
    std::uint64_t promotedUseful() const
    {
        return promotedUseful_.value();
    }
    std::uint64_t promotedWasted() const
    {
        return promotedWasted_.value();
    }

  private:
    struct PageStat
    {
        float heat = 0.0f;
        Tick lastTouch = 0;
        bool everTouched = false;
    };

    bool tracked(Addr vpn) const
    {
        return vpn >= basePage_ && vpn < basePage_ + stats_.size();
    }

    /** stats_ slot for @p vpn; caller checked tracked(). */
    PageStat &statOf(Addr vpn) { return stats_[vpn - basePage_]; }
    const PageStat &statOf(Addr vpn) const
    {
        return stats_[vpn - basePage_];
    }

    /** @p stat's heat decayed from lastTouch to @p now. */
    double decayedHeat(const PageStat &stat, Tick now) const;

    MetricScope scope_;
    TieringConfig config_;
    Addr basePage_;
    std::vector<PageStat> stats_;
    std::size_t cursor_ = 0;
    std::vector<Addr> demoteBatch_;   ///< preallocated pump buffer

    PromoteFn promote_;
    DemoteFn demote_;
    ResidentFn resident_;
    PressureFn pressure_;

    Counter &promoted_;
    Counter &promoteFailed_;
    Counter &demoted_;
    Counter &promotedUseful_;
    Counter &promotedWasted_;
    LatencyHistogram &promotedLead_;
};

} // namespace kona

#endif // KONA_POLICY_TIERING_ENGINE_H
