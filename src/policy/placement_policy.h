/**
 * @file
 * PlacementPolicy: pluggable slab-to-node placement for the rack
 * Controller, replacing the allocateSlab()/allocateSlabAvoiding()/
 * allocateSlabOn() trio behind one request-struct entry point.
 *
 * The Controller builds the candidate view — nodes that currently
 * take placements, minus the request's avoid set, with enough free
 * bytes — and the policy picks one. Membership, health state and
 * pin-target semantics (rebalance onto a Joining node bypasses the
 * health filter, exactly as before) stay in the Controller, so every
 * policy inherits the same eligibility rules.
 *
 * Policies (spec strings):
 *   free            most free bytes (the original first-fit-by-space
 *                   behavior; default)
 *   first           lowest node id; densest packing, frees whole
 *                   nodes for decommission
 *   rr              round-robin across eligible nodes; spreads slabs
 *                   (and thus rebuild fan-out) evenly
 *   health          free bytes weighted by the EWMA health score, so
 *                   suspect-but-serving nodes absorb fewer new slabs
 */

#ifndef KONA_POLICY_PLACEMENT_POLICY_H
#define KONA_POLICY_PLACEMENT_POLICY_H

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/types.h"

namespace kona {

/**
 * Everything a caller can say about where a slab should go. The
 * designated-initializer style keeps call sites self-describing:
 * allocateSlab({.avoid = occupied}), allocateSlab({.pinTo = target}).
 */
struct PlacementRequest
{
    /** Nodes that must not receive this slab (replica separation). */
    std::vector<NodeId> avoid{};

    /**
     * Place on exactly this node, bypassing policy AND the
     * takes-placements health filter (rebalance targets Joining
     * nodes). Fails only when the node is absent/Failed or full.
     */
    std::optional<NodeId> pinTo{};

    /** 0 = primary, i = i-th replica; for policies that spread copies. */
    std::size_t copyIndex = 0;

    /** fatal() instead of returning nullopt when nothing fits. */
    bool required = false;
};

/** One eligible node as the Controller presents it to a policy. */
struct PlacementCandidate
{
    NodeId node;
    std::size_t bytesFree;
    double healthScore;   ///< EWMA failure score: 0 = healthy
    bool probation;       ///< readmitted, still on probation
};

/** Slab placement selection over an eligible-candidate view. */
class PlacementPolicy
{
  public:
    virtual ~PlacementPolicy() = default;

    /** Human-readable policy name ("rr"). */
    virtual std::string name() const = 0;

    /**
     * Pick the target among @p n >= 1 candidates (Controller
     * membership order). Returns an index in [0, n). Policies may
     * keep state across calls (round-robin cursor).
     */
    virtual std::size_t choose(const PlacementCandidate *candidates,
                               std::size_t n,
                               const PlacementRequest &req) = 0;
};

/**
 * Build the policy described by @p spec. Unknown names or malformed
 * args are fatal(). Never returns nullptr: "free" is the default
 * policy, not an off switch.
 */
std::unique_ptr<PlacementPolicy>
makePlacementPolicy(const std::string &spec);

/** Whether @p spec parses; for CLI validation. */
bool knownPlacementPolicy(const std::string &spec);

/** The policy names, for usage strings. */
const std::vector<std::string> &placementPolicyNames();

} // namespace kona

#endif // KONA_POLICY_PLACEMENT_POLICY_H
