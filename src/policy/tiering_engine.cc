#include "policy/tiering_engine.h"

#include <cmath>
#include <cstdlib>

#include "common/logging.h"

namespace kona {

namespace {

struct ParsedSpec
{
    std::string policy;
    std::size_t arg = 0;
    bool hasArg = false;
    bool valid = false;
};

ParsedSpec
parseSpec(const std::string &spec)
{
    ParsedSpec parsed;
    std::string::size_type colon = spec.find(':');
    parsed.policy = spec.substr(0, colon);
    parsed.valid = true;
    if (colon == std::string::npos)
        return parsed;
    std::string arg = spec.substr(colon + 1);
    if (arg.empty() ||
        arg.find_first_not_of("0123456789") != std::string::npos) {
        parsed.valid = false;
        return parsed;
    }
    parsed.arg = static_cast<std::size_t>(
        std::strtoull(arg.c_str(), nullptr, 10));
    parsed.hasArg = true;
    parsed.valid = parsed.arg > 0;
    return parsed;
}

} // namespace

TieringConfig
parseTieringSpec(const std::string &spec)
{
    ParsedSpec p = parseSpec(spec);
    if (!p.valid)
        fatal("bad tiering spec \"", spec,
              "\": expected policy[:n] with n >= 1");
    TieringConfig config;
    if (p.policy.empty() || p.policy == "off" || p.policy == "none") {
        if (p.hasArg)
            fatal("tiering policy \"", p.policy,
                  "\" takes no argument");
        return config;
    }
    if (p.policy == "ewma") {
        config.enabled = true;
        if (p.hasArg)
            config.maxPromotesPerPump = p.arg;
        return config;
    }
    fatal("unknown tiering policy \"", p.policy,
          "\"; known: off ewma");
}

bool
knownTieringPolicy(const std::string &spec)
{
    ParsedSpec p = parseSpec(spec);
    if (!p.valid)
        return false;
    if (p.policy.empty() || p.policy == "off" || p.policy == "none")
        return !p.hasArg;
    return p.policy == "ewma";
}

const std::vector<std::string> &
tieringPolicyNames()
{
    static const std::vector<std::string> names = {"off", "ewma"};
    return names;
}

TieringEngine::TieringEngine(Addr basePage, std::size_t numPages,
                             const TieringConfig &config,
                             MetricScope scope)
    : scope_(std::move(scope)), config_(config), basePage_(basePage),
      stats_(numPages),
      promoted_(scope_.counter("promoted")),
      promoteFailed_(scope_.counter("promote_failed")),
      demoted_(scope_.counter("demoted")),
      promotedUseful_(scope_.counter("promoted_useful")),
      promotedWasted_(scope_.counter("promoted_wasted")),
      promotedLead_(scope_.histogram("promoted_lead_ns"))
{
    demoteBatch_.reserve(config_.maxDemotesPerPump);
}

void
TieringEngine::setHooks(PromoteFn promote, DemoteFn demote,
                        ResidentFn resident, PressureFn pressure)
{
    promote_ = std::move(promote);
    demote_ = std::move(demote);
    resident_ = std::move(resident);
    pressure_ = std::move(pressure);
}

double
TieringEngine::decayedHeat(const PageStat &stat, Tick now) const
{
    if (!stat.everTouched || stat.heat == 0.0f)
        return 0.0;
    Tick idle = now > stat.lastTouch ? now - stat.lastTouch : 0;
    double halves =
        static_cast<double>(idle) /
        static_cast<double>(config_.halfLifeNs);
    if (halves > 64.0)
        return 0.0;
    return static_cast<double>(stat.heat) * std::exp2(-halves);
}

void
TieringEngine::observe(Addr vpn, Tick now)
{
    if (!tracked(vpn))
        return;
    PageStat &stat = statOf(vpn);
    stat.heat = static_cast<float>(decayedHeat(stat, now) + 1.0);
    stat.lastTouch = now;
    stat.everTouched = true;
}

void
TieringEngine::pump(Tick now)
{
    if (stats_.empty() || !promote_)
        return;

    std::size_t window = config_.scanWindow < stats_.size()
                             ? config_.scanWindow
                             : stats_.size();
    bool demotable =
        pressure_ && pressure_() >= config_.pressureWatermark;
    std::size_t promotesLeft = config_.maxPromotesPerPump;
    demoteBatch_.clear();

    for (std::size_t i = 0; i < window; ++i) {
        std::size_t slot = cursor_;
        cursor_ = cursor_ + 1 == stats_.size() ? 0 : cursor_ + 1;
        const PageStat &stat = stats_[slot];
        if (!stat.everTouched)
            continue;
        Addr vpn = basePage_ + slot;
        double heat = decayedHeat(stat, now);
        bool resident = resident_ && resident_(vpn);

        if (!resident && heat >= config_.hotThreshold &&
            promotesLeft > 0) {
            --promotesLeft;
            if (promote_(vpn, now))
                promoted_.add();
            else
                promoteFailed_.add();
        } else if (resident && demotable &&
                   heat <= config_.coldThreshold &&
                   now >= stat.lastTouch + config_.minResidencyNs &&
                   demoteBatch_.size() < config_.maxDemotesPerPump) {
            demoteBatch_.push_back(vpn);
        }
    }

    if (!demoteBatch_.empty() && demote_) {
        demoted_.add(demoteBatch_.size());
        demote_(demoteBatch_.data(), demoteBatch_.size());
    }
}

void
TieringEngine::onPromotedUseful(Addr vpn, Tick leadNs)
{
    (void)vpn;
    promotedUseful_.add();
    promotedLead_.record(static_cast<double>(leadNs));
}

void
TieringEngine::onPromotedWasted(Addr vpn)
{
    (void)vpn;
    promotedWasted_.add();
}

double
TieringEngine::heatOf(Addr vpn, Tick now) const
{
    if (!tracked(vpn))
        return 0.0;
    return decayedHeat(statOf(vpn), now);
}

} // namespace kona
