/**
 * @file
 * StridePrefetcher: per-region constant-stride detection.
 *
 * VFMem is partitioned into regions of 2^regionPageBits pages; each
 * region keeps the last page touched, the last observed delta, and a
 * saturating confidence counter. Two consecutive identical non-zero
 * deltas (confidence >= confirmThreshold) confirm a stride — positive
 * or negative — and the predictor proposes vpn + stride*k for
 * k = 1..degree. Repeated touches of the same page (the per-line miss
 * stream inside one page) are ignored so intra-page traffic cannot
 * destroy a detected inter-page stride.
 */

#ifndef KONA_PREFETCH_STRIDE_PREFETCHER_H
#define KONA_PREFETCH_STRIDE_PREFETCHER_H

#include <cstdint>
#include <deque>
#include <optional>
#include <unordered_map>

#include "prefetch/prefetcher.h"

namespace kona {

/** Geometry and thresholds of the stride table. */
struct StrideConfig
{
    std::size_t degree = 4;         ///< pages proposed per confirmation
    unsigned regionPageBits = 8;    ///< region = vpn >> bits (1MiB)
    int confirmThreshold = 2;       ///< confidence needed to predict
    int confidenceMax = 4;          ///< saturation ceiling
    std::size_t maxRegions = 4096;  ///< table capacity (FIFO eviction)
};

/** Per-region delta-table stride predictor. */
class StridePrefetcher : public Prefetcher
{
  public:
    explicit StridePrefetcher(StrideConfig config = {});

    std::string name() const override;
    void observe(Addr vpn, bool demandMiss,
                 std::vector<Addr> &out) override;

    /** The confirmed stride of @p vpn's region; nullopt when none. */
    std::optional<std::int64_t> strideOf(Addr vpn) const;

    const StrideConfig &config() const { return config_; }
    std::size_t tableSize() const { return table_.size(); }

  private:
    struct Entry
    {
        Addr lastVpn = 0;
        std::int64_t stride = 0;
        int confidence = 0;
    };

    Addr regionOf(Addr vpn) const
    {
        return vpn >> config_.regionPageBits;
    }

    StrideConfig config_;
    std::unordered_map<Addr, Entry> table_;
    std::deque<Addr> fifo_;   ///< insertion order, for capacity eviction
};

} // namespace kona

#endif // KONA_PREFETCH_STRIDE_PREFETCHER_H
