/**
 * @file
 * The operational half of the prefetch engine: a CreditBucket
 * modelling the fabric bandwidth budget speculative traffic may
 * consume, and a PrefetchQueue staging the predictor's candidates of
 * the current access.
 *
 * Credits refill with simulated time (one credit per refillNs, up to
 * a burst ceiling) and every issued prefetch consumes one. Demand
 * fetches never touch the bucket — they always preempt: in the
 * cost-accounting model a demand fetch proceeds immediately on the
 * critical-path clock, while prefetches only spend whatever credit
 * the budget has accumulated. Candidates that the budget could not
 * cover before the next access are dropped (and counted), not issued
 * late: a stale prefetch is the definition of bad timeliness.
 */

#ifndef KONA_PREFETCH_PREFETCH_QUEUE_H
#define KONA_PREFETCH_PREFETCH_QUEUE_H

#include <deque>
#include <unordered_set>

#include "common/types.h"

namespace kona {

/** Token bucket refilled by simulated time. Starts full. */
class CreditBucket
{
  public:
    /**
     * @param refillNs Simulated ns per credit earned.
     * @param burst Bucket capacity (max credits banked).
     */
    CreditBucket(double refillNs, std::size_t burst);

    /** Refill for sim time up to @p now (monotonic; regressions are
     *  ignored so independent clocks cannot mint credits). */
    void advanceTo(Tick now);

    /** Spend one credit; false when the bucket is empty. */
    bool tryConsume();

    std::size_t available() const { return credits_; }
    std::size_t burst() const { return burst_; }

  private:
    double refillNs_;
    std::size_t burst_;
    std::size_t credits_;
    Tick lastRefill_ = 0;
    double carryNs_ = 0.0;   ///< sub-credit remainder between refills
};

/** FIFO of candidate pages with dedup and a capacity bound. */
class PrefetchQueue
{
  public:
    explicit PrefetchQueue(std::size_t capacity = 32);

    /** Stage @p vpn; false when full or already staged. */
    bool push(Addr vpn);

    /** Whether @p vpn is already staged. */
    bool contains(Addr vpn) const { return members_.count(vpn) != 0; }

    bool empty() const { return q_.empty(); }
    std::size_t size() const { return q_.size(); }
    std::size_t capacity() const { return capacity_; }

    Addr front() const { return q_.front(); }
    void pop();

    /** Drop everything staged; returns how many were dropped. */
    std::size_t clear();

  private:
    std::size_t capacity_;
    std::deque<Addr> q_;
    std::unordered_set<Addr> members_;
};

} // namespace kona

#endif // KONA_PREFETCH_PREFETCH_QUEUE_H
