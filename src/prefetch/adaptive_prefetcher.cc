#include "prefetch/adaptive_prefetcher.h"

#include <algorithm>

#include "common/logging.h"

namespace kona {

AdaptivePrefetcher::AdaptivePrefetcher(AdaptiveConfig config,
                                       StrideConfig stride,
                                       CorrelationConfig correlation)
    : config_(config), stride_(stride), correlation_(correlation),
      degree_(config.maxDegree)
{
    KONA_ASSERT(config_.maxDegree > 0,
                "adaptive prefetcher needs maxDegree >= 1");
    KONA_ASSERT(config_.windowIssues > 0, "window must be non-empty");
}

std::string
AdaptivePrefetcher::name() const
{
    return "adaptive:" + std::to_string(config_.maxDegree);
}

void
AdaptivePrefetcher::observe(Addr vpn, bool demandMiss,
                            std::vector<Addr> &out)
{
    // Both inner policies always observe: a throttled predictor that
    // stops learning can never recover.
    scratch_.clear();
    stride_.observe(vpn, demandMiss, scratch_);
    correlation_.observe(vpn, demandMiss, scratch_);

    std::size_t allow = degree_;
    if (allow == 0) {
        // Fully throttled: one probe every probePeriod accesses, and
        // only when the predictors actually have something to say.
        ++accessesSinceProbe_;
        if (scratch_.empty() ||
            accessesSinceProbe_ < config_.probePeriod) {
            return;
        }
        accessesSinceProbe_ = 0;
        allow = 1;
    }

    std::size_t taken = 0;
    for (Addr c : scratch_) {
        if (std::find(out.end() - static_cast<std::ptrdiff_t>(taken),
                      out.end(), c) != out.end()) {
            continue;   // stride and correlation agreed; dedup
        }
        out.push_back(c);
        if (++taken >= allow)
            break;
    }
}

void
AdaptivePrefetcher::onPrefetchIssued(std::size_t n)
{
    issued_ += n;
    if (issued_ - windowStartIssued_ >= config_.windowIssues)
        rotateWindow();
}

void
AdaptivePrefetcher::onPrefetchUseful(Addr vpn)
{
    (void)vpn;
    ++useful_;
}

void
AdaptivePrefetcher::rotateWindow()
{
    double windowIssued =
        static_cast<double>(issued_ - windowStartIssued_);
    double windowUseful =
        static_cast<double>(useful_ - windowStartUseful_);
    // Useful feedback lags issue, so a window can observe more useful
    // touches than it issued prefetches; clamp to a true ratio.
    double acc = std::min(windowUseful / windowIssued, 1.0);
    accuracy_ = 0.5 * (accuracy_ + acc);
    if (accuracy_ >= config_.highAccuracy)
        degree_ = config_.maxDegree;
    else if (accuracy_ >= config_.midAccuracy)
        degree_ = std::max<std::size_t>(config_.maxDegree / 2, 1);
    else if (accuracy_ >= config_.lowAccuracy)
        degree_ = 1;
    else
        degree_ = 0;
    windowStartIssued_ = issued_;
    windowStartUseful_ = useful_;
}

} // namespace kona
