/**
 * @file
 * AdaptivePrefetcher: feedback-directed composite (à la Srinath et
 * al., FDP). It runs a stride and a correlation predictor side by
 * side — both always observe, so learning continues even while
 * throttled — and bounds how many of their candidates are proposed by
 * a degree derived from measured accuracy: the engine's
 * useful/issued feedback is folded into an EWMA over windows of
 * issued prefetches, and the degree steps between maxDegree and zero
 * as accuracy crosses the high/mid/low thresholds. While fully
 * throttled, a single probe prefetch is allowed every probePeriod
 * accesses so a returning regular pattern can re-earn its bandwidth.
 */

#ifndef KONA_PREFETCH_ADAPTIVE_PREFETCHER_H
#define KONA_PREFETCH_ADAPTIVE_PREFETCHER_H

#include "prefetch/correlation_prefetcher.h"
#include "prefetch/prefetcher.h"
#include "prefetch/stride_prefetcher.h"

namespace kona {

/** Throttle schedule of the adaptive policy. */
struct AdaptiveConfig
{
    std::size_t maxDegree = 4;     ///< degree at full accuracy
    std::size_t windowIssues = 32; ///< issued prefetches per window
    std::size_t probePeriod = 32;  ///< accesses between probes at 0
    double highAccuracy = 0.50;    ///< >= this: maxDegree
    double midAccuracy = 0.25;     ///< >= this: maxDegree/2
    double lowAccuracy = 0.10;     ///< >= this: 1; below: 0
};

/** Accuracy-throttled stride + correlation composite. */
class AdaptivePrefetcher : public Prefetcher
{
  public:
    explicit AdaptivePrefetcher(AdaptiveConfig config = {},
                                StrideConfig stride = {},
                                CorrelationConfig correlation = {});

    std::string name() const override;
    void observe(Addr vpn, bool demandMiss,
                 std::vector<Addr> &out) override;
    void onPrefetchIssued(std::size_t n) override;
    void onPrefetchUseful(Addr vpn) override;

    /** The current throttled degree (0 = fully throttled). */
    std::size_t currentDegree() const { return degree_; }

    /** EWMA accuracy over completed windows. */
    double accuracy() const { return accuracy_; }

    std::uint64_t issuedTotal() const { return issued_; }
    std::uint64_t usefulTotal() const { return useful_; }

  private:
    void rotateWindow();

    AdaptiveConfig config_;
    StridePrefetcher stride_;
    CorrelationPrefetcher correlation_;
    std::vector<Addr> scratch_;

    std::size_t degree_;
    double accuracy_ = 1.0;   ///< optimistic start: probe at full degree
    std::uint64_t issued_ = 0;
    std::uint64_t useful_ = 0;
    std::uint64_t windowStartIssued_ = 0;
    std::uint64_t windowStartUseful_ = 0;
    std::uint64_t accessesSinceProbe_ = 0;
};

} // namespace kona

#endif // KONA_PREFETCH_ADAPTIVE_PREFETCHER_H
