#include "prefetch/correlation_prefetcher.h"

#include <algorithm>

#include "common/logging.h"

namespace kona {

CorrelationPrefetcher::CorrelationPrefetcher(CorrelationConfig config)
    : config_(config)
{
    KONA_ASSERT(config_.degree > 0,
                "correlation prefetcher needs degree >= 1");
    KONA_ASSERT(config_.successorsPerEntry > 0, "need >= 1 successor way");
    KONA_ASSERT(config_.maxEntries > 0, "Markov table needs capacity");
}

std::string
CorrelationPrefetcher::name() const
{
    return "corr:" + std::to_string(config_.degree);
}

void
CorrelationPrefetcher::record(Addr from, Addr to)
{
    auto it = table_.find(from);
    if (it == table_.end()) {
        if (table_.size() >= config_.maxEntries) {
            table_.erase(fifo_.front());
            fifo_.pop_front();
        }
        fifo_.push_back(from);
        it = table_.emplace(from, Entry{}).first;
    }
    Entry &e = it->second;
    for (Successor &s : e.succ) {
        if (s.vpn == to) {
            ++s.count;
            return;
        }
    }
    if (e.succ.size() < config_.successorsPerEntry) {
        e.succ.push_back({to, 1});
        return;
    }
    // Replace the weakest way; a new successor must displace history.
    auto weakest = std::min_element(
        e.succ.begin(), e.succ.end(),
        [](const Successor &a, const Successor &b) {
            return a.count < b.count;
        });
    *weakest = {to, 1};
}

const CorrelationPrefetcher::Successor *
CorrelationPrefetcher::bestSuccessor(Addr vpn) const
{
    auto it = table_.find(vpn);
    if (it == table_.end())
        return nullptr;
    const Successor *best = nullptr;
    for (const Successor &s : it->second.succ) {
        if (s.count >= config_.confirmCount &&
            (best == nullptr || s.count > best->count)) {
            best = &s;
        }
    }
    return best;
}

void
CorrelationPrefetcher::observe(Addr vpn, bool demandMiss,
                               std::vector<Addr> &out)
{
    (void)demandMiss;
    if (lastVpn_ != invalidAddr && lastVpn_ != vpn)
        record(lastVpn_, vpn);
    lastVpn_ = vpn;

    Addr cur = vpn;
    for (std::size_t k = 0; k < config_.degree; ++k) {
        const Successor *best = bestSuccessor(cur);
        if (best == nullptr)
            break;
        out.push_back(best->vpn);
        cur = best->vpn;
    }
}

std::uint32_t
CorrelationPrefetcher::transitionCount(Addr from, Addr to) const
{
    auto it = table_.find(from);
    if (it == table_.end())
        return 0;
    for (const Successor &s : it->second.succ) {
        if (s.vpn == to)
            return s.count;
    }
    return 0;
}

} // namespace kona
