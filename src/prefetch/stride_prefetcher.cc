#include "prefetch/stride_prefetcher.h"

#include <algorithm>

#include "common/logging.h"

namespace kona {

StridePrefetcher::StridePrefetcher(StrideConfig config)
    : config_(config)
{
    KONA_ASSERT(config_.degree > 0, "stride prefetcher needs degree >= 1");
    KONA_ASSERT(config_.confirmThreshold >= 1, "confirm threshold >= 1");
    KONA_ASSERT(config_.maxRegions > 0, "stride table needs capacity");
}

std::string
StridePrefetcher::name() const
{
    return "stride:" + std::to_string(config_.degree);
}

void
StridePrefetcher::observe(Addr vpn, bool demandMiss,
                          std::vector<Addr> &out)
{
    (void)demandMiss;
    Addr region = regionOf(vpn);
    auto it = table_.find(region);
    if (it == table_.end()) {
        if (table_.size() >= config_.maxRegions) {
            table_.erase(fifo_.front());
            fifo_.pop_front();
        }
        fifo_.push_back(region);
        it = table_.emplace(region, Entry{}).first;
        it->second.lastVpn = vpn;
        return;
    }

    Entry &e = it->second;
    std::int64_t delta = static_cast<std::int64_t>(vpn) -
                         static_cast<std::int64_t>(e.lastVpn);
    if (delta == 0)
        return;   // same page again: the intra-page line stream
    e.lastVpn = vpn;
    if (delta == e.stride) {
        e.confidence = std::min(e.confidence + 1, config_.confidenceMax);
    } else if (--e.confidence <= 0) {
        e.stride = delta;
        e.confidence = 1;
    }
    if (e.confidence < config_.confirmThreshold)
        return;
    for (std::size_t k = 1; k <= config_.degree; ++k) {
        std::int64_t next = static_cast<std::int64_t>(vpn) +
                            e.stride * static_cast<std::int64_t>(k);
        if (next < 0)
            break;   // negative stride ran off the address space
        out.push_back(static_cast<Addr>(next));
    }
}

std::optional<std::int64_t>
StridePrefetcher::strideOf(Addr vpn) const
{
    auto it = table_.find(regionOf(vpn));
    if (it == table_.end() ||
        it->second.confidence < config_.confirmThreshold) {
        return std::nullopt;
    }
    return it->second.stride;
}

} // namespace kona
