#include "prefetch/next_n_prefetcher.h"

#include "common/logging.h"

namespace kona {

NextNPrefetcher::NextNPrefetcher(std::size_t depth) : depth_(depth)
{
    KONA_ASSERT(depth_ > 0, "next-N prefetcher needs depth >= 1");
}

std::string
NextNPrefetcher::name() const
{
    return "next:" + std::to_string(depth_);
}

void
NextNPrefetcher::observe(Addr vpn, bool demandMiss,
                         std::vector<Addr> &out)
{
    (void)demandMiss;
    for (std::size_t k = 1; k <= depth_; ++k)
        out.push_back(vpn + k);
}

} // namespace kona
