#include "prefetch/prefetcher.h"

#include <cstdlib>

#include "common/logging.h"
#include "prefetch/adaptive_prefetcher.h"
#include "prefetch/correlation_prefetcher.h"
#include "prefetch/next_n_prefetcher.h"
#include "prefetch/stride_prefetcher.h"

namespace kona {

namespace {

struct ParsedSpec
{
    std::string policy;
    std::size_t depth = 0;   ///< 0 = policy default
    bool valid = false;
};

ParsedSpec
parseSpec(const std::string &spec)
{
    ParsedSpec parsed;
    std::string::size_type colon = spec.find(':');
    parsed.policy = spec.substr(0, colon);
    parsed.valid = true;
    if (colon == std::string::npos)
        return parsed;
    std::string depth = spec.substr(colon + 1);
    if (depth.empty() ||
        depth.find_first_not_of("0123456789") != std::string::npos) {
        parsed.valid = false;
        return parsed;
    }
    parsed.depth = static_cast<std::size_t>(
        std::strtoull(depth.c_str(), nullptr, 10));
    parsed.valid = parsed.depth > 0;
    return parsed;
}

} // namespace

std::unique_ptr<Prefetcher>
makePrefetcher(const std::string &spec)
{
    ParsedSpec p = parseSpec(spec);
    if (!p.valid)
        fatal("bad prefetch spec \"", spec,
              "\": expected policy[:depth] with depth >= 1");
    if (p.policy.empty() || p.policy == "off" || p.policy == "none") {
        if (p.depth != 0)
            fatal("prefetch policy \"", p.policy,
                  "\" takes no depth argument");
        return nullptr;
    }
    if (p.policy == "next")
        return std::make_unique<NextNPrefetcher>(
            p.depth != 0 ? p.depth : 1);
    if (p.policy == "stride") {
        StrideConfig cfg;
        if (p.depth != 0)
            cfg.degree = p.depth;
        return std::make_unique<StridePrefetcher>(cfg);
    }
    if (p.policy == "corr" || p.policy == "correlation") {
        CorrelationConfig cfg;
        if (p.depth != 0)
            cfg.degree = p.depth;
        return std::make_unique<CorrelationPrefetcher>(cfg);
    }
    if (p.policy == "adaptive") {
        AdaptiveConfig cfg;
        if (p.depth != 0)
            cfg.maxDegree = p.depth;
        return std::make_unique<AdaptivePrefetcher>(cfg);
    }
    fatal("unknown prefetch policy \"", p.policy, "\"; known: off next "
          "stride corr adaptive");
}

bool
knownPrefetchPolicy(const std::string &spec)
{
    ParsedSpec p = parseSpec(spec);
    if (!p.valid)
        return false;
    if (p.policy.empty() || p.policy == "off" || p.policy == "none")
        return p.depth == 0;
    return p.policy == "next" || p.policy == "stride" ||
           p.policy == "corr" || p.policy == "correlation" ||
           p.policy == "adaptive";
}

const std::vector<std::string> &
prefetchPolicyNames()
{
    static const std::vector<std::string> names = {
        "off", "next", "stride", "corr", "adaptive"};
    return names;
}

} // namespace kona
