/**
 * @file
 * NextNPrefetcher: the paper's fixed next-page scheme, generalized to
 * a configurable depth. On every access to page P it proposes
 * P+1..P+depth — simple, stateless, and exactly right for streaming
 * scans; pure waste on anything else (which is what the accuracy
 * telemetry and AdaptivePrefetcher exist to show).
 */

#ifndef KONA_PREFETCH_NEXT_N_PREFETCHER_H
#define KONA_PREFETCH_NEXT_N_PREFETCHER_H

#include "prefetch/prefetcher.h"

namespace kona {

/** Sequential next-N-pages predictor. */
class NextNPrefetcher : public Prefetcher
{
  public:
    explicit NextNPrefetcher(std::size_t depth = 1);

    std::string name() const override;
    void observe(Addr vpn, bool demandMiss,
                 std::vector<Addr> &out) override;

    std::size_t depth() const { return depth_; }

  private:
    std::size_t depth_;
};

} // namespace kona

#endif // KONA_PREFETCH_NEXT_N_PREFETCHER_H
