/**
 * @file
 * CorrelationPrefetcher: a Markov table of page→successor transitions
 * with per-successor confidence counters — the classic answer to
 * pointer-chasing patterns a stride detector cannot see. Graph
 * traversals revisit the same edges, so the second lap over a
 * structure confirms the transitions the first lap recorded and later
 * laps are prefetched.
 *
 * Each table entry keeps up to successorsPerEntry successors with hit
 * counts (min-count replacement). A successor predicts only once its
 * count reaches confirmCount; predictions chain — the best successor
 * of the best successor — up to `degree` pages deep.
 */

#ifndef KONA_PREFETCH_CORRELATION_PREFETCHER_H
#define KONA_PREFETCH_CORRELATION_PREFETCHER_H

#include <cstdint>
#include <deque>
#include <unordered_map>
#include <vector>

#include "prefetch/prefetcher.h"

namespace kona {

/** Capacity and confidence thresholds of the Markov table. */
struct CorrelationConfig
{
    std::size_t degree = 2;              ///< prediction chain depth
    std::size_t successorsPerEntry = 4;  ///< ways per table entry
    std::uint32_t confirmCount = 2;      ///< observations to predict
    std::size_t maxEntries = 1 << 16;    ///< table capacity (FIFO)
};

/** Markov page-successor predictor. */
class CorrelationPrefetcher : public Prefetcher
{
  public:
    explicit CorrelationPrefetcher(CorrelationConfig config = {});

    std::string name() const override;
    void observe(Addr vpn, bool demandMiss,
                 std::vector<Addr> &out) override;

    /** Observed count of the transition @p from -> @p to (0 if none). */
    std::uint32_t transitionCount(Addr from, Addr to) const;

    const CorrelationConfig &config() const { return config_; }
    std::size_t tableSize() const { return table_.size(); }

  private:
    struct Successor
    {
        Addr vpn;
        std::uint32_t count;
    };
    struct Entry
    {
        std::vector<Successor> succ;
    };

    void record(Addr from, Addr to);
    const Successor *bestSuccessor(Addr vpn) const;

    CorrelationConfig config_;
    std::unordered_map<Addr, Entry> table_;
    std::deque<Addr> fifo_;   ///< insertion order, for capacity eviction
    Addr lastVpn_ = invalidAddr;
};

} // namespace kona

#endif // KONA_PREFETCH_CORRELATION_PREFETCHER_H
