/**
 * @file
 * Prefetcher: the prediction half of the FPGA's prefetch engine
 * (§4.4). The paper's hardware fetches page+1 off the critical path;
 * this subsystem generalizes that into pluggable policies fed by the
 * FPGA's page-granular access stream (every serveLine, hit or miss).
 *
 * A predictor is pure policy: it observes accesses and proposes
 * candidate pages. Everything operational — filtering against the
 * translation map and residency, the bandwidth-credit budget, issue,
 * and useful/wasted attribution — lives in CoherentFpga's prefetch
 * engine, which feeds the outcome back through the onPrefetch*()
 * hooks so feedback-directed policies (AdaptivePrefetcher) can
 * throttle themselves.
 *
 * Policies are named by a spec string "policy[:depth]":
 *   off | none        no prefetching (makePrefetcher returns nullptr)
 *   next[:d]          NextNPrefetcher, d pages ahead (default 1)
 *   stride[:d]        StridePrefetcher, degree d (default 4)
 *   corr[:d]          CorrelationPrefetcher, chain depth d (default 2)
 *   adaptive[:d]      AdaptivePrefetcher, max degree d (default 4)
 */

#ifndef KONA_PREFETCH_PREFETCHER_H
#define KONA_PREFETCH_PREFETCHER_H

#include <memory>
#include <string>
#include <vector>

#include "common/types.h"

namespace kona {

/** A prefetch prediction policy over the VFMem page access stream. */
class Prefetcher
{
  public:
    virtual ~Prefetcher() = default;

    /** Human-readable policy name ("stride:4"). */
    virtual std::string name() const = 0;

    /**
     * Observe one page-granular access and append candidate pages to
     * prefetch to @p out, best first. @p demandMiss tells whether the
     * access missed FMem (a remote demand fetch) or hit.
     */
    virtual void observe(Addr vpn, bool demandMiss,
                         std::vector<Addr> &out) = 0;

    /** Feedback: @p n of the proposed candidates were actually issued. */
    virtual void onPrefetchIssued(std::size_t n) { (void)n; }

    /** Feedback: a prefetched page got its first demand touch. */
    virtual void onPrefetchUseful(Addr vpn) { (void)vpn; }

    /** Feedback: a prefetched page was evicted untouched. */
    virtual void onPrefetchWasted(Addr vpn) { (void)vpn; }
};

/**
 * Build the predictor described by @p spec ("policy[:depth]", see the
 * file comment). Returns nullptr for "off"/"none"/"". Unknown policy
 * names or a zero depth are fatal().
 */
std::unique_ptr<Prefetcher> makePrefetcher(const std::string &spec);

/** Whether @p spec parses (including "off"); for CLI validation. */
bool knownPrefetchPolicy(const std::string &spec);

/** The policy names, for usage strings. */
const std::vector<std::string> &prefetchPolicyNames();

} // namespace kona

#endif // KONA_PREFETCH_PREFETCHER_H
