#include "prefetch/prefetch_queue.h"

#include <algorithm>

#include "common/logging.h"

namespace kona {

CreditBucket::CreditBucket(double refillNs, std::size_t burst)
    : refillNs_(refillNs), burst_(burst), credits_(burst)
{
    KONA_ASSERT(refillNs_ > 0.0, "credit refill period must be > 0");
    KONA_ASSERT(burst_ > 0, "credit burst must be > 0");
}

void
CreditBucket::advanceTo(Tick now)
{
    if (now <= lastRefill_)
        return;
    carryNs_ += static_cast<double>(now - lastRefill_);
    lastRefill_ = now;
    auto earned = static_cast<std::size_t>(carryNs_ / refillNs_);
    carryNs_ -= static_cast<double>(earned) * refillNs_;
    credits_ = std::min(burst_, credits_ + earned);
    if (credits_ == burst_)
        carryNs_ = 0.0;   // a full bucket banks nothing extra
}

bool
CreditBucket::tryConsume()
{
    if (credits_ == 0)
        return false;
    --credits_;
    return true;
}

PrefetchQueue::PrefetchQueue(std::size_t capacity) : capacity_(capacity)
{
    KONA_ASSERT(capacity_ > 0, "prefetch queue needs capacity >= 1");
}

bool
PrefetchQueue::push(Addr vpn)
{
    if (q_.size() >= capacity_ || !members_.insert(vpn).second)
        return false;
    q_.push_back(vpn);
    return true;
}

void
PrefetchQueue::pop()
{
    KONA_ASSERT(!q_.empty(), "pop of empty prefetch queue");
    members_.erase(q_.front());
    q_.pop_front();
}

std::size_t
PrefetchQueue::clear()
{
    std::size_t n = q_.size();
    q_.clear();
    members_.clear();
    return n;
}

} // namespace kona
