/**
 * @file
 * RemoteTranslation: the shared-memory hashmap of §4.4 recording, for
 * each VFMem slab, where its bytes live in the rack. The Resource
 * Manager populates it on allocation; the FPGA only consults it when
 * fetching or writing back. Slabs may carry replicas (§4.5): eviction
 * writes to every copy, fetches read the primary and fail over.
 */

#ifndef KONA_FPGA_REMOTE_TRANSLATION_H
#define KONA_FPGA_REMOTE_TRANSLATION_H

#include <functional>
#include <map>
#include <vector>

#include "common/logging.h"
#include "common/types.h"
#include "rack/controller.h"

namespace kona {

/** Where a VFMem address lives remotely. */
struct RemoteLocation
{
    NodeId node = 0;
    Addr addr = 0;              ///< absolute address on the node
    std::uint32_t regionKey = 0;
};

/** One VFMem slab's remote placement: primary plus optional replicas. */
struct MappedSlab
{
    SlabGrant primary;
    std::vector<SlabGrant> replicas;
    /**
     * True for slabs of a coherence-shared region: the placement is
     * owned by the DirectoryService's registry (identical across every
     * compute node mapping the region), so rack-level rebuild and
     * decommission must not rewrite it per-runtime.
     */
    bool shared = false;
};

/** VFMem slab base -> placement map with range lookup. */
class RemoteTranslation
{
  public:
    /** Record VFMem range [vfmemBase, +primary.size) -> placement. */
    void
    addSlab(Addr vfmemBase, const SlabGrant &primary,
            std::vector<SlabGrant> replicas = {}, bool shared = false)
    {
        KONA_ASSERT(primary.size > 0, "empty slab grant");
        for (const SlabGrant &r : replicas) {
            KONA_ASSERT(r.size == primary.size,
                        "replica size mismatch");
        }
        slabs_[vfmemBase] = {primary, std::move(replicas), shared};
    }

    /** Remove the slab starting at @p vfmemBase. */
    void
    removeSlab(Addr vfmemBase)
    {
        KONA_ASSERT(slabs_.erase(vfmemBase) == 1,
                    "unknown slab at VFMem ", vfmemBase);
    }

    /** Promote replica @p index of the slab covering @p vfmemAddr to
     *  primary (fail-over after a memory-node loss). */
    void
    promoteReplica(Addr vfmemAddr, std::size_t index)
    {
        MappedSlab &slab = slabRef(vfmemAddr);
        KONA_ASSERT(index < slab.replicas.size(), "no such replica");
        std::swap(slab.primary, slab.replicas[index]);
    }

    /** Translate one VFMem address to its primary location. */
    RemoteLocation
    translate(Addr vfmemAddr) const
    {
        const auto &[base, slab] = slabAt(vfmemAddr);
        Addr delta = vfmemAddr - base;
        return {slab.primary.where.node,
                slab.primary.where.offset + delta,
                slab.primary.regionKey};
    }

    /** Translate to every copy: primary first, then replicas. */
    std::vector<RemoteLocation>
    translateAll(Addr vfmemAddr) const
    {
        const auto &[base, slab] = slabAt(vfmemAddr);
        Addr delta = vfmemAddr - base;
        std::vector<RemoteLocation> out;
        out.push_back({slab.primary.where.node,
                       slab.primary.where.offset + delta,
                       slab.primary.regionKey});
        for (const SlabGrant &r : slab.replicas) {
            out.push_back({r.where.node, r.where.offset + delta,
                           r.regionKey});
        }
        return out;
    }

    bool
    mapped(Addr vfmemAddr) const
    {
        auto it = slabs_.upper_bound(vfmemAddr);
        if (it == slabs_.begin())
            return false;
        --it;
        return vfmemAddr - it->first < it->second.primary.size;
    }

    std::size_t slabCount() const { return slabs_.size(); }
    const std::map<Addr, MappedSlab> &slabs() const { return slabs_; }

    /**
     * Visit every slab's placement mutably. The rack Controller uses
     * this (via PlacementRefs collected by the runtime) to rewrite
     * placements during rebuild and decommission without this layer
     * depending on the FPGA's address space.
     */
    void
    forEachSlab(const std::function<void(MappedSlab &)> &fn)
    {
        for (auto &[base, slab] : slabs_)
            fn(slab);
    }

  private:
    std::pair<Addr, const MappedSlab &>
    slabAt(Addr vfmemAddr) const
    {
        auto it = slabs_.upper_bound(vfmemAddr);
        if (it == slabs_.begin())
            fatal("VFMem address ", vfmemAddr, " below all slabs");
        --it;
        if (vfmemAddr - it->first >= it->second.primary.size)
            fatal("VFMem address ", vfmemAddr, " not backed by a slab");
        return {it->first, it->second};
    }

    MappedSlab &
    slabRef(Addr vfmemAddr)
    {
        auto it = slabs_.upper_bound(vfmemAddr);
        KONA_ASSERT(it != slabs_.begin(), "unmapped VFMem address");
        --it;
        KONA_ASSERT(vfmemAddr - it->first < it->second.primary.size,
                    "unmapped VFMem address");
        return it->second;
    }

    std::map<Addr, MappedSlab> slabs_;
};

} // namespace kona

#endif // KONA_FPGA_REMOTE_TRANSLATION_H
