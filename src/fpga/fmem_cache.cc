#include "fpga/fmem_cache.h"

#include <unordered_set>

#include "common/logging.h"

namespace kona {

FMemCache::FMemCache(std::size_t sizeBytes, std::size_t associativity,
                     MetricScope scope)
    : scope_(std::move(scope)), assoc_(associativity),
      hits_(scope_.counter("hits")), misses_(scope_.counter("misses"))
{
    KONA_ASSERT(assoc_ > 0, "FMem needs >= 1 way");
    KONA_ASSERT(sizeBytes % (assoc_ * pageSize) == 0,
                "FMem size must be a multiple of assoc * pageSize");
    frames_ = sizeBytes / pageSize;
    numSets_ = frames_ / assoc_;
    KONA_ASSERT(numSets_ > 0, "FMem too small");
    ways_.resize(frames_);
    used_.assign(numSets_, 0);
    // Every slot starts invalid, parking one free frame. Descending
    // order preserves the historical allocation order (the list-based
    // store handed out the highest way first), so frame placement is
    // bit-identical to the old implementation.
    for (std::size_t set = 0; set < numSets_; ++set) {
        for (std::size_t way = 0; way < assoc_; ++way)
            setBase(set)[way].frame = set * assoc_ + (assoc_ - 1 - way);
    }
}

std::size_t
FMemCache::findWay(Addr vpn) const
{
    std::size_t si = setOf(vpn);
    const Way *set = setBase(si);
    std::size_t used = used_[si];
    for (std::size_t i = 0; i < used; ++i) {
        if (set[i].vpn == vpn)
            return i;
    }
    return npos;
}

std::optional<std::size_t>
FMemCache::lookup(Addr vpn)
{
    std::size_t si = setOf(vpn);
    Way *set = setBase(si);
    std::size_t used = used_[si];
    for (std::size_t i = 0; i < used; ++i) {
        if (set[i].vpn == vpn) {
            Way hit = set[i];
            for (std::size_t j = i; j > 0; --j)
                set[j] = set[j - 1];
            set[0] = hit;
            hits_.add();
            return hit.frame;
        }
    }
    misses_.add();
    return std::nullopt;
}

bool
FMemCache::contains(Addr vpn) const
{
    return findWay(vpn) != npos;
}

std::optional<std::size_t>
FMemCache::frameOf(Addr vpn) const
{
    std::size_t i = findWay(vpn);
    if (i == npos)
        return std::nullopt;
    return setBase(setOf(vpn))[i].frame;
}

std::size_t
FMemCache::insert(Addr vpn, bool prefetched, Tick tick)
{
    std::size_t si = setOf(vpn);
    Way *set = setBase(si);
    std::size_t used = used_[si];
    KONA_ASSERT(findWay(vpn) == npos, "double insert of VFMem page ",
                vpn);
    KONA_ASSERT(used < assoc_,
                "insert into a full set; evict the victim first");
    // The first invalid slot parks the frame this page will use; it is
    // about to be overwritten by the shift, so take it now.
    std::size_t frame = set[used].frame;
    for (std::size_t j = used; j > 0; --j)
        set[j] = set[j - 1];
    set[0] = {vpn, frame, prefetched, tick, false};
    used_[si] = static_cast<std::uint32_t>(used + 1);
    ++resident_;
    return frame;
}

std::optional<Tick>
FMemCache::clearPrefetched(Addr vpn)
{
    std::size_t i = findWay(vpn);
    if (i == npos)
        return std::nullopt;
    Way &way = setBase(setOf(vpn))[i];
    if (!way.prefetched)
        return std::nullopt;
    way.prefetched = false;
    return way.prefetchTick;
}

bool
FMemCache::isPrefetched(Addr vpn) const
{
    std::size_t i = findWay(vpn);
    return i != npos && setBase(setOf(vpn))[i].prefetched;
}

void
FMemCache::setEvictionInFlight(Addr vpn, bool inFlight)
{
    std::size_t i = findWay(vpn);
    if (i != npos)
        setBase(setOf(vpn))[i].evicting = inFlight;
}

bool
FMemCache::evictionInFlight(Addr vpn) const
{
    std::size_t i = findWay(vpn);
    return i != npos && setBase(setOf(vpn))[i].evicting;
}

std::optional<FMemCache::Victim>
FMemCache::victimFor(Addr vpn) const
{
    std::size_t si = setOf(vpn);
    std::size_t used = used_[si];
    if (used < assoc_)
        return std::nullopt;
    // Walk LRU -> MRU for the oldest way not already being shipped;
    // only a fully fenced set hands back an in-flight victim (the
    // eviction engine then stalls on that shipment's completion).
    const Way *set = setBase(si);
    for (std::size_t i = used; i-- > 0;) {
        if (!set[i].evicting)
            return Victim{set[i].vpn, set[i].frame};
    }
    const Way &lru = set[used - 1];
    return Victim{lru.vpn, lru.frame};
}

void
FMemCache::remove(Addr vpn)
{
    std::size_t i = findWay(vpn);
    if (i == npos)
        panic("remove of non-resident VFMem page ", vpn);
    std::size_t si = setOf(vpn);
    Way *set = setBase(si);
    std::size_t used = used_[si];
    std::size_t frame = set[i].frame;
    for (std::size_t j = i; j + 1 < used; ++j)
        set[j] = set[j + 1];
    // The newly invalid slot parks the freed frame.
    set[used - 1].frame = frame;
    used_[si] = static_cast<std::uint32_t>(used - 1);
    --resident_;
}

std::size_t
FMemCache::setVictims(std::size_t si, std::size_t freeWays,
                      std::vector<Victim> *out) const
{
    std::size_t used = used_[si];
    std::size_t free = assoc_ - used;
    if (free >= freeWays)
        return 0;
    std::size_t need = freeWays - free;
    // Walk the set from LRU (back of the prefix) forward, skipping
    // ways whose eviction is already in flight (they free up on ack).
    const Way *set = setBase(si);
    std::size_t count = 0;
    for (std::size_t i = used; count < need && i-- > 0;) {
        if (set[i].evicting)
            continue;
        if (out != nullptr)
            out->push_back({set[i].vpn, set[i].frame});
        ++count;
    }
    return count;
}

std::vector<FMemCache::Victim>
FMemCache::overOccupiedVictims(std::size_t freeWays) const
{
    std::vector<Victim> victims;
    // Count first: the common case (every set has room) must return
    // without allocating, and the rest reserve exactly once.
    std::size_t total = 0;
    for (std::size_t si = 0; si < numSets_; ++si)
        total += setVictims(si, freeWays, nullptr);
    if (total == 0)
        return victims;
    victims.reserve(total);
    for (std::size_t si = 0; si < numSets_; ++si)
        setVictims(si, freeWays, &victims);
    return victims;
}

std::vector<Addr>
FMemCache::residentPages() const
{
    std::vector<Addr> pages;
    pages.reserve(resident_);
    for (std::size_t si = 0; si < numSets_; ++si) {
        const Way *set = setBase(si);
        std::size_t used = used_[si];
        for (std::size_t i = 0; i < used; ++i)
            pages.push_back(set[i].vpn);
    }
    return pages;
}

bool
FMemCache::checkInvariants() const
{
    std::unordered_set<std::size_t> seenFrames;
    std::size_t resident = 0;
    for (std::size_t si = 0; si < numSets_; ++si) {
        std::size_t used = used_[si];
        if (used > assoc_)
            return false;
        const Way *set = setBase(si);
        std::unordered_set<Addr> tags;
        for (std::size_t i = 0; i < assoc_; ++i) {
            // Valid or parked, every slot's frame belongs to this set
            // and appears exactly once across the whole store.
            if (!seenFrames.insert(set[i].frame).second)
                return false;
            if (set[i].frame / assoc_ != si)
                return false;
            if (i < used) {
                if (setOf(set[i].vpn) != si)
                    return false;
                if (!tags.insert(set[i].vpn).second)
                    return false;
                ++resident;
            }
        }
    }
    return resident == resident_;
}

} // namespace kona
