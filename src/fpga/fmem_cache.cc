#include "fpga/fmem_cache.h"

#include <unordered_set>

#include "common/logging.h"

namespace kona {

FMemCache::FMemCache(std::size_t sizeBytes, std::size_t associativity,
                     MetricScope scope, const std::string &victimSpec)
    : scope_(std::move(scope)), assoc_(associativity),
      policy_(makeVictimPolicy(victimSpec)),
      hits_(scope_.counter("hits")),
      misses_(scope_.counter("misses")),
      victimPicks_(scope_.counter("policy.victim_picks")),
      fencedFallbacks_(scope_.counter("policy.fenced_fallbacks"))
{
    KONA_ASSERT(assoc_ > 0, "FMem needs >= 1 way");
    KONA_ASSERT(assoc_ <= maxAssociativity,
                "FMem associativity above the candidate-buffer bound");
    KONA_ASSERT(sizeBytes % (assoc_ * pageSize) == 0,
                "FMem size must be a multiple of assoc * pageSize");
    frames_ = sizeBytes / pageSize;
    numSets_ = frames_ / assoc_;
    KONA_ASSERT(numSets_ > 0, "FMem too small");
    ways_.resize(frames_);
    used_.assign(numSets_, 0);
    // Every slot starts invalid, parking one free frame. Descending
    // order preserves the historical allocation order (the list-based
    // store handed out the highest way first), so frame placement is
    // bit-identical to the old implementation.
    for (std::size_t set = 0; set < numSets_; ++set) {
        for (std::size_t way = 0; way < assoc_; ++way)
            setBase(set)[way].frame = set * assoc_ + (assoc_ - 1 - way);
    }
}

std::size_t
FMemCache::findWay(Addr vpn) const
{
    std::size_t si = setOf(vpn);
    const Way *set = setBase(si);
    std::size_t used = used_[si];
    for (std::size_t i = 0; i < used; ++i) {
        if (set[i].vpn == vpn)
            return i;
    }
    return npos;
}

std::optional<std::size_t>
FMemCache::lookup(Addr vpn)
{
    std::size_t si = setOf(vpn);
    Way *set = setBase(si);
    std::size_t used = used_[si];
    for (std::size_t i = 0; i < used; ++i) {
        if (set[i].vpn == vpn) {
            Way hit = set[i];
            if (hit.touches != ~static_cast<std::uint32_t>(0))
                ++hit.touches;
            for (std::size_t j = i; j > 0; --j)
                set[j] = set[j - 1];
            set[0] = hit;
            hits_.add();
            return hit.frame;
        }
    }
    misses_.add();
    return std::nullopt;
}

bool
FMemCache::contains(Addr vpn) const
{
    return findWay(vpn) != npos;
}

std::optional<std::size_t>
FMemCache::frameOf(Addr vpn) const
{
    std::size_t i = findWay(vpn);
    if (i == npos)
        return std::nullopt;
    return setBase(setOf(vpn))[i].frame;
}

std::size_t
FMemCache::insert(Addr vpn, FillOrigin origin, Tick tick)
{
    std::size_t si = setOf(vpn);
    Way *set = setBase(si);
    std::size_t used = used_[si];
    KONA_ASSERT(findWay(vpn) == npos, "double insert of VFMem page ",
                vpn);
    KONA_ASSERT(used < assoc_,
                "insert into a full set; evict the victim first");
    // The first invalid slot parks the frame this page will use; it is
    // about to be overwritten by the shift, so take it now.
    std::size_t frame = set[used].frame;
    for (std::size_t j = used; j > 0; --j)
        set[j] = set[j - 1];
    // A demand fill counts as its own first touch; speculative fills
    // start untouched so LFU/scan policies see them as unproven.
    std::uint32_t touches = origin == FillOrigin::Demand ? 1 : 0;
    set[0] = {vpn, frame, origin, tick, touches, false};
    used_[si] = static_cast<std::uint32_t>(used + 1);
    ++resident_;
    return frame;
}

std::optional<FMemCache::SpecTag>
FMemCache::clearSpeculative(Addr vpn)
{
    std::size_t i = findWay(vpn);
    if (i == npos)
        return std::nullopt;
    Way &way = setBase(setOf(vpn))[i];
    if (way.origin == FillOrigin::Demand)
        return std::nullopt;
    SpecTag tag{way.fillTick, way.origin};
    way.origin = FillOrigin::Demand;
    return tag;
}

std::optional<FillOrigin>
FMemCache::speculativeOrigin(Addr vpn) const
{
    std::size_t i = findWay(vpn);
    if (i == npos)
        return std::nullopt;
    const Way &way = setBase(setOf(vpn))[i];
    if (way.origin == FillOrigin::Demand)
        return std::nullopt;
    return way.origin;
}

bool
FMemCache::isPrefetched(Addr vpn) const
{
    std::size_t i = findWay(vpn);
    return i != npos &&
           setBase(setOf(vpn))[i].origin == FillOrigin::Prefetch;
}

void
FMemCache::setEvictionInFlight(Addr vpn, bool inFlight)
{
    std::size_t i = findWay(vpn);
    if (i != npos)
        setBase(setOf(vpn))[i].evicting = inFlight;
}

bool
FMemCache::evictionInFlight(Addr vpn) const
{
    std::size_t i = findWay(vpn);
    return i != npos && setBase(setOf(vpn))[i].evicting;
}

void
FMemCache::setDirtyProbe(std::function<bool(Addr)> probe)
{
    dirtyProbe_ = std::move(probe);
}

void
FMemCache::setGovernedProbe(std::function<bool(Addr)> probe)
{
    governedProbe_ = std::move(probe);
}

std::size_t
FMemCache::buildCandidates(std::size_t si, VictimView *buf) const
{
    const Way *set = setBase(si);
    std::size_t used = used_[si];
    bool wantDirty = dirtyProbe_ && policy_->wantsDirty();
    bool governed[maxAssociativity];
    std::size_t n = 0;
    bool anyUngoverned = false;
    for (std::size_t i = 0; i < used; ++i) {
        if (set[i].evicting)
            continue;
        governed[n] = governedProbe_ && governedProbe_(set[i].vpn);
        anyUngoverned = anyUngoverned || !governed[n];
        buf[n] = {set[i].vpn,
                  set[i].frame,
                  static_cast<std::uint32_t>(i),
                  set[i].touches,
                  wantDirty && dirtyProbe_(set[i].vpn),
                  set[i].origin != FillOrigin::Demand};
        ++n;
    }
    // Governed pages are last-resort victims: compact them away when
    // any un-governed candidate exists (an all-governed set still
    // evicts, so capacity pressure can never deadlock on coherence).
    if (anyUngoverned) {
        std::size_t kept = 0;
        for (std::size_t i = 0; i < n; ++i) {
            if (governed[i])
                continue;
            buf[kept++] = buf[i];
        }
        n = kept;
    }
    return n;
}

std::optional<FMemCache::Victim>
FMemCache::victimFor(Addr vpn) const
{
    std::size_t si = setOf(vpn);
    std::size_t used = used_[si];
    if (used < assoc_)
        return std::nullopt;
    VictimView candidates[maxAssociativity];
    std::size_t n = buildCandidates(si, candidates);
    if (n == 0) {
        // Whole set fenced: hand back the plain LRU way; the eviction
        // engine then stalls on that shipment's completion.
        fencedFallbacks_.add();
        const Way &lru = setBase(si)[used - 1];
        return Victim{lru.vpn, lru.frame};
    }
    std::size_t picked = policy_->pick(candidates, n);
    KONA_ASSERT(picked < n, "victim policy picked out of range");
    victimPicks_.add();
    return Victim{candidates[picked].vpn, candidates[picked].frame};
}

void
FMemCache::remove(Addr vpn)
{
    std::size_t i = findWay(vpn);
    if (i == npos)
        panic("remove of non-resident VFMem page ", vpn);
    std::size_t si = setOf(vpn);
    Way *set = setBase(si);
    std::size_t used = used_[si];
    std::size_t frame = set[i].frame;
    for (std::size_t j = i; j + 1 < used; ++j)
        set[j] = set[j + 1];
    // The newly invalid slot parks the freed frame.
    set[used - 1].frame = frame;
    used_[si] = static_cast<std::uint32_t>(used - 1);
    --resident_;
}

std::size_t
FMemCache::setVictims(std::size_t si, std::size_t freeWays,
                      Victim *out, std::size_t cap) const
{
    std::size_t used = used_[si];
    std::size_t free = assoc_ - used;
    if (free >= freeWays)
        return 0;
    std::size_t need = freeWays - free;
    VictimView candidates[maxAssociativity];
    std::size_t n = buildCandidates(si, candidates);
    std::size_t owed = need < n ? need : n;
    if (out == nullptr)
        return owed;
    // Select iteratively through the policy, erasing each pick (the
    // stable shift keeps the MRU-first order intact), so "lru" emits
    // victims coldest first exactly like the historical walk.
    std::size_t selected = owed < cap ? owed : cap;
    for (std::size_t k = 0; k < selected; ++k) {
        std::size_t picked = policy_->pick(candidates, n);
        KONA_ASSERT(picked < n, "victim policy picked out of range");
        victimPicks_.add();
        out[k] = {candidates[picked].vpn, candidates[picked].frame};
        for (std::size_t j = picked; j + 1 < n; ++j)
            candidates[j] = candidates[j + 1];
        --n;
    }
    return owed;
}

std::size_t
FMemCache::overOccupiedVictims(std::size_t freeWays, Victim *out,
                               std::size_t cap) const
{
    // Count first: the common case (every set has room) must return
    // without selecting anything.
    std::size_t total = 0;
    for (std::size_t si = 0; si < numSets_; ++si)
        total += setVictims(si, freeWays, nullptr, 0);
    if (total == 0 || out == nullptr)
        return total;
    std::size_t written = 0;
    for (std::size_t si = 0; si < numSets_ && written < cap; ++si)
        written += setVictims(si, freeWays, out + written,
                              cap - written);
    return total;
}

std::vector<Addr>
FMemCache::residentPages() const
{
    std::vector<Addr> pages;
    pages.reserve(resident_);
    for (std::size_t si = 0; si < numSets_; ++si) {
        const Way *set = setBase(si);
        std::size_t used = used_[si];
        for (std::size_t i = 0; i < used; ++i)
            pages.push_back(set[i].vpn);
    }
    return pages;
}

bool
FMemCache::checkInvariants() const
{
    std::unordered_set<std::size_t> seenFrames;
    std::size_t resident = 0;
    for (std::size_t si = 0; si < numSets_; ++si) {
        std::size_t used = used_[si];
        if (used > assoc_)
            return false;
        const Way *set = setBase(si);
        std::unordered_set<Addr> tags;
        for (std::size_t i = 0; i < assoc_; ++i) {
            // Valid or parked, every slot's frame belongs to this set
            // and appears exactly once across the whole store.
            if (!seenFrames.insert(set[i].frame).second)
                return false;
            if (set[i].frame / assoc_ != si)
                return false;
            if (i < used) {
                if (setOf(set[i].vpn) != si)
                    return false;
                if (!tags.insert(set[i].vpn).second)
                    return false;
                ++resident;
            }
        }
    }
    return resident == resident_;
}

} // namespace kona
