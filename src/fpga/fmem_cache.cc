#include "fpga/fmem_cache.h"

#include <unordered_set>

#include "common/logging.h"

namespace kona {

FMemCache::FMemCache(std::size_t sizeBytes, std::size_t associativity,
                     MetricScope scope)
    : scope_(std::move(scope)), assoc_(associativity),
      hits_(scope_.counter("hits")), misses_(scope_.counter("misses"))
{
    KONA_ASSERT(assoc_ > 0, "FMem needs >= 1 way");
    KONA_ASSERT(sizeBytes % (assoc_ * pageSize) == 0,
                "FMem size must be a multiple of assoc * pageSize");
    frames_ = sizeBytes / pageSize;
    numSets_ = frames_ / assoc_;
    KONA_ASSERT(numSets_ > 0, "FMem too small");
    sets_.resize(numSets_);
    freeFrames_.resize(numSets_);
    for (std::size_t set = 0; set < numSets_; ++set) {
        for (std::size_t way = 0; way < assoc_; ++way)
            freeFrames_[set].push_back(set * assoc_ + way);
    }
}

std::optional<std::size_t>
FMemCache::lookup(Addr vpn)
{
    Set &set = sets_[setOf(vpn)];
    for (auto it = set.begin(); it != set.end(); ++it) {
        if (it->vpn == vpn) {
            set.splice(set.begin(), set, it);
            hits_.add();
            return it->frame;
        }
    }
    misses_.add();
    return std::nullopt;
}

bool
FMemCache::contains(Addr vpn) const
{
    const Set &set = sets_[setOf(vpn)];
    for (const Way &way : set) {
        if (way.vpn == vpn)
            return true;
    }
    return false;
}

std::optional<std::size_t>
FMemCache::frameOf(Addr vpn) const
{
    const Set &set = sets_[setOf(vpn)];
    for (const Way &way : set) {
        if (way.vpn == vpn)
            return way.frame;
    }
    return std::nullopt;
}

std::size_t
FMemCache::insert(Addr vpn, bool prefetched, Tick tick)
{
    std::size_t si = setOf(vpn);
    Set &set = sets_[si];
    KONA_ASSERT(!contains(vpn), "double insert of VFMem page ", vpn);
    KONA_ASSERT(!freeFrames_[si].empty(),
                "insert into a full set; evict the victim first");
    std::size_t frame = freeFrames_[si].back();
    freeFrames_[si].pop_back();
    set.push_front({vpn, frame, prefetched, tick});
    ++resident_;
    return frame;
}

std::optional<Tick>
FMemCache::clearPrefetched(Addr vpn)
{
    Set &set = sets_[setOf(vpn)];
    for (Way &way : set) {
        if (way.vpn == vpn) {
            if (!way.prefetched)
                return std::nullopt;
            way.prefetched = false;
            return way.prefetchTick;
        }
    }
    return std::nullopt;
}

bool
FMemCache::isPrefetched(Addr vpn) const
{
    const Set &set = sets_[setOf(vpn)];
    for (const Way &way : set) {
        if (way.vpn == vpn)
            return way.prefetched;
    }
    return false;
}

void
FMemCache::setEvictionInFlight(Addr vpn, bool inFlight)
{
    Set &set = sets_[setOf(vpn)];
    for (Way &way : set) {
        if (way.vpn == vpn) {
            way.evicting = inFlight;
            return;
        }
    }
}

bool
FMemCache::evictionInFlight(Addr vpn) const
{
    const Set &set = sets_[setOf(vpn)];
    for (const Way &way : set) {
        if (way.vpn == vpn)
            return way.evicting;
    }
    return false;
}

std::optional<FMemCache::Victim>
FMemCache::victimFor(Addr vpn) const
{
    std::size_t si = setOf(vpn);
    if (!freeFrames_[si].empty())
        return std::nullopt;
    // Walk LRU -> MRU for the oldest way not already being shipped;
    // only a fully fenced set hands back an in-flight victim (the
    // eviction engine then stalls on that shipment's completion).
    for (auto it = sets_[si].rbegin(); it != sets_[si].rend(); ++it) {
        if (!it->evicting)
            return Victim{it->vpn, it->frame};
    }
    const Way &lru = sets_[si].back();
    return Victim{lru.vpn, lru.frame};
}

void
FMemCache::remove(Addr vpn)
{
    std::size_t si = setOf(vpn);
    Set &set = sets_[si];
    for (auto it = set.begin(); it != set.end(); ++it) {
        if (it->vpn == vpn) {
            freeFrames_[si].push_back(it->frame);
            set.erase(it);
            --resident_;
            return;
        }
    }
    panic("remove of non-resident VFMem page ", vpn);
}

std::vector<FMemCache::Victim>
FMemCache::overOccupiedVictims(std::size_t freeWays) const
{
    std::vector<Victim> victims;
    for (std::size_t si = 0; si < numSets_; ++si) {
        std::size_t free = freeFrames_[si].size();
        if (free >= freeWays)
            continue;
        std::size_t need = freeWays - free;
        // Walk the set from LRU (back) forward, skipping ways whose
        // eviction is already in flight (they will free up on ack).
        for (auto it = sets_[si].rbegin();
             need > 0 && it != sets_[si].rend(); ++it) {
            if (it->evicting)
                continue;
            victims.push_back({it->vpn, it->frame});
            --need;
        }
    }
    return victims;
}

std::vector<Addr>
FMemCache::residentPages() const
{
    std::vector<Addr> pages;
    pages.reserve(resident_);
    for (const Set &set : sets_) {
        for (const Way &way : set)
            pages.push_back(way.vpn);
    }
    return pages;
}

bool
FMemCache::checkInvariants() const
{
    std::unordered_set<std::size_t> seenFrames;
    std::size_t resident = 0;
    for (std::size_t si = 0; si < numSets_; ++si) {
        const Set &set = sets_[si];
        if (set.size() + freeFrames_[si].size() != assoc_)
            return false;
        std::unordered_set<Addr> tags;
        for (const Way &way : set) {
            if (setOf(way.vpn) != si)
                return false;
            if (!tags.insert(way.vpn).second)
                return false;
            if (!seenFrames.insert(way.frame).second)
                return false;
            if (way.frame / assoc_ != si)
                return false;
            ++resident;
        }
        for (std::size_t frame : freeFrames_[si]) {
            if (!seenFrames.insert(frame).second)
                return false;
        }
    }
    return resident == resident_;
}

} // namespace kona
