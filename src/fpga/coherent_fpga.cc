#include "fpga/coherent_fpga.h"

#include <array>

#include "common/logging.h"

namespace kona {

CoherentFpga::CoherentFpga(Fabric &fabric, NodeId computeNode,
                           const FpgaConfig &config, MetricScope scope)
    : fabric_(fabric), computeNode_(computeNode), config_(config),
      scope_(std::move(scope)),
      fmem_(config.fmemSize, config.fmemAssociativity,
            scope_.sub("fmem")),
      fmemStore_(config.fmemSize), poller_(fabric.latency()),
      remoteFetches_(scope_.counter("remote_fetches")),
      writebacksObserved_(scope_.counter("writebacks_observed")),
      prefetches_(scope_.counter("prefetches")),
      fetchFailures_(scope_.counter("fetch_failures")),
      promotions_(scope_.counter("replica_promotions")),
      fetchNs_(scope_.histogram("fetch_ns"))
{
    KONA_ASSERT(config.vfmemSize % pageSize == 0,
                "VFMem window must be page aligned");
    KONA_ASSERT(config.vfmemBase % pageSize == 0,
                "VFMem base must be page aligned");
    KONA_ASSERT(config.fmemSize <= config.vfmemSize,
                "FMem larger than the VFMem window is pointless");
}

QueuePair &
CoherentFpga::qpTo(NodeId node)
{
    auto it = qps_.find(node);
    if (it == qps_.end()) {
        it = qps_.emplace(node,
                          std::make_unique<QueuePair>(
                              fabric_, computeNode_, node, cq_,
                              scope_.sub("qp" + std::to_string(node))))
                 .first;
    }
    return *it->second;
}

ServeStatus
CoherentFpga::serveLine(Addr lineAddr, AccessType type, SimClock &clock)
{
    (void)type;
    KONA_ASSERT(inVFMem(lineAddr), "serveLine outside VFMem: ",
                lineAddr);
    Span span(trace_, clock, "serve_line", "fpga");
    span.arg("addr", lineAddr);
    const LatencyConfig &lat = fabric_.latency();
    clock.advance(static_cast<Tick>(lat.vfmemDirectoryNs));

    Addr vpn = pageNumber(lineAddr);
    if (fmem_.lookup(vpn).has_value()) {
        clock.advance(static_cast<Tick>(lat.fmemNs));
        // Streaming accesses keep the prefetcher one page ahead even
        // while hitting in FMem (a fault-based runtime cannot: the
        // prefetcher never crosses a page fault, §4.4).
        maybePrefetch(vpn);
        span.arg("outcome", "fmem_hit");
        return ServeStatus::FMemHit;
    }

    // Need to fetch the page; make room in the set first.
    auto victim = fmem_.victimFor(vpn);
    if (victim.has_value()) {
        KONA_ASSERT(static_cast<bool>(evictionCallback_),
                    "FMem set full and no eviction callback installed");
        evictionCallback_(*victim, clock);
        if (fmem_.contains(victim->vfmemPage)) {
            // Eviction failed (all replicas unreachable); the fetch
            // cannot proceed without a frame.
            fetchFailures_.add();
            span.arg("outcome", "unavailable");
            return ServeStatus::RemoteUnavailable;
        }
    }

    Tick fetchStart = clock.now();
    if (!fetchPage(vpn, clock)) {
        fetchFailures_.add();
        span.arg("outcome", "unavailable");
        return ServeStatus::RemoteUnavailable;
    }
    fetchNs_.record(static_cast<double>(clock.now() - fetchStart));
    clock.advance(static_cast<Tick>(lat.fmemNs));
    maybePrefetch(vpn);
    span.arg("outcome", "remote_fetch");
    return ServeStatus::RemoteFetch;
}

void
CoherentFpga::reportHealth(NodeId node, bool ok)
{
    if (healthReporter_)
        healthReporter_(node, ok);
}

bool
CoherentFpga::fetchPage(Addr vpn, SimClock &clock)
{
    Addr vfmemAddr = vpn * pageSize;
    std::array<std::uint8_t, pageSize> staging;

    // Prefetches run on the background clock; put their spans on the
    // background lane so the app-critical-path lane stays truthful.
    std::uint32_t lane = &clock == &backgroundClock_
                             ? traceBackgroundThread
                             : traceAppThread;
    Span span(trace_, clock, "fetch_page", "fpga", lane);
    span.arg("vpn", vpn);

    auto locations = translation_.translateAll(vfmemAddr);
    bool fetched = false;
    for (std::size_t i = 0; i < locations.size(); ++i) {
        const RemoteLocation &loc = locations[i];
        if (fabric_.nodeDown(loc.node)) {
            // Skipping a down node is itself evidence for the failure
            // detector; without it a dead primary would never attract
            // op reports at all.
            reportHealth(loc.node, false);
            continue;
        }
        WorkRequest wr;
        wr.wrId = nextWrId_++;
        wr.opcode = RdmaOpcode::Read;
        wr.localBuf = staging.data();
        wr.remoteKey = loc.regionKey;
        wr.remoteAddr = loc.addr;
        wr.length = pageSize;
        Span rdma(trace_, clock, "rdma_read", "net", lane);
        rdma.arg("node", loc.node);
        rdma.arg("bytes", wr.length);
        if (!qpTo(loc.node).post(wr, clock)) {
            poller_.waitOne(cq_, clock);   // consume the error CQE
            reportHealth(loc.node, false);
            continue;
        }
        poller_.waitOne(cq_, clock);
        reportHealth(loc.node, true);
        if (i > 0) {
            // Promote the replica we read from only when every earlier
            // copy sits on a node that is actually down (§4.5). A
            // transient drop should not reshuffle the placement — the
            // caller's retry gives the primary another chance instead.
            bool earlierAllDown = true;
            for (std::size_t j = 0; j < i; ++j)
                earlierAllDown &= fabric_.nodeDown(locations[j].node);
            if (earlierAllDown) {
                translation_.promoteReplica(vfmemAddr, i - 1);
                promotions_.add();
                warn("failed over VFMem page ", vpn, " to node ",
                     loc.node);
            }
        }
        fetched = true;
        break;
    }
    if (!fetched)
        return false;

    std::size_t frame = fmem_.insert(vpn);
    fmemStore_.write(static_cast<Addr>(frame) * pageSize, staging.data(),
                     pageSize);
    remoteFetches_.add();
    return true;
}

void
CoherentFpga::maybePrefetch(Addr vpn)
{
    if (!config_.prefetchNextPage)
        return;
    Addr next = vpn + 1;
    Addr nextAddr = next * pageSize;
    if (!inVFMem(nextAddr) || !translation_.mapped(nextAddr))
        return;
    if (fmem_.contains(next) || fmem_.victimFor(next).has_value())
        return;   // resident already, or the set is full: skip
    if (fetchPage(next, backgroundClock_))
        prefetches_.add();
}

void
CoherentFpga::onLineRequest(Addr lineAddr, AccessType type)
{
    // Requests are served through serveLine() on the runtime's explicit
    // call; the listener hook exists for trace-driven counting uses.
    (void)lineAddr;
    (void)type;
}

void
CoherentFpga::onWriteback(Addr lineAddr)
{
    if (!inVFMem(lineAddr))
        return;
    writebacksObserved_.add();
    dirtyLines_.markLine(lineAddr);
}

void
CoherentFpga::readBytes(Addr vfmemAddr, void *buf, std::size_t size)
{
    auto *out = static_cast<std::uint8_t *>(buf);
    while (size > 0) {
        Addr vpn = pageNumber(vfmemAddr);
        std::size_t offset = vfmemAddr % pageSize;
        std::size_t chunk = std::min(size, pageSize - offset);
        auto frame = fmem_.frameOf(vpn);
        KONA_ASSERT(frame.has_value(),
                    "functional read of non-resident VFMem page ", vpn);
        fmemStore_.read(static_cast<Addr>(*frame) * pageSize + offset,
                        out, chunk);
        vfmemAddr += chunk;
        out += chunk;
        size -= chunk;
    }
}

void
CoherentFpga::writeBytes(Addr vfmemAddr, const void *buf,
                         std::size_t size)
{
    const auto *in = static_cast<const std::uint8_t *>(buf);
    while (size > 0) {
        Addr vpn = pageNumber(vfmemAddr);
        std::size_t offset = vfmemAddr % pageSize;
        std::size_t chunk = std::min(size, pageSize - offset);
        auto frame = fmem_.frameOf(vpn);
        KONA_ASSERT(frame.has_value(),
                    "functional write of non-resident VFMem page ", vpn);
        fmemStore_.write(static_cast<Addr>(*frame) * pageSize + offset,
                         in, chunk);
        vfmemAddr += chunk;
        in += chunk;
        size -= chunk;
    }
}

void
CoherentFpga::dropPage(Addr vpn)
{
    fmem_.remove(vpn);
}

std::uint8_t *
CoherentFpga::framePointer(Addr vpn)
{
    auto frame = fmem_.frameOf(vpn);
    KONA_ASSERT(frame.has_value(), "framePointer of non-resident page ",
                vpn);
    return fmemStore_.pagePointer(static_cast<Addr>(*frame) * pageSize);
}

} // namespace kona
