#include "fpga/coherent_fpga.h"

#include <algorithm>
#include <array>

#include "common/logging.h"
#include "policy/tiering_engine.h"

namespace kona {

CoherentFpga::CoherentFpga(Fabric &fabric, NodeId computeNode,
                           const FpgaConfig &config, MetricScope scope)
    : fabric_(fabric), computeNode_(computeNode), config_(config),
      scope_(std::move(scope)),
      fmem_(config.fmemSize, config.fmemAssociativity,
            scope_.sub("fmem"), config.victimPolicy),
      fmemStore_(config.fmemSize), poller_(fabric.latency()),
      prefetcher_(makePrefetcher(config.prefetchPolicy)),
      prefetchQueue_(config.prefetchQueueCapacity),
      prefetchCredits_(config.prefetchCreditRefillNs,
                       config.prefetchCreditBurst),
      remoteFetches_(scope_.counter("remote_fetches")),
      demandFetches_(scope_.counter("demand_fetches")),
      writebacksObserved_(scope_.counter("writebacks_observed")),
      fetchFailures_(scope_.counter("fetch_failures")),
      promotions_(scope_.counter("replica_promotions")),
      hedgedReads_(scope_.counter("hedged_reads")),
      prefetchReplicaFallback_(
          scope_.counter("prefetch.replica_fallback")),
      staleSkips_(scope_.counter("stale_home_skips")),
      prefetchPredicted_(scope_.counter("prefetch.predicted")),
      prefetchIssued_(scope_.counter("prefetch.issued")),
      prefetchUseful_(scope_.counter("prefetch.useful")),
      prefetchWasted_(scope_.counter("prefetch.wasted")),
      prefetchDroppedNoCredit_(
          scope_.counter("prefetch.dropped_no_credit")),
      prefetchDroppedNodeDown_(
          scope_.counter("prefetch.dropped_node_down")),
      prefetchDroppedSetFull_(
          scope_.counter("prefetch.dropped_set_full")),
      prefetchDroppedQueueFull_(
          scope_.counter("prefetch.dropped_queue_full")),
      prefetchDroppedGoverned_(
          scope_.counter("prefetch.dropped_governed")),
      fetchNs_(scope_.histogram("fetch_ns")),
      prefetchLeadNs_(scope_.histogram("prefetch.lead_ns"))
{
    KONA_ASSERT(config.vfmemSize % pageSize == 0,
                "VFMem window must be page aligned");
    KONA_ASSERT(config.vfmemBase % pageSize == 0,
                "VFMem base must be page aligned");
    KONA_ASSERT(config.fmemSize <= config.vfmemSize,
                "FMem larger than the VFMem window is pointless");
    // Dirty-aware victim policies ask the tag store which candidates
    // carry unwritten lines; the probe is only consulted when the
    // configured policy declares wantsDirty().
    fmem_.setDirtyProbe(
        [this](Addr vpn) { return dirtyLines_.pageMask(vpn) != 0; });
}

QueuePair &
CoherentFpga::qpTo(NodeId node)
{
    auto it = qps_.find(node);
    if (it == qps_.end()) {
        it = qps_.emplace(node,
                          std::make_unique<QueuePair>(
                              fabric_, computeNode_, node, cq_,
                              scope_.sub("qp" + std::to_string(node))))
                 .first;
    }
    return *it->second;
}

ServeStatus
CoherentFpga::serveLine(Addr lineAddr, AccessType type, SimClock &clock)
{
    (void)type;
    KONA_ASSERT(inVFMem(lineAddr), "serveLine outside VFMem: ",
                lineAddr);
    Span span(trace_, clock, "serve_line", "fpga");
    span.arg("addr", lineAddr);
    const LatencyConfig &lat = fabric_.latency();
    clock.advance(static_cast<Tick>(lat.vfmemDirectoryNs));
    if (missAttr_ != nullptr)
        missAttr_->charge(MissComponent::FmemCheck,
                          static_cast<Tick>(lat.vfmemDirectoryNs));

    Addr vpn = pageNumber(lineAddr);
    if (tiering_ != nullptr)
        tiering_->observe(vpn, clock.now());
    if (fmem_.lookup(vpn).has_value()) {
        clock.advance(static_cast<Tick>(lat.fmemNs));
        if (missAttr_ != nullptr)
            missAttr_->charge(MissComponent::FmemCheck,
                              static_cast<Tick>(lat.fmemNs));
        noteDemandTouch(vpn, clock);
        // Streaming accesses keep the prefetcher running even while
        // hitting in FMem (a fault-based runtime cannot: the
        // prefetcher never crosses a page fault, §4.4).
        maybePrefetch(vpn, /*demandMiss=*/false, clock);
        span.arg("outcome", "fmem_hit");
        return ServeStatus::FMemHit;
    }

    // Need to fetch the page; make room in the set first.
    auto victim = fmem_.victimFor(vpn);
    if (victim.has_value()) {
        KONA_ASSERT(static_cast<bool>(evictionCallback_),
                    "FMem set full and no eviction callback installed");
        const Tick evictStart = clock.now();
        evictionCallback_(*victim, clock);
        if (missAttr_ != nullptr)
            missAttr_->charge(MissComponent::Evict,
                              clock.now() - evictStart);
        if (fmem_.contains(victim->vfmemPage)) {
            // Eviction failed (all replicas unreachable); the fetch
            // cannot proceed without a frame.
            fetchFailures_.add();
            span.arg("outcome", "unavailable");
            return ServeStatus::RemoteUnavailable;
        }
    }

    Tick fetchStart = clock.now();
    if (!fetchPage(vpn, clock)) {
        fetchFailures_.add();
        span.arg("outcome", "unavailable");
        return ServeStatus::RemoteUnavailable;
    }
    fetchNs_.record(static_cast<double>(clock.now() - fetchStart));
    clock.advance(static_cast<Tick>(lat.fmemNs));
    if (missAttr_ != nullptr)
        missAttr_->charge(MissComponent::FmemCheck,
                          static_cast<Tick>(lat.fmemNs));
    maybePrefetch(vpn, /*demandMiss=*/true, clock);
    span.arg("outcome", "remote_fetch");
    return ServeStatus::RemoteFetch;
}

void
CoherentFpga::noteDemandTouch(Addr vpn, SimClock &clock)
{
    auto tag = fmem_.clearSpeculative(vpn);
    if (!tag.has_value())
        return;
    // Lead time from issue to first touch; the issue tick came off the
    // same demand-side clock, so the difference is well defined.
    Tick now = clock.now();
    Tick lead = now >= tag->tick ? now - tag->tick : 0;
    if (tag->origin == FillOrigin::Tier) {
        if (tiering_ != nullptr)
            tiering_->onPromotedUseful(vpn, lead);
        return;
    }
    prefetchUseful_.add();
    prefetchLeadNs_.record(static_cast<double>(lead));
    if (prefetcher_)
        prefetcher_->onPrefetchUseful(vpn);
}

void
CoherentFpga::reportHealth(NodeId node, bool ok, Tick latencyNs)
{
    if (healthReporter_)
        healthReporter_(node, ok, latencyNs);
}

void
CoherentFpga::markStaleHome(Addr vpn, NodeId node, std::uint64_t mask)
{
    staleHomes_[vpn][node] |= mask;
}

void
CoherentFpga::clearStaleHome(Addr vpn, NodeId node)
{
    auto it = staleHomes_.find(vpn);
    if (it == staleHomes_.end())
        return;
    it->second.erase(node);
    if (it->second.empty())
        staleHomes_.erase(it);
}

std::uint64_t
CoherentFpga::staleLines(Addr vpn) const
{
    auto it = staleHomes_.find(vpn);
    if (it == staleHomes_.end())
        return 0;
    std::uint64_t mask = 0;
    for (const auto &[node, lines] : it->second)
        mask |= lines;
    return mask;
}

bool
CoherentFpga::homeStale(Addr vpn, NodeId node) const
{
    auto it = staleHomes_.find(vpn);
    return it != staleHomes_.end() && it->second.count(node) > 0;
}

std::vector<std::size_t>
CoherentFpga::fetchOrder(
    const std::vector<RemoteLocation> &locations) const
{
    std::vector<std::size_t> order(locations.size());
    for (std::size_t i = 0; i < order.size(); ++i)
        order[i] = i;
    if (!membershipProbe_)
        return order;
    // Stable partition: preferred nodes first, original order within
    // each class (so the primary still leads among healthy copies and
    // promotion logic keyed on original indices stays meaningful).
    std::stable_partition(order.begin(), order.end(),
                          [this, &locations](std::size_t i) {
                              return !membershipProbe_(
                                  locations[i].node);
                          });
    return order;
}

bool
CoherentFpga::fetchPage(Addr vpn, SimClock &clock, FetchIntent intent,
                        Tick issueTick)
{
    // Cross-shard section: the fetch posts on the fabric, reads node
    // health/liveness, and feeds the Controller's failure detector.
    ShardSection section(gate_, GateEvent::Fetch);

    Addr vfmemAddr = vpn * pageSize;
    std::array<std::uint8_t, pageSize> staging;
    bool prefetch = intent == FetchIntent::Prefetch;
    bool speculative = intent != FetchIntent::Demand;

    // Prefetches run on the background clock; put their spans on the
    // background lane so the app-critical-path lane stays truthful.
    std::uint32_t lane = &clock == &backgroundClock_
                             ? traceBackgroundThread
                             : traceAppThread;
    Span span(trace_, clock, "fetch_page", "fpga", lane);
    span.arg("vpn", vpn);
    if (prefetch)
        span.arg("intent", "prefetch");
    else if (intent == FetchIntent::Tier)
        span.arg("intent", "tier");

    // Both intents walk all copies, hedged away from nodes the
    // membership probe says to avoid. A speculative fetch still never
    // promotes, warns, or retries — but it does report failures (gray
    // nodes must accumulate evidence even off the critical path) and
    // falls back to a replica instead of giving up.
    auto locations = translation_.translateAll(vfmemAddr);
    std::vector<std::size_t> order = fetchOrder(locations);
    bool fetched = false;
    std::size_t servedBy = 0;   ///< original index of the copy served
    for (std::size_t k = 0; k < order.size(); ++k) {
        std::size_t i = order[k];
        const RemoteLocation &loc = locations[i];
        if (homeStale(vpn, loc.node)) {
            // This copy missed an eviction shipment; its bytes are
            // stale until the next eviction freshens them. The node
            // itself is fine, so no health evidence.
            staleSkips_.add();
            continue;
        }
        if (fabric_.nodeDown(loc.node)) {
            // Skipping a down node is itself evidence for the failure
            // detector; without it a dead primary would never attract
            // op reports at all.
            reportHealth(loc.node, false);
            continue;
        }
        WorkRequest wr;
        wr.wrId = nextWrId_++;
        wr.opcode = RdmaOpcode::Read;
        wr.localBuf = staging.data();
        wr.remoteKey = loc.regionKey;
        wr.remoteAddr = loc.addr;
        wr.length = pageSize;
        Span rdma(trace_, clock, "rdma_read", "net", lane);
        rdma.arg("node", loc.node);
        rdma.arg("bytes", wr.length);
        Tick opStart = clock.now();
        PostResult posted = qpTo(loc.node).post(wr, clock);
        const Tick postDone = clock.now();
        if (!speculative && missAttr_ != nullptr)
            missAttr_->charge(MissComponent::Queueing,
                              postDone - opStart);
        if (!posted.ok()) {
            // Consume exactly the error CQEs this doorbell pushed.
            poller_.drain(cq_, clock, posted.cqesPushed);
            if (!speculative && missAttr_ != nullptr)
                missAttr_->charge(MissComponent::Retry,
                                  clock.now() - postDone);
            reportHealth(loc.node, false);
            continue;
        }
        poller_.waitOne(cq_, clock);
        if (!speculative && missAttr_ != nullptr)
            missAttr_->charge(MissComponent::Wire,
                              clock.now() - postDone);
        reportHealth(loc.node, true, clock.now() - opStart);
        if (!speculative && i > 0) {
            // Promote the replica we read from only when every
            // earlier copy sits on a node that is actually down
            // (§4.5). A transient drop or a hedge away from a merely
            // Suspect primary must not reshuffle the placement — the
            // primary gets another chance once it recovers.
            bool earlierAllDown = true;
            for (std::size_t j = 0; j < i; ++j)
                earlierAllDown &= fabric_.nodeDown(locations[j].node);
            if (earlierAllDown) {
                translation_.promoteReplica(vfmemAddr, i - 1);
                promotions_.add();
                warn("failed over VFMem page ", vpn, " to node ",
                     loc.node);
            }
        }
        fetched = true;
        servedBy = i;
        break;
    }
    if (!fetched) {
        if (prefetch)
            prefetchDroppedNodeDown_.add();
        return false;
    }
    if (servedBy != 0) {
        if (prefetch)
            prefetchReplicaFallback_.add();
        else if (!speculative &&
                 !fabric_.nodeDown(locations[0].node) &&
                 membershipProbe_ &&
                 membershipProbe_(locations[0].node)) {
            // The primary was alive but its membership state said to
            // avoid it: this read was hedged, not failed over.
            hedgedReads_.add();
        }
    }

    FillOrigin origin = FillOrigin::Demand;
    if (intent == FetchIntent::Prefetch)
        origin = FillOrigin::Prefetch;
    else if (intent == FetchIntent::Tier)
        origin = FillOrigin::Tier;
    std::size_t frame = fmem_.insert(vpn, origin, issueTick);
    fmemStore_.write(static_cast<Addr>(frame) * pageSize, staging.data(),
                     pageSize);
    remoteFetches_.add();
    if (!speculative)
        demandFetches_.add();
    return true;
}

bool
CoherentFpga::tierPromote(Addr vpn, Tick issueTick)
{
    Addr addr = vpn * pageSize;
    if (!inVFMem(addr) || !translation_.mapped(addr))
        return false;
    if (fmem_.contains(vpn))
        return false;
    if (pageGovernor_ && pageGovernor_(vpn))
        return false;   // promoting would bypass the rights check
    if (fmem_.victimFor(vpn).has_value())
        return false;   // promotion never evicts: set is full
    return fetchPage(vpn, backgroundClock_, FetchIntent::Tier,
                     issueTick);
}

void
CoherentFpga::maybePrefetch(Addr vpn, bool demandMiss, SimClock &clock)
{
    if (!prefetcher_)
        return;
    // Whatever the budget could not cover before this access missed
    // its window; a late prefetch is worse than none.
    prefetchDroppedNoCredit_.add(prefetchQueue_.clear());

    candidateBuf_.clear();
    prefetcher_->observe(vpn, demandMiss, candidateBuf_);
    prefetchPredicted_.add(candidateBuf_.size());
    for (Addr c : candidateBuf_) {
        Addr addr = c * pageSize;
        if (!inVFMem(addr) || !translation_.mapped(addr))
            continue;
        if (fmem_.contains(c) || prefetchQueue_.contains(c))
            continue;
        if (pageGovernor_ && pageGovernor_(c)) {
            // Coherence-governed page: a speculative fetch would
            // install bytes without the directory's rights check.
            prefetchDroppedGoverned_.add();
            continue;
        }
        if (!prefetchQueue_.push(c))
            prefetchDroppedQueueFull_.add();
    }

    prefetchCredits_.advanceTo(clock.now());
    std::size_t issued = 0;
    while (!prefetchQueue_.empty()) {
        Addr c = prefetchQueue_.front();
        if (fmem_.contains(c)) {
            prefetchQueue_.pop();   // raced with an earlier issue
            continue;
        }
        if (fmem_.victimFor(c).has_value()) {
            // Speculation never evicts: the set is full, give up.
            prefetchQueue_.pop();
            prefetchDroppedSetFull_.add();
            continue;
        }
        if (!prefetchCredits_.tryConsume())
            break;   // out of budget; leftovers are dropped next time
        prefetchQueue_.pop();
        if (fetchPage(c, backgroundClock_, FetchIntent::Prefetch,
                      clock.now())) {
            ++issued;
        }
    }
    if (issued > 0) {
        prefetchIssued_.add(issued);
        prefetcher_->onPrefetchIssued(issued);
    }
}

void
CoherentFpga::onLineRequest(Addr lineAddr, AccessType type)
{
    // Requests are served through serveLine() on the runtime's explicit
    // call; the listener hook exists for trace-driven counting uses.
    (void)lineAddr;
    (void)type;
}

void
CoherentFpga::onWriteback(Addr lineAddr)
{
    if (!inVFMem(lineAddr))
        return;
    writebacksObserved_.add();
    dirtyLines_.markLine(lineAddr);
}

void
CoherentFpga::readBytes(Addr vfmemAddr, void *buf, std::size_t size)
{
    auto *out = static_cast<std::uint8_t *>(buf);
    while (size > 0) {
        Addr vpn = pageNumber(vfmemAddr);
        std::size_t offset = vfmemAddr % pageSize;
        std::size_t chunk = std::min(size, pageSize - offset);
        auto frame = fmem_.frameOf(vpn);
        KONA_ASSERT(frame.has_value(),
                    "functional read of non-resident VFMem page ", vpn);
        fmemStore_.read(static_cast<Addr>(*frame) * pageSize + offset,
                        out, chunk);
        vfmemAddr += chunk;
        out += chunk;
        size -= chunk;
    }
}

void
CoherentFpga::writeBytes(Addr vfmemAddr, const void *buf,
                         std::size_t size)
{
    const auto *in = static_cast<const std::uint8_t *>(buf);
    while (size > 0) {
        Addr vpn = pageNumber(vfmemAddr);
        std::size_t offset = vfmemAddr % pageSize;
        std::size_t chunk = std::min(size, pageSize - offset);
        auto frame = fmem_.frameOf(vpn);
        KONA_ASSERT(frame.has_value(),
                    "functional write of non-resident VFMem page ", vpn);
        fmemStore_.write(static_cast<Addr>(*frame) * pageSize + offset,
                         in, chunk);
        vfmemAddr += chunk;
        in += chunk;
        size -= chunk;
    }
}

void
CoherentFpga::dropPage(Addr vpn)
{
    // A page leaving FMem with its speculative tag intact was never
    // demand-touched: the fill was wasted bandwidth, attributed to
    // whichever engine issued it.
    auto origin = fmem_.speculativeOrigin(vpn);
    if (origin == FillOrigin::Prefetch) {
        prefetchWasted_.add();
        if (prefetcher_)
            prefetcher_->onPrefetchWasted(vpn);
    } else if (origin == FillOrigin::Tier && tiering_ != nullptr) {
        tiering_->onPromotedWasted(vpn);
    }
    fmem_.remove(vpn);
    if (dropHook_)
        dropHook_(vpn);
}

PrefetchStats
CoherentFpga::prefetchStats() const
{
    PrefetchStats s;
    s.predicted = prefetchPredicted_.value();
    s.issued = prefetchIssued_.value();
    s.useful = prefetchUseful_.value();
    s.wasted = prefetchWasted_.value();
    s.droppedNoCredit = prefetchDroppedNoCredit_.value();
    s.droppedNodeDown = prefetchDroppedNodeDown_.value();
    s.droppedSetFull = prefetchDroppedSetFull_.value();
    s.droppedQueueFull = prefetchDroppedQueueFull_.value();
    s.droppedGoverned = prefetchDroppedGoverned_.value();
    return s;
}

std::uint8_t *
CoherentFpga::framePointer(Addr vpn)
{
    auto frame = fmem_.frameOf(vpn);
    KONA_ASSERT(frame.has_value(), "framePointer of non-resident page ",
                vpn);
    return fmemStore_.pagePointer(static_cast<Addr>(*frame) * pageSize);
}

} // namespace kona
