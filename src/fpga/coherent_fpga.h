/**
 * @file
 * CoherentFpga: the reference architecture of §4.3 — an FPGA attached
 * to the CPU over a coherent interconnect, exposing a fake physical
 * address space (VFMem) backed by remote memory and cached in its own
 * DRAM (FMem).
 *
 * The model provides the paper's two mandatory hardware primitives:
 *
 *  - cache-remote-data: serveLine() handles a line request that missed
 *    the whole CPU hierarchy. FMem hit -> NUMA-latency access; miss ->
 *    page fetch from the owning memory node over RDMA (evicting an FMem
 *    victim through the runtime's eviction callback if the set is full).
 *  - track-local-data: onWriteback() observes dirty-line writebacks
 *    from the CPU hierarchy and records them in per-page bitmaps.
 *
 * Functional data: the authoritative bytes of a resident VFMem page
 * live in the FMem backing store; non-resident pages live on their
 * memory node. The runtime keeps the invariant that any line in CPU
 * caches belongs to a resident page (eviction snoops the page first),
 * so reads/writes can always be applied to FMem.
 */

#ifndef KONA_FPGA_COHERENT_FPGA_H
#define KONA_FPGA_COHERENT_FPGA_H

#include <functional>
#include <memory>
#include <unordered_map>

#include "cache/hierarchy.h"
#include "common/latency.h"
#include "common/sim_clock.h"
#include "fpga/fmem_cache.h"
#include "fpga/remote_translation.h"
#include "mem/backing_store.h"
#include "mem/dirty_bitmap.h"
#include "net/queue_pair.h"
#include "net/shard_gate.h"
#include "prefetch/prefetch_queue.h"
#include "prefetch/prefetcher.h"
#include "telemetry/attribution.h"
#include "telemetry/metric_registry.h"
#include "telemetry/trace_session.h"

namespace kona {

class TieringEngine;

/** Configuration of the coherent FPGA. */
struct FpgaConfig
{
    Addr vfmemBase = 0x400000000000ULL;   ///< base of the fake window
    std::size_t vfmemSize = 1 * GiB;      ///< size of the fake window
    std::size_t fmemSize = 64 * MiB;      ///< FPGA-attached DRAM cache
    std::size_t fmemAssociativity = 4;

    /**
     * Prefetch policy spec "policy[:depth]": off, next, stride, corr,
     * adaptive (see src/prefetch/prefetcher.h).
     */
    std::string prefetchPolicy = "off";

    /**
     * FMem victim policy spec "policy[:arg]": lru, lfu, scan, dirty
     * (see src/policy/victim_policy.h).
     */
    std::string victimPolicy = "lru";

    /** Candidates staged per access before the credit gate. */
    std::size_t prefetchQueueCapacity = 32;
    /** Simulated ns of fabric time that earn one prefetch credit. */
    double prefetchCreditRefillNs = 200.0;
    /** Credit bucket capacity (burst ceiling). */
    std::size_t prefetchCreditBurst = 64;
};

/** Snapshot of the prefetch engine's accuracy/coverage counters. */
struct PrefetchStats
{
    std::uint64_t predicted = 0;        ///< candidates proposed
    std::uint64_t issued = 0;           ///< fetches actually launched
    std::uint64_t useful = 0;           ///< first-touched by demand
    std::uint64_t wasted = 0;           ///< evicted untouched
    std::uint64_t droppedNoCredit = 0;  ///< starved by the budget
    std::uint64_t droppedNodeDown = 0;  ///< primary unreachable
    std::uint64_t droppedSetFull = 0;   ///< no free way, no eviction
    std::uint64_t droppedQueueFull = 0; ///< staging overflow
    std::uint64_t droppedGoverned = 0;  ///< coherence-governed page

    /** useful / issued (1.0 when nothing issued yet). */
    double
    accuracy() const
    {
        return issued == 0
                   ? 1.0
                   : static_cast<double>(useful) /
                         static_cast<double>(issued);
    }
};

/** Outcome of serving a line request. */
enum class ServeStatus : std::uint8_t
{
    FMemHit,       ///< page was resident
    RemoteFetch,   ///< page fetched from its memory node
    RemoteUnavailable, ///< memory node down (network failure, §4.5)
};

/** The cache-coherent FPGA model. */
class CoherentFpga : public MemorySideListener
{
  public:
    /**
     * @param fabric The rack network.
     * @param computeNode This host's node id on the fabric.
     * @param config Geometry and features.
     * @param scope Telemetry scope; the FMem tag store registers under
     *              "<scope>.fmem", QPs under "<scope>.qp<node>".
     */
    CoherentFpga(Fabric &fabric, NodeId computeNode,
                 const FpgaConfig &config, MetricScope scope = {});

    const FpgaConfig &config() const { return config_; }

    /** True when @p addr falls inside the VFMem window. */
    bool
    inVFMem(Addr addr) const
    {
        return addr >= config_.vfmemBase &&
               addr < config_.vfmemBase + config_.vfmemSize;
    }

    /** The Resource Manager's view of the translation map. */
    RemoteTranslation &translation() { return translation_; }
    const RemoteTranslation &translation() const { return translation_; }

    /**
     * Eviction callback: invoked when a fetch needs a frame in a full
     * set. The callee must write back and dropPage() the victim,
     * charging any critical-path cost to the supplied clock.
     */
    using EvictionCallback =
        std::function<void(const FMemCache::Victim &, SimClock &)>;
    void setEvictionCallback(EvictionCallback cb)
    {
        evictionCallback_ = std::move(cb);
    }

    /**
     * cache-remote-data: serve a CPU line request that missed every
     * cache level. Charges directory + FMem or fetch cost to @p clock.
     */
    ServeStatus serveLine(Addr lineAddr, AccessType type,
                          SimClock &clock);

    // MemorySideListener: track-local-data.
    void onLineRequest(Addr lineAddr, AccessType type) override;
    void onWriteback(Addr lineAddr) override;

    /** Functional read of resident VFMem bytes (from FMem frames). */
    void readBytes(Addr vfmemAddr, void *buf, std::size_t size);
    /** Functional write of resident VFMem bytes (to FMem frames). */
    void writeBytes(Addr vfmemAddr, const void *buf, std::size_t size);

    /** Whether VFMem page @p vpn is resident in FMem. */
    bool pageResident(Addr vpn) const { return fmem_.contains(vpn); }

    /** Dirty-line mask of VFMem page @p vpn (tracking primitive). */
    std::uint64_t dirtyMask(Addr vpn) const
    {
        return dirtyLines_.pageMask(vpn);
    }

    /** Clear tracking state for @p vpn (after writeback). */
    void clearDirty(Addr vpn) { dirtyLines_.clearPage(vpn); }

    /**
     * Restore a previously packed dirty mask (failed eviction
     * shipment): OR the lines back so they ship again next time.
     */
    void orDirtyMask(Addr vpn, std::uint64_t mask)
    {
        dirtyLines_.orMask(vpn, mask);
    }

    /** Mark lines dirty directly (used when emulating via snapshots). */
    void markDirtyRange(Addr vfmemAddr, std::size_t size)
    {
        dirtyLines_.markRange(vfmemAddr, size);
    }

    /**
     * Fence of the pipelined eviction engine: a fenced page's frame
     * stays resident (and out of victim selection) while its CL log is
     * on the wire; writes to it simply re-dirty the mask and the engine
     * re-queues the page instead of losing lines.
     */
    void setEvictionInFlight(Addr vpn, bool inFlight)
    {
        fmem_.setEvictionInFlight(vpn, inFlight);
    }
    bool evictionInFlight(Addr vpn) const
    {
        return fmem_.evictionInFlight(vpn);
    }

    /**
     * Remove a page from FMem (its frame becomes free). The caller has
     * already written dirty lines back.
     */
    void dropPage(Addr vpn);

    /**
     * Victims needed to keep @p freeWays ways free in every set,
     * written to caller-provided storage: up to @p cap victims land
     * in @p out and the TOTAL owed comes back (grow the buffer and
     * call again when it exceeds cap; @p out may be nullptr to count).
     */
    std::size_t backgroundVictims(std::size_t freeWays,
                                  FMemCache::Victim *out,
                                  std::size_t cap) const
    {
        return fmem_.overOccupiedVictims(freeWays, out, cap);
    }

    /** Raw pointer to the FMem bytes of resident page @p vpn. */
    std::uint8_t *framePointer(Addr vpn);

    /**
     * Observer of per-node op outcomes on the fetch path. KonaRuntime
     * wires this to the Controller's failure detector and health
     * scorer so that skipped or failing nodes accumulate evidence
     * toward a Failed verdict and slow nodes toward Suspect.
     * @p latencyNs is the observed op latency (0 on failure).
     */
    using HealthReporter =
        std::function<void(NodeId, bool ok, Tick latencyNs)>;
    void setHealthReporter(HealthReporter reporter)
    {
        healthReporter_ = std::move(reporter);
    }

    /**
     * Membership probe consulted per candidate location on the fetch
     * path: return true when reads should prefer another replica over
     * the node (Suspect/Quarantined/Joining). KonaRuntime wires this
     * to Controller::avoidForReads; unset means no hedging.
     */
    using MembershipProbe = std::function<bool(NodeId)>;
    void setMembershipProbe(MembershipProbe probe)
    {
        membershipProbe_ = std::move(probe);
    }

    /**
     * Hook invoked after a page leaves FMem for any reason (capacity
     * eviction, silent drop, coherence invalidation). The coherence
     * agent uses it to release directory rights exactly when residency
     * ends. Unset on single-node racks — the hot path never pays for
     * it (drops are off the per-access path).
     */
    using DropHook = std::function<void(Addr)>;
    void setDropHook(DropHook hook) { dropHook_ = std::move(hook); }

    /**
     * Predicate over VFMem page numbers the coherence layer governs.
     * The prefetch engine skips governed pages: speculatively fetching
     * a shared page would install bytes without the directory's rights
     * check. Unset = nothing governed.
     */
    using PageGovernor = std::function<bool(Addr)>;
    void setPageGovernor(PageGovernor governor)
    {
        pageGovernor_ = std::move(governor);
        // Victim selection deprioritizes governed pages the same way
        // (evicting one stays legal but costs directory work).
        fmem_.setGovernedProbe(pageGovernor_);
    }

    /**
     * Attach the tiering engine (nullptr detaches). The FPGA feeds it
     * the page-granular access stream from serveLine() and routes
     * promoted-fill attribution (first touch, wasted eviction) back
     * to it; promotions themselves arrive through tierPromote().
     */
    void setTieringEngine(TieringEngine *engine) { tiering_ = engine; }

    /**
     * Promote VFMem page @p vpn into FMem off the critical path (the
     * tiering engine's promote hook). Promotions never evict and
     * never touch governed pages: the fetch only happens when the
     * page is mapped, absent, un-governed, and its set has a free
     * way. Returns false when any of that fails or every copy is
     * unreachable. @p issueTick stamps the frame for lead-time
     * attribution under tier.*.
     */
    bool tierPromote(Addr vpn, Tick issueTick);

    // --- stale-copy tracking -----------------------------------------
    //
    // When an eviction shipment permanently fails against a *live*
    // home (gray link, retries exhausted), the page is still dropped —
    // at least one fresh copy landed — but the missed copy is stale
    // for the shipped lines. The eviction handler records that here;
    // reads skip stale homes, and the page's next eviction re-ships
    // the union of its dirty and stale lines so the copy freshens.

    /** Copy of @p vpn on @p node missed lines in @p mask. */
    void markStaleHome(Addr vpn, NodeId node, std::uint64_t mask);

    /** A shipment to @p node landed; its copy of @p vpn is fresh. */
    void clearStaleHome(Addr vpn, NodeId node);

    /** Union of lines any home of @p vpn is missing (0 = none). */
    std::uint64_t staleLines(Addr vpn) const;

    /** Whether @p node's copy of @p vpn must not serve reads. */
    bool homeStale(Addr vpn, NodeId node) const;

    /**
     * Per-home missed-line masks of @p vpn, or nullptr when no home is
     * stale. The coherence agent reports this view to the directory at
     * release time so the next holder inherits it.
     */
    const std::unordered_map<NodeId, std::uint64_t> *
    staleHomesOf(Addr vpn) const
    {
        auto it = staleHomes_.find(vpn);
        return it == staleHomes_.end() ? nullptr : &it->second;
    }

    /** Pages with at least one stale home right now. */
    std::size_t stalePages() const { return staleHomes_.size(); }

    /** Reads that skipped a live node because its copy was stale. */
    std::uint64_t staleHomeSkips() const
    {
        return staleSkips_.value();
    }

    /** Queue pair to memory node @p node (created on first use). */
    QueuePair &qpTo(NodeId node);
    CompletionQueue &cq() { return cq_; }
    Poller &poller() { return poller_; }

    /** This compute host's id on the fabric. */
    NodeId nodeId() const { return computeNode_; }

    /** The fabric's latency table. */
    const LatencyConfig &latency() const { return fabric_.latency(); }

    FMemCache &fmem() { return fmem_; }
    const FMemCache &fmem() const { return fmem_; }
    const DirtyLineBitmap &dirtyBitmap() const { return dirtyLines_; }

    // Statistics.
    std::uint64_t remoteFetches() const { return remoteFetches_.value(); }
    /** Remote fetches on the critical path (excludes prefetches). */
    std::uint64_t demandFetches() const { return demandFetches_.value(); }
    std::uint64_t fmemHits() const { return fmem_.hits(); }
    std::uint64_t writebacksObserved() const
    {
        return writebacksObserved_.value();
    }
    std::uint64_t prefetches() const { return prefetchIssued_.value(); }
    std::uint64_t fetchFailures() const { return fetchFailures_.value(); }
    std::uint64_t replicaPromotions() const { return promotions_.value(); }
    /** Demand reads served by a replica because the primary's
     *  membership state said to avoid it (no promotion involved). */
    std::uint64_t hedgedReads() const { return hedgedReads_.value(); }
    /** Prefetches served by a replica after the primary was down. */
    std::uint64_t prefetchReplicaFallbacks() const
    {
        return prefetchReplicaFallback_.value();
    }

    /** Accuracy/coverage counters of the prefetch engine. */
    PrefetchStats prefetchStats() const;

    /** The active predictor (nullptr when prefetching is off). */
    Prefetcher *prefetcher() { return prefetcher_.get(); }

    /** Background (off-critical-path) simulated time spent. */
    Tick backgroundTime() const { return backgroundClock_.now(); }

    /** Attach a span tracer to the fetch path (nullptr detaches). */
    void setTraceSession(TraceSession *trace) { trace_ = trace; }

    /**
     * Parallel engine: every fetchPage() (demand, prefetch, tier)
     * becomes a gated cross-shard section — it posts on the fabric,
     * reads fabric/node state and reports into the Controller's
     * failure detector. Default-constructed endpoint = sequential
     * mode, zero overhead.
     */
    void setGateEndpoint(const GateEndpoint &ep) { gate_ = ep; }

    /**
     * Attach the demand-miss latency attribution (nullptr detaches).
     * While the owner has a miss sample open (KonaRuntime brackets the
     * whole miss, including retries), the serve/fetch path charges its
     * clock advances to MissComponent buckets: directory + FMem access
     * to FmemCheck, room-making writeback to Evict, fabric post to
     * Queueing, the RDMA round trip to Wire, failed-post drains to
     * Retry. Background prefetch fetches never charge (they run on the
     * background clock, off the miss's end-to-end total).
     */
    void setMissAttribution(LatencyAttribution *attr)
    {
        missAttr_ = attr;
    }

  private:
    /** Who a page fetch is for; controls failover and accounting. */
    enum class FetchIntent : std::uint8_t
    {
        Demand,    ///< critical path: full replica failover + health
        Prefetch,  ///< speculative: replica fallback, no promotion
        Tier,      ///< tiering promotion: like Prefetch, attributed
                   ///< to tier.* instead of prefetch.*
    };

    /**
     * Bring VFMem page @p vpn into FMem. Assumes a free way exists.
     * Demand fetches walk the replica failover path (hedging away
     * from Suspect/Quarantined primaries via the membership probe)
     * and feed the failure detector; prefetch fetches also fall back
     * to replicas and report failures to the health scorer, but never
     * promote, warn, or retry. @p issueTick stamps prefetched frames
     * for timeliness attribution.
     * @return false when the page could not be fetched.
     */
    bool fetchPage(Addr vpn, SimClock &clock,
                   FetchIntent intent = FetchIntent::Demand,
                   Tick issueTick = 0);

    /**
     * Run the prefetch engine off one access: feed the predictor,
     * stage its candidates, and issue as many as the credit budget
     * covers on the background clock. @p clock is the demand-side
     * clock whose time refills credits and stamps issue ticks.
     */
    void maybePrefetch(Addr vpn, bool demandMiss, SimClock &clock);

    /** First-touch attribution of a resident page (useful prefetch). */
    void noteDemandTouch(Addr vpn, SimClock &clock);

    void reportHealth(NodeId node, bool ok, Tick latencyNs = 0);

    /** Candidate iteration order: healthy locations first (stable), so
     *  reads hedge away from Suspect/Quarantined/Joining primaries. */
    std::vector<std::size_t>
    fetchOrder(const std::vector<RemoteLocation> &locations) const;

    Fabric &fabric_;
    NodeId computeNode_;
    FpgaConfig config_;
    MetricScope scope_;
    FMemCache fmem_;
    BackingStore fmemStore_;
    RemoteTranslation translation_;
    DirtyLineBitmap dirtyLines_;
    EvictionCallback evictionCallback_;
    HealthReporter healthReporter_;
    MembershipProbe membershipProbe_;
    DropHook dropHook_;
    PageGovernor pageGovernor_;
    TieringEngine *tiering_ = nullptr;

    /** vpn -> (home node -> missed-line mask). Almost always empty. */
    std::unordered_map<Addr,
                       std::unordered_map<NodeId, std::uint64_t>>
        staleHomes_;

    CompletionQueue cq_;
    Poller poller_;
    std::unordered_map<NodeId, std::unique_ptr<QueuePair>> qps_;

    SimClock backgroundClock_;
    GateEndpoint gate_;
    TraceSession *trace_ = nullptr;
    LatencyAttribution *missAttr_ = nullptr;

    // Prefetch engine: predictor (policy), staging queue, bandwidth
    // budget. Demand fetches never consult the credit bucket.
    std::unique_ptr<Prefetcher> prefetcher_;
    PrefetchQueue prefetchQueue_;
    CreditBucket prefetchCredits_;
    std::vector<Addr> candidateBuf_;

    Counter &remoteFetches_;
    Counter &demandFetches_;
    Counter &writebacksObserved_;
    Counter &fetchFailures_;
    Counter &promotions_;
    Counter &hedgedReads_;
    Counter &prefetchReplicaFallback_;
    Counter &staleSkips_;
    Counter &prefetchPredicted_;
    Counter &prefetchIssued_;
    Counter &prefetchUseful_;
    Counter &prefetchWasted_;
    Counter &prefetchDroppedNoCredit_;
    Counter &prefetchDroppedNodeDown_;
    Counter &prefetchDroppedSetFull_;
    Counter &prefetchDroppedQueueFull_;
    Counter &prefetchDroppedGoverned_;
    LatencyHistogram &fetchNs_;
    LatencyHistogram &prefetchLeadNs_;
    std::uint64_t nextWrId_ = 1;
};

} // namespace kona

#endif // KONA_FPGA_COHERENT_FPGA_H
