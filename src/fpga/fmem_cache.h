/**
 * @file
 * FMemCache: tag/frame management for the FPGA-attached DRAM cache.
 *
 * Per §4.4 (Local translation), FMem is a 4-way set-associative cache
 * of VFMem with its block size equal to the page size. Frames are
 * fixed per (set, way) slot, so a page's bytes live at
 * frame * pageSize inside the FMem backing store.
 *
 * Storage is one flat array of numSets * associativity way slots
 * (same layout as SetAssocCache — see DESIGN.md "Simulator
 * performance"): set s owns slots [s*assoc, (s+1)*assoc); its
 * resident ways occupy a prefix in LRU order (slot 0 = MRU). The
 * invalid tail slots double as the set's free-frame list — each
 * carries an unused frame number in its frame field — so lookup,
 * insert and remove never touch the heap.
 */

#ifndef KONA_FPGA_FMEM_CACHE_H
#define KONA_FPGA_FMEM_CACHE_H

#include <cstdint>
#include <optional>
#include <vector>

#include "common/stats.h"
#include "common/types.h"
#include "telemetry/metric_registry.h"

namespace kona {

/** Set-associative page-granularity tag store with per-set LRU. */
class FMemCache
{
  public:
    /** A page selected for eviction. */
    struct Victim
    {
        Addr vfmemPage;      ///< VFMem page number being displaced
        std::size_t frame;   ///< frame it occupies
    };

    /**
     * @param sizeBytes Total FMem capacity (must be a multiple of
     *                  associativity * pageSize).
     * @param associativity Ways per set (the paper uses 4).
     * @param scope Telemetry scope for "hits"/"misses".
     */
    FMemCache(std::size_t sizeBytes, std::size_t associativity = 4,
              MetricScope scope = {});

    /** Look up VFMem page @p vpn; refreshes LRU on hit. */
    std::optional<std::size_t> lookup(Addr vpn);

    /** Tag probe without LRU side effects. */
    bool contains(Addr vpn) const;

    /** Frame of @p vpn without LRU update; nullopt if absent. */
    std::optional<std::size_t> frameOf(Addr vpn) const;

    /**
     * Insert @p vpn into its set, which must have a free way (evict
     * first if victimFor() returns a victim). Returns the frame.
     * @p prefetched tags the frame as speculatively filled (with the
     * issuing sim time @p tick) so the first demand touch can be
     * attributed as a useful prefetch.
     */
    std::size_t insert(Addr vpn, bool prefetched = false,
                       Tick tick = 0);

    /**
     * First-touch attribution: if @p vpn is resident and still carries
     * its prefetch tag, clear the tag and return the issue tick;
     * nullopt when absent or demand-fetched.
     */
    std::optional<Tick> clearPrefetched(Addr vpn);

    /** Whether @p vpn is resident with its prefetch tag still set. */
    bool isPrefetched(Addr vpn) const;

    /**
     * Fence (or unfence) a resident page whose eviction shipment is in
     * flight. Fenced pages are skipped by victim selection so the
     * eviction engine never races itself; a write to a fenced page is
     * legal and simply re-dirties it. No-op when @p vpn is absent.
     */
    void setEvictionInFlight(Addr vpn, bool inFlight);

    /** Whether @p vpn is resident with an eviction shipment in flight. */
    bool evictionInFlight(Addr vpn) const;

    /**
     * The LRU victim that must leave before @p vpn can be inserted;
     * nullopt when the set has a free way. Prefers the least-recent way
     * whose eviction is NOT already in flight; falls back to the plain
     * LRU way only when the whole set is fenced.
     */
    std::optional<Victim> victimFor(Addr vpn) const;

    /** Remove @p vpn (after eviction writeback). */
    void remove(Addr vpn);

    /**
     * Victims to evict so every set keeps >= @p freeWays free ways.
     * Used by background eviction to stay ahead of fetches. Counts
     * first and reserves exactly, so the common every-set-has-room
     * case returns without touching the heap.
     */
    std::vector<Victim> overOccupiedVictims(std::size_t freeWays) const;

    /** All VFMem pages currently resident (for shutdown writeback). */
    std::vector<Addr> residentPages() const;

    std::size_t frames() const { return frames_; }
    std::size_t pagesResident() const { return resident_; }
    std::size_t numSets() const { return numSets_; }
    std::size_t associativity() const { return assoc_; }
    std::size_t capacityBytes() const { return frames_ * pageSize; }

    std::uint64_t hits() const { return hits_.value(); }
    std::uint64_t misses() const { return misses_.value(); }

    /** Tag store consistency: frames unique, prefixes well formed. */
    bool checkInvariants() const;

  private:
    struct Way
    {
        Addr vpn;
        std::size_t frame;
        bool prefetched = false;   ///< speculative fill, untouched yet
        Tick prefetchTick = 0;     ///< sim time the prefetch was issued
        bool evicting = false;     ///< eviction shipment in flight
    };

    static constexpr std::size_t npos = static_cast<std::size_t>(-1);

    std::size_t setOf(Addr vpn) const { return vpn % numSets_; }

    Way *setBase(std::size_t si) { return ways_.data() + si * assoc_; }
    const Way *setBase(std::size_t si) const
    {
        return ways_.data() + si * assoc_;
    }

    /** Index of @p vpn within its set's valid prefix, or npos. */
    std::size_t findWay(Addr vpn) const;

    /**
     * Collect (or just count, when @p out is null) the victims set
     * @p si owes to keep @p freeWays ways free.
     */
    std::size_t setVictims(std::size_t si, std::size_t freeWays,
                           std::vector<Victim> *out) const;

    MetricScope scope_;
    std::size_t assoc_;
    std::size_t numSets_;
    std::size_t frames_;
    std::size_t resident_ = 0;
    /** numSets * assoc slots; set s's resident ways are the prefix
     *  [s*assoc, s*assoc + used_[s]) in LRU order (MRU first); the
     *  tail slots each park one free frame number. */
    std::vector<Way> ways_;
    std::vector<std::uint32_t> used_;
    Counter &hits_;
    Counter &misses_;
};

} // namespace kona

#endif // KONA_FPGA_FMEM_CACHE_H
