/**
 * @file
 * FMemCache: tag/frame management for the FPGA-attached DRAM cache.
 *
 * Per §4.4 (Local translation), FMem is a 4-way set-associative cache
 * of VFMem with its block size equal to the page size. Frames are
 * fixed per (set, way) slot, so a page's bytes live at
 * frame * pageSize inside the FMem backing store.
 *
 * Storage is one flat array of numSets * associativity way slots
 * (same layout as SetAssocCache — see DESIGN.md "Simulator
 * performance"): set s owns slots [s*assoc, (s+1)*assoc); its
 * resident ways occupy a prefix in recency order (slot 0 = MRU). The
 * invalid tail slots double as the set's free-frame list — each
 * carries an unused frame number in its frame field — so lookup,
 * insert and remove never touch the heap.
 *
 * Victim selection is delegated to a pluggable VictimPolicy (see
 * src/policy/victim_policy.h): the tag store builds the candidate
 * view for one set — resident ways, minus fenced (eviction in
 * flight) and, when alternatives exist, coherence-governed pages —
 * and the policy picks. The default "lru" policy reproduces the old
 * hard-coded walk bit for bit.
 */

#ifndef KONA_FPGA_FMEM_CACHE_H
#define KONA_FPGA_FMEM_CACHE_H

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/stats.h"
#include "common/types.h"
#include "policy/victim_policy.h"
#include "telemetry/metric_registry.h"

namespace kona {

/** How a page got into FMem; speculative fills carry their origin so
 *  first-touch/eviction attribution lands in the right counters. */
enum class FillOrigin : std::uint8_t
{
    Demand,     ///< demand miss (or first touch cleared the tag)
    Prefetch,   ///< prefetch engine; attributes to fpga.prefetch.*
    Tier,       ///< tiering promotion; attributes to tier.*
};

/** Set-associative page-granularity tag store with pluggable
 *  within-set replacement. */
class FMemCache
{
  public:
    /** A page selected for eviction. */
    struct Victim
    {
        Addr vfmemPage;      ///< VFMem page number being displaced
        std::size_t frame;   ///< frame it occupies
    };

    /** Speculative-fill tag returned by clearSpeculative(). */
    struct SpecTag
    {
        Tick tick;           ///< sim time the fill was issued
        FillOrigin origin;   ///< Prefetch or Tier
    };

    /**
     * @param sizeBytes Total FMem capacity (must be a multiple of
     *                  associativity * pageSize).
     * @param associativity Ways per set (the paper uses 4), at most
     *                  maxAssociativity.
     * @param scope Telemetry scope for "hits"/"misses"/"policy.*".
     * @param victimSpec Victim policy ("policy[:arg]", default lru).
     */
    FMemCache(std::size_t sizeBytes, std::size_t associativity = 4,
              MetricScope scope = {},
              const std::string &victimSpec = "lru");

    /** Look up VFMem page @p vpn; refreshes recency on hit. */
    std::optional<std::size_t> lookup(Addr vpn);

    /** Tag probe without recency side effects. */
    bool contains(Addr vpn) const;

    /** Frame of @p vpn without recency update; nullopt if absent. */
    std::optional<std::size_t> frameOf(Addr vpn) const;

    /**
     * Insert @p vpn into its set, which must have a free way (evict
     * first if victimFor() returns a victim). Returns the frame.
     * A speculative @p origin (Prefetch/Tier) tags the frame with the
     * issuing sim time @p tick so the first demand touch can be
     * attributed to the right engine.
     */
    std::size_t insert(Addr vpn,
                       FillOrigin origin = FillOrigin::Demand,
                       Tick tick = 0);

    /**
     * First-touch attribution: if @p vpn is resident and still
     * carries a speculative-fill tag, clear the tag and return it;
     * nullopt when absent or demand-fetched.
     */
    std::optional<SpecTag> clearSpeculative(Addr vpn);

    /**
     * The speculative-fill origin of @p vpn (Prefetch/Tier) when it
     * is resident and never demand-touched; nullopt otherwise. For
     * eviction-time wasted-fill attribution.
     */
    std::optional<FillOrigin> speculativeOrigin(Addr vpn) const;

    /** Whether @p vpn is resident with its prefetch tag still set. */
    bool isPrefetched(Addr vpn) const;

    /**
     * Fence (or unfence) a resident page whose eviction shipment is in
     * flight. Fenced pages are skipped by victim selection so the
     * eviction engine never races itself; a write to a fenced page is
     * legal and simply re-dirties it. No-op when @p vpn is absent.
     */
    void setEvictionInFlight(Addr vpn, bool inFlight);

    /** Whether @p vpn is resident with an eviction shipment in flight. */
    bool evictionInFlight(Addr vpn) const;

    /**
     * Optional probe consulted by dirty-aware victim policies; maps a
     * resident vpn to "has unwritten lines". Only called when the
     * configured policy asks for it (VictimPolicy::wantsDirty()).
     */
    void setDirtyProbe(std::function<bool(Addr)> probe);

    /**
     * Optional probe marking coherence-governed pages. Governed pages
     * are deprioritized by victim selection: they are only chosen
     * when a set has no un-governed, un-fenced alternative (evicting
     * them stays legal — the drop hook releases rights — but it costs
     * directory work, so policies prefer free pages).
     */
    void setGovernedProbe(std::function<bool(Addr)> probe);

    /**
     * The victim that must leave before @p vpn can be inserted;
     * nullopt when the set has a free way. Candidates exclude ways
     * whose eviction is in flight (falling back to the plain LRU way
     * only when the whole set is fenced) and deprioritize governed
     * pages; the configured VictimPolicy picks among the rest.
     */
    std::optional<Victim> victimFor(Addr vpn) const;

    /** Remove @p vpn (after eviction writeback). */
    void remove(Addr vpn);

    /**
     * Victims to evict so every set keeps >= @p freeWays free ways,
     * in caller-provided storage: writes up to @p cap victims to
     * @p out and returns the TOTAL owed, which may exceed cap (grow
     * the buffer and call again; steady-state stays allocation-free
     * once the buffer has warmed up). @p out may be nullptr to count
     * only. Used by background eviction to stay ahead of fetches.
     */
    std::size_t overOccupiedVictims(std::size_t freeWays, Victim *out,
                                    std::size_t cap) const;

    /** All VFMem pages currently resident (for shutdown writeback). */
    std::vector<Addr> residentPages() const;

    std::size_t frames() const { return frames_; }
    std::size_t pagesResident() const { return resident_; }
    std::size_t numSets() const { return numSets_; }
    std::size_t associativity() const { return assoc_; }
    std::size_t capacityBytes() const { return frames_ * pageSize; }

    std::uint64_t hits() const { return hits_.value(); }
    std::uint64_t misses() const { return misses_.value(); }

    /** Name of the configured victim policy ("lru", "scan:2"...). */
    std::string victimPolicyName() const { return policy_->name(); }

    /** Tag store consistency: frames unique, prefixes well formed. */
    bool checkInvariants() const;

    /** Upper bound on associativity (sizes the stack-side candidate
     *  buffers used on the victim-selection path). */
    static constexpr std::size_t maxAssociativity = 64;

  private:
    struct Way
    {
        Addr vpn;
        std::size_t frame;
        FillOrigin origin = FillOrigin::Demand;
        Tick fillTick = 0;           ///< sim time a speculative fill
                                     ///< was issued
        std::uint32_t touches = 0;   ///< demand touches (saturating)
        bool evicting = false;       ///< eviction shipment in flight
    };

    static constexpr std::size_t npos = static_cast<std::size_t>(-1);

    std::size_t setOf(Addr vpn) const { return vpn % numSets_; }

    Way *setBase(std::size_t si) { return ways_.data() + si * assoc_; }
    const Way *setBase(std::size_t si) const
    {
        return ways_.data() + si * assoc_;
    }

    /** Index of @p vpn within its set's valid prefix, or npos. */
    std::size_t findWay(Addr vpn) const;

    /**
     * Fill @p buf with set @p si's victim candidates (MRU first,
     * fenced ways excluded, governed ways dropped when un-governed
     * alternatives exist). Returns the candidate count.
     */
    std::size_t buildCandidates(std::size_t si, VictimView *buf) const;

    /**
     * Count (and when @p out != nullptr, select through the policy)
     * the victims set @p si owes to keep @p freeWays ways free,
     * writing at most @p cap. Returns the owed count.
     */
    std::size_t setVictims(std::size_t si, std::size_t freeWays,
                           Victim *out, std::size_t cap) const;

    MetricScope scope_;
    std::size_t assoc_;
    std::size_t numSets_;
    std::size_t frames_;
    std::size_t resident_ = 0;
    /** numSets * assoc slots; set s's resident ways are the prefix
     *  [s*assoc, s*assoc + used_[s]) in recency order (MRU first);
     *  the tail slots each park one free frame number. */
    std::vector<Way> ways_;
    std::vector<std::uint32_t> used_;
    std::unique_ptr<VictimPolicy> policy_;
    std::function<bool(Addr)> dirtyProbe_;
    std::function<bool(Addr)> governedProbe_;
    Counter &hits_;
    Counter &misses_;
    Counter &victimPicks_;
    Counter &fencedFallbacks_;
};

} // namespace kona

#endif // KONA_FPGA_FMEM_CACHE_H
