#include "telemetry/metric_registry.h"

#include <bit>
#include <cmath>
#include <sstream>

namespace kona {

void
LatencyHistogram::record(double ns)
{
    if (ns < 0.0)
        ns = 0.0;
    if (count_ == 0) {
        min_ = ns;
        max_ = ns;
    } else {
        min_ = std::min(min_, ns);
        max_ = std::max(max_, ns);
    }
    auto n = static_cast<std::uint64_t>(ns);
    std::size_t idx = static_cast<std::size_t>(std::bit_width(n));
    if (idx >= numBuckets)
        idx = numBuckets - 1;
    ++buckets_[idx];
    ++count_;
    sum_ += ns;
}

double
LatencyHistogram::mean() const
{
    if (count_ == 0)
        return 0.0;
    return sum_ / static_cast<double>(count_);
}

double
LatencyHistogram::quantile(double q) const
{
    if (count_ == 0 || q <= 0.0)
        return 0.0;
    if (q > 1.0)
        q = 1.0;
    auto target = static_cast<std::uint64_t>(
        std::ceil(q * static_cast<double>(count_)));
    if (target == 0)
        target = 1;
    std::uint64_t running = 0;
    for (std::size_t i = 0; i < numBuckets; ++i) {
        running += buckets_[i];
        if (running >= target) {
            // Bucket i covers [2^(i-1), 2^i): report its upper bound,
            // clamped to the exact observed extremes.
            double ub = i >= 63 ? max_
                                : static_cast<double>((1ULL << i) - 1);
            return std::min(std::max(ub, min_), max_);
        }
    }
    return max_;
}

Counter &
MetricRegistry::counter(const std::string &name)
{
    auto &slot = counters_[name];
    if (!slot)
        slot = std::make_unique<Counter>();
    return *slot;
}

Gauge &
MetricRegistry::gauge(const std::string &name)
{
    auto &slot = gauges_[name];
    if (!slot)
        slot = std::make_unique<Gauge>();
    return *slot;
}

LatencyHistogram &
MetricRegistry::histogram(const std::string &name)
{
    auto &slot = histograms_[name];
    if (!slot)
        slot = std::make_unique<LatencyHistogram>();
    return *slot;
}

std::uint64_t
MetricRegistry::counterValue(const std::string &name) const
{
    const Counter *c = findCounter(name);
    return c == nullptr ? 0 : c->value();
}

const Counter *
MetricRegistry::findCounter(const std::string &name) const
{
    auto it = counters_.find(name);
    return it == counters_.end() ? nullptr : it->second.get();
}

const Gauge *
MetricRegistry::findGauge(const std::string &name) const
{
    auto it = gauges_.find(name);
    return it == gauges_.end() ? nullptr : it->second.get();
}

const LatencyHistogram *
MetricRegistry::findHistogram(const std::string &name) const
{
    auto it = histograms_.find(name);
    return it == histograms_.end() ? nullptr : it->second.get();
}

std::string
jsonEscape(std::string_view s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\r': out += "\\r"; break;
          case '\t': out += "\\t"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

namespace {

/** Print a double as JSON (finite; NaN/inf degrade to 0). */
void
jsonNumber(std::ostream &os, double v)
{
    if (!std::isfinite(v))
        v = 0.0;
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.6g", v);
    os << buf;
}

} // namespace

void
MetricRegistry::writeJson(std::ostream &os) const
{
    os << "{\n  \"counters\": {";
    bool first = true;
    for (const auto &[name, c] : counters_) {
        os << (first ? "\n" : ",\n") << "    \"" << jsonEscape(name)
           << "\": " << c->value();
        first = false;
    }
    os << (first ? "}" : "\n  }") << ",\n  \"gauges\": {";
    first = true;
    for (const auto &[name, g] : gauges_) {
        os << (first ? "\n" : ",\n") << "    \"" << jsonEscape(name)
           << "\": ";
        jsonNumber(os, g->value());
        first = false;
    }
    os << (first ? "}" : "\n  }") << ",\n  \"histograms\": {";
    first = true;
    for (const auto &[name, h] : histograms_) {
        os << (first ? "\n" : ",\n") << "    \"" << jsonEscape(name)
           << "\": {\"count\": " << h->count() << ", \"sum\": ";
        jsonNumber(os, h->sum());
        os << ", \"mean\": ";
        jsonNumber(os, h->mean());
        os << ", \"p50\": ";
        jsonNumber(os, h->p50());
        os << ", \"p95\": ";
        jsonNumber(os, h->p95());
        os << ", \"p99\": ";
        jsonNumber(os, h->p99());
        os << ", \"max\": ";
        jsonNumber(os, h->maxValue());
        os << "}";
        first = false;
    }
    os << (first ? "}" : "\n  }") << "\n}\n";
}

std::string
MetricRegistry::toJson() const
{
    std::ostringstream oss;
    writeJson(oss);
    return oss.str();
}

namespace {

constexpr std::uint64_t fnvOffset = 0xcbf29ce484222325ULL;
constexpr std::uint64_t fnvPrime = 0x100000001b3ULL;

void
fnvBytes(std::uint64_t &h, const void *data, std::size_t n)
{
    const auto *p = static_cast<const unsigned char *>(data);
    for (std::size_t i = 0; i < n; ++i) {
        h ^= p[i];
        h *= fnvPrime;
    }
}

void
fnvU64(std::uint64_t &h, std::uint64_t v)
{
    fnvBytes(h, &v, sizeof(v));
}

void
fnvF64(std::uint64_t &h, double v)
{
    // Hash the bit pattern; identical runs produce identical bits.
    // Normalize -0.0 so an all-zero histogram can't differ by sign.
    if (v == 0.0)
        v = 0.0;
    auto bits = std::bit_cast<std::uint64_t>(v);
    fnvBytes(h, &bits, sizeof(bits));
}

void
fnvString(std::uint64_t &h, const std::string &s)
{
    fnvBytes(h, s.data(), s.size());
    h ^= 0xff;
    h *= fnvPrime;
}

} // namespace

std::uint64_t
MetricRegistry::fingerprint() const
{
    std::uint64_t h = fnvOffset;
    for (const auto &[name, c] : counters_) {
        fnvString(h, name);
        fnvU64(h, c->value());
    }
    for (const auto &[name, g] : gauges_) {
        fnvString(h, name);
        fnvF64(h, g->value());
    }
    for (const auto &[name, hist] : histograms_) {
        fnvString(h, name);
        fnvU64(h, hist->count());
        fnvF64(h, hist->sum());
        fnvF64(h, hist->minValue());
        fnvF64(h, hist->maxValue());
        for (std::size_t i = 0; i < LatencyHistogram::numBuckets; ++i)
            fnvU64(h, hist->bucketCount(i));
    }
    return h;
}

} // namespace kona
