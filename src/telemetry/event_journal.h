/**
 * @file
 * EventJournal: a fixed-capacity, sim-timestamped ring of structured
 * rack events.
 *
 * Counters say *how many* times something happened; the journal says
 * *when and in what order* — which is what makes a chaos run
 * explainable ("node 2 went suspect at 12.4ms, quarantined at 13.1ms,
 * the epoch bumped to 5, evictions to it gave up at 13.2ms"). It records
 * the control-plane transitions that PR 6 introduced: health-state
 * changes, membership-epoch bumps, drain/join lifecycle, stale-home
 * marks, retries-exhausted give-ups, and ring-full stalls.
 *
 * Design constraints mirror TraceSession's flight recorder:
 *  - fixed capacity, preallocated at construction; record() never
 *    allocates (PR 5's --strict-alloc covers runs with the journal on);
 *  - when full, the oldest event is overwritten and a dropped count
 *    (surfaced as a registry counter) makes the truncation visible;
 *  - events are POD (kind + node + two payload words + epoch), with the
 *    JSONL writer knowing each kind's field names.
 *
 * Each event is optionally mirrored into a TraceSession as a Chrome
 * trace *instant* event so journal entries appear as markers on the
 * span timeline in chrome://tracing / Perfetto. Mirroring only happens
 * while tracing is enabled, so benches that run with tracing off pay a
 * single branch.
 */

#ifndef KONA_TELEMETRY_EVENT_JOURNAL_H
#define KONA_TELEMETRY_EVENT_JOURNAL_H

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "common/sim_clock.h"
#include "common/types.h"

namespace kona {

class Counter;
class TraceSession;

/** What happened. Payload words a/b are kind-specific (see the table
 *  in journalKindName()'s implementation / the JSONL writer). */
enum class JournalKind : std::uint8_t {
    HealthTransition, ///< a = from state, b = to state (NodeHealth values)
    NodeRemoved,      ///< permanent membership removal (failure rebuild)
    DrainStart,       ///< operator drain began (a = pages resident hint)
    JoinStart,        ///< hot-add warm-up began
    JoinComplete,     ///< hot-add node now takes placements
    StaleHomeMark,    ///< a = vpn whose copy on `node` went stale, b = mask
    RetriesExhausted, ///< eviction shipment gave up; a = batch, b = sends
    RingFullStall,    ///< submit blocked on a full pipeline ring; a = batch
};

/** Stable lowercase name of @p kind (used as the JSONL "event" field
 *  and the Chrome-trace instant name). */
const char *journalKindName(JournalKind kind);

/** Name of a NodeHealth enum value as stored in a HealthTransition
 *  payload. Mirrors Controller's state names. */
const char *journalHealthName(std::uint64_t state);

/** One journal entry. */
struct JournalEvent
{
    Tick ts = 0;        ///< sim time (ns) when recorded
    JournalKind kind = JournalKind::HealthTransition;
    NodeId node = 0;    ///< the node the event is about
    std::uint64_t a = 0;
    std::uint64_t b = 0;
    std::uint64_t epoch = 0; ///< membership epoch after the event (0 = n/a)
};

/** Fixed-size ring of JournalEvents. */
class EventJournal
{
  public:
    explicit EventJournal(std::size_t capacity = 4096);

    /** Timestamps come from @p clock (the owning runtime's app clock). */
    void setClock(const SimClock *clock) { clock_ = clock; }

    /** Mirror events as Chrome-trace instants into @p trace (only while
     *  the session is enabled). */
    void setTraceSession(TraceSession *trace) { trace_ = trace; }

    /** Surface recorded/dropped as registry counters (either may be
     *  nullptr to skip). */
    void bindCounters(Counter *recorded, Counter *dropped)
    {
        recordedCounter_ = recorded;
        droppedCounter_ = dropped;
    }

    /** Append an event; overwrites the oldest when full. Never
     *  allocates. */
    void record(JournalKind kind, NodeId node, std::uint64_t a = 0,
                std::uint64_t b = 0, std::uint64_t epoch = 0);

    std::size_t capacity() const { return ring_.size(); }
    std::size_t size() const { return size_; }
    bool empty() const { return size_ == 0; }
    std::uint64_t recorded() const { return recorded_; }
    std::uint64_t dropped() const { return dropped_; }

    /** The @p i-th retained event, oldest first. */
    const JournalEvent &event(std::size_t i) const;

    /** Retained events, oldest first. */
    std::vector<JournalEvent> snapshot() const;

    /** One JSON object per line, oldest first. */
    void writeJsonl(std::ostream &os) const;
    std::string toJsonl() const;
    bool writeJsonlFile(const std::string &path) const;

    /** Write @p events (e.g. a ChaosReport's journal copy) as JSONL. */
    static void writeEventsJsonl(std::ostream &os,
                                 const std::vector<JournalEvent> &events);

    /** One event as a JSON object (no trailing newline). */
    static void writeEventJson(std::ostream &os, const JournalEvent &e);

    void clear();

  private:
    std::vector<JournalEvent> ring_;
    std::size_t head_ = 0; ///< index of the oldest retained event
    std::size_t size_ = 0;
    std::uint64_t recorded_ = 0;
    std::uint64_t dropped_ = 0;
    const SimClock *clock_ = nullptr;
    TraceSession *trace_ = nullptr;
    Counter *recordedCounter_ = nullptr;
    Counter *droppedCounter_ = nullptr;
};

} // namespace kona

#endif // KONA_TELEMETRY_EVENT_JOURNAL_H
