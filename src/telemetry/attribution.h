/**
 * @file
 * LatencyAttribution: exact component breakdown of critical-path latency.
 *
 * The paper's whole argument is a sequence of "where did the nanoseconds
 * go" breakdowns (Figs 2/3, Table 2). A LatencyHistogram can say the p99
 * was slow; it cannot say *which component* made it slow. This class
 * closes that gap: each completed operation (a demand miss, an eviction
 * shipment) charges its end-to-end nanoseconds to a small fixed set of
 * component buckets, with an exact sum==total invariant — the buckets are
 * Tick (integer ns) deltas of the very clock that defines the total, so
 * no rounding can leak time. Whatever the instrumentation failed to
 * bracket lands in the caller-designated "other" bucket, and tests assert
 * it stays zero.
 *
 * Aggregation reuses the log2-octave machinery of LatencyHistogram: each
 * sample lands in the octave of its total, and every octave row keeps
 * per-component sums. tail() then walks octaves from the slowest down
 * until the requested fraction of samples is covered — a Table-2-style
 * "who dominated the slowest 1%" answer that is exact for the octave
 * boundary it lands on (we report the fraction actually covered).
 *
 * Two usage shapes:
 *  - begin()/charge()/end() for serial paths with one operation in
 *    flight at a time (the demand-miss path on the app clock);
 *  - record() for overlapping operations (pipelined eviction shipments)
 *    where the caller accumulates per-operation component ticks itself.
 *
 * Everything is preallocated at construction; the hot-path methods never
 * allocate (PR 5's --strict-alloc covers runs with attribution enabled).
 */

#ifndef KONA_TELEMETRY_ATTRIBUTION_H
#define KONA_TELEMETRY_ATTRIBUTION_H

#include <array>
#include <cstddef>
#include <cstdint>
#include <iosfwd>

#include "common/types.h"

namespace kona {

class MetricScope;

/** Component indices of the demand-miss critical path. The names map
 *  onto the paper's Fig 3 stages as implemented by this simulator:
 *  FmemCheck is the vFMem directory probe plus the FMem array access,
 *  Evict is the room-making victim writeback when the set is full,
 *  Queueing is fabric submission (QueuePair::post), Wire is the RDMA
 *  round trip (Poller::waitOne), Retry is outage backoff plus drain of
 *  failed posts. Unpack/prefetch-wait do not exist on this path: CL-log
 *  unpack happens on the *eviction* path (see EvictComponent) and
 *  prefetches run on the background clock, so a prefetched line is
 *  either present (FMem hit) or refetched as a normal demand miss. */
struct MissComponent
{
    enum : std::size_t {
        FmemCheck = 0,
        Evict,
        Queueing,
        Wire,
        Retry,
        Other,
        Count,
    };
    static const char *const names[Count];
};

/** Component indices of an eviction shipment's lifetime (on its own
 *  pipeline timeline, from submission to settle): Queueing is time
 *  parked behind earlier batches (wire-slot and receiver-slot waits),
 *  Wire is post + RDMA flight, Unpack is the memory node applying the
 *  CL log, Ack is the acknowledgement, Retry is NAK/timeout backoff. */
struct EvictComponent
{
    enum : std::size_t {
        Queueing = 0,
        Wire,
        Unpack,
        Ack,
        Retry,
        Other,
        Count,
    };
    static const char *const names[Count];
};

/** Exact per-component latency accounting with a tail breakdown. */
class LatencyAttribution
{
  public:
    static constexpr std::size_t maxComponents = 8;
    static constexpr std::size_t numOctaves = 64;

    /** @param names     Component names; names[count-1] should be the
     *                   residual ("other") bucket.
     *  @param count     Number of components (<= maxComponents). */
    LatencyAttribution(const char *const *names, std::size_t count);

    std::size_t components() const { return numComponents_; }
    const char *componentName(std::size_t c) const { return names_[c]; }

    // ---- serial begin/charge/end (one operation in flight) ----

    /** Start a sample at clock time @p now. Must not already be active. */
    void begin(Tick now);

    /** True between begin() and end(). */
    bool active() const { return active_; }

    /** Charge @p ns to component @p c. No-op when not active, so
     *  instrumentation points can charge unconditionally. */
    void charge(std::size_t c, Tick ns)
    {
        if (active_)
            pending_[c] += ns;
    }

    /** Finish the active sample at @p now; the gap between (now - begin)
     *  and the sum of charges goes to @p residualComponent. Returns that
     *  residual. Panics if charges exceed the total (a double-charge
     *  bug), never on residual. */
    Tick end(Tick now, std::size_t residualComponent);

    /** Abandon the active sample without recording (e.g. the operation
     *  was cut short and never completed). */
    void cancel() { active_ = false; }

    // ---- bulk record (overlapping operations) ----

    /** Record one completed operation: @p totalNs end-to-end with
     *  @p componentNs[0..components()) charged; the shortfall goes to
     *  @p residualComponent. Panics if the charges exceed the total. */
    void record(Tick totalNs, const Tick *componentNs,
                std::size_t residualComponent);

    // ---- aggregates ----

    std::uint64_t samples() const { return samples_; }
    std::uint64_t totalNs() const { return totalNs_; }
    std::uint64_t componentNs(std::size_t c) const { return compTotal_[c]; }

    /** Aggregate over the slowest samples. */
    struct TailSlice
    {
        std::uint64_t samples = 0;      ///< samples actually covered
        double fraction = 0.0;          ///< covered / all (>= requested)
        std::uint64_t totalNs = 0;      ///< end-to-end ns in the slice
        Tick minTotalNs = 0;            ///< octave floor of the slice
        std::array<std::uint64_t, maxComponents> componentNs{};
    };

    /** Component breakdown of the slowest @p fraction of samples
     *  (fraction in (0,1]; 0.01 = the slowest 1%). Octave-granular: the
     *  slice is widened to the octave boundary, and `fraction` reports
     *  the share actually covered. */
    TailSlice tail(double fraction) const;

    /** Write totals + the slowest-1% table as gauges under @p scope:
     *  <scope>.samples, <scope>.total_ns, <scope>.<comp>_ns,
     *  <scope>.p99.samples, <scope>.p99.<comp>_ns. */
    void exportGauges(MetricScope scope) const;

    /** Human-readable breakdown table (totals and slowest 1%). */
    void printTable(std::ostream &os, const char *title) const;

    void reset();

  private:
    struct OctaveRow
    {
        std::uint64_t count = 0;
        std::uint64_t totalNs = 0;
        std::array<std::uint64_t, maxComponents> compNs{};
    };

    void fold(Tick totalNs, const Tick *componentNs,
              std::size_t residualComponent);

    std::array<const char *, maxComponents> names_{};
    std::size_t numComponents_ = 0;

    bool active_ = false;
    Tick startNs_ = 0;
    std::array<Tick, maxComponents> pending_{};

    std::uint64_t samples_ = 0;
    std::uint64_t totalNs_ = 0;
    std::array<std::uint64_t, maxComponents> compTotal_{};
    std::array<OctaveRow, numOctaves> octaves_{};
};

} // namespace kona

#endif // KONA_TELEMETRY_ATTRIBUTION_H
