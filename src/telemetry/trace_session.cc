#include "telemetry/trace_session.h"

#include <algorithm>
#include <fstream>
#include <mutex>
#include <sstream>

#include "common/logging.h"
#include "telemetry/metric_registry.h"

namespace kona {

namespace {

/** Live sessions, for the crash-dump hook. */
std::mutex g_sessionsMutex;
std::vector<TraceSession *> g_sessions;

void
dumpAllFlightRecorders()
{
    std::vector<TraceSession *> sessions;
    {
        std::lock_guard<std::mutex> guard(g_sessionsMutex);
        sessions = g_sessions;
    }
    for (TraceSession *session : sessions) {
        if (!session->crashDumpPath().empty() && session->size() > 0)
            session->writeJsonFile(session->crashDumpPath());
    }
}

void
registerSession(TraceSession *session)
{
    std::lock_guard<std::mutex> guard(g_sessionsMutex);
    g_sessions.push_back(session);
    static bool hookInstalled = false;
    if (!hookInstalled) {
        hookInstalled = true;
        setCrashHook(&dumpAllFlightRecorders);
    }
}

void
unregisterSession(TraceSession *session)
{
    std::lock_guard<std::mutex> guard(g_sessionsMutex);
    g_sessions.erase(
        std::remove(g_sessions.begin(), g_sessions.end(), session),
        g_sessions.end());
}

} // namespace

TraceSession::TraceSession(std::size_t capacity)
    : capacity_(capacity == 0 ? 1 : capacity)
{
    registerSession(this);
}

TraceSession::~TraceSession()
{
    unregisterSession(this);
}

void
TraceSession::setCapacity(std::size_t capacity)
{
    capacity_ = capacity == 0 ? 1 : capacity;
    clear();
}

void
TraceSession::clear()
{
    events_.clear();
    events_.shrink_to_fit();
    head_ = 0;
    dropped_ = 0;
}

void
TraceSession::record(TraceEvent ev)
{
    if (events_.size() < capacity_) {
        events_.push_back(std::move(ev));
        return;
    }
    // Flight recorder: overwrite the oldest event.
    events_[head_] = std::move(ev);
    head_ = (head_ + 1) % capacity_;
    ++dropped_;
    if (droppedCounter_ != nullptr)
        droppedCounter_->add();
}

void
TraceSession::setCrashDumpPath(std::string path)
{
    crashDumpPath_ = std::move(path);
}

std::vector<TraceEvent>
TraceSession::snapshot() const
{
    std::vector<TraceEvent> out;
    out.reserve(events_.size());
    for (std::size_t i = 0; i < events_.size(); ++i)
        out.push_back(events_[(head_ + i) % events_.size()]);
    return out;
}

namespace {

/** Chrome trace timestamps are in microseconds. */
void
writeMicros(std::ostream &os, Tick ns)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%llu.%03llu",
                  static_cast<unsigned long long>(ns / 1000),
                  static_cast<unsigned long long>(ns % 1000));
    os << buf;
}

void
writeThreadName(std::ostream &os, std::uint32_t tid,
                const std::string &name, bool &first)
{
    os << (first ? "\n" : ",\n")
       << "    {\"name\": \"thread_name\", \"ph\": \"M\", \"pid\": 1, "
          "\"tid\": " << tid << ", \"args\": {\"name\": \""
       << jsonEscape(name) << "\"}}";
    first = false;
}

} // namespace

void
TraceSession::writeJson(std::ostream &os) const
{
    os << "{\n  \"displayTimeUnit\": \"ns\",\n  \"traceEvents\": [";
    bool first = true;

    // Metadata: name the process and every sim-thread lane we used.
    os << (first ? "\n" : ",\n")
       << "    {\"name\": \"process_name\", \"ph\": \"M\", \"pid\": 1, "
          "\"tid\": 0, \"args\": {\"name\": \"kona-sim\"}}";
    first = false;
    std::vector<std::uint32_t> tids;
    for (const TraceEvent &ev : events_) {
        if (std::find(tids.begin(), tids.end(), ev.tid) == tids.end())
            tids.push_back(ev.tid);
    }
    std::sort(tids.begin(), tids.end());
    for (std::uint32_t tid : tids) {
        std::string name;
        if (tid == traceAppThread)
            name = "app critical path";
        else if (tid == traceBackgroundThread)
            name = "background";
        else if (tid >= 100)
            name = "memory node " + std::to_string(tid - 100) +
                   " receiver";
        else
            name = "sim thread " + std::to_string(tid);
        writeThreadName(os, tid, name, first);
    }

    for (const TraceEvent &ev : snapshot()) {
        os << ",\n    {\"name\": \"" << jsonEscape(ev.name)
           << "\", \"cat\": \"" << jsonEscape(ev.cat) << "\", \"ph\": \""
           << ev.ph << "\", \"ts\": ";
        writeMicros(os, ev.ts);
        if (ev.ph == 'i') {
            // Instant events carry a scope instead of a duration;
            // "t" pins the marker to its thread lane.
            os << ", \"s\": \"t\"";
        } else {
            os << ", \"dur\": ";
            writeMicros(os, ev.dur);
        }
        os << ", \"pid\": 1, \"tid\": " << ev.tid;
        if (!ev.args.empty()) {
            os << ", \"args\": {";
            bool firstArg = true;
            for (const TraceArg &arg : ev.args) {
                if (!firstArg)
                    os << ", ";
                os << "\"" << jsonEscape(arg.key) << "\": ";
                if (arg.isString)
                    os << "\"" << jsonEscape(arg.value) << "\"";
                else
                    os << arg.value;
                firstArg = false;
            }
            os << "}";
        }
        os << "}";
    }
    os << "\n  ],\n  \"otherData\": {\"droppedEvents\": " << dropped_
       << "}\n}\n";
}

std::string
TraceSession::toJson() const
{
    std::ostringstream oss;
    writeJson(oss);
    return oss.str();
}

bool
TraceSession::writeJsonFile(const std::string &path) const
{
    std::ofstream out(path);
    if (!out) {
        warn("cannot open trace output file ", path);
        return false;
    }
    writeJson(out);
    out.flush();
    if (!out) {
        warn("short write to trace output file ", path);
        return false;
    }
    return true;
}

} // namespace kona
