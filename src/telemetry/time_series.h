/**
 * @file
 * TimeSeriesSampler: sim-time windowed snapshots of a MetricRegistry.
 *
 * The PR 2 registry answers "what was the total at the end of the run";
 * this sampler answers "what happened over time": every `intervalNs` of
 * *simulated* time it closes a window and records, for every metric that
 * existed at attach() time,
 *  - counters:   the delta accumulated during the window,
 *  - gauges:     the value at the window's close,
 *  - histograms: the count and sum deltas (rates and mean latency per
 *                window are then derivable; quantiles are not, which is
 *                why histograms also export sum in --metrics-json).
 *
 * Windows are variable-width with an at-least-interval guarantee: the
 * sampler is ticked from the runtime's access loop (onTick), and a
 * window closes on the first tick at or past its deadline. Sim time can
 * jump by milliseconds on a single outage backoff, so fixed-width
 * windows would either flood (one empty window per interval skipped) or
 * misattribute; instead each window records its actual [start, end)
 * bounds and deltas are exact for those bounds.
 *
 * Steady state is allocation-free, enforced by bench_simspeed
 * --strict-alloc with sampling always on: attach() caches stable metric
 * pointers (registry metrics never move once created) and preallocates
 * the flat value ring; onTick() is a compare, and closing a window
 * writes into the ring. When the ring is full the oldest window is
 * dropped (droppedWindows() counts them) — a flight recorder, like the
 * trace session. Metrics created *after* attach() (e.g. a lazily
 * created QP scope) are not sampled until the next attach(); attach
 * after warm-up, or call attach() again to rescan.
 */

#ifndef KONA_TELEMETRY_TIME_SERIES_H
#define KONA_TELEMETRY_TIME_SERIES_H

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <memory>
#include <string>
#include <vector>

#include "common/types.h"

namespace kona {

class Counter;
class Gauge;
class LatencyHistogram;
class MetricRegistry;

/** Windowed sampler over a registry's metrics. */
class TimeSeriesSampler
{
  public:
    /** @param intervalNs Minimum simulated window width.
     *  @param capacity   Window ring size (oldest dropped when full). */
    explicit TimeSeriesSampler(Tick intervalNs = 1'000'000,
                               std::size_t capacity = 4096);

    /** Snapshot @p registry's current metric set, preallocate the ring,
     *  and start the first window at @p start. May be called again to
     *  rescan for new metrics (existing windows are kept; new columns
     *  start from the current metric values). */
    void attach(std::shared_ptr<MetricRegistry> registry, Tick start = 0);

    bool attached() const { return registry_ != nullptr; }
    Tick intervalNs() const { return intervalNs_; }

    /** Tick from the hot path; closes a window when its deadline has
     *  passed. Inline compare when it hasn't. */
    void onTick(Tick now)
    {
        if (registry_ != nullptr && now >= nextCloseNs_)
            closeWindow(now);
    }

    /** Close the trailing partial window (if any sim time elapsed). */
    void finish(Tick now);

    // ---- results ----

    std::size_t windows() const { return count_; }
    std::size_t columns() const { return columnNames_.size(); }
    std::uint64_t droppedWindows() const { return dropped_; }

    const std::string &columnName(std::size_t c) const
    {
        return columnNames_[c];
    }
    Tick windowStartNs(std::size_t w) const;
    Tick windowEndNs(std::size_t w) const;

    /** Value of column @p c in retained window @p w (oldest first). */
    double value(std::size_t w, std::size_t c) const;

    /** Column index of @p name, or columns() when absent. */
    std::size_t columnIndex(const std::string &name) const;

    /** CSV: header "window_start_ns,window_end_ns,<columns...>", one
     *  row per retained window. */
    void writeCsv(std::ostream &os) const;

    /** JSON: {"interval_ns", "dropped_windows", "columns", "windows":
     *  [{"start_ns", "end_ns", "values": [...]}]}. */
    void writeJson(std::ostream &os) const;

    /** Write by extension: ".json" => JSON, anything else CSV. */
    bool writeFile(const std::string &path) const;

  private:
    void closeWindow(Tick now);

    Tick intervalNs_;
    std::size_t capacity_;

    std::shared_ptr<MetricRegistry> registry_;

    // Sampled metric set (parallel to the column layout: counters,
    // then gauges, then histogram count/sum pairs).
    std::vector<const Counter *> counters_;
    std::vector<const Gauge *> gauges_;
    std::vector<const LatencyHistogram *> histograms_;
    std::vector<std::string> columnNames_;
    std::vector<double> prev_; ///< last-close value of delta columns

    // Window ring: flat values (capacity_ x columns), bounds per row.
    std::vector<double> values_;
    std::vector<Tick> starts_;
    std::vector<Tick> ends_;
    std::size_t head_ = 0; ///< index of the oldest retained window
    std::size_t count_ = 0;
    std::uint64_t dropped_ = 0;

    Tick windowStartNs_ = 0;
    Tick nextCloseNs_ = ~Tick{0};
};

} // namespace kona

#endif // KONA_TELEMETRY_TIME_SERIES_H
