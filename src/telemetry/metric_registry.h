/**
 * @file
 * MetricRegistry: the one place every component's counters, gauges and
 * latency histograms live.
 *
 * The paper's argument is a sequence of nanosecond breakdowns (Figs
 * 2/3/7-11, Table 2); reproducing it requires decomposable telemetry,
 * not private struct fields scattered across components. Components
 * register named metrics through a hierarchically-scoped MetricScope
 * ("kona.fpga.remote_fetches"); the legacy *Stats snapshot structs are
 * assembled as views over the same registry storage, so the two can
 * never diverge.
 *
 * Metrics are get-or-create by full dotted name: asking twice for the
 * same name returns the same object with a stable address, which is
 * how two code paths deliberately share one counter (e.g. the runtime
 * retry totals feeding both RuntimeStats and ReliabilityStats).
 */

#ifndef KONA_TELEMETRY_METRIC_REGISTRY_H
#define KONA_TELEMETRY_METRIC_REGISTRY_H

#include <map>
#include <memory>
#include <ostream>
#include <string>
#include <string_view>

#include "common/stats.h"

namespace kona {

/** A settable scalar (doubles as an accumulating sum for breakdowns). */
class Gauge
{
  public:
    void set(double v) { value_ = v; }
    void add(double d) { value_ += d; }
    double value() const { return value_; }
    void reset() { value_ = 0.0; }

  private:
    double value_ = 0.0;
};

/**
 * Log-bucketed latency histogram: values in nanoseconds fall into
 * power-of-two buckets, so quantiles are exact to within one octave
 * while recording stays O(1) with a fixed 64-slot footprint.
 *
 * quantile(q) returns the upper bound of the bucket holding the q-th
 * sample, clamped to the exact observed maximum — a conservative
 * (never-understated) estimate, which is the right bias for tail
 * latency reporting.
 */
class LatencyHistogram
{
  public:
    void record(double ns);

    std::uint64_t count() const { return count_; }
    double sum() const { return sum_; }
    double mean() const;
    double maxValue() const { return count_ == 0 ? 0.0 : max_; }
    double minValue() const { return count_ == 0 ? 0.0 : min_; }

    /** Conservative quantile for q in (0, 1]; 0 when empty. */
    double quantile(double q) const;

    double p50() const { return quantile(0.50); }
    double p95() const { return quantile(0.95); }
    double p99() const { return quantile(0.99); }

    /** Samples in bucket @p i, covering values in [2^(i-1), 2^i). */
    std::uint64_t bucketCount(std::size_t i) const
    {
        return i < numBuckets ? buckets_[i] : 0;
    }

    static constexpr std::size_t numBuckets = 64;

  private:
    std::uint64_t buckets_[numBuckets] = {};
    std::uint64_t count_ = 0;
    double sum_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
};

/** Registry of named metrics. Names are dotted paths; see MetricScope. */
class MetricRegistry
{
  public:
    /** Get-or-create the counter/gauge/histogram named @p name. */
    Counter &counter(const std::string &name);
    Gauge &gauge(const std::string &name);
    LatencyHistogram &histogram(const std::string &name);

    /** Value of counter @p name, or 0 when never registered. */
    std::uint64_t counterValue(const std::string &name) const;

    /** Lookup without creating; nullptr when absent. */
    const Counter *findCounter(const std::string &name) const;
    const Gauge *findGauge(const std::string &name) const;
    const LatencyHistogram *findHistogram(const std::string &name) const;

    std::size_t size() const
    {
        return counters_.size() + gauges_.size() + histograms_.size();
    }

    const std::map<std::string, std::unique_ptr<Counter>> &
    counters() const
    {
        return counters_;
    }
    const std::map<std::string, std::unique_ptr<Gauge>> &gauges() const
    {
        return gauges_;
    }
    const std::map<std::string, std::unique_ptr<LatencyHistogram>> &
    histograms() const
    {
        return histograms_;
    }

    /**
     * Machine-readable export: one JSON object with "counters",
     * "gauges" and "histograms" sections, names sorted, histograms
     * summarized as count/sum/mean/p50/p95/p99/max (count, sum and max
     * re-aggregate exactly across runs; the quantiles do not).
     */
    void writeJson(std::ostream &os) const;
    std::string toJson() const;

    /**
     * FNV-1a hash over every metric in name order: counter values,
     * gauge bit patterns, and full histogram state (buckets, count,
     * sum, min, max). Two runs that executed bit-identically produce
     * equal fingerprints; the parallel/sequential identity tests
     * compare this instead of diffing thousands of metrics.
     */
    std::uint64_t fingerprint() const;

  private:
    std::map<std::string, std::unique_ptr<Counter>> counters_;
    std::map<std::string, std::unique_ptr<Gauge>> gauges_;
    std::map<std::string, std::unique_ptr<LatencyHistogram>> histograms_;
};

/**
 * A (registry, prefix) pair components register their metrics through.
 * scope.sub("fpga").counter("remote_fetches") registers the counter
 * "<prefix>.fpga.remote_fetches".
 *
 * A default-constructed scope owns a fresh private registry, so
 * components built standalone (unit tests, ad-hoc tools) need no
 * wiring; passing one shared registry through the scopes of a whole
 * stack is what produces a unified export.
 */
class MetricScope
{
  public:
    /** A scope over a fresh private registry, empty prefix. */
    MetricScope() : registry_(std::make_shared<MetricRegistry>()) {}

    MetricScope(std::shared_ptr<MetricRegistry> registry,
                std::string prefix = "")
        : registry_(std::move(registry)), prefix_(std::move(prefix))
    {}

    /** Child scope: prefix extended with ".name". */
    MetricScope sub(std::string_view name) const
    {
        return MetricScope(registry_, qualify(name));
    }

    /** The full dotted name of @p name under this scope. */
    std::string qualify(std::string_view name) const
    {
        if (prefix_.empty())
            return std::string(name);
        std::string full = prefix_;
        full += '.';
        full += name;
        return full;
    }

    Counter &counter(std::string_view name) const
    {
        return registry_->counter(qualify(name));
    }
    Gauge &gauge(std::string_view name) const
    {
        return registry_->gauge(qualify(name));
    }
    LatencyHistogram &histogram(std::string_view name) const
    {
        return registry_->histogram(qualify(name));
    }

    const std::shared_ptr<MetricRegistry> &registry() const
    {
        return registry_;
    }
    const std::string &prefix() const { return prefix_; }

  private:
    std::shared_ptr<MetricRegistry> registry_;
    std::string prefix_;
};

/** Escape @p s for inclusion in a JSON string literal. */
std::string jsonEscape(std::string_view s);

} // namespace kona

#endif // KONA_TELEMETRY_METRIC_REGISTRY_H
