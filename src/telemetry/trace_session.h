/**
 * @file
 * TraceSession + Span: sim-time span tracing for the miss and eviction
 * critical paths, exported as Chrome trace-event JSON (loadable in
 * Perfetto / chrome://tracing).
 *
 * Spans are RAII: construct one against a SimClock at the top of a
 * path stage, attach args (address, bytes, dirty lines, retry count),
 * and its destructor records a complete ("ph":"X") event spanning the
 * simulated nanoseconds the stage charged to that clock. Stages on the
 * same clock nest naturally, so Perfetto renders the miss path as a
 * tree: access.miss -> fpga.serve_line -> fpga.fetch_page -> rdma.read.
 *
 * The session holds a bounded flight-recorder ring buffer: when full,
 * the oldest events are dropped (dropped() counts them), so tracing a
 * long run keeps the most recent window — exactly what you want when
 * panic()/fatal() fires and the ring is dumped automatically (see
 * setCrashDumpPath).
 *
 * Tracing is off by default; a disabled session makes Span
 * construction a pointer check with no allocation, so instrumented hot
 * paths stay hot.
 */

#ifndef KONA_TELEMETRY_TRACE_SESSION_H
#define KONA_TELEMETRY_TRACE_SESSION_H

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

#include "common/sim_clock.h"
#include "common/types.h"

namespace kona {

class Counter;

/** Logical sim-thread ids used as Chrome trace "tid"s. */
constexpr std::uint32_t traceAppThread = 1;        ///< app critical path
constexpr std::uint32_t traceBackgroundThread = 2; ///< background pumps

/** Per-memory-node receiver threads. */
inline std::uint32_t
traceNodeThread(NodeId node)
{
    return 100 + static_cast<std::uint32_t>(node);
}

/** One argument attached to a span. */
struct TraceArg
{
    std::string key;
    std::string value;  ///< pre-rendered; quoted iff @ref isString
    bool isString = false;
};

/** One trace event: a complete span ("ph":"X", the default) or an
 *  instant marker ("ph":"i", used by the event journal mirror). Times
 *  in simulated ns. */
struct TraceEvent
{
    const char *name = "";  ///< string literal (not owned)
    const char *cat = "";   ///< string literal (not owned)
    Tick ts = 0;
    Tick dur = 0;           ///< ignored for instants
    std::uint32_t tid = traceAppThread;
    char ph = 'X';          ///< 'X' complete span, 'i' instant
    std::vector<TraceArg> args;
};

/** Bounded sim-time trace recorder with crash dumping. */
class TraceSession
{
  public:
    /** @param capacity Flight-recorder ring size, in events. */
    explicit TraceSession(std::size_t capacity = 1 << 16);
    ~TraceSession();

    TraceSession(const TraceSession &) = delete;
    TraceSession &operator=(const TraceSession &) = delete;

    /** Master switch; spans against a disabled session are free. */
    void enable(bool on = true) { enabled_ = on; }
    bool enabled() const { return enabled_; }

    /** Resize the ring (drops recorded events). */
    void setCapacity(std::size_t capacity);
    std::size_t capacity() const { return capacity_; }

    /** Append an event, dropping the oldest when the ring is full. */
    void record(TraceEvent ev);

    std::size_t size() const { return events_.size(); }
    std::uint64_t dropped() const { return dropped_; }
    void clear();

    /** Mirror the dropped-event count into a registry counter so
     *  flight-recorder truncation is visible instead of silent. */
    void bindDroppedCounter(Counter *counter)
    {
        droppedCounter_ = counter;
    }

    /**
     * Dump the ring to @p path automatically when panic() or fatal()
     * fires (the crash hook covers every live session that set a
     * path). Empty string disables.
     */
    void setCrashDumpPath(std::string path);
    const std::string &crashDumpPath() const { return crashDumpPath_; }

    /** Events in record order (oldest first). */
    std::vector<TraceEvent> snapshot() const;

    /** Chrome trace-event JSON ({"traceEvents": [...]}). */
    void writeJson(std::ostream &os) const;
    std::string toJson() const;

    /** Write JSON to @p path; warns and returns false on I/O error. */
    bool writeJsonFile(const std::string &path) const;

  private:
    bool enabled_ = false;
    std::size_t capacity_;
    std::size_t head_ = 0;          ///< index of the oldest event
    std::vector<TraceEvent> events_; ///< ring storage (<= capacity_)
    std::uint64_t dropped_ = 0;
    Counter *droppedCounter_ = nullptr;
    std::string crashDumpPath_;
};

/**
 * RAII span over a SimClock: start = clock at construction, duration =
 * simulated time the guarded scope charged to the clock.
 */
class Span
{
  public:
    /**
     * @param session Recording session (nullptr / disabled = no-op).
     * @param clock The sim clock this path stage charges.
     * @param name Span name — must be a string literal.
     * @param cat Category (e.g. "miss", "evict") — string literal.
     * @param tid Logical sim-thread lane for Perfetto rendering.
     */
    Span(TraceSession *session, const SimClock &clock, const char *name,
         const char *cat, std::uint32_t tid = traceAppThread)
    {
        if (session != nullptr && session->enabled()) {
            session_ = session;
            clock_ = &clock;
            event_.name = name;
            event_.cat = cat;
            event_.tid = tid;
            event_.ts = clock.now();
        }
    }

    ~Span() { end(); }

    /** Close the span now instead of at scope exit. */
    void
    end()
    {
        if (session_ != nullptr) {
            event_.dur = clock_->now() - event_.ts;
            session_->record(std::move(event_));
            session_ = nullptr;
        }
    }

    Span(const Span &) = delete;
    Span &operator=(const Span &) = delete;

    /** Whether this span is recording (cheap early-out for args). */
    bool active() const { return session_ != nullptr; }

    void
    arg(const char *key, std::uint64_t value)
    {
        if (active())
            event_.args.push_back({key, std::to_string(value), false});
    }

    void
    arg(const char *key, std::string value)
    {
        if (active())
            event_.args.push_back({key, std::move(value), true});
    }

  private:
    TraceSession *session_ = nullptr;
    const SimClock *clock_ = nullptr;
    TraceEvent event_;
};

} // namespace kona

#endif // KONA_TELEMETRY_TRACE_SESSION_H
