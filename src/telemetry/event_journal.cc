#include "telemetry/event_journal.h"

#include <fstream>
#include <ostream>
#include <sstream>

#include "common/logging.h"
#include "common/stats.h"
#include "telemetry/trace_session.h"

namespace kona {

const char *
journalKindName(JournalKind kind)
{
    switch (kind) {
    case JournalKind::HealthTransition:
        return "health_transition";
    case JournalKind::NodeRemoved:
        return "node_removed";
    case JournalKind::DrainStart:
        return "drain_start";
    case JournalKind::JoinStart:
        return "join_start";
    case JournalKind::JoinComplete:
        return "join_complete";
    case JournalKind::StaleHomeMark:
        return "stale_home_mark";
    case JournalKind::RetriesExhausted:
        return "retries_exhausted";
    case JournalKind::RingFullStall:
        return "ring_full_stall";
    }
    return "unknown";
}

const char *
journalHealthName(std::uint64_t state)
{
    // Mirrors rack::NodeHealth's declaration order (Controller keeps
    // the authoritative copy; rack_test pins the two together).
    static const char *const names[] = {
        "healthy",    "suspect", "quarantined", "readmitted",
        "joining",    "draining", "failed",
    };
    constexpr std::uint64_t n = sizeof(names) / sizeof(names[0]);
    return state < n ? names[state] : "unknown";
}

EventJournal::EventJournal(std::size_t capacity)
{
    ring_.resize(capacity == 0 ? 1 : capacity);
}

void
EventJournal::record(JournalKind kind, NodeId node, std::uint64_t a,
                     std::uint64_t b, std::uint64_t epoch)
{
    JournalEvent ev;
    ev.ts = clock_ != nullptr ? clock_->now() : 0;
    ev.kind = kind;
    ev.node = node;
    ev.a = a;
    ev.b = b;
    ev.epoch = epoch;

    if (size_ < ring_.size()) {
        ring_[(head_ + size_) % ring_.size()] = ev;
        ++size_;
    } else {
        ring_[head_] = ev;
        head_ = (head_ + 1) % ring_.size();
        ++dropped_;
        if (droppedCounter_ != nullptr)
            droppedCounter_->add();
    }
    ++recorded_;
    if (recordedCounter_ != nullptr)
        recordedCounter_->add();

    // Mirror as a Chrome-trace instant so journal entries show up as
    // markers on the span timeline. Allocates (trace args), so only
    // when someone is actually tracing.
    if (trace_ != nullptr && trace_->enabled()) {
        TraceEvent tev;
        tev.name = journalKindName(kind);
        tev.cat = "journal";
        tev.ts = ev.ts;
        tev.tid = traceAppThread;
        tev.ph = 'i';
        tev.args.push_back({"node", std::to_string(node), false});
        if (kind == JournalKind::HealthTransition) {
            tev.args.push_back({"from", journalHealthName(a), true});
            tev.args.push_back({"to", journalHealthName(b), true});
        }
        if (epoch != 0)
            tev.args.push_back({"epoch", std::to_string(epoch), false});
        trace_->record(std::move(tev));
    }
}

const JournalEvent &
EventJournal::event(std::size_t i) const
{
    KONA_ASSERT(i < size_, "EventJournal::event(", i, ") of ", size_);
    return ring_[(head_ + i) % ring_.size()];
}

std::vector<JournalEvent>
EventJournal::snapshot() const
{
    std::vector<JournalEvent> out;
    out.reserve(size_);
    for (std::size_t i = 0; i < size_; ++i)
        out.push_back(event(i));
    return out;
}

void
EventJournal::writeEventJson(std::ostream &os, const JournalEvent &e)
{
    os << "{\"ts_ns\": " << e.ts << ", \"event\": \""
       << journalKindName(e.kind) << "\", \"node\": " << e.node;
    switch (e.kind) {
    case JournalKind::HealthTransition:
        os << ", \"from\": \"" << journalHealthName(e.a) << "\", \"to\": \""
           << journalHealthName(e.b) << "\"";
        break;
    case JournalKind::StaleHomeMark:
        os << ", \"vpn\": " << e.a << ", \"mask\": " << e.b;
        break;
    case JournalKind::RetriesExhausted:
        os << ", \"batch\": " << e.a << ", \"sends\": " << e.b;
        break;
    case JournalKind::RingFullStall:
        os << ", \"batch\": " << e.a;
        break;
    case JournalKind::NodeRemoved:
    case JournalKind::DrainStart:
    case JournalKind::JoinStart:
    case JournalKind::JoinComplete:
        break;
    }
    if (e.epoch != 0)
        os << ", \"epoch\": " << e.epoch;
    os << "}";
}

void
EventJournal::writeEventsJsonl(std::ostream &os,
                               const std::vector<JournalEvent> &events)
{
    for (const JournalEvent &e : events) {
        writeEventJson(os, e);
        os << "\n";
    }
}

void
EventJournal::writeJsonl(std::ostream &os) const
{
    for (std::size_t i = 0; i < size_; ++i) {
        writeEventJson(os, event(i));
        os << "\n";
    }
}

std::string
EventJournal::toJsonl() const
{
    std::ostringstream oss;
    writeJsonl(oss);
    return oss.str();
}

bool
EventJournal::writeJsonlFile(const std::string &path) const
{
    std::ofstream out(path);
    if (!out) {
        warn("cannot open events output file ", path);
        return false;
    }
    writeJsonl(out);
    out.flush();
    if (!out) {
        warn("short write to events output file ", path);
        return false;
    }
    return true;
}

void
EventJournal::clear()
{
    head_ = 0;
    size_ = 0;
    recorded_ = 0;
    dropped_ = 0;
}

} // namespace kona
