#include "telemetry/time_series.h"

#include <cstdio>
#include <fstream>
#include <ostream>

#include "common/logging.h"
#include "telemetry/metric_registry.h"

namespace kona {

namespace {

/** Compact numeric rendering shared by the CSV and JSON writers. */
void
writeNumber(std::ostream &os, double v)
{
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.10g", v);
    os << buf;
}

} // namespace

TimeSeriesSampler::TimeSeriesSampler(Tick intervalNs, std::size_t capacity)
    : intervalNs_(intervalNs == 0 ? 1 : intervalNs),
      capacity_(capacity == 0 ? 1 : capacity)
{}

void
TimeSeriesSampler::attach(std::shared_ptr<MetricRegistry> registry,
                          Tick start)
{
    KONA_ASSERT(registry != nullptr, "TimeSeriesSampler: null registry");
    registry_ = std::move(registry);

    counters_.clear();
    gauges_.clear();
    histograms_.clear();
    columnNames_.clear();

    for (const auto &[name, counter] : registry_->counters()) {
        counters_.push_back(counter.get());
        columnNames_.push_back(name);
    }
    for (const auto &[name, gauge] : registry_->gauges()) {
        gauges_.push_back(gauge.get());
        columnNames_.push_back(name);
    }
    for (const auto &[name, hist] : registry_->histograms()) {
        histograms_.push_back(hist.get());
        columnNames_.push_back(name + ".count");
        columnNames_.push_back(name + ".sum");
    }

    const std::size_t cols = columnNames_.size();
    prev_.assign(cols, 0.0);
    std::size_t c = 0;
    for (const Counter *counter : counters_)
        prev_[c++] = static_cast<double>(counter->value());
    c += gauges_.size(); // gauges are sampled, not differenced
    for (const LatencyHistogram *hist : histograms_) {
        prev_[c++] = static_cast<double>(hist->count());
        prev_[c++] = hist->sum();
    }

    values_.assign(capacity_ * cols, 0.0);
    starts_.assign(capacity_, 0);
    ends_.assign(capacity_, 0);
    head_ = 0;
    count_ = 0;
    dropped_ = 0;
    windowStartNs_ = start;
    nextCloseNs_ = start + intervalNs_;
}

void
TimeSeriesSampler::closeWindow(Tick now)
{
    const std::size_t cols = columnNames_.size();
    std::size_t row;
    if (count_ < capacity_) {
        row = (head_ + count_) % capacity_;
        ++count_;
    } else {
        row = head_;
        head_ = (head_ + 1) % capacity_;
        ++dropped_;
    }

    double *out = values_.data() + row * cols;
    std::size_t c = 0;
    for (const Counter *counter : counters_) {
        const double cur = static_cast<double>(counter->value());
        out[c] = cur - prev_[c];
        prev_[c] = cur;
        ++c;
    }
    for (const Gauge *gauge : gauges_)
        out[c++] = gauge->value();
    for (const LatencyHistogram *hist : histograms_) {
        const double curCount = static_cast<double>(hist->count());
        out[c] = curCount - prev_[c];
        prev_[c] = curCount;
        ++c;
        const double curSum = hist->sum();
        out[c] = curSum - prev_[c];
        prev_[c] = curSum;
        ++c;
    }

    starts_[row] = windowStartNs_;
    ends_[row] = now;
    windowStartNs_ = now;
    nextCloseNs_ = now + intervalNs_;
}

void
TimeSeriesSampler::finish(Tick now)
{
    if (registry_ != nullptr && now > windowStartNs_)
        closeWindow(now);
}

Tick
TimeSeriesSampler::windowStartNs(std::size_t w) const
{
    KONA_ASSERT(w < count_, "window ", w, " of ", count_);
    return starts_[(head_ + w) % capacity_];
}

Tick
TimeSeriesSampler::windowEndNs(std::size_t w) const
{
    KONA_ASSERT(w < count_, "window ", w, " of ", count_);
    return ends_[(head_ + w) % capacity_];
}

double
TimeSeriesSampler::value(std::size_t w, std::size_t c) const
{
    KONA_ASSERT(w < count_ && c < columnNames_.size(),
                "sample (", w, ", ", c, ") out of range");
    return values_[((head_ + w) % capacity_) * columnNames_.size() + c];
}

std::size_t
TimeSeriesSampler::columnIndex(const std::string &name) const
{
    for (std::size_t c = 0; c < columnNames_.size(); ++c) {
        if (columnNames_[c] == name)
            return c;
    }
    return columnNames_.size();
}

void
TimeSeriesSampler::writeCsv(std::ostream &os) const
{
    os << "window_start_ns,window_end_ns";
    for (const std::string &name : columnNames_)
        os << "," << name;
    os << "\n";
    for (std::size_t w = 0; w < count_; ++w) {
        os << windowStartNs(w) << "," << windowEndNs(w);
        for (std::size_t c = 0; c < columnNames_.size(); ++c) {
            os << ",";
            writeNumber(os, value(w, c));
        }
        os << "\n";
    }
}

void
TimeSeriesSampler::writeJson(std::ostream &os) const
{
    os << "{\n  \"interval_ns\": " << intervalNs_
       << ",\n  \"dropped_windows\": " << dropped_
       << ",\n  \"columns\": [";
    for (std::size_t c = 0; c < columnNames_.size(); ++c) {
        os << (c == 0 ? "" : ", ") << "\"" << jsonEscape(columnNames_[c])
           << "\"";
    }
    os << "],\n  \"windows\": [";
    for (std::size_t w = 0; w < count_; ++w) {
        os << (w == 0 ? "\n" : ",\n") << "    {\"start_ns\": "
           << windowStartNs(w) << ", \"end_ns\": " << windowEndNs(w)
           << ", \"values\": [";
        for (std::size_t c = 0; c < columnNames_.size(); ++c) {
            if (c != 0)
                os << ", ";
            writeNumber(os, value(w, c));
        }
        os << "]}";
    }
    os << "\n  ]\n}\n";
}

bool
TimeSeriesSampler::writeFile(const std::string &path) const
{
    std::ofstream out(path);
    if (!out) {
        warn("cannot open timeseries output file ", path);
        return false;
    }
    const bool json =
        path.size() >= 5 && path.compare(path.size() - 5, 5, ".json") == 0;
    if (json)
        writeJson(out);
    else
        writeCsv(out);
    out.flush();
    if (!out) {
        warn("short write to timeseries output file ", path);
        return false;
    }
    return true;
}

} // namespace kona
