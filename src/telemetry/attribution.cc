#include "telemetry/attribution.h"

#include <bit>
#include <iomanip>
#include <ostream>

#include "common/logging.h"
#include "telemetry/metric_registry.h"

namespace kona {

const char *const MissComponent::names[MissComponent::Count] = {
    "fmem_check", "evict", "queueing", "wire", "retry", "other",
};

const char *const EvictComponent::names[EvictComponent::Count] = {
    "queueing", "wire", "unpack", "ack", "retry", "other",
};

LatencyAttribution::LatencyAttribution(const char *const *names,
                                       std::size_t count)
{
    KONA_ASSERT(count > 0 && count <= maxComponents,
                "LatencyAttribution: bad component count ", count);
    numComponents_ = count;
    for (std::size_t c = 0; c < count; ++c)
        names_[c] = names[c];
}

void
LatencyAttribution::begin(Tick now)
{
    // A sample may still be open if the previous miss raised (fatal()
    // throws in tests, unwinding past end()); discard it rather than
    // poison the next sample.
    active_ = true;
    startNs_ = now;
    pending_.fill(0);
}

Tick
LatencyAttribution::end(Tick now, std::size_t residualComponent)
{
    KONA_ASSERT(active_, "LatencyAttribution::end while inactive");
    active_ = false;
    KONA_ASSERT(now >= startNs_, "LatencyAttribution: clock ran backwards");
    const Tick total = now - startNs_;

    Tick charged = 0;
    for (std::size_t c = 0; c < numComponents_; ++c)
        charged += pending_[c];
    KONA_ASSERT(charged <= total,
                "LatencyAttribution: components (", charged,
                " ns) exceed end-to-end total (", total, " ns)");
    const Tick residual = total - charged;
    pending_[residualComponent] += residual;
    fold(total, pending_.data(), residualComponent);
    return residual;
}

void
LatencyAttribution::record(Tick totalNs, const Tick *componentNs,
                           std::size_t residualComponent)
{
    Tick charged = 0;
    for (std::size_t c = 0; c < numComponents_; ++c)
        charged += componentNs[c];
    KONA_ASSERT(charged <= totalNs,
                "LatencyAttribution: components (", charged,
                " ns) exceed end-to-end total (", totalNs, " ns)");
    pending_.fill(0);
    for (std::size_t c = 0; c < numComponents_; ++c)
        pending_[c] = componentNs[c];
    pending_[residualComponent] += totalNs - charged;
    fold(totalNs, pending_.data(), residualComponent);
}

void
LatencyAttribution::fold(Tick totalNs, const Tick *componentNs, std::size_t)
{
    ++samples_;
    totalNs_ += totalNs;
    // Octave of the total, matching LatencyHistogram's bucketing: value
    // v lands in bucket bit_width(v), i.e. bucket b covers
    // [2^(b-1), 2^b).  Bucket 0 holds zero-latency samples.
    const std::size_t octave =
        static_cast<std::size_t>(std::bit_width(totalNs));
    OctaveRow &row = octaves_[octave];
    ++row.count;
    row.totalNs += totalNs;
    for (std::size_t c = 0; c < numComponents_; ++c) {
        compTotal_[c] += componentNs[c];
        row.compNs[c] += componentNs[c];
    }
}

LatencyAttribution::TailSlice
LatencyAttribution::tail(double fraction) const
{
    TailSlice slice;
    if (samples_ == 0 || fraction <= 0.0)
        return slice;
    if (fraction > 1.0)
        fraction = 1.0;
    // At least one sample, and round up: the slice may only widen.
    const auto want = static_cast<std::uint64_t>(
        fraction * static_cast<double>(samples_)) + 1;

    for (std::size_t o = numOctaves; o-- > 0;) {
        const OctaveRow &row = octaves_[o];
        if (row.count == 0)
            continue;
        slice.samples += row.count;
        slice.totalNs += row.totalNs;
        for (std::size_t c = 0; c < numComponents_; ++c)
            slice.componentNs[c] += row.compNs[c];
        slice.minTotalNs = o == 0 ? 0 : Tick{1} << (o - 1);
        if (slice.samples >= want)
            break;
    }
    slice.fraction =
        static_cast<double>(slice.samples) / static_cast<double>(samples_);
    return slice;
}

void
LatencyAttribution::exportGauges(MetricScope scope) const
{
    scope.gauge("samples").set(static_cast<double>(samples_));
    scope.gauge("total_ns").set(static_cast<double>(totalNs_));
    for (std::size_t c = 0; c < numComponents_; ++c)
        scope.gauge(std::string(names_[c]) + "_ns")
            .set(static_cast<double>(compTotal_[c]));

    const TailSlice p99 = tail(0.01);
    MetricScope tailScope = scope.sub("p99");
    tailScope.gauge("samples").set(static_cast<double>(p99.samples));
    tailScope.gauge("total_ns").set(static_cast<double>(p99.totalNs));
    for (std::size_t c = 0; c < numComponents_; ++c)
        tailScope.gauge(std::string(names_[c]) + "_ns")
            .set(static_cast<double>(p99.componentNs[c]));
}

void
LatencyAttribution::printTable(std::ostream &os, const char *title) const
{
    const TailSlice p99 = tail(0.01);
    os << title << " (" << samples_ << " samples)\n";
    os << "  " << std::left << std::setw(12) << "component"
       << std::right << std::setw(16) << "total ns"
       << std::setw(8) << "share";
    os << std::setw(16) << "slowest-1% ns" << std::setw(8) << "share"
       << "\n";
    const double tot = totalNs_ ? static_cast<double>(totalNs_) : 1.0;
    const double tailTot =
        p99.totalNs ? static_cast<double>(p99.totalNs) : 1.0;
    for (std::size_t c = 0; c < numComponents_; ++c) {
        os << "  " << std::left << std::setw(12) << names_[c] << std::right
           << std::setw(16) << compTotal_[c] << std::setw(7) << std::fixed
           << std::setprecision(1)
           << 100.0 * static_cast<double>(compTotal_[c]) / tot << "%"
           << std::setw(16) << p99.componentNs[c] << std::setw(7)
           << 100.0 * static_cast<double>(p99.componentNs[c]) / tailTot
           << "%\n";
    }
    os.unsetf(std::ios::fixed);
    os << std::setprecision(6);
}

void
LatencyAttribution::reset()
{
    active_ = false;
    startNs_ = 0;
    pending_.fill(0);
    samples_ = 0;
    totalNs_ = 0;
    compTotal_.fill(0);
    octaves_.fill(OctaveRow{});
}

} // namespace kona
