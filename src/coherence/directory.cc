/**
 * @file
 * DirectoryService implementation. See directory.h for the protocol
 * overview; the invariants maintained here are:
 *
 *  - Modified implies exactly one sharer record (the owner's);
 *  - a sharer record exists iff that node holds rights on the page;
 *  - staleHomes always reflects the most recent releaser's drop-time
 *    view of each home copy (REPLACE semantics — see release()).
 */

#include "coherence/directory.h"

#include <algorithm>
#include <bit>
#include <cstring>

#include "common/logging.h"

namespace kona {

DirectoryService::DirectoryService(Fabric &fabric, Controller &controller,
                                   DirectoryConfig config,
                                   MetricScope scope)
    : fabric_(fabric), controller_(controller), config_(config),
      scope_(std::move(scope)), poller_(fabric.latency()),
      acqShared_(scope_.counter("acquires_shared")),
      acqExcl_(scope_.counter("acquires_exclusive")),
      upgrades_(scope_.counter("upgrades")),
      releases_(scope_.counter("releases")),
      invalsSent_(scope_.counter("invalidations_sent")),
      invalFailures_(scope_.counter("invalidation_failures")),
      forcedWritebacks_(scope_.counter("forced_writebacks")),
      linesWb_(scope_.counter("lines_written_back")),
      acquireFailures_(scope_.counter("acquire_failures")),
      staleSeeds_(scope_.counter("stale_seed_grants")),
      controlMsgs_(scope_.counter("control_messages")),
      controlRetries_(scope_.counter("control_retries")),
      transfers_(scope_.counter("ownership_transfers")),
      transferNs_(scope_.histogram("ownership_transfer_ns")),
      controlBackoffNs_(scope_.histogram("control_backoff_ns"))
{
    KONA_ASSERT(!fabric_.hasNode(config_.directoryNode),
                "directory node id collides with an attached node");
    homeMailbox_ = std::make_unique<BackingStore>(config_.mailboxBytes);
    fabric_.attachNode(config_.directoryNode, homeMailbox_.get());
    homeRegion_ = fabric_.registerRegion(config_.directoryNode, 0,
                                         config_.mailboxBytes);
    controller_.hostDirectory(this);
}

void
DirectoryService::attachPeer(NodeId node, CoherencePeer &peer)
{
    KONA_ASSERT(peers_.count(node) == 0, "peer ", node,
                " already attached");
    KONA_ASSERT(!fabric_.hasNode(node),
                "compute node id ", node, " collides with a fabric node");

    Peer p;
    p.peer = &peer;
    p.mailbox = std::make_unique<BackingStore>(config_.mailboxBytes);
    fabric_.attachNode(node, p.mailbox.get());
    p.region = fabric_.registerRegion(node, 0, config_.mailboxBytes);
    p.toPeer = std::make_unique<QueuePair>(
        fabric_, config_.directoryNode, node, cq_,
        scope_.sub("qp" + std::to_string(node)));
    p.fromPeer = std::make_unique<QueuePair>(
        fabric_, node, config_.directoryNode, cq_,
        scope_.sub("rpc" + std::to_string(node)));
    peers_.emplace(node, std::move(p));
}

void
DirectoryService::detachPeer(NodeId node)
{
    peers_.erase(node);
    std::vector<Addr> touched;
    for (auto &[vpn, e] : entries_) {
        if (sharerMaskOf(e, node) == 0)
            continue;
        dropSharer(e, node);
        if (e.owner == node) {
            e.owner = 0;
            e.state = e.sharers.empty() ? PageCoherenceState::Uncached
                                        : PageCoherenceState::Shared;
        } else if (e.sharers.empty() &&
                   e.state == PageCoherenceState::Shared) {
            e.state = PageCoherenceState::Uncached;
        }
        touched.push_back(vpn);
    }
    for (Addr vpn : touched)
        compact(vpn);
}

const DirectoryService::SharedRegion &
DirectoryService::sharedRegion(const std::string &name, std::size_t bytes,
                               std::size_t replicationFactor)
{
    auto it = regions_.find(name);
    if (it != regions_.end()) {
        KONA_ASSERT(bytes <= it->second.bytes,
                    "shared region '", name, "' re-requested larger");
        return it->second;
    }

    SharedRegion region;
    region.name = name;

    // Learn the rack's slab size from the first grant, then allocate
    // until the requested bytes are covered. Replica copies of one
    // slab are steered to distinct nodes, mirroring mapNewSlab().
    std::size_t covered = 0;
    while (covered < bytes) {
        MappedSlab slab;
        slab.primary = *controller_.allocateSlab(
            PlacementRequest{.required = true});
        slab.shared = true;
        std::vector<NodeId> occupied{slab.primary.where.node};
        for (std::size_t k = 0; k < replicationFactor; ++k) {
            auto replica = controller_.allocateSlab(PlacementRequest{
                .avoid = occupied, .copyIndex = k + 1});
            if (!replica)
                break;          // degraded redundancy, not fatal
            occupied.push_back(replica->where.node);
            slab.replicas.push_back(*replica);
        }
        covered += slab.primary.size;
        region.slabs.push_back(std::move(slab));
    }
    region.bytes = covered;

    auto [pos, inserted] = regions_.emplace(name, std::move(region));
    KONA_ASSERT(inserted, "shared region race");
    return pos->second;
}

bool
DirectoryService::sendControl(QueuePair &qp, const MemoryRegion &dst,
                              std::uint8_t op, Addr vpn,
                              std::uint64_t mask, SimClock &clock)
{
    ControlMessage msg;
    msg.op = op;
    msg.vpn = vpn;
    msg.mask = mask;

    RetryState retry(config_.retry, retrySeed_++);
    retry.bindTelemetry(&controlRetries_, &controlBackoffNs_);
    for (;;) {
        WorkRequest wr;
        wr.wrId = nextWrId_++;
        wr.opcode = RdmaOpcode::Inval;
        wr.localBuf = &msg;
        wr.remoteKey = dst.key;
        wr.remoteAddr = dst.base;
        wr.length = sizeof(msg);
        wr.inlineData = true;

        controlMsgs_.add();
        PostResult posted = qp.post(wr, clock);
        if (posted.ok()) {
            poller_.waitOne(cq_, clock);
            return true;
        }
        poller_.drain(cq_, clock, posted.cqesPushed);
        if (!retry.shouldRetry())
            return false;
        retry.backoff(clock);
    }
}

bool
DirectoryService::invalidate(NodeId target, Addr vpn, SimClock &clock)
{
    auto it = peers_.find(target);
    if (it == peers_.end()) {
        // Detached holder: its rights evaporate without traffic.
        DirEntry &e = entries_[vpn];
        dropSharer(e, target);
        if (e.owner == target)
            e.owner = 0;
        return true;
    }

    invalsSent_.add();
    if (!sendControl(*it->second.toPeer, it->second.region,
                     /*op=*/1, vpn, ~std::uint64_t(0), clock)) {
        invalFailures_.add();
        return false;
    }

    // The holder snoops its CPU caches and flushes the page's dirty
    // lines through its async eviction pipeline on OUR clock (the
    // requester pays for the transfer). Its page-drop hook fires
    // release() reentrantly, editing entries_ — callers re-look-up.
    InvalidateResult r = it->second.peer->onInvalidate(vpn, clock);
    if (r.linesWrittenBack != 0) {
        forcedWritebacks_.add();
        linesWb_.add(r.linesWrittenBack);
    }
    if (!r.released) {
        invalFailures_.add();
        return false;
    }

    // Belt and braces: a holder that had rights but never installed
    // the page drops no page, so make sure its record is gone.
    DirEntry &e = entries_[vpn];
    dropSharer(e, target);
    if (e.owner == target) {
        e.owner = 0;
        e.state = e.sharers.empty() ? PageCoherenceState::Uncached
                                    : PageCoherenceState::Shared;
    }
    return true;
}

AcquireResult
DirectoryService::acquireShared(NodeId requester, Addr vpn,
                                std::uint64_t lineMask, SimClock &clock)
{
    auto peerIt = peers_.find(requester);
    KONA_ASSERT(peerIt != peers_.end(), "acquire from unattached node ",
                requester);

    Tick start = clock.now();
    // The acquire RPC itself rides the fabric and can be dropped,
    // delayed or partitioned by the fault injector.
    if (!sendControl(*peerIt->second.fromPeer, homeRegion_, /*op=*/2,
                     vpn, lineMask, clock)) {
        acquireFailures_.add();
        return {};
    }
    clock.advance(static_cast<Tick>(config_.lookupNs));
    acqShared_.add();

    bool moved = false;
    {
        DirEntry &e = entry(vpn);
        if (e.state == PageCoherenceState::Modified &&
            e.owner != requester) {
            moved = true;
            if (!invalidate(e.owner, vpn, clock)) {
                acquireFailures_.add();
                return {};
            }
        }
    }

    DirEntry &e = entry(vpn);     // re-look-up: invalidate() reenters
    if (!(e.state == PageCoherenceState::Modified &&
          e.owner == requester)) {
        e.state = PageCoherenceState::Shared;
        e.owner = 0;
    }
    auto s = std::find_if(e.sharers.begin(), e.sharers.end(),
                          [&](const auto &p) {
                              return p.first == requester;
                          });
    if (s == e.sharers.end())
        e.sharers.emplace_back(requester, lineMask);
    else
        s->second |= lineMask;

    AcquireResult result;
    result.granted = true;
    result.staleHomes = e.staleHomes;
    if (!result.staleHomes.empty())
        staleSeeds_.add();
    if (moved) {
        transfers_.add();
        transferNs_.record(static_cast<double>(clock.now() - start));
    }
    return result;
}

AcquireResult
DirectoryService::acquireExclusive(NodeId requester, Addr vpn,
                                   std::uint64_t lineMask,
                                   SimClock &clock)
{
    auto peerIt = peers_.find(requester);
    KONA_ASSERT(peerIt != peers_.end(), "acquire from unattached node ",
                requester);

    Tick start = clock.now();
    if (!sendControl(*peerIt->second.fromPeer, homeRegion_, /*op=*/3,
                     vpn, lineMask, clock)) {
        acquireFailures_.add();
        return {};
    }
    clock.advance(static_cast<Tick>(config_.lookupNs));
    acqExcl_.add();

    bool wasSharer;
    std::vector<NodeId> targets;
    {
        DirEntry &e = entry(vpn);
        wasSharer = sharerMaskOf(e, requester) != 0 &&
                    !(e.state == PageCoherenceState::Modified &&
                      e.owner == requester);
        for (const auto &[node, mask] : e.sharers) {
            if (node != requester)
                targets.push_back(node);
        }
    }

    // Invalidate every other holder. A failure aborts the acquire;
    // holders already invalidated have legitimately left the entry
    // (their lines are safely written back), so a later retry only
    // deals with the stragglers.
    for (NodeId target : targets) {
        if (!invalidate(target, vpn, clock)) {
            acquireFailures_.add();
            return {};
        }
    }

    DirEntry &e = entry(vpn);     // re-look-up after reentrant releases
    std::uint64_t mask = sharerMaskOf(e, requester) | lineMask;
    e.state = PageCoherenceState::Modified;
    e.owner = requester;
    e.sharers.clear();
    e.sharers.emplace_back(requester, mask);
    if (wasSharer)
        upgrades_.add();

    AcquireResult result;
    result.granted = true;
    result.staleHomes = e.staleHomes;
    if (!result.staleHomes.empty())
        staleSeeds_.add();
    if (!targets.empty()) {
        transfers_.add();
        transferNs_.record(static_cast<double>(clock.now() - start));
    }
    return result;
}

void
DirectoryService::release(NodeId holder, Addr vpn,
                          std::uint64_t touchedMask,
                          const std::vector<StaleHomeReport> &staleView)
{
    (void)touchedMask;  // carried for protocol fidelity / tracing
    releases_.add();

    DirEntry &e = entries_[vpn];
    dropSharer(e, holder);
    if (e.owner == holder) {
        e.owner = 0;
        e.state = e.sharers.empty() ? PageCoherenceState::Uncached
                                    : PageCoherenceState::Shared;
    } else if (e.sharers.empty() &&
               e.state == PageCoherenceState::Shared) {
        e.state = PageCoherenceState::Uncached;
    }

    // REPLACE, don't merge: the releaser's eviction shipped dirty and
    // seeded-stale lines to every copy, so its drop-time view is the
    // authoritative record of which homes are still missing lines.
    e.staleHomes = staleView;
    compact(vpn);
}

PageCoherenceState
DirectoryService::stateOf(Addr vpn) const
{
    auto it = entries_.find(vpn);
    return it == entries_.end() ? PageCoherenceState::Uncached
                                : it->second.state;
}

NodeId
DirectoryService::ownerOf(Addr vpn) const
{
    auto it = entries_.find(vpn);
    if (it == entries_.end() ||
        it->second.state != PageCoherenceState::Modified) {
        return 0;
    }
    return it->second.owner;
}

std::uint64_t
DirectoryService::sharerLineMask(Addr vpn, NodeId node) const
{
    auto it = entries_.find(vpn);
    return it == entries_.end() ? 0 : sharerMaskOf(it->second, node);
}

std::size_t
DirectoryService::sharerCount(Addr vpn) const
{
    auto it = entries_.find(vpn);
    return it == entries_.end() ? 0 : it->second.sharers.size();
}

void
DirectoryService::dropSharer(DirEntry &e, NodeId node)
{
    e.sharers.erase(
        std::remove_if(e.sharers.begin(), e.sharers.end(),
                       [&](const auto &p) { return p.first == node; }),
        e.sharers.end());
}

std::uint64_t
DirectoryService::sharerMaskOf(const DirEntry &e, NodeId node) const
{
    for (const auto &[n, mask] : e.sharers) {
        if (n == node)
            return mask;
    }
    return 0;
}

void
DirectoryService::compact(Addr vpn)
{
    auto it = entries_.find(vpn);
    if (it == entries_.end())
        return;
    const DirEntry &e = it->second;
    if (e.state == PageCoherenceState::Uncached && e.sharers.empty() &&
        e.staleHomes.empty()) {
        entries_.erase(it);
    }
}

} // namespace kona
