/**
 * @file
 * DirectoryService: the rack's inter-node coherence directory, hosted
 * at the Controller (§4.1 places rack-global metadata there). It lets
 * N KonaRuntime instances read and write overlapping VFMem regions
 * over the same memory nodes with MSI-style per-page states:
 *
 *  - Uncached:  no compute node holds the page;
 *  - Shared:    one or more nodes hold read rights (cacheline-
 *               granularity sharer vectors record which lines each
 *               sharer actually touched);
 *  - Modified:  exactly one node owns the page for writing.
 *
 * acquireShared/acquireExclusive arbitrate transitions; a conflicting
 * holder is invalidated first, which forces its dirty lines back
 * through the existing async eviction pipeline (CL log) before
 * ownership transfers — the "line-granularity invalidation riding
 * existing writeback machinery" design of the Federated Coherence
 * position paper. Invalidations and acquire RPCs are carried as
 * RdmaOpcode::Inval messages into per-node mailbox regions on the
 * fabric, so PR 1 fault injection and PR 6 gray-failure modes (drops,
 * partial partitions, degrade delays) apply to coherence traffic with
 * no extra plumbing. release() piggybacks on the eviction ack that
 * already notified the memory side, so it costs no extra message.
 *
 * The directory also federates stale-copy knowledge: a holder that
 * could not freshen every home of a page (gray link, retries
 * exhausted) reports its per-home missed-line view at release, and
 * the next acquirer is seeded with it so no compute node ever fetches
 * a stale copy another node failed to update.
 */

#ifndef KONA_COHERENCE_DIRECTORY_H
#define KONA_COHERENCE_DIRECTORY_H

#include <map>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/sim_clock.h"
#include "common/types.h"
#include "fpga/remote_translation.h"
#include "mem/backing_store.h"
#include "net/queue_pair.h"
#include "net/retry_policy.h"
#include "rack/controller.h"
#include "telemetry/metric_registry.h"

namespace kona {

/** MSI state of one page at the directory. */
enum class PageCoherenceState : std::uint8_t
{
    Uncached,
    Shared,
    Modified,
};

/** One home's missed-line mask, as reported/seeded at the directory. */
struct StaleHomeReport
{
    NodeId node = 0;
    std::uint64_t mask = 0;
};

/** What a holder did with a remote invalidation. */
struct InvalidateResult
{
    bool released = false;           ///< page written back and dropped
    std::uint64_t linesWrittenBack = 0;
};

/**
 * Compute-node side of the protocol: the directory calls back into
 * the holder's runtime to execute an invalidation (snoop CPU caches,
 * flush dirty lines through the eviction pipeline, drop the page).
 * The clock is the requester's: the victim's writeback is on the
 * acquiring access's critical path.
 */
class CoherencePeer
{
  public:
    virtual ~CoherencePeer() = default;
    virtual InvalidateResult onInvalidate(Addr vpn, SimClock &clock) = 0;
};

/** Configuration of the directory service. */
struct DirectoryConfig
{
    /** The directory's node id on the fabric (its mailbox lives
     *  there). Must not collide with memory or compute nodes. */
    NodeId directoryNode = 900;

    /** Bytes of mailbox registered per node for control messages. */
    std::size_t mailboxBytes = 4096;

    /** Simulated ns of directory state-machine work per request. */
    double lookupNs = 150.0;

    /** Retry discipline for control messages (invalidations and
     *  acquire RPCs) against injected drops and gray links. */
    RetryPolicy retry{.initialBackoffNs = 50'000, .maxAttempts = 16};
};

/** Outcome of an acquire. */
struct AcquireResult
{
    bool granted = false;
    /** Homes whose copy of the page is stale (missed lines); the
     *  requester must seed these into its FPGA before fetching. */
    std::vector<StaleHomeReport> staleHomes;
};

/** The rack coherence directory. */
class DirectoryService
{
  public:
    /**
     * @param scope Telemetry scope for the protocol counters; QPs
     *              register under "<scope>.qp<node>".
     */
    DirectoryService(Fabric &fabric, Controller &controller,
                     DirectoryConfig config = {}, MetricScope scope = {});

    const DirectoryConfig &config() const { return config_; }

    /**
     * Register compute node @p node as a protocol participant: attach
     * a mailbox for its invalidation messages to the fabric and
     * remember the peer callback. Must precede any acquire by @p node.
     */
    void attachPeer(NodeId node, CoherencePeer &peer);

    /** Remove @p node from the protocol (its holdings are dropped
     *  from every entry without invalidation traffic). */
    void detachPeer(NodeId node);

    // --- shared-region registry --------------------------------------

    /**
     * A named region every participating runtime maps at the same
     * placement. The first caller allocates (primary plus
     * @p replicationFactor replicas per slab, copies on distinct
     * nodes); later callers get the identical grants back.
     */
    struct SharedRegion
    {
        std::string name;
        std::size_t bytes = 0;
        std::vector<MappedSlab> slabs;
    };

    /**
     * Get-or-create the named region. @p bytes is rounded up to whole
     * slabs; a second caller must ask for a size that rounds to the
     * same slab count.
     */
    const SharedRegion &sharedRegion(const std::string &name,
                                     std::size_t bytes,
                                     std::size_t replicationFactor);

    // --- protocol ----------------------------------------------------

    /**
     * Grant @p requester read rights on VFMem page @p vpn, line(s)
     * @p lineMask. Invalidate a conflicting Modified owner first
     * (forcing its dirty-line writeback on @p clock, the requester's
     * timeline). Returns granted=false when the directory or the
     * owner was unreachable; the caller backs off and retries.
     */
    AcquireResult acquireShared(NodeId requester, Addr vpn,
                                std::uint64_t lineMask, SimClock &clock);

    /** Grant write ownership, invalidating every other holder. */
    AcquireResult acquireExclusive(NodeId requester, Addr vpn,
                                   std::uint64_t lineMask,
                                   SimClock &clock);

    /**
     * @p holder no longer caches @p vpn (its FMem copy dropped after
     * writeback). @p touchedMask is the holder's final touched-line
     * vector; @p staleView is its per-home missed-line knowledge at
     * drop time, which REPLACES the directory's record — sound
     * because every releaser's eviction ships dirty|stale lines to
     * all copies, so its drop-time view is accurate for every home.
     * Piggybacked on the eviction ack: no separate fabric message.
     */
    void release(NodeId holder, Addr vpn, std::uint64_t touchedMask,
                 const std::vector<StaleHomeReport> &staleView);

    // --- introspection -----------------------------------------------

    PageCoherenceState stateOf(Addr vpn) const;
    /** Owner of @p vpn when Modified; 0 otherwise. */
    NodeId ownerOf(Addr vpn) const;
    /** Touched-line vector of @p node's claim on @p vpn (0 = none). */
    std::uint64_t sharerLineMask(Addr vpn, NodeId node) const;
    std::size_t sharerCount(Addr vpn) const;
    std::size_t pagesTracked() const { return entries_.size(); }
    std::size_t sharedRegionCount() const { return regions_.size(); }

    // --- statistics --------------------------------------------------

    std::uint64_t sharedAcquires() const { return acqShared_.value(); }
    std::uint64_t exclusiveAcquires() const { return acqExcl_.value(); }
    /** Exclusive acquires by a node that already held the page
     *  Shared (S -> M upgrades). */
    std::uint64_t upgrades() const { return upgrades_.value(); }
    std::uint64_t releases() const { return releases_.value(); }
    std::uint64_t invalidationsSent() const { return invalsSent_.value(); }
    /** Invalidations whose message or writeback could not complete
     *  (the acquire aborts and the requester retries). */
    std::uint64_t invalidationFailures() const
    {
        return invalFailures_.value();
    }
    /** Invalidations that forced a dirty-line writeback. */
    std::uint64_t forcedWritebacks() const
    {
        return forcedWritebacks_.value();
    }
    std::uint64_t linesWrittenBack() const { return linesWb_.value(); }
    /** Acquires denied because a control message never got through. */
    std::uint64_t acquireFailures() const
    {
        return acquireFailures_.value();
    }
    /** Acquires whose grant carried stale-home seeds. */
    std::uint64_t staleSeedGrants() const { return staleSeeds_.value(); }
    std::uint64_t controlMessages() const { return controlMsgs_.value(); }
    std::uint64_t controlRetries() const { return controlRetries_.value(); }
    /** M-ownership moves between nodes (invalidate + transfer). */
    std::uint64_t ownershipTransfers() const
    {
        return transfers_.value();
    }
    /** End-to-end latency of acquires that moved ownership. */
    const LatencyHistogram &ownershipTransferNs() const
    {
        return transferNs_;
    }

  private:
    /** One attached compute node. */
    struct Peer
    {
        CoherencePeer *peer = nullptr;
        std::unique_ptr<BackingStore> mailbox;
        MemoryRegion region;                  ///< mailbox registration
        std::unique_ptr<QueuePair> toPeer;    ///< directory -> node
        std::unique_ptr<QueuePair> fromPeer;  ///< node -> directory
    };

    /** Directory entry for one page. */
    struct DirEntry
    {
        PageCoherenceState state = PageCoherenceState::Uncached;
        NodeId owner = 0;
        /** (node, touched-line mask); owner included when Modified. */
        std::vector<std::pair<NodeId, std::uint64_t>> sharers;
        /** Federated stale-copy record: home -> missed-line mask. */
        std::vector<StaleHomeReport> staleHomes;
    };

    /** Wire format of a control message (lands in a mailbox). */
    struct ControlMessage
    {
        std::uint8_t op = 0;
        std::uint8_t pad[7] = {};
        Addr vpn = 0;
        std::uint64_t mask = 0;
    };

    /**
     * Ship one Inval-opcode message into @p dst via @p qp, retrying
     * per the configured policy. @return false when every attempt
     * failed (drop storm, partition, node down).
     */
    bool sendControl(QueuePair &qp, const MemoryRegion &dst,
                     std::uint8_t op, Addr vpn, std::uint64_t mask,
                     SimClock &clock);

    /**
     * Invalidate @p target's copy of @p vpn: deliver the message,
     * then run the holder's writeback on @p clock. The holder's
     * release() fires reentrantly (via its page-drop hook) and edits
     * the entry, so callers must re-look-up entries afterwards.
     */
    bool invalidate(NodeId target, Addr vpn, SimClock &clock);

    DirEntry &entry(Addr vpn) { return entries_[vpn]; }
    void dropSharer(DirEntry &e, NodeId node);
    std::uint64_t sharerMaskOf(const DirEntry &e, NodeId node) const;
    /** Erase the entry when it holds no information. */
    void compact(Addr vpn);

    Fabric &fabric_;
    Controller &controller_;
    DirectoryConfig config_;
    MetricScope scope_;

    CompletionQueue cq_;
    Poller poller_;
    std::unique_ptr<BackingStore> homeMailbox_;   ///< directory's own
    MemoryRegion homeRegion_;

    std::map<NodeId, Peer> peers_;
    std::unordered_map<Addr, DirEntry> entries_;
    std::map<std::string, SharedRegion> regions_;

    std::uint64_t nextWrId_ = 0x20000000;
    std::uint64_t retrySeed_ = 0xd1c7ULL;

    Counter &acqShared_;
    Counter &acqExcl_;
    Counter &upgrades_;
    Counter &releases_;
    Counter &invalsSent_;
    Counter &invalFailures_;
    Counter &forcedWritebacks_;
    Counter &linesWb_;
    Counter &acquireFailures_;
    Counter &staleSeeds_;
    Counter &controlMsgs_;
    Counter &controlRetries_;
    Counter &transfers_;
    LatencyHistogram &transferNs_;
    LatencyHistogram &controlBackoffNs_;
};

} // namespace kona

#endif // KONA_COHERENCE_DIRECTORY_H
