/**
 * @file
 * Litmus differential suite for inter-node coherence.
 *
 * Each scenario is a small multi-threaded program in the classical
 * memory-model litmus style (message passing, store buffering, load
 * buffering, coherence-of-a-single-line, IRIW, ...), with "threads"
 * mapped to KonaRuntime compute nodes of a MultiRack and locations
 * mapped into one coherence-shared VFMem region. Offsets are chosen
 * per scenario to cover the interesting granularities: two locations
 * in the same cache line, same page but different lines, and
 * different pages.
 *
 * The checker is differential and stronger than the usual
 * forbidden-outcome conditions: the runtimes execute a seeded global
 * interleaving of the per-thread programs op-atomically, and a flat
 * sequentially-consistent oracle executes the SAME interleaving.
 * Every loaded value must equal the oracle's, and after the run every
 * node's read-back of every location must match the oracle memory.
 * Since an op-atomic interleaving of a sequentially-consistent system
 * has exactly one legal outcome, any stale line served anywhere shows
 * up as a divergence — there is no weaker "allowed outcome" escape.
 *
 * Outcomes carry an order-sensitive FNV hash over all observed loads
 * so bit-identical determinism across repeated runs of one seed can
 * be asserted directly.
 */

#ifndef KONA_COHERENCE_LITMUS_H
#define KONA_COHERENCE_LITMUS_H

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.h"

namespace kona {

class MultiRack;

/** One operation of a litmus thread program. */
struct LitmusOp
{
    bool store = false;
    int loc = 0;                ///< index into LitmusScenario::locOffsets
    std::uint64_t value = 0;    ///< stored value (ignored for loads)
};

/** One litmus scenario. */
struct LitmusScenario
{
    std::string name;
    /** Byte offset of each location inside the shared region. */
    std::vector<Addr> locOffsets;
    /** One program per thread; thread i runs on runtime i. */
    std::vector<std::vector<LitmusOp>> programs;

    std::size_t threads() const { return programs.size(); }
};

/** Result of one litmus run. */
struct LitmusOutcome
{
    bool match = true;          ///< every load and read-back == oracle
    std::string divergence;     ///< first mismatch, human-readable
    std::uint64_t loadsChecked = 0;
    /** Order-sensitive FNV-1a over every observed load value. */
    std::uint64_t valueHash = 1469598103934665603ULL;
};

/** The ~22 scenarios of the suite (stable order and names). */
const std::vector<LitmusScenario> &litmusScenarios();

/**
 * Execute @p scenario on @p rack against the SC oracle.
 *
 * @param base   VFMem base of the shared region (from mapShared()).
 * @param seed   Drives the global interleaving (same seed => same
 *               interleaving => identical outcome, byte for byte).
 * @param rounds Times the whole program set is replayed; oracle
 *               memory persists across rounds, so later rounds start
 *               from dirty state and exercise ownership ping-pong.
 *
 * The scenario must not need more threads than the rack has runtimes.
 */
LitmusOutcome runLitmus(const LitmusScenario &scenario, MultiRack &rack,
                        Addr base, std::uint64_t seed, int rounds = 4);

/**
 * Parallel-engine variant of runLitmus(): the seeded interleaving is
 * precomputed (it is a pure function of the seed and the remaining-op
 * counts, independent of any value loaded), each litmus thread runs on
 * its runtime's own OS thread, and every op is replayed inside a
 * scripted ShardGate section stamped with its global schedule index —
 * so the gate executes ops in exactly the sequential interleaving and
 * the outcome (divergence, loadsChecked, valueHash) is bit-identical
 * to runLitmus() on the same rack state. @p threads caps how many
 * shards execute concurrently (1 = the sequential reference schedule).
 */
LitmusOutcome runLitmusParallel(const LitmusScenario &scenario,
                                MultiRack &rack, Addr base,
                                std::uint64_t seed, unsigned threads,
                                int rounds = 4);

} // namespace kona

#endif // KONA_COHERENCE_LITMUS_H
