/**
 * @file
 * CoherenceAgent: the compute-node side of the inter-node coherence
 * protocol. One agent is embedded in each KonaRuntime participating in
 * a multi-node rack; it sits on the access hot path (ensureAccess) and
 * talks to the rack DirectoryService:
 *
 *  - before a load touches a governed line, the agent holds at least
 *    Shared rights on the page;
 *  - before a store, it holds Modified (exclusive) rights, upgrading
 *    or invalidating other holders through the directory;
 *  - a remote invalidation (onInvalidate) snoops the local CPU cache
 *    hierarchy, flushes the page's dirty lines through the runtime's
 *    async eviction pipeline, and drops the FMem copy, so the next
 *    holder refetches fresh bytes;
 *  - any page drop — remote invalidation OR ordinary capacity
 *    eviction — releases the rights back to the directory via the
 *    FPGA's drop hook, carrying the agent's stale-home view so the
 *    federation of gray-failure knowledge survives ownership changes.
 *
 * Pages outside the governed (shared-region) ranges are ignored:
 * private heaps pay a single predicted-taken branch and no directory
 * traffic, which is how single-node throughput stays within noise of
 * the pre-coherence runtime.
 */

#ifndef KONA_COHERENCE_AGENT_H
#define KONA_COHERENCE_AGENT_H

#include <unordered_map>
#include <utility>
#include <vector>

#include "coherence/directory.h"
#include "net/shard_gate.h"

namespace kona {

class CacheHierarchy;
class CoherentFpga;
class EvictionHandler;

/** Per-runtime protocol endpoint. */
class CoherenceAgent : public CoherencePeer
{
  public:
    /**
     * @param node    The owning runtime's compute-node id (the
     *                agent's identity at the directory).
     * @param retry   Backoff discipline for denied acquires; copied
     *                (RetryState keeps a reference into the copy).
     */
    CoherenceAgent(DirectoryService &directory, NodeId node,
                   CoherentFpga &fpga, CacheHierarchy &hierarchy,
                   EvictionHandler &evictor, RetryPolicy retry,
                   MetricScope scope = {});

    NodeId node() const { return node_; }

    /** Put [vfmemBase, +bytes) under coherence governance. */
    void addGovernedRange(Addr vfmemBase, std::size_t bytes);

    /** Whether VFMem page @p vpn is coherence-governed. */
    bool governs(Addr vpn) const;

    /**
     * Hot-path hook, called once per cache-line access before the
     * line is served: acquires/upgrades directory rights when the
     * line is governed and the current rights are insufficient.
     * Denied acquires (faulted fabric) back off and retry on
     * @p clock; exhausting the retry budget is fatal.
     */
    void
    ensureAccess(Addr lineAddr, AccessType type, SimClock &clock)
    {
        Addr vpn = pageNumber(lineAddr);
        if (!governs(vpn))
            return;
        // Gated even on cached-rights hits: a peer's invalidation
        // mutates pages_ from its own shard thread (the directory
        // calls onInvalidate inline), so every governed touch of the
        // rights table is a cross-shard section.
        ShardSection section(gate_, GateEvent::Coherence);
        std::uint64_t bit = std::uint64_t(1) << lineInPage(lineAddr);
        auto it = pages_.find(vpn);
        if (it != pages_.end()) {
            it->second.touched |= bit;
            if (type != AccessType::Write || it->second.exclusive)
                return;
        }
        acquire(vpn, bit, type == AccessType::Write, clock);
    }

    // --- CoherencePeer -----------------------------------------------

    /** Remote invalidation: snoop CPU caches, flush dirty lines
     *  through the eviction pipeline, drop the page and rights. */
    InvalidateResult onInvalidate(Addr vpn, SimClock &clock) override;

    /**
     * The FPGA dropped @p vpn from FMem (invalidation or ordinary
     * capacity eviction): release rights to the directory, reporting
     * the drop-time stale-home view. Wired to CoherentFpga's drop
     * hook by KonaRuntime::attachCoherence.
     */
    void onPageDropped(Addr vpn);

    // --- introspection -----------------------------------------------

    /** Rights currently held: 0 none, 1 Shared, 2 Modified. */
    int rightsOn(Addr vpn) const;
    std::size_t pagesHeld() const { return pages_.size(); }

    std::uint64_t acquires() const { return acquires_.value(); }
    std::uint64_t acquireRetries() const { return retries_.value(); }
    std::uint64_t invalidationsReceived() const
    {
        return invalsReceived_.value();
    }
    /** Invalidations that found dirty/stale lines to write back. */
    std::uint64_t forcedWritebacks() const
    {
        return forcedWritebacks_.value();
    }
    /** Grants that seeded stale-home knowledge from the directory. */
    std::uint64_t staleSeedsApplied() const { return staleSeeds_.value(); }

    /**
     * Parallel engine: directory acquires/releases and the rights
     * table are cross-shard state; ensureAccess opens a Coherence
     * section when bound. Default endpoint = sequential, zero cost.
     */
    void setGateEndpoint(const GateEndpoint &ep) { gate_ = ep; }

  private:
    struct LocalPage
    {
        bool exclusive = false;
        std::uint64_t touched = 0;   ///< lines this node accessed
    };

    void acquire(Addr vpn, std::uint64_t bit, bool exclusive,
                 SimClock &clock);

    DirectoryService &directory_;
    NodeId node_;
    CoherentFpga &fpga_;
    CacheHierarchy &hierarchy_;
    EvictionHandler &evictor_;
    GateEndpoint gate_;
    RetryPolicy retry_;
    MetricScope scope_;

    /** Sorted, disjoint governed vpn ranges [first, second). */
    std::vector<std::pair<Addr, Addr>> ranges_;
    std::unordered_map<Addr, LocalPage> pages_;
    std::uint64_t retrySeed_;

    Counter &acquires_;
    Counter &retries_;
    Counter &invalsReceived_;
    Counter &forcedWritebacks_;
    Counter &staleSeeds_;
    LatencyHistogram &acquireBackoffNs_;
};

} // namespace kona

#endif // KONA_COHERENCE_AGENT_H
