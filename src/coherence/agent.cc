/**
 * @file
 * CoherenceAgent implementation. The invalidation path is the heart:
 * it reuses the CPU-cache snoop and the async eviction pipeline so a
 * coherence writeback is bit-for-bit the same machinery as a capacity
 * eviction — the protocol adds ordering, not a second data path.
 */

#include "coherence/agent.h"

#include <algorithm>
#include <bit>

#include "cache/hierarchy.h"
#include "common/logging.h"
#include "core/eviction_handler.h"
#include "fpga/coherent_fpga.h"

namespace kona {

CoherenceAgent::CoherenceAgent(DirectoryService &directory, NodeId node,
                               CoherentFpga &fpga,
                               CacheHierarchy &hierarchy,
                               EvictionHandler &evictor,
                               RetryPolicy retry, MetricScope scope)
    : directory_(directory), node_(node), fpga_(fpga),
      hierarchy_(hierarchy), evictor_(evictor), retry_(retry),
      scope_(std::move(scope)),
      retrySeed_(0xc011ULL + std::uint64_t(node) * 0x9e3779b97f4a7c15ULL),
      acquires_(scope_.counter("acquires")),
      retries_(scope_.counter("acquire_retries")),
      invalsReceived_(scope_.counter("invalidations_received")),
      forcedWritebacks_(scope_.counter("forced_writebacks")),
      staleSeeds_(scope_.counter("stale_seeds_applied")),
      acquireBackoffNs_(scope_.histogram("acquire_backoff_ns"))
{}

void
CoherenceAgent::addGovernedRange(Addr vfmemBase, std::size_t bytes)
{
    KONA_ASSERT(bytes > 0, "empty governed range");
    Addr first = pageNumber(vfmemBase);
    Addr last = pageNumber(vfmemBase + bytes - 1) + 1;
    ranges_.emplace_back(first, last);
    std::sort(ranges_.begin(), ranges_.end());
}

bool
CoherenceAgent::governs(Addr vpn) const
{
    // First range starting past vpn; the candidate is its predecessor.
    auto it = std::upper_bound(
        ranges_.begin(), ranges_.end(), vpn,
        [](Addr v, const auto &r) { return v < r.first; });
    if (it == ranges_.begin())
        return false;
    --it;
    return vpn < it->second;
}

void
CoherenceAgent::acquire(Addr vpn, std::uint64_t bit, bool exclusive,
                        SimClock &clock)
{
    RetryState retry(retry_, retrySeed_++);
    retry.bindTelemetry(&retries_, &acquireBackoffNs_);
    for (;;) {
        AcquireResult r =
            exclusive
                ? directory_.acquireExclusive(node_, vpn, bit, clock)
                : directory_.acquireShared(node_, vpn, bit, clock);
        if (r.granted) {
            acquires_.add();
            // Inherit the previous holder's gray-failure knowledge:
            // these homes miss lines, so fetches must skip them and
            // the next eviction must freshen them.
            for (const StaleHomeReport &s : r.staleHomes) {
                fpga_.markStaleHome(vpn, s.node, s.mask);
                staleSeeds_.add();
            }
            LocalPage &page = pages_[vpn];
            page.exclusive |= exclusive;
            page.touched |= bit;
            return;
        }
        if (!retry.shouldRetry()) {
            fatal("node ", node_, ": coherence acquire of vpn ", vpn,
                  " failed after ", retry.attempts(), " retries");
        }
        retry.backoff(clock);
    }
}

InvalidateResult
CoherenceAgent::onInvalidate(Addr vpn, SimClock &clock)
{
    invalsReceived_.add();
    auto it = pages_.find(vpn);
    if (it == pages_.end())
        return {true, 0};        // rights already gone (raced a drop)

    if (!fpga_.pageResident(vpn)) {
        // Rights without a resident page: the FMem copy was already
        // evicted (its drop hook should have released); just let go.
        onPageDropped(vpn);
        return {true, 0};
    }

    // Writeback-on-invalidate: pull the page's lines out of the CPU
    // cache hierarchy first (dirty lines land in the FMem frame via
    // the writeback listener), then ship dirty|stale lines through
    // the async eviction pipeline and drop the frame. The drop hook
    // fires onPageDropped -> directory release reentrantly.
    hierarchy_.snoopPage(vpn);
    std::uint64_t mask = fpga_.dirtyMask(vpn) | fpga_.staleLines(vpn);
    bool released = evictor_.flushPage(vpn, clock);

    if (mask != 0)
        forcedWritebacks_.add();
    return {released, static_cast<std::uint64_t>(std::popcount(mask))};
}

void
CoherenceAgent::onPageDropped(Addr vpn)
{
    auto it = pages_.find(vpn);
    if (it == pages_.end() || !governs(vpn))
        return;

    std::vector<StaleHomeReport> staleView;
    if (const auto *homes = fpga_.staleHomesOf(vpn)) {
        staleView.reserve(homes->size());
        for (const auto &[home, mask] : *homes)
            staleView.push_back({home, mask});
        // Deterministic order regardless of hash-map iteration.
        std::sort(staleView.begin(), staleView.end(),
                  [](const auto &a, const auto &b) {
                      return a.node < b.node;
                  });
    }
    directory_.release(node_, vpn, it->second.touched, staleView);
    pages_.erase(it);
}

int
CoherenceAgent::rightsOn(Addr vpn) const
{
    auto it = pages_.find(vpn);
    if (it == pages_.end())
        return 0;
    return it->second.exclusive ? 2 : 1;
}

} // namespace kona
