/**
 * @file
 * Litmus scenario catalogue and the differential runner. Offsets per
 * scenario deliberately span the three sharing granularities: within
 * one 64B cache line, across lines of one 4KB page, and across pages.
 */

#include "coherence/litmus.h"

#include <algorithm>

#include "common/logging.h"
#include "common/rng.h"
#include "rack/multi_rack.h"
#include "rack/parallel_driver.h"

namespace kona {

namespace {

// Location offsets used by the catalogue.
constexpr Addr kA = 0;              // line 0 of page 0
constexpr Addr kASameLine = 8;      // still line 0 of page 0
constexpr Addr kB = 64;             // line 1 of page 0
constexpr Addr kC = 512;            // line 8 of page 0
constexpr Addr kPage1 = 4096;       // line 0 of page 1
constexpr Addr kPage2 = 8192;       // line 0 of page 2
constexpr Addr kPage3 = 12288 + 128; // line 2 of page 3

constexpr bool St = true;
constexpr bool Ld = false;

LitmusScenario
make(std::string name, std::vector<Addr> locs,
     std::vector<std::vector<LitmusOp>> programs)
{
    LitmusScenario s;
    s.name = std::move(name);
    s.locOffsets = std::move(locs);
    s.programs = std::move(programs);
    return s;
}

std::vector<LitmusScenario>
buildScenarios()
{
    std::vector<LitmusScenario> all;

    // --- message passing: flag publishes data ------------------------
    all.push_back(make("MP_same_page", {kA, kB},
        {{{St, 0, 1}, {St, 1, 1}},
         {{Ld, 1, 0}, {Ld, 0, 0}}}));
    all.push_back(make("MP_same_line", {kA, kASameLine},
        {{{St, 0, 1}, {St, 1, 1}},
         {{Ld, 1, 0}, {Ld, 0, 0}}}));
    all.push_back(make("MP_cross_page", {kA, kPage1},
        {{{St, 0, 1}, {St, 1, 1}},
         {{Ld, 1, 0}, {Ld, 0, 0}}}));
    all.push_back(make("MP_reversed", {kA, kB},
        {{{Ld, 1, 0}, {Ld, 0, 0}},
         {{St, 0, 1}, {St, 1, 1}}}));

    // --- store buffering ---------------------------------------------
    all.push_back(make("SB_same_page", {kA, kB},
        {{{St, 0, 1}, {Ld, 1, 0}},
         {{St, 1, 1}, {Ld, 0, 0}}}));
    all.push_back(make("SB_cross_page", {kA, kPage1},
        {{{St, 0, 1}, {Ld, 1, 0}},
         {{St, 1, 1}, {Ld, 0, 0}}}));
    all.push_back(make("SB_3thread_ring", {kA, kB, kPage1},
        {{{St, 0, 1}, {Ld, 1, 0}},
         {{St, 1, 1}, {Ld, 2, 0}},
         {{St, 2, 1}, {Ld, 0, 0}}}));

    // --- load buffering ----------------------------------------------
    all.push_back(make("LB_same_page", {kA, kB},
        {{{Ld, 0, 0}, {St, 1, 1}},
         {{Ld, 1, 0}, {St, 0, 1}}}));
    all.push_back(make("LB_cross_page", {kA, kPage1},
        {{{Ld, 0, 0}, {St, 1, 1}},
         {{Ld, 1, 0}, {St, 0, 1}}}));

    // --- coherence of a single location ------------------------------
    all.push_back(make("CoRR", {kA},
        {{{St, 0, 1}},
         {{Ld, 0, 0}, {Ld, 0, 0}}}));
    all.push_back(make("CoRW", {kA},
        {{{St, 0, 1}},
         {{Ld, 0, 0}, {St, 0, 2}}}));
    all.push_back(make("CoWR", {kA},
        {{{St, 0, 1}, {Ld, 0, 0}},
         {{St, 0, 2}}}));
    all.push_back(make("CoWW", {kA},
        {{{St, 0, 1}, {St, 0, 2}},
         {{St, 0, 3}, {St, 0, 4}}}));
    all.push_back(make("CoWR_same_line_neighbors", {kA, kASameLine},
        {{{St, 0, 1}, {Ld, 1, 0}, {Ld, 0, 0}},
         {{St, 1, 2}, {Ld, 0, 0}, {Ld, 1, 0}}}));

    // --- independent reads of independent writes (4 threads) ---------
    all.push_back(make("IRIW", {kA, kPage1},
        {{{St, 0, 1}},
         {{St, 1, 1}},
         {{Ld, 0, 0}, {Ld, 1, 0}},
         {{Ld, 1, 0}, {Ld, 0, 0}}}));
    all.push_back(make("IRIW_same_page", {kA, kB},
        {{{St, 0, 1}},
         {{St, 1, 1}},
         {{Ld, 0, 0}, {Ld, 1, 0}},
         {{Ld, 1, 0}, {Ld, 0, 0}}}));

    // --- write-to-read causality chains ------------------------------
    all.push_back(make("WRC", {kA, kB},
        {{{St, 0, 1}},
         {{Ld, 0, 0}, {St, 1, 1}},
         {{Ld, 1, 0}, {Ld, 0, 0}}}));
    all.push_back(make("RWC", {kA, kPage1},
        {{{St, 0, 1}},
         {{Ld, 0, 0}, {Ld, 1, 0}},
         {{St, 1, 1}, {Ld, 0, 0}}}));
    all.push_back(make("ISA2", {kA, kB, kPage1},
        {{{St, 0, 1}, {St, 1, 1}},
         {{Ld, 1, 0}, {St, 2, 1}},
         {{Ld, 2, 0}, {Ld, 0, 0}}}));

    // --- classic two-writer shapes -----------------------------------
    all.push_back(make("2+2W", {kA, kB},
        {{{St, 0, 1}, {St, 1, 2}},
         {{St, 1, 1}, {St, 0, 2}}}));
    all.push_back(make("S", {kA, kB},
        {{{St, 0, 2}, {St, 1, 1}},
         {{Ld, 1, 0}, {St, 0, 1}}}));
    all.push_back(make("R", {kA, kB},
        {{{St, 0, 1}, {St, 1, 1}},
         {{St, 1, 2}, {Ld, 0, 0}}}));

    // --- contention / ownership ping-pong ----------------------------
    all.push_back(make("single_line_ping_pong", {kA},
        {{{St, 0, 1}, {Ld, 0, 0}, {St, 0, 3}, {Ld, 0, 0}},
         {{St, 0, 2}, {Ld, 0, 0}, {St, 0, 4}, {Ld, 0, 0}}}));
    all.push_back(make("sharer_storm", {kA},
        {{{St, 0, 1}, {St, 0, 2}},
         {{Ld, 0, 0}, {Ld, 0, 0}, {Ld, 0, 0}},
         {{Ld, 0, 0}, {Ld, 0, 0}, {Ld, 0, 0}},
         {{Ld, 0, 0}, {Ld, 0, 0}, {Ld, 0, 0}}}));
    all.push_back(make("false_sharing_writers", {kA, kASameLine},
        {{{St, 0, 1}, {Ld, 1, 0}, {St, 0, 2}, {Ld, 1, 0}},
         {{St, 1, 1}, {Ld, 0, 0}, {St, 1, 2}, {Ld, 0, 0}}}));
    all.push_back(make("multi_page_sweep", {kA, kPage1, kPage2, kPage3},
        {{{St, 0, 1}, {St, 1, 2}, {St, 2, 3}, {St, 3, 4}},
         {{Ld, 3, 0}, {Ld, 2, 0}, {Ld, 1, 0}, {Ld, 0, 0}}}));

    return all;
}

} // namespace

const std::vector<LitmusScenario> &
litmusScenarios()
{
    static const std::vector<LitmusScenario> all = buildScenarios();
    return all;
}

LitmusOutcome
runLitmus(const LitmusScenario &scenario, MultiRack &rack, Addr base,
          std::uint64_t seed, int rounds)
{
    KONA_ASSERT(scenario.threads() >= 1, "scenario with no threads");
    KONA_ASSERT(scenario.threads() <= rack.runtimeCount(),
                "scenario '", scenario.name, "' needs ",
                scenario.threads(), " compute nodes, rack has ",
                rack.runtimeCount());

    LitmusOutcome out;
    auto observe = [&out](std::uint64_t v) {
        // FNV-1a over the bytes of every observed value, in order.
        for (int i = 0; i < 8; ++i) {
            out.valueHash ^= (v >> (8 * i)) & 0xff;
            out.valueHash *= 1099511628211ULL;
        }
    };
    auto check = [&](std::uint64_t got, std::uint64_t want,
                     const char *what, std::size_t thread, int loc) {
        ++out.loadsChecked;
        observe(got);
        if (got != want && out.match) {
            out.match = false;
            out.divergence = scenario.name + ": " + what + " by t" +
                             std::to_string(thread) + " of loc" +
                             std::to_string(loc) + " saw " +
                             std::to_string(got) + ", oracle has " +
                             std::to_string(want);
        }
    };

    // The SC oracle: a flat memory executing the same interleaving.
    std::vector<std::uint64_t> oracle(scenario.locOffsets.size(), 0);

    // Zero the locations through the protocol so the run starts from
    // a known state even when the region carries earlier litmus data.
    for (std::size_t loc = 0; loc < scenario.locOffsets.size(); ++loc) {
        std::uint64_t zero = 0;
        rack.runtime(0).write(base + scenario.locOffsets[loc], &zero,
                              sizeof zero);
    }

    Rng rng(seed);
    for (int round = 0; round < rounds; ++round) {
        std::vector<std::size_t> pc(scenario.threads(), 0);
        std::size_t remaining = 0;
        for (const auto &program : scenario.programs)
            remaining += program.size();

        while (remaining > 0) {
            // Pick uniformly among threads that still have ops.
            std::size_t pick = rng.below(remaining);
            std::size_t thread = 0;
            for (;; ++thread) {
                std::size_t left =
                    scenario.programs[thread].size() - pc[thread];
                if (pick < left)
                    break;
                pick -= left;
            }

            const LitmusOp &op = scenario.programs[thread][pc[thread]++];
            --remaining;
            KonaRuntime &rt = rack.runtime(thread);
            Addr addr = base + scenario.locOffsets[op.loc];
            if (op.store) {
                // Vary values per round so a line gone stale in round
                // r-1 can never masquerade as round r's value.
                std::uint64_t v =
                    op.value + 100 * static_cast<std::uint64_t>(round);
                rt.write(addr, &v, sizeof v);
                oracle[static_cast<std::size_t>(op.loc)] = v;
            } else {
                std::uint64_t got = 0;
                rt.read(addr, &got, sizeof got);
                check(got, oracle[static_cast<std::size_t>(op.loc)],
                      "load", thread, op.loc);
            }
        }

        // Every node reads back every location: the final state must
        // be the oracle's on all replicas of the truth.
        for (std::size_t t = 0; t < scenario.threads(); ++t) {
            for (std::size_t loc = 0; loc < scenario.locOffsets.size();
                 ++loc) {
                std::uint64_t got = 0;
                rack.runtime(t).read(base + scenario.locOffsets[loc],
                                     &got, sizeof got);
                check(got, oracle[loc], "read-back", t,
                      static_cast<int>(loc));
            }
        }
    }
    return out;
}

namespace {

/** One op of the precomputed global litmus schedule. */
struct ScheduledOp
{
    std::size_t thread = 0;
    bool store = false;
    int loc = 0;
    std::uint64_t value = 0;    ///< round-adjusted store value
    bool readback = false;      ///< post-round read-back, not a program op
};

/**
 * Replay runLitmus()'s exact interleaving construction without
 * executing anything: the schedule is a pure function of the seed and
 * the per-thread op counts (picks never depend on loaded values), so
 * it can be computed up front and handed to shard threads.
 */
std::vector<ScheduledOp>
buildSchedule(const LitmusScenario &scenario, std::uint64_t seed,
              int rounds)
{
    std::vector<ScheduledOp> schedule;
    // Zeroing preamble: thread 0 writes 0 to every location.
    for (std::size_t loc = 0; loc < scenario.locOffsets.size(); ++loc)
        schedule.push_back({0, true, static_cast<int>(loc), 0, false});

    Rng rng(seed);
    for (int round = 0; round < rounds; ++round) {
        std::vector<std::size_t> pc(scenario.threads(), 0);
        std::size_t remaining = 0;
        for (const auto &program : scenario.programs)
            remaining += program.size();
        while (remaining > 0) {
            std::size_t pick = rng.below(remaining);
            std::size_t thread = 0;
            for (;; ++thread) {
                std::size_t left =
                    scenario.programs[thread].size() - pc[thread];
                if (pick < left)
                    break;
                pick -= left;
            }
            const LitmusOp &op = scenario.programs[thread][pc[thread]++];
            --remaining;
            std::uint64_t v =
                op.value + 100 * static_cast<std::uint64_t>(round);
            schedule.push_back(
                {thread, op.store, op.loc, v, false});
        }
        for (std::size_t t = 0; t < scenario.threads(); ++t) {
            for (std::size_t loc = 0;
                 loc < scenario.locOffsets.size(); ++loc) {
                schedule.push_back(
                    {t, false, static_cast<int>(loc), 0, true});
            }
        }
    }
    return schedule;
}

} // namespace

LitmusOutcome
runLitmusParallel(const LitmusScenario &scenario, MultiRack &rack,
                  Addr base, std::uint64_t seed, unsigned threads,
                  int rounds)
{
    KONA_ASSERT(scenario.threads() >= 1, "scenario with no threads");
    KONA_ASSERT(scenario.threads() <= rack.runtimeCount(),
                "scenario '", scenario.name, "' needs ",
                scenario.threads(), " compute nodes, rack has ",
                rack.runtimeCount());

    std::vector<ScheduledOp> schedule =
        buildSchedule(scenario, seed, rounds);

    // Split the global schedule per shard. Stamps are global indices,
    // so the gate's canonical order IS the sequential interleaving.
    struct ShardOp
    {
        Tick stamp;
        const ScheduledOp *op;
    };
    std::vector<std::vector<ShardOp>> perShard(rack.runtimeCount());
    for (std::size_t g = 0; g < schedule.size(); ++g)
        perShard[schedule[g].thread].push_back(
            {static_cast<Tick>(g), &schedule[g]});

    // Loads deposit into their own schedule slot; the main thread
    // checks against the oracle after the join, in schedule order.
    std::vector<std::uint64_t> observed(schedule.size(), 0);

    ParallelDriver driver(rack, threads);
    for (std::size_t i = 0; i < rack.runtimeCount(); ++i) {
        driver.gate().setScripted(
            static_cast<std::uint32_t>(i),
            perShard[i].empty() ? shardDoneStamp
                                : perShard[i].front().stamp);
    }
    driver.run([&](std::size_t shard, KonaRuntime &rt) {
        const std::vector<ShardOp> &ops = perShard[shard];
        ShardGate &gate = driver.gate();
        auto id = static_cast<std::uint32_t>(shard);
        for (std::size_t k = 0; k < ops.size(); ++k) {
            const ScheduledOp &op = *ops[k].op;
            Addr addr =
                base +
                scenario.locOffsets[static_cast<std::size_t>(op.loc)];
            gate.enter(id, ops[k].stamp, GateEvent::Scripted);
            if (op.store) {
                rt.write(addr, &op.value, sizeof op.value);
            } else {
                std::uint64_t got = 0;
                rt.read(addr, &got, sizeof got);
                observed[static_cast<std::size_t>(ops[k].stamp)] = got;
            }
            gate.leave(id, k + 1 < ops.size() ? ops[k + 1].stamp
                                              : shardDoneStamp);
        }
    });

    // Differential check against the SC oracle, in schedule order —
    // the same visitation order runLitmus() uses, so valueHash and
    // the first divergence string agree bit for bit.
    LitmusOutcome out;
    std::vector<std::uint64_t> oracle(scenario.locOffsets.size(), 0);
    for (std::size_t g = 0; g < schedule.size(); ++g) {
        const ScheduledOp &op = schedule[g];
        if (op.store) {
            oracle[static_cast<std::size_t>(op.loc)] = op.value;
            continue;
        }
        std::uint64_t got = observed[g];
        std::uint64_t want = oracle[static_cast<std::size_t>(op.loc)];
        ++out.loadsChecked;
        for (int i = 0; i < 8; ++i) {
            out.valueHash ^= (got >> (8 * i)) & 0xff;
            out.valueHash *= 1099511628211ULL;
        }
        if (got != want && out.match) {
            out.match = false;
            out.divergence =
                scenario.name + ": " +
                (op.readback ? "read-back" : "load") + " by t" +
                std::to_string(op.thread) + " of loc" +
                std::to_string(op.loc) + " saw " + std::to_string(got) +
                ", oracle has " + std::to_string(want);
        }
    }
    return out;
}

} // namespace kona
