/**
 * @file
 * ChaosRunner: executes one scripted ChaosScenario against a complete
 * Kona stack (fabric + controller + memory nodes + runtime + workload)
 * and reports tail latency, availability, and the final memory image.
 *
 * Determinism contract: a run is a pure function of (scenario, seed).
 * The fault-free oracle of a scenario is the same run with *no* events
 * applied — fault events obviously, but also membership events, which
 * are content-neutral by design (drain/hot-add migrate copies without
 * changing a single application byte). The content oracle therefore
 * asserts the strongest possible property: the final image under
 * chaos is byte-identical to the image of an undisturbed run.
 */

#ifndef KONA_CHAOS_CHAOS_RUNNER_H
#define KONA_CHAOS_CHAOS_RUNNER_H

#include <cstdint>
#include <vector>

#include "chaos/chaos_scenario.h"
#include "core/kona_runtime.h"

namespace kona {

/**
 * The HealthPolicy chaos runs install: quicker to react than the
 * conservative defaults (fewer warm-up samples, shorter probation) so
 * scenario-length windows exercise the full membership state machine.
 */
HealthPolicy chaosHealthPolicy();

/** Knobs of one chaos run. */
struct ChaosRunConfig
{
    std::uint64_t seed = 0x5eedULL; ///< drives the fault injector
    bool faultFree = false;         ///< oracle mode: apply no events
    Tick sloNs = 100'000;           ///< per-op latency SLO (100us):
                                    ///< a degraded or timed-out fetch
                                    ///< breaches it, a healthy remote
                                    ///< miss does not
    HealthPolicy health = chaosHealthPolicy();
    MetricScope scope = {};         ///< telemetry scope for the stack

    /**
     * Optional time-series sampler: attached to the stack's registry
     * after setup (so all lazily-created metrics exist) and ticked on
     * the app clock; the trailing partial window is closed before the
     * report is returned.
     */
    TimeSeriesSampler *sampler = nullptr;
};

/** Everything a scenario run produced. */
struct ChaosReport
{
    std::vector<std::uint8_t> image; ///< final mapped-memory bytes
    std::uint64_t opsDone = 0;
    double meanOpNs = 0.0;
    double p99OpNs = 0.0;            ///< p99 per-op latency (AMAT proxy)
    double availability = 1.0;       ///< fraction of ops within sloNs

    ReliabilityStats reliability;
    std::uint64_t hedgedReads = 0;
    std::uint64_t prefetchReplicaFallbacks = 0;
    std::uint64_t evacuateDrainStalls = 0;
    std::uint64_t staleCopyMarks = 0;
    std::uint64_t membershipEpoch = 0;
    std::size_t finalNodeCount = 0;

    bool drained = false;            ///< a Drain event executed
    RebuildReport drainReport;
    bool hotAdded = false;           ///< a HotAdd event executed
    RebuildReport hotAddReport;

    /** The runtime's structured event journal, oldest first. */
    std::vector<JournalEvent> journal;

    /** Attribution invariants (sum of components == total, exactly). */
    std::uint64_t missAttrSamples = 0;
    std::uint64_t missAttrTotalNs = 0;
    std::uint64_t missAttrOtherNs = 0;
    std::uint64_t shipAttrSamples = 0;
    std::uint64_t shipAttrTotalNs = 0;
    std::uint64_t shipAttrOtherNs = 0;
};

/** Run @p scenario under @p config and collect the report. */
ChaosReport runChaosScenario(const ChaosScenario &scenario,
                             const ChaosRunConfig &config = {});

} // namespace kona

#endif // KONA_CHAOS_CHAOS_RUNNER_H
