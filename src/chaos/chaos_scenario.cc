#include "chaos/chaos_scenario.h"

#include <cstdio>
#include <sstream>

#include "common/logging.h"

namespace kona {

namespace {

/** Split one line into whitespace-separated tokens, dropping comments. */
std::vector<std::string>
tokenize(const std::string &line)
{
    std::vector<std::string> tokens;
    std::istringstream is(line);
    std::string tok;
    while (is >> tok) {
        if (tok[0] == '#')
            break;
        tokens.push_back(tok);
    }
    return tokens;
}

std::uint64_t
parseU64(const std::string &s, const char *what)
{
    try {
        std::size_t pos = 0;
        std::uint64_t v = std::stoull(s, &pos);
        if (pos != s.size())
            fatal("chaos scenario: bad ", what, " \"", s, "\"");
        return v;
    } catch (const std::exception &) {
        fatal("chaos scenario: bad ", what, " \"", s, "\"");
    }
}

double
parseF64(const std::string &s, const char *what)
{
    try {
        std::size_t pos = 0;
        double v = std::stod(s, &pos);
        if (pos != s.size())
            fatal("chaos scenario: bad ", what, " \"", s, "\"");
        return v;
    } catch (const std::exception &) {
        fatal("chaos scenario: bad ", what, " \"", s, "\"");
    }
}

void
requireArgs(const std::vector<std::string> &t, std::size_t n)
{
    if (t.size() != n)
        fatal("chaos scenario: event \"", t.empty() ? "" : t[1],
              "\" expects ", n - 3, " argument(s) after the node");
}

ChaosEvent
parseEvent(const std::vector<std::string> &t)
{
    // t = ["@<op>", "<verb>", "<node>", args...]
    if (t.size() < 3)
        fatal("chaos scenario: truncated event line");
    ChaosEvent ev;
    ev.atOp = parseU64(t[0].substr(1), "op index");
    ev.node = static_cast<NodeId>(parseU64(t[2], "node id"));
    const std::string &verb = t[1];
    if (verb == "degrade") {
        requireArgs(t, 4);
        ev.op = ChaosOp::Degrade;
        ev.ns = parseU64(t[3], "degrade ns");
    } else if (verb == "nak") {
        requireArgs(t, 4);
        ev.op = ChaosOp::NakInflate;
        ev.p = parseF64(t[3], "nak probability");
    } else if (verb == "drop") {
        requireArgs(t, 4);
        ev.op = ChaosOp::Drop;
        ev.p = parseF64(t[3], "drop probability");
    } else if (verb == "spike") {
        requireArgs(t, 5);
        ev.op = ChaosOp::Spike;
        ev.p = parseF64(t[3], "spike probability");
        ev.ns = parseU64(t[4], "spike ns");
    } else if (verb == "flap") {
        requireArgs(t, 5);
        ev.op = ChaosOp::Flap;
        ev.a = parseU64(t[3], "flap period");
        ev.b = parseU64(t[4], "flap down ops");
    } else if (verb == "burst") {
        requireArgs(t, 5);
        ev.op = ChaosOp::Burst;
        ev.a = parseU64(t[3], "burst period");
        ev.b = parseU64(t[4], "burst length");
    } else if (verb == "partition") {
        requireArgs(t, 5);
        if (t[3] != "from")
            fatal("chaos scenario: partition syntax is "
                  "\"partition <node> from <source>\"");
        ev.op = ChaosOp::Partition;
        ev.peer = static_cast<NodeId>(parseU64(t[4], "source node"));
    } else if (verb == "clear") {
        requireArgs(t, 3);
        ev.op = ChaosOp::ClearFaults;
    } else if (verb == "down") {
        requireArgs(t, 3);
        ev.op = ChaosOp::NodeDown;
    } else if (verb == "up") {
        requireArgs(t, 3);
        ev.op = ChaosOp::NodeUp;
    } else if (verb == "drain") {
        requireArgs(t, 3);
        ev.op = ChaosOp::Drain;
    } else if (verb == "hotadd") {
        requireArgs(t, 3);
        ev.op = ChaosOp::HotAdd;
    } else if (verb == "shift") {
        requireArgs(t, 3);
        ev.op = ChaosOp::ShiftWorkingSet;
    } else {
        fatal("chaos scenario: unknown event verb \"", verb, "\"");
    }
    return ev;
}

std::string
formatEvent(const ChaosEvent &ev)
{
    char buf[128];
    auto head = [&](const char *verb) {
        return std::snprintf(buf, sizeof(buf), "@%llu %s %u",
                             static_cast<unsigned long long>(ev.atOp),
                             verb, ev.node);
    };
    int n = 0;
    switch (ev.op) {
    case ChaosOp::Degrade:
        n = head("degrade");
        std::snprintf(buf + n, sizeof(buf) - static_cast<size_t>(n),
                      " %llu",
                      static_cast<unsigned long long>(ev.ns));
        break;
    case ChaosOp::NakInflate:
        n = head("nak");
        std::snprintf(buf + n, sizeof(buf) - static_cast<size_t>(n),
                      " %g", ev.p);
        break;
    case ChaosOp::Drop:
        n = head("drop");
        std::snprintf(buf + n, sizeof(buf) - static_cast<size_t>(n),
                      " %g", ev.p);
        break;
    case ChaosOp::Spike:
        n = head("spike");
        std::snprintf(buf + n, sizeof(buf) - static_cast<size_t>(n),
                      " %g %llu", ev.p,
                      static_cast<unsigned long long>(ev.ns));
        break;
    case ChaosOp::Flap:
        n = head("flap");
        std::snprintf(buf + n, sizeof(buf) - static_cast<size_t>(n),
                      " %llu %llu",
                      static_cast<unsigned long long>(ev.a),
                      static_cast<unsigned long long>(ev.b));
        break;
    case ChaosOp::Burst:
        n = head("burst");
        std::snprintf(buf + n, sizeof(buf) - static_cast<size_t>(n),
                      " %llu %llu",
                      static_cast<unsigned long long>(ev.a),
                      static_cast<unsigned long long>(ev.b));
        break;
    case ChaosOp::Partition:
        n = head("partition");
        std::snprintf(buf + n, sizeof(buf) - static_cast<size_t>(n),
                      " from %u", ev.peer);
        break;
    case ChaosOp::ClearFaults:
        head("clear");
        break;
    case ChaosOp::NodeDown:
        head("down");
        break;
    case ChaosOp::NodeUp:
        head("up");
        break;
    case ChaosOp::Drain:
        head("drain");
        break;
    case ChaosOp::HotAdd:
        head("hotadd");
        break;
    case ChaosOp::ShiftWorkingSet:
        head("shift");
        break;
    }
    return buf;
}

} // namespace

ChaosScenario
parseChaosScenario(const std::string &text)
{
    ChaosScenario sc;
    std::istringstream is(text);
    std::string line;
    while (std::getline(is, line)) {
        std::vector<std::string> t = tokenize(line);
        if (t.empty())
            continue;
        if (t[0][0] == '@') {
            sc.events.push_back(parseEvent(t));
            continue;
        }
        if (t.size() != 2)
            fatal("chaos scenario: directive \"", t[0],
                  "\" expects exactly one value");
        if (t[0] == "scenario")
            sc.name = t[1];
        else if (t[0] == "workload")
            sc.workload = t[1];
        else if (t[0] == "nodes")
            sc.nodes = parseU64(t[1], "node count");
        else if (t[0] == "replication")
            sc.replication = parseU64(t[1], "replication");
        else if (t[0] == "ops")
            sc.ops = parseU64(t[1], "op budget");
        else if (t[0] == "scale")
            sc.scale = parseF64(t[1], "scale");
        else
            fatal("chaos scenario: unknown directive \"", t[0], "\"");
    }
    return sc;
}

std::string
formatChaosScenario(const ChaosScenario &sc)
{
    std::ostringstream os;
    os << "scenario " << sc.name << "\n"
       << "workload " << sc.workload << "\n"
       << "nodes " << sc.nodes << "\n"
       << "replication " << sc.replication << "\n"
       << "ops " << sc.ops << "\n"
       << "scale " << sc.scale << "\n";
    for (const ChaosEvent &ev : sc.events)
        os << formatEvent(ev) << "\n";
    return os.str();
}

const std::vector<ChaosScenario> &
builtinChaosScenarios()
{
    static const std::vector<ChaosScenario> scenarios = [] {
        std::vector<ChaosScenario> all;

        // A straggler memory node: every op completes, just slowly,
        // and its write payloads start failing the end-to-end CRC.
        // The health scorer must move it to Suspect so reads hedge to
        // replicas, then readmit it once the degradation clears.
        all.push_back(parseChaosScenario(R"(
            scenario slow-node
            workload redis-rand
            @300 degrade 2 250000
            @300 nak 2 0.15
            @1500 clear 2
        )"));

        // A flapping link: periodically times out for a burst of ops,
        // then recovers — the classic gray failure a binary up/down
        // detector thrashes on.
        all.push_back(parseChaosScenario(R"(
            scenario flapping
            workload redis-rand
            @200 flap 1 250 30
            @1600 clear 1
        )"));

        // One-directional partial partition: the compute node (id 0)
        // cannot reach node 2, while node 2 stays healthy for everyone
        // else. Reads must hedge to replicas; evictions that cannot
        // deliver node 2's copy mark it stale so reads avoid it until
        // a later eviction freshens the copy after the heal.
        all.push_back(parseChaosScenario(R"(
            scenario partial-partition
            workload redis-rand
            @300 partition 2 from 0
            @1200 clear 2
        )"));

        // Live drain: decommission a node mid-run while it still holds
        // hot data. Zero pages may be lost and the workload keeps
        // serving throughout.
        all.push_back(parseChaosScenario(R"(
            scenario drain-under-load
            workload redis-rand
            @800 drain 2
        )"));

        // Hot-add: a spare node joins mid-run, gets warmed with its
        // fair share of existing copies, and only then takes traffic.
        all.push_back(parseChaosScenario(R"(
            scenario hot-add-rebalance
            workload redis-rand
            @800 hotadd 4
        )"));

        return all;
    }();
    return scenarios;
}

} // namespace kona
