/**
 * @file
 * Scripted chaos scenarios: a tiny text format describing a fault
 * schedule plus membership operations, keyed to workload op indices so
 * every run is deterministic from (scenario, seed). The harness in
 * chaos_runner.h executes a scenario against a full Kona stack; the
 * builtin library covers the gray-failure shapes the membership state
 * machine must survive (slow node, flapping link, one-directional
 * partition, live drain, hot-add rebalance).
 *
 * Text format, one directive per line ('#' starts a comment):
 *
 *   scenario slow-node          # header directives
 *   workload redis-rand
 *   nodes 3
 *   replication 1
 *   ops 1200
 *   scale 0.02
 *   @150 degrade 2 250000       # events: @<op> <verb> <node> [args]
 *   @150 nak 2 0.15
 *   @900 clear 2
 *
 * Event verbs:
 *   degrade <node> <ns>            constant extra latency per op
 *   nak <node> <p>                 write-payload CRC-failure rate
 *   drop <node> <p>                silent drop probability
 *   spike <node> <p> <ns>          tail-latency spike
 *   flap <node> <period> <down>    link flapping (ops on that node)
 *   burst <node> <period> <len>    back-to-back error bursts
 *   partition <node> from <src>    one-directional partial partition
 *   clear <node>                   reset the node's fault profile
 *   down <node> / up <node>        fail-stop toggle on the fabric
 *   drain <node>                   live decommission through the runtime
 *   hotadd <node>                  hot-add a spare node + rebalance
 *   shift <region>                 move the workload's hot working set
 *                                  to region index <region> (the node
 *                                  field carries the region; no fault
 *                                  is injected — harnesses that drive
 *                                  phase-shifting working sets, e.g.
 *                                  the placement ablation bench,
 *                                  interpret it)
 */

#ifndef KONA_CHAOS_CHAOS_SCENARIO_H
#define KONA_CHAOS_CHAOS_SCENARIO_H

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.h"

namespace kona {

/** One scripted action, applied before workload op @ref ChaosEvent::atOp. */
enum class ChaosOp : std::uint8_t
{
    Degrade,     ///< slow node / straggler link
    NakInflate,  ///< write payloads corrupted past the transport
    Drop,        ///< silent packet loss
    Spike,       ///< tail-latency spikes
    Flap,        ///< periodic link flapping
    Burst,       ///< transient error bursts
    Partition,   ///< one-directional partial partition
    ClearFaults, ///< reset the node's fault profile
    NodeDown,    ///< fail-stop: mark the node down on the fabric
    NodeUp,      ///< fail-stop recovery
    Drain,       ///< membership: live decommission
    HotAdd,      ///< membership: hot-add + rebalance
    ShiftWorkingSet, ///< workload: jump the hot set to region <node>
};

/** One event of a scenario's schedule. Unused fields stay zero. */
struct ChaosEvent
{
    std::uint64_t atOp = 0;        ///< applied before this workload op
    ChaosOp op = ChaosOp::ClearFaults;
    NodeId node = 0;               ///< the node acted on
    NodeId peer = 0;               ///< Partition: the blocked source
    double p = 0.0;                ///< probability modes
    Tick ns = 0;                   ///< Degrade/Spike latency
    std::uint64_t a = 0;           ///< Flap/Burst period (ops)
    std::uint64_t b = 0;           ///< Flap down-ops / Burst length
};

/** A full scripted run: rack shape, workload, and event schedule. */
struct ChaosScenario
{
    std::string name = "unnamed";
    std::string workload = "redis-rand";
    std::size_t nodes = 3;          ///< initial memory nodes (ids 1..n)
    std::size_t replication = 1;    ///< extra copies per slab
    std::uint64_t ops = 2000;       ///< workload ops to execute
    double scale = 0.1;             ///< workload footprint scale
                                    ///< (must exceed FMem so ops miss)
    std::vector<ChaosEvent> events;
};

/** Parse the text format above. Fatal on malformed input. */
ChaosScenario parseChaosScenario(const std::string &text);

/** Serialize back to the text format (parse/format round-trips). */
std::string formatChaosScenario(const ChaosScenario &scenario);

/**
 * The builtin scenario library: slow-node, flapping, partial-partition,
 * drain-under-load, hot-add-rebalance. Every entry must match its
 * fault-free oracle byte-for-byte across seeds.
 */
const std::vector<ChaosScenario> &builtinChaosScenarios();

} // namespace kona

#endif // KONA_CHAOS_CHAOS_SCENARIO_H
