#include "chaos/chaos_runner.h"

#include <algorithm>
#include <map>
#include <memory>

#include "common/logging.h"
#include "net/fault_injector.h"
#include "telemetry/time_series.h"
#include "workloads/registry.h"

namespace kona {

HealthPolicy
chaosHealthPolicy()
{
    HealthPolicy p;
    p.minSamples = 8;
    p.readmitProbation = 16;
    return p;
}

namespace {

/** Read the full mapped VFMem range back through the runtime. */
std::vector<std::uint8_t>
dumpImage(KonaRuntime &runtime)
{
    Addr base = runtime.config().fpga.vfmemBase;
    std::size_t bytes = 0;
    runtime.fpga().translation().forEachSlab(
        [&bytes](MappedSlab &slab) { bytes += slab.primary.size; });
    std::vector<std::uint8_t> image(bytes);
    constexpr std::size_t chunk = 64 * KiB;
    for (std::size_t off = 0; off < bytes; off += chunk) {
        runtime.read(base + off, image.data() + off,
                     std::min(chunk, bytes - off));
    }
    return image;
}

/** Apply one scripted event to the live stack. */
void
applyEvent(const ChaosEvent &ev, FaultInjector &injector,
           Fabric &fabric, KonaRuntime &runtime,
           std::map<NodeId, std::unique_ptr<MemoryNode>> &spares,
           ChaosReport &report)
{
    switch (ev.op) {
    case ChaosOp::Degrade:
        injector.profile(ev.node).degradeDelayNs = ev.ns;
        break;
    case ChaosOp::NakInflate:
        injector.profile(ev.node).nakProbability = ev.p;
        break;
    case ChaosOp::Drop:
        injector.profile(ev.node).dropProbability = ev.p;
        break;
    case ChaosOp::Spike: {
        NodeFaultProfile &profile = injector.profile(ev.node);
        profile.spikeProbability = ev.p;
        if (ev.ns > 0)
            profile.spikeNs = ev.ns;
        break;
    }
    case ChaosOp::Flap: {
        NodeFaultProfile &profile = injector.profile(ev.node);
        profile.flapPeriodOps = ev.a;
        profile.flapDownOps = ev.b;
        break;
    }
    case ChaosOp::Burst: {
        NodeFaultProfile &profile = injector.profile(ev.node);
        profile.burstPeriodOps = ev.a;
        profile.burstLength = ev.b;
        break;
    }
    case ChaosOp::Partition:
        injector.profile(ev.node).blockedSources.push_back(ev.peer);
        break;
    case ChaosOp::ClearFaults:
        injector.clearProfile(ev.node);
        break;
    case ChaosOp::NodeDown:
        fabric.setNodeDown(ev.node, true);
        break;
    case ChaosOp::NodeUp:
        fabric.setNodeDown(ev.node, false);
        break;
    case ChaosOp::Drain:
        report.drainReport = runtime.decommissionNode(ev.node);
        report.drained = true;
        break;
    case ChaosOp::HotAdd: {
        auto it = spares.find(ev.node);
        KONA_ASSERT(it != spares.end(),
                    "hotadd event for node ", ev.node,
                    " without a spare (id must not collide with the "
                    "initial nodes)");
        report.hotAddReport = runtime.hotAddNode(*it->second);
        report.hotAdded = true;
        break;
    }
    case ChaosOp::ShiftWorkingSet:
        // Workload-shaping, not fault injection: harnesses that build
        // their own access stream (the placement ablation bench) read
        // the event schedule directly; the generic runner's canned
        // workloads ignore it.
        break;
    }
}

} // namespace

ChaosReport
runChaosScenario(const ChaosScenario &scenario,
                 const ChaosRunConfig &config)
{
    MetricScope scope = config.scope;
    Fabric fabric(LatencyConfig{}, scope.sub("fabric"));
    Controller controller(1 * MiB, scope.sub("rack"));
    controller.setHealthPolicy(config.health);
    // Gray failures must stay gray: the fail-stop detector would
    // otherwise declare a merely-degraded node dead and rebuild it,
    // short-circuiting the Suspect/Quarantine path under test.
    controller.setFailureThreshold(1'000'000);

    std::vector<std::unique_ptr<MemoryNode>> nodes;
    for (NodeId id = 1; id <= scenario.nodes; ++id) {
        nodes.push_back(std::make_unique<MemoryNode>(
            fabric, id, 128 * MiB, 4 * MiB,
            scope.sub("node" + std::to_string(id))));
        controller.registerNode(*nodes.back());
    }
    // Spare nodes for HotAdd events exist on the fabric from the start
    // (hardware racked but unregistered) so the join is pure software.
    std::map<NodeId, std::unique_ptr<MemoryNode>> spares;
    for (const ChaosEvent &ev : scenario.events) {
        if (ev.op == ChaosOp::HotAdd && spares.count(ev.node) == 0) {
            KONA_ASSERT(ev.node > scenario.nodes,
                        "hotadd node id collides with initial nodes");
            spares[ev.node] = std::make_unique<MemoryNode>(
                fabric, ev.node, 128 * MiB, 4 * MiB,
                scope.sub("node" + std::to_string(ev.node)));
        }
    }

    KonaConfig kc;
    kc.fpga.vfmemSize = 128 * MiB;
    kc.fpga.fmemSize = 512 * KiB;
    kc.hierarchy = HierarchyConfig::scaled();
    kc.replicationFactor = scenario.replication;
    kc.evict.mode = EvictionMode::ClLog;
    kc.failurePolicy = FailurePolicy::WaitRetry;
    KonaRuntime runtime(fabric, controller, 0, kc, scope.sub("kona"));

    FaultInjector injector(config.seed, scope.sub("faults"));
    if (!config.faultFree)
        fabric.setFaultInjector(&injector);

    std::vector<ChaosEvent> events = scenario.events;
    std::stable_sort(events.begin(), events.end(),
                     [](const ChaosEvent &a, const ChaosEvent &b) {
                         return a.atOp < b.atOp;
                     });

    WorkloadContext context(
        runtime,
        [&runtime](std::size_t s, std::size_t a) {
            return runtime.allocate(s, a);
        },
        [&runtime](Addr a) { runtime.deallocate(a); });
    WorkloadScale scale;
    scale.factor = scenario.scale;
    auto workload = makeWorkload(scenario.workload, context, scale);
    workload->setup();

    // Attach after setup so every lazily-created metric (QP scopes,
    // workload counters) is part of the sampled set.
    if (config.sampler != nullptr) {
        config.sampler->attach(scope.registry(),
                               runtime.appClock().now());
        runtime.setTimeSeriesSampler(config.sampler);
    }

    std::uint64_t budget = scenario.ops > 0
                               ? scenario.ops
                               : std::min<std::uint64_t>(
                                     defaultWindowOps(scenario.workload),
                                     1200);

    ChaosReport report;
    std::vector<double> opNs;
    opNs.reserve(budget);
    std::size_t nextEvent = 0;
    for (std::uint64_t op = 0; op < budget; ++op) {
        while (nextEvent < events.size() &&
               events[nextEvent].atOp <= op) {
            // The oracle applies nothing: membership events are
            // content-neutral, so skipping them keeps the image
            // comparison strict (see the header's contract).
            if (!config.faultFree) {
                applyEvent(events[nextEvent], injector, fabric,
                           runtime, spares, report);
            }
            ++nextEvent;
        }
        Tick before = runtime.appTime();
        if (workload->run(1) == 0)
            break;
        opNs.push_back(static_cast<double>(runtime.appTime() - before));
        ++report.opsDone;
    }

    // The run ends with the outage resolved (§4.5's WaitRetry story):
    // quiesce the injector so the final writeback lands every dirty
    // line — including pages kept resident because a live home missed
    // an earlier shipment — and all copies converge.
    fabric.setFaultInjector(nullptr);
    runtime.writebackAll();
    if (config.sampler != nullptr)
        config.sampler->finish(runtime.appClock().now());

    report.image = dumpImage(runtime);
    report.journal = runtime.journal().snapshot();
    const LatencyAttribution &miss = runtime.missAttribution();
    report.missAttrSamples = miss.samples();
    report.missAttrTotalNs = miss.totalNs();
    report.missAttrOtherNs = miss.componentNs(MissComponent::Other);
    const LatencyAttribution &ship =
        runtime.evictionHandler().shipmentAttribution();
    report.shipAttrSamples = ship.samples();
    report.shipAttrTotalNs = ship.totalNs();
    report.shipAttrOtherNs = ship.componentNs(EvictComponent::Other);
    report.reliability = runtime.reliability();
    report.hedgedReads = runtime.fpga().hedgedReads();
    report.prefetchReplicaFallbacks =
        runtime.fpga().prefetchReplicaFallbacks();
    report.evacuateDrainStalls =
        runtime.evictionHandler().evacuateDrainStalls();
    report.staleCopyMarks =
        runtime.evictionHandler().staleCopyMarks();
    report.membershipEpoch = controller.membershipEpoch();
    report.finalNodeCount = controller.nodeCount();

    if (!opNs.empty()) {
        double sum = 0.0;
        std::uint64_t within = 0;
        for (double ns : opNs) {
            sum += ns;
            within += ns <= static_cast<double>(config.sloNs) ? 1 : 0;
        }
        report.meanOpNs = sum / static_cast<double>(opNs.size());
        report.availability =
            static_cast<double>(within) /
            static_cast<double>(opNs.size());
        std::vector<double> sorted = opNs;
        std::sort(sorted.begin(), sorted.end());
        std::size_t idx = std::min(
            sorted.size() - 1,
            static_cast<std::size_t>(
                0.99 * static_cast<double>(sorted.size())));
        report.p99OpNs = sorted[idx];
    }
    return report;
}

} // namespace kona
