/**
 * @file
 * Global operator new/delete replacement that counts every heap
 * allocation in the binary. Benches that assert an allocation-free
 * steady state (--strict-alloc) include this once and diff
 * kona::bench::allocCount() around their timed loops.
 *
 * This header DEFINES the replaceable global allocation functions, so
 * it must be included from exactly one translation unit per binary
 * (each bench is its own binary; bench_util.h deliberately does not
 * include it).
 */

#ifndef KONA_BENCH_ALLOC_HOOK_H
#define KONA_BENCH_ALLOC_HOOK_H

#include <atomic>
#include <cstdlib>
#include <new>

namespace kona::bench {

inline std::atomic<std::uint64_t> gAllocCount{0};

/** Allocations made by this binary since start. */
inline std::uint64_t
allocCount()
{
    return gAllocCount.load(std::memory_order_relaxed);
}

} // namespace kona::bench

void *
operator new(std::size_t size)
{
    kona::bench::gAllocCount.fetch_add(1, std::memory_order_relaxed);
    if (void *p = std::malloc(size ? size : 1))
        return p;
    throw std::bad_alloc();
}

void *
operator new[](std::size_t size)
{
    return operator new(size);
}

void *
operator new(std::size_t size, std::align_val_t align)
{
    kona::bench::gAllocCount.fetch_add(1, std::memory_order_relaxed);
    std::size_t a = static_cast<std::size_t>(align);
    std::size_t rounded = (size + a - 1) / a * a;
    if (void *p = std::aligned_alloc(a, rounded ? rounded : a))
        return p;
    throw std::bad_alloc();
}

void *
operator new[](std::size_t size, std::align_val_t align)
{
    return operator new(size, align);
}

void
operator delete(void *p) noexcept
{
    std::free(p);
}

void
operator delete[](void *p) noexcept
{
    std::free(p);
}

void
operator delete(void *p, std::size_t) noexcept
{
    std::free(p);
}

void
operator delete[](void *p, std::size_t) noexcept
{
    std::free(p);
}

void
operator delete(void *p, std::align_val_t) noexcept
{
    std::free(p);
}

void
operator delete[](void *p, std::align_val_t) noexcept
{
    std::free(p);
}

void
operator delete(void *p, std::size_t, std::align_val_t) noexcept
{
    std::free(p);
}

void
operator delete[](void *p, std::size_t, std::align_val_t) noexcept
{
    std::free(p);
}

#endif // KONA_BENCH_ALLOC_HOOK_H
