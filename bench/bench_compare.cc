/**
 * @file
 * CLI over src/tools/bench_compare.h: diff a bench's --metrics-json
 * export against its checked-in baseline under per-metric tolerance
 * rules, and exit nonzero on regression so CI can gate on it.
 *
 *   bench_compare [--rules=FILE] [--verbose] BASELINE.json CURRENT.json
 *
 * --rules=FILE  tolerance rules (default: gate every "gauges.result.*"
 *               as a 10% band); bench/baselines/compare.rules is the
 *               checked-in policy for the CI benches
 * --verbose     also list passing metrics
 *
 * Exit status: 0 = all gated metrics within tolerance (warnings are
 * printed but do not fail), 1 = at least one regression or a gated
 * metric missing on one side, 2 = bad usage / unreadable input.
 */

#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "tools/bench_compare.h"

namespace {

bool
readFile(const std::string &path, std::string &out)
{
    std::ifstream is(path);
    if (!is)
        return false;
    std::ostringstream text;
    text << is.rdbuf();
    out = text.str();
    return true;
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace kona;

    std::string rulesPath;
    bool verbose = false;
    std::string paths[2];
    std::size_t nPaths = 0;
    for (int i = 1; i < argc; ++i) {
        std::string_view arg = argv[i];
        constexpr std::string_view rulesFlag = "--rules=";
        if (arg.substr(0, rulesFlag.size()) == rulesFlag) {
            rulesPath = arg.substr(rulesFlag.size());
        } else if (arg == "--verbose") {
            verbose = true;
        } else if (nPaths < 2) {
            paths[nPaths++] = arg;
        } else {
            nPaths = 3; // too many positionals
            break;
        }
    }
    if (nPaths != 2) {
        std::fprintf(stderr,
                     "usage: bench_compare [--rules=FILE] [--verbose] "
                     "BASELINE.json CURRENT.json\n");
        return 2;
    }

    std::vector<CompareRule> rules;
    if (rulesPath.empty()) {
        rules.push_back({"gauges.result.*", CompareDirection::Band,
                         0.10, 0.05});
    } else {
        std::string text, error;
        if (!readFile(rulesPath, text)) {
            std::fprintf(stderr, "cannot read rules file %s\n",
                         rulesPath.c_str());
            return 2;
        }
        if (!parseCompareRules(text, rules, &error)) {
            std::fprintf(stderr, "%s: %s\n", rulesPath.c_str(),
                         error.c_str());
            return 2;
        }
    }

    std::map<std::string, double> metrics[2];
    for (std::size_t i = 0; i < 2; ++i) {
        std::string text, error;
        if (!readFile(paths[i], text)) {
            std::fprintf(stderr, "cannot read %s\n", paths[i].c_str());
            return 2;
        }
        if (!parseMetricsJson(text, metrics[i], &error)) {
            std::fprintf(stderr, "%s: %s\n", paths[i].c_str(),
                         error.c_str());
            return 2;
        }
    }

    std::printf("comparing %s (current) against %s (baseline)\n",
                paths[1].c_str(), paths[0].c_str());
    CompareReport report =
        compareMetrics(metrics[0], metrics[1], rules);
    printCompareReport(std::cout, report, verbose);
    return report.ok() ? 0 : 1;
}
