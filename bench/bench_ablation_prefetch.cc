/**
 * @file
 * Ablation: next-page prefetching from remote memory (§3).
 *
 * "Eliminating page faults from the critical path has the additional
 * benefit that hardware prefetchers can prefetch more data, even from
 * remote memory" — impossible for fault-based systems because a
 * prefetch cannot cross a page fault (§4.4). This bench runs a
 * sequential-scan workload over Kona with the FPGA's next-page
 * prefetcher off and on, reporting critical-path fetches and the
 * application-visible time.
 */

#include "bench/bench_util.h"

namespace kona {
namespace {

struct Result
{
    Tick appNs;
    std::uint64_t remoteFetches;
    std::uint64_t prefetches;
};

Result
scan(bool prefetch, bool sequential)
{
    Fabric fabric;
    Controller controller(1 * MiB);
    MemoryNode node(fabric, 1, 256 * MiB);
    controller.registerNode(node);
    KonaConfig cfg;
    cfg.fpga.vfmemSize = 64 * MiB;
    cfg.fpga.fmemSize = 32 * MiB;
    cfg.fpga.prefetchNextPage = prefetch;
    cfg.hierarchy = HierarchyConfig::scaled();
    KonaRuntime runtime(fabric, controller, 0, cfg);

    constexpr std::size_t span = 16 * MiB;
    Addr region = runtime.allocate(span, pageSize);
    Rng rng(5);
    Tick before = runtime.appTime();
    // One line per page: the fetch-dominated pattern where prefetch
    // matters most (streaming over more data than FMem-hot lines).
    if (sequential) {
        for (Addr a = 0; a < span; a += pageSize)
            (void)runtime.load<std::uint64_t>(region + a);
    } else {
        for (std::size_t i = 0; i < span / pageSize; ++i) {
            Addr a = alignDown(rng.below(span - 8), pageSize);
            (void)runtime.load<std::uint64_t>(region + a);
        }
    }
    Result result;
    result.appNs = runtime.appTime() - before;
    result.remoteFetches = runtime.fpga().remoteFetches();
    result.prefetches = runtime.fpga().prefetches();
    return result;
}

} // namespace
} // namespace kona

int
main(int argc, char **argv)
{
    using namespace kona;
    bench::parseExportFlags(argc, argv);
    setQuietLogging(true);

    bench::section("Ablation: next-page prefetch from remote memory "
                   "(16MB scan)");
    bench::row("variant",
               {"app ms", "demand", "prefetched", "speedup"});

    Result seqOff = scan(false, true);
    Result seqOn = scan(true, true);
    Result rndOff = scan(false, false);
    Result rndOn = scan(true, false);

    auto line = [](const char *name, const Result &r, double speedup) {
        bench::row(name,
                   {bench::fmt(static_cast<double>(r.appNs) / 1e6),
                    bench::fmtInt(r.remoteFetches - r.prefetches),
                    bench::fmtInt(r.prefetches),
                    bench::fmt(speedup, 2)});
    };
    line("seq, prefetch off", seqOff, 1.0);
    line("seq, prefetch on", seqOn,
         static_cast<double>(seqOff.appNs) /
             static_cast<double>(seqOn.appNs));
    line("rand, prefetch off", rndOff, 1.0);
    line("rand, prefetch on", rndOn,
         static_cast<double>(rndOff.appNs) /
             static_cast<double>(rndOn.appNs));

    std::printf("\nShape (§3): sequential scans gain substantially "
                "(prefetches hide the remote fetch latency off the "
                "critical path); random access gains little. A "
                "fault-based runtime cannot do this at all — the "
                "prefetcher never crosses a page fault.\n");
    bench::recordResult("ablation_prefetch.seq_speedup",
                        static_cast<double>(seqOff.appNs) /
                            static_cast<double>(seqOn.appNs));
    bench::recordResult("ablation_prefetch.rand_speedup",
                        static_cast<double>(rndOff.appNs) /
                            static_cast<double>(rndOn.appNs));
    bench::recordResult("ablation_prefetch.seq_prefetches",
                        static_cast<double>(seqOn.prefetches));
    bench::flushExports();
    return 0;
}
