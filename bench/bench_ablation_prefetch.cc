/**
 * @file
 * Ablation: prefetching from remote memory (§3 / §4.4).
 *
 * "Eliminating page faults from the critical path has the additional
 * benefit that hardware prefetchers can prefetch more data, even from
 * remote memory" — impossible for fault-based systems because a
 * prefetch cannot cross a page fault (§4.4). The paper evaluates a
 * fixed next-page scheme; this bench sweeps the pluggable engine
 * (src/prefetch/) across four access patterns so each predictor meets
 * the stream it was built for and the one that defeats it:
 *
 *   seq     one load per page, ascending      (any policy should win)
 *   stride  constant +3/-3 page stride        (stride detector)
 *   graph   fixed pointer-chase permutation,  (correlation / Markov)
 *           walked 4 laps
 *   rand    uniform-random page touches       (nothing should win;
 *                                              adaptive must throttle)
 *
 * Pass --prefetch=POLICY[:depth] to sweep only {off, POLICY}.
 * Exports fpga.prefetch.* per run under "ablation.<wl>.<policy>".
 */

#include "bench/bench_util.h"

namespace kona {
namespace {

constexpr std::size_t span = 16 * MiB;
constexpr std::size_t numPages = span / pageSize;

/** Page-index touch order for one workload. */
std::vector<std::size_t>
makeStream(const std::string &workload)
{
    std::vector<std::size_t> order;
    if (workload == "seq") {
        for (std::size_t i = 0; i < numPages; ++i)
            order.push_back(i);
    } else if (workload == "stride") {
        // Constant +3-page stride (gcd(3, numPages) == 1, so the walk
        // covers every page), then a backward -3 phase to exercise
        // negative-stride detection.
        std::size_t p = 0;
        for (std::size_t i = 0; i < numPages / 2; ++i) {
            order.push_back(p);
            p = (p + 3) % numPages;
        }
        for (std::size_t i = 0; i < numPages / 2; ++i) {
            order.push_back(p);
            p = (p + numPages - 3) % numPages;
        }
    } else if (workload == "graph") {
        // A fixed random permutation cycle — the page-level shape of a
        // pointer chase. Each lap repeats the same successor edges, so
        // the Markov table confirms during lap 2 and predicts from
        // lap 3 on. Stride sees noise.
        std::vector<std::size_t> perm(numPages);
        for (std::size_t i = 0; i < numPages; ++i)
            perm[i] = i;
        Rng rng(11);
        for (std::size_t i = numPages - 1; i > 0; --i) {
            std::size_t j = rng.below(i + 1);
            std::swap(perm[i], perm[j]);
        }
        for (int lap = 0; lap < 4; ++lap)
            for (std::size_t i = 0; i < numPages; ++i)
                order.push_back(perm[i]);
    } else if (workload == "rand") {
        Rng rng(5);
        for (std::size_t i = 0; i < numPages; ++i)
            order.push_back(rng.below(numPages));
    } else {
        fatal("unknown workload ", workload);
    }
    return order;
}

struct Result
{
    Tick appNs = 0;
    std::uint64_t demand = 0;
    PrefetchStats stats;
};

std::string
slugOf(const std::string &policy)
{
    std::string slug = policy;
    for (char &c : slug) {
        if (c == ':')
            c = '_';
    }
    return slug;
}

Result
run(const std::string &workload, const std::string &policy,
    const std::vector<std::size_t> &stream)
{
    Fabric fabric;
    Controller controller(1 * MiB);
    MemoryNode node(fabric, 1, 256 * MiB);
    controller.registerNode(node);
    KonaConfig cfg;
    cfg.fpga.vfmemSize = 64 * MiB;
    // FMem holds half the footprint: steady demand misses without
    // prefetching, so there is something for the engine to hide.
    cfg.fpga.fmemSize = 8 * MiB;
    cfg.fpga.prefetchPolicy = policy;
    cfg.hierarchy = HierarchyConfig::scaled();
    KonaRuntime runtime(
        fabric, controller, 0, cfg,
        MetricScope(bench::exportRegistry(),
                    "ablation." + workload + "." + slugOf(policy)));

    Addr region = runtime.allocate(span, pageSize);
    Tick before = runtime.appTime();
    // One line per page: the fetch-dominated pattern where prefetch
    // matters most (streaming over more data than FMem-hot lines).
    for (std::size_t page : stream)
        (void)runtime.load<std::uint64_t>(region + page * pageSize);

    Result result;
    result.appNs = runtime.appTime() - before;
    result.demand = runtime.fpga().demandFetches();
    result.stats = runtime.fpga().prefetchStats();
    return result;
}

} // namespace
} // namespace kona

int
main(int argc, char **argv)
{
    using namespace kona;
    bench::parseExportFlags(argc, argv);
    setQuietLogging(true);

    std::vector<std::string> policies = {"off",      "next:1", "next:4",
                                         "stride:4", "corr:2", "adaptive:4"};
    if (!bench::exportOptions().prefetchPolicy.empty() &&
        bench::exportOptions().prefetchPolicy != "off") {
        policies = {"off", bench::exportOptions().prefetchPolicy};
    }

    const std::vector<std::string> workloads = {"seq", "stride", "graph",
                                                "rand"};
    for (const std::string &workload : workloads) {
        std::vector<std::size_t> stream = makeStream(workload);
        bench::section("Ablation: prefetch policies, " + workload +
                       " workload (" +
                       bench::fmtInt(stream.size()) + " page touches, "
                       "FMem = footprint/2)");
        bench::row("policy", {"app ms", "demand", "issued", "useful",
                              "wasted", "acc %", "speedup"});

        double offNs = 0.0;
        for (const std::string &policy : policies) {
            Result r = run(workload, policy, stream);
            if (policy == "off")
                offNs = static_cast<double>(r.appNs);
            double speedup = static_cast<double>(r.appNs) > 0.0
                                 ? offNs / static_cast<double>(r.appNs)
                                 : 1.0;
            bench::row(
                policy,
                {bench::fmt(static_cast<double>(r.appNs) / 1e6),
                 bench::fmtInt(r.demand), bench::fmtInt(r.stats.issued),
                 bench::fmtInt(r.stats.useful),
                 bench::fmtInt(r.stats.wasted),
                 bench::fmt(100.0 * r.stats.accuracy(), 1),
                 bench::fmt(speedup, 2)});

            std::string base = "ablation_prefetch." + workload + "." +
                               slugOf(policy);
            bench::recordResult(base + ".app_ms",
                                static_cast<double>(r.appNs) / 1e6);
            bench::recordResult(base + ".demand",
                                static_cast<double>(r.demand));
            bench::recordResult(base + ".issued",
                                static_cast<double>(r.stats.issued));
            bench::recordResult(base + ".useful",
                                static_cast<double>(r.stats.useful));
            bench::recordResult(base + ".wasted",
                                static_cast<double>(r.stats.wasted));
            bench::recordResult(base + ".accuracy",
                                r.stats.accuracy());
            bench::recordResult(base + ".speedup", speedup);
        }
    }

    std::printf(
        "\nShape (§3/§4.4): regular streams (seq, stride) gain "
        "substantially — the detector locks on and hides the remote "
        "fetch latency off the critical path; the repeated pointer "
        "chase only yields to the correlation table; uniform-random "
        "gains nothing, and the adaptive policy proves it by "
        "throttling itself to near-zero issues. A fault-based runtime "
        "cannot prefetch remote memory at all — the prefetcher never "
        "crosses a page fault.\n");
    bench::flushExports();
    return 0;
}
