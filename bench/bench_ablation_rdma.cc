/**
 * @file
 * Micro-ablations over the simulated RDMA stack and the Kona eviction
 * path, using google-benchmark. These quantify the §5.1 optimization
 * decisions: batching/linking, unsignaled completions, inline data,
 * payload-size scaling, CL log vs per-line writes, and the cost of
 * replication at eviction time.
 *
 * Reported counters: simulated nanoseconds per operation (simNs), the
 * real time column only reflects simulator speed.
 */

#include <benchmark/benchmark.h>

#include "bench/bench_util.h"
#include "workloads/microbench.h"

namespace kona {
namespace {

/** Fixture state for raw verb benchmarks. */
struct VerbEnv
{
    VerbEnv()
        : local(4 * MiB), remote(64 * MiB), poller(fabric.latency())
    {
        fabric.attachNode(0, &local);
        fabric.attachNode(1, &remote);
        mr = fabric.registerRegion(1, 0, 64 * MiB);
        qp = std::make_unique<QueuePair>(fabric, 0, 1, cq);
        buffer.resize(64 * KiB, 0x7e);
    }

    WorkRequest
    wr(std::size_t size, Addr addr, bool signaled = true)
    {
        WorkRequest w;
        w.wrId = nextId++;
        w.opcode = RdmaOpcode::Write;
        w.localBuf = buffer.data();
        w.remoteKey = mr.key;
        w.remoteAddr = addr;
        w.length = size;
        w.signaled = signaled;
        return w;
    }

    Fabric fabric;
    BackingStore local, remote;
    CompletionQueue cq;
    Poller poller;
    MemoryRegion mr;
    std::unique_ptr<QueuePair> qp;
    std::vector<std::uint8_t> buffer;
    std::uint64_t nextId = 1;
};

/** Single signaled write of Arg(0) bytes. */
void
BM_RdmaSingleWrite(benchmark::State &state)
{
    VerbEnv env;
    SimClock clock;
    auto size = static_cast<std::size_t>(state.range(0));
    std::uint64_t ops = 0;
    for (auto _ : state) {
        env.qp->post(env.wr(size, 0), clock);
        env.poller.waitOne(env.cq, clock);
        ++ops;
    }
    state.counters["simNs/op"] = static_cast<double>(clock.now()) /
                                 static_cast<double>(ops);
}
BENCHMARK(BM_RdmaSingleWrite)->Arg(64)->Arg(256)->Arg(4096)
    ->Arg(65536);

/** Linked chain of Arg(0) 64B writes, tail-signaled. */
void
BM_RdmaLinkedChain(benchmark::State &state)
{
    VerbEnv env;
    SimClock clock;
    auto chainLen = static_cast<std::size_t>(state.range(0));
    std::uint64_t ops = 0;
    std::vector<WorkRequest> chain;
    for (auto _ : state) {
        chain.clear();
        for (std::size_t i = 0; i < chainLen; ++i)
            chain.push_back(env.wr(64, i * 64, i + 1 == chainLen));
        env.qp->postLinked(chain, clock);
        env.poller.waitOne(env.cq, clock);
        ops += chainLen;
    }
    state.counters["simNs/op"] = static_cast<double>(clock.now()) /
                                 static_cast<double>(ops);
}
BENCHMARK(BM_RdmaLinkedChain)->Arg(1)->Arg(4)->Arg(16)->Arg(64)
    ->Arg(256);

/** Inline vs regular small writes. */
void
BM_RdmaInlineWrite(benchmark::State &state)
{
    VerbEnv env;
    SimClock clock;
    bool inlineData = state.range(0) != 0;
    std::uint64_t ops = 0;
    for (auto _ : state) {
        WorkRequest w = env.wr(64, 0);
        w.inlineData = inlineData;
        env.qp->post(w, clock);
        env.poller.waitOne(env.cq, clock);
        ++ops;
    }
    state.counters["simNs/op"] = static_cast<double>(clock.now()) /
                                 static_cast<double>(ops);
}
BENCHMARK(BM_RdmaInlineWrite)->Arg(0)->Arg(1);

/** Kona eviction of pages with Arg(0) dirty lines, CL log vs page. */
void
BM_EvictionModes(benchmark::State &state)
{
    bool clLog = state.range(1) != 0;
    auto dirtyLines = static_cast<unsigned>(state.range(0));

    Fabric fabric;
    Controller controller(1 * MiB);
    MemoryNode node(fabric, 1, 256 * MiB);
    controller.registerNode(node);
    KonaConfig cfg;
    cfg.fpga.vfmemSize = 64 * MiB;
    cfg.fpga.fmemSize = 8 * MiB;
    cfg.hierarchy = HierarchyConfig::scaled();
    cfg.evict.mode = clLog ? EvictionMode::ClLog
                             : EvictionMode::FullPage;
    cfg.evict.pumpPeriod = ~std::size_t(0);
    KonaRuntime runtime(fabric, controller, 0, cfg);
    constexpr std::size_t pages = 512;
    Addr region = runtime.allocate(pages * pageSize, pageSize);

    SimClock evictClock;
    std::uint64_t evicted = 0;
    for (auto _ : state) {
        state.PauseTiming();
        for (std::size_t p = 0; p < pages; ++p) {
            for (unsigned l = 0; l < dirtyLines; ++l) {
                runtime.store<std::uint64_t>(
                    region + p * pageSize + l * cacheLineSize, l + 1);
            }
        }
        runtime.hierarchy().flushAll();
        std::vector<Addr> vpns;
        for (std::size_t p = 0; p < pages; ++p)
            vpns.push_back(pageNumber(region) + p);
        state.ResumeTiming();
        runtime.evictionHandler().evictBatch(vpns, evictClock);
        evicted += pages;
    }
    state.counters["simNs/page"] =
        static_cast<double>(evictClock.now()) /
        static_cast<double>(evicted);
}
BENCHMARK(BM_EvictionModes)
    ->ArgsProduct({{1, 4, 16, 64}, {0, 1}});

/** Replication cost at eviction: 0, 1, 2 replicas. */
void
BM_ReplicationCost(benchmark::State &state)
{
    auto replicas = static_cast<std::size_t>(state.range(0));
    Fabric fabric;
    Controller controller(1 * MiB);
    std::vector<std::unique_ptr<MemoryNode>> nodes;
    for (NodeId id = 1; id <= 3; ++id) {
        nodes.push_back(std::make_unique<MemoryNode>(fabric, id,
                                                     256 * MiB));
        controller.registerNode(*nodes.back());
    }
    KonaConfig cfg;
    cfg.fpga.vfmemSize = 64 * MiB;
    cfg.fpga.fmemSize = 8 * MiB;
    cfg.hierarchy = HierarchyConfig::scaled();
    cfg.replicationFactor = replicas;
    cfg.evict.pumpPeriod = ~std::size_t(0);
    KonaRuntime runtime(fabric, controller, 0, cfg);
    constexpr std::size_t pages = 256;
    Addr region = runtime.allocate(pages * pageSize, pageSize);

    SimClock evictClock;
    std::uint64_t evicted = 0;
    for (auto _ : state) {
        state.PauseTiming();
        for (std::size_t p = 0; p < pages; ++p)
            runtime.store<std::uint64_t>(region + p * pageSize, p + 1);
        runtime.hierarchy().flushAll();
        std::vector<Addr> vpns;
        for (std::size_t p = 0; p < pages; ++p)
            vpns.push_back(pageNumber(region) + p);
        state.ResumeTiming();
        runtime.evictionHandler().evictBatch(vpns, evictClock);
        evicted += pages;
    }
    state.counters["simNs/page"] =
        static_cast<double>(evictClock.now()) /
        static_cast<double>(evicted);
}
BENCHMARK(BM_ReplicationCost)->Arg(0)->Arg(1)->Arg(2);

} // namespace
} // namespace kona

// Expanded BENCHMARK_MAIN(): the export flags must come out of argv
// before benchmark::Initialize, which rejects arguments it does not
// recognize.
int
main(int argc, char **argv)
{
    kona::bench::parseExportFlags(argc, argv);
    ::benchmark::Initialize(&argc, argv);
    if (::benchmark::ReportUnrecognizedArguments(argc, argv))
        return 1;
    ::benchmark::RunSpecifiedBenchmarks();
    ::benchmark::Shutdown();
    kona::bench::flushExports();
    return 0;
}
