/**
 * @file
 * Figure 11: eviction goodput at cache-line granularity.
 *
 * A region of pages is dirtied with N cache-lines per page
 * (contiguous in 11a, alternate in 11b) and then evicted:
 *
 *   Kona's CL log          — aggregated dirty lines, one RDMA write +
 *                            receiver unpack + ack per batch;
 *   Kona-VM 4KB writes     — registered-buffer copy + one 4KB RDMA
 *                            write per page;
 *   4KB writes no-copy     — idealized: no local copy (pre-registered
 *                            buffers), linked 4KB writes;
 *   CL writes no-copy      — idealized: one small RDMA write per
 *                            dirty-line run, linked, no copy.
 *
 * Goodput = dirty bytes / total transfer time, reported relative to
 * Kona-VM. Expected shape: CL log 4-5X for 1-4 contiguous lines,
 * 2-3X for 2-4 alternate lines, worse than 4KB only past ~16
 * discontiguous lines; 4KB no-copy ~1.5X over Kona-VM everywhere.
 * 11c: the CL log's time is dominated by Copy, with 15-20% RDMA,
 * 15-20% Bitmap and a small Ack share.
 */

#include "bench/bench_util.h"
#include "workloads/microbench.h"

namespace kona {
namespace {

constexpr std::size_t regionPages = 1024;   // 4MB scaled from 1GB

/** Dirty @p lines (line indices) in every page of a Kona region. */
void
dirtyPattern(KonaRuntime &runtime, Addr region,
             const std::vector<unsigned> &lines)
{
    for (std::size_t p = 0; p < regionPages; ++p) {
        for (unsigned line : lines) {
            Addr addr = region + p * pageSize + line * cacheLineSize;
            runtime.store<std::uint64_t>(addr,
                                         p * 64 + line + 1);
        }
    }
}

/** Evict everything and return ns spent + stats snapshot. */
struct EvictResult
{
    double ns;
    std::uint64_t dirtyBytes;
    EvictionBreakdown breakdown;
};

EvictResult
konaEvict(EvictionMode mode, const std::vector<unsigned> &lines,
          std::size_t depth = 1)
{
    Fabric fabric;
    Controller controller(1 * MiB);
    MemoryNode node(fabric, 1, 256 * MiB);
    controller.registerNode(node);
    KonaConfig cfg;
    cfg.fpga.vfmemSize = 64 * MiB;
    cfg.fpga.fmemSize = 8 * MiB;   // whole region fits: no churn
    cfg.hierarchy = HierarchyConfig::scaled();
    cfg.evict.mode = mode;
    cfg.evict.pipelineDepth = depth;
    cfg.evict.pumpPeriod = ~std::size_t(0);   // manual eviction only
    KonaRuntime runtime(fabric, controller, 0, cfg);

    Addr region = runtime.allocate(regionPages * pageSize, pageSize);
    dirtyPattern(runtime, region, lines);

    runtime.hierarchy().flushAll();
    runtime.evictionHandler().resetBreakdown();
    SimClock evictClock;
    std::vector<Addr> vpns;
    for (std::size_t p = 0; p < regionPages; ++p)
        vpns.push_back(pageNumber(region) + p);
    runtime.evictionHandler().evictBatch(vpns, evictClock);

    EvictResult result;
    result.ns = static_cast<double>(evictClock.now());
    result.dirtyBytes = regionPages * lines.size() * cacheLineSize;
    result.breakdown = runtime.evictionHandler().breakdown();
    return result;
}

/** Idealized no-copy baselines built straight on the RDMA verbs. */
double
idealizedNs(bool fullPage, const std::vector<unsigned> &lines)
{
    Fabric fabric;
    BackingStore local(64 * MiB), remote(256 * MiB);
    fabric.attachNode(0, &local);
    fabric.attachNode(1, &remote);
    MemoryRegion mr = fabric.registerRegion(1, 0, 256 * MiB);
    CompletionQueue cq;
    QueuePair qp(fabric, 0, 1, cq);
    Poller poller(fabric.latency());
    SimClock clock;

    static std::vector<std::uint8_t> buffer(pageSize, 0x5a);
    std::vector<WorkRequest> chain;
    std::uint64_t wrId = 1;
    // Decompose the line set into contiguous runs (one WR per run).
    std::vector<std::pair<unsigned, unsigned>> runs;
    unsigned i = 0;
    while (i < lines.size()) {
        unsigned start = i;
        while (i + 1 < lines.size() &&
               lines[i + 1] == lines[i] + 1)
            ++i;
        runs.push_back({lines[start], lines[i] - lines[start] + 1});
        ++i;
    }

    constexpr std::size_t batchPages = 64;
    for (std::size_t p = 0; p < regionPages; ++p) {
        if (fullPage) {
            WorkRequest wr;
            wr.wrId = wrId++;
            wr.opcode = RdmaOpcode::Write;
            wr.localBuf = buffer.data();
            wr.remoteKey = mr.key;
            wr.remoteAddr = p * pageSize;
            wr.length = pageSize;
            wr.signaled = false;
            chain.push_back(wr);
        } else {
            for (auto [first, count] : runs) {
                WorkRequest wr;
                wr.wrId = wrId++;
                wr.opcode = RdmaOpcode::Write;
                wr.localBuf = buffer.data();
                wr.remoteKey = mr.key;
                wr.remoteAddr = p * pageSize + first * cacheLineSize;
                wr.length = count * cacheLineSize;
                wr.signaled = false;
                chain.push_back(wr);
            }
        }
        // Post in page batches with only the tail signaled.
        if ((p + 1) % batchPages == 0 || p + 1 == regionPages) {
            chain.back().signaled = true;
            qp.postLinked(chain, clock);
            poller.waitOne(cq, clock);
            chain.clear();
        }
    }
    return static_cast<double>(clock.now());
}

void
sweep(const char *title, bool contiguous,
      const std::vector<unsigned> &counts)
{
    bench::section(title);
    std::vector<std::string> header = {"N lines"};
    for (unsigned n : counts)
        header.push_back(std::to_string(n));
    bench::row(header[0],
               std::vector<std::string>(header.begin() + 1,
                                        header.end()), 24, 8);

    std::vector<std::string> clLog, page4kIdeal, clIdeal;
    for (unsigned n : counts) {
        auto lines = contiguous ? contiguousLines(n)
                                : alternateLines(n);
        EvictResult cl = konaEvict(EvictionMode::ClLog, lines);
        EvictResult vm = konaEvict(EvictionMode::FullPage, lines);
        double ideal4k = idealizedNs(true, lines);
        double idealCl = idealizedNs(false, lines);

        // Goodput = dirty bytes / time; relative to the 4KB writer.
        double gVm = static_cast<double>(cl.dirtyBytes) / vm.ns;
        double gCl = static_cast<double>(cl.dirtyBytes) / cl.ns;
        double g4kIdeal = static_cast<double>(cl.dirtyBytes) /
                          ideal4k;
        double gClIdeal = static_cast<double>(cl.dirtyBytes) /
                          idealCl;
        clLog.push_back(bench::fmt(gCl / gVm));
        page4kIdeal.push_back(bench::fmt(g4kIdeal / gVm));
        clIdeal.push_back(bench::fmt(gClIdeal / gVm));

        std::string prefix = std::string("fig11.") +
                             (contiguous ? "contiguous." : "alternate.") +
                             std::to_string(n) + "_lines";
        bench::recordResult(prefix + ".cl_log_over_vm", gCl / gVm);
        bench::recordResult(prefix + ".ideal_4k_over_vm",
                            g4kIdeal / gVm);
        bench::recordResult(prefix + ".ideal_cl_over_vm",
                            gClIdeal / gVm);
    }
    bench::row("Kona's CL log", clLog, 24, 8);
    bench::row("4KB no-copy [ideal]", page4kIdeal, 24, 8);
    bench::row("CL no-copy [ideal]", clIdeal, 24, 8);
}

void
breakdownTable()
{
    bench::section("Figure 11c: CL log eviction time breakdown "
                    "(contiguous lines)");
    bench::row("N lines",
               {"bitmap%", "copy%", "rdma%", "unpack%", "wait%",
                "total ms"},
               24, 10);
    for (unsigned n : {1u, 8u, 64u}) {
        EvictResult cl = konaEvict(EvictionMode::ClLog,
                                   contiguousLines(n));
        const EvictionBreakdown &bd = cl.breakdown;
        double total = bd.totalNs();
        bench::row(std::to_string(n),
                   {bench::fmt(bd.bitmapNs / total * 100, 0),
                    bench::fmt(bd.copyNs / total * 100, 0),
                    bench::fmt(bd.rdmaNs / total * 100, 0),
                    bench::fmt(bd.unpackNs / total * 100, 0),
                    bench::fmt(bd.waitNs / total * 100, 0),
                    bench::fmt(total / 1e6, 2)},
                   24, 10);
    }
}

void
depthSweep()
{
    bench::section("Pipelined eviction: goodput vs pipeline depth "
                   "(dirty-heavy, 64 lines/page)");
    bench::row("depth", {"goodput GB/s", "vs depth 1", "total ms"},
               24, 14);
    auto lines = contiguousLines(64);
    double base = 0.0;
    for (std::size_t depth : {1u, 2u, 4u, 8u}) {
        EvictResult r = konaEvict(EvictionMode::ClLog, lines, depth);
        double goodput = static_cast<double>(r.dirtyBytes) / r.ns;
        if (depth == 1)
            base = goodput;
        double speedup = goodput / base;
        bench::row(std::to_string(depth),
                   {bench::fmt(goodput, 2), bench::fmt(speedup, 2),
                    bench::fmt(r.ns / 1e6, 2)},
                   24, 14);
        std::string prefix =
            "fig11.depth." + std::to_string(depth);
        bench::recordResult(prefix + ".goodput_gbps", goodput);
        bench::recordResult(prefix + ".speedup_over_depth1", speedup);
    }
}

} // namespace
} // namespace kona

int
main(int argc, char **argv)
{
    using namespace kona;
    bench::parseExportFlags(argc, argv);
    setQuietLogging(true);
    sweep("Figure 11a: goodput relative to Kona-VM — contiguous "
          "dirty lines",
          true, {1, 2, 4, 6, 8, 12, 16, 32, 64});
    sweep("Figure 11b: goodput relative to Kona-VM — alternate "
          "dirty lines",
          false, {1, 2, 4, 8, 12, 16, 32});
    breakdownTable();
    depthSweep();
    std::printf("\nShape: CL log 4-5X at 1-4 contiguous lines, 2-3X "
                "at 2-4 alternate; crossover vs 4KB beyond ~16 "
                "discontiguous lines; 4KB no-copy ~1.5X everywhere; "
                "breakdown dominated by Copy with 15-20%% RDMA and "
                "Bitmap.\n");
    bench::flushExports();
    return 0;
}
