/**
 * @file
 * Placement & tiering ablation: sweep the pluggable policy axes —
 * FMem victim selection (lru/lfu/scan/dirty), Controller slab
 * placement (free/rr/health), and hot/cold tiering (off/ewma) —
 * under two adversarial access mixes and report AMAT per config:
 *
 *  - zipf:  Zipfian-skewed accesses over a footprint 3x FMem, with a
 *           periodic sequential scan burst that floods the cache with
 *           one-touch pages (the scan-resistance stressor);
 *  - shift: the same skewed stream, but the hot region jumps between
 *           quarters of the footprint on a schedule scripted in the
 *           chaos-scenario text format ("@<op> shift <region>"), so
 *           recency-only policies drag a dead working set behind them.
 *
 * A third resident mix (footprint < FMem, no steady-state misses)
 * exists purely for --strict-alloc: with the policy layer in the loop
 * the access path must stay allocation-free (see DESIGN.md
 * "Simulator performance").
 *
 * Every run doubles as a content oracle: each word holds a value
 * derived from (address, seed, generation); a final sweep re-reads
 * the whole footprint and any mismatch counts as a lost page.
 * result.ablation_placement.*.lost_pages must be exactly zero — a
 * victim policy that evicts a fenced page, or a tiering demotion that
 * races a dirty writeback, shows up here before it shows up anywhere
 * else.
 *
 * Flags: --quick (short CI preset), --strict-alloc,
 *        --metrics-json=PATH (exports result.ablation_placement.*).
 */

#include <cmath>
#include <cstring>
#include <string>
#include <vector>

#include "bench/alloc_hook.h"
#include "bench/bench_util.h"
#include "chaos/chaos_scenario.h"
#include "common/rng.h"

namespace kona {
namespace {

constexpr std::size_t kFmemBytes = 4 * MiB;      // 1024 frames
constexpr std::size_t kFootprint = 12 * MiB;     // 3x FMem
constexpr std::size_t kResidentFootprint = 2 * MiB;
constexpr std::size_t kScanBytes = 4 * MiB;      // one FMem of junk
constexpr std::uint64_t kSeeds[] = {1, 2, 3, 4, 5};

/**
 * The shift mix's schedule, in the chaos harness's scenario text: the
 * node field of a "shift" event names the footprint quarter the hot
 * set jumps to. Op indices are fractions of the run (ops 100 = 100%).
 */
constexpr const char *kShiftSchedule = R"(
    scenario placement-shift
    workload zipf
    ops 100
    @25 shift 1
    @50 shift 2
    @75 shift 3
)";

/** One point of the sweep. */
struct PolicyConfig
{
    std::string victim;
    std::string placement;
    std::string tiering;

    std::string
    key() const
    {
        // "scan:2" -> "scan2" etc. so the metric path stays clean.
        auto clean = [](std::string s) {
            std::string out;
            for (char c : s)
                if (c != ':')
                    out += c;
            return out;
        };
        return clean(victim) + "-" + clean(placement) + "-" +
               clean(tiering);
    }
};

/** Aggregated outcome of one config across seeds. */
struct SweepResult
{
    double amatNs = 0;            ///< mean sim-ns per access
    std::uint64_t lostPages = 0;  ///< content-oracle mismatches
    std::uint64_t promoted = 0;
    std::uint64_t promotedUseful = 0;
    std::uint64_t promotedWasted = 0;
    std::uint64_t allocs = 0;     ///< heap allocs in the timed loop
};

/**
 * Zipfian(s=1) sampler over @p n ranks via the precomputed harmonic
 * CDF (exact, not the power-law approximation). Setup-time only
 * allocation; draws are a binary search.
 */
class Zipf
{
  public:
    Zipf(std::size_t n, Rng &rng) : rng_(rng), cdf_(n)
    {
        double sum = 0;
        for (std::size_t i = 0; i < n; ++i) {
            sum += 1.0 / static_cast<double>(i + 1);
            cdf_[i] = sum;
        }
        for (double &c : cdf_)
            c /= sum;
    }

    std::size_t
    draw()
    {
        double u = rng_.uniform();
        std::size_t lo = 0, hi = cdf_.size() - 1;
        while (lo < hi) {
            std::size_t mid = (lo + hi) / 2;
            if (cdf_[mid] < u)
                lo = mid + 1;
            else
                hi = mid;
        }
        return lo;
    }

  private:
    Rng &rng_;
    std::vector<double> cdf_;
};

/** The value every word of @p addr must hold in @p generation. */
std::uint64_t
expectedWord(Addr addr, std::uint64_t seed, std::uint64_t generation)
{
    std::uint64_t x = addr ^ (seed * 0x9e3779b97f4a7c15ULL) ^
                      (generation << 48);
    x ^= x >> 33;
    x *= 0xff51afd7ed558ccdULL;
    x ^= x >> 33;
    return x;
}

/** A Kona stack with the sweep's policies plugged in. */
struct Stack
{
    Stack(const PolicyConfig &pc, std::size_t footprint)
    {
        rack = std::make_unique<bench::Rack>(3, 64 * MiB, 1 * MiB);
        rack->controller.setPlacementPolicy(pc.placement);
        KonaConfig cfg;
        cfg.fpga.vfmemSize = 64 * MiB;
        cfg.fpga.fmemSize = kFmemBytes;
        cfg.fpga.victimPolicy = pc.victim;
        cfg.tiering = pc.tiering;
        runtime = std::make_unique<KonaRuntime>(
            rack->fabric, rack->controller, 0, cfg);
        base = runtime->allocate(footprint, pageSize);
    }

    std::unique_ptr<bench::Rack> rack;
    std::unique_ptr<KonaRuntime> runtime;
    Addr base = 0;
};

/**
 * Run one (config, mix, seed) cell: warm the footprint with the
 * oracle pattern, drive the access mix, then sweep the whole
 * footprint and count pages whose content diverged.
 */
SweepResult
runCell(const PolicyConfig &pc, const std::string &mix,
        std::uint64_t seed, std::uint64_t ops)
{
    std::size_t footprint =
        mix == "resident-zipf" ? kResidentFootprint : kFootprint;
    Stack stack(pc, footprint);
    KonaRuntime &rt = *stack.runtime;
    Addr base = stack.base;
    std::size_t pages = footprint / pageSize;

    // Oracle generation 0: every word of every page.
    std::vector<std::uint64_t> pageBuf(pageSize / 8);
    std::vector<std::uint64_t> generation(pages, 0);
    for (std::size_t p = 0; p < pages; ++p) {
        Addr pageAddr = base + p * pageSize;
        for (std::size_t w = 0; w < pageBuf.size(); ++w)
            pageBuf[w] = expectedWord(pageAddr + w * 8, seed, 0);
        rt.write(pageAddr, pageBuf.data(), pageSize);
    }

    Rng rng(seed * 0x2545f4914f6cdd1dULL + 0xb1e55);
    // Hot ranks cover a quarter of the footprint; the rank->page
    // permutation is seeded so each seed stresses different sets.
    std::size_t hotSpan = pages / 4;
    Zipf zipf(hotSpan, rng);
    std::vector<std::size_t> perm(pages);
    for (std::size_t i = 0; i < pages; ++i)
        perm[i] = i;
    for (std::size_t i = pages - 1; i > 0; --i)
        std::swap(perm[i], perm[rng.below(i + 1)]);

    // The shift mix's phase schedule comes from the chaos-scenario
    // text; op indices are percentages of this run's op budget.
    std::vector<std::pair<std::uint64_t, std::size_t>> shifts;
    if (mix == "shift") {
        ChaosScenario sc = parseChaosScenario(kShiftSchedule);
        for (const ChaosEvent &ev : sc.events) {
            if (ev.op == ChaosOp::ShiftWorkingSet)
                shifts.emplace_back(ev.atOp * ops / sc.ops, ev.node);
        }
    }

    std::size_t region = 0;       // which footprint quarter is hot
    std::size_t nextShift = 0;
    constexpr std::uint64_t scanPeriod = 24'000;
    std::size_t scanPages = kScanBytes / pageSize;

    std::uint64_t buf = 0;
    Tick simStart = rt.elapsed();
    std::uint64_t allocStart = bench::allocCount();
    std::uint64_t accesses = 0;
    for (std::uint64_t i = 0; i < ops; ++i) {
        while (nextShift < shifts.size() &&
               i >= shifts[nextShift].first) {
            region = shifts[nextShift].second % 4;
            ++nextShift;
        }
        if (mix != "resident-zipf" && (i + 1) % scanPeriod == 0) {
            // Scan burst: one pass of sequential single-touch reads.
            for (std::size_t p = 0; p < scanPages; ++p) {
                rt.read(base + (p % pages) * pageSize + 256, &buf,
                        sizeof(buf));
                ++accesses;
            }
            continue;
        }
        std::size_t rank = zipf.draw();
        std::size_t page = perm[(region * hotSpan + rank) % pages];
        Addr pageAddr = base + page * pageSize;
        std::size_t word = rng.below(pageBuf.size());
        Addr addr = pageAddr + word * 8;
        if (rng.chance(0.3)) {
            // Writes bump the page's generation: rewrite the whole
            // page so the oracle stays whole-page checkable.
            std::uint64_t gen = ++generation[page];
            for (std::size_t w = 0; w < pageBuf.size(); ++w)
                pageBuf[w] =
                    expectedWord(pageAddr + w * 8, seed, gen);
            rt.write(pageAddr, pageBuf.data(), pageSize);
        } else {
            rt.read(addr, &buf, sizeof(buf));
        }
        ++accesses;
    }

    SweepResult r;
    r.allocs = bench::allocCount() - allocStart;
    r.amatNs = accesses > 0
        ? static_cast<double>(rt.elapsed() - simStart) /
              static_cast<double>(accesses)
        : 0.0;

    // Content oracle: every page must read back its generation's
    // pattern, bit-exact, no matter which policies shuffled it.
    for (std::size_t p = 0; p < pages; ++p) {
        Addr pageAddr = base + p * pageSize;
        rt.read(pageAddr, pageBuf.data(), pageSize);
        for (std::size_t w = 0; w < pageBuf.size(); ++w) {
            if (pageBuf[w] !=
                expectedWord(pageAddr + w * 8, seed,
                             generation[p])) {
                ++r.lostPages;
                break;
            }
        }
    }

    if (TieringEngine *tier = rt.tieringEngine()) {
        r.promoted = tier->promoted();
        r.promotedUseful = tier->promotedUseful();
        r.promotedWasted = tier->promotedWasted();
    }
    return r;
}

/** Mean over the seed set, with lost pages and counters summed. */
SweepResult
runConfig(const PolicyConfig &pc, const std::string &mix,
          std::uint64_t ops)
{
    SweepResult agg;
    for (std::uint64_t seed : kSeeds) {
        SweepResult r = runCell(pc, mix, seed, ops);
        agg.amatNs += r.amatNs / std::size(kSeeds);
        agg.lostPages += r.lostPages;
        agg.promoted += r.promoted;
        agg.promotedUseful += r.promotedUseful;
        agg.promotedWasted += r.promotedWasted;
        agg.allocs += r.allocs;
    }
    return agg;
}

} // namespace
} // namespace kona

int
main(int argc, char **argv)
{
    using namespace kona;
    bench::parseExportFlags(argc, argv);
    setQuietLogging(true);

    bool quick = false;
    bool strictAlloc = false;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--quick") == 0)
            quick = true;
        else if (std::strcmp(argv[i], "--strict-alloc") == 0)
            strictAlloc = true;
        else
            fatal("unknown flag \"", argv[i],
                  "\"; known: --quick --strict-alloc "
                  "--metrics-json=PATH");
    }

    std::uint64_t ops = quick ? 60'000 : 240'000;

    // The sweep: every victim policy with and without tiering on the
    // default placement, plus the placement axis on the default
    // victim policy.
    std::vector<PolicyConfig> sweep = {
        {"lru", "free", "off"},   {"lru", "free", "ewma"},
        {"lfu", "free", "off"},   {"lfu", "free", "ewma"},
        {"scan:2", "free", "off"}, {"scan:2", "free", "ewma"},
        {"dirty", "free", "off"}, {"dirty", "free", "ewma"},
        {"lru", "rr", "off"},     {"lru", "health", "off"},
    };

    double lruOff = 0, bestNonLruOff = 1e300;
    double bestOff = 1e300, bestEwma = 1e300;
    std::uint64_t totalLost = 0;

    for (const std::string &mix : {std::string("zipf"),
                                   std::string("shift")}) {
        bench::section("Placement & tiering ablation — " + mix +
                       " mix (" + std::to_string(ops) +
                       " ops x 5 seeds)");
        bench::row("config", {"amat ns", "lost", "promoted", "useful",
                              "wasted"});
        for (const PolicyConfig &pc : sweep) {
            SweepResult r = runConfig(pc, mix, ops);
            bench::row(pc.key(),
                       {bench::fmt(r.amatNs, 1),
                        bench::fmtInt(r.lostPages),
                        bench::fmtInt(r.promoted),
                        bench::fmtInt(r.promotedUseful),
                        bench::fmtInt(r.promotedWasted)});
            std::string prefix =
                "ablation_placement." + mix + "." + pc.key();
            bench::recordResult(prefix + ".amat_ns", r.amatNs);
            bench::recordResult(prefix + ".lost_pages",
                                static_cast<double>(r.lostPages));
            if (pc.tiering != "off") {
                double attempts = static_cast<double>(
                    r.promotedUseful + r.promotedWasted);
                bench::recordResult(
                    prefix + ".promote_accuracy",
                    attempts > 0 ? r.promotedUseful / attempts : 0.0);
            }
            totalLost += r.lostPages;
            if (mix == "zipf" && pc.placement == "free") {
                if (pc.tiering == "off") {
                    bestOff = std::min(bestOff, r.amatNs);
                    if (pc.victim == "lru")
                        lruOff = r.amatNs;
                    else
                        bestNonLruOff =
                            std::min(bestNonLruOff, r.amatNs);
                } else {
                    bestEwma = std::min(bestEwma, r.amatNs);
                }
            }
        }
    }

    // Self-check flags the gate pins exact: on the skewed mix, at
    // least one non-LRU victim policy must beat LRU, and the best
    // tiering-on config must beat both the best tiering-off config
    // and the plain LRU/off baseline.
    bool nonLruWins = bestNonLruOff < lruOff;
    bool tieringWins = bestEwma < bestOff && bestEwma < lruOff;
    bench::recordResult("ablation_placement.zipf.nonlru_beats_lru",
                        nonLruWins ? 1.0 : 0.0);
    bench::recordResult("ablation_placement.zipf.tiering_beats_off",
                        tieringWins ? 1.0 : 0.0);
    std::printf("\nzipf: best non-LRU %.1f ns vs LRU %.1f ns (%s); "
                "best tiering-on %.1f ns vs best off %.1f ns (%s)\n",
                bestNonLruOff, lruOff,
                nonLruWins ? "non-LRU wins" : "LRU wins",
                bestEwma, bestOff,
                tieringWins ? "tiering wins" : "off wins");

    // --strict-alloc: the resident mix must not allocate in steady
    // state even with every policy axis engaged.
    std::uint64_t residentAllocs = 0;
    for (const PolicyConfig &pc :
         {PolicyConfig{"scan:2", "free", "ewma"},
          PolicyConfig{"lru", "rr", "off"}}) {
        SweepResult r = runConfig(pc, "resident-zipf", ops / 4);
        residentAllocs += r.allocs;
        totalLost += r.lostPages;
        bench::recordResult("ablation_placement.resident." +
                                pc.key() + ".allocs",
                            static_cast<double>(r.allocs));
    }
    bench::recordResult("ablation_placement.lost_pages_total",
                        static_cast<double>(totalLost));

    bench::flushExports();

    if (totalLost != 0) {
        std::printf("FAIL: content oracle lost %llu pages\n",
                    static_cast<unsigned long long>(totalLost));
        return 1;
    }
    if (strictAlloc && residentAllocs != 0) {
        std::printf("FAIL: %llu steady-state heap allocations on the "
                    "resident mix (--strict-alloc)\n",
                    static_cast<unsigned long long>(residentAllocs));
        return 1;
    }
    return 0;
}
