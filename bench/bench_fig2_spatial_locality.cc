/**
 * @file
 * Figure 2: CDF of the number of accessed cache-lines within each 4KB
 * page, for Redis-Rand and Redis-Seq, reads and writes separately.
 *
 * Expected shape: Redis-Rand is skewed toward pages with 1-8 accessed
 * lines; Redis-Seq has a large mass at 64 (whole page); both patterns
 * appear in both workloads.
 */

#include "bench/bench_util.h"
#include "trace/access_trace.h"
#include "trace/pattern_analyzer.h"

namespace kona {
namespace {

AccessPatternAnalyzer
analyze(const std::string &name)
{
    bench::PlainEnv env;
    TracingMemory traced(env.store);
    AccessPatternAnalyzer analyzer;
    WorkloadContext context(
        traced,
        [&env](std::size_t s, std::size_t a) {
            return *env.heap.allocate(s, a);
        },
        [&env](Addr a) { env.heap.deallocate(a); });
    auto workload = makeWorkload(name, context);
    workload->setup();
    traced.addSink(&analyzer);
    for (std::size_t w = 0; w < defaultWindowCount(name); ++w) {
        if (workload->run(defaultWindowOps(name)) == 0)
            break;
        traced.endWindow();
    }
    return analyzer;
}

void
printCdf(const std::string &label, const IntDistribution &dist)
{
    std::vector<std::string> cells;
    for (std::uint64_t n : {1, 2, 4, 8, 16, 32, 63, 64})
        cells.push_back(bench::fmt(dist.cdfAt(n), 3));
    bench::row(label, cells, 24, 9);
}

} // namespace
} // namespace kona

int
main(int argc, char **argv)
{
    using namespace kona;
    bench::parseExportFlags(argc, argv);
    setQuietLogging(true);
    bench::section("Figure 2: CDF of accessed cache-lines per page "
                   "(Redis)");
    bench::row("series \\ N lines <=",
               {"1", "2", "4", "8", "16", "32", "63", "64"}, 24, 9);

    AccessPatternAnalyzer rand = analyze("redis-rand");
    AccessPatternAnalyzer seq = analyze("redis-seq");
    printCdf("reads (rand)", rand.linesPerPageDist(AccessType::Read));
    printCdf("writes (rand)",
             rand.linesPerPageDist(AccessType::Write));
    printCdf("reads (seq)", seq.linesPerPageDist(AccessType::Read));
    printCdf("writes (seq)", seq.linesPerPageDist(AccessType::Write));

    double randMedian = static_cast<double>(
        rand.linesPerPageDist(AccessType::Write).quantile(0.5));
    double seqFullFrac =
        1.0 -
        seq.linesPerPageDist(AccessType::Write).cdfAt(63);
    std::printf("\nShape: Rand write median lines/page = %.0f "
                "(paper: 1-8); Seq fraction of fully-written pages = "
                "%.2f (paper: large).\n",
                randMedian, seqFullFrac);
    bench::recordResult("fig2.rand_write_median_lines_per_page",
                        randMedian);
    bench::recordResult("fig2.seq_full_page_write_fraction",
                        seqFullFrac);
    bench::flushExports();
    return 0;
}
