/**
 * @file
 * Figure 10: application speedup of coherence-based cache-line dirty
 * tracking relative to 4KB write-protection, per workload, measured
 * with KTracker running both schemes over the same execution.
 *
 * Expected shape: speedups from ~1% (Redis-Seq, Histogram — few
 * protected-page re-touches per window) up to ~35% (Redis-Rand —
 * every window re-faults thousands of scattered pages).
 */

#include "bench/bench_util.h"
#include "tools/ktracker.h"
#include "trace/access_trace.h"

namespace kona {
namespace {

struct PaperRow
{
    const char *name;
    double speedupPct;
};

const PaperRow paperRows[] = {
    {"redis-rand", 35.0}, {"redis-seq", 1.0},
    {"histogram", 1.0},   {"linear-regression", 3.0},
    {"connected-components", 10.0}, {"graph-coloring", 12.0},
    {"label-propagation", 15.0},    {"pagerank", 17.0},
};

double
speedup(const std::string &name, double *overheadPct = nullptr)
{
    bench::PlainEnv env;
    TracingMemory traced(env.store);
    WorkloadContext context(
        traced,
        [&env](std::size_t s, std::size_t a) {
            return *env.heap.allocate(s, a);
        },
        [&env](Addr a) { env.heap.deallocate(a); });
    auto workload = makeWorkload(name, context);
    workload->setup();

    KTracker tracker(env.store);
    tracker.trackRegion(pageSize, env.heap.totalSize());
    traced.addSink(&tracker);

    std::uint64_t windowOps = defaultWindowOps(name);
    if (name.rfind("redis", 0) == 0)
        windowOps *= 4;   // wider windows: more value collisions/page
    for (std::size_t w = 0; w < defaultWindowCount(name); ++w) {
        if (workload->run(windowOps) == 0)
            break;
        traced.endWindow();
    }
    if (overheadPct != nullptr) {
        // §6.3: KTracker's own snapshot/diff work relative to the
        // application's time (the paper measures a 60% throughput
        // loss while emulating, 95% of it from copying + comparing).
        *overheadPct = tracker.trackerOverheadNs() /
                       tracker.appTimeClNs() * 100.0;
    }
    return tracker.speedupPercent();
}

} // namespace
} // namespace kona

int
main(int argc, char **argv)
{
    using namespace kona;
    bench::parseExportFlags(argc, argv);
    setQuietLogging(true);
    bench::section("Figure 10: speedup of cache-line tracking vs "
                   "4KB write-protection (percent)");
    bench::row("workload", {"measured", "paper"});
    double worst = 0.0, best = 1e9;
    double redisOverhead = 0.0;
    std::string worstName, bestName;
    for (const PaperRow &paper : paperRows) {
        double pct = speedup(paper.name,
                             paper.name == std::string("redis-rand")
                                 ? &redisOverhead : nullptr);
        bench::row(paper.name,
                   {bench::fmt(pct, 1), bench::fmt(paper.speedupPct, 0)});
        bench::recordResult(std::string("fig10.") + paper.name +
                                ".speedup_pct",
                            pct);
        if (pct > worst) {
            worst = pct;
            worstName = paper.name;
        }
        if (pct < best) {
            best = pct;
            bestName = paper.name;
        }
    }
    std::printf("\nShape: range ~1%%-35%%; redis-rand highest "
                "(measured max: %s at %.1f%%), redis-seq/histogram "
                "lowest (measured min: %s at %.1f%%).\n",
                worstName.c_str(), worst, bestName.c_str(), best);
    std::printf("§6.3 emulation overhead (KTracker diff work / app "
                "time, redis-rand): %.0f%% (paper: the emulated "
                "server ran at 60%% lower throughput)\n",
                redisOverhead);
    bench::recordResult("fig10.redis_rand_tracker_overhead_pct",
                        redisOverhead);
    bench::flushExports();
    return 0;
}
