/**
 * @file
 * Chaos harness: runs every builtin chaos scenario across a seed
 * sweep, reports per-scenario p99 AMAT and availability, and checks
 * each run's final memory image against the scenario's fault-free
 * oracle. Exports everything through --metrics-json= (CI publishes it
 * as BENCH_chaos.json).
 *
 *   bench_chaos [--quick] [--soak] [--metrics-json=PATH]
 *               [--events-out=PATH]
 *
 * --quick: one seed per scenario (PR-gating CI).
 * --soak: ten seeds per scenario (the scheduled soak job).
 * Default: five seeds (the acceptance sweep).
 * --events-out: concatenated JSONL of every run's event journal (the
 * soak job archives it so a failing seed's transition history is
 * preserved).
 *
 * Exit status is non-zero when any run diverges from its oracle.
 */

#include <cstring>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "chaos/chaos_runner.h"

using namespace kona;
using namespace kona::bench;

int
main(int argc, char **argv)
{
    parseExportFlags(argc, argv);
    std::ofstream eventsOs;
    if (!exportOptions().eventsOut.empty()) {
        eventsOs.open(exportOptions().eventsOut);
        if (!eventsOs)
            fatal("cannot open ", exportOptions().eventsOut,
                  " for events export");
    }
    std::size_t seedCount = 5;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--quick") == 0)
            seedCount = 1;
        else if (std::strcmp(argv[i], "--soak") == 0)
            seedCount = 10;
    }
    std::vector<std::uint64_t> seeds;
    for (std::size_t i = 0; i < seedCount; ++i)
        seeds.push_back(0x5eedULL + 0x9e37ULL * i);

    std::uint64_t mismatches = 0;
    for (const ChaosScenario &scenario : builtinChaosScenarios()) {
        section("chaos: " + scenario.name);
        row("seed", {"p99 us", "mean us", "avail", "hedged", "oracle"});

        // The oracle applies no events, so it is seed-independent:
        // compute it once per scenario.
        ChaosRunConfig oracleCfg;
        oracleCfg.faultFree = true;
        ChaosReport oracle = runChaosScenario(scenario, oracleCfg);

        const std::string prefix = "chaos." + scenario.name;
        double worstP99 = 0.0, worstAvail = 1.0;
        std::uint64_t scenarioMismatches = 0;
        for (std::uint64_t seed : seeds) {
            ChaosRunConfig cfg;
            cfg.seed = seed;
            ChaosReport r = runChaosScenario(scenario, cfg);
            if (eventsOs.is_open()) {
                // One marker line per run so the concatenated stream
                // stays attributable to (scenario, seed).
                eventsOs << "{\"event\": \"run\", \"scenario\": \""
                         << scenario.name << "\", \"seed\": " << seed
                         << "}\n";
                EventJournal::writeEventsJsonl(eventsOs, r.journal);
            }
            bool match = r.image == oracle.image;
            scenarioMismatches += match ? 0 : 1;
            worstP99 = std::max(worstP99, r.p99OpNs);
            worstAvail = std::min(worstAvail, r.availability);
            row(fmtInt(seed),
                {fmt(r.p99OpNs / 1000.0), fmt(r.meanOpNs / 1000.0),
                 fmt(r.availability, 4), fmtInt(r.hedgedReads),
                 match ? "ok" : "MISMATCH"});
        }
        mismatches += scenarioMismatches;
        recordResult(prefix + ".p99_us", worstP99 / 1000.0);
        recordResult(prefix + ".availability", worstAvail);
        recordResult(prefix + ".oracle_ok",
                     scenarioMismatches == 0 ? 1.0 : 0.0);
    }
    recordResult("chaos.seeds", static_cast<double>(seedCount));
    recordResult("chaos.oracle_mismatches",
                 static_cast<double>(mismatches));
    flushExports();
    if (mismatches > 0) {
        std::printf("\n%llu oracle mismatch(es)\n",
                    static_cast<unsigned long long>(mismatches));
        return 1;
    }
    std::printf("\nall scenarios match their fault-free oracle\n");
    return 0;
}
