/**
 * @file
 * Figure 3: CDF of the length of contiguous accessed-cache-line
 * segments within 4KB pages, for Redis-Rand and Redis-Seq.
 *
 * Expected shape: most segments are 1-4 lines long for both
 * workloads; Redis-Seq additionally has a visible mass of page-length
 * (64-line) segments. Segment contiguity is what makes the CL log's
 * aggregated runs efficient (§6.4).
 */

#include "bench/bench_util.h"
#include "trace/access_trace.h"
#include "trace/pattern_analyzer.h"

namespace kona {
namespace {

AccessPatternAnalyzer
analyze(const std::string &name)
{
    bench::PlainEnv env;
    TracingMemory traced(env.store);
    AccessPatternAnalyzer analyzer;
    WorkloadContext context(
        traced,
        [&env](std::size_t s, std::size_t a) {
            return *env.heap.allocate(s, a);
        },
        [&env](Addr a) { env.heap.deallocate(a); });
    auto workload = makeWorkload(name, context);
    workload->setup();
    traced.addSink(&analyzer);
    for (std::size_t w = 0; w < defaultWindowCount(name); ++w) {
        if (workload->run(defaultWindowOps(name)) == 0)
            break;
        traced.endWindow();
    }
    return analyzer;
}

void
printCdf(const std::string &label, const IntDistribution &dist)
{
    std::vector<std::string> cells;
    for (std::uint64_t n : {1, 2, 4, 8, 16, 32, 63, 64})
        cells.push_back(bench::fmt(dist.cdfAt(n), 3));
    bench::row(label, cells, 24, 9);
}

} // namespace
} // namespace kona

int
main(int argc, char **argv)
{
    using namespace kona;
    bench::parseExportFlags(argc, argv);
    setQuietLogging(true);
    bench::section("Figure 3: CDF of contiguous accessed-line segment "
                   "lengths (Redis)");
    bench::row("series \\ length <=",
               {"1", "2", "4", "8", "16", "32", "63", "64"}, 24, 9);

    AccessPatternAnalyzer rand = analyze("redis-rand");
    AccessPatternAnalyzer seq = analyze("redis-seq");
    printCdf("reads (rand)", rand.segmentLengths(AccessType::Read));
    printCdf("writes (rand)", rand.segmentLengths(AccessType::Write));
    printCdf("reads (seq)", seq.segmentLengths(AccessType::Read));
    printCdf("writes (seq)", seq.segmentLengths(AccessType::Write));

    double randShort = rand.segmentLengths(AccessType::Write).cdfAt(4);
    double seqPageTail =
        1.0 - seq.segmentLengths(AccessType::Write).cdfAt(63);
    std::printf("\nShape: for Rand, >=90%% of write segments should "
                "be <= 4 lines: measured %.2f. For Seq, a page-length "
                "tail should exist: P(len = 64) = %.2f.\n",
                randShort, seqPageTail);
    bench::recordResult("fig3.rand_write_segments_le4_fraction",
                        randShort);
    bench::recordResult("fig3.seq_page_length_segment_fraction",
                        seqPageTail);
    bench::flushExports();
    return 0;
}
