/**
 * @file
 * §2.1 / §6.1 motivation numbers:
 *
 *  - remote fetch latencies: RDMA 4KB ~3us; Kona fetch ~3us (no
 *    fault); Kona-VM ~10.5us; LegoOS ~10us; Infiniswap ~40us; and
 *    Infiniswap eviction latency >32us vs a 3us RDMA write;
 *  - Redis throughput collapse: moving 25% of a Redis dataset remote
 *    costs >60% of throughput under Infiniswap;
 *  - Kona-VM vs Infiniswap: Kona-VM (userfaultfd) is similar to or up
 *    to ~60% faster (§6.1).
 */

#include "bench/bench_util.h"
#include "workloads/kv_store.h"

namespace kona {
namespace {

/** Cold page-fetch latency of one VM personality, ns. */
Tick
coldFetch(VmPersonality personality)
{
    bench::Rack rack;
    VmConfig cfg;
    cfg.personality = personality;
    cfg.hierarchy = HierarchyConfig::scaled();
    VmRuntime runtime(rack.fabric, rack.controller, 0, cfg);
    Addr a = runtime.allocate(pageSize, pageSize);
    Tick before = runtime.appClock().now();
    runtime.load<std::uint64_t>(a);
    return runtime.appClock().now() - before;
}

/** Kona's cold line-fetch latency, ns. */
Tick
konaColdFetch()
{
    bench::Rack rack;
    KonaConfig cfg;
    cfg.hierarchy = HierarchyConfig::scaled();
    KonaRuntime runtime(rack.fabric, rack.controller, 0, cfg);
    Addr a = runtime.allocate(pageSize, pageSize);
    Tick before = runtime.appTime();
    runtime.load<std::uint64_t>(a);
    return runtime.appTime() - before;
}

/** Raw 4KB RDMA op latency, ns. */
Tick
raw4kRdma()
{
    Fabric fabric;
    BackingStore local(1 * MiB), remote(16 * MiB);
    fabric.attachNode(0, &local);
    fabric.attachNode(1, &remote);
    MemoryRegion mr = fabric.registerRegion(1, 0, 16 * MiB);
    CompletionQueue cq;
    QueuePair qp(fabric, 0, 1, cq);
    Poller poller(fabric.latency());
    SimClock clock;
    std::vector<std::uint8_t> buf(pageSize, 1);
    WorkRequest wr;
    wr.wrId = 1;
    wr.opcode = RdmaOpcode::Write;
    wr.localBuf = buf.data();
    wr.remoteKey = mr.key;
    wr.remoteAddr = 0;
    wr.length = pageSize;
    qp.post(wr, clock);
    poller.waitOne(cq, clock);
    return clock.now();
}

/** VM eviction latency for one dirty page (on the app path), ns. */
Tick
vmEvictionLatency(VmPersonality personality)
{
    bench::Rack rack;
    VmConfig cfg;
    cfg.personality = personality;
    cfg.localCachePages = 1;
    cfg.backgroundEviction = false;   // measure the full path
    cfg.hierarchy = HierarchyConfig::scaled();
    VmRuntime runtime(rack.fabric, rack.controller, 0, cfg);
    Addr a = runtime.allocate(2 * pageSize, pageSize);
    runtime.store<std::uint64_t>(a, 1);   // page 0 resident + dirty
    Tick before = runtime.appClock().now();
    runtime.store<std::uint64_t>(a + pageSize, 2);   // evicts page 0
    Tick faultPlusEvict = runtime.appClock().now() - before;
    // Subtract the fetch itself to isolate eviction.
    return faultPlusEvict -
           static_cast<Tick>(remoteFetchNs(rack.fabric.latency(),
                                           personality));
}

/** Redis-like throughput (ops per simulated second) with a fraction
 *  of the dataset remote. */
double
redisThroughput(double localFraction, VmPersonality personality,
                bool useKona)
{
    bench::Rack rack;
    std::unique_ptr<RemoteMemoryRuntime> runtime;
    // Measure the true footprint with a dry setup first.
    static std::size_t footprint = [] {
        bench::PlainEnv env;
        KvWorkload::Params params;
        params.numKeys = 20000;
        KvWorkload dry(env.context, params);
        dry.setup();
        return dry.footprintBytes();
    }();
    auto cacheBytes = static_cast<std::size_t>(
        static_cast<double>(footprint) * localFraction);
    if (useKona) {
        KonaConfig cfg;
        cfg.fpga.fmemSize =
            std::max<std::size_t>(alignDown(cacheBytes, 16 * pageSize),
                                  16 * pageSize);
        cfg.hierarchy = HierarchyConfig::scaled();
        runtime = std::make_unique<KonaRuntime>(rack.fabric,
                                                rack.controller, 0,
                                                cfg);
    } else {
        VmConfig cfg;
        cfg.personality = personality;
        cfg.localCachePages =
            std::max<std::size_t>(cacheBytes / pageSize, 16);
        cfg.hierarchy = HierarchyConfig::scaled();
        runtime = std::make_unique<VmRuntime>(rack.fabric,
                                              rack.controller, 0,
                                              cfg);
    }
    WorkloadContext context = bench::runtimeContext(*runtime);
    KvWorkload::Params params;
    params.numKeys = 20000;
    KvWorkload workload(context, params);
    workload.setup();
    Tick before = runtime->elapsed();
    const std::uint64_t ops = 20000;
    workload.run(ops);
    Tick ns = runtime->elapsed() - before;
    return static_cast<double>(ops) /
           (static_cast<double>(ns) / 1e9);
}

} // namespace
} // namespace kona

int
main(int argc, char **argv)
{
    using namespace kona;
    bench::parseExportFlags(argc, argv);
    setQuietLogging(true);

    Tick rdma4k = raw4kRdma();
    Tick konaFetch = konaColdFetch();
    Tick legoFetch = coldFetch(VmPersonality::LegoOs);
    Tick konaVmFetch = coldFetch(VmPersonality::KonaVm);
    Tick infiniFetch = coldFetch(VmPersonality::Infiniswap);
    Tick infiniEvict = vmEvictionLatency(VmPersonality::Infiniswap);
    bench::recordResult("motivation.rdma_4k_write_ns",
                        static_cast<double>(rdma4k));
    bench::recordResult("motivation.kona_line_fetch_ns",
                        static_cast<double>(konaFetch));
    bench::recordResult("motivation.legoos_fetch_ns",
                        static_cast<double>(legoFetch));
    bench::recordResult("motivation.kona_vm_fetch_ns",
                        static_cast<double>(konaVmFetch));
    bench::recordResult("motivation.infiniswap_fetch_ns",
                        static_cast<double>(infiniFetch));
    bench::recordResult("motivation.infiniswap_eviction_ns",
                        static_cast<double>(infiniEvict));

    bench::section("Motivation (§2.1): remote access latencies (us)");
    bench::row("operation", {"measured", "paper"});
    bench::row("RDMA 4KB write",
               {bench::fmt(rdma4k / 1e3, 1), "~3"});
    bench::row("Kona line fetch",
               {bench::fmt(konaFetch / 1e3, 1), "~3"});
    bench::row("LegoOS fetch",
               {bench::fmt(legoFetch / 1e3, 1), "~10"});
    bench::row("Kona-VM fetch",
               {bench::fmt(konaVmFetch / 1e3, 1), "~10"});
    bench::row("Infiniswap fetch",
               {bench::fmt(infiniFetch / 1e3, 1), "~40"});
    bench::row("Infiniswap eviction",
               {bench::fmt(infiniEvict / 1e3, 1), ">32"});

    bench::section("Motivation (§2.1): Redis throughput vs local "
                   "memory fraction (Infiniswap)");
    bench::row("local fraction", {"100%", "75%", "50%", "25%"});
    std::vector<double> tput;
    for (double frac : {1.0, 0.75, 0.50, 0.25}) {
        tput.push_back(redisThroughput(frac,
                                       VmPersonality::Infiniswap,
                                       false));
    }
    bench::row("kops/s",
               {bench::fmt(tput[0] / 1e3, 0),
                bench::fmt(tput[1] / 1e3, 0),
                bench::fmt(tput[2] / 1e3, 0),
                bench::fmt(tput[3] / 1e3, 0)});
    bench::recordResult("motivation.redis_tput_local100_ops", tput[0]);
    bench::recordResult("motivation.redis_tput_local75_ops", tput[1]);
    bench::recordResult("motivation.redis_tput_local50_ops", tput[2]);
    bench::recordResult("motivation.redis_tput_local25_ops", tput[3]);
    std::printf("throughput drop at 25%% remote (75%% local): %.0f%% "
                "(paper: >60%% when 25%% of data is remote)\n",
                (1.0 - tput[1] / tput[0]) * 100.0);
    std::printf("throughput drop at 75%% remote (25%% local): "
                "%.0f%%\n", (1.0 - tput[3] / tput[0]) * 100.0);

    bench::section("§6.1: Kona-VM vs Infiniswap (same workload, 90% "
                   "local — light remote pressure as in the CloudLab "
                   "comparison)");
    double vmTput = redisThroughput(0.9, VmPersonality::KonaVm,
                                    false);
    double infiniTput = redisThroughput(0.9,
                                        VmPersonality::Infiniswap,
                                        false);
    double konaTput = redisThroughput(0.9, VmPersonality::KonaVm,
                                      true);
    bench::row("system", {"kops/s"});
    bench::row("Kona", {bench::fmt(konaTput / 1e3, 0)});
    bench::row("Kona-VM", {bench::fmt(vmTput / 1e3, 0)});
    bench::row("Infiniswap", {bench::fmt(infiniTput / 1e3, 0)});
    std::printf("Kona-VM over Infiniswap: +%.0f%% (paper: up to "
                "~60%% faster end-to-end; our model counts only "
                "memory-system time, so the gap is larger)\n",
                (vmTput / infiniTput - 1.0) * 100.0);
    bench::recordResult("motivation.kona_tput_local90_ops", konaTput);
    bench::recordResult("motivation.kona_vm_tput_local90_ops", vmTput);
    bench::recordResult("motivation.infiniswap_tput_local90_ops",
                        infiniTput);
    bench::flushExports();
    return 0;
}
