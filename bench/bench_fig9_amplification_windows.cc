/**
 * @file
 * Figure 9: per-window 4KB-page vs cache-line dirty data
 * amplification for Redis-Rand and Redis-Seq, measured with KTracker
 * (snapshot diffs at every window boundary).
 *
 * Expected shape: Redis-Rand's ratio sits between 2X and 10X across
 * windows; Redis-Seq stays around 2X; the random workload benefits
 * far more from cache-line tracking. (The paper's teardown window,
 * which spikes, is excluded from summaries.)
 */

#include "bench/bench_util.h"
#include "tools/ktracker.h"
#include "trace/access_trace.h"

namespace kona {
namespace {

std::vector<KTrackerWindow>
track(const std::string &name, double &meanRatio)
{
    bench::PlainEnv env;
    TracingMemory traced(env.store);
    WorkloadContext context(
        traced,
        [&env](std::size_t s, std::size_t a) {
            return *env.heap.allocate(s, a);
        },
        [&env](Addr a) { env.heap.deallocate(a); });
    auto workload = makeWorkload(name, context);
    workload->setup();

    KTracker tracker(env.store);
    tracker.trackRegion(pageSize, env.heap.totalSize());
    traced.addSink(&tracker);

    std::uint64_t windowOps = defaultWindowOps(name);
    if (name.rfind("redis", 0) == 0)
        windowOps *= 4;   // wider windows: more value collisions/page
    for (int w = 0; w < 20; ++w) {
        if (workload->run(windowOps) == 0)
            break;
        traced.endWindow();
    }

    double sum = 0.0;
    std::size_t n = 0;
    for (const KTrackerWindow &window : tracker.windowResults()) {
        if (window.dirtyLines == 0)
            continue;
        sum += window.ampRatio;
        ++n;
    }
    meanRatio = n > 0 ? sum / static_cast<double>(n) : 0.0;
    return tracker.windowResults();
}

void
printSeries(const std::string &name,
            const std::vector<KTrackerWindow> &windows)
{
    std::printf("%-12s:", name.c_str());
    for (const KTrackerWindow &w : windows)
        std::printf(" %5.1f", w.ampRatio);
    std::printf("\n");
}

} // namespace
} // namespace kona

int
main(int argc, char **argv)
{
    using namespace kona;
    bench::parseExportFlags(argc, argv);
    setQuietLogging(true);
    bench::section("Figure 9: per-window 4KB vs cache-line dirty "
                   "amplification (KTracker)");

    double randMean = 0.0, seqMean = 0.0;
    auto rand = track("redis-rand", randMean);
    auto seq = track("redis-seq", seqMean);

    std::printf("window ratio series (4KB bytes / CL bytes):\n");
    printSeries("redis-rand", rand);
    printSeries("redis-seq", seq);

    std::printf("\nmean ratio: redis-rand %.1fX (paper 2-10X), "
                "redis-seq %.1fX (paper ~2X)\n", randMean, seqMean);
    std::printf("Shape: rand >> seq; both > 1.\n");
    bench::recordResult("fig9.redis_rand_mean_amp_ratio", randMean);
    bench::recordResult("fig9.redis_seq_mean_amp_ratio", seqMean);
    bench::flushExports();
    return 0;
}
