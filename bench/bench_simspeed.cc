/**
 * @file
 * Wall-clock simulator-throughput benchmark. Unlike the paper-figure
 * benches (which report *simulated* time), this one measures how fast
 * the simulator itself executes — accesses per wall-clock second —
 * driving seq/stride/random/graph mixes through the full stack:
 * hierarchy -> FPGA -> fabric -> eviction.
 *
 * The seq/stride/random mixes span 32MB: larger than the modelled L3
 * (8MB) but smaller than FMem (64MB), so their steady state is the
 * LLC-miss -> FMem-hit path that dominates every experiment. The
 * graph mix pointer-chases a 96MB cycle (> FMem), keeping the demand
 * fetch + eviction machinery continuously busy.
 *
 * A global operator new/delete hook counts heap allocations inside
 * each timed loop; the steady-state access path is required to be
 * allocation-free (see DESIGN.md "Simulator performance").
 * --strict-alloc turns any steady-state allocation on the resident
 * mixes into a failure; CI runs with it.
 *
 * The "mrandom" mix drives the same random workload through FOUR
 * compute nodes of a MultiRack under the parallel engine (ShardGate +
 * ParallelDriver, DESIGN.md §16), sweeping the shard-concurrency cap.
 * Every thread count must produce the bit-identical run — identical
 * metric-registry fingerprint, identical memory content, identical
 * canonical cross-shard event log — and the t>1 rows report their
 * speedup over the t=1 reference schedule.
 *
 * Flags: --quick (short CI preset), --strict-alloc,
 *        --threads=N (sweep {1,N} instead of {1,2,4,8}),
 *        --metrics-json=PATH (exports result.simspeed.*).
 */

#include <algorithm>
#include <chrono>
#include <cstring>

#include "bench/alloc_hook.h"
#include "bench/bench_util.h"
#include "common/rng.h"
#include "rack/multi_rack.h"
#include "rack/parallel_driver.h"

namespace kona {
namespace {

using Clock = std::chrono::steady_clock;

struct MixResult
{
    std::string name;
    std::uint64_t ops = 0;
    double wallNs = 0;       ///< wall-clock ns for the timed loop
    std::uint64_t allocs = 0;///< heap allocations inside the timed loop
    Tick simNs = 0;          ///< simulated app-time advanced by the loop
};

double
opsPerSec(const MixResult &r)
{
    return r.wallNs > 0 ? r.ops / (r.wallNs / 1e9) : 0.0;
}

double
nsPerOp(const MixResult &r)
{
    return r.ops > 0 ? r.wallNs / static_cast<double>(r.ops) : 0.0;
}

double
allocsPerOp(const MixResult &r)
{
    return r.ops > 0 ? r.allocs / static_cast<double>(r.ops) : 0.0;
}

/** A fresh Kona stack for one mix (prefetch off, trace off). */
struct Stack
{
    Stack()
    {
        KonaConfig cfg;
        // Defaults: 64MB FMem, 1GB VFMem, full-size hierarchy
        // (32K/1M/8M). Keep them — the mixes are sized around them.
        runtime = std::make_unique<KonaRuntime>(rack.fabric,
                                                rack.controller, 0, cfg);
    }

    bench::Rack rack;
    std::unique_ptr<KonaRuntime> runtime;
};

/**
 * Touch every page of [base, base+span) so it is FMem-resident, and
 * dirty one line per page so the dirty-bitmap entries (steady state
 * for a mix that writes) exist before the timed loop starts.
 */
void
warmSpan(KonaRuntime &rt, Addr base, std::size_t span)
{
    std::uint8_t page[pageSize];
    std::uint64_t touch = 0;
    for (std::size_t off = 0; off < span; off += pageSize) {
        rt.read(base + off, page, pageSize);
        rt.write(base + off, &touch, sizeof(touch));
    }
}

/**
 * Attach a sim-time sampler post-warm and keep it ticking through the
 * timed loop: sampling is always on here, so --strict-alloc also
 * proves onTick()/closeWindow() are allocation-free in steady state.
 */
void
attachSampler(KonaRuntime &rt, TimeSeriesSampler &sampler)
{
    sampler.attach(rt.metrics(), rt.appTime());
    rt.setTimeSeriesSampler(&sampler);
}

/** Write one mix's sampler to --timeseries-out= with ".<mix>" spliced
 *  in before the extension (each mix has its own stack + registry). */
void
writeMixTimeseries(const std::string &mix, KonaRuntime &rt,
                   TimeSeriesSampler &sampler)
{
    sampler.finish(rt.appTime());
    const std::string &path = bench::exportOptions().timeseriesOut;
    if (path.empty())
        return;
    std::string out = path;
    std::size_t dot = out.rfind('.');
    if (dot == std::string::npos)
        out += "." + mix;
    else
        out.insert(dot, "." + mix);
    sampler.writeFile(out);
}

/**
 * Run one timed loop. @p body performs exactly @p ops accesses; the
 * allocation counter and wall clock are diffed around it.
 */
template <typename Body>
MixResult
timed(const std::string &name, KonaRuntime &rt, std::uint64_t ops,
      Body &&body)
{
    MixResult r;
    r.name = name;
    r.ops = ops;
    Tick simStart = rt.appTime();
    std::uint64_t allocStart =
        bench::allocCount();
    Clock::time_point t0 = Clock::now();
    body();
    Clock::time_point t1 = Clock::now();
    r.allocs =
        bench::allocCount() - allocStart;
    r.wallNs = static_cast<double>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0)
            .count());
    r.simNs = rt.appTime() - simStart;
    return r;
}

/** Sequential 64B reads (1 write per 4 ops) over a 32MB span. */
MixResult
runSeq(std::uint64_t ops)
{
    Stack stack;
    KonaRuntime &rt = *stack.runtime;
    constexpr std::size_t span = 32 * MiB;
    Addr base = rt.allocate(span, pageSize);
    warmSpan(rt, base, span);
    TimeSeriesSampler sampler;
    attachSampler(rt, sampler);

    std::uint64_t buf = 0;
    MixResult r = timed("seq", rt, ops, [&] {
        std::size_t off = 0;
        for (std::uint64_t i = 0; i < ops; ++i) {
            if ((i & 3) == 3)
                rt.write(base + off, &buf, sizeof(buf));
            else
                rt.read(base + off, &buf, sizeof(buf));
            off += cacheLineSize;
            if (off >= span)
                off = 0;
        }
    });
    writeMixTimeseries("seq", rt, sampler);
    return r;
}

/** 1KB-stride 8B accesses (25% writes) over a 32MB span. */
MixResult
runStride(std::uint64_t ops)
{
    Stack stack;
    KonaRuntime &rt = *stack.runtime;
    constexpr std::size_t span = 32 * MiB;
    constexpr std::size_t stride = 1024;
    Addr base = rt.allocate(span, pageSize);
    warmSpan(rt, base, span);
    TimeSeriesSampler sampler;
    attachSampler(rt, sampler);

    std::uint64_t buf = 0;
    MixResult r = timed("stride", rt, ops, [&] {
        std::size_t off = 0;
        for (std::uint64_t i = 0; i < ops; ++i) {
            if ((i & 3) == 1)
                rt.write(base + off, &buf, sizeof(buf));
            else
                rt.read(base + off, &buf, sizeof(buf));
            off += stride;
            if (off >= span)
                off = (off + cacheLineSize) % stride;
        }
    });
    writeMixTimeseries("stride", rt, sampler);
    return r;
}

/** Uniform-random 8B accesses (30% writes) over a 32MB span. */
MixResult
runRandom(std::uint64_t ops)
{
    Stack stack;
    KonaRuntime &rt = *stack.runtime;
    constexpr std::size_t span = 32 * MiB;
    Addr base = rt.allocate(span, pageSize);
    warmSpan(rt, base, span);
    TimeSeriesSampler sampler;
    attachSampler(rt, sampler);

    Rng rng(0x51eedull);
    std::uint64_t buf = 0;
    MixResult r = timed("random", rt, ops, [&] {
        for (std::uint64_t i = 0; i < ops; ++i) {
            Addr addr = base + rng.below(span / 8) * 8;
            if (rng.chance(0.3))
                rt.write(addr, &buf, sizeof(buf));
            else
                rt.read(addr, &buf, sizeof(buf));
        }
    });
    writeMixTimeseries("random", rt, sampler);
    return r;
}

/**
 * Pointer-chase over a single 96MB permutation cycle (> FMem), so
 * every few ops demand-fetch a page and the eviction pump runs
 * continuously.
 */
MixResult
runGraph(std::uint64_t ops)
{
    Stack stack;
    KonaRuntime &rt = *stack.runtime;
    constexpr std::size_t span = 96 * MiB;
    constexpr std::size_t nodes = span / 8;
    Addr base = rt.allocate(span, pageSize);

    // Sattolo's algorithm: one cycle visiting every node.
    std::vector<std::uint64_t> next(nodes);
    for (std::size_t i = 0; i < nodes; ++i)
        next[i] = i;
    Rng rng(0x9a4full);
    for (std::size_t i = nodes - 1; i > 0; --i) {
        std::size_t j = rng.below(i);
        std::swap(next[i], next[j]);
    }
    // Write the chase array page by page (setup, untimed).
    for (std::size_t off = 0; off < span; off += pageSize)
        rt.write(base + off, next.data() + off / 8, pageSize);
    TimeSeriesSampler sampler;
    attachSampler(rt, sampler);

    std::uint64_t idx = 0;
    MixResult r = timed("graph", rt, ops, [&] {
        for (std::uint64_t i = 0; i < ops; ++i) {
            std::uint64_t value = 0;
            rt.read(base + idx * 8, &value, sizeof(value));
            idx = value;
        }
    });
    // Keep the compiler from dropping the chase.
    if (idx >= nodes)
        fatal("graph chase escaped the node array");
    writeMixTimeseries("graph", rt, sampler);
    return r;
}

/** One parallel-engine run: throughput plus the identity evidence. */
struct MultiResult
{
    unsigned threads = 0;
    MixResult mix;
    std::uint64_t identityHash = 0; ///< fingerprint ⊕ content ⊕ log
    std::uint64_t steadyAllocs = 0; ///< allocs while every shard steady
};

constexpr std::size_t mrandomShards = 4;
constexpr std::size_t mrandomSpan = 8 * MiB; ///< FMem-resident / shard

std::uint64_t
fnvMix(std::uint64_t h, std::uint64_t v)
{
    for (int i = 0; i < 8; ++i) {
        h ^= (v >> (8 * i)) & 0xff;
        h *= 1099511628211ULL;
    }
    return h;
}

/**
 * Random 8B accesses (30% writes), one private FMem-resident span per
 * compute node, under ParallelDriver with concurrency cap @p threads.
 * Each shard's access stream is a pure function of its own seed, and
 * all cross-shard effects (slab maps, log flushes, evictions) happen
 * inside gated sections, so the whole run is deterministic.
 *
 * Steady-state allocations are measured over the window in which every
 * shard is past warm-up AND past half of its ops but none has finished
 * — the only interval where "zero allocations" is a fair demand of a
 * run that spawns threads and demand-maps slabs at the start.
 */
MultiResult
runMultiRandom(std::uint64_t opsPerShard, unsigned threads)
{
    MultiRackConfig cfg;
    cfg.computeNodes = mrandomShards;
    MultiRack rack(cfg);

    std::vector<Addr> bases;
    for (std::size_t i = 0; i < rack.runtimeCount(); ++i)
        bases.push_back(rack.runtime(i).allocate(mrandomSpan, pageSize));

    std::vector<std::uint64_t> halfMark(rack.runtimeCount(), 0);
    std::vector<std::uint64_t> endMark(rack.runtimeCount(), 0);

    MultiResult out;
    out.threads = threads;
    out.mix.name = "mrandom.t" + std::to_string(threads);
    out.mix.ops = opsPerShard * rack.runtimeCount();

    std::uint64_t h = 1469598103934665603ULL;
    Tick simStart = rack.runtime(0).appTime();
    {
        ParallelDriver driver(rack, threads);
        Clock::time_point t0 = Clock::now();
        driver.run([&](std::size_t shard, KonaRuntime &rt) {
            Addr base = bases[shard];
            warmSpan(rt, base, mrandomSpan);
            Rng rng(0xbe7aull + shard);
            std::uint64_t buf = 0;
            for (std::uint64_t i = 0; i < opsPerShard; ++i) {
                if (i == opsPerShard / 2)
                    halfMark[shard] = bench::allocCount();
                Addr addr = base + rng.below(mrandomSpan / 8) * 8;
                if (rng.chance(0.3)) {
                    buf = (i << 8) ^ shard;
                    rt.write(addr, &buf, sizeof(buf));
                } else {
                    rt.read(addr, &buf, sizeof(buf));
                }
            }
            endMark[shard] = bench::allocCount();
        });
        Clock::time_point t1 = Clock::now();
        out.mix.wallNs = static_cast<double>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(t1 -
                                                                 t0)
                .count());
        out.mix.simNs = rack.runtime(0).appTime() - simStart;

        std::uint64_t maxHalf =
            *std::max_element(halfMark.begin(), halfMark.end());
        std::uint64_t minEnd =
            *std::min_element(endMark.begin(), endMark.end());
        out.steadyAllocs = minEnd > maxHalf ? minEnd - maxHalf : 0;
        out.mix.allocs = out.steadyAllocs;

        // Identity evidence, part 1+2: every metric the rack-wide
        // registry holds, then the canonical cross-shard event log.
        h = fnvMix(h, rack.metrics()->fingerprint());
        for (const GateRecord &rec : driver.canonicalLog()) {
            h = fnvMix(h, rec.key.stamp);
            h = fnvMix(h, rec.key.shard);
            h = fnvMix(h, rec.key.seq);
            h = fnvMix(h, static_cast<std::uint64_t>(rec.kind));
        }
        h = fnvMix(h, driver.gate().recordsDropped());
    } // ~ParallelDriver: detach the gate before main-thread reads

    // Part 3: the bytes of every span (reads of resident pages; the
    // fingerprint above was captured first, so this can't perturb it
    // differently per thread count — and it runs gate-free).
    std::vector<std::uint8_t> page(pageSize);
    for (std::size_t i = 0; i < rack.runtimeCount(); ++i) {
        for (std::size_t off = 0; off < mrandomSpan; off += pageSize) {
            rack.runtime(i).read(bases[i] + off, page.data(),
                                 pageSize);
            for (std::size_t b = 0; b < pageSize; ++b) {
                h ^= page[b];
                h *= 1099511628211ULL;
            }
        }
    }
    out.identityHash = h;
    return out;
}

} // namespace
} // namespace kona

int
main(int argc, char **argv)
{
    using namespace kona;
    bench::parseExportFlags(argc, argv);
    setQuietLogging(true);

    bool quick = false;
    bool strictAlloc = false;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--quick") == 0)
            quick = true;
        else if (std::strcmp(argv[i], "--strict-alloc") == 0)
            strictAlloc = true;
        else
            fatal("unknown flag \"", argv[i],
                  "\"; known: --quick --strict-alloc --threads=N "
                  "--metrics-json=PATH");
    }

    std::uint64_t scale = quick ? 10 : 1;
    MixResult results[] = {
        runSeq(4'000'000 / scale),
        runStride(2'000'000 / scale),
        runRandom(2'000'000 / scale),
        runGraph(200'000 / scale),
    };

    bench::section("Simulator throughput (wall clock, full Kona stack)");
    bench::row("mix", {"accesses", "wall ms", "Macc/s", "ns/acc",
                       "allocs/acc"});
    bool residentAllocs = false;
    for (const MixResult &r : results) {
        bench::row(r.name,
                   {bench::fmtInt(r.ops), bench::fmt(r.wallNs / 1e6, 1),
                    bench::fmt(opsPerSec(r) / 1e6),
                    bench::fmt(nsPerOp(r), 1),
                    bench::fmt(allocsPerOp(r), 4)});
        bench::recordResult("simspeed." + r.name + ".accesses_per_sec",
                            opsPerSec(r));
        bench::recordResult("simspeed." + r.name + ".ns_per_access",
                            nsPerOp(r));
        bench::recordResult("simspeed." + r.name + ".allocs_per_access",
                            allocsPerOp(r));
        if (r.name != "graph" && r.allocs != 0)
            residentAllocs = true;
    }
    std::printf("\nResident mixes (seq/stride/random) must run "
                "allocation-free in steady state;\nthe graph mix "
                "demand-fetches and evicts, so its miss path may "
                "allocate.\n");

    // Parallel engine: 4 compute nodes, random mix, concurrency sweep.
    std::vector<unsigned> sweep = {1, 2, 4, 8};
    if (bench::exportOptions().threads != 0)
        sweep = {1, bench::exportOptions().threads};
    sweep.erase(std::unique(sweep.begin(), sweep.end()), sweep.end());

    std::uint64_t perShard = 500'000 / scale;
    std::vector<MultiResult> multi;
    for (unsigned t : sweep)
        multi.push_back(runMultiRandom(perShard, t));

    bench::section(
        "Parallel engine (4 compute nodes, random mix, ShardGate)");
    bench::row("threads", {"accesses", "wall ms", "Macc/s",
                           "speedup", "identical", "allocs"});
    bool parallelBroken = false;
    double t1Rate = opsPerSec(multi.front().mix);
    for (const MultiResult &m : multi) {
        bool identical =
            m.identityHash == multi.front().identityHash;
        double speedup =
            t1Rate > 0 ? opsPerSec(m.mix) / t1Rate : 0.0;
        bench::row("t=" + std::to_string(m.threads),
                   {bench::fmtInt(m.mix.ops),
                    bench::fmt(m.mix.wallNs / 1e6, 1),
                    bench::fmt(opsPerSec(m.mix) / 1e6),
                    bench::fmt(speedup), identical ? "yes" : "NO",
                    bench::fmtInt(m.steadyAllocs)});
        std::string key = "simspeed." + m.mix.name;
        bench::recordResult(key + ".accesses_per_sec",
                            opsPerSec(m.mix));
        bench::recordResult(key + ".speedup_vs_t1", speedup);
        bench::recordResult(key + ".identical_to_t1",
                            identical ? 1.0 : 0.0);
        bench::recordResult(key + ".allocs_per_access",
                            allocsPerOp(m.mix));
        if (!identical)
            parallelBroken = true;
        if (m.steadyAllocs != 0)
            residentAllocs = true;
    }
    std::printf("\nEvery thread count must reproduce the t=1 run bit "
                "for bit (identical = yes);\nspeedup is wall-clock "
                "and depends on available cores.\n");

    bench::flushExports();

    if (parallelBroken) {
        std::printf("FAIL: a parallel run diverged from the t=1 "
                    "reference (identity hash mismatch)\n");
        return 1;
    }
    if (strictAlloc && residentAllocs) {
        std::printf("FAIL: steady-state heap allocations detected on a "
                    "resident mix (--strict-alloc)\n");
        return 1;
    }
    return 0;
}
