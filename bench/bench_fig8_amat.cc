/**
 * @file
 * Figure 8: average memory access time (AMAT) from KCacheSim.
 *
 *  (a-c) AMAT vs local-cache size (as % of the workload footprint)
 *        for Redis-Rand, Linear Regression and Graph Coloring, under
 *        LegoOS, Kona and Kona-main (Infiniswap reported as a ratio —
 *        the paper omits it from the graphs for visibility).
 *  (d)   AMAT vs DRAM-cache block size for Redis-Rand at several
 *        cache sizes; ~1KB is optimal, 4KB close behind.
 *
 * Expected shape: AMAT rises steeply for the fault-based systems as
 * the cache shrinks but stays nearly flat for Kona (~1.7X better than
 * LegoOS and ~5X better than Infiniswap at 25% cache); Linear
 * Regression is flat everywhere (streaming, no reuse); Kona-main
 * shows the NUMA overhead of FMem (2-25%).
 */

#include "bench/bench_util.h"
#include "tools/kcachesim.h"
#include "trace/access_trace.h"

namespace kona {
namespace {

/** Round cache geometry so sizeBytes is a legal multiple. */
std::size_t
roundGeometry(std::size_t bytes, std::size_t block, std::size_t assoc)
{
    std::size_t unit = block * assoc;
    std::size_t rounded = (bytes / unit) * unit;
    return rounded < unit ? unit : rounded;
}

/** Run @p name through KCacheSim over the given DRAM-cache variants. */
KCacheSim
simulate(const std::string &name,
         const std::vector<DramCacheSpec> &variants,
         const LatencyConfig &lat)
{
    bench::PlainEnv env;
    TracingMemory traced(env.store);
    WorkloadContext context(
        traced,
        [&env](std::size_t s, std::size_t a) {
            return *env.heap.allocate(s, a);
        },
        [&env](Addr a) { env.heap.deallocate(a); });
    auto workload = makeWorkload(name, context);
    workload->setup();

    KCacheSim sim(HierarchyConfig::scaled(), variants, lat);
    traced.addSink(&sim);
    std::uint64_t windowOps = defaultWindowOps(name);
    for (std::size_t w = 0; w < defaultWindowCount(name); ++w) {
        if (workload->run(windowOps) == 0)
            break;
    }
    return sim;
}

std::size_t
footprintOf(const std::string &name)
{
    bench::PlainEnv env;
    WorkloadContext context(
        env.store,
        [&env](std::size_t s, std::size_t a) {
            return *env.heap.allocate(s, a);
        },
        [&env](Addr a) { env.heap.deallocate(a); });
    auto workload = makeWorkload(name, context);
    workload->setup();
    return workload->footprintBytes();
}

const int cachePercents[] = {10, 25, 50, 75, 100};

void
amatVsCacheSize(const std::string &name, const LatencyConfig &lat)
{
    std::size_t footprint = footprintOf(name);
    std::vector<DramCacheSpec> variants;
    for (int pct : cachePercents) {
        DramCacheSpec spec;
        spec.label = std::to_string(pct) + "%";
        spec.sizeBytes = roundGeometry(footprint * pct / 100,
                                       pageSize, 4);
        variants.push_back(spec);
    }
    KCacheSim sim = simulate(name, variants, lat);

    bench::section("Figure 8: AMAT (ns) vs cache size — " + name);
    bench::row("system \\ cache %",
               {"10%", "25%", "50%", "75%", "100%"}, 24, 10);

    // Cachegrind (the paper's KCacheSim substrate) simulates every
    // access of the process — instruction fetches, stack, locals —
    // which are hit-dominated and dilute the AMAT into the 5-30ns
    // band. We trace only data-structure accesses, so we report both
    // the raw per-data-access AMAT and a diluted AMAT that folds in
    // ~60 L1-hit background accesses per traced access.
    constexpr double dilution = 60.0;
    for (const AmatModel &model :
         {legoOsModel(lat), konaModel(lat), konaMainModel(lat)}) {
        std::vector<std::string> cells;
        std::vector<std::string> dilutedCells;
        for (std::size_t v = 0; v < variants.size(); ++v) {
            double amat = sim.amat(v, model);
            cells.push_back(bench::fmt(amat, 1));
            dilutedCells.push_back(bench::fmt(
                (amat + dilution * lat.l1HitNs) / (dilution + 1), 1));
        }
        bench::row(model.name, cells, 24, 10);
        bench::row("  " + model.name + " (diluted)", dilutedCells, 24,
                   10);
    }

    // The 25%-cache ratios the paper headlines.
    double kona25 = sim.amat(1, konaModel(lat));
    double lego25 = sim.amat(1, legoOsModel(lat));
    double infini25 = sim.amat(1, infiniswapModel(lat));
    double main25 = sim.amat(1, konaMainModel(lat));
    std::printf("@25%% cache: LegoOS/Kona = %.2fX (paper ~1.7X), "
                "Infiniswap/Kona = %.2fX (paper ~5X), "
                "NUMA overhead vs Kona-main = %.0f%%\n",
                lego25 / kona25, infini25 / kona25,
                (kona25 / main25 - 1.0) * 100.0);
    bench::recordResult("fig8." + name + ".kona_amat_25pct_ns",
                        kona25);
    bench::recordResult("fig8." + name + ".legoos_over_kona_25pct",
                        lego25 / kona25);
    bench::recordResult("fig8." + name + ".infiniswap_over_kona_25pct",
                        infini25 / kona25);
}

void
blockSizeSweep(const LatencyConfig &lat)
{
    std::size_t footprint = footprintOf("redis-rand");
    const std::size_t blocks[] = {64, 256, 1024, 4096, 16384, 30720};
    const int sizes[] = {27, 54, 100};

    std::vector<DramCacheSpec> variants;
    for (int pct : sizes) {
        for (std::size_t block : blocks) {
            DramCacheSpec spec;
            std::size_t b = block == 30720 ? 30720 : block;
            spec.label = std::to_string(pct) + "%/" +
                         std::to_string(b);
            spec.blockSize = b == 30720 ? 32768 : b;   // power of two
            spec.sizeBytes = roundGeometry(footprint * pct / 100,
                                           spec.blockSize, 4);
            variants.push_back(spec);
        }
    }
    KCacheSim sim = simulate("redis-rand", variants, lat);

    bench::section("Figure 8d: AMAT (ns) vs fetch block size — "
                   "Redis-Rand (Kona model)");
    bench::row("cache \\ block",
               {"64B", "256B", "1KB", "4KB", "16KB", "30KB"}, 24, 10);
    std::size_t v = 0;
    for (int pct : sizes) {
        std::vector<std::string> cells;
        std::size_t bestIdx = 0;
        double best = 1e18;
        for (std::size_t b = 0; b < 6; ++b, ++v) {
            double amat = sim.amat(v, konaModel(lat));
            cells.push_back(bench::fmt(amat, 1));
            if (amat < best) {
                best = amat;
                bestIdx = b;
            }
        }
        bench::row(std::to_string(pct) + "% cache", cells, 24, 10);
        static const char *names[] = {"64B", "256B", "1KB",
                                      "4KB", "16KB", "30KB"};
        std::printf("  -> best block at %d%%: %s "
                    "(paper: ~1KB best, 4KB close)\n",
                    pct, names[bestIdx]);
    }
}

void
associativityAblation(const LatencyConfig &lat)
{
    std::size_t footprint = footprintOf("redis-rand");
    std::vector<DramCacheSpec> variants;
    for (std::size_t assoc : {1, 2, 4, 8, 16}) {
        DramCacheSpec spec;
        spec.label = "assoc" + std::to_string(assoc);
        spec.associativity = assoc;
        spec.sizeBytes = roundGeometry(footprint / 4, pageSize,
                                       assoc);
        variants.push_back(spec);
    }
    KCacheSim sim = simulate("redis-rand", variants, lat);

    bench::section("Ablation: FMem associativity (Redis-Rand, 25% "
                   "cache; paper: no significant impact)");
    bench::row("assoc", {"1", "2", "4", "8", "16"}, 24, 10);
    std::vector<std::string> cells;
    for (std::size_t v = 0; v < variants.size(); ++v)
        cells.push_back(bench::fmt(sim.amat(v, konaModel(lat)), 1));
    bench::row("AMAT (ns)", cells, 24, 10);
}

} // namespace
} // namespace kona

int
main(int argc, char **argv)
{
    using namespace kona;
    bench::parseExportFlags(argc, argv);
    setQuietLogging(true);
    LatencyConfig lat;
    amatVsCacheSize("redis-rand", lat);
    amatVsCacheSize("linear-regression", lat);
    amatVsCacheSize("graph-coloring", lat);
    blockSizeSweep(lat);
    associativityAblation(lat);
    bench::flushExports();
    return 0;
}
