/**
 * @file
 * Shared scaffolding for the experiment harnesses in bench/: a
 * standard simulated rack, workload environments, and fixed-width
 * table printing so each binary regenerates its paper table/figure as
 * plain text.
 */

#ifndef KONA_BENCH_BENCH_UTIL_H
#define KONA_BENCH_BENCH_UTIL_H

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "core/kona_runtime.h"
#include "core/vm_runtime.h"
#include "mem/backing_store.h"
#include "workloads/registry.h"

namespace kona::bench {

/** A rack with @p nodeCount memory nodes of @p nodeSize bytes each. */
struct Rack
{
    explicit Rack(std::size_t nodeCount = 3,
                  std::size_t nodeSize = 512 * MiB,
                  std::size_t slabSize = 1 * MiB)
        : controller(slabSize)
    {
        for (NodeId id = 1; id <= nodeCount; ++id) {
            nodes.push_back(std::make_unique<MemoryNode>(
                fabric, id, nodeSize));
            controller.registerNode(*nodes.back());
        }
    }

    Fabric fabric;
    Controller controller;
    std::vector<std::unique_ptr<MemoryNode>> nodes;
};

/** Plain-memory workload environment (for trace-analysis benches). */
struct PlainEnv
{
    explicit PlainEnv(std::size_t size = 1024 * MiB)
        : store(size), heap(pageSize, size - pageSize),
          context(
              store,
              [this](std::size_t s, std::size_t a) {
                  auto addr = heap.allocate(s, a);
                  if (!addr.has_value())
                      fatal("bench heap exhausted");
                  return *addr;
              },
              [this](Addr a) { heap.deallocate(a); })
    {}

    BackingStore store;
    RegionAllocator heap;
    WorkloadContext context;
};

/** Workload context running on a remote-memory runtime. */
inline WorkloadContext
runtimeContext(RemoteMemoryRuntime &runtime)
{
    return WorkloadContext(
        runtime,
        [&runtime](std::size_t s, std::size_t a) {
            return runtime.allocate(s, a);
        },
        [&runtime](Addr a) { runtime.deallocate(a); });
}

/** Print a separator + title for one experiment section. */
inline void
section(const std::string &title)
{
    std::printf("\n%s\n", title.c_str());
    for (std::size_t i = 0; i < title.size(); ++i)
        std::printf("=");
    std::printf("\n");
}

/** Print one row of right-aligned cells after a left label. */
inline void
row(const std::string &label, const std::vector<std::string> &cells,
    int labelWidth = 24, int cellWidth = 12)
{
    std::printf("%-*s", labelWidth, label.c_str());
    for (const std::string &cell : cells)
        std::printf("%*s", cellWidth, cell.c_str());
    std::printf("\n");
}

inline std::string
fmt(double value, int precision = 2)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", precision, value);
    return buf;
}

inline std::string
fmtInt(std::uint64_t value)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%llu",
                  static_cast<unsigned long long>(value));
    return buf;
}

} // namespace kona::bench

#endif // KONA_BENCH_BENCH_UTIL_H
