/**
 * @file
 * Shared scaffolding for the experiment harnesses in bench/: a
 * standard simulated rack, workload environments, fixed-width table
 * printing so each binary regenerates its paper table/figure as plain
 * text, and the machine-readable export layer behind the common
 * --metrics-json= / --trace-out= flags.
 */

#ifndef KONA_BENCH_BENCH_UTIL_H
#define KONA_BENCH_BENCH_UTIL_H

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "core/kona_runtime.h"
#include "core/vm_runtime.h"
#include "mem/backing_store.h"
#include "policy/placement_policy.h"
#include "policy/tiering_engine.h"
#include "policy/victim_policy.h"
#include "prefetch/prefetcher.h"
#include "telemetry/event_journal.h"
#include "telemetry/metric_registry.h"
#include "telemetry/time_series.h"
#include "telemetry/trace_session.h"
#include "workloads/registry.h"

namespace kona::bench {

/** Export destinations from the command line (empty = disabled). */
struct ExportOptions
{
    std::string metricsJson;     ///< --metrics-json=PATH
    std::string traceOut;        ///< --trace-out=PATH
    std::string prefetchPolicy;  ///< --prefetch=policy[:depth]
    std::string victimPolicy;    ///< --victim=policy[:arg]
    std::string placementPolicy; ///< --placement=policy
    std::string tieringPolicy;   ///< --tiering=policy[:n]
    std::string timeseriesOut;   ///< --timeseries-out=PATH (.json/.csv)
    std::string eventsOut;       ///< --events-out=PATH (JSONL)
    Tick timeseriesIntervalNs = 1'000'000; ///< --timeseries-interval=NS
    unsigned threads = 0;        ///< --threads=N (0 = bench default)
};

inline ExportOptions &
exportOptions()
{
    static ExportOptions opts;
    return opts;
}

/**
 * The registry every headline result and (when a bench passes its
 * scope into a runtime) every component metric exports through.
 */
inline const std::shared_ptr<MetricRegistry> &
exportRegistry()
{
    static std::shared_ptr<MetricRegistry> registry =
        std::make_shared<MetricRegistry>();
    return registry;
}

/** A scope on the export registry rooted at @p prefix. */
inline MetricScope
exportScope(const std::string &prefix = "")
{
    return MetricScope(exportRegistry(), prefix);
}

/**
 * Strip --metrics-json=, --trace-out=, --prefetch=, --victim=,
 * --placement=, --tiering=, --timeseries-out=, --timeseries-interval=,
 * --threads= and --events-out= out of argv, leaving every other argument in
 * place. Call first thing in main, before any other argument parsing
 * (including benchmark::Initialize, which rejects flags it does not
 * know). A bad policy spec is fatal() here rather than deep inside a
 * runtime constructor.
 */
inline void
parseExportFlags(int &argc, char **argv)
{
    int kept = 1;
    for (int i = 1; i < argc; ++i) {
        std::string_view arg = argv[i];
        constexpr std::string_view metricsFlag = "--metrics-json=";
        constexpr std::string_view traceFlag = "--trace-out=";
        constexpr std::string_view prefetchFlag = "--prefetch=";
        constexpr std::string_view tsFlag = "--timeseries-out=";
        constexpr std::string_view tsIntervalFlag =
            "--timeseries-interval=";
        constexpr std::string_view eventsFlag = "--events-out=";
        constexpr std::string_view victimFlag = "--victim=";
        constexpr std::string_view placementFlag = "--placement=";
        constexpr std::string_view tieringFlag = "--tiering=";
        constexpr std::string_view threadsFlag = "--threads=";
        if (arg.substr(0, metricsFlag.size()) == metricsFlag) {
            exportOptions().metricsJson = arg.substr(metricsFlag.size());
        } else if (arg.substr(0, traceFlag.size()) == traceFlag) {
            exportOptions().traceOut = arg.substr(traceFlag.size());
        } else if (arg.substr(0, tsFlag.size()) == tsFlag) {
            exportOptions().timeseriesOut = arg.substr(tsFlag.size());
        } else if (arg.substr(0, tsIntervalFlag.size()) ==
                   tsIntervalFlag) {
            std::string spec(arg.substr(tsIntervalFlag.size()));
            char *end = nullptr;
            unsigned long long ns = std::strtoull(spec.c_str(), &end, 10);
            if (end == spec.c_str() || *end != '\0' || ns == 0)
                fatal("bad --timeseries-interval= value \"", spec,
                      "\"; want a positive sim-time interval in ns");
            exportOptions().timeseriesIntervalNs = ns;
        } else if (arg.substr(0, threadsFlag.size()) == threadsFlag) {
            std::string spec(arg.substr(threadsFlag.size()));
            char *end = nullptr;
            unsigned long long n = std::strtoull(spec.c_str(), &end, 10);
            if (end == spec.c_str() || *end != '\0' || n == 0 ||
                n > 256)
                fatal("bad --threads= value \"", spec,
                      "\"; want a shard-concurrency cap in [1, 256]");
            exportOptions().threads = static_cast<unsigned>(n);
        } else if (arg.substr(0, eventsFlag.size()) == eventsFlag) {
            exportOptions().eventsOut = arg.substr(eventsFlag.size());
        } else if (arg.substr(0, prefetchFlag.size()) == prefetchFlag) {
            std::string spec(arg.substr(prefetchFlag.size()));
            if (!knownPrefetchPolicy(spec))
                fatal("bad --prefetch= policy \"", spec,
                      "\"; known: off next[:d] stride[:d] corr[:d] "
                      "adaptive[:d]");
            exportOptions().prefetchPolicy = spec;
        } else if (arg.substr(0, victimFlag.size()) == victimFlag) {
            std::string spec(arg.substr(victimFlag.size()));
            if (!knownVictimPolicy(spec))
                fatal("bad --victim= policy \"", spec,
                      "\"; known: lru lfu scan[:t] dirty");
            exportOptions().victimPolicy = spec;
        } else if (arg.substr(0, placementFlag.size()) ==
                   placementFlag) {
            std::string spec(arg.substr(placementFlag.size()));
            if (!knownPlacementPolicy(spec))
                fatal("bad --placement= policy \"", spec,
                      "\"; known: free first rr health");
            exportOptions().placementPolicy = spec;
        } else if (arg.substr(0, tieringFlag.size()) == tieringFlag) {
            std::string spec(arg.substr(tieringFlag.size()));
            if (!knownTieringPolicy(spec))
                fatal("bad --tiering= policy \"", spec,
                      "\"; known: off ewma[:n]");
            exportOptions().tieringPolicy = spec;
        } else {
            argv[kept++] = argv[i];
        }
    }
    for (int i = kept; i < argc; ++i)
        argv[i] = nullptr;
    argc = kept;
}

/**
 * Record one headline experiment number as the gauge
 * "result.<name>" in the export registry (e.g.
 * "result.table2.redis-rand.amp4k").
 */
inline void
recordResult(const std::string &name, double value)
{
    exportRegistry()->gauge("result." + name).set(value);
}

/**
 * Turn on @p runtime's tracer when --trace-out= was given, with a
 * ring large enough for a full bench run. Pair with
 * writeTraceIfRequested() before the runtime dies.
 */
inline void
enableTraceIfRequested(RemoteMemoryRuntime &runtime,
                       std::size_t capacity = 1 << 20)
{
    if (exportOptions().traceOut.empty())
        return;
    TraceSession *trace = runtime.traceSession();
    if (trace == nullptr)
        return;
    trace->setCapacity(capacity);
    trace->enable();
}

/**
 * Write @p runtime's trace to --trace-out= (no-op when the flag is
 * absent or the runtime is uninstrumented). Call while the runtime is
 * still alive; when several runtimes are traced the last write wins.
 */
inline void
writeTraceIfRequested(RemoteMemoryRuntime &runtime)
{
    if (exportOptions().traceOut.empty())
        return;
    TraceSession *trace = runtime.traceSession();
    if (trace == nullptr || !trace->enabled())
        return;
    trace->writeJsonFile(exportOptions().traceOut);
}

/**
 * Write the export registry to --metrics-json= (no-op when the flag
 * is absent). Call at the end of main, after every recordResult.
 */
inline void
flushExports()
{
    const ExportOptions &opts = exportOptions();
    if (opts.metricsJson.empty())
        return;
    std::ofstream os(opts.metricsJson);
    if (!os) {
        warn("cannot open ", opts.metricsJson, " for metrics export");
        return;
    }
    exportRegistry()->writeJson(os);
}

/**
 * Write @p sampler's windows to --timeseries-out= (format from the
 * extension: ".json" = JSON, anything else = CSV). Call finish() on
 * the sampler first so the trailing partial window is included.
 */
inline void
writeTimeseriesIfRequested(const TimeSeriesSampler &sampler)
{
    if (exportOptions().timeseriesOut.empty())
        return;
    sampler.writeFile(exportOptions().timeseriesOut);
}

/**
 * Write @p runtime's event journal to --events-out= as JSONL (no-op
 * when the flag is absent or the runtime has no journal).
 */
inline void
writeEventsIfRequested(RemoteMemoryRuntime &runtime)
{
    if (exportOptions().eventsOut.empty())
        return;
    EventJournal *journal = runtime.eventJournal();
    if (journal == nullptr)
        return;
    journal->writeJsonlFile(exportOptions().eventsOut);
}

/** A rack with @p nodeCount memory nodes of @p nodeSize bytes each. */
struct Rack
{
    explicit Rack(std::size_t nodeCount = 3,
                  std::size_t nodeSize = 512 * MiB,
                  std::size_t slabSize = 1 * MiB,
                  MetricScope scope = {})
        : fabric(LatencyConfig{}, scope.sub("fabric")),
          controller(slabSize, scope.sub("rack"))
    {
        for (NodeId id = 1; id <= nodeCount; ++id) {
            nodes.push_back(std::make_unique<MemoryNode>(
                fabric, id, nodeSize, 4 * MiB,
                scope.sub("rack.node" + std::to_string(id))));
            controller.registerNode(*nodes.back());
        }
    }

    Fabric fabric;
    Controller controller;
    std::vector<std::unique_ptr<MemoryNode>> nodes;
};

/** Plain-memory workload environment (for trace-analysis benches). */
struct PlainEnv
{
    explicit PlainEnv(std::size_t size = 1024 * MiB)
        : store(size), heap(pageSize, size - pageSize),
          context(
              store,
              [this](std::size_t s, std::size_t a) {
                  auto addr = heap.allocate(s, a);
                  if (!addr.has_value())
                      fatal("bench heap exhausted");
                  return *addr;
              },
              [this](Addr a) { heap.deallocate(a); })
    {}

    BackingStore store;
    RegionAllocator heap;
    WorkloadContext context;
};

/** Workload context running on a remote-memory runtime. */
inline WorkloadContext
runtimeContext(RemoteMemoryRuntime &runtime)
{
    return WorkloadContext(
        runtime,
        [&runtime](std::size_t s, std::size_t a) {
            return runtime.allocate(s, a);
        },
        [&runtime](Addr a) { runtime.deallocate(a); });
}

/** Print a separator + title for one experiment section. */
inline void
section(const std::string &title)
{
    std::printf("\n%s\n", title.c_str());
    for (std::size_t i = 0; i < title.size(); ++i)
        std::printf("=");
    std::printf("\n");
}

/** Print one row of right-aligned cells after a left label. */
inline void
row(const std::string &label, const std::vector<std::string> &cells,
    int labelWidth = 24, int cellWidth = 12)
{
    std::printf("%-*s", labelWidth, label.c_str());
    for (const std::string &cell : cells)
        std::printf("%*s", cellWidth, cell.c_str());
    std::printf("\n");
}

inline std::string
fmt(double value, int precision = 2)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", precision, value);
    return buf;
}

inline std::string
fmtInt(std::uint64_t value)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%llu",
                  static_cast<unsigned long long>(value));
    return buf;
}

} // namespace kona::bench

#endif // KONA_BENCH_BENCH_UTIL_H
