/**
 * @file
 * Coherence experiment: sharing-degree x read/write-mix sweep over a
 * MultiRack shared region, plus the no-sharing overhead check.
 *
 *   bench_coherence [--quick] [--metrics-json=PATH]
 *
 * For every (sharing degree, write mix) cell a fresh 4-compute-node
 * rack runs an interleaved uniform workload against one shared
 * region while a shadow oracle tracks the last value stored at every
 * word; each load is checked against it, so "stale_reads" is a hard
 * zero-tolerance correctness result, not a statistic. Alongside it
 * the cell reports protocol cost: invalidation rate per simulated
 * millisecond and the ownership-transfer p99.
 *
 * The final section runs an identical private (unshared) workload on
 * a directory-attached runtime and on a plain detached runtime and
 * reports the simulated-time ratio: the coherence hook must be free
 * when no page is governed (DESIGN.md section 14), so the gate holds
 * the ratio to 1.0.
 *
 * Everything reported is a pure function of (binary, seed): the CI
 * gate uses tight deterministic bands (see bench/baselines/
 * compare.rules).
 *
 * Exit status is non-zero when any cell observes a stale read.
 */

#include <algorithm>
#include <cstring>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "common/rng.h"
#include "rack/multi_rack.h"

using namespace kona;
using namespace kona::bench;

namespace {

MultiRackConfig
rackConfig()
{
    MultiRackConfig cfg;
    cfg.computeNodes = 4;
    cfg.memoryNodes = 3;
    cfg.memoryBytes = 64 * MiB;
    cfg.slabSize = 1 * MiB;
    cfg.runtime.fpga.vfmemSize = 64 * MiB;
    cfg.runtime.fpga.fmemSize = 8 * MiB;
    return cfg;
}

struct CellResult
{
    std::uint64_t staleReads = 0;
    double invalsPerMsimS = 0.0;   ///< invalidations / simulated ms
    double ownershipP99Us = 0.0;
    std::uint64_t transfers = 0;
};

/**
 * Run @p ops interleaved accesses from @p sharers runtimes against
 * one shared region, checking every load against the shadow oracle.
 */
CellResult
runCell(std::size_t sharers, unsigned writePct, std::size_t ops,
        std::uint64_t seed)
{
    MultiRack rack(rackConfig());
    constexpr std::size_t regionBytes = 256 * KiB;
    Addr base = rack.mapShared("sweep", regionBytes);

    constexpr std::size_t words = regionBytes / sizeof(std::uint64_t);
    std::vector<std::uint64_t> oracle(words, 0);

    // The protocol zero-fills nothing for us: seed every word once
    // through runtime 0 so loads of untouched words are defined.
    std::uint64_t zero = 0;
    for (std::size_t w = 0; w < words; w += pageSize / sizeof zero)
        rack.runtime(0).write(base + w * sizeof zero, &zero,
                              sizeof zero);

    CellResult r;
    Rng rng(seed);
    for (std::size_t i = 0; i < ops; ++i) {
        KonaRuntime &rt = rack.runtime(rng.below(sharers));
        std::size_t w = rng.below(words);
        Addr addr = base + w * sizeof(std::uint64_t);
        if (rng.below(100) < writePct) {
            std::uint64_t v = (i << 8) | (rt.computeNode() & 0xff);
            rt.write(addr, &v, sizeof v);
            oracle[w] = v;
        } else {
            std::uint64_t got = ~std::uint64_t(0);
            rt.read(addr, &got, sizeof got);
            if (got != oracle[w])
                ++r.staleReads;
        }
    }

    Tick simNs = 0;
    for (std::size_t i = 0; i < sharers; ++i)
        simNs += rack.runtime(i).appTime();
    DirectoryService &dir = rack.directory();
    r.invalsPerMsimS = simNs == 0
                           ? 0.0
                           : double(dir.invalidationsSent()) /
                                 (double(simNs) / 1e6);
    r.ownershipP99Us = dir.ownershipTransferNs().p99() / 1000.0;
    r.transfers = dir.ownershipTransfers();
    return r;
}

/** The private workload both halves of the overhead check run. */
std::uint64_t
privateWorkload(KonaRuntime &rt, std::size_t bytes)
{
    Addr a = rt.allocate(bytes, pageSize);
    std::uint64_t v = 0, sum = 0;
    for (Addr off = 0; off < bytes; off += 256) {
        v = off;
        rt.write(a + off, &v, sizeof v);
    }
    for (Addr off = 0; off < bytes; off += 256) {
        rt.read(a + off, &v, sizeof v);
        sum += v;
    }
    return sum;
}

} // namespace

int
main(int argc, char **argv)
{
    parseExportFlags(argc, argv);
    std::size_t ops = 20'000;
    for (int i = 1; i < argc; ++i)
        if (std::strcmp(argv[i], "--quick") == 0)
            ops = 4'000;

    const std::size_t degrees[] = {1, 2, 4};
    const unsigned writeMixes[] = {10, 50, 90};
    constexpr std::uint64_t seed = 0xc0deULL;

    std::uint64_t staleTotal = 0;
    section("coherence: sharing-degree x write-mix sweep");
    row("cell", {"stale", "inv/msim-s", "xfer p99 us", "transfers"});
    for (std::size_t degree : degrees) {
        for (unsigned writePct : writeMixes) {
            CellResult r = runCell(degree, writePct, ops, seed);
            staleTotal += r.staleReads;
            char cellBuf[32];
            std::snprintf(cellBuf, sizeof cellBuf, "s%zu.w%u",
                          degree, writePct);
            std::string cell = cellBuf;
            row(cell, {fmtInt(r.staleReads), fmt(r.invalsPerMsimS),
                       fmt(r.ownershipP99Us), fmtInt(r.transfers)});
            const std::string prefix = "coherence." + cell;
            recordResult(prefix + ".stale_reads",
                         double(r.staleReads));
            recordResult(prefix + ".invals_per_msim_s",
                         r.invalsPerMsimS);
            recordResult(prefix + ".ownership_p99_us",
                         r.ownershipP99Us);
        }
    }

    // No-sharing overhead: attached vs detached runtime, identical
    // private workload, simulated time must be identical.
    section("coherence: no-sharing overhead");
    constexpr std::size_t privateBytes = 4 * MiB;
    MultiRackConfig soloCfg = rackConfig();
    soloCfg.computeNodes = 1;
    MultiRack attachedRack(soloCfg);
    std::uint64_t sumAttached =
        privateWorkload(attachedRack.runtime(0), privateBytes);
    Tick attachedNs = attachedRack.runtime(0).appTime();

    Rack plain(soloCfg.memoryNodes, soloCfg.memoryBytes,
               soloCfg.slabSize);
    KonaRuntime detached(plain.fabric, plain.controller,
                         MultiRack::firstComputeNode,
                         soloCfg.runtime);
    std::uint64_t sumDetached =
        privateWorkload(detached, privateBytes);
    Tick detachedNs = detached.appTime();

    if (sumAttached != sumDetached)
        fatal("no-sharing workload sums diverged");
    double ratio = detachedNs == 0
                       ? 0.0
                       : double(attachedNs) / double(detachedNs);
    row("apptime ratio", {fmt(ratio, 4)});
    recordResult("coherence.nosharing.apptime_ratio", ratio);
    recordResult("coherence.stale_reads_total", double(staleTotal));

    flushExports();
    if (staleTotal > 0) {
        std::printf("\n%llu stale read(s) observed\n",
                    static_cast<unsigned long long>(staleTotal));
        return 1;
    }
    std::printf("\nzero stale reads across the sweep\n");
    return 0;
}
