/**
 * @file
 * Table 2: dirty data amplification for 4KB-page, 2MB-page and
 * 64B-cache-line tracking granularity, across all nine workloads.
 *
 * Each workload runs under Pin-style instrumentation; execution is
 * split into windows and the amplification (tracked bytes / unique
 * bytes written) is averaged over windows, dropping the warmup and
 * teardown windows as the paper does.
 *
 * Expected shape (paper values in the rightmost columns): every
 * workload amplifies >2X at 4KB, enormously at 2MB, and ~1X at 64B;
 * Redis-Rand is the worst, Redis-Seq and Linear Regression the best.
 */

#include "bench/bench_util.h"
#include "trace/access_trace.h"
#include "trace/pattern_analyzer.h"

namespace kona {
namespace {

struct PaperRow
{
    const char *name;
    double amp4k, amp2m, ampLine;
};

const PaperRow paperRows[] = {
    {"redis-rand", 31.36, 5516.37, 1.48},
    {"redis-seq", 2.76, 54.76, 1.08},
    {"linear-regression", 2.31, 244.14, 1.22},
    {"histogram", 3.61, 1050.73, 1.84},
    {"pagerank", 4.38, 80.71, 1.47},
    {"graph-coloring", 5.57, 90.37, 1.57},
    {"connected-components", 5.67, 82.35, 1.62},
    {"label-propagation", 8.14, 95.00, 1.85},
    {"voltdb-tpcc", 3.74, 79.55, 1.17},
};

void
runOne(const PaperRow &paper)
{
    bench::PlainEnv env;
    TracingMemory traced(env.store);
    AccessPatternAnalyzer analyzer;

    WorkloadContext context(
        traced,
        [&env](std::size_t s, std::size_t a) {
            auto addr = env.heap.allocate(s, a);
            if (!addr.has_value())
                fatal("bench heap exhausted");
            return *addr;
        },
        [&env](Addr a) { env.heap.deallocate(a); });

    auto workload = makeWorkload(paper.name, context);
    workload->setup();   // untraced: dataset load is not measured
    traced.addSink(&analyzer);

    std::uint64_t windowOps = defaultWindowOps(paper.name);
    const std::size_t windows = defaultWindowCount(paper.name);
    for (std::size_t w = 0; w < windows; ++w) {
        if (workload->run(windowOps) == 0)
            break;
        traced.endWindow();
    }

    // Drop the two warmup windows and the teardown window (§6.3).
    AmplificationSample mean = analyzer.meanAmplification(2, 1);
    double footprintMb = static_cast<double>(
        workload->footprintBytes()) / (1024.0 * 1024.0);

    std::string prefix = std::string("table2.") + paper.name;
    bench::recordResult(prefix + ".footprint_mb", footprintMb);
    bench::recordResult(prefix + ".amp4k", mean.amp4k);
    bench::recordResult(prefix + ".amp2m", mean.amp2m);
    bench::recordResult(prefix + ".amp_line", mean.ampLine);

    bench::row(paper.name,
               {bench::fmt(footprintMb, 0), bench::fmt(mean.amp4k),
                bench::fmt(mean.amp2m, 0), bench::fmt(mean.ampLine),
                bench::fmt(paper.amp4k), bench::fmt(paper.amp2m, 0),
                bench::fmt(paper.ampLine)});
}

} // namespace
} // namespace kona

int
main(int argc, char **argv)
{
    using namespace kona;
    bench::parseExportFlags(argc, argv);
    setQuietLogging(true);
    bench::section("Table 2: dirty data amplification by tracking "
                   "granularity (measured vs paper)");
    bench::row("workload",
               {"MB", "4KB", "2MB", "64B", "p:4KB", "p:2MB", "p:64B"});
    for (const auto &paper : paperRows)
        runOne(paper);
    std::printf("\nShape checks: every 4KB amp > 2; 64B amp ~ 1; "
                "redis-rand worst, redis-seq among the best.\n");
    bench::flushExports();
    return 0;
}
