/**
 * @file
 * Figure 7: the end-to-end microbenchmark comparing Kona with
 * Kona-VM. Each thread owns a region (scaled from the paper's
 * 4GB/thread) and reads + writes one cache-line in every page; the
 * total work grows with the thread count. Variants:
 *
 *   Kona / Kona-VM            — 50% local cache, eviction concurrent
 *   Kona-NoEvict / VM-NoEvict — all data initially remote, cache
 *                               large enough to avoid eviction
 *   Kona-VM-NoWP              — NoEvict without write-protection
 *                               (only one fault per page; cannot
 *                               track dirty data)
 *
 * Expected shape: Kona ~6X faster than Kona-VM at 1 thread, 4-5X at
 * 2-4 threads; NoEvict 3-5X; even NoWP stays slower than Kona.
 * Threads contend for NIC bandwidth, which the model reflects by
 * scaling the per-byte wire cost with the thread count.
 */

#include "bench/bench_util.h"
#include "workloads/microbench.h"

namespace kona {
namespace {

constexpr std::size_t regionPerThread = 16 * MiB;

/** Latency table with NIC contention for @p threads threads. */
LatencyConfig
contended(unsigned threads)
{
    LatencyConfig lat;
    lat.rdmaPipelinedPerKbNs *= threads;
    // The VM baselines' measured fetch latencies embed a 4KB wire
    // transfer; that component contends for the NIC too.
    double extraWireNs = (threads - 1) * 4096.0 * 80.0 / 1024.0;
    lat.konaVmRemoteFetchNs += extraWireNs;
    lat.legoOsRemoteFetchNs += extraWireNs;
    lat.infiniswapRemoteFetchNs += extraWireNs;
    return lat;
}

/** One thread's run on a Kona stack; returns elapsed ns. */
Tick
runKonaThread(unsigned threads, bool evict)
{
    Fabric fabric(contended(threads));
    Controller controller(1 * MiB);
    MemoryNode node(fabric, 1, 128 * MiB);
    controller.registerNode(node);

    KonaConfig cfg;
    cfg.fpga.vfmemSize = 64 * MiB;
    cfg.fpga.fmemSize = evict ? regionPerThread / 2
                              : 2 * regionPerThread;
    cfg.hierarchy = HierarchyConfig::scaled();
    cfg.evict.pumpPeriod = 64;
    KonaRuntime runtime(fabric, controller, 0, cfg);

    WorkloadContext context = bench::runtimeContext(runtime);
    OnePerPageWorkload::Params params;
    params.regionBytes = regionPerThread;
    OnePerPageWorkload workload(context, params);
    workload.setup();
    while (workload.run(1024) != 0) {
    }
    // The paper times the benchmark proper; the teardown flush is
    // not part of the reported execution time.
    return runtime.elapsed();
}

/** One thread's run on a VM-baseline stack; returns elapsed ns. */
Tick
runVmThread(unsigned threads, bool evict, bool writeProtect)
{
    Fabric fabric(contended(threads));
    Controller controller(1 * MiB);
    MemoryNode node(fabric, 1, 128 * MiB);
    controller.registerNode(node);

    VmConfig cfg;
    cfg.localCachePages = (evict ? regionPerThread / 2
                                 : 2 * regionPerThread) / pageSize;
    cfg.hierarchy = HierarchyConfig::scaled();
    cfg.writeProtectTracking = writeProtect;
    VmRuntime runtime(fabric, controller, 0, cfg);

    WorkloadContext context = bench::runtimeContext(runtime);
    OnePerPageWorkload::Params params;
    params.regionBytes = regionPerThread;
    OnePerPageWorkload workload(context, params);
    workload.setup();
    while (workload.run(1024) != 0) {
    }
    return runtime.elapsed();
}

double
toMs(Tick ns)
{
    return static_cast<double>(ns) / 1e6;
}

} // namespace
} // namespace kona

int
main(int argc, char **argv)
{
    using namespace kona;
    bench::parseExportFlags(argc, argv);
    setQuietLogging(true);
    bench::section("Figure 7: Kona vs Kona-VM microbenchmark "
                   "(1 RW cache-line per page; time in ms, "
                   "16MB/thread scaled from 4GB)");
    bench::row("variant \\ threads", {"1", "2", "4", "VM/Kona @1"});

    std::vector<double> kona, konaVm, konaNe, vmNe, vmNoWp;
    for (unsigned threads : {1u, 2u, 4u}) {
        // All threads perform identical work concurrently; the
        // slowest one (== any, under symmetric contention) defines
        // the completion time.
        kona.push_back(toMs(runKonaThread(threads, true)));
        konaVm.push_back(toMs(runVmThread(threads, true, true)));
        konaNe.push_back(toMs(runKonaThread(threads, false)));
        vmNe.push_back(toMs(runVmThread(threads, false, true)));
        vmNoWp.push_back(toMs(runVmThread(threads, false, false)));
    }

    auto printRow = [](const std::string &name,
                       const std::vector<double> &ms,
                       double ratio) {
        bench::row(name,
                   {bench::fmt(ms[0]), bench::fmt(ms[1]),
                    bench::fmt(ms[2]), bench::fmt(ratio, 1)});
    };
    printRow("Kona", kona, 1.0);
    printRow("Kona-VM", konaVm, konaVm[0] / kona[0]);
    printRow("Kona-NoEvict", konaNe, 1.0);
    printRow("Kona-VM-NoEvict", vmNe, vmNe[0] / konaNe[0]);
    printRow("Kona-VM-NoWP", vmNoWp, vmNoWp[0] / konaNe[0]);

    std::printf("\nShape: Kona-VM/Kona ~6X @1T (paper 6.6X), 4-5X @2-4T"
                "; NoEvict 3-5X; NoWP still > 1.2X slower than "
                "Kona-NoEvict.\n");
    std::printf("Measured: VM/Kona = %.1f / %.1f / %.1f; "
                "NoEvict ratio = %.1f; NoWP ratio = %.1f\n",
                konaVm[0] / kona[0], konaVm[1] / kona[1],
                konaVm[2] / kona[2], vmNe[0] / konaNe[0],
                vmNoWp[0] / konaNe[0]);
    const unsigned threadCols[] = {1, 2, 4};
    for (std::size_t i = 0; i < 3; ++i) {
        std::string t = std::to_string(threadCols[i]) + "t.ms";
        bench::recordResult("fig7.kona." + t, kona[i]);
        bench::recordResult("fig7.kona_vm." + t, konaVm[i]);
        bench::recordResult("fig7.kona_noevict." + t, konaNe[i]);
        bench::recordResult("fig7.kona_vm_noevict." + t, vmNe[i]);
        bench::recordResult("fig7.kona_vm_nowp." + t, vmNoWp[i]);
    }
    bench::recordResult("fig7.vm_over_kona_1t", konaVm[0] / kona[0]);
    bench::flushExports();
    return 0;
}
