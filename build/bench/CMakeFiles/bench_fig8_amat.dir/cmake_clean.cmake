file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8_amat.dir/bench_fig8_amat.cc.o"
  "CMakeFiles/bench_fig8_amat.dir/bench_fig8_amat.cc.o.d"
  "bench_fig8_amat"
  "bench_fig8_amat.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_amat.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
