file(REMOVE_RECURSE
  "CMakeFiles/bench_fig3_contiguity.dir/bench_fig3_contiguity.cc.o"
  "CMakeFiles/bench_fig3_contiguity.dir/bench_fig3_contiguity.cc.o.d"
  "bench_fig3_contiguity"
  "bench_fig3_contiguity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_contiguity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
