# Empty dependencies file for bench_fig3_contiguity.
# This may be replaced when dependencies are built.
