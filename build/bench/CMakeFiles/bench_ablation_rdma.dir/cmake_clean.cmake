file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_rdma.dir/bench_ablation_rdma.cc.o"
  "CMakeFiles/bench_ablation_rdma.dir/bench_ablation_rdma.cc.o.d"
  "bench_ablation_rdma"
  "bench_ablation_rdma.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_rdma.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
