file(REMOVE_RECURSE
  "CMakeFiles/bench_fig9_amplification_windows.dir/bench_fig9_amplification_windows.cc.o"
  "CMakeFiles/bench_fig9_amplification_windows.dir/bench_fig9_amplification_windows.cc.o.d"
  "bench_fig9_amplification_windows"
  "bench_fig9_amplification_windows.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig9_amplification_windows.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
