# Empty dependencies file for bench_fig9_amplification_windows.
# This may be replaced when dependencies are built.
