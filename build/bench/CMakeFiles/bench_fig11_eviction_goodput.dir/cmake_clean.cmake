file(REMOVE_RECURSE
  "CMakeFiles/bench_fig11_eviction_goodput.dir/bench_fig11_eviction_goodput.cc.o"
  "CMakeFiles/bench_fig11_eviction_goodput.dir/bench_fig11_eviction_goodput.cc.o.d"
  "bench_fig11_eviction_goodput"
  "bench_fig11_eviction_goodput.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11_eviction_goodput.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
