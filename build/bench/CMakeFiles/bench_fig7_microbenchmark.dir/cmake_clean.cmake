file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7_microbenchmark.dir/bench_fig7_microbenchmark.cc.o"
  "CMakeFiles/bench_fig7_microbenchmark.dir/bench_fig7_microbenchmark.cc.o.d"
  "bench_fig7_microbenchmark"
  "bench_fig7_microbenchmark.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_microbenchmark.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
