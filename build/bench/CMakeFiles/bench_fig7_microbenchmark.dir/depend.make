# Empty dependencies file for bench_fig7_microbenchmark.
# This may be replaced when dependencies are built.
