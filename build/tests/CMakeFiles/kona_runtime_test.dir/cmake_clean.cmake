file(REMOVE_RECURSE
  "CMakeFiles/kona_runtime_test.dir/kona_runtime_test.cc.o"
  "CMakeFiles/kona_runtime_test.dir/kona_runtime_test.cc.o.d"
  "kona_runtime_test"
  "kona_runtime_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kona_runtime_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
