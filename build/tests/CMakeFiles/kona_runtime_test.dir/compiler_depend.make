# Empty compiler generated dependencies file for kona_runtime_test.
# This may be replaced when dependencies are built.
