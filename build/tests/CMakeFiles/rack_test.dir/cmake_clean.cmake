file(REMOVE_RECURSE
  "CMakeFiles/rack_test.dir/rack_test.cc.o"
  "CMakeFiles/rack_test.dir/rack_test.cc.o.d"
  "rack_test"
  "rack_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rack_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
