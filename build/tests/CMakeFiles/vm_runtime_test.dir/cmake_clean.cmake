file(REMOVE_RECURSE
  "CMakeFiles/vm_runtime_test.dir/vm_runtime_test.cc.o"
  "CMakeFiles/vm_runtime_test.dir/vm_runtime_test.cc.o.d"
  "vm_runtime_test"
  "vm_runtime_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vm_runtime_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
