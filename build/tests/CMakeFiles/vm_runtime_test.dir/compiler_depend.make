# Empty compiler generated dependencies file for vm_runtime_test.
# This may be replaced when dependencies are built.
