
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cache/hierarchy.cc" "src/CMakeFiles/kona.dir/cache/hierarchy.cc.o" "gcc" "src/CMakeFiles/kona.dir/cache/hierarchy.cc.o.d"
  "/root/repo/src/cache/set_assoc_cache.cc" "src/CMakeFiles/kona.dir/cache/set_assoc_cache.cc.o" "gcc" "src/CMakeFiles/kona.dir/cache/set_assoc_cache.cc.o.d"
  "/root/repo/src/common/logging.cc" "src/CMakeFiles/kona.dir/common/logging.cc.o" "gcc" "src/CMakeFiles/kona.dir/common/logging.cc.o.d"
  "/root/repo/src/common/rng.cc" "src/CMakeFiles/kona.dir/common/rng.cc.o" "gcc" "src/CMakeFiles/kona.dir/common/rng.cc.o.d"
  "/root/repo/src/common/stats.cc" "src/CMakeFiles/kona.dir/common/stats.cc.o" "gcc" "src/CMakeFiles/kona.dir/common/stats.cc.o.d"
  "/root/repo/src/core/eviction_handler.cc" "src/CMakeFiles/kona.dir/core/eviction_handler.cc.o" "gcc" "src/CMakeFiles/kona.dir/core/eviction_handler.cc.o.d"
  "/root/repo/src/core/kona_runtime.cc" "src/CMakeFiles/kona.dir/core/kona_runtime.cc.o" "gcc" "src/CMakeFiles/kona.dir/core/kona_runtime.cc.o.d"
  "/root/repo/src/core/vm_runtime.cc" "src/CMakeFiles/kona.dir/core/vm_runtime.cc.o" "gcc" "src/CMakeFiles/kona.dir/core/vm_runtime.cc.o.d"
  "/root/repo/src/fpga/coherent_fpga.cc" "src/CMakeFiles/kona.dir/fpga/coherent_fpga.cc.o" "gcc" "src/CMakeFiles/kona.dir/fpga/coherent_fpga.cc.o.d"
  "/root/repo/src/fpga/fmem_cache.cc" "src/CMakeFiles/kona.dir/fpga/fmem_cache.cc.o" "gcc" "src/CMakeFiles/kona.dir/fpga/fmem_cache.cc.o.d"
  "/root/repo/src/mem/backing_store.cc" "src/CMakeFiles/kona.dir/mem/backing_store.cc.o" "gcc" "src/CMakeFiles/kona.dir/mem/backing_store.cc.o.d"
  "/root/repo/src/mem/page_snapshot.cc" "src/CMakeFiles/kona.dir/mem/page_snapshot.cc.o" "gcc" "src/CMakeFiles/kona.dir/mem/page_snapshot.cc.o.d"
  "/root/repo/src/mem/page_table.cc" "src/CMakeFiles/kona.dir/mem/page_table.cc.o" "gcc" "src/CMakeFiles/kona.dir/mem/page_table.cc.o.d"
  "/root/repo/src/mem/region_allocator.cc" "src/CMakeFiles/kona.dir/mem/region_allocator.cc.o" "gcc" "src/CMakeFiles/kona.dir/mem/region_allocator.cc.o.d"
  "/root/repo/src/mem/tlb.cc" "src/CMakeFiles/kona.dir/mem/tlb.cc.o" "gcc" "src/CMakeFiles/kona.dir/mem/tlb.cc.o.d"
  "/root/repo/src/net/fabric.cc" "src/CMakeFiles/kona.dir/net/fabric.cc.o" "gcc" "src/CMakeFiles/kona.dir/net/fabric.cc.o.d"
  "/root/repo/src/net/queue_pair.cc" "src/CMakeFiles/kona.dir/net/queue_pair.cc.o" "gcc" "src/CMakeFiles/kona.dir/net/queue_pair.cc.o.d"
  "/root/repo/src/rack/controller.cc" "src/CMakeFiles/kona.dir/rack/controller.cc.o" "gcc" "src/CMakeFiles/kona.dir/rack/controller.cc.o.d"
  "/root/repo/src/rack/memory_node.cc" "src/CMakeFiles/kona.dir/rack/memory_node.cc.o" "gcc" "src/CMakeFiles/kona.dir/rack/memory_node.cc.o.d"
  "/root/repo/src/tools/kcachesim.cc" "src/CMakeFiles/kona.dir/tools/kcachesim.cc.o" "gcc" "src/CMakeFiles/kona.dir/tools/kcachesim.cc.o.d"
  "/root/repo/src/tools/ktracker.cc" "src/CMakeFiles/kona.dir/tools/ktracker.cc.o" "gcc" "src/CMakeFiles/kona.dir/tools/ktracker.cc.o.d"
  "/root/repo/src/trace/pattern_analyzer.cc" "src/CMakeFiles/kona.dir/trace/pattern_analyzer.cc.o" "gcc" "src/CMakeFiles/kona.dir/trace/pattern_analyzer.cc.o.d"
  "/root/repo/src/workloads/graph.cc" "src/CMakeFiles/kona.dir/workloads/graph.cc.o" "gcc" "src/CMakeFiles/kona.dir/workloads/graph.cc.o.d"
  "/root/repo/src/workloads/kv_store.cc" "src/CMakeFiles/kona.dir/workloads/kv_store.cc.o" "gcc" "src/CMakeFiles/kona.dir/workloads/kv_store.cc.o.d"
  "/root/repo/src/workloads/metis.cc" "src/CMakeFiles/kona.dir/workloads/metis.cc.o" "gcc" "src/CMakeFiles/kona.dir/workloads/metis.cc.o.d"
  "/root/repo/src/workloads/microbench.cc" "src/CMakeFiles/kona.dir/workloads/microbench.cc.o" "gcc" "src/CMakeFiles/kona.dir/workloads/microbench.cc.o.d"
  "/root/repo/src/workloads/registry.cc" "src/CMakeFiles/kona.dir/workloads/registry.cc.o" "gcc" "src/CMakeFiles/kona.dir/workloads/registry.cc.o.d"
  "/root/repo/src/workloads/tpcc.cc" "src/CMakeFiles/kona.dir/workloads/tpcc.cc.o" "gcc" "src/CMakeFiles/kona.dir/workloads/tpcc.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
