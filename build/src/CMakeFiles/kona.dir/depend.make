# Empty dependencies file for kona.
# This may be replaced when dependencies are built.
