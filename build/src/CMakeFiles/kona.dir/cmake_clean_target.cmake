file(REMOVE_RECURSE
  "libkona.a"
)
