# Empty dependencies file for dirty_tracking_tour.
# This may be replaced when dependencies are built.
