file(REMOVE_RECURSE
  "CMakeFiles/dirty_tracking_tour.dir/dirty_tracking_tour.cpp.o"
  "CMakeFiles/dirty_tracking_tour.dir/dirty_tracking_tour.cpp.o.d"
  "dirty_tracking_tour"
  "dirty_tracking_tour.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dirty_tracking_tour.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
