# Empty compiler generated dependencies file for redis_remote.
# This may be replaced when dependencies are built.
