file(REMOVE_RECURSE
  "CMakeFiles/redis_remote.dir/redis_remote.cpp.o"
  "CMakeFiles/redis_remote.dir/redis_remote.cpp.o.d"
  "redis_remote"
  "redis_remote.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/redis_remote.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
