/**
 * @file
 * CLI driver: run any of the nine paper workloads on any runtime
 * with a chosen local-memory fraction, and report throughput and
 * runtime statistics. The "swiss-army knife" for exploring the
 * design space beyond the canned benchmarks.
 *
 * Usage:
 *   run_workload [workload] [runtime] [local%] [ops]
 *                [--prefetch=POLICY[:depth]] [--evict-depth=N]
 *                [--victim=POLICY[:arg]] [--placement=POLICY]
 *                [--tiering=POLICY[:n]]
 *                [--metrics-json=PATH] [--trace-out=PATH]
 *                [--timeseries-out=PATH] [--timeseries-interval=NS]
 *                [--events-out=PATH]
 *                [--chaos=NAME|@FILE] [--chaos-seed=N]
 *
 *   workload:  redis-rand | redis-seq | linear-regression |
 *              histogram | pagerank | graph-coloring |
 *              connected-components | label-propagation |
 *              voltdb-tpcc                       (default redis-rand)
 *   runtime:   kona | kona-vm | legoos | infiniswap | local
 *                                                  (default kona)
 *   local%:    local cache as a percent of the footprint (default 50)
 *   ops:       operations to run (default 4x the workload's window)
 *
 *   --prefetch=POLICY    FPGA prefetch policy (kona runtime only):
 *                        off | next[:d] | stride[:d] | corr[:d] |
 *                        adaptive[:d]; accuracy/coverage counters
 *                        appear under kona.fpga.prefetch.*
 *   --evict-depth=N      eviction pipeline depth (kona runtime only):
 *                        ring slots per memory node's log landing
 *                        area = in-flight eviction batches per node;
 *                        1 (default) is fully synchronous
 *   --victim=POLICY      FMem victim-selection policy (kona runtime
 *                        only): lru | lfu | scan[:t] | dirty; picks
 *                        appear under kona.fpga.fmem.policy.*
 *   --placement=POLICY   slab placement policy at the Controller:
 *                        free | first | rr | health
 *   --tiering=POLICY     hot/cold tiering (kona runtime only):
 *                        off | ewma[:n]; promotion/demotion counters
 *                        appear under kona.tier.*
 *   --metrics-json=PATH  write every metric of the whole stack
 *                        (fabric, rack, nodes, runtime) as one JSON
 *                        registry dump
 *   --trace-out=PATH     record sim-time spans of the miss and
 *                        eviction paths and write Chrome trace-event
 *                        JSON (open in Perfetto / chrome://tracing)
 *   --timeseries-out=PATH  sample every stack metric on a sim-time
 *                        interval and write per-window deltas
 *                        (".json" = JSON, else CSV); works in both
 *                        the plain and --chaos= modes
 *   --timeseries-interval=NS  sim-time sampling interval in ns
 *                        (default 1000000 = 1ms)
 *   --events-out=PATH    write the runtime's structured event journal
 *                        (health transitions, quarantine/readmit,
 *                        epoch bumps, drain/join, stale-home marks,
 *                        retries-exhausted, ring-full stalls) as JSONL
 *   --chaos=NAME|@FILE   run a scripted gray-failure scenario instead
 *                        of the plain workload loop: a builtin name
 *                        (slow-node, flapping, partial-partition,
 *                        drain-under-load, hot-add-rebalance) or
 *                        @path to a scenario file (format documented
 *                        in src/chaos/chaos_scenario.h). Reports tail
 *                        latency, availability, membership epochs and
 *                        the content-oracle verdict.
 *   --chaos-seed=N       fault-injector seed for --chaos (default
 *                        0x5eed); the run is deterministic from
 *                        (scenario, seed)
 *
 * Examples:
 *   ./build/examples/run_workload pagerank kona 25
 *   ./build/examples/run_workload voltdb-tpcc infiniswap 50 20000
 *   ./build/examples/run_workload redis-seq kona 25 --prefetch=stride:4
 *   ./build/examples/run_workload redis-rand kona 50 \
 *       --metrics-json=metrics.json --trace-out=miss.trace.json
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string_view>

#include "chaos/chaos_runner.h"
#include "chaos/chaos_scenario.h"
#include "core/kona_runtime.h"
#include "core/vm_runtime.h"
#include "mem/backing_store.h"
#include "policy/placement_policy.h"
#include "policy/tiering_engine.h"
#include "policy/victim_policy.h"
#include "prefetch/prefetcher.h"
#include "telemetry/event_journal.h"
#include "telemetry/metric_registry.h"
#include "telemetry/time_series.h"
#include "telemetry/trace_session.h"
#include "workloads/registry.h"

namespace {

using namespace kona;

/** Footprint of @p name from a dry setup on plain memory. */
std::size_t
dryFootprint(const std::string &name)
{
    BackingStore store(1024 * MiB);
    RegionAllocator heap(pageSize, 1024 * MiB - pageSize);
    WorkloadContext context(
        store,
        [&heap](std::size_t s, std::size_t a) {
            return *heap.allocate(s, a);
        },
        [&heap](Addr a) { heap.deallocate(a); });
    auto workload = makeWorkload(name, context);
    workload->setup();
    return workload->footprintBytes();
}

[[noreturn]] void
usage()
{
    std::fprintf(stderr,
                 "usage: run_workload [workload] [runtime] [local%%] "
                 "[ops] [--prefetch=POLICY[:depth]] [--evict-depth=N] "
                 "[--victim=POLICY[:arg]] [--placement=POLICY] "
                 "[--tiering=POLICY[:n]] "
                 "[--metrics-json=PATH] [--trace-out=PATH] "
                 "[--timeseries-out=PATH] [--timeseries-interval=NS] "
                 "[--events-out=PATH] "
                 "[--chaos=NAME|@FILE] [--chaos-seed=N]\n"
                 "  workloads:");
    for (const std::string &name : table2WorkloadNames())
        std::fprintf(stderr, " %s", name.c_str());
    std::fprintf(stderr,
                 "\n  runtimes: kona kona-vm legoos infiniswap local\n"
                 "  prefetch policies (kona):");
    for (const std::string &name : prefetchPolicyNames())
        std::fprintf(stderr, " %s", name.c_str());
    std::fprintf(stderr, "\n  victim policies (kona):");
    for (const std::string &name : victimPolicyNames())
        std::fprintf(stderr, " %s", name.c_str());
    std::fprintf(stderr, "\n  placement policies:");
    for (const std::string &name : placementPolicyNames())
        std::fprintf(stderr, " %s", name.c_str());
    std::fprintf(stderr, "\n  tiering policies (kona):");
    for (const std::string &name : tieringPolicyNames())
        std::fprintf(stderr, " %s", name.c_str());
    std::fprintf(stderr, "\n  chaos scenarios:");
    for (const ChaosScenario &sc : builtinChaosScenarios())
        std::fprintf(stderr, " %s", sc.name.c_str());
    std::fprintf(stderr, "\n");
    std::exit(2);
}

/** Resolve --chaos= to a scenario: builtin by name, or @path. */
ChaosScenario
resolveChaosScenario(const std::string &spec)
{
    if (!spec.empty() && spec[0] == '@') {
        std::ifstream is(spec.substr(1));
        if (!is) {
            std::fprintf(stderr, "cannot open chaos scenario file %s\n",
                         spec.c_str() + 1);
            std::exit(2);
        }
        std::ostringstream text;
        text << is.rdbuf();
        return parseChaosScenario(text.str());
    }
    for (const ChaosScenario &sc : builtinChaosScenarios()) {
        if (sc.name == spec)
            return sc;
    }
    std::fprintf(stderr, "unknown chaos scenario: %s\n", spec.c_str());
    usage();
}

/** Print the slowest-1% component breakdown(s) of a kona run. */
void
printAttributionTables(KonaRuntime &kona)
{
    kona.missAttribution().printTable(
        std::cout, "demand-miss latency attribution");
    kona.evictionHandler().shipmentAttribution().printTable(
        std::cout, "eviction-shipment latency attribution");
}

/** The --chaos= mode: one scripted run plus its fault-free oracle. */
int
runChaosMode(const std::string &spec, std::uint64_t seed,
             const std::string &timeseriesOut, Tick timeseriesIntervalNs,
             const std::string &eventsOut)
{
    ChaosScenario scenario = resolveChaosScenario(spec);

    TimeSeriesSampler sampler(timeseriesIntervalNs);
    ChaosRunConfig cfg;
    cfg.seed = seed;
    if (!timeseriesOut.empty())
        cfg.sampler = &sampler;
    ChaosReport run = runChaosScenario(scenario, cfg);

    ChaosRunConfig oracleCfg;
    oracleCfg.faultFree = true;
    ChaosReport oracle = runChaosScenario(scenario, oracleCfg);
    bool match = run.image == oracle.image;

    std::printf("scenario   : %s (workload %s, %zu nodes, seed "
                "0x%llx)\n",
                scenario.name.c_str(), scenario.workload.c_str(),
                scenario.nodes,
                static_cast<unsigned long long>(seed));
    std::printf("operations : %llu\n",
                static_cast<unsigned long long>(run.opsDone));
    std::printf("latency    : mean %.1f us, p99 %.1f us\n",
                run.meanOpNs / 1e3, run.p99OpNs / 1e3);
    std::printf("available  : %.2f%% of ops within the %.0f us SLO\n",
                100.0 * run.availability,
                static_cast<double>(cfg.sloNs) / 1e3);
    std::printf("membership : epoch %llu, %zu nodes at exit%s%s\n",
                static_cast<unsigned long long>(run.membershipEpoch),
                run.finalNodeCount, run.drained ? ", drained 1" : "",
                run.hotAdded ? ", hot-added 1" : "");
    std::printf("resilience : %llu hedged reads, %llu stale-copy "
                "marks, %llu drain stalls\n",
                static_cast<unsigned long long>(run.hedgedReads),
                static_cast<unsigned long long>(run.staleCopyMarks),
                static_cast<unsigned long long>(
                    run.evacuateDrainStalls));
    std::printf("oracle     : %s\n",
                match ? "match (final memory byte-identical to the "
                        "fault-free run)"
                      : "MISMATCH — content diverged");
    std::printf("attribution: miss sum %llu ns over %llu samples, "
                "shipment sum %llu ns over %llu samples\n",
                static_cast<unsigned long long>(run.missAttrTotalNs),
                static_cast<unsigned long long>(run.missAttrSamples),
                static_cast<unsigned long long>(run.shipAttrTotalNs),
                static_cast<unsigned long long>(run.shipAttrSamples));
    if (!timeseriesOut.empty()) {
        if (!sampler.writeFile(timeseriesOut))
            return 1;
        std::printf("timeseries : %s (%zu windows, %zu columns, %llu "
                    "dropped)\n",
                    timeseriesOut.c_str(), sampler.windows(),
                    sampler.columns(),
                    static_cast<unsigned long long>(
                        sampler.droppedWindows()));
    }
    if (!eventsOut.empty()) {
        std::ofstream os(eventsOut);
        if (!os) {
            std::fprintf(stderr, "cannot open %s for events export\n",
                         eventsOut.c_str());
            return 1;
        }
        EventJournal::writeEventsJsonl(os, run.journal);
        std::printf("events     : %s (%zu journal events)\n",
                    eventsOut.c_str(), run.journal.size());
    }
    return match ? 0 : 1;
}

/** All the --flag= values of one invocation. */
struct Flags
{
    std::string metricsJson;
    std::string traceOut;
    std::string prefetch;
    std::string victim;
    std::string placement;
    std::string tiering;
    std::size_t evictDepth = 1;
    std::string chaos;
    std::uint64_t chaosSeed = 0x5eedULL;
    std::string timeseriesOut;
    Tick timeseriesIntervalNs = 1'000'000;
    std::string eventsOut;
};

/** Strip every --flag= from argv (positional args are parsed by
 *  index, so the flags must come out first). */
void
parseExportFlags(int &argc, char **argv, Flags &flags)
{
    int kept = 1;
    for (int i = 1; i < argc; ++i) {
        std::string_view arg = argv[i];
        constexpr std::string_view metricsFlag = "--metrics-json=";
        constexpr std::string_view traceFlag = "--trace-out=";
        constexpr std::string_view prefetchFlag = "--prefetch=";
        constexpr std::string_view depthFlag = "--evict-depth=";
        constexpr std::string_view victimFlag = "--victim=";
        constexpr std::string_view placementFlag = "--placement=";
        constexpr std::string_view tieringFlag = "--tiering=";
        constexpr std::string_view chaosFlag = "--chaos=";
        constexpr std::string_view chaosSeedFlag = "--chaos-seed=";
        constexpr std::string_view tsFlag = "--timeseries-out=";
        constexpr std::string_view tsIntervalFlag =
            "--timeseries-interval=";
        constexpr std::string_view eventsFlag = "--events-out=";
        if (arg.substr(0, metricsFlag.size()) == metricsFlag)
            flags.metricsJson = arg.substr(metricsFlag.size());
        else if (arg.substr(0, traceFlag.size()) == traceFlag)
            flags.traceOut = arg.substr(traceFlag.size());
        else if (arg.substr(0, prefetchFlag.size()) == prefetchFlag)
            flags.prefetch = arg.substr(prefetchFlag.size());
        else if (arg.substr(0, victimFlag.size()) == victimFlag)
            flags.victim = arg.substr(victimFlag.size());
        else if (arg.substr(0, placementFlag.size()) == placementFlag)
            flags.placement = arg.substr(placementFlag.size());
        else if (arg.substr(0, tieringFlag.size()) == tieringFlag)
            flags.tiering = arg.substr(tieringFlag.size());
        else if (arg.substr(0, depthFlag.size()) == depthFlag) {
            int depth = std::atoi(
                std::string(arg.substr(depthFlag.size())).c_str());
            if (depth < 1)
                usage();
            flags.evictDepth = static_cast<std::size_t>(depth);
        } else if (arg.substr(0, chaosFlag.size()) == chaosFlag)
            flags.chaos = arg.substr(chaosFlag.size());
        else if (arg.substr(0, chaosSeedFlag.size()) == chaosSeedFlag)
            flags.chaosSeed = std::strtoull(
                std::string(arg.substr(chaosSeedFlag.size())).c_str(),
                nullptr, 0);
        else if (arg.substr(0, tsFlag.size()) == tsFlag)
            flags.timeseriesOut = arg.substr(tsFlag.size());
        else if (arg.substr(0, tsIntervalFlag.size()) ==
                 tsIntervalFlag) {
            flags.timeseriesIntervalNs = std::strtoull(
                std::string(arg.substr(tsIntervalFlag.size())).c_str(),
                nullptr, 10);
            if (flags.timeseriesIntervalNs == 0)
                usage();
        } else if (arg.substr(0, eventsFlag.size()) == eventsFlag)
            flags.eventsOut = arg.substr(eventsFlag.size());
        else
            argv[kept++] = argv[i];
    }
    for (int i = kept; i < argc; ++i)
        argv[i] = nullptr;
    argc = kept;
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace kona;
    setQuietLogging(true);

    Flags flags;
    parseExportFlags(argc, argv, flags);
    const std::string &metricsJson = flags.metricsJson;
    const std::string &traceOut = flags.traceOut;
    const std::string &prefetchPolicy = flags.prefetch;
    std::size_t evictDepth = flags.evictDepth;
    if (!flags.chaos.empty()) {
        return runChaosMode(flags.chaos, flags.chaosSeed,
                            flags.timeseriesOut,
                            flags.timeseriesIntervalNs,
                            flags.eventsOut);
    }

    std::string workloadName = argc > 1 ? argv[1] : "redis-rand";
    std::string runtimeName = argc > 2 ? argv[2] : "kona";
    int localPct = argc > 3 ? std::atoi(argv[3]) : 50;
    std::uint64_t ops = argc > 4
        ? static_cast<std::uint64_t>(std::atoll(argv[4]))
        : defaultWindowOps(workloadName) * 4;

    bool known = false;
    for (const std::string &name : table2WorkloadNames())
        known |= name == workloadName;
    if (!known || localPct < 1 || localPct > 100)
        usage();
    if (!prefetchPolicy.empty() &&
        !knownPrefetchPolicy(prefetchPolicy)) {
        std::fprintf(stderr, "unknown --prefetch= policy: %s\n",
                     prefetchPolicy.c_str());
        usage();
    }
    if (!prefetchPolicy.empty() && runtimeName != "kona") {
        std::fprintf(stderr, "--prefetch= only applies to the kona "
                             "runtime (the FPGA owns the prefetcher); "
                             "ignoring\n");
    }
    if (!flags.victim.empty() && !knownVictimPolicy(flags.victim)) {
        std::fprintf(stderr, "unknown --victim= policy: %s\n",
                     flags.victim.c_str());
        usage();
    }
    if (!flags.placement.empty() &&
        !knownPlacementPolicy(flags.placement)) {
        std::fprintf(stderr, "unknown --placement= policy: %s\n",
                     flags.placement.c_str());
        usage();
    }
    if (!flags.tiering.empty() && !knownTieringPolicy(flags.tiering)) {
        std::fprintf(stderr, "unknown --tiering= policy: %s\n",
                     flags.tiering.c_str());
        usage();
    }
    if ((!flags.victim.empty() || !flags.tiering.empty()) &&
        runtimeName != "kona") {
        std::fprintf(stderr, "--victim=/--tiering= only apply to the "
                             "kona runtime; ignoring\n");
    }
    if (evictDepth != 1 && runtimeName != "kona") {
        std::fprintf(stderr, "--evict-depth= only applies to the kona "
                             "runtime (the eviction engine owns the "
                             "pipeline); ignoring\n");
    }

    std::size_t footprint = dryFootprint(workloadName);
    std::size_t localBytes = std::max<std::size_t>(
        footprint * static_cast<std::size_t>(localPct) / 100,
        64 * pageSize);

    // One registry for the whole stack: the fabric, the rack and the
    // runtime all register into it, so --metrics-json= dumps a single
    // unified namespace ("fabric.*", "rack.*", "kona.*" / "vm.*").
    auto registry = std::make_shared<MetricRegistry>();

    // Rack: three memory nodes sized generously.
    Fabric fabric(LatencyConfig{}, MetricScope(registry, "fabric"));
    Controller controller(1 * MiB, MetricScope(registry, "rack"),
                          flags.placement.empty() ? "free"
                                                  : flags.placement);
    std::vector<std::unique_ptr<MemoryNode>> nodes;
    for (NodeId id = 1; id <= 3; ++id) {
        nodes.push_back(std::make_unique<MemoryNode>(
            fabric, id, 1024 * MiB, 4 * MiB,
            MetricScope(registry,
                        "rack.node" + std::to_string(id))));
        controller.registerNode(*nodes.back());
    }

    std::unique_ptr<RemoteMemoryRuntime> runtime;
    std::unique_ptr<BackingStore> localStore;
    std::unique_ptr<RegionAllocator> localHeap;
    std::unique_ptr<WorkloadContext> context;

    KonaRuntime *kona = nullptr;
    VmRuntime *vm = nullptr;
    if (runtimeName == "kona") {
        KonaConfig cfg;
        cfg.fpga.vfmemSize = 2048 * MiB;
        cfg.fpga.fmemSize = alignUp(localBytes, 4 * pageSize);
        if (!prefetchPolicy.empty())
            cfg.fpga.prefetchPolicy = prefetchPolicy;
        if (!flags.victim.empty())
            cfg.fpga.victimPolicy = flags.victim;
        if (!flags.tiering.empty())
            cfg.tiering = flags.tiering;
        cfg.evict.pipelineDepth = evictDepth;
        cfg.hierarchy = HierarchyConfig::scaled();
        auto owned = std::make_unique<KonaRuntime>(
            fabric, controller, 0, cfg,
            MetricScope(registry, "kona"));
        kona = owned.get();
        runtime = std::move(owned);
    } else if (runtimeName == "kona-vm" || runtimeName == "legoos" ||
               runtimeName == "infiniswap") {
        VmConfig cfg;
        cfg.personality = runtimeName == "legoos"
            ? VmPersonality::LegoOs
            : runtimeName == "infiniswap" ? VmPersonality::Infiniswap
                                          : VmPersonality::KonaVm;
        cfg.localCachePages = localBytes / pageSize;
        cfg.hierarchy = HierarchyConfig::scaled();
        auto owned = std::make_unique<VmRuntime>(
            fabric, controller, 0, cfg, MetricScope(registry, "vm"));
        vm = owned.get();
        runtime = std::move(owned);
    } else if (runtimeName != "local") {
        usage();
    }

    if (runtime != nullptr && !traceOut.empty()) {
        TraceSession *trace = runtime->traceSession();
        if (trace != nullptr) {
            trace->setCapacity(1 << 20);   // fit a full run
            trace->enable();
        }
    }

    if (runtime != nullptr) {
        context = std::make_unique<WorkloadContext>(
            *runtime,
            [&runtime](std::size_t s, std::size_t a) {
                return runtime->allocate(s, a);
            },
            [&runtime](Addr a) { runtime->deallocate(a); });
    } else {
        localStore = std::make_unique<BackingStore>(1024 * MiB);
        localHeap = std::make_unique<RegionAllocator>(
            pageSize, 1024 * MiB - pageSize);
        context = std::make_unique<WorkloadContext>(
            *localStore,
            [&localHeap](std::size_t s, std::size_t a) {
                return *localHeap->allocate(s, a);
            },
            [&localHeap](Addr a) { localHeap->deallocate(a); });
    }

    auto workload = makeWorkload(workloadName, *context);
    workload->setup();

    // Attach after setup so lazily-created metrics (QP scopes) are in
    // the sampled set; the runtime ticks it once per read()/write().
    TimeSeriesSampler sampler(flags.timeseriesIntervalNs);
    if (runtime != nullptr && !flags.timeseriesOut.empty()) {
        sampler.attach(registry,
                       kona != nullptr ? kona->appClock().now()
                       : vm != nullptr ? vm->appClock().now()
                                       : Tick{0});
        runtime->setTimeSeriesSampler(&sampler);
    }

    Tick before = runtime ? runtime->elapsed() : 0;
    std::uint64_t executed = 0;
    while (executed < ops) {
        std::uint64_t got = workload->run(
            std::min<std::uint64_t>(ops - executed, 10000));
        if (got == 0)
            break;
        executed += got;
    }
    Tick ns = runtime ? runtime->elapsed() - before : 1;

    std::printf("workload   : %s (%.1f MB footprint)\n",
                workloadName.c_str(),
                static_cast<double>(footprint) / 1e6);
    std::printf("runtime    : %s, %d%% local (%.1f MB)\n",
                runtime ? runtime->name().c_str() : "local DRAM",
                localPct, static_cast<double>(localBytes) / 1e6);
    std::printf("operations : %llu\n",
                static_cast<unsigned long long>(executed));
    if (runtime) {
        RuntimeStats stats = runtime->stats();
        std::printf("sim time   : %.2f ms  (%.0f kops/s)\n",
                    static_cast<double>(ns) / 1e6,
                    static_cast<double>(executed) /
                        (static_cast<double>(ns) / 1e9) / 1e3);
        std::printf("fetches    : %llu remote\n",
                    static_cast<unsigned long long>(
                        stats.remoteFetches));
        std::printf("faults     : %llu major + %llu minor\n",
                    static_cast<unsigned long long>(stats.majorFaults),
                    static_cast<unsigned long long>(
                        stats.minorFaults));
        std::printf("eviction   : %llu pages (%llu silent), %llu "
                    "dirty lines, %.2f MB on wire\n",
                    static_cast<unsigned long long>(
                        stats.pagesEvicted),
                    static_cast<unsigned long long>(
                        stats.silentEvictions),
                    static_cast<unsigned long long>(
                        stats.dirtyLinesWritten),
                    static_cast<double>(stats.evictionBytesOnWire) /
                        1e6);
        if (kona != nullptr && kona->fpga().prefetcher() != nullptr) {
            PrefetchStats ps = kona->fpga().prefetchStats();
            std::printf("prefetch   : %s — %llu issued, %llu useful, "
                        "%llu wasted (%.0f%% accuracy)\n",
                        kona->fpga().prefetcher()->name().c_str(),
                        static_cast<unsigned long long>(ps.issued),
                        static_cast<unsigned long long>(ps.useful),
                        static_cast<unsigned long long>(ps.wasted),
                        100.0 * ps.accuracy());
        }
        if (kona != nullptr && kona->tieringEngine() != nullptr) {
            TieringEngine &tier = *kona->tieringEngine();
            std::printf("tiering    : %llu promoted (%llu useful, "
                        "%llu wasted), %llu demoted\n",
                        static_cast<unsigned long long>(
                            tier.promoted()),
                        static_cast<unsigned long long>(
                            tier.promotedUseful()),
                        static_cast<unsigned long long>(
                            tier.promotedWasted()),
                        static_cast<unsigned long long>(
                            tier.demoted()));
        }
    }
    if (kona != nullptr)
        printAttributionTables(*kona);

    if (runtime != nullptr && !flags.timeseriesOut.empty()) {
        sampler.finish(kona != nullptr ? kona->appClock().now()
                       : vm != nullptr ? vm->appClock().now()
                                       : Tick{0});
        if (!sampler.writeFile(flags.timeseriesOut))
            return 1;
        std::printf("timeseries : %s (%zu windows, %zu columns, %llu "
                    "dropped)\n",
                    flags.timeseriesOut.c_str(), sampler.windows(),
                    sampler.columns(),
                    static_cast<unsigned long long>(
                        sampler.droppedWindows()));
    }
    if (runtime != nullptr && !flags.eventsOut.empty()) {
        EventJournal *journal = runtime->eventJournal();
        if (journal != nullptr) {
            if (!journal->writeJsonlFile(flags.eventsOut))
                return 1;
            std::printf("events     : %s (%zu journal events, %llu "
                        "dropped)\n",
                        flags.eventsOut.c_str(), journal->size(),
                        static_cast<unsigned long long>(
                            journal->dropped()));
        } else {
            std::fprintf(stderr, "--events-out= needs a runtime with "
                                 "an event journal (kona); ignoring\n");
        }
    }

    if (!metricsJson.empty()) {
        // Headline run facts ride along with the component metrics.
        if (kona != nullptr)
            kona->exportAttribution();
        registry->gauge("run.operations")
            .set(static_cast<double>(executed));
        registry->gauge("run.sim_ns").set(static_cast<double>(ns));
        registry->gauge("run.footprint_bytes")
            .set(static_cast<double>(footprint));
        registry->gauge("run.local_bytes")
            .set(static_cast<double>(localBytes));
        std::ofstream os(metricsJson);
        if (!os) {
            std::fprintf(stderr, "cannot open %s for metrics export\n",
                         metricsJson.c_str());
            return 1;
        }
        registry->writeJson(os);
        std::printf("metrics    : %s\n", metricsJson.c_str());
    }
    if (runtime != nullptr && !traceOut.empty() &&
        runtime->traceSession() != nullptr) {
        if (!runtime->traceSession()->writeJsonFile(traceOut))
            return 1;
        std::printf("trace      : %s (%zu events, %llu dropped)\n",
                    traceOut.c_str(), runtime->traceSession()->size(),
                    static_cast<unsigned long long>(
                        runtime->traceSession()->dropped()));
    }
    return 0;
}
