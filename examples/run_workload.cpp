/**
 * @file
 * CLI driver: run any of the nine paper workloads on any runtime
 * with a chosen local-memory fraction, and report throughput and
 * runtime statistics. The "swiss-army knife" for exploring the
 * design space beyond the canned benchmarks.
 *
 * Usage:
 *   run_workload [workload] [runtime] [local%] [ops]
 *                [--prefetch=POLICY[:depth]] [--evict-depth=N]
 *                [--metrics-json=PATH] [--trace-out=PATH]
 *
 *   workload:  redis-rand | redis-seq | linear-regression |
 *              histogram | pagerank | graph-coloring |
 *              connected-components | label-propagation |
 *              voltdb-tpcc                       (default redis-rand)
 *   runtime:   kona | kona-vm | legoos | infiniswap | local
 *                                                  (default kona)
 *   local%:    local cache as a percent of the footprint (default 50)
 *   ops:       operations to run (default 4x the workload's window)
 *
 *   --prefetch=POLICY    FPGA prefetch policy (kona runtime only):
 *                        off | next[:d] | stride[:d] | corr[:d] |
 *                        adaptive[:d]; accuracy/coverage counters
 *                        appear under kona.fpga.prefetch.*
 *   --evict-depth=N      eviction pipeline depth (kona runtime only):
 *                        ring slots per memory node's log landing
 *                        area = in-flight eviction batches per node;
 *                        1 (default) is fully synchronous
 *   --metrics-json=PATH  write every metric of the whole stack
 *                        (fabric, rack, nodes, runtime) as one JSON
 *                        registry dump
 *   --trace-out=PATH     record sim-time spans of the miss and
 *                        eviction paths and write Chrome trace-event
 *                        JSON (open in Perfetto / chrome://tracing)
 *
 * Examples:
 *   ./build/examples/run_workload pagerank kona 25
 *   ./build/examples/run_workload voltdb-tpcc infiniswap 50 20000
 *   ./build/examples/run_workload redis-seq kona 25 --prefetch=stride:4
 *   ./build/examples/run_workload redis-rand kona 50 \
 *       --metrics-json=metrics.json --trace-out=miss.trace.json
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string_view>

#include "core/kona_runtime.h"
#include "core/vm_runtime.h"
#include "mem/backing_store.h"
#include "prefetch/prefetcher.h"
#include "telemetry/metric_registry.h"
#include "telemetry/trace_session.h"
#include "workloads/registry.h"

namespace {

using namespace kona;

/** Footprint of @p name from a dry setup on plain memory. */
std::size_t
dryFootprint(const std::string &name)
{
    BackingStore store(1024 * MiB);
    RegionAllocator heap(pageSize, 1024 * MiB - pageSize);
    WorkloadContext context(
        store,
        [&heap](std::size_t s, std::size_t a) {
            return *heap.allocate(s, a);
        },
        [&heap](Addr a) { heap.deallocate(a); });
    auto workload = makeWorkload(name, context);
    workload->setup();
    return workload->footprintBytes();
}

[[noreturn]] void
usage()
{
    std::fprintf(stderr,
                 "usage: run_workload [workload] [runtime] [local%%] "
                 "[ops] [--prefetch=POLICY[:depth]] [--evict-depth=N] "
                 "[--metrics-json=PATH] [--trace-out=PATH]\n"
                 "  workloads:");
    for (const std::string &name : table2WorkloadNames())
        std::fprintf(stderr, " %s", name.c_str());
    std::fprintf(stderr,
                 "\n  runtimes: kona kona-vm legoos infiniswap local\n"
                 "  prefetch policies (kona):");
    for (const std::string &name : prefetchPolicyNames())
        std::fprintf(stderr, " %s", name.c_str());
    std::fprintf(stderr, "\n");
    std::exit(2);
}

/** Strip --metrics-json=/--trace-out=/--prefetch= from argv
 *  (positional args are parsed by index, so the flags must come out
 *  first). */
void
parseExportFlags(int &argc, char **argv, std::string &metricsJson,
                 std::string &traceOut, std::string &prefetch,
                 std::size_t &evictDepth)
{
    int kept = 1;
    for (int i = 1; i < argc; ++i) {
        std::string_view arg = argv[i];
        constexpr std::string_view metricsFlag = "--metrics-json=";
        constexpr std::string_view traceFlag = "--trace-out=";
        constexpr std::string_view prefetchFlag = "--prefetch=";
        constexpr std::string_view depthFlag = "--evict-depth=";
        if (arg.substr(0, metricsFlag.size()) == metricsFlag)
            metricsJson = arg.substr(metricsFlag.size());
        else if (arg.substr(0, traceFlag.size()) == traceFlag)
            traceOut = arg.substr(traceFlag.size());
        else if (arg.substr(0, prefetchFlag.size()) == prefetchFlag)
            prefetch = arg.substr(prefetchFlag.size());
        else if (arg.substr(0, depthFlag.size()) == depthFlag) {
            int depth = std::atoi(
                std::string(arg.substr(depthFlag.size())).c_str());
            if (depth < 1)
                usage();
            evictDepth = static_cast<std::size_t>(depth);
        } else
            argv[kept++] = argv[i];
    }
    for (int i = kept; i < argc; ++i)
        argv[i] = nullptr;
    argc = kept;
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace kona;
    setQuietLogging(true);

    std::string metricsJson, traceOut, prefetchPolicy;
    std::size_t evictDepth = 1;
    parseExportFlags(argc, argv, metricsJson, traceOut,
                     prefetchPolicy, evictDepth);

    std::string workloadName = argc > 1 ? argv[1] : "redis-rand";
    std::string runtimeName = argc > 2 ? argv[2] : "kona";
    int localPct = argc > 3 ? std::atoi(argv[3]) : 50;
    std::uint64_t ops = argc > 4
        ? static_cast<std::uint64_t>(std::atoll(argv[4]))
        : defaultWindowOps(workloadName) * 4;

    bool known = false;
    for (const std::string &name : table2WorkloadNames())
        known |= name == workloadName;
    if (!known || localPct < 1 || localPct > 100)
        usage();
    if (!prefetchPolicy.empty() &&
        !knownPrefetchPolicy(prefetchPolicy)) {
        std::fprintf(stderr, "unknown --prefetch= policy: %s\n",
                     prefetchPolicy.c_str());
        usage();
    }
    if (!prefetchPolicy.empty() && runtimeName != "kona") {
        std::fprintf(stderr, "--prefetch= only applies to the kona "
                             "runtime (the FPGA owns the prefetcher); "
                             "ignoring\n");
    }
    if (evictDepth != 1 && runtimeName != "kona") {
        std::fprintf(stderr, "--evict-depth= only applies to the kona "
                             "runtime (the eviction engine owns the "
                             "pipeline); ignoring\n");
    }

    std::size_t footprint = dryFootprint(workloadName);
    std::size_t localBytes = std::max<std::size_t>(
        footprint * static_cast<std::size_t>(localPct) / 100,
        64 * pageSize);

    // One registry for the whole stack: the fabric, the rack and the
    // runtime all register into it, so --metrics-json= dumps a single
    // unified namespace ("fabric.*", "rack.*", "kona.*" / "vm.*").
    auto registry = std::make_shared<MetricRegistry>();

    // Rack: three memory nodes sized generously.
    Fabric fabric(LatencyConfig{}, MetricScope(registry, "fabric"));
    Controller controller(1 * MiB, MetricScope(registry, "rack"));
    std::vector<std::unique_ptr<MemoryNode>> nodes;
    for (NodeId id = 1; id <= 3; ++id) {
        nodes.push_back(std::make_unique<MemoryNode>(
            fabric, id, 1024 * MiB, 4 * MiB,
            MetricScope(registry,
                        "rack.node" + std::to_string(id))));
        controller.registerNode(*nodes.back());
    }

    std::unique_ptr<RemoteMemoryRuntime> runtime;
    std::unique_ptr<BackingStore> localStore;
    std::unique_ptr<RegionAllocator> localHeap;
    std::unique_ptr<WorkloadContext> context;

    KonaRuntime *kona = nullptr;
    if (runtimeName == "kona") {
        KonaConfig cfg;
        cfg.fpga.vfmemSize = 2048 * MiB;
        cfg.fpga.fmemSize = alignUp(localBytes, 4 * pageSize);
        if (!prefetchPolicy.empty())
            cfg.fpga.prefetchPolicy = prefetchPolicy;
        cfg.evict.pipelineDepth = evictDepth;
        cfg.hierarchy = HierarchyConfig::scaled();
        auto owned = std::make_unique<KonaRuntime>(
            fabric, controller, 0, cfg,
            MetricScope(registry, "kona"));
        kona = owned.get();
        runtime = std::move(owned);
    } else if (runtimeName == "kona-vm" || runtimeName == "legoos" ||
               runtimeName == "infiniswap") {
        VmConfig cfg;
        cfg.personality = runtimeName == "legoos"
            ? VmPersonality::LegoOs
            : runtimeName == "infiniswap" ? VmPersonality::Infiniswap
                                          : VmPersonality::KonaVm;
        cfg.localCachePages = localBytes / pageSize;
        cfg.hierarchy = HierarchyConfig::scaled();
        runtime = std::make_unique<VmRuntime>(
            fabric, controller, 0, cfg, MetricScope(registry, "vm"));
    } else if (runtimeName != "local") {
        usage();
    }

    if (runtime != nullptr && !traceOut.empty()) {
        TraceSession *trace = runtime->traceSession();
        if (trace != nullptr) {
            trace->setCapacity(1 << 20);   // fit a full run
            trace->enable();
        }
    }

    if (runtime != nullptr) {
        context = std::make_unique<WorkloadContext>(
            *runtime,
            [&runtime](std::size_t s, std::size_t a) {
                return runtime->allocate(s, a);
            },
            [&runtime](Addr a) { runtime->deallocate(a); });
    } else {
        localStore = std::make_unique<BackingStore>(1024 * MiB);
        localHeap = std::make_unique<RegionAllocator>(
            pageSize, 1024 * MiB - pageSize);
        context = std::make_unique<WorkloadContext>(
            *localStore,
            [&localHeap](std::size_t s, std::size_t a) {
                return *localHeap->allocate(s, a);
            },
            [&localHeap](Addr a) { localHeap->deallocate(a); });
    }

    auto workload = makeWorkload(workloadName, *context);
    workload->setup();

    Tick before = runtime ? runtime->elapsed() : 0;
    std::uint64_t executed = 0;
    while (executed < ops) {
        std::uint64_t got = workload->run(
            std::min<std::uint64_t>(ops - executed, 10000));
        if (got == 0)
            break;
        executed += got;
    }
    Tick ns = runtime ? runtime->elapsed() - before : 1;

    std::printf("workload   : %s (%.1f MB footprint)\n",
                workloadName.c_str(),
                static_cast<double>(footprint) / 1e6);
    std::printf("runtime    : %s, %d%% local (%.1f MB)\n",
                runtime ? runtime->name().c_str() : "local DRAM",
                localPct, static_cast<double>(localBytes) / 1e6);
    std::printf("operations : %llu\n",
                static_cast<unsigned long long>(executed));
    if (runtime) {
        RuntimeStats stats = runtime->stats();
        std::printf("sim time   : %.2f ms  (%.0f kops/s)\n",
                    static_cast<double>(ns) / 1e6,
                    static_cast<double>(executed) /
                        (static_cast<double>(ns) / 1e9) / 1e3);
        std::printf("fetches    : %llu remote\n",
                    static_cast<unsigned long long>(
                        stats.remoteFetches));
        std::printf("faults     : %llu major + %llu minor\n",
                    static_cast<unsigned long long>(stats.majorFaults),
                    static_cast<unsigned long long>(
                        stats.minorFaults));
        std::printf("eviction   : %llu pages (%llu silent), %llu "
                    "dirty lines, %.2f MB on wire\n",
                    static_cast<unsigned long long>(
                        stats.pagesEvicted),
                    static_cast<unsigned long long>(
                        stats.silentEvictions),
                    static_cast<unsigned long long>(
                        stats.dirtyLinesWritten),
                    static_cast<double>(stats.evictionBytesOnWire) /
                        1e6);
        if (kona != nullptr && kona->fpga().prefetcher() != nullptr) {
            PrefetchStats ps = kona->fpga().prefetchStats();
            std::printf("prefetch   : %s — %llu issued, %llu useful, "
                        "%llu wasted (%.0f%% accuracy)\n",
                        kona->fpga().prefetcher()->name().c_str(),
                        static_cast<unsigned long long>(ps.issued),
                        static_cast<unsigned long long>(ps.useful),
                        static_cast<unsigned long long>(ps.wasted),
                        100.0 * ps.accuracy());
        }
    }

    if (!metricsJson.empty()) {
        // Headline run facts ride along with the component metrics.
        registry->gauge("run.operations")
            .set(static_cast<double>(executed));
        registry->gauge("run.sim_ns").set(static_cast<double>(ns));
        registry->gauge("run.footprint_bytes")
            .set(static_cast<double>(footprint));
        registry->gauge("run.local_bytes")
            .set(static_cast<double>(localBytes));
        std::ofstream os(metricsJson);
        if (!os) {
            std::fprintf(stderr, "cannot open %s for metrics export\n",
                         metricsJson.c_str());
            return 1;
        }
        registry->writeJson(os);
        std::printf("metrics    : %s\n", metricsJson.c_str());
    }
    if (runtime != nullptr && !traceOut.empty() &&
        runtime->traceSession() != nullptr) {
        if (!runtime->traceSession()->writeJsonFile(traceOut))
            return 1;
        std::printf("trace      : %s (%zu events, %llu dropped)\n",
                    traceOut.c_str(), runtime->traceSession()->size(),
                    static_cast<unsigned long long>(
                        runtime->traceSession()->dropped()));
    }
    return 0;
}
