/**
 * @file
 * Example: a tour of Kona's dirty-data tracking machinery.
 *
 * Demonstrates the track-local-data primitive directly: the CPU
 * hierarchy's writebacks populate the FPGA's per-page dirty-line
 * bitmaps; snooping completes the picture at eviction time; the
 * eviction handler converts the masks into a CL log whose wire size
 * is proportional to the dirty bytes, not the page count.
 *
 * Build & run:  ./build/examples/dirty_tracking_tour
 */

#include <cstdio>

#include "core/kona_runtime.h"

int
main()
{
    using namespace kona;
    setQuietLogging(true);

    Fabric fabric;
    Controller controller(1 * MiB);
    MemoryNode node(fabric, 1, 128 * MiB);
    controller.registerNode(node);

    KonaConfig cfg;
    cfg.fpga.fmemSize = 8 * MiB;
    cfg.hierarchy = HierarchyConfig::scaled();
    KonaRuntime kona(fabric, controller, 0, cfg);

    Addr region = kona.allocate(8 * pageSize, pageSize);

    // Dirty a recognizable pattern: page 0 gets lines {0, 5, 6, 7},
    // page 1 gets every even line, page 2 is read but never written.
    for (unsigned line : {0u, 5u, 6u, 7u})
        kona.store<std::uint64_t>(region + line * cacheLineSize, line);
    for (unsigned line = 0; line < 64; line += 2) {
        kona.store<std::uint64_t>(
            region + pageSize + line * cacheLineSize, line);
    }
    (void)kona.load<std::uint64_t>(region + 2 * pageSize);

    // Peek at the FPGA's dirty bitmaps (the hardware primitive).
    Addr vpn0 = pageNumber(region);
    std::printf("dirty masks as tracked by the coherent FPGA:\n");
    for (int p = 0; p < 3; ++p) {
        std::uint64_t mask = kona.fpga().dirtyMask(vpn0 + p);
        std::printf("  page %d: %2u dirty lines, %2u contiguous "
                    "segment(s)  mask=0x%016llx\n",
                    p, static_cast<unsigned>(__builtin_popcountll(mask)),
                    segmentCount(mask),
                    static_cast<unsigned long long>(mask));
    }

    // Evict and compare wire traffic against page granularity.
    kona.writebackAll();
    RuntimeStats stats = kona.stats();
    std::uint64_t pageBytes = stats.pagesEvicted * pageSize;
    std::printf("\neviction shipped %llu dirty lines in %llu wire "
                "bytes;\n",
                static_cast<unsigned long long>(
                    stats.dirtyLinesWritten),
                static_cast<unsigned long long>(
                    stats.evictionBytesOnWire));
    std::printf("a page-granularity runtime would have shipped %llu "
                "bytes (%.1fX more).\n",
                static_cast<unsigned long long>(pageBytes),
                static_cast<double>(pageBytes) /
                    static_cast<double>(stats.evictionBytesOnWire));

    // The memory node now holds the exact bytes.
    RemoteLocation loc = kona.fpga().translation().translate(region);
    std::uint64_t check = 0;
    fabric.nodeStore(loc.node).read(loc.addr + 5 * cacheLineSize,
                                    &check, sizeof(check));
    std::printf("\nspot check on the memory node: page0/line5 = %llu "
                "(expected 5)\n",
                static_cast<unsigned long long>(check));
    return check == 5 ? 0 : 1;
}
