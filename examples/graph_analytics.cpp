/**
 * @file
 * Example: graph analytics over disaggregated memory with replication
 * and fail-over.
 *
 * A PageRank computation runs on a graph whose CSR arrays live in
 * disaggregated memory, replicated across two memory nodes. Mid-run,
 * the primary memory node "fails"; the FPGA fails over to the replica
 * transparently (§4.5) and the computation completes with correct
 * results.
 *
 * Build & run:  ./build/examples/graph_analytics
 */

#include <cstdio>

#include "core/kona_runtime.h"
#include "workloads/graph.h"

int
main()
{
    using namespace kona;
    setQuietLogging(true);

    Fabric fabric;
    Controller controller(1 * MiB);
    MemoryNode nodeA(fabric, 1, 256 * MiB);
    MemoryNode nodeB(fabric, 2, 256 * MiB);
    controller.registerNode(nodeA);
    controller.registerNode(nodeB);

    KonaConfig cfg;
    cfg.fpga.fmemSize = 4 * MiB;
    cfg.hierarchy = HierarchyConfig::scaled();
    cfg.replicationFactor = 1;   // every slab has a second copy
    KonaRuntime kona(fabric, controller, 0, cfg);

    WorkloadContext context(
        kona,
        [&kona](std::size_t s, std::size_t a) {
            return kona.allocate(s, a);
        },
        [&kona](Addr a) { kona.deallocate(a); });

    GraphWorkload::Params params;
    params.algorithm = GraphAlgorithm::PageRank;
    params.vertices = 100000;
    params.avgDegree = 8;
    GraphWorkload pagerank(context, params);
    pagerank.setup();
    std::printf("PageRank on %u vertices (%.1f MB of graph + "
                "properties), replicated on 2 memory nodes\n",
                params.vertices,
                static_cast<double>(pagerank.footprintBytes()) / 1e6);

    // First half of the computation with both nodes healthy.
    pagerank.run(static_cast<std::uint64_t>(params.vertices) * 2);
    kona.writebackAll();   // checkpoint everything to the rack

    // Disaster: take node 1 down. Fetches fail over to replicas.
    std::printf("\n*** memory node 1 fails ***\n");
    fabric.setNodeDown(1, true);

    pagerank.run(static_cast<std::uint64_t>(params.vertices) * 2);

    double sum = 0.0;
    for (std::uint32_t v = 0; v < 1000; ++v)
        sum += pagerank.vertexValue(v);
    std::printf("computation completed after fail-over; mean rank of "
                "first 1000 vertices = %.4f\n", sum / 1000.0);

    RuntimeStats stats = kona.stats();
    std::printf("\nremote fetches: %llu, fetch fail-overs survived, "
                "pages evicted: %llu, dirty lines shipped: %llu\n",
                static_cast<unsigned long long>(stats.remoteFetches),
                static_cast<unsigned long long>(stats.pagesEvicted),
                static_cast<unsigned long long>(
                    stats.dirtyLinesWritten));
    std::printf("simulated runtime: %.1f ms (4MB FMem cache over a "
                "%.1f MB working set)\n",
                static_cast<double>(kona.elapsed()) / 1e6,
                static_cast<double>(pagerank.footprintBytes()) / 1e6);
    return 0;
}
