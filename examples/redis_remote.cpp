/**
 * @file
 * Example: a Redis-like key-value store running transparently on
 * disaggregated memory, compared across runtimes.
 *
 * This is the paper's motivating scenario (§2.1): the same KV
 * workload runs unchanged on top of Kona, Kona-VM, LegoOS and
 * Infiniswap with only 25% of its dataset fitting in local memory,
 * and the runtimes' throughput and fault behaviour are compared.
 *
 * Build & run:  ./build/examples/redis_remote
 */

#include <cstdio>
#include <memory>

#include "core/kona_runtime.h"
#include "core/vm_runtime.h"
#include "workloads/kv_store.h"

namespace {

using namespace kona;

struct RunResult
{
    std::string name;
    double kops;
    RuntimeStats stats;
    bool verified;
};

RunResult
runOn(RemoteMemoryRuntime &runtime)
{
    WorkloadContext context(
        runtime,
        [&runtime](std::size_t s, std::size_t a) {
            return runtime.allocate(s, a);
        },
        [&runtime](Addr a) { runtime.deallocate(a); });

    KvWorkload::Params params;
    params.numKeys = 20000;
    params.valueSize = 100;
    KvWorkload workload(context, params);
    workload.setup();

    Tick before = runtime.elapsed();
    const std::uint64_t ops = 30000;
    workload.run(ops);
    Tick ns = runtime.elapsed() - before;

    RunResult result;
    result.name = runtime.name();
    result.kops = static_cast<double>(ops) /
                  (static_cast<double>(ns) / 1e9) / 1e3;
    result.stats = runtime.stats();
    result.verified = workload.verifyAll();
    return result;
}

} // namespace

int
main()
{
    using namespace kona;
    setQuietLogging(true);

    // ~4.6MB dataset; 25% of it fits locally.
    constexpr std::size_t localBytes = 1280 * KiB;

    std::printf("Redis-like store, 20k keys, mixed GET/SET, 25%% of "
                "the dataset in local memory\n\n");
    std::printf("%-12s %10s %10s %10s %10s %10s  %s\n", "runtime",
                "kops/s", "fetches", "faults", "evicted",
                "wire MB", "data");

    std::vector<RunResult> results;
    {
        Fabric fabric;
        Controller controller(1 * MiB);
        MemoryNode node(fabric, 1, 256 * MiB);
        controller.registerNode(node);
        KonaConfig cfg;
        cfg.fpga.fmemSize = localBytes;
        cfg.hierarchy = HierarchyConfig::scaled();
        KonaRuntime kona(fabric, controller, 0, cfg);
        results.push_back(runOn(kona));
    }
    for (VmPersonality personality :
         {VmPersonality::KonaVm, VmPersonality::LegoOs,
          VmPersonality::Infiniswap}) {
        Fabric fabric;
        Controller controller(1 * MiB);
        MemoryNode node(fabric, 1, 256 * MiB);
        controller.registerNode(node);
        VmConfig cfg;
        cfg.personality = personality;
        cfg.localCachePages = localBytes / pageSize;
        cfg.hierarchy = HierarchyConfig::scaled();
        VmRuntime vm(fabric, controller, 0, cfg);
        results.push_back(runOn(vm));
    }

    for (const RunResult &r : results) {
        std::printf("%-12s %10.0f %10llu %10llu %10llu %10.1f  %s\n",
                    r.name.c_str(), r.kops,
                    static_cast<unsigned long long>(
                        r.stats.remoteFetches),
                    static_cast<unsigned long long>(
                        r.stats.majorFaults + r.stats.minorFaults),
                    static_cast<unsigned long long>(
                        r.stats.pagesEvicted),
                    static_cast<double>(
                        r.stats.evictionBytesOnWire) / 1e6,
                    r.verified ? "OK" : "CORRUPT");
    }

    std::printf("\nKona serves the same workload with zero page "
                "faults and ships only dirty cache-lines on "
                "eviction.\n");
    return 0;
}
