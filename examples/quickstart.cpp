/**
 * @file
 * Quickstart: stand up a simulated rack, start the Kona runtime on a
 * compute node, and use disaggregated memory transparently.
 *
 * The flow below is the whole public API surface a user needs:
 *
 *   1. build a Fabric (the rack network) and MemoryNodes;
 *   2. register the nodes with the rack Controller;
 *   3. create a KonaRuntime on the compute node;
 *   4. allocate() / read() / write() — everything else (slab mapping,
 *      VFMem, FMem caching, dirty tracking, CL-log eviction) is
 *      transparent;
 *   5. inspect stats() to see what the runtime did for you.
 *
 * Build & run:  ./build/examples/quickstart
 */

#include <cstdio>

#include "core/kona_runtime.h"

int
main()
{
    using namespace kona;

    // --- 1-2. A rack: two 256MB memory nodes behind a controller.
    Fabric fabric;
    Controller controller(/*slabSize=*/4 * MiB);
    MemoryNode node1(fabric, /*id=*/1, 256 * MiB);
    MemoryNode node2(fabric, /*id=*/2, 256 * MiB);
    controller.registerNode(node1);
    controller.registerNode(node2);

    // --- 3. Kona on compute node 0: 16MB of FMem cache in front of
    // the rack's disaggregated memory.
    KonaConfig config;
    config.fpga.fmemSize = 16 * MiB;
    KonaRuntime kona(fabric, controller, /*computeNode=*/0, config);

    // --- 4. Use it like local memory.
    Addr buffer = kona.allocate(64 * MiB, pageSize);
    std::printf("allocated 64MB of disaggregated memory at 0x%llx\n",
                static_cast<unsigned long long>(buffer));

    // Write a value into every page (each first touch transparently
    // fetches the page from its memory node — with no page fault).
    for (std::size_t page = 0; page < 64 * MiB / pageSize; ++page) {
        kona.store<std::uint64_t>(buffer + page * pageSize,
                                  page * page);
    }
    // Read a few back.
    bool ok = true;
    for (std::size_t page = 0; page < 64 * MiB / pageSize;
         page += 1000) {
        ok &= kona.load<std::uint64_t>(buffer + page * pageSize) ==
              page * page;
    }
    std::printf("data round-trip through the rack: %s\n",
                ok ? "OK" : "CORRUPT");

    // Push everything back to the memory nodes (shutdown / snapshot).
    kona.writebackAll();

    // --- 5. What happened under the hood.
    RuntimeStats stats = kona.stats();
    std::printf("\nruntime stats:\n");
    std::printf("  remote page fetches : %llu\n",
                static_cast<unsigned long long>(stats.remoteFetches));
    std::printf("  page faults         : %llu  <- Kona's whole point\n",
                static_cast<unsigned long long>(stats.majorFaults +
                                                stats.minorFaults));
    std::printf("  pages evicted       : %llu (%llu clean, silent)\n",
                static_cast<unsigned long long>(stats.pagesEvicted),
                static_cast<unsigned long long>(
                    stats.silentEvictions));
    std::printf("  dirty lines shipped : %llu\n",
                static_cast<unsigned long long>(
                    stats.dirtyLinesWritten));
    std::printf("  eviction wire bytes : %llu (amplification %.2fX; "
                "a page-granularity runtime would ship %.0fX)\n",
                static_cast<unsigned long long>(
                    stats.evictionBytesOnWire),
                stats.evictionAmplification(),
                static_cast<double>(pageSize) / cacheLineSize);
    std::printf("  simulated time      : %.2f ms\n",
                static_cast<double>(kona.elapsed()) / 1e6);
    return ok ? 0 : 1;
}
