/**
 * @file
 * bench_compare library tests: metrics-JSON flattening, glob matching,
 * rules parsing, and pass/warn/fail/missing classification — including
 * the CI-shaped fixture of a 20% simspeed throughput regression under
 * the checked-in "higher 0.15" rule.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "telemetry/metric_registry.h"
#include "tools/bench_compare.h"

namespace kona {
namespace {

TEST(BenchCompare, ParseFlattensRegistryDump)
{
    // Round-trip through the real exporter so the parser is tested
    // against the exact shape CI compares.
    MetricRegistry registry;
    registry.counter("fpga.remote_fetches").add(42);
    registry.gauge("result.simspeed.seq.accesses_per_sec").set(2.5e6);
    registry.histogram("miss_ns").record(100.0);
    registry.histogram("miss_ns").record(300.0);

    std::map<std::string, double> flat;
    std::string error;
    ASSERT_TRUE(parseMetricsJson(registry.toJson(), flat, &error))
        << error;
    EXPECT_DOUBLE_EQ(flat.at("counters.fpga.remote_fetches"), 42.0);
    EXPECT_DOUBLE_EQ(
        flat.at("gauges.result.simspeed.seq.accesses_per_sec"), 2.5e6);
    EXPECT_DOUBLE_EQ(flat.at("histograms.miss_ns.count"), 2.0);
    EXPECT_DOUBLE_EQ(flat.at("histograms.miss_ns.sum"), 400.0);
}

TEST(BenchCompare, ParseRejectsMalformedInput)
{
    std::map<std::string, double> flat;
    std::string error;
    EXPECT_FALSE(parseMetricsJson("{\"a\": ", flat, &error));
    EXPECT_FALSE(error.empty());
    EXPECT_FALSE(parseMetricsJson("not json", flat, nullptr));
}

TEST(BenchCompare, GlobStarSpansDots)
{
    EXPECT_TRUE(globMatch("gauges.result.*",
                          "gauges.result.simspeed.seq.ns_per_access"));
    EXPECT_TRUE(globMatch("*.oracle_ok",
                          "gauges.result.chaos.partial-partition.oracle_ok"));
    EXPECT_TRUE(globMatch("gauges.result.chaos.*.p99_us",
                          "gauges.result.chaos.flaky-node.p99_us"));
    EXPECT_FALSE(globMatch("gauges.result.chaos.*.p99_us",
                           "gauges.result.chaos.p99_us.extra"));
    EXPECT_TRUE(globMatch("a?c", "abc"));
    EXPECT_FALSE(globMatch("a?c", "ac"));
    EXPECT_FALSE(globMatch("gauges.*", "counters.x"));
    EXPECT_TRUE(globMatch("*", "anything.at.all"));
}

TEST(BenchCompare, RulesParseFirstMatchWinsAndDefaults)
{
    std::vector<CompareRule> rules;
    std::string error;
    ASSERT_TRUE(parseCompareRules(
        "# comment\n"
        "gauges.result.simspeed.seq.allocs_per_access exact 0\n"
        "gauges.result.simspeed.*.accesses_per_sec higher 0.15\n"
        "gauges.result.table2.* band 0.01 0.002\n"
        "counters.* ignore\n",
        rules, &error))
        << error;
    ASSERT_EQ(rules.size(), 4u);
    EXPECT_EQ(rules[0].direction, CompareDirection::Exact);
    EXPECT_EQ(rules[1].direction, CompareDirection::HigherBetter);
    EXPECT_DOUBLE_EQ(rules[1].failTol, 0.15);
    EXPECT_DOUBLE_EQ(rules[1].warnTol, 0.075); // defaults failTol/2
    EXPECT_DOUBLE_EQ(rules[2].warnTol, 0.002); // explicit override
    EXPECT_EQ(rules[3].direction, CompareDirection::Ignore);

    // First match wins: the exact rule shadows the higher rule for the
    // alloc invariant even though both globs could match.
    EXPECT_TRUE(globMatch(rules[0].pattern,
                          "gauges.result.simspeed.seq.allocs_per_access"));

    EXPECT_FALSE(parseCompareRules("pattern sideways 0.1", rules, &error));
    EXPECT_NE(error.find("unknown direction"), std::string::npos);
    EXPECT_FALSE(parseCompareRules("pattern band", rules, &error));
    EXPECT_NE(error.find("missing tolerance"), std::string::npos);
}

std::vector<CompareRule>
simspeedRules()
{
    std::vector<CompareRule> rules;
    std::string error;
    EXPECT_TRUE(parseCompareRules(
        "gauges.result.simspeed.*.allocs_per_access exact 0\n"
        "gauges.result.simspeed.*.accesses_per_sec higher 0.15\n"
        "gauges.result.simspeed.*.ns_per_access    lower  0.15\n",
        rules, &error))
        << error;
    return rules;
}

TEST(BenchCompare, TwentyPercentThroughputRegressionFails)
{
    // The acceptance fixture: a synthetic 20% accesses_per_sec drop
    // must exit nonzero under the checked-in 15% gate.
    std::map<std::string, double> baseline = {
        {"gauges.result.simspeed.seq.accesses_per_sec", 2.0e6},
        {"gauges.result.simspeed.seq.ns_per_access", 500.0},
        {"gauges.result.simspeed.seq.allocs_per_access", 0.0},
    };
    std::map<std::string, double> current = baseline;
    current["gauges.result.simspeed.seq.accesses_per_sec"] = 1.6e6;
    current["gauges.result.simspeed.seq.ns_per_access"] = 625.0;

    CompareReport report =
        compareMetrics(baseline, current, simspeedRules());
    EXPECT_FALSE(report.ok());
    EXPECT_EQ(report.failed, 2u); // throughput dropped AND ns rose >15%
    EXPECT_EQ(report.passed, 1u); // allocs stayed exactly 0
    for (const CompareFinding &f : report.findings) {
        if (f.key == "gauges.result.simspeed.seq.accesses_per_sec") {
            EXPECT_EQ(f.status, CompareStatus::Fail);
            EXPECT_NEAR(f.relDelta, -0.20, 1e-9);
        }
    }
}

TEST(BenchCompare, WarnBandBetweenWarnAndFailTolerance)
{
    std::map<std::string, double> baseline = {
        {"gauges.result.simspeed.seq.accesses_per_sec", 1.0e6}};
    std::map<std::string, double> current = {
        {"gauges.result.simspeed.seq.accesses_per_sec", 0.9e6}};
    // 10% drop: past warn (7.5%) but within fail (15%).
    CompareReport report =
        compareMetrics(baseline, current, simspeedRules());
    EXPECT_TRUE(report.ok()); // warns do not gate
    EXPECT_EQ(report.warned, 1u);
    ASSERT_EQ(report.findings.size(), 1u);
    EXPECT_EQ(report.findings[0].status, CompareStatus::Warn);
}

TEST(BenchCompare, ImprovementsNeverFailDirectionalRules)
{
    std::map<std::string, double> baseline = {
        {"gauges.result.simspeed.seq.accesses_per_sec", 1.0e6},
        {"gauges.result.simspeed.seq.ns_per_access", 500.0}};
    std::map<std::string, double> current = {
        {"gauges.result.simspeed.seq.accesses_per_sec", 2.0e6},
        {"gauges.result.simspeed.seq.ns_per_access", 250.0}};
    CompareReport report =
        compareMetrics(baseline, current, simspeedRules());
    EXPECT_TRUE(report.ok());
    EXPECT_EQ(report.warned, 0u);
    EXPECT_EQ(report.passed, 2u);
}

TEST(BenchCompare, BandFailsInEitherDirection)
{
    std::vector<CompareRule> rules = {
        {"gauges.result.table2.*", CompareDirection::Band, 0.01, 0.005}};
    std::map<std::string, double> baseline = {
        {"gauges.result.table2.redis.amp2m", 100.0}};
    std::map<std::string, double> up = {
        {"gauges.result.table2.redis.amp2m", 102.0}};
    std::map<std::string, double> down = {
        {"gauges.result.table2.redis.amp2m", 98.0}};
    EXPECT_FALSE(compareMetrics(baseline, up, rules).ok());
    EXPECT_FALSE(compareMetrics(baseline, down, rules).ok());
    std::map<std::string, double> within = {
        {"gauges.result.table2.redis.amp2m", 100.4}};
    EXPECT_TRUE(compareMetrics(baseline, within, rules).ok());
}

TEST(BenchCompare, ExactRuleGatesInvariants)
{
    std::vector<CompareRule> rules = {
        {"*.allocs_per_access", CompareDirection::Exact, 0.0, 0.0}};
    std::map<std::string, double> baseline = {
        {"gauges.result.simspeed.seq.allocs_per_access", 0.0}};
    std::map<std::string, double> clean = baseline;
    std::map<std::string, double> leaky = {
        {"gauges.result.simspeed.seq.allocs_per_access", 0.0001}};
    EXPECT_TRUE(compareMetrics(baseline, clean, rules).ok());
    EXPECT_FALSE(compareMetrics(baseline, leaky, rules).ok());
}

TEST(BenchCompare, MissingGatedKeyFailsEitherSide)
{
    std::vector<CompareRule> rules = {
        {"gauges.result.*", CompareDirection::Band, 0.1, 0.05}};
    std::map<std::string, double> baseline = {
        {"gauges.result.a", 1.0}, {"gauges.other.x", 5.0}};
    std::map<std::string, double> current = {
        {"gauges.result.b", 2.0}, {"gauges.other.y", 6.0}};
    CompareReport report = compareMetrics(baseline, current, rules);
    EXPECT_FALSE(report.ok());
    // Both the lost baseline key and the stale-baseline current-only
    // key fail; the ungated "other" keys are counted but not compared.
    EXPECT_EQ(report.failed, 2u);
    EXPECT_EQ(report.ignored, 2u);
    for (const CompareFinding &f : report.findings)
        EXPECT_EQ(f.status, CompareStatus::Missing);
}

TEST(BenchCompare, ReportPrinterSummarizesCounts)
{
    std::map<std::string, double> baseline = {
        {"gauges.result.simspeed.seq.accesses_per_sec", 2.0e6}};
    std::map<std::string, double> current = {
        {"gauges.result.simspeed.seq.accesses_per_sec", 1.6e6}};
    CompareReport report =
        compareMetrics(baseline, current, simspeedRules());
    std::ostringstream os;
    printCompareReport(os, report);
    EXPECT_NE(os.str().find("FAIL"), std::string::npos);
    EXPECT_NE(os.str().find("-20.0%"), std::string::npos);
    EXPECT_NE(os.str().find("0 passed, 0 warned, 1 failed"),
              std::string::npos);
}

} // namespace
} // namespace kona
