/**
 * @file
 * Tests for KCacheSim (AMAT model math, DRAM-cache variant sweeps)
 * and KTracker (snapshot-diff dirty detection, write-protect fault
 * accounting, the Fig 9/10 metrics).
 */

#include <gtest/gtest.h>

#include "common/rng.h"
#include "mem/backing_store.h"
#include "tools/kcachesim.h"
#include "tools/ktracker.h"

namespace kona {
namespace {

HierarchyConfig
tinyCpu()
{
    HierarchyConfig cfg;
    cfg.levels = {
        {"L1", 4 * 64, 1, 64},
        {"L2", 32 * 64, 2, 64},
    };
    return cfg;
}

TEST(KCacheSim, AllHitsGiveL1Latency)
{
    LatencyConfig lat;
    KCacheSim sim(tinyCpu(), {{"dram", 64 * KiB, pageSize, 4}}, lat);
    sim.record({0, 8, AccessType::Read});   // cold miss
    for (int i = 0; i < 999; ++i)
        sim.record({0, 8, AccessType::Read});
    EXPECT_EQ(sim.lineAccesses(), 1000u);
    EXPECT_EQ(sim.cpuHits(0), 999u);
    // AMAT converges to the L1 hit latency.
    double amat = sim.amat(0, konaModel(lat));
    EXPECT_NEAR(amat, lat.l1HitNs, 15.0);
}

TEST(KCacheSim, ModelOrderingAtSameMissProfile)
{
    LatencyConfig lat;
    KCacheSim sim(tinyCpu(), {{"dram", 16 * KiB, pageSize, 4}}, lat);
    // A scattered pattern with many LLC and DRAM-cache misses.
    Rng rng(5);
    for (int i = 0; i < 30000; ++i)
        sim.record({rng.below(8 * MiB), 8, AccessType::Read});
    ASSERT_GT(sim.remoteAccesses(0), 0u);

    double kona = sim.amat(0, konaModel(lat));
    double konaMain = sim.amat(0, konaMainModel(lat));
    double lego = sim.amat(0, legoOsModel(lat));
    double infini = sim.amat(0, infiniswapModel(lat));
    // §6.2: Kona < LegoOS < Infiniswap; Kona-main < Kona (no NUMA).
    EXPECT_LT(kona, lego);
    EXPECT_LT(lego, infini);
    EXPECT_LT(konaMain, kona);
}

TEST(KCacheSim, BiggerDramCacheReducesRemoteAccesses)
{
    KCacheSim sim(tinyCpu(),
                  {{"small", 64 * KiB, pageSize, 4},
                   {"large", 4 * MiB, pageSize, 4}});
    Rng rng(6);
    for (int i = 0; i < 20000; ++i)
        sim.record({rng.below(2 * MiB), 8, AccessType::Read});
    EXPECT_GT(sim.remoteAccesses(0), sim.remoteAccesses(1));
    EXPECT_GE(sim.dramMissRate(0), sim.dramMissRate(1));
}

TEST(KCacheSim, BlockSizeSweepSpatialLocality)
{
    // Sequential access: bigger blocks exploit spatial locality.
    KCacheSim sim(tinyCpu(),
                  {{"64B", 256 * KiB, 64, 4},
                   {"4KB", 256 * KiB, pageSize, 4}});
    for (Addr a = 0; a < 1 * MiB; a += 64)
        sim.record({a, 8, AccessType::Read});
    EXPECT_GT(sim.remoteAccesses(0), sim.remoteAccesses(1));
}

TEST(KCacheSim, RemoteLatencyDominatesSmallCaches)
{
    LatencyConfig lat;
    KCacheSim sim(tinyCpu(), {{"dram", 16 * KiB, pageSize, 4}}, lat);
    Rng rng(7);
    for (int i = 0; i < 20000; ++i)
        sim.record({rng.below(16 * MiB), 8, AccessType::Read});
    // With a ~100% DRAM-cache miss rate, Infiniswap's AMAT approaches
    // its fetch latency times the LLC miss rate.
    double infini = sim.amat(0, infiniswapModel(lat));
    double kona = sim.amat(0, konaModel(lat));
    EXPECT_GT(infini / kona, 5.0);
}

class KTrackerFixture : public ::testing::Test
{
  protected:
    KTrackerFixture() : store(4 * MiB), tracker(store)
    {
        tracker.trackRegion(0, 4 * MiB);
    }

    BackingStore store;
    KTracker tracker;

    /** Instrumentation order: the sink sees the access pre-write. */
    void
    doWrite(Addr addr, std::uint64_t value)
    {
        tracker.record({addr, 8, AccessType::Write});
        store.write(addr, &value, sizeof(value));
    }
};

TEST_F(KTrackerFixture, DetectsDirtyLinesExactly)
{
    doWrite(0, 1);
    doWrite(10 * 64, 2);
    doWrite(pageSize + 5 * 64, 3);
    tracker.endWindow();
    ASSERT_EQ(tracker.windowResults().size(), 1u);
    const KTrackerWindow &w = tracker.windowResults()[0];
    EXPECT_EQ(w.dirtyPages, 2u);
    EXPECT_EQ(w.dirtyLines, 3u);
    // amp ratio = (2 * 4096) / (3 * 64)
    EXPECT_NEAR(w.ampRatio, 2.0 * 4096 / (3 * 64), 1e-9);
}

TEST_F(KTrackerFixture, SecondWindowOnlySeesNewWrites)
{
    doWrite(0, 1);
    tracker.endWindow();
    // Re-write the same value: bytes unchanged -> diff is clean.
    tracker.record({0, 8, AccessType::Write});
    tracker.endWindow();
    EXPECT_EQ(tracker.windowResults()[1].dirtyLines, 0u);
    doWrite(0, 99);
    tracker.endWindow();
    EXPECT_EQ(tracker.windowResults()[2].dirtyLines, 1u);
}

TEST_F(KTrackerFixture, WriteProtectFaultAccounting)
{
    doWrite(0, 1);
    doWrite(8, 2);              // same page: one fault only
    doWrite(pageSize, 3);       // second page: second fault
    tracker.endWindow();
    EXPECT_EQ(tracker.windowResults()[0].writeFaults, 2u);
    // Next window re-arms protection: writing again re-faults.
    doWrite(0, 4);
    tracker.endWindow();
    EXPECT_EQ(tracker.windowResults()[1].writeFaults, 1u);
    EXPECT_EQ(tracker.totalWriteFaults(), 3u);
}

TEST_F(KTrackerFixture, WpModeIsSlowerThanClMode)
{
    Rng rng(8);
    for (int w = 0; w < 5; ++w) {
        for (int i = 0; i < 500; ++i)
            doWrite(alignDown(rng.below(4 * MiB - 8), 8),
                    rng.next());
        tracker.endWindow();
    }
    EXPECT_GT(tracker.appTimeWpNs(), tracker.appTimeClNs());
    EXPECT_GE(tracker.speedupPercent(), 0.0);
    EXPECT_GT(tracker.trackerOverheadNs(), 0.0);
}

TEST_F(KTrackerFixture, UntrackedRegionsIgnored)
{
    KTracker narrow(store);
    narrow.trackRegion(0, pageSize);   // only the first page
    std::uint64_t v = 5;
    store.write(10 * pageSize, &v, 8);
    narrow.record({10 * pageSize, 8, AccessType::Write});
    narrow.endWindow();
    EXPECT_EQ(narrow.windowResults()[0].dirtyLines, 0u);
    EXPECT_EQ(narrow.windowResults()[0].writeFaults, 0u);
}

TEST_F(KTrackerFixture, ReadsNeverFaultOrDirty)
{
    tracker.record({0, 64, AccessType::Read});
    tracker.endWindow();
    EXPECT_EQ(tracker.windowResults()[0].writeFaults, 0u);
    EXPECT_EQ(tracker.windowResults()[0].dirtyLines, 0u);
}

TEST_F(KTrackerFixture, SequentialWritesAmplifyLess)
{
    // Sequential: fill 8 pages completely.
    KTracker seq(store);
    seq.trackRegion(0, 4 * MiB);
    for (Addr a = 0; a < 8 * pageSize; a += 8) {
        std::uint64_t v = a + 1;
        seq.record({a, 8, AccessType::Write});
        store.write(a, &v, 8);
    }
    seq.endWindow();
    double seqRatio = seq.windowResults()[0].ampRatio;
    EXPECT_NEAR(seqRatio, 1.0, 1e-9);

    // Random: one line in each of 8 scattered pages.
    KTracker rnd(store);
    rnd.trackRegion(0, 4 * MiB);
    for (int p = 0; p < 8; ++p) {
        Addr a = (100 + 7 * p) * pageSize;
        std::uint64_t v = p + 1000;
        rnd.record({a, 8, AccessType::Write});
        store.write(a, &v, 8);
    }
    rnd.endWindow();
    EXPECT_GT(rnd.windowResults()[0].ampRatio, 10 * seqRatio);
}

} // namespace
} // namespace kona
