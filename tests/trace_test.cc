/**
 * @file
 * Tests for src/trace: the instrumented memory wrapper and the
 * access-pattern analyzer (amplification math, Fig 2 / Fig 3
 * distributions) on hand-constructed access patterns.
 */

#include <gtest/gtest.h>

#include "mem/backing_store.h"
#include "trace/access_trace.h"
#include "trace/pattern_analyzer.h"

namespace kona {
namespace {

TEST(TracingMemory, ForwardsAndRecords)
{
    BackingStore store(1 * MiB);
    TracingMemory traced(store);
    RecordingSink sink;
    traced.addSink(&sink);

    traced.store<std::uint32_t>(100, 7);
    std::uint32_t v = traced.load<std::uint32_t>(100);
    EXPECT_EQ(v, 7u);
    ASSERT_EQ(sink.records().size(), 2u);
    EXPECT_EQ(sink.records()[0].type, AccessType::Write);
    EXPECT_EQ(sink.records()[0].addr, 100u);
    EXPECT_EQ(sink.records()[0].size, 4u);
    EXPECT_EQ(sink.records()[1].type, AccessType::Read);
}

TEST(TracingMemory, MultipleSinksAllNotified)
{
    BackingStore store(1 * MiB);
    TracingMemory traced(store);
    RecordingSink s1, s2;
    traced.addSink(&s1);
    traced.addSink(&s2);
    traced.store<std::uint8_t>(0, 1);
    EXPECT_EQ(s1.records().size(), 1u);
    EXPECT_EQ(s2.records().size(), 1u);
}

TEST(PatternAnalyzer, OneLinePerPageGivesAmp64)
{
    AccessPatternAnalyzer analyzer;
    // Write exactly one full cache-line in each of 10 pages.
    for (Addr p = 0; p < 10; ++p) {
        analyzer.record({p * pageSize, cacheLineSize,
                         AccessType::Write});
    }
    analyzer.endWindow();
    const AmplificationSample &s = analyzer.samples().back();
    EXPECT_EQ(s.uniqueBytesWritten, 10u * cacheLineSize);
    EXPECT_DOUBLE_EQ(s.amp4k, 64.0);
    EXPECT_DOUBLE_EQ(s.ampLine, 1.0);
    // All ten pages live in the same 2MB region.
    EXPECT_DOUBLE_EQ(s.amp2m, static_cast<double>(hugePageSize) /
                                  (10 * cacheLineSize));
}

TEST(PatternAnalyzer, FullPageWriteGivesAmp1)
{
    AccessPatternAnalyzer analyzer;
    analyzer.record({0, pageSize, AccessType::Write});
    analyzer.endWindow();
    const AmplificationSample &s = analyzer.samples().back();
    EXPECT_DOUBLE_EQ(s.amp4k, 1.0);
    EXPECT_DOUBLE_EQ(s.ampLine, 1.0);
}

TEST(PatternAnalyzer, PartialLineAmplifiesAtLineGranularity)
{
    AccessPatternAnalyzer analyzer;
    analyzer.record({0, 8, AccessType::Write});   // 8B of one line
    analyzer.endWindow();
    const AmplificationSample &s = analyzer.samples().back();
    EXPECT_DOUBLE_EQ(s.ampLine, 8.0);    // 64/8
    EXPECT_DOUBLE_EQ(s.amp4k, 512.0);    // 4096/8
}

TEST(PatternAnalyzer, OverlappingWritesCountOnce)
{
    AccessPatternAnalyzer analyzer;
    analyzer.record({0, 64, AccessType::Write});
    analyzer.record({0, 64, AccessType::Write});   // same bytes again
    analyzer.endWindow();
    EXPECT_EQ(analyzer.samples().back().uniqueBytesWritten, 64u);
    EXPECT_DOUBLE_EQ(analyzer.samples().back().ampLine, 1.0);
}

TEST(PatternAnalyzer, WindowsAreIndependent)
{
    AccessPatternAnalyzer analyzer;
    analyzer.record({0, 64, AccessType::Write});
    analyzer.endWindow();
    analyzer.record({pageSize, 8, AccessType::Write});
    analyzer.endWindow();
    ASSERT_EQ(analyzer.windows(), 2u);
    EXPECT_DOUBLE_EQ(analyzer.samples()[0].amp4k, 64.0);
    EXPECT_DOUBLE_EQ(analyzer.samples()[1].amp4k, 512.0);
}

TEST(PatternAnalyzer, MeanSkipsEmptyAndTrimmedWindows)
{
    AccessPatternAnalyzer analyzer;
    analyzer.record({0, 64, AccessType::Write});   // amp4k = 64
    analyzer.endWindow();
    analyzer.endWindow();                          // empty window
    analyzer.record({0, pageSize, AccessType::Write});   // amp4k = 1
    analyzer.endWindow();                          // teardown window
    AmplificationSample mean = analyzer.meanAmplification(0, 1);
    EXPECT_DOUBLE_EQ(mean.amp4k, 64.0);   // teardown + empty dropped
    mean = analyzer.meanAmplification(0, 0);
    EXPECT_DOUBLE_EQ(mean.amp4k, (64.0 + 1.0) / 2);
}

TEST(PatternAnalyzer, Fig2LinesPerPageDistribution)
{
    AccessPatternAnalyzer analyzer;
    // Page 0: read 3 lines; page 1: read all 64; page 2: write 2.
    analyzer.record({0, 8, AccessType::Read});
    analyzer.record({64, 8, AccessType::Read});
    analyzer.record({128, 8, AccessType::Read});
    analyzer.record({pageSize, pageSize, AccessType::Read});
    analyzer.record({2 * pageSize, 8, AccessType::Write});
    analyzer.record({2 * pageSize + 100, 8, AccessType::Write});
    analyzer.endWindow();

    const IntDistribution &reads =
        analyzer.linesPerPageDist(AccessType::Read);
    EXPECT_EQ(reads.samples(), 2u);
    EXPECT_DOUBLE_EQ(reads.cdfAt(3), 0.5);
    EXPECT_DOUBLE_EQ(reads.cdfAt(64), 1.0);

    const IntDistribution &writes =
        analyzer.linesPerPageDist(AccessType::Write);
    EXPECT_EQ(writes.samples(), 1u);
    EXPECT_DOUBLE_EQ(writes.cdfAt(2), 1.0);
}

TEST(PatternAnalyzer, Fig3SegmentDistribution)
{
    AccessPatternAnalyzer analyzer;
    // One page: lines 0-3 contiguous, line 10, lines 20-21.
    analyzer.record({0, 4 * 64, AccessType::Write});
    analyzer.record({10 * 64, 8, AccessType::Write});
    analyzer.record({20 * 64, 2 * 64, AccessType::Write});
    analyzer.endWindow();

    const IntDistribution &segs =
        analyzer.segmentLengths(AccessType::Write);
    EXPECT_EQ(segs.samples(), 3u);   // segments of length 4, 1, 2
    EXPECT_DOUBLE_EQ(segs.cdfAt(1), 1.0 / 3);
    EXPECT_DOUBLE_EQ(segs.cdfAt(2), 2.0 / 3);
    EXPECT_DOUBLE_EQ(segs.cdfAt(4), 1.0);
}

TEST(PatternAnalyzer, CrossPageAccessSplits)
{
    AccessPatternAnalyzer analyzer;
    analyzer.record({pageSize - 32, 64, AccessType::Write});
    analyzer.endWindow();
    const AmplificationSample &s = analyzer.samples().back();
    EXPECT_EQ(s.uniqueBytesWritten, 64u);
    // Two pages dirtied, one line each.
    EXPECT_DOUBLE_EQ(s.amp4k, 2.0 * pageSize / 64);
    EXPECT_DOUBLE_EQ(s.ampLine, 2.0 * cacheLineSize / 64);
}

TEST(PatternAnalyzer, ReadsDoNotDirty)
{
    AccessPatternAnalyzer analyzer;
    analyzer.record({0, pageSize, AccessType::Read});
    analyzer.endWindow();
    EXPECT_EQ(analyzer.samples().back().uniqueBytesWritten, 0u);
    EXPECT_DOUBLE_EQ(analyzer.samples().back().amp4k, 0.0);
}

} // namespace
} // namespace kona
